// Package bgpchurn reproduces the simulation study of Elmokashfi, Kvalbein
// and Dovrolis, "On the scalability of BGP: the roles of topology growth
// and update rate-limiting" (ACM CoNEXT 2008).
//
// The library has four layers, re-exported here as the stable public API:
//
//   - Topology: the paper's controllable AS-level topology generator —
//     tier-1 (T), mid-level (M), content-provider (CP) and customer (C)
//     nodes, customer–provider and peering links, geographic regions,
//     preferential attachment (§3, Table 1).
//   - Scenario: the Baseline growth model and the §5 "what-if" deviations
//     (NO-MIDDLE, RICH-MIDDLE, DENSE-CORE, TREE, PREFER-TOP, ...).
//   - Network: the AS-level BGP discrete-event simulator — no-valley /
//     prefer-customer policy routing, FIFO single-processor nodes with
//     uniform processing delay, per-interface MRAI rate limiting with the
//     WRATE (RFC 4271) and NO-WRATE (RFC 1771) withdrawal variants (§2, §6).
//   - RunCEvents / Sweep: the churn experiment framework — C-events
//     (withdraw + re-announce a prefix at a stub origin), update counting
//     per node type, and the U(X) = Σ m·q·e factor decomposition (§4).
//
// Quick start:
//
//	topo, _ := bgpchurn.Baseline.Generate(1000, 42)
//	res, _ := bgpchurn.RunCEvents(topo, bgpchurn.DefaultExperiment(42))
//	fmt.Println("updates per C-event at tier-1 nodes:", res.U(bgpchurn.T))
//
// The cmd/experiments binary regenerates every figure of the paper;
// EXPERIMENTS.md records paper-vs-measured values.
package bgpchurn

import (
	"context"
	"io"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/compact"
	"bgpchurn/internal/core"
	"bgpchurn/internal/inference"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/stats"
	"bgpchurn/internal/topology"
	"bgpchurn/internal/trace"
	"bgpchurn/internal/workload"
)

// --- Topology layer -------------------------------------------------------

// Topology is an annotated AS-level graph (see internal/topology).
type Topology = topology.Topology

// TopologyParams are the resolved generator inputs of Table 1.
type TopologyParams = topology.Params

// TopologyStats summarizes a topology's structural properties.
type TopologyStats = topology.Stats

// NodeType classifies an AS: T, M, CP or C.
type NodeType = topology.NodeType

// NodeID is a dense node index.
type NodeID = topology.NodeID

// Relation is a neighbor's business relation: Customer, Peer or Provider.
type Relation = topology.Relation

// Node type constants.
const (
	T  = topology.T
	M  = topology.M
	CP = topology.CP
	C  = topology.C
)

// Relation constants.
const (
	Customer = topology.Customer
	Peer     = topology.Peer
	Provider = topology.Provider
)

// GenerateTopology builds a topology from explicit parameters.
func GenerateTopology(p TopologyParams) (*Topology, error) { return topology.Generate(p) }

// GenerateTopologyLinear builds the same topology as GenerateTopology via
// the retained O(n²) linear-scan sampler — the draw-sequence oracle the
// accelerated generator is differential-tested against. Byte-identical
// output, quadratic cost; useful only for verification and benchmarking.
func GenerateTopologyLinear(p TopologyParams) (*Topology, error) {
	return topology.GenerateLinear(p)
}

// GrowTopology extends an existing topology to the larger parameter set p
// without regenerating it: every pre-existing node keeps its ID, type,
// regions and links, and new nodes attach preferentially exactly as the
// generator would attach them. Size sweeps can thus reuse structure across
// sizes (and reuse the protocol engine's interned paths via Network.Grow)
// instead of rebuilding each point from scratch. The source is not
// modified. Scenario.Params with a fixed seed yields growth-compatible
// parameter sets across sizes.
func GrowTopology(t *Topology, p TopologyParams) (*Topology, error) { return topology.Grow(t, p) }

// GrowTopologyLinear is GrowTopology on the linear-scan oracle path; see
// GenerateTopologyLinear.
func GrowTopologyLinear(t *Topology, p TopologyParams) (*Topology, error) {
	return topology.GrowLinear(t, p)
}

// ComputeTopologyStats measures a topology's structural properties;
// sampleSources bounds the BFS sample for the average path length (0 =
// exact).
func ComputeTopologyStats(t *Topology, sampleSources int) TopologyStats {
	return topology.ComputeStats(t, sampleSources)
}

// DegreeCCDF returns the complementary CDF of total node degree, for
// checking the paper's power-law property.
func DegreeCCDF(t *Topology) (degrees []int, ccdf []float64) {
	return topology.DegreeCCDF(t)
}

// ReadTopology parses a topology previously written with Topology.WriteTo.
func ReadTopology(r io.Reader) (*Topology, error) { return topology.Read(r) }

// --- Scenario layer -------------------------------------------------------

// Scenario is a named topology growth model.
type Scenario = scenario.Scenario

// The paper's growth models: the Baseline of Table 1 and the §5 deviations.
var (
	Baseline          = scenario.Baseline
	NoMiddle          = scenario.NoMiddle
	RichMiddle        = scenario.RichMiddle
	StaticMiddle      = scenario.StaticMiddle
	TransitClique     = scenario.TransitClique
	DenseCore         = scenario.DenseCore
	DenseEdge         = scenario.DenseEdge
	Tree              = scenario.Tree
	ConstantMHD       = scenario.ConstantMHD
	NoPeering         = scenario.NoPeering
	StrongCorePeering = scenario.StrongCorePeering
	StrongEdgePeering = scenario.StrongEdgePeering
	PreferMiddle      = scenario.PreferMiddle
	PreferTop         = scenario.PreferTop
)

// Scenarios returns every growth model, Baseline first.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioByName looks up a growth model by its paper name.
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// --- Protocol layer -------------------------------------------------------

// Network is a running BGP simulation over one topology.
type Network = bgp.Network

// ProtocolConfig carries the protocol parameters (MRAI, WRATE, processing
// delay).
type ProtocolConfig = bgp.Config

// Prefix identifies a routable destination.
type Prefix = bgp.Prefix

// Path is an AS path.
type Path = bgp.Path

// MRAIScope selects per-interface or per-prefix rate-limit timers.
type MRAIScope = bgp.MRAIScope

// MRAI scope constants.
const (
	PerInterface = bgp.PerInterface
	PerPrefix    = bgp.PerPrefix
)

// DampeningConfig configures RFC 2439 route flap dampening, the paper's
// future-work mechanism implemented as an extension.
type DampeningConfig = bgp.Dampening

// DefaultDampening returns the RFC 2439 example dampening parameters.
func DefaultDampening() DampeningConfig { return bgp.DefaultDampening() }

// NewNetwork builds the protocol state for a topology.
func NewNetwork(t *Topology, cfg ProtocolConfig) (*Network, error) { return bgp.New(t, cfg) }

// DefaultProtocol returns the paper's protocol parameters with NO-WRATE
// (withdrawals not rate-limited; RFC 1771 behavior).
func DefaultProtocol(seed uint64) ProtocolConfig { return bgp.DefaultConfig(seed) }

// WRATEProtocol returns the paper's protocol parameters with WRATE
// (withdrawals rate-limited like any update; RFC 4271 behavior).
func WRATEProtocol(seed uint64) ProtocolConfig { return bgp.WRATEConfig(seed) }

// --- Experiment layer -----------------------------------------------------

// Experiment configures a C-event churn measurement on one topology.
type Experiment = core.Config

// Result is the outcome of a C-event experiment.
type Result = core.Result

// TypeResult is the per-node-type aggregate of a Result.
type TypeResult = core.TypeResult

// RelationFactors is the Eq.-1 m/q/e decomposition for one neighbor class.
type RelationFactors = core.RelationFactors

// SweepConfig configures a churn-vs-size sweep for one scenario.
type SweepConfig = core.SweepConfig

// SweepResult holds one Result per network size.
type SweepResult = core.SweepResult

// EventKind selects the routing event an experiment measures: the paper's
// C-event or the link-failure extension.
type EventKind = core.EventKind

// Event kind constants.
const (
	CEventKind    = core.CEvent
	LinkEventKind = core.LinkEvent
)

// SessionResetConfig parameterizes an R-event (core session reset)
// experiment, an extension quantifying how reset churn scales with the
// number of prefixes carried.
type SessionResetConfig = core.SessionResetConfig

// SessionResetResult aggregates an R-event experiment.
type SessionResetResult = core.SessionResetResult

// DefaultSessionResets returns a 20-prefix, 10-session R-event setup.
func DefaultSessionResets(seed uint64) SessionResetConfig {
	return core.DefaultSessionResetConfig(seed)
}

// RunSessionResets fails and immediately restores sampled T-M sessions on
// a multi-prefix table, measuring the churn of each re-exchange.
func RunSessionResets(t *Topology, cfg SessionResetConfig) (*SessionResetResult, error) {
	return core.RunSessionResets(t, cfg)
}

// DefaultExperiment returns the paper's setup: 100 C-event originators,
// NO-WRATE protocol.
func DefaultExperiment(seed uint64) Experiment { return core.DefaultConfig(seed) }

// RunCEvents measures churn per C-event on one topology.
func RunCEvents(t *Topology, cfg Experiment) (*Result, error) { return core.RunCEvents(t, cfg) }

// Sweep runs the C-event experiment across network sizes for one
// scenario, strictly sequentially. On failure the points completed so far
// are returned alongside the error. Prefer RunSweep (parallel cells,
// byte-identical results) unless single-threaded execution is required.
func Sweep(sc Scenario, cfg SweepConfig) (*SweepResult, error) { return core.Sweep(sc, cfg) }

// Scheduler executes experiment grids on a bounded worker pool with a
// content-addressed result cache: each (scenario, size) cell is computed
// at most once per scheduler, and grid output is byte-identical to
// sequential sweeps on the same seeds.
type Scheduler = core.Scheduler

// GridRequest names one scenario sweep inside a grid run.
type GridRequest = core.GridRequest

// CellKey identifies one (scenario, size, seed, config) experiment cell in
// the scheduler cache.
type CellKey = core.CellKey

// CellStatus is a scheduler progress event (see CellState constants).
type CellStatus = core.CellStatus

// CellState classifies scheduler progress events.
type CellState = core.CellState

// CacheStats counts scheduler cache traffic.
type CacheStats = core.CacheStats

// Cell progress states.
const (
	CellStart       = core.CellStart
	CellDone        = core.CellDone
	CellCached      = core.CellCached
	CellFailed      = core.CellFailed
	CellResumed     = core.CellResumed
	CellRetried     = core.CellRetried
	CellQuarantined = core.CellQuarantined
	CellCancelled   = core.CellCancelled
)

// NewScheduler returns an experiment scheduler running at most parallelism
// cells concurrently (0 = GOMAXPROCS) with an empty result cache.
func NewScheduler(parallelism int) *Scheduler { return core.NewScheduler(parallelism) }

// RunSweep runs one scenario sweep with cells in parallel on a one-off
// scheduler. Results are byte-identical to Sweep on the same config; use
// NewScheduler directly to share the result cache across sweeps.
func RunSweep(ctx context.Context, sc Scenario, cfg SweepConfig) (*SweepResult, error) {
	return core.RunSweep(ctx, sc, cfg)
}

// RunGrid executes every (scenario, size) cell of the requests in parallel
// on a one-off scheduler, one SweepResult per request. Identical cells
// across requests are computed once. Cancelling ctx stops new cells and
// drains in-flight ones.
func RunGrid(ctx context.Context, reqs []GridRequest) ([]*SweepResult, error) {
	return core.RunGrid(ctx, reqs)
}

// --- Fault tolerance layer ------------------------------------------------

// CellPanicError reports a panic recovered inside one scheduler cell
// worker; the panicking cell is isolated and the rest of the grid runs on.
type CellPanicError = core.CellPanicError

// CellTimeoutError reports a cell that exceeded Experiment.CellTimeout.
type CellTimeoutError = core.CellTimeoutError

// CellQuarantinedError reports a cell whose transient faults exhausted the
// scheduler's retry budget (see Scheduler.SetRetryPolicy).
type CellQuarantinedError = core.CellQuarantinedError

// IsTransient reports whether err is a retryable cell fault (recovered
// panic or per-cell timeout).
func IsTransient(err error) bool { return core.IsTransient(err) }

// IsQuarantined reports whether err carries a CellQuarantinedError.
func IsQuarantined(err error) bool { return core.IsQuarantined(err) }

// Journal is the scheduler's crash-safe cell checkpoint writer (JSONL with
// per-record content hashes). Attach via Scheduler.SetJournal.
type Journal = core.Journal

// JournalRecord is one replayable checkpoint: a cell key and its result.
type JournalRecord = core.JournalRecord

// OpenJournal opens (or atomically creates) a cell journal for appending.
func OpenJournal(path string) (*Journal, error) { return core.OpenJournal(path) }

// LoadJournal reads a cell journal for Scheduler.Resume. A torn final line
// (the signature of a crash mid-append) is tolerated and reported via
// truncated; corruption anywhere else is an error.
func LoadJournal(path string) (records []JournalRecord, truncated bool, err error) {
	return core.LoadJournal(path)
}

// PaperSizes returns the paper's x-axis: 1000..10000 step 1000.
func PaperSizes() []int { return core.PaperSizes() }

// --- Analysis layer -------------------------------------------------------

// TrendResult is the outcome of the Mann-Kendall trend test.
type TrendResult = stats.TrendResult

// Fit is a least-squares polynomial fit with R².
type Fit = stats.Fit

// MannKendall runs the Mann-Kendall trend test with Sen's slope, the
// estimator the paper applies to monitor churn series (Fig. 1).
func MannKendall(series []float64) (TrendResult, error) { return stats.MannKendall(series) }

// LinearFit fits y = a + bx by ordinary least squares.
func LinearFit(x, y []float64) (Fit, error) { return stats.LinearFit(x, y) }

// QuadraticFit fits y = a + bx + cx² by ordinary least squares.
func QuadraticFit(x, y []float64) (Fit, error) { return stats.QuadraticFit(x, y) }

// GrowthFactor returns last/first of a series, the paper's "factor X over
// our range of topology sizes" summary.
func GrowthFactor(series []float64) float64 { return stats.GrowthFactor(series) }

// CompactScheme is a landmark-based compact-routing instance (Cowen's
// stretch-3 scheme), the comparator baseline from the paper's related work:
// ~√n-size tables instead of BGP's Θ(n), bounded stretch, but poor behavior
// under dynamics.
type CompactScheme = compact.Scheme

// CompactStretch summarizes compact-routing path stretch over a sample.
type CompactStretch = compact.StretchStats

// BuildCompactRouting constructs a compact-routing scheme over the
// topology's plain graph with k landmarks (the highest-degree core nodes
// plus random fill).
func BuildCompactRouting(t *Topology, k int, seed uint64) (*CompactScheme, error) {
	g := t.Undirected()
	return compact.Build(g, compact.ChooseLandmarks(g, k, seed))
}

// InferenceResult is the outcome of Gao-style AS relationship inference
// over observed paths (the §3 validation extension).
type InferenceResult = inference.Inferred

// InferenceAccuracy scores an inference against the ground truth.
type InferenceAccuracy = inference.Accuracy

// CollectASPaths gathers every node's best AS path for each prefix from a
// converged network, emulating a route collector with full feeds.
func CollectASPaths(net *Network, prefixes []Prefix) []Path {
	return inference.CollectPaths(net, prefixes)
}

// InferRelationships runs Gao-style relationship inference over AS paths;
// degree supplies the degree oracle used to locate each path's top.
func InferRelationships(paths []Path, degree func(NodeID) int) *InferenceResult {
	return inference.Infer(paths, degree)
}

// EvaluateInference scores an inference against the true topology.
func EvaluateInference(inf *InferenceResult, t *Topology) InferenceAccuracy {
	return inference.Evaluate(inf, t)
}

// WorkloadConfig describes a continuous stream of routing events (prefix
// flaps, link flaps) driven through the simulator, recording the update
// feed at a monitor AS.
type WorkloadConfig = workload.Config

// Timeline is the monitor feed recorded by RunWorkload.
type Timeline = workload.Timeline

// DefaultWorkload returns a day-long workload with moderate event rates.
func DefaultWorkload(seed uint64) WorkloadConfig { return workload.DefaultConfig(seed) }

// RunWorkload drives the simulator with the workload's event stream and
// returns the monitor timeline.
func RunWorkload(t *Topology, proto ProtocolConfig, cfg WorkloadConfig) (*Timeline, error) {
	return workload.Run(t, proto, cfg)
}

// MonitorTraceParams controls the synthetic monitor churn series standing
// in for the proprietary RIPE RIS feed of Fig. 1.
type MonitorTraceParams = trace.Params

// DefaultMonitorTrace returns parameters calibrated to Fig. 1 (~200% growth
// over three years, bursty).
func DefaultMonitorTrace(seed uint64) MonitorTraceParams { return trace.Default(seed) }

// GenerateMonitorTrace synthesizes a daily update-count series.
func GenerateMonitorTrace(p MonitorTraceParams) ([]float64, error) { return trace.Generate(p) }

// --- Observability layer --------------------------------------------------

// ObsMetrics is the instrumentation hub: sharded atomic counters, gauges
// and histograms covering the DES kernel, the BGP engine, the experiment
// scheduler and topology generation (see internal/obs). Attach one hub per
// run via Experiment.Obs, Scheduler.SetObs and Network.SetObs; probes are
// allocation-free and never perturb simulation determinism.
type ObsMetrics = obs.Metrics

// ObsServer serves a hub's metrics over HTTP (/metrics Prometheus text,
// /debug/vars expvar, /debug/pprof/ profiles).
type ObsServer = obs.Server

// UpdateTrace is a bounded ring buffer of processed updates, exportable as
// JSONL. Attach via Experiment.Trace.
type UpdateTrace = obs.UpdateTrace

// TraceRecord is one UpdateTrace entry: virtual time, sender, receiver,
// prefix and update kind.
type TraceRecord = obs.TraceRecord

// SpanRecorder collects the sweep→cell→origin→event causal span hierarchy
// of a run. Attach via Experiment.Spans; export with WriteJSONL or
// WriteChromeTrace. Recording is provably inert: results are byte-identical
// with spans on (the determinism tier enforces it).
type SpanRecorder = obs.SpanRecorder

// SpanRecord is one completed span: level, wall- and virtual-time extent,
// grid-cell identity and attribution stats.
type SpanRecord = obs.SpanRecord

// Span levels, outermost to innermost.
const (
	SpanSweep  = obs.SpanSweep
	SpanCell   = obs.SpanCell
	SpanOrigin = obs.SpanOrigin
	SpanEvent  = obs.SpanEvent
)

// NewSpanRecorder creates an empty span recorder whose wall epoch is now.
func NewSpanRecorder() *SpanRecorder { return obs.NewSpanRecorder() }

// ReadSpanJSONL parses a stream written by SpanRecorder.WriteJSONL.
func ReadSpanJSONL(r io.Reader) ([]SpanRecord, error) { return obs.ReadSpanJSONL(r) }

// ProgressBroker fans live progress events out to /progress SSE
// subscribers; obtain a server's broker via ObsServer.Progress.
type ProgressBroker = obs.ProgressBroker

// CauseID is the compact root-cause identity every in-flight update carries
// while causal tracing is enabled (0 = tracing off / no open cause).
type CauseID = bgp.CauseID

// CauseKind classifies the routing event behind a cause ID.
type CauseKind = bgp.CauseKind

// Cause kinds.
const (
	CauseNone        = bgp.CauseNone
	CauseWithdraw    = bgp.CauseWithdraw
	CauseAnnounce    = bgp.CauseAnnounce
	CauseLinkFail    = bgp.CauseLinkFail
	CauseLinkRestore = bgp.CauseLinkRestore
)

// EventAttribution is one routing event's provenance tree: per-type×relation
// update counts and active-session counts (the live Eq.-1 m·q·e terms),
// duplicate/implicit-withdrawal classification, path-exploration depth, and
// the event's virtual convergence span. Produced by Network.EndCause.
type EventAttribution = bgp.EventAttribution

// TypeAttribution is the per-node-type slice of an EventAttribution.
type TypeAttribution = bgp.TypeAttribution

// RelAttribution is the per-relation slice of a TypeAttribution.
type RelAttribution = bgp.RelAttribution

// Manifest is the per-run provenance record (config, seeds, toolchain,
// per-cell timings, cache traffic, final metric snapshot).
type Manifest = obs.Manifest

// CellTiming is one Manifest entry per grid-cell progress event.
type CellTiming = obs.CellTiming

// ManifestCacheCounts mirrors CacheStats inside a Manifest.
type ManifestCacheCounts = obs.CacheCounts

// NewObsMetrics builds a hub with every simulator metric registered.
func NewObsMetrics() *ObsMetrics { return obs.New() }

// ServeObs starts the metrics exposition server on addr (":0" picks a free
// port).
func ServeObs(addr string, m *ObsMetrics) (*ObsServer, error) { return obs.Serve(addr, m) }

// NewUpdateTrace creates an update-trace ring holding up to capacity
// records (<= 0 selects the default, 65536).
func NewUpdateTrace(capacity int) *UpdateTrace { return obs.NewUpdateTrace(capacity) }

// ReadManifest loads and validates a manifest written by Manifest.WriteFile.
func ReadManifest(path string) (*Manifest, error) { return obs.ReadManifest(path) }

// ReadTraceJSONL parses a stream written by UpdateTrace.WriteJSONL.
func ReadTraceJSONL(r io.Reader) ([]TraceRecord, error) { return obs.ReadTraceJSONL(r) }

// InstrumentTopologyGeneration routes topology-generation metrics into the
// hub (process-wide; pass nil to detach).
func InstrumentTopologyGeneration(m *ObsMetrics) {
	if m == nil {
		topology.SetObsProbes(nil)
		return
	}
	topology.SetObsProbes(m.NewTopoProbes())
}

// GitRevision returns the VCS revision embedded in the binary ("unknown"
// for unstamped builds).
func GitRevision() string { return obs.GitRevision() }

// PeakRSSBytes returns the process's peak resident set size (0 where
// /proc is unavailable) — the memory number the scale tier records in
// BENCH_scale.json.
func PeakRSSBytes() uint64 { return obs.PeakRSSBytes() }
