package bgpchurn

// Causal-tracing tier. Two properties anchor the tracing layer:
//
//  1. Inertness — attaching a SpanRecorder (which turns on the engine's
//     causal trace) must not change a single observable bit of any result,
//     at any shard count, for either protocol variant. Cause IDs ride the
//     existing event structs and the tracer only ever reads engine state.
//
//  2. Exactness — the live Eq.-1 attribution carried on event spans is not
//     an estimate: re-aggregating the spans of a run must reproduce the
//     Result's aggregate counters *bitwise*, because both sides sum the
//     same integer-valued counters in the same order.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// spanVariant returns cfg with a fresh span recorder attached.
func spanVariant(cfg Experiment) (Experiment, *SpanRecorder) {
	c := cfg
	c.Spans = NewSpanRecorder()
	return c, c.Spans
}

// TestResultIdenticalWithSpans proves the tracer inert: spans on vs off,
// across scenarios, protocol variants and shard counts, results are
// byte-identical — and the tracer actually ran (spans were recorded).
func TestResultIdenticalWithSpans(t *testing.T) {
	for _, sc := range []Scenario{Baseline, Tree} {
		topo, err := sc.Generate(400, 37)
		if err != nil {
			t.Fatal(err)
		}
		for variant, cfg := range protocolVariants(37, 5) {
			for _, shards := range []int{0, 1, 4} { // 0 = unsharded executor
				base := cfg
				label := "unsharded"
				if shards > 0 {
					base = shardedVariant(base, shards)
					label = fmt.Sprintf("shards=%d", shards)
				}
				bare, err := RunCEvents(topo, base)
				if err != nil {
					t.Fatal(err)
				}
				traced, spans := spanVariant(base)
				got, err := RunCEvents(topo, traced)
				if err != nil {
					t.Fatal(err)
				}
				if fingerprint(got) != fingerprint(bare) {
					t.Fatalf("%s/%s/%s: attaching spans changed the result:\nbare  %s\nspans %s",
						sc.Name, variant, label, fingerprint(bare), fingerprint(got))
				}
				// 2 event spans + 1 origin span per origin.
				if want := 3 * bare.Origins; spans.Len() != want {
					t.Fatalf("%s/%s/%s: recorded %d spans, want %d", sc.Name, variant, label, spans.Len(), want)
				}
			}
		}
	}
}

// TestSweepCSVIdenticalWithSpans compares the U(X) CSV artifact of a small
// grid sweep with spans on vs off — the figure-level restatement of
// inertness, through the scheduler path that cmd/experiments uses.
func TestSweepCSVIdenticalWithSpans(t *testing.T) {
	sizes := []int{200, 350}
	cfg := protocolVariants(13, 4)["WRATE"]
	for _, sc := range []Scenario{Baseline, Tree} {
		bare, err := Sweep(sc, SweepConfig{Sizes: sizes, TopologySeed: 13, Event: cfg})
		if err != nil {
			t.Fatal(err)
		}
		traced, spans := spanVariant(cfg)
		withSpans, err := Sweep(sc, SweepConfig{Sizes: sizes, TopologySeed: 13, Event: traced})
		if err != nil {
			t.Fatal(err)
		}
		if string(uCSV(withSpans)) != string(uCSV(bare)) {
			t.Fatalf("%s: U(X) CSV differs with spans attached:\nbare:\n%s\nspans:\n%s",
				sc.Name, uCSV(bare), uCSV(withSpans))
		}
		if spans.Len() == 0 {
			t.Fatalf("%s: traced sweep recorded no spans", sc.Name)
		}
	}
}

// TestEq1AttributionReconcilesWithAggregates re-derives the Result's
// aggregate counters purely from the event spans' Eq.-1 attribution and
// demands exact (bitwise) float64 equality. Parallelism is 1 so span order
// equals the reducer's origin fold order; every other quantity is an
// integer sum in float64 (exact and order-independent below 2^53).
func TestEq1AttributionReconcilesWithAggregates(t *testing.T) {
	topo, err := Baseline.Generate(400, 29)
	if err != nil {
		t.Fatal(err)
	}
	for variant, cfg := range protocolVariants(29, 5) {
		cfg.Parallelism = 1
		traced, spans := spanVariant(cfg)
		res, err := RunCEvents(topo, traced)
		if err != nil {
			t.Fatal(err)
		}
		k := float64(res.Origins)

		// Collect event spans in Seq order; with Parallelism=1 they appear
		// as (withdraw, announce) per origin, in the reducer's fold order.
		var downs, ups []SpanRecord
		for _, s := range spans.Snapshot() {
			switch {
			case s.Level != SpanEvent:
			case s.Name == "withdraw":
				downs = append(downs, s)
			case s.Name == "announce":
				ups = append(ups, s)
			default:
				t.Fatalf("%s: unexpected event span %q", variant, s.Name)
			}
		}
		if len(downs) != res.Origins || len(ups) != res.Origins {
			t.Fatalf("%s: %d withdraw / %d announce spans for %d origins", variant, len(downs), len(ups), res.Origins)
		}

		// Per-span classification closure: every processed update falls in
		// exactly one class.
		for _, s := range append(append([]SpanRecord{}, downs...), ups...) {
			st := s.Stats
			if st["dup"]+st["implicit"]+st["explicit"]+st["new"] != st["updates"] {
				t.Fatalf("%s: span %q origin %d: classes %v do not sum to updates",
					variant, s.Name, s.Origin, st)
			}
		}

		// TotalUpdates: integer sums, exact at any order.
		var total float64
		for i := range downs {
			total += downs[i].Stats["updates"] + ups[i].Stats["updates"]
		}
		if got := total / k; got != res.TotalUpdates {
			t.Fatalf("%s: span TotalUpdates %v != aggregate %v", variant, got, res.TotalUpdates)
		}

		// Per-type per-relation U factor: sum of u_<type>_<rel> over all
		// event spans, divided by k·nodes(type).
		for _, typ := range []NodeType{T, M, CP, C} {
			nodes := res.ByType[typ].Nodes
			if nodes == 0 {
				continue
			}
			for _, rel := range []Relation{Customer, Peer, Provider} {
				key := "u_" + typ.String() + "_" + rel.String()
				var sum float64
				for i := range downs {
					sum += downs[i].Stats[key] + ups[i].Stats[key]
				}
				want := res.ByType[typ].ByRel[rel].U
				if got := sum / (k * float64(nodes)); got != want {
					t.Fatalf("%s: u(%s,%s) from spans %v != aggregate %v", variant, typ, rel, got, want)
				}
			}
		}

		// Path exploration: the per-origin division happens before the fold,
		// so replicate it per origin and fold in span (= origin) order.
		for _, typ := range []NodeType{T, M, CP, C} {
			nodes := res.ByType[typ].Nodes
			if nodes == 0 {
				continue
			}
			key := "explore_" + typ.String()
			var sum float64
			for i := range downs {
				sum += (downs[i].Stats[key] + ups[i].Stats[key]) / float64(nodes)
			}
			if got := sum / k; got != res.PathExploration[typ] {
				t.Fatalf("%s: exploration(%s) from spans %v != aggregate %v", variant, typ, got, res.PathExploration[typ])
			}
		}

		// Convergence times: each event span's virtual extent is the phase's
		// convergence interval, measured at the same two instants.
		var down, up float64
		for i := range downs {
			down += downs[i].Stats["virtual_s"]
			up += ups[i].Stats["virtual_s"]
		}
		if got := down / k; got != res.DownSeconds {
			t.Fatalf("%s: DownSeconds from spans %v != aggregate %v", variant, got, res.DownSeconds)
		}
		if got := up / k; got != res.UpSeconds {
			t.Fatalf("%s: UpSeconds from spans %v != aggregate %v", variant, got, res.UpSeconds)
		}

		// Origin spans restate their own pair's update total.
		var origins []SpanRecord
		for _, s := range spans.Snapshot() {
			if s.Level == SpanOrigin {
				origins = append(origins, s)
			}
		}
		if len(origins) != res.Origins {
			t.Fatalf("%s: %d origin spans for %d origins", variant, len(origins), res.Origins)
		}
		for i, s := range origins {
			if pair := downs[i].Stats["updates"] + ups[i].Stats["updates"]; s.Stats["total_updates"] != pair {
				t.Fatalf("%s: origin span %d total_updates %v != event pair sum %v", variant, i, s.Stats["total_updates"], pair)
			}
		}
	}
}

// TestTraceRingRecordsCauseAndPathIdentity covers the -trace ring's
// fixed-size retention: records must carry the root-cause ID and the
// interned path identity instead of the engine-owned path slice, and stay
// meaningful after the per-origin arena Resets.
func TestTraceRingRecordsCauseAndPathIdentity(t *testing.T) {
	topo, err := Baseline.Generate(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperiment(7)
	cfg.Origins = 2
	cfg = compactVariant(cfg) // interned engine: announces carry a PathID
	// Warm start: the pre-event routing state is installed directly, so every
	// update the ring sees belongs to a cause window. (A cold start's initial
	// propagation flood is deliberately uncaused — it is setup, not an event.)
	cfg.WarmStart = true
	cfg.Trace = NewUpdateTrace(1 << 16)
	cfg.Spans = NewSpanRecorder()
	if _, err := RunCEvents(topo, cfg); err != nil {
		t.Fatal(err)
	}
	recs := cfg.Trace.Snapshot()
	if len(recs) == 0 {
		t.Fatal("trace ring captured no updates")
	}
	announces := 0
	for _, r := range recs {
		if r.Cause == 0 {
			t.Fatalf("record %+v has no root cause despite tracing on", r)
		}
		if r.Kind == 0 { // announce
			announces++
			if r.PathLen == 0 {
				t.Fatalf("announce record %+v has zero path length", r)
			}
			if r.PathID == 0 {
				t.Fatalf("announce record %+v has no interned path identity", r)
			}
		} else if r.PathLen != 0 || r.PathID != 0 {
			t.Fatalf("withdraw record %+v carries path identity", r)
		}
	}
	if announces == 0 {
		t.Fatal("trace ring captured no announcements")
	}
}

// TestObsProgressSSEUnderConcurrentGrid streams /progress while a
// concurrent scheduler grid publishes cell and attribution events through
// the broker — the cmd/experiments wiring, exercised under -race by the CI
// obs tier. Every data line must be valid JSON and follow SSE framing.
func TestObsProgressSSEUnderConcurrentGrid(t *testing.T) {
	srv, err := ServeObs("127.0.0.1:0", NewObsMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	broker := srv.Progress()

	sched := NewScheduler(4)
	sched.OnCell = func(cs CellStatus) {
		broker.Publish("cell", map[string]any{
			"scenario": cs.Scenario, "n": cs.N, "state": cs.State.String(),
		})
	}
	sched.OnResult = func(cs CellStatus, res *Result) {
		broker.Publish("attribution", map[string]any{
			"scenario": cs.Scenario, "n": cs.N, "total_updates": res.TotalUpdates,
		})
	}

	cfg := protocolVariants(11, 3)["NO-WRATE"]
	done := make(chan error, 1)
	go func() {
		_, err := sched.RunSweep(context.Background(), Baseline,
			SweepConfig{Sizes: []int{200, 300, 400}, TopologySeed: 11, Event: cfg})
		done <- err
	}()

	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Get("http://" + srv.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sawCell, sawAttr := false, false
	sc := bufio.NewScanner(resp.Body)
	for (!sawCell || !sawAttr) && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: cell"):
			sawCell = true
		case strings.HasPrefix(line, "event: attribution"):
			sawAttr = true
		case strings.HasPrefix(line, "data: "):
			if payload := strings.TrimPrefix(line, "data: "); !json.Valid([]byte(payload)) {
				t.Fatalf("data line is not valid JSON: %q", line)
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !sawCell || !sawAttr {
		t.Fatalf("stream missing events: cell=%v attribution=%v (scan err %v)", sawCell, sawAttr, sc.Err())
	}
}
