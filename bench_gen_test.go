package bgpchurn

// Topology-generation benchmark: the setup half of the internet-scale
// trajectory. BenchmarkTopologyGenerate runs the accelerated generator on
// the Baseline scenario at n ∈ {10k, 50k, 100k}; the Linear variant runs
// the retained O(n²) oracle for the before/after split recorded in
// BENCH_gen.json via `make bench-gen`. Because CI's bench-smoke runs every
// benchmark once, the Linear variant defaults to n=10k only — set
// GEN_BENCH_LINEAR=all to run the full (minutes-long) quadratic
// trajectory when recording before-numbers.
//
// Peak RSS is the process high-water mark (VmHWM): run one benchmark per
// process (as the Makefile target does) for clean memory numbers.

import (
	"fmt"
	"os"
	"testing"
)

func benchGenSizes(linear bool) []int {
	if linear && os.Getenv("GEN_BENCH_LINEAR") != "all" {
		return []int{10000}
	}
	return []int{10000, 50000, 100000}
}

func benchGenerate(b *testing.B, sizes []int, gen func(TopologyParams) (*Topology, error)) {
	for _, n := range sizes {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := Baseline.Params(n, scaleSeed)
			var edges int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				topo, err := gen(p)
				if err != nil {
					b.Fatal(err)
				}
				transit, peering := topo.Edges()
				edges = transit + peering
			}
			b.StopTimer()
			b.ReportMetric(float64(edges), "edges")
			b.ReportMetric(float64(PeakRSSBytes())/(1<<20), "peakRSS-MB")
		})
	}
}

func BenchmarkTopologyGenerate(b *testing.B) {
	benchGenerate(b, benchGenSizes(false), GenerateTopology)
}

func BenchmarkTopologyGenerateLinear(b *testing.B) {
	benchGenerate(b, benchGenSizes(true), GenerateTopologyLinear)
}
