package bgpchurn

import (
	"math"
	"testing"
)

// TestQuickstartFlow exercises the README's quick-start path end to end
// through the public facade.
func TestQuickstartFlow(t *testing.T) {
	topo, err := Baseline.Generate(400, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperiment(42)
	cfg.Origins = 5
	res, err := RunCEvents(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.U(T) <= 0 {
		t.Fatalf("U(T) = %v", res.U(T))
	}
	st := ComputeTopologyStats(topo, 100)
	if st.N != 400 {
		t.Fatalf("stats N = %d", st.N)
	}
}

func TestFacadeScenarios(t *testing.T) {
	if len(Scenarios()) != 14 {
		t.Fatalf("Scenarios() = %d entries, want 14", len(Scenarios()))
	}
	sc, err := ScenarioByName("TREE")
	if err != nil || sc.Name != "TREE" {
		t.Fatalf("ScenarioByName: %v %v", sc.Name, err)
	}
	if _, err := ScenarioByName("BOGUS"); err == nil {
		t.Fatal("bogus scenario accepted")
	}
}

func TestFacadeProtocolLevel(t *testing.T) {
	topo, err := Tree.Generate(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(topo, DefaultProtocol(7))
	if err != nil {
		t.Fatal(err)
	}
	origin := topo.NodesOfType(C)[0]
	net.Originate(origin, Prefix(1))
	net.Run()
	if !net.HasRoute(0, Prefix(1)) {
		t.Fatal("tier-1 never learned the prefix")
	}
	if !WRATEProtocol(1).RateLimitWithdrawals {
		t.Fatal("WRATEProtocol misconfigured")
	}
	if PerInterface == PerPrefix {
		t.Fatal("scope constants collide")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	series, err := GenerateMonitorTrace(DefaultMonitorTrace(3))
	if err != nil {
		t.Fatal(err)
	}
	trend, err := MannKendall(series)
	if err != nil {
		t.Fatal(err)
	}
	if !trend.Increasing {
		t.Fatal("monitor trace trend not detected")
	}
	x := []float64{1, 2, 3, 4}
	lin, err := LinearFit(x, []float64{2, 4, 6, 8})
	if err != nil || math.Abs(lin.Coeffs[1]-2) > 1e-9 {
		t.Fatalf("LinearFit: %v %v", lin, err)
	}
	quad, err := QuadraticFit(x, []float64{1, 4, 9, 16})
	if err != nil || math.Abs(quad.Coeffs[2]-1) > 1e-6 {
		t.Fatalf("QuadraticFit: %v %v", quad, err)
	}
	if g := GrowthFactor([]float64{2, 8}); g != 4 {
		t.Fatalf("GrowthFactor = %v", g)
	}
	if len(PaperSizes()) != 10 || PaperSizes()[9] != 10000 {
		t.Fatalf("PaperSizes = %v", PaperSizes())
	}
}
