// Command churntrend reproduces the paper's Fig. 1 analysis: estimate the
// growth trend of a BGP monitor's daily update counts with the
// Mann-Kendall test and Sen's slope.
//
// By default it synthesizes a monitor series (a documented substitution for
// the proprietary RIPE RIS feed; see DESIGN.md). It can also analyze a real
// series from a file with one daily count per line.
//
// Usage:
//
//	churntrend                       # synthetic 3-year series
//	churntrend -days 730 -growth 2.5 -csv trace.csv
//	churntrend -in mymonitor.txt     # analyze your own daily counts
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bgpchurn"
	"bgpchurn/internal/report"
	"bgpchurn/internal/stats"
)

func main() {
	var (
		days   = flag.Int("days", 1096, "series length in days (synthetic mode)")
		growth = flag.Float64("growth", 3.0, "embedded total growth factor (synthetic mode)")
		seed   = flag.Uint64("seed", 1, "seed (synthetic mode)")
		in     = flag.String("in", "", "read daily counts from this file instead of synthesizing")
		csvOut = flag.String("csv", "", "write the daily series to this CSV file")
		plot   = flag.Bool("plot", true, "print an ASCII plot of the series")
	)
	flag.Parse()

	var series []float64
	var source string
	if *in != "" {
		var err error
		series, err = readSeries(*in)
		if err != nil {
			fatal(err)
		}
		source = *in
	} else {
		p := bgpchurn.DefaultMonitorTrace(*seed)
		p.Days = *days
		p.TotalGrowth = *growth
		var err error
		series, err = bgpchurn.GenerateMonitorTrace(p)
		if err != nil {
			fatal(err)
		}
		source = fmt.Sprintf("synthetic monitor (%d days, embedded growth %.1fx)", *days, *growth)
	}

	trend, err := bgpchurn.MannKendall(series)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("source: %s\n", source)
	fmt.Printf("days: %d  mean: %s  min: %s  max: %s\n",
		len(series), report.Float(stats.Mean(series), 0),
		report.Float(minOf(series), 0), report.Float(maxOf(series), 0))

	if *plot {
		xs := make([]float64, len(series))
		for i := range xs {
			xs[i] = float64(i)
		}
		fmt.Println()
		if err := report.AsciiPlot(os.Stdout, 12, xs, report.Series{Name: "updates/day", Values: monthly(series)}); err == nil {
			fmt.Println()
		}
	}

	direction := "no significant trend"
	if trend.Increasing {
		direction = "INCREASING"
	} else if trend.Decreasing {
		direction = "DECREASING"
	}
	t := report.NewTable("Mann-Kendall trend analysis", "statistic", "value")
	t.AddRow("S", fmt.Sprint(trend.S))
	t.AddRow("Z", report.Float(trend.Z, 3))
	t.AddRow("p-value (two-sided)", report.Float(trend.PValue, 6))
	t.AddRow("trend", direction)
	t.AddRow("Sen slope (updates/day per day)", report.Float(trend.Slope, 2))
	first := stats.Mean(series[:minInt(30, len(series))])
	if first > 0 {
		totalGrowthPct := trend.Slope * float64(len(series)) / first * 100
		t.AddRow("implied growth over series", report.Float(totalGrowthPct, 1)+"%")
	}
	_ = t.Fprint(os.Stdout)
	fmt.Println("\npaper reference: ~200% growth over 2005-2007 at the France Telecom monitor")

	if *csvOut != "" {
		if err := writeCSV(*csvOut, series); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
}

// monthly smooths the series into 30-day bins for plotting (the raw daily
// series is too bursty for a terminal plot to be legible).
func monthly(series []float64) []float64 {
	out := make([]float64, len(series))
	for i := range series {
		lo := maxInt(0, i-15)
		hi := minInt(len(series), i+15)
		out[i] = stats.Mean(series[lo:hi])
	}
	return out
}

func readSeries(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func writeCSV(path string, series []float64) error {
	t := report.NewTable("", "day", "updates")
	for i, v := range series {
		t.AddRow(fmt.Sprint(i), report.Float(v, 0))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "churntrend:", err)
	os.Exit(1)
}
