package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadSeries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "series.txt")
	content := "# monitor feed\n100\n200.5\n\n300\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readSeries(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100, 200.5, 300}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestReadSeriesRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("100\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSeries(path); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := readSeries(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := writeCSV(path, []float64{1, 2.6}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "day,updates\n0,1\n1,2.6\n" // report.Float(_, 0) keeps full precision
	if string(data) != want {
		t.Fatalf("csv = %q, want %q", string(data), want)
	}
}

func TestMonthlySmoothing(t *testing.T) {
	series := make([]float64, 60)
	for i := range series {
		series[i] = float64(i % 2 * 100) // alternating 0/100
	}
	smooth := monthly(series)
	if len(smooth) != len(series) {
		t.Fatalf("length changed: %d", len(smooth))
	}
	// A 30-day window over an alternating series is ~50 everywhere.
	for i := 15; i < 45; i++ {
		if smooth[i] < 40 || smooth[i] > 60 {
			t.Fatalf("smooth[%d] = %v", i, smooth[i])
		}
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if minOf([]float64{3, 1, 2}) != 1 || maxOf([]float64{3, 1, 2}) != 3 {
		t.Fatal("minOf/maxOf broken")
	}
	if minInt(2, 3) != 2 || maxInt(2, 3) != 3 {
		t.Fatal("int helpers broken")
	}
}
