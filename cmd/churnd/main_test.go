package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read the daemon's output while run() writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(context.Background(), []string{"-nope"}, &out, &errBuf); code != exitUsage {
		t.Fatalf("bad flag: exit = %d, want %d", code, exitUsage)
	}
	if code := run(context.Background(), []string{"positional"}, &out, &errBuf); code != exitUsage {
		t.Fatalf("positional arg: exit = %d, want %d", code, exitUsage)
	}
	if !strings.Contains(errBuf.String(), "unexpected arguments") {
		t.Fatalf("stderr = %q, want unexpected-arguments message", errBuf.String())
	}
}

func TestRunBadListenAddr(t *testing.T) {
	var out, errBuf bytes.Buffer
	journal := filepath.Join(t.TempDir(), "j.journal")
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad", "-journal", journal},
		&out, &errBuf); code != exitError {
		t.Fatalf("bad addr: exit = %d, want %d", code, exitError)
	}
}

// TestRunServeAndDrain boots the daemon on a free port, checks it serves,
// then cancels the context (the first-signal path) and requires a graceful
// drain with exit 0.
func TestRunServeAndDrain(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "churnd.journal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out, errBuf syncBuffer
	codes := make(chan int, 1)
	go func() {
		codes <- run(ctx, []string{"-addr", "127.0.0.1:0", "-journal", journal,
			"-drain-timeout", "5s"}, &out, &errBuf)
	}()

	addrRE := regexp.MustCompile(`serving on http://([^\s]+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; out=%q err=%q", out.String(), errBuf.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !strings.Contains(out.String(), "recovered 0 cells") {
		t.Fatalf("missing recovery log line: %q", out.String())
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	cancel()
	select {
	case code := <-codes:
		if code != exitOK {
			t.Fatalf("drained exit = %d, want %d (err=%q)", code, exitOK, errBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited after context cancellation")
	}
	if !strings.Contains(out.String(), "drained in") {
		t.Fatalf("missing drain log line: %q", out.String())
	}
}
