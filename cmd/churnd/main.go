// Command churnd is the long-lived multi-tenant sweep server: one shared
// experiment scheduler (singleflight cell cache + crash-safe journal)
// behind an HTTP API.
//
//	churnd -addr :8100 -journal results/churnd.journal
//
// API (see EXPERIMENTS.md for curl examples):
//
//	POST   /jobs                submit a grid {scenarios, sizes, seed, ...}
//	GET    /jobs                list jobs
//	GET    /jobs/{id}           job status with per-cell detail
//	GET    /jobs/{id}/stream    per-job SSE (cell events + terminal job event)
//	GET    /jobs/{id}/result.csv  finished results, byte-stable across restarts
//	DELETE /jobs/{id}           cancel a job (other tenants are isolated)
//	GET    /healthz, /readyz    liveness / drain-aware readiness
//	GET    /stats, /metrics, /progress, /debug/pprof/, /debug/vars
//
// The first SIGTERM/SIGINT drains gracefully: admission stops, in-flight
// cells finish and are checkpointed, the journal closes, then the process
// exits 0. A second signal forces immediate exit with code 130. On restart
// the journal is replayed, so resubmitted grids recompute only the cells
// that never finished.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bgpchurn/internal/serve"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
	// exitForced is the conventional 128+SIGINT code for a hard stop.
	exitForced = 130
)

// exitNow is the second-signal hard-exit seam; tests may override it.
var exitNow = os.Exit

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus process plumbing: ctx cancellation plays the role of
// the first termination signal. Returns the exit code.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("churnd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8100", "listen address (host:port; :0 picks a free port)")
		workers      = fs.Int("workers", 0, "global worker pool: concurrent cells across all jobs (0 = GOMAXPROCS)")
		queueCap     = fs.Int("queue", serve.DefaultQueueCap, "admission bound: jobs admitted but unfinished before submissions shed with 429")
		maxCells     = fs.Int("max-cells", serve.DefaultMaxJobCells, "largest scenarios x sizes grid one job may submit")
		maxN         = fs.Int("max-n", serve.DefaultMaxN, "largest admissible network size")
		cellTimeout  = fs.Duration("cell-timeout", 0, "per-cell deadline (0 = none); jobs may tighten but not exceed it")
		retries      = fs.Int("retries", 1, "per-cell retry budget after transient faults before quarantine")
		journalPath  = fs.String("journal", "results/churnd.journal", "shared checkpoint journal ('' disables crash recovery)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget before in-flight cells are hard-cancelled")
	)
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "churnd: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}

	srv, err := serve.New(serve.Config{
		Workers:     *workers,
		QueueCap:    *queueCap,
		MaxJobCells: *maxCells,
		MaxN:        *maxN,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
		Journal:     *journalPath,
	})
	if err != nil {
		fmt.Fprintf(stderr, "churnd: %v\n", err)
		return exitError
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "churnd: %v\n", err)
		return exitError
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()

	if *journalPath != "" {
		fmt.Fprintf(stdout, "churnd: recovered %d cells from journal %s\n", srv.Recovered(), *journalPath)
	}
	fmt.Fprintf(stdout, "churnd: serving on http://%s\n", ln.Addr())

	// First signal: drain. While the drain runs, a second signal forces
	// immediate exit — a wedged drain must never hold the process hostage.
	<-ctx.Done()
	hardExit := watchForSecondSignal(stdout)
	defer close(hardExit)

	fmt.Fprintf(stdout, "churnd: draining (up to %s; second signal forces exit)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	start := time.Now()
	_ = srv.Drain(dctx)
	fmt.Fprintf(stdout, "churnd: drained in %s\n", time.Since(start).Round(time.Millisecond))

	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)
	_ = hs.Close()
	srv.Close()
	return exitOK
}

// watchForSecondSignal arms a goroutine that hard-exits the process (code
// 130) on the next SIGINT/SIGTERM. The returned channel disarms it, so a
// test-invoked run() never leaves a signal handler behind.
func watchForSecondSignal(stdout io.Writer) chan<- struct{} {
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer signal.Stop(sig)
		select {
		case <-sig:
			fmt.Fprintln(stdout, "churnd: forced exit")
			exitNow(exitForced)
		case <-done:
		}
	}()
	return done
}
