// Command benchjson records `go test -bench` output as a labeled entry in a
// JSON trajectory file, so benchmark numbers (ns/op, B/op, allocs/op and
// every ReportMetric value) can be compared across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime 1x ./internal/bgp . \
//	    | go run ./cmd/benchjson -label "post-PR2" -out BENCH_kernel.json
//
// The file holds a list of records in insertion order; re-using a label
// replaces that record in place. `make bench-kernel` wraps the invocation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark's measurements: every "value unit" pair from
// the result line, keyed by unit (ns/op, B/op, allocs/op, custom metrics).
type Benchmark struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Record is one labeled benchmark run.
type Record struct {
	Label      string               `json:"label"`
	Date       string               `json:"date"`
	Go         string               `json:"go,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// File is the trajectory file's layout.
type File struct {
	Note    string   `json:"note"`
	Records []Record `json:"records"`
}

func main() {
	var (
		label = flag.String("label", "", "record label (required); an existing record with the same label is replaced")
		out   = flag.String("out", "BENCH_kernel.json", "trajectory file to update")
	)
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	rec := Record{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchmarks: map[string]Benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the run through for the terminal
		if strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") {
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, bm, ok := parseLine(line)
		if ok {
			rec.Benchmarks[name] = bm
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rec.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}

	var f File
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *out, err))
		}
	}
	if f.Note == "" {
		f.Note = "Benchmark trajectory (go test -bench output recorded by cmd/benchjson; see `make bench-kernel`). Units: ns/op wall time, B/op heap bytes, allocs/op heap allocations; other keys are benchmark ReportMetric values."
	}
	replaced := false
	for i := range f.Records {
		if f.Records[i].Label == *label {
			f.Records[i] = rec
			replaced = true
			break
		}
	}
	if !replaced {
		f.Records = append(f.Records, rec)
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks as %q in %s\n", len(rec.Benchmarks), *label, *out)
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8 <tab> 100 <tab> 123 ns/op <tab> 7 allocs/op ...
func parseLine(line string) (string, Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Benchmark{}, false
	}
	bm := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Benchmark{}, false
		}
		bm.Metrics[fields[i+1]] = v
	}
	return name, bm, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
