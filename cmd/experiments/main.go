// Command experiments regenerates every figure of the paper's evaluation
// (Figs. 1 and 4–12) as printed series tables, ASCII trend plots, and
// optional CSV files.
//
// Usage:
//
//	experiments -fig all -fast          # reduced sweep, minutes
//	experiments -fig 4,6,12             # selected figures
//	experiments -fig all -out results/  # full paper-scale sweep + CSVs
//	experiments -fast -parallel 8       # up to 8 grid cells at once
//	experiments -fast -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The profiling flags write standard runtime/pprof profiles of the whole
// run (inspect with `go tool pprof`); see EXPERIMENTS.md, "Profiling".
//
// Full mode uses the paper's parameters (n = 1000..10000, 100 C-event
// originators per point) and takes tens of minutes; -fast cuts both.
//
// All sweeps run through the experiment scheduler: the scenario×size grid
// needed by the selected figures is computed up front on a worker pool
// (-parallel bounds concurrent cells, 0 = GOMAXPROCS), each unique cell
// exactly once — figures that share a sweep (Fig. 4–12 all reuse the
// Baseline sweep) are served from the result cache, and output is
// byte-identical to a sequential run on the same seed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"bgpchurn"
	"bgpchurn/internal/des"
	"bgpchurn/internal/report"
	"bgpchurn/internal/stats"
)

// Exit codes. Distinct codes let wrappers (CI, Makefiles) tell an
// interrupted run — resumable with -resume — from a genuine failure.
const (
	exitOK          = 0   // all selected figures rendered
	exitError       = 1   // hard failure (bad config, I/O error, permanent cell error)
	exitUsage       = 2   // flag parsing failed
	exitQuarantined = 3   // run completed but one or more cells were quarantined
	exitInterrupted = 130 // cancelled by SIGINT/SIGTERM (128 + SIGINT)
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitNow is the second-signal hard-exit seam; tests may override it.
var exitNow = os.Exit

// armSecondSignalExit waits for the grid context to be cancelled by the
// first SIGINT/SIGTERM, then re-arms signal delivery so the next signal
// forces an immediate exit with code 130 — a wedged drain (a cell stuck in
// an in-flight computation) must never hold the process hostage. The
// returned disarm func stops the watcher; run() defers it so test
// invocations never leak a signal registration.
func armSecondSignalExit(ctx context.Context, stderr io.Writer) (disarm func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
			return
		case <-ctx.Done():
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case <-sig:
			fmt.Fprintln(stderr, "experiments: second signal, forced exit")
			exitNow(exitInterrupted)
		case <-done:
		}
	}()
	return func() { close(done) }
}

// run is the whole binary behind a testable seam: parse flags, execute,
// return the exit code. Cleanup happens in defers, so every exit path
// flushes profiles, the journal, and the obs server.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figs        = fs.String("fig", "all", "comma-separated figure numbers (1,4,...,12) or 'all'")
		fast        = fs.Bool("fast", false, "reduced sizes and origins (for a quick look)")
		outDir      = fs.String("out", "", "directory for CSV output (created if missing)")
		seed        = fs.Uint64("seed", 1, "master seed")
		origins     = fs.Int("origins", 0, "override the number of C-event originators")
		parallel    = fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
		warm        = fs.Bool("warmstart", false, "install the converged pre-event state directly instead of flooding it through the simulator (faster; statistically equivalent but not byte-identical to the default)")
		cpuprof     = fs.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
		memprof     = fs.String("memprofile", "", "write a heap profile to this file on exit (pprof format)")
		obsAddr     = fs.String("obs", "", "serve live metrics on this address (e.g. :8080; :0 picks a free port): /metrics, /debug/vars, /debug/pprof/")
		manifest    = fs.String("manifest", "results/manifest.json", "write the run manifest (config, seeds, timings, counters) to this file; empty disables")
		logFormat   = fs.String("log-format", "text", "cell progress log format: text or json")
		tracePath   = fs.String("trace", "", "write a JSONL trace of the most recent updates to this file (bounded ring)")
		traceCap    = fs.Int("trace-cap", 0, "update-trace ring capacity in records (0 = 65536)")
		journalPath = fs.String("journal", "results/cells.journal", "cell checkpoint journal (JSONL); empty disables checkpointing")
		resume      = fs.Bool("resume", false, "replay the cell journal into the scheduler cache before running, so only missing cells are recomputed")
		retries     = fs.Int("retries", 0, "recompute a cell up to this many times after a transient fault (panic, timeout) before quarantining it")
		cellTimeout = fs.Duration("cell-timeout", 0, "per-cell wall-clock deadline (0 = none); a timed-out cell counts as a transient fault")
		shards      = fs.Int("shards", 0, "barrier-synchronized node shards per simulation run (0/1 = unsharded; >1 requires -link-delay); results are byte-identical at every value")
		linkDelay   = fs.Duration("link-delay", 0, "per-session propagation latency (0 = the paper's instant-admission model); positive values select the windowed executor that -shards parallelizes")
		spansPath   = fs.String("spans", "", "write sweep/cell/origin/event causal spans as JSONL to this file (enables root-cause tracing; results stay byte-identical)")
		chromePath  = fs.String("chrome-trace", "", "write the causal spans as Chrome trace_event JSON to this file (open in chrome://tracing or Perfetto); implies span recording")
		metricsOut  = fs.String("metrics-out", "", "write a one-shot Prometheus-text metrics snapshot to this file at exit, for runs that never start the -obs server")
	)
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "experiments:", err)
		return exitError
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(stderr, "experiments: heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "experiments: heap profile:", err)
			}
		}()
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the grid context —
	// no new cells start, in-flight cells drain, the journal and manifest
	// are flushed, and the run exits with exitInterrupted. NotifyContext
	// keeps the signals registered until stop(), so a second signal would
	// otherwise be swallowed; armSecondSignalExit turns it into an
	// immediate hard exit (code 130) in case the drain wedges.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	defer armSecondSignalExit(ctx, stderr)()

	r := &runner{
		ctx:         ctx,
		seed:        *seed,
		fast:        *fast,
		outDir:      *outDir,
		origins:     *origins,
		parallel:    *parallel,
		warm:        *warm,
		cellTimeout: *cellTimeout,
		shards:      *shards,
		linkDelay:   *linkDelay,
		sched:       bgpchurn.NewScheduler(*parallel),
		stdout:      stdout,
		metrics:     bgpchurn.NewObsMetrics(),
	}
	r.sched.SetObs(r.metrics)
	r.sched.SetRetryPolicy(*retries, 0)
	bgpchurn.InstrumentTopologyGeneration(r.metrics)
	if *tracePath != "" {
		r.trace = bgpchurn.NewUpdateTrace(*traceCap)
	}
	if *spansPath != "" || *chromePath != "" {
		r.spans = bgpchurn.NewSpanRecorder()
	}
	if *obsAddr != "" {
		srv, err := bgpchurn.ServeObs(*obsAddr, r.metrics)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		r.progress = srv.Progress()
		fmt.Fprintf(stdout, "obs: serving /metrics, /debug/vars, /debug/pprof/, /progress on http://%s\n", srv.Addr())
	}
	if r.spans != nil && r.progress != nil {
		// Stream each completed span to /progress subscribers as it lands.
		progress := r.progress
		r.spans.OnSpan(func(s bgpchurn.SpanRecord) { progress.Publish("span", s) })
	}
	if *journalPath != "" {
		if *resume {
			recs, truncated, err := bgpchurn.LoadJournal(*journalPath)
			switch {
			case errors.Is(err, os.ErrNotExist):
				fmt.Fprintf(stdout, "resume: no journal at %s, starting fresh\n", *journalPath)
			case err != nil:
				return fail(err)
			default:
				seeded := r.sched.Resume(recs)
				fmt.Fprintf(stdout, "resume: seeded %d cells from %s\n", seeded, *journalPath)
				if truncated {
					fmt.Fprintf(stdout, "resume: dropped a torn final journal line (crash mid-append); that cell will be recomputed\n")
				}
			}
		}
		j, err := bgpchurn.OpenJournal(*journalPath)
		if err != nil {
			return fail(err)
		}
		defer j.Close()
		r.sched.SetJournal(j)
	}
	logCell, err := report.NewCellLogger(stdout, *logFormat)
	if err != nil {
		return fail(err)
	}
	r.sched.OnCell = func(cs bgpchurn.CellStatus) {
		r.recordCell(cs)
		r.publishCell(cs)
		logCell(report.CellEvent{
			Scenario: cs.Scenario, N: cs.N, Seed: cs.Seed, State: cs.State.String(),
			Attempt: cs.Attempt, Elapsed: cs.Elapsed, Err: cs.Err,
		})
	}
	r.sched.OnResult = func(cs bgpchurn.CellStatus, res *bgpchurn.Result) {
		r.publishResult(cs, res)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fail(err)
		}
	}

	wanted := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"1", "4", "5", "6", "7", "8", "9", "10", "11", "12", "ext"} {
			wanted[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			wanted[strings.TrimSpace(f)] = true
		}
	}

	type figure struct {
		id  string
		fn  func(*runner) error
		des string
	}
	figures := []figure{
		{"1", (*runner).fig1, "churn growth at a monitor (Mann-Kendall)"},
		{"4", (*runner).fig4, "U(X) per node type vs n"},
		{"5", (*runner).fig5, "per-relation split at T and M nodes"},
		{"6", (*runner).fig6, "relative increase of Uc(T), Up(T), Ud(M)"},
		{"7", (*runner).fig7, "m/e/q factor growth"},
		{"8", (*runner).fig8, "AS population mix deviations"},
		{"9", (*runner).fig9, "multihoming degree deviations"},
		{"10", (*runner).fig10, "peering deviations"},
		{"11", (*runner).fig11, "provider preference deviations"},
		{"12", (*runner).fig12, "WRATE vs NO-WRATE"},
		{"ext", (*runner).extensions, "extensions: L-events, exploration, burstiness"},
	}
	start := time.Now()
	var runErr error
	// Warm the scheduler cache: every sweep the selected figures need runs
	// as one parallel scenario×size grid, each unique cell exactly once.
	// Quarantined cells do not abort the run — figures that depend on them
	// are skipped below while everything else renders.
	if err := r.prefetch(wanted); err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			r.interrupted = true
		case bgpchurn.IsQuarantined(err):
			// Reported per-figure and in the summary.
		default:
			runErr = err
		}
	}
	var ran, skipped []string
	if runErr == nil && !r.interrupted {
		for _, f := range figures {
			if !wanted[f.id] {
				continue
			}
			if ctx.Err() != nil {
				r.interrupted = true
				break
			}
			fmt.Fprintf(stdout, "=== Figure %s: %s ===\n", f.id, f.des)
			if err := f.fn(r); err != nil {
				if errors.Is(err, context.Canceled) {
					r.interrupted = true
					break
				}
				if bgpchurn.IsQuarantined(err) {
					skipped = append(skipped, f.id)
					fmt.Fprintf(stderr, "experiments: figure %s skipped (quarantined cell): %v\n", f.id, err)
					fmt.Fprintln(stdout)
					continue
				}
				runErr = fmt.Errorf("figure %s: %w", f.id, err)
				break
			}
			ran = append(ran, f.id)
			fmt.Fprintln(stdout)
		}
	}

	// Epilogue: summary, quarantine report, trace, journal and manifest all
	// flush regardless of how the run ended, so an interrupted run leaves a
	// complete checkpoint behind for -resume.
	st := r.sched.CacheStats()
	fmt.Fprintf(stdout, "done in %v (grid cells computed: %d, cache hits: %d, resumed: %d, retries: %d, quarantined: %d, cancelled: %d)\n",
		time.Since(start).Round(time.Second), st.Misses, st.Hits, st.Resumed, st.Retries, st.Quarantined, st.Cancelled)
	quarantined := r.sched.Quarantined()
	for _, q := range quarantined {
		fmt.Fprintf(stderr, "experiments: quarantined: %v\n", q)
	}
	if len(skipped) > 0 {
		fmt.Fprintf(stderr, "experiments: figures skipped due to quarantined cells: %s\n", strings.Join(skipped, ","))
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, r.trace); err != nil && runErr == nil {
			runErr = err
		} else if err == nil {
			fmt.Fprintf(stdout, "trace: %s (%d records, %d overwritten)\n", *tracePath, r.trace.Len(), r.trace.Dropped())
		}
	}
	if r.spans != nil {
		if *spansPath != "" {
			if err := writeFileWith(*spansPath, r.spans.WriteJSONL); err != nil && runErr == nil {
				runErr = err
			} else if err == nil {
				fmt.Fprintf(stdout, "spans: %s (%d spans)\n", *spansPath, r.spans.Len())
			}
		}
		if *chromePath != "" {
			if err := writeFileWith(*chromePath, r.spans.WriteChromeTrace); err != nil && runErr == nil {
				runErr = err
			} else if err == nil {
				fmt.Fprintf(stdout, "chrome-trace: %s\n", *chromePath)
			}
		}
	}
	if *metricsOut != "" {
		if err := writeFileWith(*metricsOut, r.metrics.WritePrometheus); err != nil && runErr == nil {
			runErr = err
		} else if err == nil {
			fmt.Fprintf(stdout, "metrics: %s\n", *metricsOut)
		}
	}
	if j := r.sched.Journal(); j != nil {
		if err := j.Err(); err != nil {
			fmt.Fprintf(stderr, "experiments: journal incomplete (results are unaffected): %v\n", err)
		} else if j.Appended() > 0 {
			fmt.Fprintf(stdout, "journal: %s (%d cells checkpointed)\n", j.Path(), j.Appended())
		}
	}
	if *manifest != "" {
		cfgMap := map[string]string{}
		fs.VisitAll(func(f *flag.Flag) { cfgMap[f.Name] = f.Value.String() })
		if err := r.writeManifest(*manifest, cfgMap, ran, time.Since(start)); err != nil && runErr == nil {
			runErr = err
		} else if err == nil {
			fmt.Fprintf(stdout, "manifest: %s\n", *manifest)
		}
	}

	switch {
	case runErr != nil:
		return fail(runErr)
	case r.interrupted:
		fmt.Fprintln(stderr, "experiments: interrupted; rerun with -resume to finish from the journal")
		return exitInterrupted
	case len(quarantined) > 0 || len(skipped) > 0:
		return exitQuarantined
	}
	return exitOK
}

// writeTrace exports the update-trace ring as JSONL.
func writeTrace(path string, tr *bgpchurn.UpdateTrace) error {
	return writeFileWith(path, tr.WriteJSONL)
}

// writeFileWith creates path and streams write into it, closing on every
// path.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type runner struct {
	// ctx is the run's cancellation context (signal-driven in the binary;
	// nil means context.Background).
	ctx      context.Context
	seed     uint64
	fast     bool
	outDir   string
	origins  int
	parallel int
	// warm enables warm-start convergence (Experiment.WarmStart).
	warm bool
	// cellTimeout is the per-cell deadline (-cell-timeout; 0 = none).
	cellTimeout time.Duration
	// shards/linkDelay select the sharded windowed executor (-shards,
	// -link-delay). Recorded in the manifest like every flag; shards is
	// excluded from the cell cache key (results are shard-invariant).
	shards    int
	linkDelay time.Duration
	// interrupted records that the run was cancelled by a signal, for the
	// manifest.
	interrupted bool
	// sched runs every sweep: cells execute on its worker pool and figures
	// that request the same sweep are served from its result cache.
	sched *bgpchurn.Scheduler
	// stdout receives tables and plots (os.Stdout in the binary; a buffer
	// or io.Discard in tests).
	stdout io.Writer
	// metrics is the run's instrumentation hub, attached to the scheduler,
	// every worker network, and topology generation.
	metrics *bgpchurn.ObsMetrics
	// trace, when non-nil, captures the most recent updates (-trace flag).
	trace *bgpchurn.UpdateTrace
	// spans, when non-nil, collects the sweep→cell→origin→event causal span
	// hierarchy (-spans / -chrome-trace flags).
	spans *bgpchurn.SpanRecorder
	// progress, when non-nil, is the obs server's /progress SSE broker;
	// cell status, results and spans stream into it mid-grid.
	progress *bgpchurn.ProgressBroker
	// cells accumulates manifest entries, one per OnCell progress event
	// except "start". Appends happen inside the serialized OnCell callback.
	cells []bgpchurn.CellTiming
	// rollCells/rollU accumulate the rolling Eq.-1 attribution summary
	// streamed on /progress: completed-cell count and running sums of U(X)
	// per node type. Updated only inside the serialized OnResult callback.
	rollCells int
	rollU     [4]float64
}

// publishCell streams one scheduler progress event to /progress.
func (r *runner) publishCell(cs bgpchurn.CellStatus) {
	if r.progress == nil {
		return
	}
	payload := map[string]any{
		"scenario":   cs.Scenario,
		"n":          cs.N,
		"state":      cs.State.String(),
		"attempt":    cs.Attempt,
		"elapsed_ms": float64(cs.Elapsed) / float64(time.Millisecond),
	}
	if cs.Err != nil {
		payload["err"] = cs.Err.Error()
	}
	r.progress.Publish("cell", payload)
}

// publishResult folds one available cell result into the rolling Eq.-1
// attribution summary and streams it. Calls arrive serialized (the
// scheduler's OnResult mutex), so the accumulators need no locking.
func (r *runner) publishResult(cs bgpchurn.CellStatus, res *bgpchurn.Result) {
	if r.progress == nil || res == nil {
		return
	}
	r.rollCells++
	cell := map[string]any{
		"scenario":      cs.Scenario,
		"n":             cs.N,
		"total_updates": res.TotalUpdates,
		"peak_rate":     res.PeakRate,
	}
	mean := map[string]float64{}
	for _, t := range []bgpchurn.NodeType{bgpchurn.T, bgpchurn.M, bgpchurn.CP, bgpchurn.C} {
		r.rollU[t] += res.U(t)
		cell["u_"+t.String()] = res.U(t)
		mean["u_"+t.String()] = r.rollU[t] / float64(r.rollCells)
	}
	r.progress.Publish("attribution", map[string]any{
		"cells":        r.rollCells,
		"cell":         cell,
		"rolling_mean": mean,
	})
}

// recordCell stores one scheduler progress event for the run manifest.
func (r *runner) recordCell(cs bgpchurn.CellStatus) {
	if cs.State == bgpchurn.CellStart {
		return
	}
	ct := bgpchurn.CellTiming{
		Scenario:  cs.Scenario,
		N:         cs.N,
		Seed:      cs.Seed,
		State:     cs.State.String(),
		ElapsedMS: float64(cs.Elapsed) / float64(time.Millisecond),
	}
	if cs.Attempt > 1 {
		ct.Attempts = cs.Attempt
	}
	if cs.Err != nil {
		ct.Err = cs.Err.Error()
	}
	r.cells = append(r.cells, ct)
	if r.spans != nil && cs.State == bgpchurn.CellDone {
		end := r.spans.Now()
		dur := float64(cs.Elapsed) / float64(time.Microsecond)
		r.spans.Append(bgpchurn.SpanRecord{
			Level: bgpchurn.SpanCell, Name: "cell",
			StartUS: end - dur, DurUS: dur,
			Scenario: cs.Scenario, N: cs.N,
		})
	}
}

// writeManifest assembles and writes the run manifest: provenance, the
// effective configuration, per-cell timings, the scheduler's cache traffic
// and the final metric snapshot.
func (r *runner) writeManifest(path string, config map[string]string, figures []string, wall time.Duration) error {
	st := r.sched.CacheStats()
	mf := &bgpchurn.Manifest{
		SchemaVersion: 1,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GitRevision:   bgpchurn.GitRevision(),
		Command:       os.Args,
		Config:        config,
		Seed:          r.seed,
		Figures:       figures,
		Cells:         r.cells,
		Cache: bgpchurn.ManifestCacheCounts{
			Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
			Resumed: st.Resumed, Retries: st.Retries,
			Quarantined: st.Quarantined, Cancelled: st.Cancelled,
		},
		Outcomes:    cellOutcomes(r.cells),
		Interrupted: r.interrupted,
		WallSeconds: wall.Seconds(),
	}
	if r.cells == nil {
		mf.Cells = []bgpchurn.CellTiming{}
	}
	if j := r.sched.Journal(); j != nil {
		mf.Journal = j.Path()
		mf.JournalCells = j.Appended()
	}
	if r.metrics != nil {
		mf.Counters = r.metrics.Snapshot()
	}
	return mf.WriteFile(path)
}

// cellOutcomes folds per-cell progress events into final outcome counts.
// "retried" events are intermediate — the cell's final event carries its
// attempt count — so a cell that succeeded after retries counts once, as
// "retried", and a first-try success counts as "ok".
func cellOutcomes(cells []bgpchurn.CellTiming) map[string]int {
	if len(cells) == 0 {
		return nil
	}
	out := map[string]int{}
	for _, c := range cells {
		switch c.State {
		case "retried":
			// Intermediate event, not an outcome.
		case "done":
			if c.Attempts > 1 {
				out["retried"]++
			} else {
				out["ok"]++
			}
		default:
			out[c.State]++
		}
	}
	return out
}

// sweepVariant names one (scenario, protocol) sweep a figure depends on.
type sweepVariant struct {
	sc    bgpchurn.Scenario
	wrate bool
}

// figSweeps lists the sweeps each figure needs, for cache prefetching.
func figSweeps(id string) []sweepVariant {
	base := sweepVariant{bgpchurn.Baseline, false}
	noW := func(scs ...bgpchurn.Scenario) []sweepVariant {
		out := make([]sweepVariant, len(scs))
		for i, sc := range scs {
			out[i] = sweepVariant{sc, false}
		}
		return out
	}
	switch id {
	case "4", "5", "6", "7":
		return []sweepVariant{base}
	case "8":
		return noW(bgpchurn.RichMiddle, bgpchurn.Baseline, bgpchurn.StaticMiddle, bgpchurn.TransitClique, bgpchurn.NoMiddle)
	case "9":
		return noW(bgpchurn.DenseCore, bgpchurn.DenseEdge, bgpchurn.Baseline, bgpchurn.Tree, bgpchurn.ConstantMHD)
	case "10":
		return noW(bgpchurn.Baseline, bgpchurn.NoPeering, bgpchurn.StrongCorePeering, bgpchurn.StrongEdgePeering)
	case "11":
		return noW(bgpchurn.Baseline, bgpchurn.PreferMiddle, bgpchurn.PreferTop)
	case "12":
		return []sweepVariant{base, {bgpchurn.Baseline, true}}
	}
	return nil // figures 1 and ext run no sweeps
}

// prefetch computes every sweep the wanted figures need as one parallel
// grid, so the figures themselves render from the cache.
func (r *runner) prefetch(wanted map[string]bool) error {
	seen := map[string]bool{}
	var reqs []bgpchurn.GridRequest
	for id := range wanted {
		for _, v := range figSweeps(id) {
			key := fmt.Sprintf("%s/%v", v.sc.Name, v.wrate)
			if seen[key] {
				continue
			}
			seen[key] = true
			reqs = append(reqs, bgpchurn.GridRequest{
				Scenario: v.sc, Sizes: r.sizes(), TopologySeed: r.seed, Event: r.experiment(v.wrate),
			})
		}
	}
	if len(reqs) == 0 {
		return nil
	}
	// Map iteration order is random; fix the request (and thus job) order.
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Scenario.Name != reqs[j].Scenario.Name {
			return reqs[i].Scenario.Name < reqs[j].Scenario.Name
		}
		return !reqs[i].Event.BGP.RateLimitWithdrawals
	})
	fmt.Fprintf(r.stdout, "scheduling %d sweeps (%d grid cells, parallelism %d)...\n",
		len(reqs), len(reqs)*len(r.sizes()), r.workers())
	var gridStart float64
	if r.spans != nil {
		gridStart = r.spans.Now()
	}
	_, err := r.sched.RunGrid(r.ctx, reqs)
	if r.spans != nil {
		r.spans.Append(bgpchurn.SpanRecord{
			Level: bgpchurn.SpanSweep, Name: fmt.Sprintf("grid (%d sweeps)", len(reqs)),
			StartUS: gridStart, DurUS: r.spans.Now() - gridStart,
		})
	}
	return err
}

func (r *runner) sizes() []int {
	if r.fast {
		return []int{1000, 2000, 3000}
	}
	return bgpchurn.PaperSizes()
}

func (r *runner) experiment(wrate bool) bgpchurn.Experiment {
	cfg := bgpchurn.DefaultExperiment(r.seed)
	if wrate {
		cfg.BGP = bgpchurn.WRATEProtocol(r.seed)
	}
	if r.fast {
		cfg.Origins = 20
	}
	if r.origins > 0 {
		cfg.Origins = r.origins
	}
	cfg.Parallelism = r.parallel
	cfg.WarmStart = r.warm
	cfg.CellTimeout = r.cellTimeout
	cfg.BGP.LinkDelay = des.Time(r.linkDelay)
	cfg.BGP.Shards = r.shards
	cfg.Obs = r.metrics
	cfg.Trace = r.trace
	cfg.Spans = r.spans
	return cfg
}

// workers reports the scheduler's effective cell parallelism.
func (r *runner) workers() int {
	if r.parallel > 0 {
		return r.parallel
	}
	return runtime.GOMAXPROCS(0)
}

// sweep fetches one scenario sweep through the scheduler. After prefetch
// this is pure cache traffic (hits are logged by the OnCell callback);
// results are byte-identical to the sequential bgpchurn.Sweep.
func (r *runner) sweep(sc bgpchurn.Scenario, wrate bool) (*bgpchurn.SweepResult, error) {
	return r.sched.RunSweep(r.ctx, sc, bgpchurn.SweepConfig{
		Sizes:        r.sizes(),
		TopologySeed: r.seed,
		Event:        r.experiment(wrate),
	})
}

// emit prints the table (plus plot) and writes the CSV if requested.
func (r *runner) emit(name string, t *report.Table, xs []float64, series ...report.Series) error {
	if err := t.Fprint(r.stdout); err != nil {
		return err
	}
	if len(series) > 0 {
		fmt.Fprintln(r.stdout)
		if err := report.AsciiPlot(r.stdout, 10, xs, series...); err != nil {
			return err
		}
	}
	if r.outDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(r.outDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// fig1 regenerates the monitor churn-growth analysis on the synthetic RIS
// trace (substitution documented in DESIGN.md).
func (r *runner) fig1() error { return r.runFig1() }

func (r *runner) runFig1() error {
	p := bgpchurn.DefaultMonitorTrace(r.seed)
	series, err := bgpchurn.GenerateMonitorTrace(p)
	if err != nil {
		return err
	}
	trend, err := bgpchurn.MannKendall(series)
	if err != nil {
		return err
	}
	days := make([]float64, len(series))
	for i := range days {
		days[i] = float64(i)
	}
	// Monthly means keep the table readable; the CSV gets daily values.
	t := report.NewTable("Fig 1: daily updates at a synthetic monitor (monthly means)", "day", "updates")
	for d := 0; d+30 <= len(series); d += 30 {
		t.AddRow(fmt.Sprint(d), report.Float(stats.Mean(series[d:d+30]), 0))
	}
	if err := r.emit("fig1", t, days, report.Series{Name: "updates", Values: series}); err != nil {
		return err
	}
	growth := trend.Slope * float64(len(series)) / stats.Mean(series[:30]) * 100
	fmt.Printf("\nMann-Kendall: S=%d Z=%s p=%s; Sen slope %s updates/day"+
		" => total growth ~%s%% over %d days (paper: ~200%% over 2005-2007)\n",
		trend.S, report.Float(trend.Z, 2), report.Float(trend.PValue, 4),
		report.Float(trend.Slope, 1), report.Float(growth, 0), len(series))
	return nil
}

// fig4Table builds Fig. 4's table from a Baseline sweep; split out so the
// golden test can render the sequential path through the same code.
func fig4Table(sw *bgpchurn.SweepResult, xs []float64) (*report.Table, []report.Series) {
	series := []report.Series{
		{Name: "T", Values: sw.SeriesU(bgpchurn.T)},
		{Name: "M", Values: sw.SeriesU(bgpchurn.M)},
		{Name: "CP", Values: sw.SeriesU(bgpchurn.CP)},
		{Name: "C", Values: sw.SeriesU(bgpchurn.C)},
	}
	t := report.SeriesTable("Fig 4: updates per C-event by node type (Baseline, NO-WRATE)", "n", xs, series...)
	return t, series
}

func (r *runner) fig4() error {
	sw, err := r.sweep(bgpchurn.Baseline, false)
	if err != nil {
		return err
	}
	xs := floats(r.sizes())
	t, series := fig4Table(sw, xs)
	return r.emit("fig4", t, xs, series...)
}

func (r *runner) fig5() error {
	sw, err := r.sweep(bgpchurn.Baseline, false)
	if err != nil {
		return err
	}
	xs := floats(r.sizes())
	top := []report.Series{
		{Name: "Uc(T)", Values: sw.SeriesURel(bgpchurn.T, bgpchurn.Customer)},
		{Name: "Up(T)", Values: sw.SeriesURel(bgpchurn.T, bgpchurn.Peer)},
	}
	bottom := []report.Series{
		{Name: "Ud(M)", Values: sw.SeriesURel(bgpchurn.M, bgpchurn.Provider)},
		{Name: "Up(M)", Values: sw.SeriesURel(bgpchurn.M, bgpchurn.Peer)},
		{Name: "Uc(M)", Values: sw.SeriesURel(bgpchurn.M, bgpchurn.Customer)},
	}
	t1 := report.SeriesTable("Fig 5 (top): T-node updates by sender relation", "n", xs, top...)
	if err := r.emit("fig5_top", t1, xs, top...); err != nil {
		return err
	}
	fmt.Println()
	t2 := report.SeriesTable("Fig 5 (bottom): M-node updates by sender relation", "n", xs, bottom...)
	return r.emit("fig5_bottom", t2, xs, bottom...)
}

func (r *runner) fig6() error {
	sw, err := r.sweep(bgpchurn.Baseline, false)
	if err != nil {
		return err
	}
	xs := floats(r.sizes())
	series := []report.Series{
		{Name: "Uc(T)", Values: stats.RelativeSeries(sw.SeriesURel(bgpchurn.T, bgpchurn.Customer))},
		{Name: "Up(T)", Values: stats.RelativeSeries(sw.SeriesURel(bgpchurn.T, bgpchurn.Peer))},
		{Name: "Ud(M)", Values: stats.RelativeSeries(sw.SeriesURel(bgpchurn.M, bgpchurn.Provider))},
	}
	t := report.SeriesTable("Fig 6: relative increase (normalized at first size)", "n", xs, series...)
	if err := r.emit("fig6", t, xs, series...); err != nil {
		return err
	}
	// The paper's regression claims: Uc(T) quadratic, Up(T) linear.
	ucT := sw.SeriesURel(bgpchurn.T, bgpchurn.Customer)
	upT := sw.SeriesURel(bgpchurn.T, bgpchurn.Peer)
	if quad, err := bgpchurn.QuadraticFit(xs, ucT); err == nil {
		fmt.Printf("\nUc(T) quadratic fit R2 = %s (paper: 0.92)\n", report.Float(quad.R2, 3))
	}
	if lin, err := bgpchurn.LinearFit(xs, upT); err == nil {
		fmt.Printf("Up(T) linear fit R2 = %s (paper: 0.95)\n", report.Float(lin.R2, 3))
	}
	return nil
}

func (r *runner) fig7() error {
	sw, err := r.sweep(bgpchurn.Baseline, false)
	if err != nil {
		return err
	}
	xs := floats(r.sizes())
	mSeries := []report.Series{
		{Name: "mc,T", Values: stats.RelativeSeries(sw.SeriesM(bgpchurn.T, bgpchurn.Customer))},
		{Name: "md,M", Values: stats.RelativeSeries(sw.SeriesM(bgpchurn.M, bgpchurn.Provider))},
		{Name: "mp,T", Values: stats.RelativeSeries(sw.SeriesM(bgpchurn.T, bgpchurn.Peer))},
	}
	eSeries := []report.Series{
		{Name: "ed,M", Values: stats.RelativeSeries(sw.SeriesE(bgpchurn.M, bgpchurn.Provider))},
		{Name: "ep,T", Values: stats.RelativeSeries(sw.SeriesE(bgpchurn.T, bgpchurn.Peer))},
		{Name: "ec,T", Values: stats.RelativeSeries(sw.SeriesE(bgpchurn.T, bgpchurn.Customer))},
	}
	qSeries := []report.Series{
		{Name: "qd,M", Values: sw.SeriesQ(bgpchurn.M, bgpchurn.Provider)},
		{Name: "qp,T", Values: sw.SeriesQ(bgpchurn.T, bgpchurn.Peer)},
		{Name: "qc,T", Values: sw.SeriesQ(bgpchurn.T, bgpchurn.Customer)},
	}
	t1 := report.SeriesTable("Fig 7 (top): relative increase of m factors", "n", xs, mSeries...)
	if err := r.emit("fig7_m", t1, xs, mSeries...); err != nil {
		return err
	}
	fmt.Println()
	t2 := report.SeriesTable("Fig 7 (middle): relative increase of e factors", "n", xs, eSeries...)
	if err := r.emit("fig7_e", t2, xs, eSeries...); err != nil {
		return err
	}
	fmt.Println()
	t3 := report.SeriesTable("Fig 7 (bottom): q probabilities (absolute)", "n", xs, qSeries...)
	return r.emit("fig7_q", t3, xs, qSeries...)
}

// deviationFigure renders a family of scenario sweeps as one relative-
// increase table of U at the given node type, normalized to the Baseline's
// first point as in the paper.
func (r *runner) deviationFigure(name, title string, typ bgpchurn.NodeType, scenarios []bgpchurn.Scenario) error {
	xs := floats(r.sizes())
	base, err := r.sweep(bgpchurn.Baseline, false)
	if err != nil {
		return err
	}
	norm := base.SeriesU(typ)[0]
	var series []report.Series
	for _, sc := range scenarios {
		sw, err := r.sweep(sc, false)
		if err != nil {
			return err
		}
		vals := sw.SeriesU(typ)
		rel := make([]float64, len(vals))
		for i, v := range vals {
			rel[i] = v / norm
		}
		series = append(series, report.Series{Name: sc.Name, Values: rel})
	}
	t := report.SeriesTable(title, "n", xs, series...)
	return r.emit(name, t, xs, series...)
}

func (r *runner) fig8() error {
	return r.deviationFigure("fig8",
		"Fig 8: relative U(T), population-mix deviations (Baseline n0 = 1)",
		bgpchurn.T,
		[]bgpchurn.Scenario{bgpchurn.RichMiddle, bgpchurn.Baseline, bgpchurn.StaticMiddle, bgpchurn.TransitClique, bgpchurn.NoMiddle})
}

func (r *runner) fig9() error {
	if err := r.deviationFigure("fig9_top",
		"Fig 9 (top): relative U(T), multihoming deviations",
		bgpchurn.T,
		[]bgpchurn.Scenario{bgpchurn.DenseCore, bgpchurn.DenseEdge, bgpchurn.Baseline, bgpchurn.Tree, bgpchurn.ConstantMHD}); err != nil {
		return err
	}
	fmt.Println()
	// Bottom panel: absolute mc,T per deviation.
	xs := floats(r.sizes())
	var series []report.Series
	for _, sc := range []bgpchurn.Scenario{bgpchurn.DenseCore, bgpchurn.DenseEdge, bgpchurn.Baseline, bgpchurn.Tree, bgpchurn.ConstantMHD} {
		sw, err := r.sweep(sc, false)
		if err != nil {
			return err
		}
		series = append(series, report.Series{Name: sc.Name, Values: sw.SeriesM(bgpchurn.T, bgpchurn.Customer)})
	}
	t := report.SeriesTable("Fig 9 (bottom): mc,T per deviation", "n", xs, series...)
	return r.emit("fig9_bottom", t, xs, series...)
}

func (r *runner) fig10() error {
	xs := floats(r.sizes())
	var series []report.Series
	for _, sc := range []bgpchurn.Scenario{bgpchurn.Baseline, bgpchurn.NoPeering, bgpchurn.StrongCorePeering, bgpchurn.StrongEdgePeering} {
		sw, err := r.sweep(sc, false)
		if err != nil {
			return err
		}
		series = append(series, report.Series{Name: sc.Name, Values: sw.SeriesU(bgpchurn.M)})
	}
	t := report.SeriesTable("Fig 10: U(M), peering deviations (absolute)", "n", xs, series...)
	return r.emit("fig10", t, xs, series...)
}

func (r *runner) fig11() error {
	if err := r.deviationFigure("fig11_top",
		"Fig 11 (top): relative U(T), provider-preference deviations",
		bgpchurn.T,
		[]bgpchurn.Scenario{bgpchurn.Baseline, bgpchurn.PreferMiddle, bgpchurn.PreferTop}); err != nil {
		return err
	}
	fmt.Println()
	xs := floats(r.sizes())
	var mc, qc []report.Series
	for _, sc := range []bgpchurn.Scenario{bgpchurn.PreferMiddle, bgpchurn.PreferTop} {
		sw, err := r.sweep(sc, false)
		if err != nil {
			return err
		}
		mc = append(mc, report.Series{Name: sc.Name, Values: sw.SeriesM(bgpchurn.T, bgpchurn.Customer)})
		qc = append(qc, report.Series{Name: sc.Name, Values: sw.SeriesQ(bgpchurn.T, bgpchurn.Customer)})
	}
	t2 := report.SeriesTable("Fig 11 (middle): mc,T", "n", xs, mc...)
	if err := r.emit("fig11_mc", t2, xs, mc...); err != nil {
		return err
	}
	fmt.Println()
	t3 := report.SeriesTable("Fig 11 (bottom): qc,T", "n", xs, qc...)
	return r.emit("fig11_qc", t3, xs, qc...)
}

func (r *runner) fig12() error {
	noW, err := r.sweep(bgpchurn.Baseline, false)
	if err != nil {
		return err
	}
	w, err := r.sweep(bgpchurn.Baseline, true)
	if err != nil {
		return err
	}
	xs := floats(r.sizes())
	var ratios []report.Series
	for _, typ := range []bgpchurn.NodeType{bgpchurn.C, bgpchurn.CP, bgpchurn.M, bgpchurn.T} {
		a, b := w.SeriesU(typ), noW.SeriesU(typ)
		vals := make([]float64, len(a))
		for i := range a {
			if b[i] > 0 {
				vals[i] = a[i] / b[i]
			}
		}
		ratios = append(ratios, report.Series{Name: typ.String(), Values: vals})
	}
	t := report.SeriesTable("Fig 12 (top): U(X) WRATE / U(X) NO-WRATE", "n", xs, ratios...)
	if err := r.emit("fig12_top", t, xs, ratios...); err != nil {
		return err
	}
	fmt.Println()
	eSeries := []report.Series{
		{Name: "ed,C", Values: w.SeriesE(bgpchurn.C, bgpchurn.Provider)},
		{Name: "ep,T", Values: w.SeriesE(bgpchurn.T, bgpchurn.Peer)},
		{Name: "ec,T", Values: w.SeriesE(bgpchurn.T, bgpchurn.Customer)},
	}
	t2 := report.SeriesTable("Fig 12 (bottom): e factors under WRATE (absolute)", "n", xs, eSeries...)
	return r.emit("fig12_bottom", t2, xs, eSeries...)
}

// extensions runs the beyond-the-paper measurements recorded in
// EXPERIMENTS.md: link events vs C-events, path exploration per tier under
// both MRAI variants, and the burstiness of event churn.
func (r *runner) extensions() error {
	n := 2000
	if r.fast {
		n = 1000
	}
	topo, err := bgpchurn.Baseline.Generate(n, r.seed)
	if err != nil {
		return err
	}

	type variant struct {
		name string
		cfg  bgpchurn.Experiment
	}
	mk := func(wrate bool, kind bgpchurn.EventKind) bgpchurn.Experiment {
		cfg := r.experiment(wrate)
		cfg.Kind = kind
		return cfg
	}
	variants := []variant{
		{"C-event NO-WRATE", mk(false, bgpchurn.CEventKind)},
		{"C-event WRATE", mk(true, bgpchurn.CEventKind)},
		{"L-event NO-WRATE", mk(false, bgpchurn.LinkEventKind)},
		{"L-event WRATE", mk(true, bgpchurn.LinkEventKind)},
	}

	t := report.NewTable(fmt.Sprintf("Extensions at n=%d: event kinds, exploration and burstiness", n),
		"variant", "total-updates", "peak/s", "explore(T)", "explore(M)", "explore(CP)", "explore(C)", "down-s", "up-s")
	for _, v := range variants {
		res, err := bgpchurn.RunCEvents(topo, v.cfg)
		if err != nil {
			return err
		}
		t.AddRow(v.name,
			report.Float(res.TotalUpdates, 0), report.Float(res.PeakRate, 0),
			report.Float(res.PathExploration[bgpchurn.T], 2),
			report.Float(res.PathExploration[bgpchurn.M], 2),
			report.Float(res.PathExploration[bgpchurn.CP], 2),
			report.Float(res.PathExploration[bgpchurn.C], 2),
			report.Float(res.DownSeconds, 1), report.Float(res.UpSeconds, 1))
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	if r.outDir != "" {
		f, err := os.Create(filepath.Join(r.outDir, "extensions.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return t.WriteCSV(f)
	}
	return nil
}
