package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"bgpchurn"
)

func TestRunnerSizes(t *testing.T) {
	fast := &runner{fast: true}
	if got := fast.sizes(); len(got) != 3 || got[2] != 3000 {
		t.Fatalf("fast sizes = %v", got)
	}
	full := &runner{}
	if got := full.sizes(); len(got) != 10 || got[0] != 1000 || got[9] != 10000 {
		t.Fatalf("full sizes = %v", got)
	}
}

func TestRunnerExperiment(t *testing.T) {
	r := &runner{seed: 7, fast: true, parallel: 2}
	cfg := r.experiment(false)
	if cfg.Origins != 20 || cfg.BGP.RateLimitWithdrawals || cfg.Parallelism != 2 {
		t.Fatalf("fast NO-WRATE config: %+v", cfg)
	}
	cfg = r.experiment(true)
	if !cfg.BGP.RateLimitWithdrawals {
		t.Fatal("WRATE flag lost")
	}
	r.origins = 33
	if got := r.experiment(false).Origins; got != 33 {
		t.Fatalf("origin override = %d", got)
	}
	if cfg := r.experiment(false); cfg.WarmStart {
		t.Fatal("warm start on by default")
	}
	r.warm = true
	if cfg := r.experiment(false); !cfg.WarmStart {
		t.Fatal("-warmstart not propagated to the experiment config")
	}
	full := &runner{seed: 7}
	if got := full.experiment(false).Origins; got != 100 {
		t.Fatalf("full-mode origins = %d, want the paper's 100", got)
	}
}

func TestFloats(t *testing.T) {
	got := floats([]int{1, 2, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("floats = %v", got)
	}
	if len(floats(nil)) != 0 {
		t.Fatal("nil floats")
	}
}

// fastRunner builds a -fast runner with silenced table output, matching
// the binary's defaults for everything else.
func fastRunner(seed uint64) *runner {
	return &runner{seed: seed, fast: true, sched: bgpchurn.NewScheduler(0), stdout: io.Discard}
}

func TestSweepCaching(t *testing.T) {
	// Figures requesting the same sweep must share the scheduler's cells:
	// the second sweep() is pure cache traffic and returns equal results.
	r := fastRunner(3)
	first, err := r.sweep(bgpchurn.Baseline, false)
	if err != nil {
		t.Fatal(err)
	}
	st := r.sched.CacheStats()
	if st.Misses != len(r.sizes()) || st.Hits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	second, err := r.sweep(bgpchurn.Baseline, false)
	if err != nil {
		t.Fatal(err)
	}
	st = r.sched.CacheStats()
	if st.Misses != len(r.sizes()) || st.Hits != len(r.sizes()) {
		t.Fatalf("warm stats = %+v, want every cell served from cache", st)
	}
	for i := range first.Points {
		if first.Points[i].R != second.Points[i].R {
			t.Fatalf("cell n=%d recomputed", first.Points[i].N)
		}
	}
}

func TestFigSweepsCoverAllFigures(t *testing.T) {
	for _, id := range []string{"4", "5", "6", "7", "8", "9", "10", "11", "12"} {
		if len(figSweeps(id)) == 0 {
			t.Errorf("figure %s declares no sweeps", id)
		}
	}
	for _, id := range []string{"1", "ext"} {
		if len(figSweeps(id)) != 0 {
			t.Errorf("figure %s should declare no sweeps", id)
		}
	}
	// Fig. 12 needs both protocol variants of the Baseline sweep.
	v := figSweeps("12")
	if len(v) != 2 || v[0].wrate == v[1].wrate {
		t.Fatalf("fig 12 sweeps = %+v", v)
	}
}

func TestPrefetchDeduplicatesSharedSweeps(t *testing.T) {
	// Figures 4 and 6 share the Baseline NO-WRATE sweep: prefetching both
	// must compute each cell exactly once.
	r := fastRunner(1)
	if err := r.prefetch(map[string]bool{"4": true, "6": true}); err != nil {
		t.Fatal(err)
	}
	st := r.sched.CacheStats()
	if st.Misses != len(r.sizes()) || st.Hits != 0 {
		t.Fatalf("prefetch stats = %+v, want %d unique cells and no duplicates", st, len(r.sizes()))
	}
	// Rendering the figures afterwards is pure cache traffic.
	if _, err := r.sweep(bgpchurn.Baseline, false); err != nil {
		t.Fatal(err)
	}
	st = r.sched.CacheStats()
	if st.Misses != len(r.sizes()) {
		t.Fatalf("figure render recomputed cells: %+v", st)
	}
}

// TestFig4FastGoldenCSV locks the output of `experiments -fast -fig 4`
// (seed 1): the scheduler-produced CSV must match both the committed
// golden file and a sequential core.Sweep rendered through the same table
// code, so scheduler refactors cannot silently change figure output.
func TestFig4FastGoldenCSV(t *testing.T) {
	dir := t.TempDir()
	r := fastRunner(1)
	r.outDir = dir
	if err := r.fig4(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}

	golden, err := os.ReadFile(filepath.Join("testdata", "fig4_fast.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("fig4 -fast CSV drifted from testdata/fig4_fast.golden.csv:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// The sequential path must produce the identical CSV.
	seq, err := bgpchurn.Sweep(bgpchurn.Baseline, bgpchurn.SweepConfig{
		Sizes:        r.sizes(),
		TopologySeed: r.seed,
		Event:        r.experiment(false),
	})
	if err != nil {
		t.Fatal(err)
	}
	table, _ := fig4Table(seq, floats(r.sizes()))
	var want bytes.Buffer
	if err := table.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("scheduler CSV differs from sequential sweep CSV:\nscheduler:\n%s\nsequential:\n%s", got, want.Bytes())
	}
}

// TestKillAndResumeByteIdenticalCSV is the crash-recovery property test:
// a run cancelled mid-grid leaves a journal from which a fresh process
// recomputes only the missing cells — and the resumed run's figure CSV is
// byte-identical to an uninterrupted run's.
func TestKillAndResumeByteIdenticalCSV(t *testing.T) {
	refDir, resDir := t.TempDir(), t.TempDir()
	journal := filepath.Join(t.TempDir(), "cells.journal")

	// Reference: uninterrupted run.
	ref := fastRunner(1)
	ref.outDir = refDir
	if err := ref.fig4(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(refDir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel the grid context as soon as the first cell
	// completes; in-flight cells drain, the rest are abandoned.
	interrupted := fastRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted.ctx = ctx
	j, err := bgpchurn.OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	interrupted.sched.SetJournal(j)
	interrupted.sched.OnCell = func(cs bgpchurn.CellStatus) {
		if cs.State == bgpchurn.CellDone {
			cancel()
		}
	}
	if err := interrupted.fig4(); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: want context.Canceled, got %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	checkpointed := j.Appended()
	if checkpointed < 1 || checkpointed >= len(interrupted.sizes()) {
		t.Fatalf("journal has %d cells, want a strict subset of %d", checkpointed, len(interrupted.sizes()))
	}

	// Resumed run in a "fresh process": new runner, journal replayed.
	resumed := fastRunner(1)
	resumed.outDir = resDir
	recs, truncated, err := bgpchurn.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("cleanly closed journal reported a torn tail")
	}
	if got := resumed.sched.Resume(recs); got != checkpointed {
		t.Fatalf("Resume seeded %d cells, journal had %d", got, checkpointed)
	}
	var resumedCells int
	resumed.sched.OnCell = func(cs bgpchurn.CellStatus) {
		if cs.State == bgpchurn.CellResumed {
			resumedCells++
		}
	}
	if err := resumed.fig4(); err != nil {
		t.Fatal(err)
	}
	if resumedCells != checkpointed {
		t.Fatalf("resumed-cell events = %d, want %d (every journaled cell a cache hit)", resumedCells, checkpointed)
	}
	st := resumed.sched.CacheStats()
	if st.Misses != len(resumed.sizes())-checkpointed {
		t.Fatalf("resumed run computed %d cells, want only the %d missing ones",
			st.Misses, len(resumed.sizes())-checkpointed)
	}

	got, err := os.ReadFile(filepath.Join(resDir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed CSV differs from uninterrupted run:\nresumed:\n%s\nreference:\n%s", got, want)
	}
}

// TestRunExitCodes drives the whole binary through its testable seam.
func TestRunExitCodes(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, io.Discard, io.Discard); code != exitUsage {
		t.Fatalf("bad flag: exit %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-fig", "nope", "-manifest", "", "-journal", ""}, io.Discard, io.Discard); code != exitOK {
		t.Fatalf("no matching figures: exit %d, want %d (vacuous success)", code, exitOK)
	}
	// Figure 1 runs no sweeps, so this exercises the full pipeline —
	// journal, manifest, epilogue — in milliseconds.
	dir := t.TempDir()
	manifest := filepath.Join(dir, "manifest.json")
	journal := filepath.Join(dir, "cells.journal")
	code := run([]string{"-fig", "1", "-fast", "-manifest", manifest, "-journal", journal}, io.Discard, io.Discard)
	if code != exitOK {
		t.Fatalf("fig 1 run: exit %d, want %d", code, exitOK)
	}
	mf, err := bgpchurn.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Interrupted {
		t.Fatal("clean run marked interrupted")
	}
	if len(mf.Figures) != 1 || mf.Figures[0] != "1" {
		t.Fatalf("manifest figures = %v", mf.Figures)
	}
	// The journal was created with a valid header even though no cells ran.
	recs, truncated, err := bgpchurn.LoadJournal(journal)
	if err != nil || truncated || len(recs) != 0 {
		t.Fatalf("fresh journal: recs=%v truncated=%v err=%v", recs, truncated, err)
	}
	// A -resume rerun of the same figure also succeeds.
	if code := run([]string{"-fig", "1", "-fast", "-resume", "-manifest", "", "-journal", journal}, io.Discard, io.Discard); code != exitOK {
		t.Fatalf("resume rerun: exit %d, want %d", code, exitOK)
	}
}

func TestCellOutcomes(t *testing.T) {
	cells := []bgpchurn.CellTiming{
		{State: "done"},
		{State: "done", Attempts: 3},
		{State: "retried", Attempts: 1}, // intermediate: not an outcome
		{State: "retried", Attempts: 2}, // intermediate: not an outcome
		{State: "cached"},
		{State: "resumed"},
		{State: "quarantined", Attempts: 2},
		{State: "cancelled"},
		{State: "failed"},
	}
	got := cellOutcomes(cells)
	want := map[string]int{
		"ok": 1, "retried": 1, "cached": 1, "resumed": 1,
		"quarantined": 1, "cancelled": 1, "failed": 1,
	}
	if len(got) != len(want) {
		t.Fatalf("outcomes = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("outcomes[%s] = %d, want %d (full: %v)", k, got[k], v, got)
		}
	}
	if cellOutcomes(nil) != nil {
		t.Fatal("empty cell list must fold to nil outcomes")
	}
}

func TestRecordCellSkipsStartAndConvertsFields(t *testing.T) {
	r := fastRunner(1)
	r.recordCell(bgpchurn.CellStatus{Scenario: "Baseline", N: 1000, State: bgpchurn.CellStart})
	if len(r.cells) != 0 {
		t.Fatal("start events must not appear in the manifest")
	}
	r.recordCell(bgpchurn.CellStatus{
		Scenario: "Baseline", N: 1000, Seed: 1001,
		State: bgpchurn.CellDone, Elapsed: 1500 * time.Millisecond,
	})
	r.recordCell(bgpchurn.CellStatus{
		Scenario: "Tree", N: 2000, Seed: 2001,
		State: bgpchurn.CellFailed, Err: errors.New("boom"),
	})
	if len(r.cells) != 2 {
		t.Fatalf("recorded %d cells, want 2", len(r.cells))
	}
	if c := r.cells[0]; c.Scenario != "Baseline" || c.N != 1000 || c.Seed != 1001 ||
		c.State != "done" || c.ElapsedMS != 1500 || c.Err != "" {
		t.Fatalf("done cell = %+v", c)
	}
	if c := r.cells[1]; c.State != "failed" || c.Err != "boom" {
		t.Fatalf("failed cell = %+v", c)
	}
}

// TestWriteManifestEndToEnd runs a real (fast, fig 4) instrumented sweep
// and checks the written manifest against the scheduler's own accounting:
// cache counts, per-cell entries, and the counter snapshot.
func TestWriteManifestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	r := fastRunner(1)
	r.outDir = dir
	r.metrics = bgpchurn.NewObsMetrics()
	r.sched.SetObs(r.metrics)
	r.sched.OnCell = r.recordCell
	if err := r.fig4(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "manifest.json")
	cfgMap := map[string]string{"fast": "true", "seed": "1"}
	if err := r.writeManifest(path, cfgMap, []string{"4"}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	mf, err := bgpchurn.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if mf.SchemaVersion != 1 || mf.Seed != 1 || mf.Config["fast"] != "true" ||
		len(mf.Figures) != 1 || mf.Figures[0] != "4" {
		t.Fatalf("manifest header = %+v", mf)
	}
	st := r.sched.CacheStats()
	if mf.Cache.Hits != st.Hits || mf.Cache.Misses != st.Misses || mf.Cache.Evictions != st.Evictions {
		t.Fatalf("manifest cache %+v != scheduler stats %+v", mf.Cache, st)
	}
	if len(mf.Cells) != len(r.sizes()) {
		t.Fatalf("manifest has %d cells, want one per sweep size (%d)", len(mf.Cells), len(r.sizes()))
	}
	for _, c := range mf.Cells {
		if c.State != "done" || c.Scenario != bgpchurn.Baseline.Name || c.Seed == 0 {
			t.Fatalf("unexpected cell entry: %+v", c)
		}
	}
	if got := mf.Counters["bgpchurn_core_cells_computed_total"]; got != float64(st.Misses) {
		t.Fatalf("cells_computed counter = %v, want %d", got, st.Misses)
	}
	if mf.Counters["bgpchurn_bgp_updates_processed_total"] <= 0 {
		t.Fatal("no processed updates in manifest counter snapshot")
	}
	if mf.WallSeconds != 2 {
		t.Fatalf("wall seconds = %v", mf.WallSeconds)
	}
}

// TestRunWritesSpanAndMetricsArtifacts drives the binary seam with the
// observability flags: -spans and -chrome-trace must produce parseable
// span artifacts, -metrics-out a Prometheus-text snapshot, and the
// manifest must record all three paths in its flag map.
func TestRunWritesSpanAndMetricsArtifacts(t *testing.T) {
	dir := t.TempDir()
	spans := filepath.Join(dir, "spans.jsonl")
	chrome := filepath.Join(dir, "chrome.json")
	metrics := filepath.Join(dir, "metrics.txt")
	manifest := filepath.Join(dir, "manifest.json")
	code := run([]string{
		"-fig", "4", "-fast", "-origins", "3", "-seed", "1",
		"-spans", spans, "-chrome-trace", chrome, "-metrics-out", metrics,
		"-manifest", manifest, "-journal", "",
	}, io.Discard, io.Discard)
	if code != exitOK {
		t.Fatalf("run: exit %d, want %d", code, exitOK)
	}

	f, err := os.Open(spans)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := bgpchurn.ReadSpanJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	levels := map[string]int{}
	for _, s := range recs {
		levels[s.Level]++
	}
	// 3 cells × 3 origins × (withdraw + announce + origin) + 3 cell + 1 sweep.
	if levels[bgpchurn.SpanEvent] != 18 || levels[bgpchurn.SpanOrigin] != 9 ||
		levels[bgpchurn.SpanCell] != 3 || levels[bgpchurn.SpanSweep] != 1 {
		t.Fatalf("span level counts = %v", levels)
	}

	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	snap, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(snap, []byte("bgpchurn_bgp_updates_processed_total")) {
		t.Fatalf("metrics snapshot missing update counter:\n%s", snap)
	}

	mf, err := bgpchurn.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	for flagName, want := range map[string]string{
		"spans": spans, "chrome-trace": chrome, "metrics-out": metrics,
	} {
		if got := mf.Config[flagName]; got != want {
			t.Fatalf("manifest config[%s] = %q, want %q", flagName, got, want)
		}
	}
}

// TestSecondSignalForcesExit exercises the double-^C path: once the grid
// context is cancelled (the first signal), the watcher re-arms delivery and
// the next SIGINT forces an immediate exit with code 130 through the
// exitNow seam.
func TestSecondSignalForcesExit(t *testing.T) {
	// Keep SIGINT from killing the test process while the watcher races to
	// register its own handler.
	guard := make(chan os.Signal, 8)
	signal.Notify(guard, os.Interrupt)
	defer signal.Stop(guard)

	codes := make(chan int, 1)
	old := exitNow
	exitNow = func(code int) { codes <- code }
	defer func() { exitNow = old }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var errBuf bytes.Buffer
	disarm := armSecondSignalExit(ctx, &errBuf)
	defer disarm()

	cancel() // the "first signal": grid context cancelled

	// The watcher registers its signal channel asynchronously after the
	// context fires, so resend until one lands post-registration.
	deadline := time.After(5 * time.Second)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case code := <-codes:
			if code != exitInterrupted {
				t.Fatalf("forced exit code = %d, want %d", code, exitInterrupted)
			}
			return
		case <-tick.C:
			if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
				t.Fatalf("kill: %v", err)
			}
		case <-deadline:
			t.Fatal("second signal never forced an exit")
		}
	}
}
