package main

import (
	"testing"

	"bgpchurn"
)

func TestRunnerSizes(t *testing.T) {
	fast := &runner{fast: true}
	if got := fast.sizes(); len(got) != 3 || got[2] != 3000 {
		t.Fatalf("fast sizes = %v", got)
	}
	full := &runner{}
	if got := full.sizes(); len(got) != 10 || got[0] != 1000 || got[9] != 10000 {
		t.Fatalf("full sizes = %v", got)
	}
}

func TestRunnerExperiment(t *testing.T) {
	r := &runner{seed: 7, fast: true, parallel: 2}
	cfg := r.experiment(false)
	if cfg.Origins != 20 || cfg.BGP.RateLimitWithdrawals || cfg.Parallelism != 2 {
		t.Fatalf("fast NO-WRATE config: %+v", cfg)
	}
	cfg = r.experiment(true)
	if !cfg.BGP.RateLimitWithdrawals {
		t.Fatal("WRATE flag lost")
	}
	r.origins = 33
	if got := r.experiment(false).Origins; got != 33 {
		t.Fatalf("origin override = %d", got)
	}
	full := &runner{seed: 7}
	if got := full.experiment(false).Origins; got != 100 {
		t.Fatalf("full-mode origins = %d, want the paper's 100", got)
	}
}

func TestFloats(t *testing.T) {
	got := floats([]int{1, 2, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("floats = %v", got)
	}
	if len(floats(nil)) != 0 {
		t.Fatal("nil floats")
	}
}

func TestSweepCaching(t *testing.T) {
	r := &runner{
		seed:   3,
		fast:   true,
		sweeps: map[string]*bgpchurn.SweepResult{},
	}
	// Pre-seed the cache and verify sweep() returns it without running.
	want := &bgpchurn.SweepResult{Scenario: "BASELINE"}
	r.sweeps["BASELINE/false"] = want
	got, err := r.sweep(bgpchurn.Baseline, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("cache miss on identical request")
	}
}
