// Command topogen generates AS-level topologies under any of the paper's
// growth scenarios and reports their structural properties (§3, Table 1).
//
// Usage:
//
//	topogen -scenario BASELINE -n 2000 -seed 1 -props
//	topogen -scenario DENSE-CORE -n 5000 -o topo.txt
//	topogen -table1
//	topogen -ccdf -n 4000
package main

import (
	"flag"
	"fmt"
	"os"

	"bgpchurn"
	"bgpchurn/internal/report"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "BASELINE", "growth scenario (see -list)")
		n            = flag.Int("n", 1000, "network size (number of ASes)")
		seed         = flag.Uint64("seed", 1, "generator seed")
		out          = flag.String("o", "", "write the topology to this file")
		props        = flag.Bool("props", false, "print structural properties")
		table1       = flag.Bool("table1", false, "print realized Table 1 parameters across sizes")
		ccdf         = flag.Bool("ccdf", false, "print the degree CCDF (power-law check)")
		list         = flag.Bool("list", false, "list available scenarios")
	)
	flag.Parse()

	if *list {
		for _, sc := range bgpchurn.Scenarios() {
			fmt.Printf("%-22s %s\n", sc.Name, sc.Description)
		}
		return
	}

	sc, err := bgpchurn.ScenarioByName(*scenarioName)
	if err != nil {
		fatal(err)
	}

	if *table1 {
		printTable1(sc, *seed)
		return
	}

	topo, err := sc.Generate(*n, *seed)
	if err != nil {
		fatal(err)
	}
	if err := topo.Validate(); err != nil {
		fatal(fmt.Errorf("generated topology failed validation: %w", err))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if _, err := topo.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d nodes) to %s\n", sc.Name, topo.N(), *out)
	}

	if *props || (*out == "" && !*ccdf) {
		printProps(sc.Name, topo)
	}

	if *ccdf {
		degs, vals := bgpchurn.DegreeCCDF(topo)
		t := report.NewTable(fmt.Sprintf("Degree CCDF, %s n=%d", sc.Name, topo.N()), "degree", "P(D>=d)")
		for i := range degs {
			t.AddRow(fmt.Sprint(degs[i]), report.Float(vals[i], 6))
		}
		_ = t.Fprint(os.Stdout)
	}
}

func printProps(name string, topo *bgpchurn.Topology) {
	st := bgpchurn.ComputeTopologyStats(topo, 500)
	counts := topo.CountByType()
	t := report.NewTable(fmt.Sprintf("Properties of %s n=%d", name, topo.N()), "property", "value")
	t.AddRow("nodes T/M/CP/C", fmt.Sprintf("%d / %d / %d / %d", counts[0], counts[1], counts[2], counts[3]))
	t.AddRow("transit links", fmt.Sprint(st.Transit))
	t.AddRow("peering links", fmt.Sprint(st.Peering))
	t.AddRow("mean MHD M", report.Float(st.MeanMHD[bgpchurn.M], 3))
	t.AddRow("mean MHD CP", report.Float(st.MeanMHD[bgpchurn.CP], 3))
	t.AddRow("mean MHD C", report.Float(st.MeanMHD[bgpchurn.C], 3))
	t.AddRow("mean peer degree M", report.Float(st.MeanPeerDeg[bgpchurn.M], 3))
	t.AddRow("clustering coefficient", report.Float(st.Clustering, 4))
	t.AddRow("assortativity", report.Float(st.Assortativity, 4))
	t.AddRow("avg path length (hops)", report.Float(st.AvgPathLength, 3))
	t.AddRow("max degree", fmt.Sprint(st.MaxDegree))
	_ = t.Fprint(os.Stdout)
}

func printTable1(sc bgpchurn.Scenario, seed uint64) {
	t := report.NewTable(fmt.Sprintf("Realized parameters, %s", sc.Name),
		"n", "nT", "nM", "nCP", "nC", "dM", "dCP", "dC", "pM", "pCP-M", "pCP-CP")
	for _, n := range bgpchurn.PaperSizes() {
		p := sc.Params(n, seed)
		t.AddRow(fmt.Sprint(n), fmt.Sprint(p.NT), fmt.Sprint(p.NM), fmt.Sprint(p.NCP), fmt.Sprint(p.NC),
			report.Float(p.DM, 3), report.Float(p.DCP, 3), report.Float(p.DC, 3),
			report.Float(p.PM, 3), report.Float(p.PCPM, 3), report.Float(p.PCPCP, 3))
	}
	_ = t.Fprint(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
