package main

import "testing"

func TestParseLine(t *testing.T) {
	name, m, ok := parseLine("BenchmarkRunCEvents/obs-8 \t 2\t  31562582 ns/op\t      4429 total-updates\t 3898864 B/op\t    7281 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if name != "BenchmarkRunCEvents/obs" {
		t.Fatalf("name = %q, want GOMAXPROCS suffix stripped", name)
	}
	if m["allocs/op"] != 7281 || m["B/op"] != 3898864 || m["ns/op"] != 31562582 || m["total-updates"] != 4429 {
		t.Fatalf("metrics = %v", m)
	}
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tbgpchurn\t0.2s",
		"BenchmarkBroken",
		"Benchmark  notanumber  1 ns/op",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("%q should not parse as a result line", line)
		}
	}
}
