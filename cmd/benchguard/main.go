// Command benchguard compares two benchmarks from one `go test -bench` run
// and fails when the guarded benchmark regresses past a tolerance, so CI can
// enforce invariants like "instrumentation adds no allocations". It reads
// the benchmark output on stdin (pass -benchmem for allocation metrics):
//
//	go test -run '^$' -bench 'BenchmarkRunCEvents/(warm|obs)' -benchmem -benchtime 3x . \
//	    | go run ./cmd/benchguard -base BenchmarkRunCEvents/warm -guard BenchmarkRunCEvents/obs
//
// The guard passes when
//
//	guard(metric) <= base(metric) * (1 + tolerance) + slack
//
// With the defaults (-metric allocs/op, -tolerance 0, -slack 16) this allows
// the obs variant a fixed setup budget (probe-block attachment per run) but
// no per-event allocations: any probe that allocates on the steady-state
// path multiplies with the event count and blows far past the slack.
//
// With -budget set, the guard instead enforces an absolute ceiling on the
// guarded benchmark's metric and needs no baseline — the scale-smoke job
// uses this to hold the n=10k cell's peak RSS under a fixed budget:
//
//	go test -run '^$' -bench 'BenchmarkScaleCell/n=10000' -benchtime 1x . \
//	    | go run ./cmd/benchguard -guard BenchmarkScaleCell/n=10000 -metric peakRSS-MB -budget 512
//
// Exit status: 0 pass, 1 regression, 2 usage or parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	var (
		base      = flag.String("base", "", "baseline benchmark name (required unless -budget is set; GOMAXPROCS suffix ignored)")
		guard     = flag.String("guard", "", "guarded benchmark name (required)")
		metric    = flag.String("metric", "allocs/op", "unit to compare, as printed by go test (e.g. allocs/op, B/op, ns/op)")
		tolerance = flag.Float64("tolerance", 0, "allowed relative overhead (0.02 = 2%)")
		slack     = flag.Float64("slack", 16, "allowed absolute overhead in metric units")
		budget    = flag.Float64("budget", 0, "absolute limit for the guarded metric; enables budget mode, which needs no -base (the scale-smoke peak-RSS ceiling)")
	)
	flag.Parse()
	if *guard == "" || (*base == "" && *budget <= 0) {
		fmt.Fprintln(os.Stderr, "benchguard: -guard and either -base or -budget are required")
		os.Exit(2)
	}

	results := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the run through for the log
		name, metrics, ok := parseLine(line)
		if ok {
			results[name] = metrics
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	gm, okG := results[*guard]
	if !okG {
		fatal(fmt.Errorf("missing benchmark on stdin: guard %q not found", *guard))
	}
	gv, okG := gm[*metric]
	if !okG {
		fatal(fmt.Errorf("metric %q missing from guard %q (did you pass -benchmem?)", *metric, *guard))
	}
	if *budget > 0 {
		if gv > *budget {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s %s = %g exceeds budget %g\n", *guard, *metric, gv, *budget)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchguard: ok %s %s = %g within budget %g\n", *guard, *metric, gv, *budget)
		return
	}

	bm, okB := results[*base]
	if !okB {
		fatal(fmt.Errorf("missing benchmark on stdin: base %q not found", *base))
	}
	bv, okB := bm[*metric]
	if !okB {
		fatal(fmt.Errorf("metric %q missing from base %q (did you pass -benchmem?)", *metric, *base))
	}

	limit := bv*(1+*tolerance) + *slack
	if gv > limit {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s %s = %g exceeds %g (base %g * %g + slack %g)\n",
			*guard, *metric, gv, limit, bv, 1+*tolerance, *slack)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchguard: ok %s %s = %g within %g (base %g)\n", *guard, *metric, gv, limit, bv)
}

// parseLine extracts the benchmark name (GOMAXPROCS suffix stripped) and its
// "value unit" pairs from one result line.
func parseLine(line string) (string, map[string]float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}
