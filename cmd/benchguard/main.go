// Command benchguard compares two benchmarks from one `go test -bench` run
// and fails when the guarded benchmark regresses past a tolerance, so CI can
// enforce invariants like "instrumentation adds no allocations". It reads
// the benchmark output on stdin (pass -benchmem for allocation metrics):
//
//	go test -run '^$' -bench 'BenchmarkRunCEvents/(warm|obs)' -benchmem -benchtime 3x . \
//	    | go run ./cmd/benchguard -base BenchmarkRunCEvents/warm -guard BenchmarkRunCEvents/obs
//
// The guard passes when
//
//	guard(metric) <= base(metric) * (1 + tolerance) + slack
//
// With the defaults (-metric allocs/op, -tolerance 0, -slack 16) this allows
// the obs variant a fixed setup budget (probe-block attachment per run) but
// no per-event allocations: any probe that allocates on the steady-state
// path multiplies with the event count and blows far past the slack.
// Exit status: 0 pass, 1 regression, 2 usage or parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	var (
		base      = flag.String("base", "", "baseline benchmark name (required; GOMAXPROCS suffix ignored)")
		guard     = flag.String("guard", "", "guarded benchmark name (required)")
		metric    = flag.String("metric", "allocs/op", "unit to compare, as printed by go test (e.g. allocs/op, B/op, ns/op)")
		tolerance = flag.Float64("tolerance", 0, "allowed relative overhead (0.02 = 2%)")
		slack     = flag.Float64("slack", 16, "allowed absolute overhead in metric units")
	)
	flag.Parse()
	if *base == "" || *guard == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -base and -guard are required")
		os.Exit(2)
	}

	results := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the run through for the log
		name, metrics, ok := parseLine(line)
		if ok {
			results[name] = metrics
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	bm, okB := results[*base]
	gm, okG := results[*guard]
	if !okB || !okG {
		fatal(fmt.Errorf("missing benchmark on stdin: base %q found=%v, guard %q found=%v", *base, okB, *guard, okG))
	}
	bv, okB := bm[*metric]
	gv, okG := gm[*metric]
	if !okB || !okG {
		fatal(fmt.Errorf("metric %q missing: base has it=%v, guard has it=%v (did you pass -benchmem?)", *metric, okB, okG))
	}

	limit := bv*(1+*tolerance) + *slack
	if gv > limit {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s %s = %g exceeds %g (base %g * %g + slack %g)\n",
			*guard, *metric, gv, limit, bv, 1+*tolerance, *slack)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchguard: ok %s %s = %g within %g (base %g)\n", *guard, *metric, gv, limit, bv)
}

// parseLine extracts the benchmark name (GOMAXPROCS suffix stripped) and its
// "value unit" pairs from one result line.
func parseLine(line string) (string, map[string]float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}
