// Command bgpsim runs one C-event churn experiment on a generated (or
// loaded) topology and prints the per-node-type update counts, the Eq.-1
// factor decomposition, and convergence times (§4 of the paper).
//
// Usage:
//
//	bgpsim -scenario BASELINE -n 2000 -origins 100
//	bgpsim -scenario DENSE-CORE -n 5000 -wrate
//	bgpsim -load topo.txt -mrai 15s -scope per-prefix
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bgpchurn"
	"bgpchurn/internal/des"
	"bgpchurn/internal/report"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "BASELINE", "growth scenario")
		n            = flag.Int("n", 1000, "network size")
		seed         = flag.Uint64("seed", 1, "seed for topology and protocol randomness")
		load         = flag.String("load", "", "load a topology file instead of generating")
		origins      = flag.Int("origins", 100, "number of C-event originators")
		wrate        = flag.Bool("wrate", false, "rate-limit explicit withdrawals (RFC 4271) instead of NO-WRATE (RFC 1771)")
		mrai         = flag.Duration("mrai", 30*time.Second, "MRAI timer (0 disables rate limiting)")
		scope        = flag.String("scope", "per-interface", "MRAI timer scope: per-interface or per-prefix")
		procDelay    = flag.Duration("proc", 100*time.Millisecond, "max per-update processing delay")
		parallel     = flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
		kind         = flag.String("kind", "c-event", "routing event: c-event (withdraw+reannounce) or link (fail+restore primary transit link)")
		dampening    = flag.Bool("dampening", false, "enable RFC 2439 route flap dampening")
	)
	flag.Parse()

	topo, name, err := loadOrGenerate(*load, *scenarioName, *n, *seed)
	if err != nil {
		fatal(err)
	}

	cfg := bgpchurn.DefaultExperiment(*seed)
	cfg.Origins = *origins
	cfg.Parallelism = *parallel
	cfg.BGP.RateLimitWithdrawals = *wrate
	cfg.BGP.MRAI = des.Time(mrai.Nanoseconds())
	cfg.BGP.MaxProcessingDelay = des.Time(procDelay.Nanoseconds())
	switch *scope {
	case "per-interface":
		cfg.BGP.Scope = bgpchurn.PerInterface
	case "per-prefix":
		cfg.BGP.Scope = bgpchurn.PerPrefix
	default:
		fatal(fmt.Errorf("unknown MRAI scope %q", *scope))
	}
	switch *kind {
	case "c-event":
		cfg.Kind = bgpchurn.CEventKind
	case "link":
		cfg.Kind = bgpchurn.LinkEventKind
	default:
		fatal(fmt.Errorf("unknown event kind %q", *kind))
	}
	if *dampening {
		cfg.BGP.Dampening = bgpchurn.DefaultDampening()
	}

	mode := "NO-WRATE"
	if *wrate {
		mode = "WRATE"
	}
	fmt.Printf("topology %s n=%d, %d %vs, MRAI=%v (%s, %s)\n\n",
		name, topo.N(), min(*origins, topo.CountByType()[bgpchurn.C]), cfg.Kind, *mrai, cfg.BGP.Scope, mode)

	start := time.Now()
	res, err := bgpchurn.RunCEvents(topo, cfg)
	if err != nil {
		fatal(err)
	}

	t := report.NewTable("Updates received per C-event (mean over origins and nodes)",
		"type", "nodes", "U", "±95%", "Uc", "Up", "Ud")
	for _, typ := range []bgpchurn.NodeType{bgpchurn.T, bgpchurn.M, bgpchurn.CP, bgpchurn.C} {
		tr := res.ByType[typ]
		t.AddRow(typ.String(), fmt.Sprint(tr.Nodes),
			report.Float(tr.U, 3), report.Float(tr.CI95, 3),
			report.Float(tr.ByRel[bgpchurn.Customer].U, 3),
			report.Float(tr.ByRel[bgpchurn.Peer].U, 3),
			report.Float(tr.ByRel[bgpchurn.Provider].U, 3))
	}
	_ = t.Fprint(os.Stdout)

	fmt.Println()
	ft := report.NewTable("Eq.-1 factor decomposition U = m*q*e",
		"type", "relation", "m", "q", "e", "U")
	for _, typ := range []bgpchurn.NodeType{bgpchurn.T, bgpchurn.M, bgpchurn.CP, bgpchurn.C} {
		for _, rel := range []bgpchurn.Relation{bgpchurn.Customer, bgpchurn.Peer, bgpchurn.Provider} {
			rf := res.ByType[typ].ByRel[rel]
			if rf.M == 0 {
				continue
			}
			ft.AddRow(typ.String(), rel.String(),
				report.Float(rf.M, 3), report.Float(rf.Q, 4), report.Float(rf.E, 3), report.Float(rf.U, 3))
		}
	}
	_ = ft.Fprint(os.Stdout)

	fmt.Println()
	et := report.NewTable("Event dynamics and per-node spread",
		"type", "route changes/event", "median U", "p90 U", "max U")
	for _, typ := range []bgpchurn.NodeType{bgpchurn.T, bgpchurn.M, bgpchurn.CP, bgpchurn.C} {
		sp := res.Spread[typ]
		et.AddRow(typ.String(), report.Float(res.PathExploration[typ], 3),
			report.Float(sp.Median, 2), report.Float(sp.P90, 2), report.Float(sp.Max, 2))
	}
	_ = et.Fprint(os.Stdout)

	fmt.Printf("\nnetwork-wide updates per event: %s (peak %s updates in one virtual second)\n",
		report.Float(res.TotalUpdates, 1), report.Float(res.PeakRate, 1))
	fmt.Printf("convergence: DOWN %ss, UP %ss (virtual)\n",
		report.Float(res.DownSeconds, 2), report.Float(res.UpSeconds, 2))
	fmt.Printf("wall clock: %v\n", time.Since(start).Round(time.Millisecond))
}

func loadOrGenerate(load, scenarioName string, n int, seed uint64) (*bgpchurn.Topology, string, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		topo, err := bgpchurn.ReadTopology(f)
		if err != nil {
			return nil, "", err
		}
		return topo, load, nil
	}
	sc, err := bgpchurn.ScenarioByName(scenarioName)
	if err != nil {
		return nil, "", err
	}
	topo, err := sc.Generate(n, seed)
	if err != nil {
		return nil, "", err
	}
	return topo, sc.Name, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgpsim:", err)
	os.Exit(1)
}
