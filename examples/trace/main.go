// Monitor trend estimation (§1 of the paper): the workflow behind Fig. 1.
//
// Real BGP monitor feeds are extremely noisy — weekly cycles, heavy-tailed
// burst days from session resets and leaks — so a naive linear fit of daily
// update counts is easily dragged around by outliers. The paper instead
// estimates churn growth with the Mann-Kendall trend test and Sen's slope,
// both rank-based and robust.
//
// This example synthesizes a monitor series with a KNOWN embedded trend,
// then compares ordinary least squares against Mann-Kendall/Sen on
// progressively burstier versions of the same series.
//
//	go run ./examples/trace
package main

import (
	"fmt"
	"log"

	"bgpchurn"
)

func main() {
	fmt.Println("estimating churn growth on synthetic 3-year monitor feeds")
	fmt.Println("(embedded ground truth: +200% over the series)")
	fmt.Println()
	fmt.Printf("%-12s %14s %14s %14s\n", "burstiness", "true slope", "OLS slope", "Sen slope")

	for _, burst := range []struct {
		name  string
		prob  float64
		sigma float64
	}{
		{"none", 0, 0},
		{"mild", 0.01, 0.3},
		{"paper-like", 0.02, 0.5},
		{"savage", 0.08, 1.2},
	} {
		p := bgpchurn.DefaultMonitorTrace(99)
		p.BurstProb = burst.prob
		p.BurstSigma = burst.sigma
		series, err := bgpchurn.GenerateMonitorTrace(p)
		if err != nil {
			log.Fatal(err)
		}

		days := make([]float64, len(series))
		for i := range days {
			days[i] = float64(i)
		}
		ols, err := bgpchurn.LinearFit(days, series)
		if err != nil {
			log.Fatal(err)
		}
		mk, err := bgpchurn.MannKendall(series)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %14.1f %14.1f %14.1f\n",
			burst.name, p.TrendSlope(), ols.Coeffs[1], mk.Slope)
	}

	fmt.Println()
	fmt.Println("Sen's slope stays near the truth as bursts grow; OLS inflates —")
	fmt.Println("which is why the paper reaches for Mann-Kendall on Fig. 1's data.")
}
