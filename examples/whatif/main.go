// What-if analysis (§5 of the paper): compare how BGP churn at tier-1
// providers scales with network size under different Internet growth
// scenarios — the workflow behind Figs. 8 and 9.
//
// This example asks the paper's sharpest question: does the Internet get
// denser in the core (DENSE-CORE: mid-level providers triple their
// multihoming) or at the edge (DENSE-EDGE: stubs triple theirs)? The two
// sound symmetric; they are not.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"bgpchurn"
)

func main() {
	sizes := []int{600, 1200, 1800, 2400}
	scenarios := []bgpchurn.Scenario{
		bgpchurn.Baseline,
		bgpchurn.DenseCore,
		bgpchurn.DenseEdge,
		bgpchurn.ConstantMHD,
	}

	cfg := bgpchurn.DefaultExperiment(7)
	cfg.Origins = 15 // reduced from the paper's 100 to keep this example quick

	fmt.Println("updates per C-event at tier-1 (T) nodes:")
	fmt.Printf("%-14s", "n")
	for _, n := range sizes {
		fmt.Printf("%8d", n)
	}
	fmt.Println()

	results := map[string][]float64{}
	for _, sc := range scenarios {
		sw, err := bgpchurn.Sweep(sc, bgpchurn.SweepConfig{
			Sizes:        sizes,
			TopologySeed: 7,
			Event:        cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		u := sw.SeriesU(bgpchurn.T)
		results[sc.Name] = u
		fmt.Printf("%-14s", sc.Name)
		for _, v := range u {
			fmt.Printf("%8.2f", v)
		}
		fmt.Printf("   (x%.1f growth)\n", bgpchurn.GrowthFactor(u))
	}

	last := len(sizes) - 1
	core := results["DENSE-CORE"][last]
	edge := results["DENSE-EDGE"][last]
	flat := results["CONSTANT-MHD"][last]
	fmt.Printf("\nAt n=%d: DENSE-CORE loads tier-1s %.1fx more than DENSE-EDGE\n",
		sizes[last], core/edge)
	fmt.Printf("and %.1fx more than CONSTANT-MHD.\n", core/flat)
	fmt.Println("\nThe paper's conclusion: multihoming in the CORE multiplies update")
	fmt.Println("paths (higher q factors), while edge multihoming mostly adds one-hop")
	fmt.Println("fan-out. Measurements say the real Internet is on the DENSE-CORE")
	fmt.Println("trajectory — bad news for BGP churn.")
}
