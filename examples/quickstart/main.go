// Quickstart: generate a small Internet-like AS topology, run one C-event
// (prefix withdrawal + re-announcement at a stub network), and look at who
// received how many BGP updates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bgpchurn"
)

func main() {
	// 1. Build a 1000-AS topology under the paper's Baseline growth model:
	//    ~5 tier-1 providers in a clique, 15% mid-level providers, 5%
	//    content providers, 80% customer stubs, five geographic regions.
	topo, err := bgpchurn.Baseline.Generate(1000, 42)
	if err != nil {
		log.Fatal(err)
	}
	counts := topo.CountByType()
	fmt.Printf("topology: %d ASes (%d tier-1, %d mid-level, %d content, %d customers)\n",
		topo.N(), counts[bgpchurn.T], counts[bgpchurn.M], counts[bgpchurn.CP], counts[bgpchurn.C])

	st := bgpchurn.ComputeTopologyStats(topo, 200)
	fmt.Printf("structure: clustering %.3f, average path length %.2f hops\n\n",
		st.Clustering, st.AvgPathLength)

	// 2. Drive the BGP simulator directly: originate a prefix at one
	//    customer stub and watch it propagate.
	net, err := bgpchurn.NewNetwork(topo, bgpchurn.DefaultProtocol(42))
	if err != nil {
		log.Fatal(err)
	}
	origin := topo.NodesOfType(bgpchurn.C)[0]
	net.Originate(origin, 1)
	net.Run()
	fmt.Printf("prefix originated at AS%d; tier-1 AS0's path: %v\n",
		origin, net.BestPath(0, 1))
	fmt.Printf("initial propagation took %.1f virtual seconds\n\n", net.Now().Seconds())

	// 3. Run the paper's experiment: average update counts per C-event over
	//    25 different stub originators.
	cfg := bgpchurn.DefaultExperiment(42)
	cfg.Origins = 25
	res, err := bgpchurn.RunCEvents(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("updates received per C-event (mean over origins and nodes):")
	for _, typ := range []bgpchurn.NodeType{bgpchurn.T, bgpchurn.M, bgpchurn.CP, bgpchurn.C} {
		tr := res.ByType[typ]
		fmt.Printf("  %-3v %7.2f  (±%.2f over origins)\n", typ, tr.U, tr.CI95)
	}
	fmt.Printf("\nnodes at the top of the hierarchy see the most churn — the paper's Fig. 4.\n")
}
