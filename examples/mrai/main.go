// MRAI rate-limiting study (§6 of the paper): the same topology and the
// same C-events under the two deployed variants of BGP's rate-limiting
// timer:
//
//   - NO-WRATE (RFC 1771, Quagga): explicit withdrawals are sent
//     immediately; only announcements wait for the MRAI timer.
//   - WRATE (RFC 4271): withdrawals are rate-limited like any update.
//
// With WRATE, bad news travels slowly: while the withdrawal sits in a
// queue, neighbors keep announcing alternate (doomed) paths — path
// exploration — and churn multiplies. The paper uses this to question
// RFC 4271's choice.
//
//	go run ./examples/mrai
package main

import (
	"fmt"
	"log"

	"bgpchurn"
)

func main() {
	const n = 1500
	topo, err := bgpchurn.Baseline.Generate(n, 11)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, proto bgpchurn.ProtocolConfig) *bgpchurn.Result {
		cfg := bgpchurn.DefaultExperiment(11)
		cfg.Origins = 20
		cfg.BGP = proto
		res, err := bgpchurn.RunCEvents(topo, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s U(T)=%6.2f  U(M)=%6.2f  U(CP)=%6.2f  U(C)=%6.2f  total=%7.0f  down=%5.1fs up=%5.1fs\n",
			name,
			res.U(bgpchurn.T), res.U(bgpchurn.M), res.U(bgpchurn.CP), res.U(bgpchurn.C),
			res.TotalUpdates, res.DownSeconds, res.UpSeconds)
		return res
	}

	fmt.Printf("Baseline topology, n=%d, 20 C-events, MRAI=30s per interface\n\n", n)
	noWrate := run("NO-WRATE", bgpchurn.DefaultProtocol(11))
	wrate := run("WRATE", bgpchurn.WRATEProtocol(11))

	fmt.Println("\nWRATE / NO-WRATE churn ratio per node type (the paper's Fig. 12):")
	for _, typ := range []bgpchurn.NodeType{bgpchurn.C, bgpchurn.CP, bgpchurn.M, bgpchurn.T} {
		a, b := wrate.U(typ), noWrate.U(typ)
		if b > 0 {
			fmt.Printf("  %-3v %.2fx\n", typ, a/b)
		}
	}
	fmt.Printf("\nwithdrawal convergence: %.1fs (NO-WRATE) vs %.1fs (WRATE)\n",
		noWrate.DownSeconds, wrate.DownSeconds)
	fmt.Println("\nRate-limiting withdrawals both slows failure news AND multiplies")
	fmt.Println("churn — the effect grows with network size and core density (§6).")
}
