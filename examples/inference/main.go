// Relationship inference validation — why the paper built a generator
// instead of using inferred topologies.
//
// §3 of the paper rejects inferring historical AS topologies from routing
// tables because "such inference tends to underestimate the number of
// peering links". With a simulator that emits genuine policy-compliant AS
// paths AND the ground-truth topology they came from, that claim becomes
// measurable: run Gao-style relationship inference on the simulated paths
// and score it against the truth.
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"

	"bgpchurn"
)

func main() {
	topo, err := bgpchurn.Baseline.Generate(800, 5)
	if err != nil {
		log.Fatal(err)
	}
	proto := bgpchurn.DefaultProtocol(5)
	proto.MRAI = 0 // converged snapshot; timers are irrelevant here
	net, err := bgpchurn.NewNetwork(topo, proto)
	if err != nil {
		log.Fatal(err)
	}

	// A route collector's view: full feeds from every AS for k prefixes.
	cNodes := topo.NodesOfType(bgpchurn.C)
	const k = 25
	var prefixes []bgpchurn.Prefix
	for i := 0; i < k; i++ {
		f := bgpchurn.Prefix(i + 1)
		net.Originate(cNodes[i*len(cNodes)/k], f)
		prefixes = append(prefixes, f)
	}
	net.Run()

	paths := bgpchurn.CollectASPaths(net, prefixes)
	inf := bgpchurn.InferRelationships(paths, func(id bgpchurn.NodeID) int {
		return topo.Nodes[id].Degree()
	})
	acc := bgpchurn.EvaluateInference(inf, topo)

	transit, peering := topo.Edges()
	fmt.Printf("ground truth: %d transit links, %d peering links\n", transit, peering)
	fmt.Printf("collector view: %d AS paths over %d prefixes exposed %d of %d edges (%.0f%%)\n\n",
		len(paths), k, acc.ObservedEdges, acc.TrueEdges,
		100*float64(acc.ObservedEdges)/float64(acc.TrueEdges))

	fmt.Printf("transit direction accuracy (observed links): %5.1f%%\n", 100*acc.TransitAccuracy())
	fmt.Printf("peering recall among observed links:         %5.1f%%\n", 100*acc.PeerRecallObserved())
	fmt.Printf("peering recall against ALL true peerings:    %5.1f%%\n", 100*acc.PeerRecallTotal())

	fmt.Println("\nTransit links are inferred almost perfectly, but the peering mesh is")
	fmt.Println("mostly invisible: peer routes only flow to customers, so a collector")
	fmt.Println("behind the wrong vantage points simply never sees them. This is the")
	fmt.Println("§3 argument for generating controllable topologies instead of using")
	fmt.Println("inferred ones.")
}
