// Route flap dampening (RFC 2439) — the churn-suppression mechanism the
// paper's conclusions name as future work, implemented here as an engine
// extension.
//
// A stub network's prefix flaps repeatedly (think a faulty session or a
// misbehaving router). Without dampening, every flap floods the whole
// hierarchy with updates. With dampening, the stub's providers accumulate a
// penalty per flap, suppress the route once the penalty crosses the
// threshold, and the rest of the Internet goes quiet until the route has
// been stable long enough to be reused.
//
//	go run ./examples/dampening
package main

import (
	"fmt"
	"log"

	"bgpchurn"
)

func main() {
	topo, err := bgpchurn.Baseline.Generate(800, 13)
	if err != nil {
		log.Fatal(err)
	}
	origin := topo.NodesOfType(bgpchurn.C)[3]
	tier1 := topo.NodesOfType(bgpchurn.T)[0]
	const flaps = 8

	run := func(name string, proto bgpchurn.ProtocolConfig) {
		net, err := bgpchurn.NewNetwork(topo, proto)
		if err != nil {
			log.Fatal(err)
		}
		net.Originate(origin, 1)
		net.Run()
		net.ResetCounters()

		// A burst of flaps ~30 virtual seconds apart.
		for i := 0; i < flaps; i++ {
			net.WithdrawPrefix(origin, 1)
			net.RunUntil(net.Now() + 15_000_000_000)
			net.Originate(origin, 1)
			net.RunUntil(net.Now() + 15_000_000_000)
		}

		suppressions := 0
		for id := 0; id < topo.N(); id++ {
			suppressions += int(net.Suppressions(bgpchurn.NodeID(id)))
		}
		fmt.Printf("%-22s network churn %6d updates; tier-1 AS%d saw %3d; %d suppression episodes; tier-1 has route: %v\n",
			name, net.TotalUpdates(), tier1, net.Counters(tier1).Received,
			suppressions, net.HasRoute(tier1, 1))
	}

	fmt.Printf("one stub (AS%d) flaps its prefix %d times in quick succession\n\n", origin, flaps)

	plain := bgpchurn.DefaultProtocol(13)
	run("no dampening", plain)

	damped := plain
	damped.Dampening = bgpchurn.DefaultDampening()
	run("RFC 2439 dampening", damped)

	fmt.Println("\nDampening trades churn for availability: the flapping route is")
	fmt.Println("suppressed (tier-1 loses it entirely) until it stays stable for")
	fmt.Println("the penalty half-life — the classic RFD trade-off.")
}
