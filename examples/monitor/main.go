// Virtual RIS monitor: drive the simulator with a continuous stream of
// routing events (prefix flaps at stubs, transit-link flaps) and record
// the update feed at a tier-1 monitor AS — the simulated counterpart of
// the RIPE RIS monitor behind the paper's Fig. 1.
//
// Where examples/trace synthesizes a monitor series statistically, this
// example produces one mechanistically: burstiness emerges from event
// overlap, MRAI batching and path exploration.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"bgpchurn"
)

func main() {
	topo, err := bgpchurn.Baseline.Generate(600, 21)
	if err != nil {
		log.Fatal(err)
	}

	cfg := bgpchurn.DefaultWorkload(21)
	cfg.Prefixes = 30
	cfg.PrefixFlapsPerHour = 8
	cfg.LinkFlapsPerHour = 3

	fmt.Printf("simulating 24 virtual hours on a %d-AS Internet: %d prefixes,\n", topo.N(), cfg.Prefixes)
	fmt.Printf("%.0f prefix flaps/h + %.0f link flaps/h, monitoring a tier-1 AS\n\n",
		cfg.PrefixFlapsPerHour, cfg.LinkFlapsPerHour)

	for _, mode := range []struct {
		name  string
		proto bgpchurn.ProtocolConfig
	}{
		{"NO-WRATE", bgpchurn.DefaultProtocol(21)},
		{"WRATE", bgpchurn.WRATEProtocol(21)},
	} {
		tl, err := bgpchurn.RunWorkload(topo, mode.proto, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s monitor AS%d logged per hour:", mode.name, tl.Monitor)
		for _, v := range tl.Updates {
			fmt.Printf(" %4.0f", v)
		}
		fmt.Printf("\n          events=%d  network total=%d  busiest-second=%d  bucket peak/mean=%.1fx\n\n",
			tl.Events, tl.TotalUpdates, tl.PeakRate, tl.PeakToMean())
	}

	fmt.Println("The same event schedule generates substantially more updates network-")
	fmt.Println("wide under WRATE, while the tier-1 monitor's own feed barely moves —")
	fmt.Println("matching Fig. 12's finding that the WRATE penalty concentrates at the")
	fmt.Println("periphery. Bucket peaks well above the mean echo the burstiness that")
	fmt.Println("motivates the paper's concern about router update load.")
}
