// Compact routing vs BGP — the trade-off behind the paper's related-work
// pointer to Krioukov et al.: compact routing shrinks routing tables from
// Θ(n) to ~√(n log n) with stretch at most 3, but "performs poorly under
// dynamic conditions". This example quantifies both halves on the same
// generated Internet.
//
//	go run ./examples/compactcompare
package main

import (
	"fmt"
	"log"
	"math"

	"bgpchurn"
)

func main() {
	fmt.Printf("%8s %14s %16s %12s %14s %22s\n",
		"n", "BGP table", "compact table", "ratio", "mean stretch", "landmark-failure hit")
	for _, n := range []int{500, 1000, 2000} {
		topo, err := bgpchurn.Baseline.Generate(n, uint64(n))
		if err != nil {
			log.Fatal(err)
		}
		k := int(math.Ceil(math.Sqrt(float64(n) * math.Log(float64(n)))))
		scheme, err := bgpchurn.BuildCompactRouting(topo, k, uint64(n))
		if err != nil {
			log.Fatal(err)
		}
		stretch := scheme.MeasureStretch([]int32{0, int32(n / 3), int32(n / 2), int32(n - 1)})
		entries, rehomed := scheme.LandmarkFailureImpact(scheme.Landmarks[0])
		fmt.Printf("%8d %14d %16.1f %11.1f%% %14.3f %12d (+%d rehomed)\n",
			n, n, scheme.MeanTableSize(),
			100*scheme.MeanTableSize()/float64(n),
			stretch.Mean, entries, rehomed)
	}

	fmt.Println("\nCompact routing cuts tables to a few percent of BGP's with mean")
	fmt.Println("stretch close to 1 — but one landmark failure invalidates an entry")
	fmt.Println("at EVERY node in the network, where BGP repairs a typical stub event")
	fmt.Println("with a few updates per node (see examples/quickstart). Exactly the")
	fmt.Println("static-vs-dynamic trade-off the paper's related work describes.")
}
