package bgpchurn

// Sharded-executor benchmark: one warm-start churn cell per iteration on
// the windowed executor, across shard counts. `make bench-shard` records
// ns/op, total updates and peak RSS per (n, shards) in BENCH_shard.json;
// the CI shard-smoke job holds the n=10k shards=4 cell under the scale
// tier's peak-RSS budget and demands it be no slower than shards=1.
//
// Every point uses the same positive link delay, so shard counts compare
// the *same* simulated model executed on 1..8 cores: shards=1 is the
// windowed executor run serially, not the classic inline path (which
// simulates a different model, with zero propagation delay). The link
// delay is half the processing-delay bound — wide enough that each
// barrier window retires substantial work per shard, the regime the
// conservative lookahead is designed for.
//
// Topologies come from the scale tier's cached growth chain, so a full
// bench run builds each size once across both benchmarks.

import (
	"fmt"
	"testing"

	"bgpchurn/internal/des"
)

// benchShardCounts is the shard axis of the sharded benchmark.
var benchShardCounts = []int{1, 2, 4, 8}

func BenchmarkShardedCell(b *testing.B) {
	for _, n := range []int{10000, 50000} {
		n := n
		for _, shards := range benchShardCounts {
			shards := shards
			b.Run(fmt.Sprintf("n=%d/shards=%d", n, shards), func(b *testing.B) {
				topo := scaleTopology(b, n)
				cfg := DefaultExperiment(scaleSeed)
				cfg.Origins = 4
				cfg.WarmStart = true
				cfg.Parallelism = 1 // one origin worker: shards supply the parallelism
				cfg.BGP.CompactRIB = true
				cfg.BGP.LinkDelay = 50 * des.Millisecond
				cfg.BGP.Shards = shards
				var total float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := RunCEvents(topo, cfg)
					if err != nil {
						b.Fatal(err)
					}
					total = res.TotalUpdates
				}
				b.StopTimer()
				b.ReportMetric(total, "total-updates")
				b.ReportMetric(float64(PeakRSSBytes())/(1<<20), "peakRSS-MB")
			})
		}
	}
}
