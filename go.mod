module bgpchurn

go 1.22
