package bgpchurn

// Differential tier for the accelerated topology generator: the Fenwick
// samplers, shared customer cones and region-bucketed peering pools must
// reproduce the retained linear-scan generator bit for bit — same RNG draw
// sequence, same picks, hence the same Topology down to neighbor-list
// order. These tests compare complete topologies (every node field, every
// link, in order) for every growth scenario, and for growth chains where
// the accelerated path must also match when extending a prefix either path
// generated.

import (
	"fmt"
	"testing"
)

// requireEqualTopologies fails unless a and b are identical in every
// observable field, including neighbor-list order (the generator's output
// is order-deterministic, so any divergence is a draw-sequence bug).
func requireEqualTopologies(t *testing.T, label string, a, b *Topology) {
	t.Helper()
	if a.N() != b.N() || a.NumRegions != b.NumRegions || a.Seed != b.Seed {
		t.Fatalf("%s: shape differs: n=%d/%d regions=%d/%d seed=%d/%d",
			label, a.N(), b.N(), a.NumRegions, b.NumRegions, a.Seed, b.Seed)
	}
	for i := range a.Nodes {
		x, y := &a.Nodes[i], &b.Nodes[i]
		if x.ID != y.ID || x.Type != y.Type || x.Regions != y.Regions {
			t.Fatalf("%s: node %d identity differs: %+v vs %+v", label, i, x, y)
		}
		requireEqualIDs(t, label, i, "providers", x.Providers, y.Providers)
		requireEqualIDs(t, label, i, "customers", x.Customers, y.Customers)
		requireEqualIDs(t, label, i, "peers", x.Peers, y.Peers)
	}
}

func requireEqualIDs(t *testing.T, label string, node int, kind string, a, b []NodeID) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: node %d has %d %s links vs %d", label, node, len(a), kind, len(b))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("%s: node %d %s[%d] = %v vs %v", label, node, kind, k, a[k], b[k])
		}
	}
}

// TestGeneratorEquivalentAcrossScenarios generates every growth scenario at
// n ∈ {1000, 3000} under two independent seeds with both generator paths
// and demands full-topology equality.
func TestGeneratorEquivalentAcrossScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		for _, seed := range []uint64{3, 17} {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", sc.Name, seed), func(t *testing.T) {
				t.Parallel()
				sizes := []int{1000, 3000}
				if raceEnabled {
					// Generation is single-threaded; the race detector
					// adds no coverage, only a multiplier on the
					// oracle's O(n²) cost.
					sizes = []int{1000}
				}
				for _, n := range sizes {
					p := sc.Params(n, seed)
					fast, err := GenerateTopology(p)
					if err != nil {
						t.Fatal(err)
					}
					linear, err := GenerateTopologyLinear(p)
					if err != nil {
						t.Fatal(err)
					}
					requireEqualTopologies(t, fmt.Sprintf("n=%d", n), fast, linear)
					if err := fast.Validate(); err != nil {
						t.Fatalf("n=%d: generated topology invalid: %v", n, err)
					}
				}
			})
		}
	}
}

// TestGeneratorPhaseTimings checks that an attached metrics hub records a
// per-phase wall-time histogram for every generation phase, and that the
// phase breakdown lands in the flat snapshot the run manifest captures.
func TestGeneratorPhaseTimings(t *testing.T) {
	m := NewObsMetrics()
	InstrumentTopologyGeneration(m)
	defer InstrumentTopologyGeneration(nil)
	if _, err := GenerateTopology(Baseline.Params(2000, 5)); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap["bgpchurn_topo_gen_seconds_count"] != 1 {
		t.Fatalf("generation not observed: %v", snap["bgpchurn_topo_gen_seconds_count"])
	}
	var phaseSum float64
	for _, ph := range []string{"clique", "mnodes", "stubs", "cones", "mpeering", "cppeering"} {
		name := "bgpchurn_topo_phase_" + ph + "_seconds"
		if snap[name+"_count"] != 1 {
			t.Fatalf("phase %s not observed exactly once: %v", ph, snap[name+"_count"])
		}
		phaseSum += snap[name+"_sum"]
	}
	if total := snap["bgpchurn_topo_gen_seconds_sum"]; phaseSum > total {
		t.Fatalf("phase breakdown %v exceeds generation total %v", phaseSum, total)
	}
}

// TestGrowEquivalentAcrossScenarios chains growth 1000 → 3000 for every
// scenario: the accelerated Grow must match the linear Grow exactly, on
// top of either path's prefix (the prefixes are already proven equal
// above, so one prefix serves both).
func TestGrowEquivalentAcrossScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			const seed = 29
			p := sc.Params(3000, seed)
			if sc.Params(1000, seed).NT != p.NT {
				t.Skip("scenario scales the tier-1 clique with n; not growth-compatible")
			}
			small, err := GenerateTopology(sc.Params(1000, seed))
			if err != nil {
				t.Fatal(err)
			}
			fast, err := GrowTopology(small, p)
			if err != nil {
				t.Fatal(err)
			}
			linear, err := GrowTopologyLinear(small, p)
			if err != nil {
				t.Fatal(err)
			}
			requireEqualTopologies(t, "grow 1000->3000", fast, linear)
			if err := fast.Validate(); err != nil {
				t.Fatalf("grown topology invalid: %v", err)
			}
		})
	}
}
