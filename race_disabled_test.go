//go:build !race

package bgpchurn

// raceEnabled reports that this test binary was built with -race; the
// generator-equivalence tiers shrink under it (generation is
// single-threaded, so the detector adds cost but no coverage there).
const raceEnabled = false
