package bgpchurn

// One benchmark per table/figure of the paper, plus ablation benches for
// the design choices called out in DESIGN.md. Benchmarks run reduced
// parameter sweeps (smaller sizes and fewer event originators than the
// paper's 1000–10000 × 100) so the whole suite stays in CI territory; the
// cmd/experiments binary runs the full-scale versions. Key measured values
// are attached to each benchmark via ReportMetric, so `go test -bench .`
// prints the quantities the corresponding figure plots.

import (
	"context"
	"testing"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/core"
	"bgpchurn/internal/des"
)

// benchSizes is the reduced sweep x-axis used by the figure benches.
func benchSizes() []int { return []int{800, 1600, 2400} }

// benchExperiment is the reduced C-event experiment (12 origins instead of
// the paper's 100).
func benchExperiment(seed uint64) Experiment {
	cfg := DefaultExperiment(seed)
	cfg.Origins = 12
	return cfg
}

// mustSweep runs one sweep through the experiment scheduler (cells in
// parallel; results byte-identical to the sequential path).
func mustSweep(b *testing.B, sc Scenario, cfg SweepConfig) *SweepResult {
	b.Helper()
	sw, err := RunSweep(context.Background(), sc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sw
}

// mustGrid runs a whole scenario×size grid through the scheduler, one
// SweepResult per request, sharing identical cells across requests.
func mustGrid(b *testing.B, reqs []GridRequest) []*SweepResult {
	b.Helper()
	out, err := RunGrid(context.Background(), reqs)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// gridRequests builds one GridRequest per scenario over the reduced bench
// sweep at the given seed.
func gridRequests(seed uint64, scenarios ...Scenario) []GridRequest {
	reqs := make([]GridRequest, len(scenarios))
	for i, sc := range scenarios {
		reqs[i] = GridRequest{Scenario: sc, Sizes: benchSizes(), TopologySeed: seed, Event: benchExperiment(seed)}
	}
	return reqs
}

// BenchmarkFig1TrendEstimation regenerates Fig. 1's workflow: a three-year
// daily monitor series with embedded ~200% growth, trend-estimated with
// Mann-Kendall/Sen as in the paper.
func BenchmarkFig1TrendEstimation(b *testing.B) {
	b.ReportAllocs()
	var slopeRatio, growth float64
	for i := 0; i < b.N; i++ {
		p := DefaultMonitorTrace(uint64(i) + 1)
		series, err := GenerateMonitorTrace(p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := MannKendall(series)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Increasing {
			b.Fatal("embedded churn growth not detected")
		}
		slopeRatio = res.Slope / p.TrendSlope()
		growth = res.Slope * float64(p.Days) / p.BaseDaily
	}
	b.ReportMetric(slopeRatio, "sen/true-slope")
	b.ReportMetric(growth*100, "growth-%-over-3y")
}

// BenchmarkTable1TopologyGeneration builds a Baseline topology per
// iteration and reports its Table 1 realized parameters.
func BenchmarkTable1TopologyGeneration(b *testing.B) {
	b.ReportAllocs()
	var mhdM, mhdC, peering float64
	for i := 0; i < b.N; i++ {
		topo, err := Baseline.Generate(5000, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		st := ComputeTopologyStats(topo, 0)
		mhdM, mhdC = st.MeanMHD[M], st.MeanMHD[C]
		peering = float64(st.Peering)
	}
	b.ReportMetric(mhdM, "MHD(M)")
	b.ReportMetric(mhdC, "MHD(C)")
	b.ReportMetric(peering, "peer-links")
}

// BenchmarkTopologyProperties measures the §3 structural claims: strong
// clustering and a ~4-hop constant average path length.
func BenchmarkTopologyProperties(b *testing.B) {
	b.ReportAllocs()
	var clustering, apl float64
	for i := 0; i < b.N; i++ {
		topo, err := Baseline.Generate(3000, uint64(i)+7)
		if err != nil {
			b.Fatal(err)
		}
		st := ComputeTopologyStats(topo, 300)
		clustering, apl = st.Clustering, st.AvgPathLength
	}
	b.ReportMetric(clustering, "clustering")
	b.ReportMetric(apl, "avg-path-len")
}

// BenchmarkFig4UpdatesByType sweeps the Baseline model and reports U(X)
// per node type at the largest size (Fig. 4's right edge).
func BenchmarkFig4UpdatesByType(b *testing.B) {
	b.ReportAllocs()
	var uT, uM, uCP, uC float64
	for i := 0; i < b.N; i++ {
		sw := mustSweep(b, Baseline, SweepConfig{
			Sizes: benchSizes(), TopologySeed: uint64(i) + 1, Event: benchExperiment(uint64(i) + 1),
		})
		last := len(sw.Points) - 1
		uT = sw.SeriesU(T)[last]
		uM = sw.SeriesU(M)[last]
		uCP = sw.SeriesU(CP)[last]
		uC = sw.SeriesU(C)[last]
		if !(uT > uC && uM > uC) {
			b.Fatalf("type ordering violated: T=%v M=%v CP=%v C=%v", uT, uM, uCP, uC)
		}
	}
	b.ReportMetric(uT, "U(T)")
	b.ReportMetric(uM, "U(M)")
	b.ReportMetric(uCP, "U(CP)")
	b.ReportMetric(uC, "U(C)")
}

// BenchmarkFig5RelationSplit reports the per-relation split of Fig. 5:
// Uc(T), Up(T) and Ud(M) at the largest size.
func BenchmarkFig5RelationSplit(b *testing.B) {
	b.ReportAllocs()
	var ucT, upT, udM, shareD float64
	for i := 0; i < b.N; i++ {
		sw := mustSweep(b, Baseline, SweepConfig{
			Sizes: benchSizes(), TopologySeed: uint64(i) + 2, Event: benchExperiment(uint64(i) + 2),
		})
		last := len(sw.Points) - 1
		ucT = sw.SeriesURel(T, Customer)[last]
		upT = sw.SeriesURel(T, Peer)[last]
		udM = sw.SeriesURel(M, Provider)[last]
		uM := sw.SeriesU(M)[last]
		shareD = udM / uM
		// Fig. 5 bottom: M nodes receive the large majority of their
		// updates from providers.
		if shareD < 0.5 {
			b.Fatalf("Ud(M)/U(M) = %v, provider share should dominate", shareD)
		}
	}
	b.ReportMetric(ucT, "Uc(T)")
	b.ReportMetric(upT, "Up(T)")
	b.ReportMetric(udM, "Ud(M)")
	b.ReportMetric(shareD, "Ud/U(M)")
}

// BenchmarkFig6RelativeIncrease reports the growth factors of Uc(T), Up(T)
// and Ud(M) across the sweep (Fig. 6 normalizes to n=1000).
func BenchmarkFig6RelativeIncrease(b *testing.B) {
	b.ReportAllocs()
	var gUc, gUp, gUd float64
	for i := 0; i < b.N; i++ {
		sw := mustSweep(b, Baseline, SweepConfig{
			Sizes: benchSizes(), TopologySeed: uint64(i) + 3, Event: benchExperiment(uint64(i) + 3),
		})
		gUc = GrowthFactor(sw.SeriesURel(T, Customer))
		gUp = GrowthFactor(sw.SeriesURel(T, Peer))
		gUd = GrowthFactor(sw.SeriesURel(M, Provider))
	}
	b.ReportMetric(gUc, "x-Uc(T)")
	b.ReportMetric(gUp, "x-Up(T)")
	b.ReportMetric(gUd, "x-Ud(M)")
}

// BenchmarkFig7FactorDecomposition reports the growth of the Eq.-1 factors
// (m, e, q panels of Fig. 7).
func BenchmarkFig7FactorDecomposition(b *testing.B) {
	b.ReportAllocs()
	var gM, gE, qd float64
	for i := 0; i < b.N; i++ {
		sw := mustSweep(b, Baseline, SweepConfig{
			Sizes: benchSizes(), TopologySeed: uint64(i) + 4, Event: benchExperiment(uint64(i) + 4),
		})
		gM = GrowthFactor(sw.SeriesM(T, Customer))
		gE = GrowthFactor(sw.SeriesE(M, Provider))
		qd = sw.SeriesQ(M, Provider)[len(sw.Points)-1]
		if qd < 0.95 {
			b.Fatalf("q_d(M) = %v, paper says > 0.99", qd)
		}
	}
	b.ReportMetric(gM, "x-mc(T)")
	b.ReportMetric(gE, "x-ed(M)")
	b.ReportMetric(qd, "qd(M)")
}

// fig8Scenarios are the §5.1 population-mix deviations.
func fig8Scenarios() []Scenario {
	return []Scenario{RichMiddle, Baseline, StaticMiddle, TransitClique, NoMiddle}
}

// BenchmarkFig8PopulationMix compares U(T) growth across the node-mix
// deviations: RICH-MIDDLE > BASELINE > STATIC-MIDDLE, and
// NO-MIDDLE ≈ TRANSIT-CLIQUE at the bottom.
func BenchmarkFig8PopulationMix(b *testing.B) {
	b.ReportAllocs()
	vals := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, sw := range mustGrid(b, gridRequests(uint64(i)+5, fig8Scenarios()...)) {
			vals[sw.Scenario] = sw.SeriesU(T)[len(sw.Points)-1]
		}
	}
	for name, v := range vals {
		b.ReportMetric(v, "U(T)@"+name)
	}
	if vals["RICH-MIDDLE"] <= vals["STATIC-MIDDLE"] {
		b.Fatalf("RICH-MIDDLE %v should out-churn STATIC-MIDDLE %v", vals["RICH-MIDDLE"], vals["STATIC-MIDDLE"])
	}
	if vals["NO-MIDDLE"] >= vals["BASELINE"] {
		b.Fatalf("NO-MIDDLE %v should churn less than BASELINE %v", vals["NO-MIDDLE"], vals["BASELINE"])
	}
}

// BenchmarkFig9Multihoming compares the §5.2 MHD deviations at T nodes and
// checks the TREE invariant (exactly 2 updates per C-event).
func BenchmarkFig9Multihoming(b *testing.B) {
	b.ReportAllocs()
	vals := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, sw := range mustGrid(b, gridRequests(uint64(i)+6, DenseCore, DenseEdge, Baseline, Tree, ConstantMHD)) {
			vals[sw.Scenario] = sw.SeriesU(T)[len(sw.Points)-1]
		}
	}
	for name, v := range vals {
		b.ReportMetric(v, "U(T)@"+name)
	}
	if vals["TREE"] != 2 {
		b.Fatalf("TREE U(T) = %v, want exactly 2", vals["TREE"])
	}
	if vals["DENSE-CORE"] <= vals["CONSTANT-MHD"] {
		b.Fatalf("DENSE-CORE %v should out-churn CONSTANT-MHD %v", vals["DENSE-CORE"], vals["CONSTANT-MHD"])
	}
}

// BenchmarkFig10Peering compares the §5.3 peering deviations at M nodes;
// the paper's conclusion is that peering density barely matters.
func BenchmarkFig10Peering(b *testing.B) {
	b.ReportAllocs()
	vals := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, sw := range mustGrid(b, gridRequests(uint64(i)+7, NoPeering, Baseline, StrongCorePeering, StrongEdgePeering)) {
			vals[sw.Scenario] = sw.SeriesU(M)[len(sw.Points)-1]
		}
	}
	for name, v := range vals {
		b.ReportMetric(v, "U(M)@"+name)
	}
	base := vals["BASELINE"]
	for name, v := range vals {
		if v < base/3 || v > base*3 {
			b.Fatalf("peering deviation %s moved U(M) from %v to %v — paper says peering barely matters", name, base, v)
		}
	}
}

// BenchmarkFig11ProviderPreference compares PREFER-MIDDLE vs PREFER-TOP
// (§5.4): deeper hierarchies churn more at the top.
func BenchmarkFig11ProviderPreference(b *testing.B) {
	b.ReportAllocs()
	var mid, top, mcTop, mcMid float64
	for i := 0; i < b.N; i++ {
		out := mustGrid(b, gridRequests(uint64(i)+8, PreferMiddle, PreferTop))
		swMid, swTop := out[0], out[1]
		last := len(swMid.Points) - 1
		mid, top = swMid.SeriesU(T)[last], swTop.SeriesU(T)[last]
		mcMid, mcTop = swMid.SeriesM(T, Customer)[last], swTop.SeriesM(T, Customer)[last]
		// Fig. 11 middle panel: PREFER-TOP gives T nodes far more direct
		// customers.
		if mcTop <= mcMid {
			b.Fatalf("mc(T): PREFER-TOP %v <= PREFER-MIDDLE %v", mcTop, mcMid)
		}
	}
	b.ReportMetric(mid, "U(T)@PREFER-MIDDLE")
	b.ReportMetric(top, "U(T)@PREFER-TOP")
	b.ReportMetric(mcMid, "mc(T)@PREFER-MIDDLE")
	b.ReportMetric(mcTop, "mc(T)@PREFER-TOP")
}

// BenchmarkFig12WRATE measures the §6 result: rate-limiting explicit
// withdrawals (WRATE) multiplies churn via path exploration.
func BenchmarkFig12WRATE(b *testing.B) {
	b.ReportAllocs()
	var ratioT, ratioC float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 9
		cfgNo := benchExperiment(seed)
		cfgW := cfgNo
		cfgW.BGP = bgp.WRATEConfig(seed)
		cfgW.Origins = cfgNo.Origins
		out := mustGrid(b, []GridRequest{
			{Scenario: Baseline, Sizes: benchSizes(), TopologySeed: seed, Event: cfgNo},
			{Scenario: Baseline, Sizes: benchSizes(), TopologySeed: seed, Event: cfgW},
		})
		swNo, swW := out[0], out[1]
		last := len(swNo.Points) - 1
		ratioT = swW.SeriesU(T)[last] / swNo.SeriesU(T)[last]
		ratioC = swW.SeriesU(C)[last] / swNo.SeriesU(C)[last]
		if ratioT < 1 {
			b.Fatalf("WRATE/NO-WRATE ratio at T = %v, expected > 1", ratioT)
		}
	}
	b.ReportMetric(ratioT, "WRATE/NO-WRATE@T")
	b.ReportMetric(ratioC, "WRATE/NO-WRATE@C")
}

// BenchmarkAblationMRAIScope compares the vendor per-interface MRAI (the
// paper's model) against the standard's per-prefix timers.
func BenchmarkAblationMRAIScope(b *testing.B) {
	b.ReportAllocs()
	var perIface, perPrefix float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 10
		topo, err := Baseline.Generate(1200, seed)
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchExperiment(seed)
		res1, err := core.RunCEvents(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.BGP.Scope = PerPrefix
		res2, err := core.RunCEvents(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		perIface, perPrefix = res1.TotalUpdates, res2.TotalUpdates
	}
	b.ReportMetric(perIface, "updates@per-interface")
	b.ReportMetric(perPrefix, "updates@per-prefix")
}

// BenchmarkAblationMRAIValue sweeps the MRAI duration (0 disables rate
// limiting) under WRATE, where the timer interacts with path exploration.
func BenchmarkAblationMRAIValue(b *testing.B) {
	b.ReportAllocs()
	values := []des.Time{0, 5 * des.Second, 30 * des.Second, 60 * des.Second}
	results := make([]float64, len(values))
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 11
		topo, err := Baseline.Generate(1200, seed)
		if err != nil {
			b.Fatal(err)
		}
		for vi, v := range values {
			cfg := benchExperiment(seed)
			cfg.BGP = bgp.WRATEConfig(seed)
			cfg.BGP.MRAI = v
			cfg.Origins = 12
			if v == 0 {
				cfg.Settle = des.Second
			}
			res, err := core.RunCEvents(topo, cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[vi] = res.TotalUpdates
		}
	}
	b.ReportMetric(results[0], "updates@mrai-0s")
	b.ReportMetric(results[1], "updates@mrai-5s")
	b.ReportMetric(results[2], "updates@mrai-30s")
	b.ReportMetric(results[3], "updates@mrai-60s")
}

// BenchmarkExtensionSessionResets measures R-event churn scaling with the
// number of prefixes a core session carries (the session-reset churn
// source the paper's introduction names).
func BenchmarkExtensionSessionResets(b *testing.B) {
	b.ReportAllocs()
	var perPrefix2, perPrefix20 float64
	for i := 0; i < b.N; i++ {
		topo, err := Baseline.Generate(800, uint64(i)+15)
		if err != nil {
			b.Fatal(err)
		}
		cfg := DefaultSessionResets(uint64(i) + 15)
		cfg.Sessions = 5
		cfg.Prefixes = 2
		small, err := RunSessionResets(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Prefixes = 20
		large, err := RunSessionResets(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		perPrefix2 = small.MeanUpdatesPerPrefix
		perPrefix20 = large.MeanUpdatesPerPrefix
	}
	b.ReportMetric(perPrefix2, "updates/prefix@2")
	b.ReportMetric(perPrefix20, "updates/prefix@20")
}

// BenchmarkExtensionConvergenceVsMRAI sweeps the MRAI value and reports
// the UP-phase (announcement) convergence time, the Griffin-Premore
// experiment the paper cites: rate limiting trades convergence latency for
// update volume.
func BenchmarkExtensionConvergenceVsMRAI(b *testing.B) {
	b.ReportAllocs()
	values := []des.Time{0, 5 * des.Second, 15 * des.Second, 30 * des.Second, 60 * des.Second}
	up := make([]float64, len(values))
	updates := make([]float64, len(values))
	for i := 0; i < b.N; i++ {
		topo, err := Baseline.Generate(1000, uint64(i)+16)
		if err != nil {
			b.Fatal(err)
		}
		for vi, v := range values {
			cfg := benchExperiment(uint64(i) + 16)
			cfg.BGP.MRAI = v
			if v == 0 {
				cfg.Settle = des.Second
			}
			res, err := core.RunCEvents(topo, cfg)
			if err != nil {
				b.Fatal(err)
			}
			up[vi] = res.UpSeconds
			updates[vi] = res.TotalUpdates
		}
	}
	for vi, v := range values {
		b.ReportMetric(up[vi], "up-s@mrai-"+v.String())
		b.ReportMetric(updates[vi], "updates@mrai-"+v.String())
	}
}

// BenchmarkBaselineCompactRouting compares the compact-routing comparator
// (related work [17]) against BGP on table size, stretch, and the cost of
// one landmark failure — the static-vs-dynamic trade-off the paper's
// related-work section describes.
func BenchmarkBaselineCompactRouting(b *testing.B) {
	b.ReportAllocs()
	var tableRatio, meanStretch, failureImpact float64
	for i := 0; i < b.N; i++ {
		topo, err := Baseline.Generate(1500, uint64(i)+13)
		if err != nil {
			b.Fatal(err)
		}
		scheme, err := BuildCompactRouting(topo, 40, uint64(i)+13)
		if err != nil {
			b.Fatal(err)
		}
		// BGP stores one route per destination AS: n entries.
		tableRatio = scheme.MeanTableSize() / float64(topo.N())
		st := scheme.MeasureStretch([]int32{1, 200, 700, 1400})
		meanStretch = st.Mean
		if st.Max > 3+1e-9 {
			b.Fatalf("stretch bound violated: %v", st.Max)
		}
		entries, _ := scheme.LandmarkFailureImpact(scheme.Landmarks[0])
		failureImpact = float64(entries)
	}
	b.ReportMetric(tableRatio, "table-size-vs-bgp")
	b.ReportMetric(meanStretch, "mean-stretch")
	b.ReportMetric(failureImpact, "entries-hit-by-landmark-failure")
}

// BenchmarkAblationProcessingDelay varies the per-update processing delay
// bound around the paper's 100 ms choice.
func BenchmarkAblationProcessingDelay(b *testing.B) {
	b.ReportAllocs()
	delays := []des.Time{10 * des.Millisecond, 100 * des.Millisecond, 1000 * des.Millisecond}
	results := make([]float64, len(delays))
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 12
		topo, err := Baseline.Generate(1200, seed)
		if err != nil {
			b.Fatal(err)
		}
		for di, d := range delays {
			cfg := benchExperiment(seed)
			cfg.BGP.MaxProcessingDelay = d
			res, err := core.RunCEvents(topo, cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[di] = res.TotalUpdates
		}
	}
	b.ReportMetric(results[0], "updates@10ms")
	b.ReportMetric(results[1], "updates@100ms")
	b.ReportMetric(results[2], "updates@1000ms")
}
