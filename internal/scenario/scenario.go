// Package scenario defines the paper's Baseline growth model (Table 1) and
// every named "what-if" deviation of §5 as parameter transforms over the
// network size n. Each scenario maps (n, seed) to fully resolved topology
// parameters; everything else about generation is shared.
package scenario

import (
	"fmt"
	"sort"

	"bgpchurn/internal/rng"
	"bgpchurn/internal/topology"
)

// Scenario is a named topology growth model.
type Scenario struct {
	// Name is the paper's identifier, e.g. "BASELINE" or "DENSE-CORE".
	Name string
	// Description summarizes the deviation in one sentence.
	Description string

	build func(n int, seed uint64) topology.Params
}

// Params resolves the scenario's generator parameters for network size n.
// The seed drives both the scenario-level draws (e.g. the Baseline's 4–6
// tier-1 count) and topology generation.
func (s Scenario) Params(n int, seed uint64) topology.Params {
	return s.build(n, seed)
}

// Generate builds a topology of size n for this scenario.
func (s Scenario) Generate(n int, seed uint64) (*topology.Topology, error) {
	return topology.Generate(s.Params(n, seed))
}

// baseline returns the Table 1 parameters for size n. All deviations start
// from this and override individual knobs.
func baseline(n int, seed uint64) topology.Params {
	fn := float64(n)
	// The paper draws the tier-1 count uniformly in [4, 6].
	nT := rng.New(seed^0x9d5c0f2ab1e6c44d).IntRange(4, 6)
	nM := int(0.15 * fn)
	nCP := int(0.05 * fn)
	nC := n - nT - nM - nCP
	return topology.Params{
		N: n, Regions: 5, Seed: seed,
		NT: nT, NM: nM, NCP: nCP, NC: nC,
		DM: 2 + 2.5*fn/10000, DCP: 2 + 1.5*fn/10000, DC: 1 + 5*fn/100000,
		PM: 1 + 2*fn/10000, PCPM: 0.2 + 2*fn/10000, PCPCP: 0.05 + 5*fn/100000,
		TM: 0.375, TCP: 0.375, TC: 0.125,
		MaxTProvidersPerM: topology.Unlimited,
		MaxMProviders:     topology.Unlimited,
		MSpread:           0.20, CPSpread: 0.05,
	}
}

// resplitStubs redistributes the node budget remaining after NT and NM over
// CP and C, preserving the Baseline 0.05:0.80 CP:C ratio.
func resplitStubs(p *topology.Params) {
	rest := p.N - p.NT - p.NM
	p.NCP = rest * 5 / 85 // 0.05 / (0.05+0.80)
	p.NC = rest - p.NCP
}

// Baseline is the growth model resembling the last decade of Internet
// evolution: slowly increasing stub MHD, faster-growing mid-level MHD and
// peering density (Table 1).
var Baseline = Scenario{
	Name:        "BASELINE",
	Description: "Table 1 growth model resembling observed Internet evolution",
	build:       baseline,
}

// NoMiddle removes all mid-level providers: tier-1 transit is so cheap that
// regional providers are out of business (§5.1).
var NoMiddle = Scenario{
	Name:        "NO-MIDDLE",
	Description: "no M nodes; stubs buy transit directly from tier-1s",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.NM = 0
		resplitStubs(&p)
		return p
	},
}

// RichMiddle triples the mid-level provider population (§5.1).
var RichMiddle = Scenario{
	Name:        "RICH-MIDDLE",
	Description: "booming ISP market: three times as many M nodes",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.NM = int(0.45 * float64(n))
		resplitStubs(&p)
		return p
	},
}

// StaticMiddle freezes the transit-provider population at its n=1000 size;
// all growth happens at the edge (§5.1).
var StaticMiddle = Scenario{
	Name:        "STATIC-MIDDLE",
	Description: "T and M populations frozen at n=1000; only stubs grow",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		frozen := baseline(1000, seed)
		p.NT, p.NM = frozen.NT, frozen.NM
		resplitStubs(&p)
		return p
	},
}

// TransitClique collapses the transit hierarchy into one big tier-1 clique
// of "equals" (§5.1).
var TransitClique = Scenario{
	Name:        "TRANSIT-CLIQUE",
	Description: "all transit nodes in the top clique: nT=0.15n, no M nodes",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.NT = int(0.15 * float64(n))
		p.NM = 0
		resplitStubs(&p)
		return p
	},
}

// DenseCore triples the multihoming degree of mid-level providers (§5.2).
var DenseCore = Scenario{
	Name:        "DENSE-CORE",
	Description: "3x multihoming in the core (M nodes)",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.DM *= 3
		return p
	},
}

// DenseEdge triples the multihoming degree of stubs (§5.2).
var DenseEdge = Scenario{
	Name:        "DENSE-EDGE",
	Description: "3x multihoming at the edge (C and CP nodes)",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.DC *= 3
		p.DCP *= 3
		return p
	},
}

// Tree gives every node exactly one provider (§5.2's extreme corner case).
var Tree = Scenario{
	Name:        "TREE",
	Description: "single-homed everything: the transit hierarchy is a forest",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.DM, p.DCP, p.DC = 1, 1, 1
		return p
	},
}

// ConstantMHD removes the n-dependent component of every multihoming degree
// (§5.2).
var ConstantMHD = Scenario{
	Name:        "CONSTANT-MHD",
	Description: "multihoming degrees stay at their n→0 values as n grows",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.DM, p.DCP, p.DC = 2, 2, 1
		return p
	},
}

// NoPeering removes every peering link outside the tier-1 clique (§5.3).
var NoPeering = Scenario{
	Name:        "NO-PEERING",
	Description: "no peering links except the tier-1 clique",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.PM, p.PCPM, p.PCPCP = 0, 0, 0
		return p
	},
}

// StrongCorePeering doubles the M-M peering degree (§5.3).
var StrongCorePeering = Scenario{
	Name:        "STRONG-CORE-PEERING",
	Description: "2x M-M peering density",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.PM *= 2
		return p
	},
}

// StrongEdgePeering triples the CP peering degrees (§5.3).
var StrongEdgePeering = Scenario{
	Name:        "STRONG-EDGE-PEERING",
	Description: "3x CP-M and CP-CP peering density",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.PCPM *= 3
		p.PCPCP *= 3
		return p
	},
}

// PreferMiddle makes stubs buy transit exclusively from M nodes and limits
// M nodes to at most one tier-1 provider (§5.4).
var PreferMiddle = Scenario{
	Name:        "PREFER-MIDDLE",
	Description: "stubs avoid tier-1 transit; M nodes have at most one T provider",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.TCP, p.TC = 0, 0
		p.MaxTProvidersPerM = 1
		return p
	},
}

// PreferTop limits every node to at most one M provider so transit demand
// concentrates on tier-1s (§5.4).
var PreferTop = Scenario{
	Name:        "PREFER-TOP",
	Description: "at most one M provider per node; transit concentrates on tier-1s",
	build: func(n int, seed uint64) topology.Params {
		p := baseline(n, seed)
		p.MaxMProviders = 1
		return p
	},
}

// All returns every scenario, Baseline first, the rest grouped as in §5.
func All() []Scenario {
	return []Scenario{
		Baseline,
		NoMiddle, RichMiddle, StaticMiddle, TransitClique,
		DenseCore, DenseEdge, Tree, ConstantMHD,
		NoPeering, StrongCorePeering, StrongEdgePeering,
		PreferMiddle, PreferTop,
	}
}

// ByName looks a scenario up by its paper name (case-sensitive).
func ByName(name string) (Scenario, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, 14)
	for _, s := range All() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (known: %v)", name, names)
}
