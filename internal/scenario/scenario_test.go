package scenario

import "testing"

func TestAllScenariosProduceValidParams(t *testing.T) {
	for _, s := range All() {
		for _, n := range []int{1000, 4000, 10000} {
			p := s.Params(n, 1)
			if err := p.Validate(); err != nil {
				t.Errorf("%s at n=%d: %v", s.Name, n, err)
			}
		}
	}
}

func TestAllScenariosGenerateValidTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("generation sweep skipped in -short mode")
	}
	for _, s := range All() {
		topo, err := s.Generate(600, 7)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: invalid topology: %v", s.Name, err)
		}
	}
}

func TestBaselineTable1Scaling(t *testing.T) {
	p1 := Baseline.Params(1000, 1)
	p10 := Baseline.Params(10000, 1)
	if p1.NT < 4 || p1.NT > 6 {
		t.Errorf("NT = %d, want 4-6", p1.NT)
	}
	if p1.NM != 150 || p10.NM != 1500 {
		t.Errorf("NM scaling wrong: %d, %d", p1.NM, p10.NM)
	}
	if p1.NCP != 50 || p10.NCP != 500 {
		t.Errorf("NCP scaling wrong: %d, %d", p1.NCP, p10.NCP)
	}
	// Table 1 formulas at the endpoints.
	approx := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	if !approx(p1.DM, 2.25) || !approx(p10.DM, 4.5) {
		t.Errorf("DM = %v, %v; want 2.25, 4.5", p1.DM, p10.DM)
	}
	if !approx(p1.DCP, 2.15) || !approx(p10.DCP, 3.5) {
		t.Errorf("DCP = %v, %v; want 2.15, 3.5", p1.DCP, p10.DCP)
	}
	if !approx(p1.DC, 1.05) || !approx(p10.DC, 1.5) {
		t.Errorf("DC = %v, %v; want 1.05, 1.5", p1.DC, p10.DC)
	}
	if !approx(p1.PM, 1.2) || !approx(p10.PM, 3.0) {
		t.Errorf("PM = %v, %v; want 1.2, 3.0", p1.PM, p10.PM)
	}
	if p1.TM != 0.375 || p1.TCP != 0.375 || p1.TC != 0.125 {
		t.Errorf("provider preference probabilities wrong: %v %v %v", p1.TM, p1.TCP, p1.TC)
	}
}

func TestDeviationKnobs(t *testing.T) {
	n := 4000
	base := Baseline.Params(n, 1)

	if p := NoMiddle.Params(n, 1); p.NM != 0 || p.NCP+p.NC+p.NT != n {
		t.Errorf("NO-MIDDLE mix wrong: %+v", p)
	}
	if p := RichMiddle.Params(n, 1); p.NM != int(0.45*float64(n)) {
		t.Errorf("RICH-MIDDLE NM = %d", p.NM)
	}
	if p := StaticMiddle.Params(n, 1); p.NM != 150 {
		t.Errorf("STATIC-MIDDLE NM = %d, want frozen 150", p.NM)
	}
	if p := TransitClique.Params(n, 1); p.NT != 600 || p.NM != 0 {
		t.Errorf("TRANSIT-CLIQUE NT=%d NM=%d", p.NT, p.NM)
	}
	if p := DenseCore.Params(n, 1); p.DM != 3*base.DM {
		t.Errorf("DENSE-CORE DM = %v", p.DM)
	}
	if p := DenseEdge.Params(n, 1); p.DC != 3*base.DC || p.DCP != 3*base.DCP {
		t.Errorf("DENSE-EDGE DC=%v DCP=%v", p.DC, p.DCP)
	}
	if p := Tree.Params(n, 1); p.DM != 1 || p.DCP != 1 || p.DC != 1 {
		t.Errorf("TREE degrees: %v %v %v", p.DM, p.DCP, p.DC)
	}
	if p := ConstantMHD.Params(n, 1); p.DM != 2 || p.DCP != 2 || p.DC != 1 {
		t.Errorf("CONSTANT-MHD degrees: %v %v %v", p.DM, p.DCP, p.DC)
	}
	if p := NoPeering.Params(n, 1); p.PM != 0 || p.PCPM != 0 || p.PCPCP != 0 {
		t.Errorf("NO-PEERING has peering: %+v", p)
	}
	if p := StrongCorePeering.Params(n, 1); p.PM != 2*base.PM {
		t.Errorf("STRONG-CORE-PEERING PM = %v", p.PM)
	}
	if p := StrongEdgePeering.Params(n, 1); p.PCPM != 3*base.PCPM || p.PCPCP != 3*base.PCPCP {
		t.Errorf("STRONG-EDGE-PEERING: %+v", p)
	}
	if p := PreferMiddle.Params(n, 1); p.TCP != 0 || p.TC != 0 || p.MaxTProvidersPerM != 1 {
		t.Errorf("PREFER-MIDDLE: %+v", p)
	}
	if p := PreferTop.Params(n, 1); p.MaxMProviders != 1 {
		t.Errorf("PREFER-TOP: %+v", p)
	}
}

func TestNodeBudgetAlwaysExact(t *testing.T) {
	for _, s := range All() {
		for n := 1000; n <= 10000; n += 1000 {
			p := s.Params(n, uint64(n))
			if p.NT+p.NM+p.NCP+p.NC != n {
				t.Errorf("%s at n=%d: mix sums to %d", s.Name, n, p.NT+p.NM+p.NCP+p.NC)
			}
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("DENSE-CORE")
	if err != nil || s.Name != "DENSE-CORE" {
		t.Fatalf("ByName(DENSE-CORE) = %v, %v", s.Name, err)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestScenarioSeedDeterminism(t *testing.T) {
	a := Baseline.Params(3000, 99)
	b := Baseline.Params(3000, 99)
	if a != b {
		t.Fatal("same seed gave different params")
	}
}

func TestNoMiddleEqualsTransitCliqueInStubMix(t *testing.T) {
	// The paper observes NO-MIDDLE and TRANSIT-CLIQUE differ only in the
	// number of T nodes; the stub populations should follow the same ratio.
	nm := NoMiddle.Params(10000, 1)
	tc := TransitClique.Params(10000, 1)
	ratioNM := float64(nm.NCP) / float64(nm.NC)
	ratioTC := float64(tc.NCP) / float64(tc.NC)
	if diff := ratioNM - ratioTC; diff > 0.01 || diff < -0.01 {
		t.Errorf("stub ratios diverge: %v vs %v", ratioNM, ratioTC)
	}
}
