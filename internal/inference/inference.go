// Package inference implements Gao-style AS relationship inference from
// observed BGP AS paths (L. Gao, "On inferring autonomous system
// relationships in the Internet", ToN 2001 — reference [12] of the paper).
//
// The paper's §3 dismisses inferred historical topologies because "such
// inference tends to underestimate the number of peering links". Having
// both a simulator that emits genuine policy-compliant AS paths and the
// ground-truth topology they came from, this package closes the loop: run
// the inference on simulated paths and measure exactly how much of the
// peering mesh it misses.
//
// The algorithm, per Gao's valley-free model: every AS path consists of an
// uphill segment (customer→provider links), at most one top link (possibly
// peer-peer), and a downhill segment (provider→customer links). The
// highest-degree AS on the path approximates its top. Each path then votes
// for the transit direction of its uphill and downhill links; edges with
// votes in only one direction are customer-provider, edges with votes both
// ways are siblings (mutual transit), and top edges that never carry
// transit for anyone are classified peer-peer.
package inference

import (
	"fmt"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/topology"
)

// InferredRelation is the algorithm's verdict for one adjacency.
type InferredRelation uint8

const (
	// ProviderCustomer: the first node of the canonical pair provides
	// transit to the second.
	ProviderCustomer InferredRelation = iota
	// CustomerProvider: the reverse direction.
	CustomerProvider
	// PeerPeer: settlement-free peering.
	PeerPeer
	// Sibling: transit observed in both directions (mutual transit).
	Sibling
)

// String names the inferred relation.
func (r InferredRelation) String() string {
	switch r {
	case ProviderCustomer:
		return "provider-customer"
	case CustomerProvider:
		return "customer-provider"
	case PeerPeer:
		return "peer-peer"
	case Sibling:
		return "sibling"
	}
	return fmt.Sprintf("InferredRelation(%d)", uint8(r))
}

// edge is a canonical node pair (A < B).
type edge struct{ a, b topology.NodeID }

func canon(a, b topology.NodeID) edge {
	if a > b {
		a, b = b, a
	}
	return edge{a, b}
}

// Inferred holds the inference outcome.
type Inferred struct {
	// Relations maps every observed adjacency (canonical order: lower id
	// first) to its inferred relation.
	Relations map[[2]topology.NodeID]InferredRelation
	// Paths is the number of AS paths consumed.
	Paths int
}

// Infer runs the Gao-style classification over AS paths. degree supplies
// the (approximate) degree used to locate each path's top provider; using
// the true topology degree mirrors Gao's use of an external degree oracle.
func Infer(paths []bgp.Path, degree func(topology.NodeID) int) *Inferred {
	// transit[{u,v}] counts votes: aUp = "a buys transit from b" style
	// accounting per canonical edge.
	type votes struct{ lowBuys, highBuys int }
	transit := make(map[edge]*votes)
	topEdges := make(map[edge]struct{})

	vote := func(customer, provider topology.NodeID) {
		e := canon(customer, provider)
		v := transit[e]
		if v == nil {
			v = &votes{}
			transit[e] = v
		}
		if customer == e.a {
			v.lowBuys++
		} else {
			v.highBuys++
		}
	}

	used := 0
	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		used++
		// Locate the top: the highest-degree AS (first occurrence wins).
		top := 0
		for i := 1; i < len(p); i++ {
			if degree(p[i]) > degree(p[top]) {
				top = i
			}
		}
		// The path is [receiver, ..., origin]; propagation ran origin→
		// receiver, climbing customer→provider on the origin side of the
		// top and descending provider→customer on the receiver side. When
		// the top is interior, exactly one of its two incident links may be
		// a peering: the one whose far endpoint looks most like an equal
		// (higher degree). That link is withheld from transit voting and
		// becomes a peering candidate, as in Gao's peering phase.
		peerCand := -1
		if top > 0 && top < len(p)-1 {
			if degree(p[top-1]) >= degree(p[top+1]) {
				peerCand = top - 1 // link (top-1, top)
			} else {
				peerCand = top // link (top, top+1)
			}
		}
		for i := 0; i+1 < len(p); i++ {
			if i == peerCand {
				topEdges[canon(p[i], p[i+1])] = struct{}{}
				continue
			}
			if i < top {
				// Receiver side: p[i+1] exported the route down to its
				// customer p[i].
				vote(p[i], p[i+1])
			} else {
				// Origin side: p[i+1] bought transit from p[i].
				vote(p[i+1], p[i])
			}
		}
	}

	out := &Inferred{
		Relations: make(map[[2]topology.NodeID]InferredRelation, len(transit)+len(topEdges)),
		Paths:     used,
	}
	for e, v := range transit {
		key := [2]topology.NodeID{e.a, e.b}
		switch {
		case v.lowBuys > 0 && v.highBuys > 0:
			out.Relations[key] = Sibling
		case v.lowBuys > 0:
			out.Relations[key] = CustomerProvider // e.a buys from e.b
		default:
			out.Relations[key] = ProviderCustomer // e.a provides to e.b
		}
	}
	// Top edges with no transit votes from any path are inferred peerings.
	for e := range topEdges {
		key := [2]topology.NodeID{e.a, e.b}
		if _, ok := out.Relations[key]; !ok {
			out.Relations[key] = PeerPeer
		}
	}
	return out
}

// Accuracy compares an inference against the ground-truth topology.
type Accuracy struct {
	// ObservedEdges is the number of adjacencies visible in the paths.
	ObservedEdges int
	// TrueEdges is the number of adjacencies in the topology.
	TrueEdges int
	// TransitCorrect / TransitObserved score direction-correct
	// classification of true customer-provider links among observed ones.
	TransitCorrect, TransitObserved int
	// PeerCorrect / PeerObserved score observed true-peer links classified
	// as peer; PeerTotal is the number of true peer links overall, so
	// PeerRecallTotal = PeerCorrect / PeerTotal captures the paper's
	// "inference underestimates peering" including invisible links.
	PeerCorrect, PeerObserved, PeerTotal int
}

// TransitAccuracy returns the fraction of observed transit links whose
// direction was inferred correctly.
func (a Accuracy) TransitAccuracy() float64 {
	if a.TransitObserved == 0 {
		return 0
	}
	return float64(a.TransitCorrect) / float64(a.TransitObserved)
}

// PeerRecallObserved returns recall over peer links that appear in paths.
func (a Accuracy) PeerRecallObserved() float64 {
	if a.PeerObserved == 0 {
		return 0
	}
	return float64(a.PeerCorrect) / float64(a.PeerObserved)
}

// PeerRecallTotal returns recall over all true peer links, counting the
// ones no path ever crossed — the number the paper's §3 worries about.
func (a Accuracy) PeerRecallTotal() float64 {
	if a.PeerTotal == 0 {
		return 0
	}
	return float64(a.PeerCorrect) / float64(a.PeerTotal)
}

// Evaluate scores inf against the ground truth topo.
func Evaluate(inf *Inferred, topo *topology.Topology) Accuracy {
	var acc Accuracy
	transit, peering := topo.Edges()
	acc.TrueEdges = transit + peering
	acc.PeerTotal = peering
	acc.ObservedEdges = len(inf.Relations)
	for key, rel := range inf.Relations {
		a, b := key[0], key[1]
		truth := topo.Relation(a, b)
		switch truth {
		case topology.Customer: // b is a's customer: a provides to b
			acc.TransitObserved++
			if rel == ProviderCustomer {
				acc.TransitCorrect++
			}
		case topology.Provider: // a buys from b
			acc.TransitObserved++
			if rel == CustomerProvider {
				acc.TransitCorrect++
			}
		case topology.Peer:
			acc.PeerObserved++
			if rel == PeerPeer {
				acc.PeerCorrect++
			}
		}
	}
	return acc
}

// CollectPaths gathers the best AS path of every node toward each of the
// given prefixes from a converged network — the view a route collector
// with full feeds from every AS would have.
func CollectPaths(net *bgp.Network, prefixes []bgp.Prefix) []bgp.Path {
	topo := net.Topology()
	var out []bgp.Path
	for _, f := range prefixes {
		for id := 0; id < topo.N(); id++ {
			if p := net.BestPath(topology.NodeID(id), f); len(p) >= 2 {
				out = append(out, p)
			}
		}
	}
	return out
}
