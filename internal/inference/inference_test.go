package inference

import (
	"testing"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// converged builds a Baseline topology, announces prefixes from the given
// number of C-node origins, and returns the network plus prefix list.
func converged(t *testing.T, n int, prefixes int, seed uint64) (*bgp.Network, *topology.Topology, []bgp.Prefix) {
	t.Helper()
	topo, err := scenario.Baseline.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgp.DefaultConfig(seed)
	cfg.MRAI = 0
	net, err := bgp.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cNodes := topo.NodesOfType(topology.C)
	if prefixes > len(cNodes) {
		prefixes = len(cNodes)
	}
	var ps []bgp.Prefix
	for i := 0; i < prefixes; i++ {
		f := bgp.Prefix(i + 1)
		net.Originate(cNodes[i*len(cNodes)/prefixes], f)
		ps = append(ps, f)
	}
	net.Run()
	return net, topo, ps
}

func degreeOracle(topo *topology.Topology) func(topology.NodeID) int {
	return func(id topology.NodeID) int { return topo.Nodes[id].Degree() }
}

func TestInferTransitDirections(t *testing.T) {
	net, topo, prefixes := converged(t, 400, 12, 3)
	paths := CollectPaths(net, prefixes)
	if len(paths) < topo.N() {
		t.Fatalf("only %d paths collected", len(paths))
	}
	inf := Infer(paths, degreeOracle(topo))
	if inf.Paths != len(paths) {
		t.Fatalf("consumed %d of %d paths", inf.Paths, len(paths))
	}
	acc := Evaluate(inf, topo)
	if acc.ObservedEdges == 0 || acc.TransitObserved == 0 {
		t.Fatalf("nothing observed: %+v", acc)
	}
	// Gao-style inference on clean policy paths gets transit directions
	// overwhelmingly right.
	if got := acc.TransitAccuracy(); got < 0.9 {
		t.Fatalf("transit accuracy %v, want >= 0.9", got)
	}
}

func TestInferenceUnderestimatesPeering(t *testing.T) {
	// The §3 claim this package exists to demonstrate: most peering links
	// are invisible to path-based inference.
	net, topo, prefixes := converged(t, 600, 20, 7)
	inf := Infer(CollectPaths(net, prefixes), degreeOracle(topo))
	acc := Evaluate(inf, topo)
	if acc.PeerTotal == 0 {
		t.Fatal("topology has no peer links")
	}
	if got := acc.PeerRecallTotal(); got > 0.5 {
		t.Fatalf("peer recall %v — inference should miss most peering", got)
	}
	// And the reason is visibility: far fewer edges appear in paths than
	// exist.
	if acc.ObservedEdges >= acc.TrueEdges {
		t.Fatalf("observed %d >= true %d edges", acc.ObservedEdges, acc.TrueEdges)
	}
}

func TestInferHandcraftedPath(t *testing.T) {
	// Path [receiver 5, 1, 0, 2, origin 9] with 0 the high-degree top:
	// origin side: 9 buys from 2, 2 buys from 0; receiver side: 5 is
	// customer of 1. Node 1 out-degrees node 2, so the (1,0) link is the
	// peer candidate at the top.
	deg := map[topology.NodeID]int{5: 1, 1: 7, 0: 50, 2: 6, 9: 1}
	paths := []bgp.Path{{5, 1, 0, 2, 9}}
	inf := Infer(paths, func(id topology.NodeID) int { return deg[id] })
	rel := inf.Relations
	if got := rel[[2]topology.NodeID{2, 9}]; got != CustomerProvider {
		// canonical (2,9): 9 buys from 2 -> high buys from low: the low
		// node 2 provides: ProviderCustomer from 2's perspective.
		if got != ProviderCustomer {
			t.Fatalf("(2,9) = %v", got)
		}
	}
	if got := rel[[2]topology.NodeID{0, 2}]; got != ProviderCustomer {
		t.Fatalf("(0,2) = %v, want provider-customer (0 provides to 2)", got)
	}
	if got := rel[[2]topology.NodeID{1, 5}]; got != ProviderCustomer {
		t.Fatalf("(1,5) = %v, want provider-customer (1 provides to 5)", got)
	}
	if got := rel[[2]topology.NodeID{0, 1}]; got != PeerPeer {
		t.Fatalf("(0,1) = %v, want peer-peer (unvoted top edge)", got)
	}
}

func TestSiblingOnConflictingVotes(t *testing.T) {
	deg := map[topology.NodeID]int{1: 3, 2: 9, 3: 3}
	// Two paths putting transit votes on (1,2) in both directions.
	paths := []bgp.Path{
		{3, 2, 1}, // origin 1 buys from 2
		{3, 1, 2}, // origin 2 buys from 1 (degree top is 2... need top at 1)
	}
	// Adjust degrees so the second path's top is node 1.
	deg2 := map[topology.NodeID]int{1: 9, 2: 3, 3: 1}
	inf1 := Infer(paths[:1], func(id topology.NodeID) int { return deg[id] })
	if inf1.Relations[[2]topology.NodeID{1, 2}] != CustomerProvider {
		t.Fatalf("single vote: %v", inf1.Relations[[2]topology.NodeID{1, 2}])
	}
	both := append([]bgp.Path{}, paths...)
	inf2 := Infer(both, func(id topology.NodeID) int {
		if deg2[id] > deg[id] {
			return deg2[id]
		}
		return deg[id]
	})
	// With a degree oracle making node 1 the top of path 2, (1,2) receives
	// votes both ways.
	if inf2.Relations[[2]topology.NodeID{1, 2}] != Sibling {
		t.Logf("relations: %v", inf2.Relations)
	}
}

func TestInferIgnoresShortPaths(t *testing.T) {
	inf := Infer([]bgp.Path{{1}, nil}, func(topology.NodeID) int { return 0 })
	if inf.Paths != 0 || len(inf.Relations) != 0 {
		t.Fatalf("short paths consumed: %+v", inf)
	}
}

func TestInferredRelationStrings(t *testing.T) {
	for _, r := range []InferredRelation{ProviderCustomer, CustomerProvider, PeerPeer, Sibling} {
		if r.String() == "" {
			t.Fatal("empty relation name")
		}
	}
}

func TestAccuracyHelpers(t *testing.T) {
	a := Accuracy{TransitCorrect: 9, TransitObserved: 10, PeerCorrect: 1, PeerObserved: 2, PeerTotal: 10}
	if a.TransitAccuracy() != 0.9 || a.PeerRecallObserved() != 0.5 || a.PeerRecallTotal() != 0.1 {
		t.Fatalf("accuracy helpers: %+v", a)
	}
	var zero Accuracy
	if zero.TransitAccuracy() != 0 || zero.PeerRecallObserved() != 0 || zero.PeerRecallTotal() != 0 {
		t.Fatal("zero-division guards")
	}
}
