package compact

import (
	"math"
	"testing"

	"bgpchurn/internal/graph"
	"bgpchurn/internal/scenario"
)

// line builds the path graph 0-1-...-(n-1).
func line(n int) *graph.Undirected {
	g := graph.NewUndirected(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(int32(i), int32(i+1))
	}
	return g
}

func TestBuildOnLine(t *testing.T) {
	g := line(5)
	s, err := Build(g, []int32{2}) // center landmark
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if s.NearestLandmark[v] != 2 {
			t.Fatalf("L(%d) = %d", v, s.NearestLandmark[v])
		}
	}
	if s.NearestDist[0] != 2 || s.NearestDist[1] != 1 || s.NearestDist[2] != 0 {
		t.Fatalf("nearest distances = %v", s.NearestDist)
	}
	// Cluster of 0 holds nodes strictly closer to 0 than to the landmark:
	// node 1 (d=1 < d(1,2)=1? no, not strict)... check strictness: C(0)
	// must not contain 1 because d(1,0)=1 == d(1,L(1))=1.
	for _, w := range s.Clusters[0] {
		if w == 1 {
			t.Fatal("cluster membership not strict")
		}
	}
}

func TestStretchBoundOnGeneratedTopology(t *testing.T) {
	topo, err := scenario.Baseline.Generate(600, 17)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Undirected()
	landmarks := ChooseLandmarks(g, 24, 17)
	s, err := Build(g, landmarks)
	if err != nil {
		t.Fatal(err)
	}
	sources := []int32{0, 10, 100, 300, 599}
	st := s.MeasureStretch(sources)
	if st.Pairs == 0 {
		t.Fatal("no pairs measured")
	}
	if st.Max > 3.0+1e-9 {
		t.Fatalf("stretch bound violated: max = %v", st.Max)
	}
	if st.Mean < 1 {
		t.Fatalf("mean stretch %v < 1", st.Mean)
	}
	// On Internet-like graphs the scheme is known to route most pairs with
	// small stretch; sanity-check we are not near the worst case globally.
	if st.Mean > 2 {
		t.Fatalf("mean stretch %v implausibly high for an Internet-like graph", st.Mean)
	}
}

func TestTableSizesBeatFullTables(t *testing.T) {
	topo, err := scenario.Baseline.Generate(1000, 19)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Undirected()
	k := int(math.Ceil(math.Sqrt(float64(g.N()))))
	s, err := Build(g, ChooseLandmarks(g, k, 19))
	if err != nil {
		t.Fatal(err)
	}
	mean := s.MeanTableSize()
	// BGP keeps n entries; compact should be far below on a hierarchy-
	// shaped graph.
	if mean >= float64(g.N())/2 {
		t.Fatalf("mean table size %v not compact vs n=%d", mean, g.N())
	}
	if s.MaxTableSize() < len(s.Landmarks) {
		t.Fatal("max table below landmark count")
	}
}

func TestRouteLengthDirectAndViaLandmark(t *testing.T) {
	// Star with center 0: landmark at a leaf to force detours.
	g := graph.NewUndirected(5)
	for i := int32(1); i < 5; i++ {
		g.AddEdge(0, i)
	}
	s, err := Build(g, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	// Route 2 -> 1 (landmark): direct, 2 hops.
	hops, direct := s.RouteLength(2, 1)
	if !direct || hops != 2 {
		t.Fatalf("to landmark: hops=%d direct=%v", hops, direct)
	}
	// 2 -> 3: shortest is 2 (via center). L(3)=1, so the compact route is
	// d(2,1)+d(1,3) = 2+2 = 4 unless 3 is in C(2). d(3,2)=2 >= d(3,L(3))=2,
	// so not in the cluster: stretch 2.
	hops, direct = s.RouteLength(2, 3)
	if direct || hops != 4 {
		t.Fatalf("detour route: hops=%d direct=%v", hops, direct)
	}
	if h, d := s.RouteLength(2, 2); h != 0 || !d {
		t.Fatal("self route")
	}
}

func TestChooseLandmarks(t *testing.T) {
	topo, err := scenario.Tree.Generate(300, 23)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Undirected()
	ls := ChooseLandmarks(g, 10, 23)
	if len(ls) != 10 {
		t.Fatalf("got %d landmarks", len(ls))
	}
	seen := map[int32]bool{}
	for _, l := range ls {
		if seen[l] {
			t.Fatal("duplicate landmark")
		}
		seen[l] = true
	}
	// The top-degree node (a tier-1 hub) must be among the first picks.
	best := int32(0)
	for v := 1; v < g.N(); v++ {
		if g.Degree(int32(v)) > g.Degree(best) {
			best = int32(v)
		}
	}
	if !seen[best] {
		t.Fatal("highest-degree node not chosen as landmark")
	}
	// Clamping.
	if got := ChooseLandmarks(g, 0, 1); len(got) != 1 {
		t.Fatalf("k=0 gave %d landmarks", len(got))
	}
	if got := ChooseLandmarks(g, 10_000, 1); len(got) != g.N() {
		t.Fatalf("oversized k gave %d landmarks", len(got))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(graph.NewUndirected(0), []int32{0}); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := line(3)
	if _, err := Build(g, nil); err == nil {
		t.Fatal("no landmarks accepted")
	}
	if _, err := Build(g, []int32{7}); err == nil {
		t.Fatal("out-of-range landmark accepted")
	}
	if _, err := Build(g, []int32{1, 1}); err == nil {
		t.Fatal("duplicate landmark accepted")
	}
	// Disconnected graph: some node cannot reach any landmark.
	dg := graph.NewUndirected(4)
	dg.AddEdge(0, 1)
	dg.AddEdge(2, 3)
	if _, err := Build(dg, []int32{0}); err == nil {
		t.Fatal("unreachable landmark accepted")
	}
}

func TestLandmarkFailureImpact(t *testing.T) {
	topo, err := scenario.Baseline.Generate(400, 29)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Undirected()
	s, err := Build(g, ChooseLandmarks(g, 12, 29))
	if err != nil {
		t.Fatal(err)
	}
	// Failing any landmark touches state at EVERY node — the dynamics
	// problem the paper's related work points at.
	entries, rehomed := s.LandmarkFailureImpact(s.Landmarks[0])
	if entries != g.N() {
		t.Fatalf("entries invalidated = %d, want n=%d", entries, g.N())
	}
	total := 0
	for _, l := range s.Landmarks {
		_, r := s.LandmarkFailureImpact(l)
		total += r
	}
	if total != g.N() {
		t.Fatalf("rehomed counts sum to %d, want n=%d", total, g.N())
	}
	_ = rehomed
	if e, r := s.LandmarkFailureImpact(int32(topo.N() - 1)); e != 0 || r != 0 {
		// Only meaningful if that node is not a landmark; re-check.
		if _, isL := s.landmarkIndex[int32(topo.N()-1)]; !isL {
			t.Log("non-landmark failure has no landmark impact, as expected")
		}
	}
}

// For a non-landmark node, failure impact must be zero (local repair only).
func TestNonLandmarkFailureImpactZero(t *testing.T) {
	g := line(6)
	s, err := Build(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if e, r := s.LandmarkFailureImpact(3); e != 0 || r != 0 {
		t.Fatalf("non-landmark impact = %d, %d", e, r)
	}
}

func BenchmarkBuildCompact1000(b *testing.B) {
	topo, err := scenario.Baseline.Generate(1000, 31)
	if err != nil {
		b.Fatal(err)
	}
	g := topo.Undirected()
	ls := ChooseLandmarks(g, 32, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, ls); err != nil {
			b.Fatal(err)
		}
	}
}
