// Package compact implements a landmark-based compact routing scheme
// (Cowen's universal stretch-3 scheme, the construction behind the
// Krioukov et al. proposal the paper's related-work section contrasts BGP
// with). It is the repository's comparator baseline: compact routing keeps
// per-node tables of size ~√(n log n) instead of BGP's Θ(n), at the cost
// of bounded path stretch and — the property the paper highlights — poor
// behavior under dynamics, because a landmark change invalidates state at
// every node in the network.
//
// The scheme, on an unweighted graph:
//
//   - a set L of landmarks is chosen;
//   - every node v stores a routing entry for every landmark, plus an
//     entry for every node in its cluster C(v) = { w : d(v,w) < d(w,L(w)) }
//     (nodes strictly closer to v than to their own nearest landmark);
//   - a packet for destination d is routed directly if d ∈ C(v) ∪ L,
//     otherwise toward d's nearest landmark L(d) and from there to d,
//     giving worst-case stretch 3.
package compact

import (
	"fmt"

	"bgpchurn/internal/graph"
	"bgpchurn/internal/rng"
)

// Scheme is a built compact-routing instance over one graph.
type Scheme struct {
	g *graph.Undirected
	// Landmarks lists the landmark node ids.
	Landmarks []int32
	// NearestLandmark[v] is L(v), v's closest landmark (ties broken by
	// lower landmark id); NearestDist[v] is d(v, L(v)).
	NearestLandmark []int32
	NearestDist     []int32
	// Clusters[v] holds C(v), sorted ascending.
	Clusters [][]int32
	// landmarkDist[i] is the BFS distance vector of Landmarks[i].
	landmarkDist [][]int32
	// landmarkIndex maps a landmark id to its position in Landmarks.
	landmarkIndex map[int32]int
}

// ChooseLandmarks picks k landmarks: the ⌈k/2⌉ highest-degree nodes (the
// Internet's natural landmarks are the well-connected core) plus uniformly
// random nodes for coverage, deduplicated. k is clamped to [1, n].
func ChooseLandmarks(g *graph.Undirected, k int, seed uint64) []int32 {
	n := g.N()
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	chosen := make(map[int32]struct{}, k)
	var out []int32
	// Highest-degree half, by repeated max scan (k is small).
	degreeOrder := make([]int32, n)
	for i := range degreeOrder {
		degreeOrder[i] = int32(i)
	}
	// Partial selection sort for the top ⌈k/2⌉ degrees.
	top := (k + 1) / 2
	for i := 0; i < top; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if g.Degree(degreeOrder[j]) > g.Degree(degreeOrder[best]) {
				best = j
			}
		}
		degreeOrder[i], degreeOrder[best] = degreeOrder[best], degreeOrder[i]
		chosen[degreeOrder[i]] = struct{}{}
		out = append(out, degreeOrder[i])
	}
	r := rng.New(seed ^ 0x51a3bc96d07e84f1)
	for len(out) < k {
		v := int32(r.Intn(n))
		if _, ok := chosen[v]; ok {
			continue
		}
		chosen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Build constructs the scheme for the given landmark set. Costs one BFS per
// landmark plus one BFS per node (for cluster membership): O(n·E) worst
// case, fine at the ≤10⁴ scale used here.
func Build(g *graph.Undirected, landmarks []int32) (*Scheme, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("compact: empty graph")
	}
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("compact: no landmarks")
	}
	s := &Scheme{
		g:               g,
		Landmarks:       append([]int32(nil), landmarks...),
		NearestLandmark: make([]int32, n),
		NearestDist:     make([]int32, n),
		Clusters:        make([][]int32, n),
		landmarkIndex:   make(map[int32]int, len(landmarks)),
	}
	for i, l := range s.Landmarks {
		if int(l) < 0 || int(l) >= n {
			return nil, fmt.Errorf("compact: landmark %d out of range", l)
		}
		if _, dup := s.landmarkIndex[l]; dup {
			return nil, fmt.Errorf("compact: duplicate landmark %d", l)
		}
		s.landmarkIndex[l] = i
	}

	// Distance vector per landmark.
	s.landmarkDist = make([][]int32, len(s.Landmarks))
	for i, l := range s.Landmarks {
		s.landmarkDist[i] = s.g.BFSDistances(l)
	}

	// Nearest landmark per node.
	for v := 0; v < n; v++ {
		bestDist, bestL := int32(-1), int32(-1)
		for i, l := range s.Landmarks {
			d := s.landmarkDist[i][v]
			if d < 0 {
				continue
			}
			if bestDist < 0 || d < bestDist || (d == bestDist && l < bestL) {
				bestDist, bestL = d, l
			}
		}
		if bestDist < 0 {
			return nil, fmt.Errorf("compact: node %d cannot reach any landmark", v)
		}
		s.NearestDist[v] = bestDist
		s.NearestLandmark[v] = bestL
	}

	// Clusters: one BFS per node w, adding w to C(v) for every v with
	// d(w,v) < d(w, L(w)). Nodes co-located with their landmark (distance
	// 0, i.e. landmarks themselves) have empty "ball", contributing nothing.
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for w := 0; w < n; w++ {
		radius := s.NearestDist[w]
		if radius == 0 {
			continue
		}
		s.g.BFSDistancesInto(int32(w), dist, queue)
		for v := 0; v < n; v++ {
			if v != w && dist[v] >= 0 && dist[v] < radius {
				s.Clusters[v] = append(s.Clusters[v], int32(w))
			}
		}
	}
	return s, nil
}

// TableSize returns the number of routing entries node v stores:
// all landmarks plus its cluster.
func (s *Scheme) TableSize(v int32) int {
	return len(s.Landmarks) + len(s.Clusters[v])
}

// MeanTableSize returns the average table size across nodes.
func (s *Scheme) MeanTableSize() float64 {
	total := 0
	for v := 0; v < s.g.N(); v++ {
		total += s.TableSize(int32(v))
	}
	return float64(total) / float64(s.g.N())
}

// MaxTableSize returns the largest table in the scheme.
func (s *Scheme) MaxTableSize() int {
	max := 0
	for v := 0; v < s.g.N(); v++ {
		if ts := s.TableSize(int32(v)); ts > max {
			max = ts
		}
	}
	return max
}

// RouteLength returns the hop count of the compact route from src to dst
// and whether it was direct (dst in src's cluster or a landmark) or via
// dst's landmark. Returns -1 for unreachable pairs.
func (s *Scheme) RouteLength(src, dst int32) (hops int32, direct bool) {
	if src == dst {
		return 0, true
	}
	srcDist := s.g.BFSDistances(src)
	return s.routeLengthWith(srcDist, src, dst)
}

func (s *Scheme) routeLengthWith(srcDist []int32, src, dst int32) (hops int32, direct bool) {
	if src == dst {
		return 0, true
	}
	// Direct entry: dst is a landmark or in src's cluster.
	if _, isL := s.landmarkIndex[dst]; isL {
		return srcDist[dst], true
	}
	for _, w := range s.Clusters[src] {
		if w == dst {
			return srcDist[dst], true
		}
	}
	// Otherwise via dst's nearest landmark.
	l := s.NearestLandmark[dst]
	li := s.landmarkIndex[l]
	toL := srcDist[l]
	if toL < 0 {
		return -1, false
	}
	return toL + s.landmarkDist[li][dst], false
}

// StretchStats summarizes routing stretch over sampled pairs.
type StretchStats struct {
	// Mean and Max are the multiplicative stretch (compact route length /
	// shortest path length) over the sample.
	Mean, Max float64
	// DirectFraction is the share of pairs routed without landmark detour.
	DirectFraction float64
	// Pairs is the number of sampled (src, dst) pairs.
	Pairs int
}

// MeasureStretch samples pairs (BFS from `sources` source nodes to all
// destinations) and returns stretch statistics. The theoretical guarantee
// of the scheme is Max <= 3.
func (s *Scheme) MeasureStretch(sources []int32) StretchStats {
	var st StretchStats
	var sum float64
	n := s.g.N()
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	direct := 0
	for _, src := range sources {
		s.g.BFSDistancesInto(src, dist, queue)
		for dst := 0; dst < n; dst++ {
			if int32(dst) == src || dist[dst] <= 0 {
				continue
			}
			hops, wasDirect := s.routeLengthWith(dist, src, int32(dst))
			if hops < 0 {
				continue
			}
			stretch := float64(hops) / float64(dist[dst])
			sum += stretch
			if stretch > st.Max {
				st.Max = stretch
			}
			if wasDirect {
				direct++
			}
			st.Pairs++
		}
	}
	if st.Pairs > 0 {
		st.Mean = sum / float64(st.Pairs)
		st.DirectFraction = float64(direct) / float64(st.Pairs)
	}
	return st
}

// LandmarkFailureImpact quantifies the scheme's fragility under dynamics
// (the paper's "performs poorly under dynamic conditions"): the number of
// routing entries network-wide that a single failure of the given landmark
// invalidates — one entry at every node, plus the entire table-building
// state of every node whose nearest landmark it was.
func (s *Scheme) LandmarkFailureImpact(landmark int32) (entriesInvalidated int, nodesRehomed int) {
	if _, ok := s.landmarkIndex[landmark]; !ok {
		return 0, 0
	}
	n := s.g.N()
	entriesInvalidated = n // every node stores an entry per landmark
	for v := 0; v < n; v++ {
		if s.NearestLandmark[v] == landmark {
			nodesRehomed++
		}
	}
	return entriesInvalidated, nodesRehomed
}
