package workload

import (
	"testing"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/des"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

func testTopo(t *testing.T, n int, seed uint64) *topology.Topology {
	t.Helper()
	topo, err := scenario.Baseline.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func quickConfig(seed uint64) Config {
	return Config{
		Duration:           2 * 3600 * des.Second,
		Bucket:             600 * des.Second,
		Prefixes:           10,
		PrefixFlapsPerHour: 20,
		LinkFlapsPerHour:   5,
		Monitor:            topology.None,
		Seed:               seed,
	}
}

func TestWorkloadProducesTimeline(t *testing.T) {
	topo := testTopo(t, 300, 3)
	tl, err := Run(topo, bgp.DefaultConfig(3), quickConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Updates) != 12 {
		t.Fatalf("buckets = %d, want 12", len(tl.Updates))
	}
	if tl.Events == 0 {
		t.Fatal("no events scheduled")
	}
	sum := 0.0
	for _, v := range tl.Updates {
		if v < 0 {
			t.Fatalf("negative bucket: %v", tl.Updates)
		}
		sum += v
	}
	if sum == 0 {
		t.Fatal("monitor saw no updates at all")
	}
	if tl.TotalUpdates == 0 || tl.PeakRate == 0 {
		t.Fatalf("aggregates missing: %+v", tl)
	}
	if topo.Nodes[tl.Monitor].Type != topology.T {
		t.Fatalf("default monitor is %v, want a T node", topo.Nodes[tl.Monitor].Type)
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	topo := testTopo(t, 250, 5)
	run := func() *Timeline {
		tl, err := Run(topo, bgp.DefaultConfig(5), quickConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	a, b := run(), run()
	if a.TotalUpdates != b.TotalUpdates || a.Events != b.Events {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Updates {
		if a.Updates[i] != b.Updates[i] {
			t.Fatalf("bucket %d differs: %v vs %v", i, a.Updates[i], b.Updates[i])
		}
	}
}

func TestWorkloadRateScalesChurn(t *testing.T) {
	topo := testTopo(t, 250, 7)
	low := quickConfig(7)
	low.PrefixFlapsPerHour, low.LinkFlapsPerHour = 2, 0
	high := quickConfig(7)
	high.PrefixFlapsPerHour, high.LinkFlapsPerHour = 40, 0
	tlLow, err := Run(topo, bgp.DefaultConfig(7), low)
	if err != nil {
		t.Fatal(err)
	}
	tlHigh, err := Run(topo, bgp.DefaultConfig(7), high)
	if err != nil {
		t.Fatal(err)
	}
	if tlHigh.TotalUpdates <= tlLow.TotalUpdates {
		t.Fatalf("20x event rate did not raise churn: %d vs %d", tlHigh.TotalUpdates, tlLow.TotalUpdates)
	}
}

func TestWorkloadBurstiness(t *testing.T) {
	topo := testTopo(t, 200, 9)
	tl, err := Run(topo, bgp.DefaultConfig(9), quickConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	// A Poisson event stream through MRAI machinery is never perfectly
	// smooth: the busiest bucket must exceed the mean.
	if tl.PeakToMean() < 1 {
		t.Fatalf("peak-to-mean %v < 1", tl.PeakToMean())
	}
}

func TestPeakToMean(t *testing.T) {
	tl := &Timeline{Updates: []float64{1, 1, 1, 9}}
	if got := tl.PeakToMean(); got != 3 {
		t.Fatalf("peak/mean = %v, want 3", got)
	}
	empty := &Timeline{}
	if empty.PeakToMean() != 0 {
		t.Fatal("empty timeline peak/mean")
	}
	zero := &Timeline{Updates: []float64{0, 0}}
	if zero.PeakToMean() != 0 {
		t.Fatal("all-zero timeline peak/mean")
	}
}

func TestWorkloadValidation(t *testing.T) {
	topo := testTopo(t, 150, 11)
	bad := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Bucket = 0 },
		func(c *Config) { c.Bucket = c.Duration + 1 },
		func(c *Config) { c.Prefixes = 0 },
		func(c *Config) { c.PrefixFlapsPerHour = -1 },
		func(c *Config) { c.PrefixFlapsPerHour, c.LinkFlapsPerHour = 0, 0 },
	}
	for i, mutate := range bad {
		cfg := quickConfig(11)
		mutate(&cfg)
		if _, err := Run(topo, bgp.DefaultConfig(11), cfg); err == nil {
			t.Errorf("case %d: invalid workload accepted", i)
		}
	}
	// Prefix count is capped at the C population rather than erroring.
	cfg := quickConfig(11)
	cfg.Prefixes = 1 << 20
	if _, err := Run(topo, bgp.DefaultConfig(11), cfg); err != nil {
		t.Errorf("oversized prefix count not capped: %v", err)
	}
}

func TestExplicitMonitor(t *testing.T) {
	topo := testTopo(t, 200, 13)
	cfg := quickConfig(13)
	cfg.Monitor = topo.NodesOfType(topology.M)[0]
	tl, err := Run(topo, bgp.DefaultConfig(13), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Monitor != cfg.Monitor {
		t.Fatalf("monitor = %d, want %d", tl.Monitor, cfg.Monitor)
	}
}
