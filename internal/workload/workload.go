// Package workload drives the BGP simulator with a continuous stream of
// routing events — prefix flaps at stub networks and transit-link flaps —
// and records the update feed a designated monitor AS would log, bucketed
// over virtual time.
//
// This closes the loop with the paper's Fig. 1: instead of a statistically
// synthesized monitor series (package trace), the series here is produced
// by the protocol machinery itself, so burstiness and event overlap emerge
// from MRAI timers, path exploration and topology rather than from a
// distributional assumption.
package workload

import (
	"fmt"
	"math"
	"sort"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/des"
	"bgpchurn/internal/rng"
	"bgpchurn/internal/topology"
)

// Config describes the event stream.
type Config struct {
	// Duration is the simulated time span.
	Duration des.Time
	// Bucket is the sampling interval of the monitor feed (e.g. one
	// virtual hour).
	Bucket des.Time
	// Prefixes is the number of C-node-originated prefixes announced at
	// startup; events pick uniformly among them.
	Prefixes int
	// PrefixFlapsPerHour is the Poisson rate of C-events (a prefix goes
	// down, stays down for a uniform 1–30 virtual minutes, comes back).
	PrefixFlapsPerHour float64
	// LinkFlapsPerHour is the Poisson rate of transit-link flaps (same
	// hold-time model).
	LinkFlapsPerHour float64
	// Monitor is the AS whose received-update feed is recorded. Use
	// topology.None to pick the highest-degree T node.
	Monitor topology.NodeID
	// Seed drives event scheduling.
	Seed uint64
}

// DefaultConfig returns a day-long workload with moderate event rates.
func DefaultConfig(seed uint64) Config {
	return Config{
		Duration:           24 * 3600 * des.Second,
		Bucket:             3600 * des.Second,
		Prefixes:           40,
		PrefixFlapsPerHour: 6,
		LinkFlapsPerHour:   2,
		Monitor:            topology.None,
		Seed:               seed,
	}
}

// Validate reports whether the workload is well-formed.
func (c *Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("workload: non-positive duration")
	case c.Bucket <= 0 || c.Bucket > c.Duration:
		return fmt.Errorf("workload: bucket must be in (0, duration]")
	case c.Prefixes < 1:
		return fmt.Errorf("workload: need at least one prefix")
	case c.PrefixFlapsPerHour < 0 || c.LinkFlapsPerHour < 0:
		return fmt.Errorf("workload: negative event rate")
	case c.PrefixFlapsPerHour == 0 && c.LinkFlapsPerHour == 0:
		return fmt.Errorf("workload: no event sources enabled")
	}
	return nil
}

// Timeline is the monitor's recorded feed.
type Timeline struct {
	// Monitor is the recording AS.
	Monitor topology.NodeID
	// Bucket is the sampling interval.
	Bucket des.Time
	// Updates[i] is the number of updates the monitor processed during
	// bucket i.
	Updates []float64
	// Events is the number of routing events injected.
	Events int
	// TotalUpdates is the network-wide update count over the run.
	TotalUpdates uint64
	// PeakRate is the busiest virtual second network-wide.
	PeakRate uint64
}

// PeakToMean returns the ratio of the busiest monitor bucket to the mean
// bucket — the burstiness measure from the paper's introduction.
func (tl *Timeline) PeakToMean() float64 {
	if len(tl.Updates) == 0 {
		return 0
	}
	sum, peak := 0.0, 0.0
	for _, v := range tl.Updates {
		sum += v
		peak = math.Max(peak, v)
	}
	if sum == 0 {
		return 0
	}
	return peak / (sum / float64(len(tl.Updates)))
}

// event is one scheduled down/up pair.
type event struct {
	at   des.Time
	hold des.Time
	// prefix >= 0 selects a prefix flap; otherwise linkA/linkB flap.
	prefix       int
	linkA, linkB topology.NodeID
}

// Run executes the workload and returns the monitor timeline.
func Run(topo *topology.Topology, proto bgp.Config, cfg Config) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cNodes := topo.NodesOfType(topology.C)
	if len(cNodes) == 0 {
		return nil, fmt.Errorf("workload: topology has no C nodes")
	}
	net, err := bgp.New(topo, proto)
	if err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed ^ 0xa53c9e117bd42e6b)

	// Startup: announce the prefixes and converge quietly.
	nPrefixes := cfg.Prefixes
	if nPrefixes > len(cNodes) {
		nPrefixes = len(cNodes)
	}
	origins := make([]topology.NodeID, nPrefixes)
	perm := r.Perm(len(cNodes))
	for i := 0; i < nPrefixes; i++ {
		origins[i] = cNodes[perm[i]]
		net.Originate(origins[i], bgp.Prefix(i+1))
	}
	net.Run()
	net.Settle(2 * proto.MRAI)
	net.ResetCounters()
	epoch := net.Now()

	events := schedule(topo, origins, cfg, r)

	monitor := cfg.Monitor
	if monitor == topology.None {
		monitor = busiestT(topo)
	}

	buckets := int((cfg.Duration + cfg.Bucket - 1) / cfg.Bucket)
	tl := &Timeline{Monitor: monitor, Bucket: cfg.Bucket, Updates: make([]float64, buckets), Events: len(events)}

	// Expand each event into a DOWN action and (if it falls inside the run)
	// the matching UP action, then walk the merged timeline, sampling the
	// monitor at bucket boundaries. Overlapping events on the same prefix
	// or link are depth-counted so state changes stay idempotent.
	type action struct {
		at   des.Time
		down bool
		ev   event
	}
	actions := make([]action, 0, 2*len(events))
	for _, ev := range events {
		actions = append(actions, action{at: ev.at, down: true, ev: ev})
		if up := ev.at + ev.hold; up < cfg.Duration {
			actions = append(actions, action{at: up, down: false, ev: ev})
		}
	}
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].at < actions[j].at })

	prefixDepth := make(map[int]int)
	linkDepth := make(map[uint64]int)
	linkKey := func(a, b topology.NodeID) uint64 {
		if a > b {
			a, b = b, a
		}
		return uint64(uint32(a))<<32 | uint64(uint32(b))
	}
	apply := func(a action) {
		if a.ev.prefix >= 0 {
			p := a.ev.prefix
			if a.down {
				if prefixDepth[p] == 0 {
					net.WithdrawPrefix(origins[p], bgp.Prefix(p+1))
				}
				prefixDepth[p]++
			} else {
				prefixDepth[p]--
				if prefixDepth[p] == 0 {
					net.Originate(origins[p], bgp.Prefix(p+1))
				}
			}
			return
		}
		key := linkKey(a.ev.linkA, a.ev.linkB)
		if a.down {
			if linkDepth[key] == 0 {
				if err := net.FailLink(a.ev.linkA, a.ev.linkB); err != nil {
					panic(err) // links come from the topology; cannot fail
				}
			}
			linkDepth[key]++
		} else {
			linkDepth[key]--
			if linkDepth[key] == 0 {
				if err := net.RestoreLink(a.ev.linkA, a.ev.linkB); err != nil {
					panic(err)
				}
			}
		}
	}

	var lastSeen uint64
	next := 0
	for b := 0; b < buckets; b++ {
		bucketEnd := epoch + des.Time(b+1)*cfg.Bucket
		for next < len(actions) && epoch+actions[next].at <= bucketEnd {
			net.RunUntil(epoch + actions[next].at)
			apply(actions[next])
			next++
		}
		net.RunUntil(bucketEnd)
		cnt := net.Counters(monitor).Received
		tl.Updates[b] = float64(cnt - lastSeen)
		lastSeen = cnt
	}
	// Drain any convergence still in flight past the last bucket boundary
	// into the network-wide totals (the monitor series stays bucketed).
	net.Run()
	tl.TotalUpdates = net.TotalUpdates()
	tl.PeakRate = net.PeakUpdateRate()
	return tl, nil
}

// busiestT returns the highest-degree tier-1 node.
func busiestT(topo *topology.Topology) topology.NodeID {
	best, bestDeg := topology.NodeID(0), -1
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if n.Type == topology.T && n.Degree() > bestDeg {
			best, bestDeg = n.ID, n.Degree()
		}
	}
	return best
}

// schedule draws the Poisson event stream sorted by time.
func schedule(topo *topology.Topology, origins []topology.NodeID, cfg Config, r *rng.Source) []event {
	var events []event
	hour := float64(3600 * des.Second)
	draw := func(rate float64, mk func() event) {
		if rate <= 0 {
			return
		}
		// Poisson arrivals: exponential inter-arrival times.
		t := des.Time(0)
		for {
			gap := des.Time(-math.Log(1-r.Float64()) / rate * hour)
			t += gap
			if t >= cfg.Duration {
				return
			}
			ev := mk()
			ev.at = t
			ev.hold = des.Time(r.IntRange(60, 1800)) * des.Second
			events = append(events, ev)
		}
	}
	draw(cfg.PrefixFlapsPerHour, func() event {
		return event{prefix: r.Intn(len(origins)), linkA: topology.None}
	})
	transit := transitLinks(topo)
	if len(transit) > 0 {
		draw(cfg.LinkFlapsPerHour, func() event {
			l := transit[r.Intn(len(transit))]
			return event{prefix: -1, linkA: l[0], linkB: l[1]}
		})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
	return events
}

// transitLinks lists every provider-customer link once.
func transitLinks(topo *topology.Topology) [][2]topology.NodeID {
	var out [][2]topology.NodeID
	for i := range topo.Nodes {
		for _, c := range topo.Nodes[i].Customers {
			out = append(out, [2]topology.NodeID{topo.Nodes[i].ID, c})
		}
	}
	return out
}
