package des

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestFiresInTimeOrder(t *testing.T) {
	var s Scheduler
	times := []Time{50, 10, 30, 20, 40, 10, 5}
	var fired []Time
	for _, at := range times {
		at := at
		s.At(at, EventFunc(func(s *Scheduler) {
			fired = append(fired, s.Now())
		}))
	}
	n := s.Run()
	if n != uint64(len(times)) {
		t.Fatalf("fired %d events, want %d", n, len(times))
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of order: %v", fired)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Scheduler
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, EventFunc(func(*Scheduler) { order = append(order, i) }))
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var s Scheduler
	var secondAt Time
	s.At(10, EventFunc(func(s *Scheduler) {
		s.After(5, EventFunc(func(s *Scheduler) { secondAt = s.Now() }))
	}))
	s.Run()
	if secondAt != 15 {
		t.Fatalf("chained event fired at %d, want 15", secondAt)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var s Scheduler
	s.At(10, EventFunc(func(s *Scheduler) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, EventFunc(func(*Scheduler) {}))
	}))
	s.Run()
}

func TestRunUntilDeadline(t *testing.T) {
	var s Scheduler
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, EventFunc(func(s *Scheduler) { fired = append(fired, s.Now()) }))
	}
	n := s.RunUntil(25)
	if n != 2 {
		t.Fatalf("RunUntil(25) fired %d, want 2", n)
	}
	if s.Now() != 25 {
		t.Fatalf("clock at %d after RunUntil(25)", s.Now())
	}
	if s.Len() != 2 {
		t.Fatalf("%d events left, want 2", s.Len())
	}
	// Resume to completion.
	if n := s.Run(); n != 2 {
		t.Fatalf("resume fired %d, want 2", n)
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	var s Scheduler
	s.At(3, EventFunc(func(*Scheduler) {}))
	if n := s.RunUntil(100); n != 1 {
		t.Fatalf("fired %d, want 1", n)
	}
	if s.Now() != 100 {
		t.Fatalf("clock at %d after draining RunUntil(100), want 100", s.Now())
	}
	// Negative deadline (Run) leaves the clock at the last event.
	s.At(150, EventFunc(func(*Scheduler) {}))
	s.Run()
	if s.Now() != 150 {
		t.Fatalf("clock at %d after Run, want 150", s.Now())
	}
}

func TestStop(t *testing.T) {
	var s Scheduler
	count := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), EventFunc(func(s *Scheduler) {
			count++
			if count == 3 {
				s.Stop()
			}
		}))
	}
	s.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt the loop: fired %d", count)
	}
	if s.Len() != 7 {
		t.Fatalf("pending after Stop = %d, want 7", s.Len())
	}
}

func TestStep(t *testing.T) {
	var s Scheduler
	fired := 0
	s.At(1, EventFunc(func(*Scheduler) { fired++ }))
	s.At(2, EventFunc(func(*Scheduler) { fired++ }))
	if !s.Step() || fired != 1 {
		t.Fatal("first Step did not fire exactly one event")
	}
	if !s.Step() || fired != 2 {
		t.Fatal("second Step did not fire exactly one event")
	}
	if s.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestReset(t *testing.T) {
	var s Scheduler
	s.At(5, EventFunc(func(*Scheduler) {}))
	s.Run()
	s.At(7, EventFunc(func(*Scheduler) {}))
	s.Reset(false)
	if s.Len() != 0 || s.Now() != 0 {
		t.Fatal("Reset did not clear queue and clock")
	}
	if s.Fired() != 1 {
		t.Fatalf("Reset(false) cleared counters: fired=%d", s.Fired())
	}
	s.Reset(true)
	if s.Fired() != 0 {
		t.Fatal("Reset(true) kept counters")
	}
	// Scheduler is reusable after Reset.
	ok := false
	s.At(1, EventFunc(func(*Scheduler) { ok = true }))
	s.Run()
	if !ok {
		t.Fatal("scheduler unusable after Reset")
	}
}

func TestPeekTime(t *testing.T) {
	var s Scheduler
	if _, ok := s.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported an event")
	}
	s.At(9, EventFunc(func(*Scheduler) {}))
	s.At(4, EventFunc(func(*Scheduler) {}))
	if at, ok := s.PeekTime(); !ok || at != 4 {
		t.Fatalf("PeekTime = %d,%v want 4,true", at, ok)
	}
}

func TestSecondsConversion(t *testing.T) {
	if got := (30 * Second).Seconds(); got != 30 {
		t.Fatalf("(30s).Seconds() = %v", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Fatalf("(500ms).Seconds() = %v", got)
	}
}

// Property: any multiset of scheduled times fires in nondecreasing order and
// every event fires exactly once.
func TestPropertyAllFireOrdered(t *testing.T) {
	f := func(raw []uint32) bool {
		var s Scheduler
		var fired []Time
		for _, r := range raw {
			at := Time(r % 10000)
			s.At(at, EventFunc(func(s *Scheduler) { fired = append(fired, s.Now()) }))
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	var s Scheduler
	noop := EventFunc(func(*Scheduler) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(Time(i), noop)
		if s.Len() > 1024 {
			s.Run()
		}
	}
	s.Run()
}
