package des

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

// refItem mirrors item for the container/heap reference implementation the
// hand-rolled queue is checked against.
type refItem struct {
	at  Time
	seq uint32
	id  int
}

type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// idEvent tags an event with the id of the reference item pushed alongside
// it, so pop order can be compared across implementations.
type idEvent int

func (idEvent) Fire(*Scheduler) {}

// TestHeapMatchesContainerHeap drives the typed event heap and a
// container/heap reference through the same randomized push/pop schedule
// and asserts identical pop order, including FIFO tie-breaking within
// same-timestamp bursts.
func TestHeapMatchesContainerHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		r := rand.New(rand.NewSource(int64(trial) + 1))
		var got eventHeap
		var want refHeap
		var seq uint32
		id := 0
		ops := 400 + r.Intn(400)
		for op := 0; op < ops; op++ {
			switch {
			case got.len() > 0 && r.Intn(3) == 0:
				g, e := got.pop()
				w := heap.Pop(&want).(refItem)
				if g.at != w.at || g.seq != w.seq || int(e.(idEvent)) != w.id {
					t.Fatalf("trial %d op %d: pop mismatch: got (at=%d seq=%d id=%d), want (at=%d seq=%d id=%d)",
						trial, op, g.at, g.seq, int(e.(idEvent)), w.at, w.seq, w.id)
				}
			default:
				// Bias toward a few timestamps so same-instant bursts (the
				// FIFO tie-break case) are common.
				at := Time(r.Intn(16)) * Second
				if r.Intn(4) == 0 {
					at = Time(r.Int63n(int64(1000 * Second)))
				}
				got.push(at, seq, idEvent(id))
				heap.Push(&want, refItem{at: at, seq: seq, id: id})
				seq++
				id++
			}
		}
		// Drain both; the remaining order must agree exactly.
		var prev heapKey
		first := true
		for got.len() > 0 {
			g, e := got.pop()
			w := heap.Pop(&want).(refItem)
			if g.at != w.at || g.seq != w.seq || int(e.(idEvent)) != w.id {
				t.Fatalf("trial %d drain: pop mismatch: got (at=%d seq=%d), want (at=%d seq=%d)",
					trial, g.at, g.seq, w.at, w.seq)
			}
			if !first {
				if g.at < prev.at {
					t.Fatalf("trial %d: time went backwards: %d after %d", trial, g.at, prev.at)
				}
				if g.at == prev.at && g.seq < prev.seq {
					t.Fatalf("trial %d: FIFO tie-break violated at t=%d: seq %d after %d",
						trial, g.at, g.seq, prev.seq)
				}
			}
			prev, first = g, false
		}
		if want.Len() != 0 {
			t.Fatalf("trial %d: reference heap still has %d items", trial, want.Len())
		}
	}
}

// TestHeapFIFOWithinBurst pins the tie-break contract directly: events
// scheduled for the same instant pop in scheduling order.
func TestHeapFIFOWithinBurst(t *testing.T) {
	var s Scheduler
	const burst = 100
	fired := make([]int, 0, burst)
	for i := 0; i < burst; i++ {
		i := i
		s.At(5*Second, EventFunc(func(*Scheduler) { fired = append(fired, i) }))
	}
	s.Run()
	for i, v := range fired {
		if v != i {
			t.Fatalf("burst fired out of order at %d: got %d", i, v)
		}
	}
}

// TestSchedulerSplitQueueOrdering drives the split ring+heap scheduler with
// delays straddling ringHorizon — including events scheduled from inside
// firing events, the way protocol timers behave — and asserts the global
// fire order matches the (at, seq) sort exactly. The near/far split must be
// invisible. Delays are biased toward the ring's sore spots: zero delays,
// exact bucket-boundary multiples, both sides of ringHorizon, and in-ring
// chains long enough to wrap the ring many times over.
func TestSchedulerSplitQueueOrdering(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(trial) + 77))
		var s Scheduler
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		var want []rec
		seq := 0
		// schedule queues an event d from now and recursively schedules a
		// few follow-ups when it fires, mixing short and long delays.
		var schedule func(d Time, depth int)
		schedule = func(d Time, depth int) {
			at := s.Now() + d
			id := seq
			seq++
			want = append(want, rec{at, id})
			s.After(d, EventFunc(func(s *Scheduler) {
				fired = append(fired, rec{s.Now(), id})
				if depth > 0 {
					for k := 0; k < 1+r.Intn(2); k++ {
						var nd Time
						switch r.Intn(6) {
						case 0:
							nd = 0
						case 1:
							nd = Time(r.Int63n(int64(ringHorizon)))
						case 2:
							nd = Time(int64(r.Intn(ringBuckets)) << ringShift)
						case 3:
							nd = ringHorizon - Time(r.Intn(3))
						case 4:
							nd = ringHorizon + Time(r.Intn(3))
						default:
							nd = Time(r.Int63n(int64(40 * Second)))
						}
						schedule(nd, depth-1)
					}
				}
			}))
		}
		for i := 0; i < 30; i++ {
			schedule(Time(r.Int63n(int64(3*ringHorizon))), 3)
		}
		s.Run()
		if len(fired) != seq {
			t.Fatalf("trial %d: fired %d of %d events", trial, len(fired), seq)
		}
		// The reference order is the (at, seq) sort of everything scheduled;
		// seq here equals scheduling order because every At call increments
		// the scheduler's own sequence in lockstep.
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: fire order diverged at %d: got %+v, want %+v", trial, i, fired[i], want[i])
			}
		}
	}
}
