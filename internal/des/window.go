package des

// Conservative parallel-window coordination for groups of schedulers.
//
// A caller that partitions its model across several Schedulers can run them
// in lockstep windows: pick the earliest pending event time across the
// group, round it up to the next multiple of the lookahead (the minimum
// latency of any cross-scheduler interaction), run every scheduler to that
// barrier — in parallel, since nothing fired inside the window can affect
// another scheduler before the barrier — then exchange cross-scheduler
// messages and repeat. The helpers here are purely mechanical; the
// correctness argument (and the canonical message merge order that makes
// the composition deterministic) lives with the caller, see DESIGN.md
// "Sharded DES".

import (
	"sync"
	"time"
)

// NextWindow returns the end of the synchronization window containing tmin:
// the smallest positive multiple of width that is >= tmin. Every event
// fired in the window therefore has fire time s with
// NextWindow-width < s <= NextWindow, so a message it emits with latency
// >= width arrives strictly after the window — the conservative-lookahead
// property that makes running the window's schedulers in parallel exact.
func NextWindow(tmin, width Time) Time {
	if tmin <= 0 {
		return width
	}
	return ((tmin-1)/width + 1) * width
}

// GroupPeek returns the earliest pending event time across the group, and
// whether any scheduler has a pending event at all.
func GroupPeek(ss []*Scheduler) (Time, bool) {
	var min Time
	ok := false
	for _, s := range ss {
		if at, has := s.PeekTime(); has && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}

// RunGroupUntil advances every scheduler in the group to the common
// deadline and returns the total number of events fired. With parallel set,
// each scheduler runs on its own goroutine — legal exactly when the
// deadline respects the group's lookahead (no event fired before the
// deadline can schedule work on another member at or before it). fired must
// have len >= len(ss); it is caller-provided scratch so the steady state
// stays allocation-free. elapsed, when non-nil (same length contract),
// receives each scheduler's wall-clock run time, from which the caller can
// derive the window's shard skew.
func RunGroupUntil(ss []*Scheduler, deadline Time, parallel bool, fired []uint64, elapsed []time.Duration) uint64 {
	runOne := func(i int) {
		if elapsed != nil {
			t0 := time.Now()
			fired[i] = ss[i].RunUntil(deadline)
			elapsed[i] = time.Since(t0)
			return
		}
		fired[i] = ss[i].RunUntil(deadline)
	}
	if !parallel || len(ss) == 1 {
		for i := range ss {
			runOne(i)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(ss) - 1)
		for i := 1; i < len(ss); i++ {
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		runOne(0)
		wg.Wait()
	}
	var total uint64
	for _, f := range fired[:len(ss)] {
		total += f
	}
	return total
}
