// Package des implements the discrete-event simulation core: a virtual
// clock and an event queue ordered by firing time with deterministic FIFO
// tie-breaking.
//
// Time is an int64 count of virtual nanoseconds since the start of the
// simulation. Events scheduled for the same instant fire in the order they
// were scheduled, which makes simulations reproducible for a fixed seed.
package des

import (
	"container/heap"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders t like the standard library's time.Duration ("30s").
func (t Time) String() string { return time.Duration(t).String() }

// Event is a unit of work scheduled to fire at a given virtual time.
type Event interface {
	// Fire executes the event. The scheduler passes itself so the event can
	// schedule follow-up events and read the clock.
	Fire(s *Scheduler)
}

// EventFunc adapts an ordinary function to the Event interface.
type EventFunc func(s *Scheduler)

// Fire calls f(s).
func (f EventFunc) Fire(s *Scheduler) { f(s) }

// item is a queue entry. seq breaks ties deterministically (FIFO).
type item struct {
	at    Time
	seq   uint64
	event Event
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = item{} // release the event for GC
	*h = old[:n-1]
	return it
}

// Scheduler owns the virtual clock and the pending-event queue.
// The zero value is a ready-to-use scheduler at time 0.
type Scheduler struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	fired   uint64
	stopped bool
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules e to fire at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently reorder causality.
func (s *Scheduler) At(at Time, e Event) {
	if at < s.now {
		panic("des: event scheduled in the past")
	}
	heap.Push(&s.queue, item{at: at, seq: s.nextSeq, event: e})
	s.nextSeq++
}

// After schedules e to fire d nanoseconds from now.
func (s *Scheduler) After(d Time, e Event) {
	s.At(s.now+d, e)
}

// Stop makes Run return after the currently firing event completes.
// Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run fires events in timestamp order until the queue is empty or Stop is
// called. It returns the number of events fired during this call.
func (s *Scheduler) Run() uint64 {
	return s.RunUntil(-1)
}

// RunUntil fires events whose time is <= deadline (or all events if
// deadline is negative) until the queue drains or Stop is called. With a
// non-negative deadline the clock always ends at the deadline (virtual time
// passes even when nothing happens); with a negative deadline it ends at
// the last fired event.
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	s.stopped = false
	var fired uint64
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if deadline >= 0 && next.at > deadline {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.event.Fire(s)
		fired++
		s.fired++
	}
	if deadline >= 0 && s.now < deadline && !s.stopped {
		s.now = deadline
	}
	return fired
}

// Step fires exactly one event if any is pending and reports whether it did.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	next := heap.Pop(&s.queue).(item)
	s.now = next.at
	next.event.Fire(s)
	s.fired++
	return true
}

// Reset discards all pending events and rewinds the clock to zero, reusing
// the queue's storage. Event counters are preserved unless resetCounters.
func (s *Scheduler) Reset(resetCounters bool) {
	s.queue = s.queue[:0]
	s.now = 0
	s.nextSeq = 0
	s.stopped = false
	if resetCounters {
		s.fired = 0
	}
}

// PeekTime returns the firing time of the earliest pending event.
// ok is false when the queue is empty.
func (s *Scheduler) PeekTime() (at Time, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}
