// Package des implements the discrete-event simulation core: a virtual
// clock and an event queue ordered by firing time with deterministic FIFO
// tie-breaking.
//
// Time is an int64 count of virtual nanoseconds since the start of the
// simulation. Events scheduled for the same instant fire in the order they
// were scheduled, which makes simulations reproducible for a fixed seed.
package des

import (
	"math/bits"
	"time"

	"bgpchurn/internal/obs"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds reports t as a floating-point number of microseconds — the
// unit Chrome trace_event timestamps use, so span exporters convert once.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String renders t like the standard library's time.Duration ("30s").
func (t Time) String() string { return time.Duration(t).String() }

// Event is a unit of work scheduled to fire at a given virtual time.
type Event interface {
	// Fire executes the event. The scheduler passes itself so the event can
	// schedule follow-up events and read the clock.
	Fire(s *Scheduler)
}

// EventFunc adapts an ordinary function to the Event interface.
type EventFunc func(s *Scheduler)

// Fire calls f(s).
func (f EventFunc) Fire(s *Scheduler) { f(s) }

// heapKey is a queue entry's sort key plus the slab slot of its event. seq
// breaks ties deterministically (FIFO); keys never compare equal because
// seq is unique. idx plays no part in the ordering.
//
// The struct is exactly 16 bytes so that the heapArity children scanned by
// one sift-down level share a single cache line. seq is stored narrowed to
// uint32 — Reserve panics before the scheduler-wide counter could wrap a
// key's seq within one epoch (a Reset rewinds it), so the narrowing is
// loss-free where it matters: among coexisting keys.
type heapKey struct {
	at  Time
	seq uint32
	idx int32
}

// before reports whether a fires strictly before b: earlier time, or FIFO
// (lower seq) among same-instant events.
func before(a, b heapKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled 4-ary min-heap on (at, seq). It deliberately
// does not go through container/heap: that interface moves every element in
// and out of the queue as an interface{}, boxing entries on each push and
// pop. The typed sift routines below keep entries in the backing slices, so
// scheduling an event allocates only when the slices must grow.
//
// Layout and arity are chosen for the sift routines, the hottest loops in
// the simulator: events sit in a stable slab addressed by heapKey.idx, so
// sifting moves only plain 16-byte keys — no interface copies and, since
// keys are pointer-free, no GC write barriers — and the arity of 4 halves
// the tree depth relative to a binary heap. Both sift routines move keys
// into a hole rather than swapping, writing each displaced key once. The
// pop order is a pure function of the (at, seq) keys — unique by
// construction — so the layout cannot reorder events.
type eventHeap struct {
	keys []heapKey
	slab []Event // stable event storage; keys[i].idx addresses it
	free []int32 // recycled slab slots
}

const heapArity = 4

func (h *eventHeap) len() int { return len(h.keys) }

// push inserts an entry and restores the heap invariant.
func (h *eventHeap) push(at Time, seq uint32, e Event) {
	var idx int32
	if n := len(h.free); n > 0 {
		idx = h.free[n-1]
		h.free = h.free[:n-1]
		h.slab[idx] = e
	} else {
		idx = int32(len(h.slab))
		h.slab = append(h.slab, e)
	}
	k := heapKey{at: at, seq: seq, idx: idx}
	h.keys = append(h.keys, k)
	keys := h.keys
	// Sift up: walk the hole toward the root, pulling parents down.
	i := len(keys) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !before(k, keys[parent]) {
			break
		}
		keys[i] = keys[parent]
		i = parent
	}
	keys[i] = k
}

// pop removes and returns the minimum entry. The caller must ensure the
// heap is non-empty.
func (h *eventHeap) pop() (heapKey, Event) {
	keys := h.keys
	topK := keys[0]
	e := h.slab[topK.idx]
	h.slab[topK.idx] = nil // release the event for GC
	h.free = append(h.free, topK.idx)
	n := len(keys) - 1
	lastK := keys[n]
	h.keys = keys[:n]
	keys = keys[:n]
	// Sift down: walk the root hole toward the leaves, pulling the smallest
	// child up, until the former last key fits.
	i := 0
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		min, mv := c, keys[c]
		for k := c + 1; k < end; k++ {
			if before(keys[k], mv) {
				min, mv = k, keys[k]
			}
		}
		if before(lastK, mv) {
			break
		}
		keys[i] = mv
		i = min
	}
	if n > 0 {
		keys[i] = lastK
	}
	return topK, e
}

// reset discards all entries, keeping the storage.
func (h *eventHeap) reset() {
	clear(h.slab) // release the dropped events for GC
	h.keys = h.keys[:0]
	h.slab = h.slab[:0]
	h.free = h.free[:0]
}

// The pending queue is split in two bands: events scheduled less than
// ringHorizon ahead of the clock go to a bucketed time ring with O(1) pops,
// everything further out to the 4-ary far heap. The split is a pure
// performance device — correctness never depends on it, because every pop
// compares both band minima under the same (at, seq) order. It exploits the
// workload's shape: the queue is dominated by message deliveries, which
// always enter within MaxProcessingDelay (sub-second) of now, while the
// sparse slow timers (MRAI flushes, dampening reuse: tens of virtual
// seconds) stay out of the hot band entirely.

// Ring geometry: ringBuckets buckets of 2^ringShift virtual nanoseconds
// (≈1.05 ms), spanning ≈134 ms. ringHorizon is one bucket short of the full
// span so that the absolute bucket numbers of coexisting entries — all in
// [now, now+ringHorizon] — cover at most ringBuckets distinct values and a
// masked slot never holds two epochs at once.
const (
	ringShift   = 20
	ringBuckets = 128
	ringMask    = ringBuckets - 1
	ringHorizon = Time((ringBuckets - 1) << ringShift)
)

// ringBucket is one time slice of the ring: entries[head:] is the bucket's
// live content, sorted by (at, seq). head advances on pop so the front is
// removed without memmove; the bucket rewinds when it empties.
type ringBucket struct {
	entries []heapKey
	head    int
}

// timeRing is a calendar queue over the next ringHorizon of virtual time.
// push appends into the target bucket with a short insertion sort (buckets
// hold a handful of entries), pop takes the front of the first non-empty
// bucket at or after the clock's bucket — no sifting at all, which is what
// makes it beat the heap for the delivery-dominated near band. A two-word
// occupancy bitmap makes skipping empty buckets O(1). Events live in the
// same stable-slab arrangement as eventHeap, keyed by heapKey.idx.
type timeRing struct {
	buckets [ringBuckets]ringBucket
	occ     [ringBuckets / 64]uint64 // occupancy bitmap over masked indices
	cur     int64                    // absolute bucket number (at>>ringShift), ≤ every entry's
	count   int
	slab    []Event
	free    []int32
}

func (r *timeRing) len() int { return r.count }

// push inserts an entry; at must be within ringHorizon of the clock (the
// Scheduler routes by that rule).
func (r *timeRing) push(at Time, seq uint32, e Event) {
	var idx int32
	if n := len(r.free); n > 0 {
		idx = r.free[n-1]
		r.free = r.free[:n-1]
		r.slab[idx] = e
	} else {
		idx = int32(len(r.slab))
		r.slab = append(r.slab, e)
	}
	k := heapKey{at: at, seq: seq, idx: idx}
	ab := int64(at) >> ringShift
	if r.count == 0 || ab < r.cur {
		r.cur = ab
	}
	m := int(ab) & ringMask
	b := &r.buckets[m]
	b.entries = append(b.entries, k)
	// Insertion sort within the bucket's live region; buckets are tiny.
	for i := len(b.entries) - 1; i > b.head && before(k, b.entries[i-1]); i-- {
		b.entries[i] = b.entries[i-1]
		b.entries[i-1] = k
	}
	r.occ[m>>6] |= 1 << (m & 63)
	r.count++
}

// advance moves cur forward to the first non-empty bucket. The caller must
// ensure the ring is non-empty. All entries sit within ringBuckets of cur,
// so a single wrapping scan of the occupancy bitmap finds the right
// absolute bucket.
func (r *timeRing) advance() {
	m := int(r.cur) & ringMask
	if x := r.occ[m>>6] >> (m & 63); x != 0 {
		r.cur += int64(bits.TrailingZeros64(x))
		return
	}
	for i := 1; i <= len(r.occ); i++ {
		w := (m>>6 + i) % len(r.occ)
		if r.occ[w] != 0 {
			next := w<<6 + bits.TrailingZeros64(r.occ[w])
			r.cur += int64((next - m + ringBuckets) & ringMask)
			return
		}
	}
	panic("des: timeRing.advance on empty ring")
}

// min returns the earliest entry's key without removing it. The caller must
// ensure the ring is non-empty.
func (r *timeRing) min() heapKey {
	b := &r.buckets[int(r.cur)&ringMask]
	if b.head >= len(b.entries) {
		r.advance()
		b = &r.buckets[int(r.cur)&ringMask]
	}
	return b.entries[b.head]
}

// pop removes and returns the earliest entry. The caller must ensure the
// ring is non-empty.
func (r *timeRing) pop() (heapKey, Event) {
	k := r.min() // positions cur on the first non-empty bucket
	m := int(r.cur) & ringMask
	b := &r.buckets[m]
	b.head++
	if b.head == len(b.entries) {
		b.entries = b.entries[:0]
		b.head = 0
		r.occ[m>>6] &^= 1 << (m & 63)
	}
	r.count--
	e := r.slab[k.idx]
	r.slab[k.idx] = nil // release the event for GC
	r.free = append(r.free, k.idx)
	return k, e
}

// reset discards all entries, keeping the storage.
func (r *timeRing) reset() {
	for i := range r.buckets {
		r.buckets[i].entries = r.buckets[i].entries[:0]
		r.buckets[i].head = 0
	}
	for i := range r.occ {
		r.occ[i] = 0
	}
	r.cur = 0
	r.count = 0
	clear(r.slab) // release the dropped events for GC
	r.slab = r.slab[:0]
	r.free = r.free[:0]
}

// Scheduler owns the virtual clock and the pending-event queue.
// The zero value is a ready-to-use scheduler at time 0.
type Scheduler struct {
	now     Time
	near    timeRing  // events scheduled < ringHorizon from their push time
	far     eventHeap // events scheduled >= ringHorizon ahead
	nextSeq uint64
	fired   uint64
	stopped bool
	// probes is the kernel's observability block; nil when disabled, so
	// every probe site below is a single nil check in that case. Probes
	// never read the clock or affect queue order.
	probes *obs.DESProbes
}

// SetProbes attaches (or, with nil, detaches) an observability probe block.
// Call it while the queue is empty: occupancy gauges track pushes and pops
// made while attached, so attaching mid-flight would skew them.
func (s *Scheduler) SetProbes(p *obs.DESProbes) { s.probes = p }

// peek returns the key of the earliest pending event. The caller must
// ensure at least one event is pending.
func (s *Scheduler) peek() heapKey {
	if s.near.len() == 0 {
		return s.far.keys[0]
	}
	if nk := s.near.min(); s.far.len() == 0 || before(nk, s.far.keys[0]) {
		return nk
	}
	return s.far.keys[0]
}

// popNext removes and returns the earliest pending event. The caller must
// ensure at least one event is pending.
func (s *Scheduler) popNext() (heapKey, Event) {
	if s.far.len() == 0 || (s.near.len() > 0 && before(s.near.min(), s.far.keys[0])) {
		if p := s.probes; p != nil {
			p.RingOcc.Add(-1)
		}
		return s.near.pop()
	}
	if p := s.probes; p != nil {
		p.FarOcc.Add(-1)
	}
	return s.far.pop()
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return s.near.len() + s.far.len() }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules e to fire at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently reorder causality.
func (s *Scheduler) At(at Time, e Event) {
	s.AtTicket(s.Reserve(at), e)
}

// Ticket is a reserved queue position: the (time, sequence) key an event
// scheduled at reservation time would have received. It lets a caller that
// serializes its own work — a FIFO receiver draining one message at a time —
// keep only its next event in the scheduler queue while later ones wait
// outside it, without perturbing the global fire order: the deferred event
// fires exactly when and in the order it would have had it been scheduled
// eagerly.
type Ticket struct {
	at  Time
	seq uint64
}

// Time returns the virtual time the ticket is reserved for.
func (tk Ticket) Time() Time { return tk.at }

// Reserve allocates the queue position an event scheduled now for time at
// would get, without inserting anything. Redeem it with AtTicket.
// Reserving in the past panics, like At.
func (s *Scheduler) Reserve(at Time) Ticket {
	if at < s.now {
		panic("des: event scheduled in the past")
	}
	if s.nextSeq >= 1<<32 {
		// heapKey narrows seq to uint32; wrapping would corrupt FIFO order
		// silently. One epoch never comes close (Reset rewinds the counter).
		panic("des: sequence counter exhausted; Reset the scheduler")
	}
	tk := Ticket{at: at, seq: s.nextSeq}
	s.nextSeq++
	return tk
}

// AtTicket schedules e at the reserved position tk. The reservation's time
// must not have passed yet.
func (s *Scheduler) AtTicket(tk Ticket, e Event) {
	if tk.at < s.now {
		panic("des: ticketed event scheduled in the past")
	}
	if tk.at-s.now >= ringHorizon {
		s.far.push(tk.at, uint32(tk.seq), e)
		if p := s.probes; p != nil {
			p.Scheduled.Inc()
			p.FarPushes.Inc()
			p.FarOcc.Add(1)
		}
	} else {
		s.near.push(tk.at, uint32(tk.seq), e)
		if p := s.probes; p != nil {
			p.Scheduled.Inc()
			p.RingPushes.Inc()
			p.RingOcc.Add(1)
		}
	}
}

// After schedules e to fire d nanoseconds from now.
func (s *Scheduler) After(d Time, e Event) {
	s.At(s.now+d, e)
}

// Stop makes Run return after the currently firing event completes.
// Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run fires events in timestamp order until the queue is empty or Stop is
// called. It returns the number of events fired during this call.
func (s *Scheduler) Run() uint64 {
	return s.RunUntil(-1)
}

// RunUntil fires events whose time is <= deadline (or all events if
// deadline is negative) until the queue drains or Stop is called. With a
// non-negative deadline the clock always ends at the deadline (virtual time
// passes even when nothing happens); with a negative deadline it ends at
// the last fired event.
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	s.stopped = false
	var fired uint64
	for s.Len() > 0 && !s.stopped {
		if deadline >= 0 && s.peek().at > deadline {
			break
		}
		k, e := s.popNext()
		s.now = k.at
		e.Fire(s)
		fired++
		s.fired++
		if p := s.probes; p != nil {
			p.Fired.Inc()
		}
	}
	if deadline >= 0 && s.now < deadline && !s.stopped {
		s.now = deadline
	}
	return fired
}

// Step fires exactly one event if any is pending and reports whether it did.
func (s *Scheduler) Step() bool {
	if s.Len() == 0 {
		return false
	}
	k, e := s.popNext()
	s.now = k.at
	e.Fire(s)
	s.fired++
	if p := s.probes; p != nil {
		p.Fired.Inc()
	}
	return true
}

// Reset discards all pending events and rewinds the clock to zero, reusing
// the queue's storage. Event counters are preserved unless resetCounters.
func (s *Scheduler) Reset(resetCounters bool) {
	if p := s.probes; p != nil {
		// The discarded events never pop, so release their occupancy here.
		p.RingOcc.Add(-int64(s.near.len()))
		p.FarOcc.Add(-int64(s.far.len()))
	}
	s.near.reset()
	s.far.reset()
	s.now = 0
	s.nextSeq = 0
	s.stopped = false
	if resetCounters {
		s.fired = 0
	}
}

// PeekTime returns the firing time of the earliest pending event.
// ok is false when the queue is empty.
func (s *Scheduler) PeekTime() (at Time, ok bool) {
	if s.Len() == 0 {
		return 0, false
	}
	return s.peek().at, true
}
