// Package des implements the discrete-event simulation core: a virtual
// clock and an event queue ordered by firing time with deterministic FIFO
// tie-breaking.
//
// Time is an int64 count of virtual nanoseconds since the start of the
// simulation. Events scheduled for the same instant fire in the order they
// were scheduled, which makes simulations reproducible for a fixed seed.
package des

import (
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders t like the standard library's time.Duration ("30s").
func (t Time) String() string { return time.Duration(t).String() }

// Event is a unit of work scheduled to fire at a given virtual time.
type Event interface {
	// Fire executes the event. The scheduler passes itself so the event can
	// schedule follow-up events and read the clock.
	Fire(s *Scheduler)
}

// EventFunc adapts an ordinary function to the Event interface.
type EventFunc func(s *Scheduler)

// Fire calls f(s).
func (f EventFunc) Fire(s *Scheduler) { f(s) }

// item is a queue entry. seq breaks ties deterministically (FIFO).
type item struct {
	at    Time
	seq   uint64
	event Event
}

// eventHeap is a hand-rolled binary min-heap on (at, seq). It deliberately
// does not go through container/heap: that interface moves every element in
// and out of the queue as an interface{}, boxing the item struct on each
// push and pop. The typed sift routines below keep items in the backing
// slice, so scheduling an event allocates only when the slice must grow.
type eventHeap []item

// less orders the heap by firing time, then by scheduling order (FIFO for
// same-instant events). Keys are unique because seq never repeats.
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends it and restores the heap invariant.
func (h *eventHeap) push(it item) {
	*h = append(*h, it)
	q := *h
	// Sift up.
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum item. The caller must ensure the heap
// is non-empty.
func (h *eventHeap) pop() item {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = item{} // release the event for GC
	q = q[:n]
	*h = q
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// Scheduler owns the virtual clock and the pending-event queue.
// The zero value is a ready-to-use scheduler at time 0.
type Scheduler struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	fired   uint64
	stopped bool
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules e to fire at the absolute virtual time at. Scheduling in the
// past (before Now) panics: it would silently reorder causality.
func (s *Scheduler) At(at Time, e Event) {
	if at < s.now {
		panic("des: event scheduled in the past")
	}
	s.queue.push(item{at: at, seq: s.nextSeq, event: e})
	s.nextSeq++
}

// After schedules e to fire d nanoseconds from now.
func (s *Scheduler) After(d Time, e Event) {
	s.At(s.now+d, e)
}

// Stop makes Run return after the currently firing event completes.
// Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run fires events in timestamp order until the queue is empty or Stop is
// called. It returns the number of events fired during this call.
func (s *Scheduler) Run() uint64 {
	return s.RunUntil(-1)
}

// RunUntil fires events whose time is <= deadline (or all events if
// deadline is negative) until the queue drains or Stop is called. With a
// non-negative deadline the clock always ends at the deadline (virtual time
// passes even when nothing happens); with a negative deadline it ends at
// the last fired event.
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	s.stopped = false
	var fired uint64
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if deadline >= 0 && next.at > deadline {
			break
		}
		s.queue.pop()
		s.now = next.at
		next.event.Fire(s)
		fired++
		s.fired++
	}
	if deadline >= 0 && s.now < deadline && !s.stopped {
		s.now = deadline
	}
	return fired
}

// Step fires exactly one event if any is pending and reports whether it did.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	next := s.queue.pop()
	s.now = next.at
	next.event.Fire(s)
	s.fired++
	return true
}

// Reset discards all pending events and rewinds the clock to zero, reusing
// the queue's storage. Event counters are preserved unless resetCounters.
func (s *Scheduler) Reset(resetCounters bool) {
	clear(s.queue) // release the dropped events for GC; keep the storage
	s.queue = s.queue[:0]
	s.now = 0
	s.nextSeq = 0
	s.stopped = false
	if resetCounters {
		s.fired = 0
	}
}

// PeekTime returns the firing time of the earliest pending event.
// ok is false when the queue is empty.
func (s *Scheduler) PeekTime() (at Time, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}
