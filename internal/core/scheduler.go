package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/des"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/rng"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// CellKey identifies one (scenario, size) grid cell by every input that
// determines its Result: the scenario name, the size, the sweep-level
// topology seed, and the event configuration. Config.Parallelism, all
// callbacks, and the observability attachments (Obs, Trace, Spans) are
// deliberately excluded — results are independent of them all (the
// determinism tier proves it for the attachments) — so the same experiment
// requested at different worker counts or probe settings still hits the
// cache. CellTimeout is excluded for the same reason: a deadline decides
// whether a result arrives, never what it is. So is bgp.Config.Shards: the
// sharded executor is byte-identical at every shard count (the determinism
// tier enforces it), so cells dedupe across shard counts — but LinkDelay
// stays in the key, because the propagation latency does change results.
// Scenario names are unique across the package, which makes the name a
// faithful stand-in for the (unexported) parameter transform.
type CellKey struct {
	Scenario     string
	N            int
	TopologySeed uint64
	Origins      int
	Settle       des.Time
	Kind         EventKind
	WarmStart    bool
	BGP          bgp.Config
}

// KeyFor returns the cell key the scheduler would use for one (scenario,
// size) cell of a sweep: the projection of ev onto CellKey's cacheable
// fields. Serving layers use it to match SubscribeCells events against the
// cells of a submitted job without re-deriving the projection rules.
func KeyFor(scenarioName string, n int, topoSeed uint64, ev Config) CellKey {
	return cellKey(scenarioName, n, topoSeed, ev)
}

// cellKey projects the cacheable part of an event config onto a key.
func cellKey(scName string, n int, topoSeed uint64, ev Config) CellKey {
	ev.BGP.Shards = 0 // results are shard-count invariant; see CellKey
	return CellKey{
		Scenario:     scName,
		N:            n,
		TopologySeed: topoSeed,
		Origins:      ev.Origins,
		Settle:       ev.Settle,
		Kind:         ev.Kind,
		WarmStart:    ev.WarmStart,
		BGP:          ev.BGP,
	}
}

// CellState classifies scheduler progress events.
type CellState uint8

const (
	// CellStart fires when a worker begins computing a cell.
	CellStart CellState = iota
	// CellDone fires when a computed cell finishes successfully.
	CellDone
	// CellCached fires when a cell is served from the result cache
	// (including waiting for an in-flight computation of the same key).
	CellCached
	// CellFailed fires when a computed cell ends in a permanent error.
	CellFailed
	// CellResumed fires when a cell is served from a checkpoint journal
	// replayed by Resume — a cache hit whose result predates the process.
	CellResumed
	// CellRetried fires after a transient fault (panic, timeout) when the
	// scheduler is about to recompute the cell; Attempt carries the attempt
	// number that just failed.
	CellRetried
	// CellQuarantined fires when a cell exhausts the retry budget: the cell
	// is excluded from the sweep, the grid keeps running.
	CellQuarantined
	// CellCancelled fires when a cell is abandoned because the grid context
	// was cancelled before or during its computation.
	CellCancelled
)

// String names the state ("start", "done", "cached", "failed", "resumed",
// "retried", "quarantined", "cancelled").
func (s CellState) String() string {
	switch s {
	case CellStart:
		return "start"
	case CellDone:
		return "done"
	case CellCached:
		return "cached"
	case CellFailed:
		return "failed"
	case CellResumed:
		return "resumed"
	case CellRetried:
		return "retried"
	case CellQuarantined:
		return "quarantined"
	case CellCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("CellState(%d)", uint8(s))
}

// CellStatus is one progress event delivered to Scheduler.OnCell.
type CellStatus struct {
	// Scenario and N name the grid cell.
	Scenario string
	N        int
	// Key is the cell's full cache identity (see CellKey/KeyFor), so
	// subscribers sharing the scheduler can route events to the jobs that
	// requested the cell.
	Key CellKey
	// Seed is the cell's effective topology seed (request seed + N).
	Seed uint64
	// State says what happened.
	State CellState
	// Attempt is the number of computation attempts made so far: 1 for a
	// first-try CellDone/CellFailed, the failed attempt number for
	// CellRetried, the full budget for CellQuarantined. Zero for events
	// that never computed (start, cached, resumed, cancelled-before-start).
	Attempt int
	// Elapsed is the computation time (CellDone/CellFailed/CellQuarantined,
	// summed across attempts) or the time spent waiting on an in-flight
	// duplicate (CellCached/CellResumed; ~0 for a warm hit). Zero for
	// CellStart and CellRetried.
	Elapsed time.Duration
	// Err is set for CellFailed, CellRetried, CellQuarantined and
	// CellCancelled (and for CellCached when the cached computation had
	// failed).
	Err error
}

// GridRequest names one scenario sweep inside a grid run: the scheduler
// treats every (scenario, size) pair as an independent job.
type GridRequest struct {
	// Scenario is the growth model to sweep.
	Scenario scenario.Scenario
	// Sizes are the network sizes to measure.
	Sizes []int
	// TopologySeed seeds topology generation; each size uses
	// TopologySeed+size, exactly as the sequential Sweep does.
	TopologySeed uint64
	// Event is the per-topology experiment configuration.
	Event Config
	// Progress, when non-nil, is called when a cell of this request starts
	// computing (not for cache hits), mirroring SweepConfig.Progress. Cells
	// run concurrently, so calls arrive in completion order, serialized.
	Progress func(scenarioName string, n int)
}

// CacheStats counts scheduler cache traffic.
type CacheStats struct {
	// Hits is the number of cells served from the cache (or coalesced onto
	// an in-flight computation of the same key), including resumed cells.
	Hits int
	// Misses is the number of cells actually computed.
	Misses int
	// Evictions is the number of completed results dropped by the LRU
	// entry-count cap (see SetCacheLimit).
	Evictions int
	// Resumed is the number of cache hits served from a replayed journal.
	Resumed int
	// Retries is the number of recomputations after transient faults.
	Retries int
	// Quarantined is the number of cells that exhausted the retry budget.
	Quarantined int
	// Cancelled is the number of cells abandoned by grid cancellation.
	Cancelled int
}

// DefaultCacheCap is the scheduler's default result-cache entry limit. A
// Result is small (a few KB), so the default accommodates every figure grid
// the paper needs while bounding a long-lived scheduler (e.g. a service
// answering what-if queries) to a few MB of cached results.
const DefaultCacheCap = 512

// DefaultRetryBackoff is the base delay of the deterministic exponential
// backoff between retry attempts of one cell.
const DefaultRetryBackoff = 100 * time.Millisecond

// retrySeedSalt decorrelates the retry-backoff RNG stream from every other
// use of the cell key hash.
const retrySeedSalt = 0x5ca1ab1e0ddba11

// Scheduler executes experiment grids on a bounded worker pool with a
// content-addressed result cache. Each (scenario, size) cell is an
// independent deterministic job, so cells may run in any order and on any
// number of workers without changing results; assembly orders cells by the
// request's size list, making grid output byte-identical to sequential
// Sweep runs. Cells with equal CellKeys are computed once while cached —
// concurrent duplicates coalesce onto the in-flight computation — which
// lets figures that share a sweep (Fig. 4–12 all reuse the Baseline sweep)
// pay for it once. The cache holds at most SetCacheLimit entries
// (DefaultCacheCap by default), evicting least-recently-used results; an
// evicted cell is simply recomputed if requested again.
//
// The scheduler is fault-tolerant (DESIGN.md, "Failure model"): a panic
// inside one cell worker is recovered and isolated as a CellPanicError, a
// cell exceeding Config.CellTimeout fails with a CellTimeoutError, and both
// are retried up to SetRetryPolicy's budget with deterministic per-cell
// backoff before the cell is quarantined (CellQuarantinedError) — the rest
// of the grid always completes. With SetJournal attached, every computed
// result is checkpointed to a crash-safe JSONL journal that Resume replays
// into the cache, so a killed run recomputes only missing cells.
//
// A Scheduler is safe for concurrent use. Set OnCell before the first run.
type Scheduler struct {
	parallelism int

	// OnCell, when non-nil, receives one CellStart and one CellDone (or
	// CellFailed/CellQuarantined) event per computed cell, a CellRetried
	// event per retry attempt, one CellCached/CellResumed event per cache
	// hit, and one CellCancelled event per abandoned cell. Calls are
	// serialized; the callback needs no locking.
	OnCell func(CellStatus)

	// OnResult, when non-nil, receives every cell Result the moment it is
	// available — once per computed cell (State == CellDone) and once per
	// cache hit that carries a result (CellCached/CellResumed). It exists so
	// a progress plane can stream rolling attribution summaries mid-grid
	// without waiting for assembly. Calls are serialized with OnCell on the
	// same mutex; the Result is shared with the cache and must be treated as
	// read-only.
	OnResult func(CellStatus, *Result)

	mu       sync.Mutex
	cache    map[CellKey]*cacheEntry
	lru      *list.List // CellKeys, most recently used at the front
	cacheCap int
	stats    CacheStats

	// retries is the number of recomputations allowed per cell after
	// transient faults; backoff is the base delay between them.
	retries int
	backoff time.Duration

	// journal, when non-nil, receives one checkpoint per computed cell.
	journal *Journal

	// quarantined collects the cells that exhausted the retry budget, in
	// quarantine order.
	quarantined []*CellQuarantinedError

	// emitMu serializes every progress delivery (OnCell, OnResult and all
	// subscribers) and guards the subscriber lists.
	emitMu     sync.Mutex
	cellSubs   []cellSubscriber
	resultSubs []resultSubscriber
	nextSubID  int

	// probes is the scheduler's observability block; nil when disabled
	// (see SetObs).
	probes *obs.CoreProbes

	// generate and run are seams for tests (counting hooks, fault
	// injection); they default to Scenario.Generate and RunCEventsContext.
	generate func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error)
	run      func(ctx context.Context, t *topology.Topology, cfg Config) (*Result, error)
}

// NewScheduler returns a scheduler running at most parallelism cells
// concurrently (0 = GOMAXPROCS) with an empty cache and no retries.
func NewScheduler(parallelism int) *Scheduler {
	return &Scheduler{
		parallelism: parallelism,
		cache:       map[CellKey]*cacheEntry{},
		lru:         list.New(),
		cacheCap:    DefaultCacheCap,
		backoff:     DefaultRetryBackoff,
		generate: func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error) {
			return sc.Generate(n, seed)
		},
		run: RunCEventsContext,
	}
}

// cacheEntry is a singleflight slot: the first requester of a key computes
// while later requesters wait on ready.
type cacheEntry struct {
	ready chan struct{}
	res   *Result
	err   error
	// resumed marks entries seeded from a checkpoint journal.
	resumed bool
	// dropped marks entries abandoned by cancellation and removed from the
	// cache before ready closed: err carries a context error that is not the
	// waiter's own, so coalesced waiters must recompute, not inherit it.
	dropped bool
	// elem is this entry's position in the scheduler's LRU list.
	elem *list.Element
}

// cellSubscriber and resultSubscriber are fan-out registrations added by
// SubscribeCells/SubscribeResults, delivered in registration order.
type cellSubscriber struct {
	id int
	fn func(CellStatus)
}

type resultSubscriber struct {
	id int
	fn func(CellStatus, *Result)
}

// SubscribeCells registers an additional progress callback alongside OnCell:
// every event OnCell would see is also delivered to fn, serialized on the
// same mutex (subscribers never need their own locking, and must not block —
// a slow subscriber stalls every worker's progress reporting). Unlike the
// single OnCell field, any number of subscribers may coexist, which is what
// lets several serving-layer jobs watch one shared scheduler. The returned
// cancel function removes the subscription; it is idempotent.
func (s *Scheduler) SubscribeCells(fn func(CellStatus)) (cancel func()) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	id := s.nextSubID
	s.nextSubID++
	s.cellSubs = append(s.cellSubs, cellSubscriber{id, fn})
	return func() {
		s.emitMu.Lock()
		defer s.emitMu.Unlock()
		for i, sub := range s.cellSubs {
			if sub.id == id {
				s.cellSubs = append(s.cellSubs[:i:i], s.cellSubs[i+1:]...)
				return
			}
		}
	}
}

// SubscribeResults registers an additional result callback alongside
// OnResult, with the same delivery and blocking rules as SubscribeCells.
// The *Result is shared with the cache and must be treated as read-only.
func (s *Scheduler) SubscribeResults(fn func(CellStatus, *Result)) (cancel func()) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	id := s.nextSubID
	s.nextSubID++
	s.resultSubs = append(s.resultSubs, resultSubscriber{id, fn})
	return func() {
		s.emitMu.Lock()
		defer s.emitMu.Unlock()
		for i, sub := range s.resultSubs {
			if sub.id == id {
				s.resultSubs = append(s.resultSubs[:i:i], s.resultSubs[i+1:]...)
				return
			}
		}
	}
}

// SetCompute replaces the scheduler's computation seams: generate builds the
// topology for one (scenario, n, seed) cell and run executes the experiment
// on it. A nil argument keeps that seam unchanged. The seam exists for tests
// and serving layers that substitute synthetic workloads; replacements must
// stay deterministic in their inputs or the cache, journal and resume
// guarantees all break. Set the seams before the first run: workers read
// them without locking while a grid is in flight.
func (s *Scheduler) SetCompute(
	generate func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error),
	run func(ctx context.Context, t *topology.Topology, cfg Config) (*Result, error),
) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if generate != nil {
		s.generate = generate
	}
	if run != nil {
		s.run = run
	}
}

// SetObs attaches the metrics hub: cache traffic and per-cell wall times
// flow into it from then on. Pass nil to detach. Counting is additive to
// CacheStats and has no effect on results.
func (s *Scheduler) SetObs(m *obs.Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil {
		s.probes = nil
		return
	}
	s.probes = m.NewCoreProbes()
}

// SetRetryPolicy configures fault handling: transient faults (panics,
// timeouts) are recomputed up to retries times per cell before the cell is
// quarantined, waiting backoff·2^attempt (jittered deterministically from
// the cell key) between attempts. backoff <= 0 keeps the current value
// (DefaultRetryBackoff initially); retries < 0 is treated as 0. The default
// is zero retries: the first transient fault quarantines the cell.
func (s *Scheduler) SetRetryPolicy(retries int, backoff time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if retries < 0 {
		retries = 0
	}
	s.retries = retries
	if backoff > 0 {
		s.backoff = backoff
	}
}

// SetJournal attaches a checkpoint journal: from then on every successfully
// computed cell is appended to it. Pass nil to detach. Journal failures
// never fail the computation they checkpoint; inspect Journal.Err.
func (s *Scheduler) SetJournal(j *Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// Journal returns the attached checkpoint journal, or nil.
func (s *Scheduler) Journal() *Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal
}

// Resume replays checkpoint records (see LoadJournal) into the result
// cache and returns how many were seeded. Keys already cached are left
// untouched. Subsequent requests for a seeded key are served without
// recomputation and reported as CellResumed. If the journal holds more
// records than the cache cap, the cap is raised to fit them all — a resume
// never evicts the cells it restores.
func (s *Scheduler) Resume(recs []JournalRecord) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seeded := 0
	for _, rec := range recs {
		if rec.Result == nil {
			continue
		}
		if _, ok := s.cache[rec.Key]; ok {
			continue
		}
		ready := make(chan struct{})
		close(ready)
		e := &cacheEntry{ready: ready, res: rec.Result, resumed: true}
		e.elem = s.lru.PushFront(rec.Key)
		s.cache[rec.Key] = e
		seeded++
	}
	if p := s.probes; p != nil && seeded > 0 {
		p.JournalLoads.Add(uint64(seeded))
	}
	// A journal larger than the cache cap must not silently evict the cells
	// it just seeded (they would be recomputed, defeating the resume): grow
	// the cap to hold the full checkpoint.
	if s.cacheCap > 0 && s.lru.Len() > s.cacheCap {
		s.cacheCap = s.lru.Len()
	}
	s.evictLocked()
	return seeded
}

// Quarantined returns the cells that exhausted the retry budget so far, in
// quarantine order.
func (s *Scheduler) Quarantined() []*CellQuarantinedError {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*CellQuarantinedError, len(s.quarantined))
	copy(out, s.quarantined)
	return out
}

// CacheStats returns the cache traffic so far.
func (s *Scheduler) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SetCacheLimit bounds the result cache to at most n completed entries,
// evicting least-recently-used results immediately if it is over. n <= 0
// removes the bound. The default is DefaultCacheCap.
func (s *Scheduler) SetCacheLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheCap = n
	s.evictLocked()
}

// evictLocked drops least-recently-used completed entries until the cache
// respects the cap. In-flight entries are never evicted — their waiters are
// counting on the singleflight slot — so the cache may transiently exceed
// the cap by the number of concurrent computations. Caller holds s.mu.
func (s *Scheduler) evictLocked() {
	if s.cacheCap <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.lru.Len() > s.cacheCap; {
		prev := el.Prev()
		key := el.Value.(CellKey)
		e := s.cache[key]
		select {
		case <-e.ready:
			delete(s.cache, key)
			s.lru.Remove(el)
			s.stats.Evictions++
			if p := s.probes; p != nil {
				p.CacheEvictions.Inc()
			}
		default:
			// Still computing; skip toward the front.
		}
		el = prev
	}
}

// dropEntry removes a singleflight entry whose computation was abandoned by
// cancellation, so a later run (or a resumed process) computes it fresh
// instead of being served the cancellation error. Must be called before the
// entry's ready channel is closed: the dropped flag is then visible to every
// waiter that wakes.
func (s *Scheduler) dropEntry(key CellKey, e *cacheEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.dropped = true
	if cur, ok := s.cache[key]; ok && cur == e {
		delete(s.cache, key)
		s.lru.Remove(e.elem)
	}
}

// emit delivers one progress event to OnCell and every cell subscriber,
// serialized.
func (s *Scheduler) emit(cs CellStatus) {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if s.OnCell != nil {
		s.OnCell(cs)
	}
	for _, sub := range s.cellSubs {
		sub.fn(cs)
	}
}

// emitResult delivers one available cell result to OnResult and every result
// subscriber, serialized on the same mutex as emit so cell and result events
// observe a consistent order.
func (s *Scheduler) emitResult(cs CellStatus, res *Result) {
	if res == nil {
		return
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if s.OnResult != nil {
		s.OnResult(cs, res)
	}
	for _, sub := range s.resultSubs {
		sub.fn(cs, res)
	}
}

// cellError uniformly names a failing cell. Fault types already carry the
// cell key in their message, so they pass through unwrapped for errors.As.
func cellError(scName string, n int, err error) error {
	if IsTransient(err) || IsQuarantined(err) {
		return err
	}
	return fmt.Errorf("core: %s at n=%d: %w", scName, n, err)
}

// cell computes or fetches one grid cell under the grid context.
func (s *Scheduler) cell(ctx context.Context, sc scenario.Scenario, n int, topoSeed uint64, ev Config, progress func(string, int)) (*Result, error) {
	key := cellKey(sc.Name, n, topoSeed, ev)
	seed := topoSeed + uint64(n)
	if err := ctx.Err(); err != nil {
		return nil, s.cancelCell(key, sc.Name, n, seed, err)
	}
	s.mu.Lock()
	probes := s.probes
	if e, ok := s.cache[key]; ok {
		s.stats.Hits++
		state := CellCached
		if e.resumed {
			state = CellResumed
			s.stats.Resumed++
		}
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		start := time.Now()
		<-e.ready
		if e.dropped && ctx.Err() == nil {
			// The in-flight computation this request coalesced onto was
			// abandoned by a cancellation that is not ours (e.g. another
			// grid's context on a shared scheduler). Its error must not leak
			// through the cache-hit path: undo the hit and recompute the cell
			// under this caller's own, still-live context.
			s.mu.Lock()
			s.stats.Hits--
			s.mu.Unlock()
			return s.cell(ctx, sc, n, topoSeed, ev, progress)
		}
		if probes != nil {
			if state == CellResumed {
				probes.CellsResumed.Inc()
			} else {
				probes.CellsCached.Inc()
			}
		}
		cs := CellStatus{Scenario: sc.Name, N: n, Key: key, Seed: seed, State: state, Elapsed: time.Since(start), Err: e.err}
		s.emit(cs)
		if e.err == nil {
			s.emitResult(cs, e.res)
		}
		return e.res, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	e.elem = s.lru.PushFront(key)
	s.cache[key] = e
	s.stats.Misses++
	s.evictLocked()
	s.mu.Unlock()

	if progress != nil {
		s.emitMu.Lock()
		progress(sc.Name, n)
		s.emitMu.Unlock()
	}
	s.emit(CellStatus{Scenario: sc.Name, N: n, Key: key, Seed: seed, State: CellStart})
	start := time.Now()
	res, err, attempts := s.computeWithRetry(ctx, key, sc, n, seed, ev, probes)
	elapsed := time.Since(start)

	state := CellDone
	switch {
	case err == nil:
		if j := s.Journal(); j != nil {
			if jerr := j.Append(key, res); jerr == nil && probes != nil {
				probes.JournalWrites.Inc()
			}
		}
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		// The grid was cancelled out from under the computation: abandon the
		// singleflight slot so nothing caches the cancellation.
		e.res, e.err = nil, cellError(sc.Name, n, err)
		s.dropEntry(key, e)
		close(e.ready)
		s.mu.Lock()
		s.stats.Cancelled++
		s.mu.Unlock()
		if probes != nil {
			probes.CellsCancelled.Inc()
		}
		s.emit(CellStatus{Scenario: sc.Name, N: n, Key: key, Seed: seed, State: CellCancelled, Attempt: attempts, Elapsed: elapsed, Err: e.err})
		return nil, e.err
	case IsTransient(err):
		// Retry budget exhausted: quarantine the cell instead of failing the
		// run. The entry stays cached so duplicate requests coalesce; the
		// journal never sees it, so a resumed run recomputes it.
		qe := &CellQuarantinedError{Key: key, Attempts: attempts, Last: err}
		err = qe
		state = CellQuarantined
		s.mu.Lock()
		s.quarantined = append(s.quarantined, qe)
		s.stats.Quarantined++
		s.mu.Unlock()
		if probes != nil {
			probes.CellsQuarantined.Inc()
		}
	default:
		err = cellError(sc.Name, n, err)
		state = CellFailed
	}
	e.res, e.err = res, err
	close(e.ready)
	if probes != nil {
		switch state {
		case CellDone:
			probes.CellsComputed.Inc()
			probes.ObserveCell(elapsed)
		case CellFailed:
			probes.CellsFailed.Inc()
		}
	}
	cs := CellStatus{Scenario: sc.Name, N: n, Key: key, Seed: seed, State: state, Attempt: attempts, Elapsed: elapsed, Err: err}
	s.emit(cs)
	if state == CellDone {
		s.emitResult(cs, res)
	}
	return res, err
}

// cancelCell records one cell abandoned before computation started.
func (s *Scheduler) cancelCell(key CellKey, scName string, n int, seed uint64, cause error) error {
	err := fmt.Errorf("core: %s at n=%d: %w", scName, n, cause)
	s.mu.Lock()
	s.stats.Cancelled++
	probes := s.probes
	s.mu.Unlock()
	if probes != nil {
		probes.CellsCancelled.Inc()
	}
	s.emit(CellStatus{Scenario: scName, N: n, Key: key, Seed: seed, State: CellCancelled, Err: err})
	return err
}

// computeWithRetry runs one cell to completion under the retry policy:
// transient faults are recomputed up to the budget with deterministic
// exponential backoff (the jitter stream is seeded from the cell key, so a
// given cell always waits the same schedule regardless of worker count or
// interleaving). It returns the result or terminal error plus the number of
// attempts made.
func (s *Scheduler) computeWithRetry(ctx context.Context, key CellKey, sc scenario.Scenario, n int, seed uint64, ev Config, probes *obs.CoreProbes) (*Result, error, int) {
	s.mu.Lock()
	retries, backoff := s.retries, s.backoff
	s.mu.Unlock()
	var backoffRng *rng.Source
	attempts := 0
	for {
		attempts++
		res, err := s.computeOnce(ctx, key, sc, n, seed, ev, probes)
		if err == nil {
			return res, nil, attempts
		}
		if ctx.Err() != nil || !IsTransient(err) || attempts > retries {
			return nil, err, attempts
		}
		s.mu.Lock()
		s.stats.Retries++
		s.mu.Unlock()
		if probes != nil {
			probes.CellRetries.Inc()
		}
		s.emit(CellStatus{Scenario: sc.Name, N: n, Key: key, Seed: seed, State: CellRetried, Attempt: attempts, Err: err})
		if backoffRng == nil {
			backoffRng = rng.New(keyHash(key) ^ retrySeedSalt)
		}
		if !sleepContext(ctx, retryDelay(backoffRng, backoff, attempts)) {
			return nil, ctx.Err(), attempts
		}
	}
}

// maxRetryBackoff caps the exponential growth of the per-attempt retry
// delay. Without it a large retry budget overflows the shift (attempt ≳ 33
// at the default base) into a non-positive duration that Jitter clamps to
// ~1ns — a hot retry loop instead of a backoff.
const maxRetryBackoff = 5 * time.Minute

// retryDelay computes the wait before retry number attempt: exponential in
// the attempt count up to maxRetryBackoff, scaled by a jitter factor in
// [0.5, 1.0] drawn from the cell's deterministic backoff stream.
func retryDelay(r *rng.Source, base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	limit := maxRetryBackoff
	if base > limit {
		limit = base
	}
	d := base
	for i := 1; i < attempt && d < limit; i++ {
		d <<= 1
		if d <= 0 || d > limit { // d <= 0 is shift overflow
			d = limit
		}
	}
	return time.Duration(r.Jitter(int64(d), 0.5, 1.0))
}

// sleepContext waits for d or until ctx is cancelled; it reports whether
// the full wait elapsed.
func sleepContext(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// computeOnce performs a single computation attempt with panic isolation
// and the per-cell deadline applied.
func (s *Scheduler) computeOnce(ctx context.Context, key CellKey, sc scenario.Scenario, n int, seed uint64, ev Config, probes *obs.CoreProbes) (res *Result, err error) {
	cellCtx := ctx
	if ev.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, ev.CellTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, false)]
			res, err = nil, &CellPanicError{Key: key, Value: r, Stack: buf}
			if probes != nil {
				probes.PanicsRecovered.Inc()
			}
		}
	}()
	topo, err := s.generate(sc, n, seed)
	if err == nil {
		res, err = s.run(cellCtx, topo, ev)
	}
	if err != nil {
		// A deadline on the cell context while the grid context is healthy is
		// this cell's own timeout: a transient, retryable fault.
		if ev.CellTimeout > 0 && cellCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			err = &CellTimeoutError{Key: key, Timeout: ev.CellTimeout}
		}
		return nil, err
	}
	return res, nil
}

// RunGrid executes every (scenario, size) cell of the requests on the
// worker pool and assembles one SweepResult per request, sizes in request
// order. On cell failure the remaining cells still run; the completed
// points of every request are returned alongside the first error in grid
// order, and the error names the failing (scenario, n) cell (quarantined
// cells surface as *CellQuarantinedError). Cancelling ctx stops new cells
// from being scheduled, aborts in-flight simulations at their next
// origin boundary, and returns once the pool drains; abandoned cells carry
// the context error and are never cached or journaled.
func (s *Scheduler) RunGrid(ctx context.Context, reqs []GridRequest) ([]*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type slot struct {
		res *Result
		err error
	}
	type job struct{ req, idx int }
	var jobs []job
	slots := make([][]slot, len(reqs))
	for i := range reqs {
		if len(reqs[i].Sizes) == 0 {
			return nil, fmt.Errorf("core: grid request %d (%s): empty size list", i, reqs[i].Scenario.Name)
		}
		slots[i] = make([]slot, len(reqs[i].Sizes))
		for j := range reqs[i].Sizes {
			jobs = append(jobs, job{i, j})
		}
	}

	workers := s.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Cancellation latency: a watcher notes when the context fires; after
	// the pool drains the elapsed time lands in the cancel histogram.
	var cancelledAt atomic.Int64
	drained := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			cancelledAt.Store(time.Now().UnixNano())
		case <-drained:
		}
	}()

	next := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range next {
				r := &reqs[jb.req]
				res, err := s.cell(ctx, r.Scenario, r.Sizes[jb.idx], r.TopologySeed, r.Event, r.Progress)
				slots[jb.req][jb.idx] = slot{res, err}
			}
		}()
	}
	delivered := 0
feed:
	for _, jb := range jobs {
		select {
		case next <- jb:
			delivered++
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	// Jobs never handed to a worker are marked cancelled so assembly does
	// not mistake their empty slots for successful (nil) results.
	for _, jb := range jobs[delivered:] {
		r := &reqs[jb.req]
		n := r.Sizes[jb.idx]
		key := cellKey(r.Scenario.Name, n, r.TopologySeed, r.Event)
		slots[jb.req][jb.idx] = slot{nil, s.cancelCell(key, r.Scenario.Name, n, r.TopologySeed+uint64(n), ctx.Err())}
	}
	wg.Wait()
	close(drained)
	<-watcherDone
	if t := cancelledAt.Load(); t != 0 {
		s.mu.Lock()
		probes := s.probes
		s.mu.Unlock()
		if probes != nil {
			probes.ObserveCancel(time.Duration(time.Now().UnixNano() - t))
		}
	}

	// Deterministic assembly: each cell was stored in its (request, size)
	// slot, so output order is independent of completion order.
	out := make([]*SweepResult, len(reqs))
	var firstErr error
	for i := range reqs {
		sr := &SweepResult{Scenario: reqs[i].Scenario.Name}
		for j, n := range reqs[i].Sizes {
			sl := slots[i][j]
			if sl.err != nil {
				if firstErr == nil {
					firstErr = sl.err
				}
				continue
			}
			sr.Points = append(sr.Points, Point{N: n, R: sl.res})
		}
		out[i] = sr
	}
	return out, firstErr
}

// RunSweep runs one scenario sweep through the scheduler: cells execute in
// parallel and previously computed cells are served from the cache. The
// result is byte-identical to the sequential Sweep on the same config.
func (s *Scheduler) RunSweep(ctx context.Context, sc scenario.Scenario, cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("core: empty size list")
	}
	out, err := s.RunGrid(ctx, []GridRequest{{
		Scenario:     sc,
		Sizes:        cfg.Sizes,
		TopologySeed: cfg.TopologySeed,
		Event:        cfg.Event,
		Progress:     cfg.Progress,
	}})
	if len(out) == 0 {
		return nil, err
	}
	return out[0], err
}

// RunGrid executes the grid on a one-off scheduler with GOMAXPROCS
// workers. Use NewScheduler to share a cache across grids.
func RunGrid(ctx context.Context, reqs []GridRequest) ([]*SweepResult, error) {
	return NewScheduler(0).RunGrid(ctx, reqs)
}

// RunSweep runs one scenario sweep on a one-off scheduler, cells in
// parallel. Use NewScheduler to share a cache across sweeps.
func RunSweep(ctx context.Context, sc scenario.Scenario, cfg SweepConfig) (*SweepResult, error) {
	return NewScheduler(0).RunSweep(ctx, sc, cfg)
}
