package core

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/des"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// CellKey identifies one (scenario, size) grid cell by every input that
// determines its Result: the scenario name, the size, the sweep-level
// topology seed, and the event configuration. Config.Parallelism and all
// callbacks are deliberately excluded — results are independent of both —
// so the same experiment requested at different worker counts still hits
// the cache. Scenario names are unique across the package, which makes the
// name a faithful stand-in for the (unexported) parameter transform.
type CellKey struct {
	Scenario     string
	N            int
	TopologySeed uint64
	Origins      int
	Settle       des.Time
	Kind         EventKind
	WarmStart    bool
	BGP          bgp.Config
}

// cellKey projects the cacheable part of an event config onto a key.
func cellKey(scName string, n int, topoSeed uint64, ev Config) CellKey {
	return CellKey{
		Scenario:     scName,
		N:            n,
		TopologySeed: topoSeed,
		Origins:      ev.Origins,
		Settle:       ev.Settle,
		Kind:         ev.Kind,
		WarmStart:    ev.WarmStart,
		BGP:          ev.BGP,
	}
}

// CellState classifies scheduler progress events.
type CellState uint8

const (
	// CellStart fires when a worker begins computing a cell.
	CellStart CellState = iota
	// CellDone fires when a computed cell finishes successfully.
	CellDone
	// CellCached fires when a cell is served from the result cache
	// (including waiting for an in-flight computation of the same key).
	CellCached
	// CellFailed fires when a computed cell ends in an error.
	CellFailed
)

// String names the state ("start", "done", "cached", "failed").
func (s CellState) String() string {
	switch s {
	case CellStart:
		return "start"
	case CellDone:
		return "done"
	case CellCached:
		return "cached"
	case CellFailed:
		return "failed"
	}
	return fmt.Sprintf("CellState(%d)", uint8(s))
}

// CellStatus is one progress event delivered to Scheduler.OnCell.
type CellStatus struct {
	// Scenario and N name the grid cell.
	Scenario string
	N        int
	// Seed is the cell's effective topology seed (request seed + N).
	Seed uint64
	// State says what happened.
	State CellState
	// Elapsed is the computation time (CellDone/CellFailed) or the time
	// spent waiting on an in-flight duplicate (CellCached; ~0 for a warm
	// hit). Zero for CellStart.
	Elapsed time.Duration
	// Err is set for CellFailed (and for CellCached when the cached
	// computation had failed).
	Err error
}

// GridRequest names one scenario sweep inside a grid run: the scheduler
// treats every (scenario, size) pair as an independent job.
type GridRequest struct {
	// Scenario is the growth model to sweep.
	Scenario scenario.Scenario
	// Sizes are the network sizes to measure.
	Sizes []int
	// TopologySeed seeds topology generation; each size uses
	// TopologySeed+size, exactly as the sequential Sweep does.
	TopologySeed uint64
	// Event is the per-topology experiment configuration.
	Event Config
	// Progress, when non-nil, is called when a cell of this request starts
	// computing (not for cache hits), mirroring SweepConfig.Progress. Cells
	// run concurrently, so calls arrive in completion order, serialized.
	Progress func(scenarioName string, n int)
}

// CacheStats counts scheduler cache traffic.
type CacheStats struct {
	// Hits is the number of cells served from the cache (or coalesced onto
	// an in-flight computation of the same key).
	Hits int
	// Misses is the number of cells actually computed.
	Misses int
	// Evictions is the number of completed results dropped by the LRU
	// entry-count cap (see SetCacheLimit).
	Evictions int
}

// DefaultCacheCap is the scheduler's default result-cache entry limit. A
// Result is small (a few KB), so the default accommodates every figure grid
// the paper needs while bounding a long-lived scheduler (e.g. a service
// answering what-if queries) to a few MB of cached results.
const DefaultCacheCap = 512

// Scheduler executes experiment grids on a bounded worker pool with a
// content-addressed result cache. Each (scenario, size) cell is an
// independent deterministic job, so cells may run in any order and on any
// number of workers without changing results; assembly orders cells by the
// request's size list, making grid output byte-identical to sequential
// Sweep runs. Cells with equal CellKeys are computed once while cached —
// concurrent duplicates coalesce onto the in-flight computation — which
// lets figures that share a sweep (Fig. 4–12 all reuse the Baseline sweep)
// pay for it once. The cache holds at most SetCacheLimit entries
// (DefaultCacheCap by default), evicting least-recently-used results; an
// evicted cell is simply recomputed if requested again.
//
// A Scheduler is safe for concurrent use. Set OnCell before the first run.
type Scheduler struct {
	parallelism int

	// OnCell, when non-nil, receives one CellStart and one CellDone (or
	// CellFailed) event per computed cell plus one CellCached event per
	// cache hit. Calls are serialized; the callback needs no locking.
	OnCell func(CellStatus)

	mu       sync.Mutex
	cache    map[CellKey]*cacheEntry
	lru      *list.List // CellKeys, most recently used at the front
	cacheCap int
	stats    CacheStats

	emitMu sync.Mutex

	// probes is the scheduler's observability block; nil when disabled
	// (see SetObs).
	probes *obs.CoreProbes

	// generate and run are seams for tests (counting hooks, fault
	// injection); they default to Scenario.Generate and RunCEvents.
	generate func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error)
	run      func(t *topology.Topology, cfg Config) (*Result, error)
}

// NewScheduler returns a scheduler running at most parallelism cells
// concurrently (0 = GOMAXPROCS) with an empty cache.
func NewScheduler(parallelism int) *Scheduler {
	return &Scheduler{
		parallelism: parallelism,
		cache:       map[CellKey]*cacheEntry{},
		lru:         list.New(),
		cacheCap:    DefaultCacheCap,
		generate: func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error) {
			return sc.Generate(n, seed)
		},
		run: RunCEvents,
	}
}

// cacheEntry is a singleflight slot: the first requester of a key computes
// while later requesters wait on ready.
type cacheEntry struct {
	ready chan struct{}
	res   *Result
	err   error
	// elem is this entry's position in the scheduler's LRU list.
	elem *list.Element
}

// SetObs attaches the metrics hub: cache traffic and per-cell wall times
// flow into it from then on. Pass nil to detach. Counting is additive to
// CacheStats and has no effect on results.
func (s *Scheduler) SetObs(m *obs.Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil {
		s.probes = nil
		return
	}
	s.probes = m.NewCoreProbes()
}

// CacheStats returns the cache traffic so far.
func (s *Scheduler) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SetCacheLimit bounds the result cache to at most n completed entries,
// evicting least-recently-used results immediately if it is over. n <= 0
// removes the bound. The default is DefaultCacheCap.
func (s *Scheduler) SetCacheLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheCap = n
	s.evictLocked()
}

// evictLocked drops least-recently-used completed entries until the cache
// respects the cap. In-flight entries are never evicted — their waiters are
// counting on the singleflight slot — so the cache may transiently exceed
// the cap by the number of concurrent computations. Caller holds s.mu.
func (s *Scheduler) evictLocked() {
	if s.cacheCap <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.lru.Len() > s.cacheCap; {
		prev := el.Prev()
		key := el.Value.(CellKey)
		e := s.cache[key]
		select {
		case <-e.ready:
			delete(s.cache, key)
			s.lru.Remove(el)
			s.stats.Evictions++
			if p := s.probes; p != nil {
				p.CacheEvictions.Inc()
			}
		default:
			// Still computing; skip toward the front.
		}
		el = prev
	}
}

// emit delivers one progress event, serialized.
func (s *Scheduler) emit(cs CellStatus) {
	if s.OnCell == nil {
		return
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	s.OnCell(cs)
}

// cell computes or fetches one grid cell.
func (s *Scheduler) cell(sc scenario.Scenario, n int, topoSeed uint64, ev Config, progress func(string, int)) (*Result, error) {
	key := cellKey(sc.Name, n, topoSeed, ev)
	seed := topoSeed + uint64(n)
	s.mu.Lock()
	probes := s.probes
	if e, ok := s.cache[key]; ok {
		s.stats.Hits++
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		start := time.Now()
		<-e.ready
		if probes != nil {
			probes.CellsCached.Inc()
		}
		s.emit(CellStatus{Scenario: sc.Name, N: n, Seed: seed, State: CellCached, Elapsed: time.Since(start), Err: e.err})
		return e.res, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	e.elem = s.lru.PushFront(key)
	s.cache[key] = e
	s.stats.Misses++
	s.evictLocked()
	s.mu.Unlock()

	if progress != nil {
		s.emitMu.Lock()
		progress(sc.Name, n)
		s.emitMu.Unlock()
	}
	s.emit(CellStatus{Scenario: sc.Name, N: n, Seed: seed, State: CellStart})
	start := time.Now()
	topo, err := s.generate(sc, n, seed)
	var res *Result
	if err == nil {
		res, err = s.run(topo, ev)
	}
	if err != nil {
		err = fmt.Errorf("core: %s at n=%d: %w", sc.Name, n, err)
	}
	e.res, e.err = res, err
	close(e.ready)
	elapsed := time.Since(start)
	state := CellDone
	if err != nil {
		state = CellFailed
	}
	if probes != nil {
		if err != nil {
			probes.CellsFailed.Inc()
		} else {
			probes.CellsComputed.Inc()
			probes.ObserveCell(elapsed)
		}
	}
	s.emit(CellStatus{Scenario: sc.Name, N: n, Seed: seed, State: state, Elapsed: elapsed, Err: err})
	return res, err
}

// RunGrid executes every (scenario, size) cell of the requests on the
// worker pool and assembles one SweepResult per request, sizes in request
// order. On cell failure the remaining cells still run; the completed
// points of every request are returned alongside the first error in grid
// order, and the error names the failing (scenario, n) cell.
func (s *Scheduler) RunGrid(reqs []GridRequest) ([]*SweepResult, error) {
	type slot struct {
		res *Result
		err error
	}
	type job struct{ req, idx int }
	var jobs []job
	slots := make([][]slot, len(reqs))
	for i := range reqs {
		if len(reqs[i].Sizes) == 0 {
			return nil, fmt.Errorf("core: grid request %d (%s): empty size list", i, reqs[i].Scenario.Name)
		}
		slots[i] = make([]slot, len(reqs[i].Sizes))
		for j := range reqs[i].Sizes {
			jobs = append(jobs, job{i, j})
		}
	}

	workers := s.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range next {
				r := &reqs[jb.req]
				res, err := s.cell(r.Scenario, r.Sizes[jb.idx], r.TopologySeed, r.Event, r.Progress)
				slots[jb.req][jb.idx] = slot{res, err}
			}
		}()
	}
	for _, jb := range jobs {
		next <- jb
	}
	close(next)
	wg.Wait()

	// Deterministic assembly: each cell was stored in its (request, size)
	// slot, so output order is independent of completion order.
	out := make([]*SweepResult, len(reqs))
	var firstErr error
	for i := range reqs {
		sr := &SweepResult{Scenario: reqs[i].Scenario.Name}
		for j, n := range reqs[i].Sizes {
			sl := slots[i][j]
			if sl.err != nil {
				if firstErr == nil {
					firstErr = sl.err
				}
				continue
			}
			sr.Points = append(sr.Points, Point{N: n, R: sl.res})
		}
		out[i] = sr
	}
	return out, firstErr
}

// RunSweep runs one scenario sweep through the scheduler: cells execute in
// parallel and previously computed cells are served from the cache. The
// result is byte-identical to the sequential Sweep on the same config.
func (s *Scheduler) RunSweep(sc scenario.Scenario, cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("core: empty size list")
	}
	out, err := s.RunGrid([]GridRequest{{
		Scenario:     sc,
		Sizes:        cfg.Sizes,
		TopologySeed: cfg.TopologySeed,
		Event:        cfg.Event,
		Progress:     cfg.Progress,
	}})
	if len(out) == 0 {
		return nil, err
	}
	return out[0], err
}

// RunGrid executes the grid on a one-off scheduler with GOMAXPROCS
// workers. Use NewScheduler to share a cache across grids.
func RunGrid(reqs []GridRequest) ([]*SweepResult, error) {
	return NewScheduler(0).RunGrid(reqs)
}

// RunSweep runs one scenario sweep on a one-off scheduler, cells in
// parallel. Use NewScheduler to share a cache across sweeps.
func RunSweep(sc scenario.Scenario, cfg SweepConfig) (*SweepResult, error) {
	return NewScheduler(0).RunSweep(sc, cfg)
}
