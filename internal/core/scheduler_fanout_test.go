package core

import (
	"context"
	"sync"
	"testing"

	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// stubCompute replaces the scheduler's seams with a trivial deterministic
// computation so fan-out tests run in microseconds.
func stubCompute(s *Scheduler) {
	s.SetCompute(
		func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error) {
			return &topology.Topology{Nodes: make([]topology.Node, n), Seed: seed}, nil
		},
		func(ctx context.Context, t *topology.Topology, cfg Config) (*Result, error) {
			n := len(t.Nodes)
			return &Result{N: n, Origins: cfg.Origins, TotalUpdates: float64(n) * 2}, nil
		},
	)
}

func TestSubscribeCellsFanOut(t *testing.T) {
	// Two subscribers and the legacy OnCell field must each see the full
	// serialized event stream with populated keys; a cancelled subscription
	// stops receiving without disturbing the others.
	s := NewScheduler(2)
	stubCompute(s)

	var mu sync.Mutex
	var legacy, subA, subB []CellStatus
	var results []int
	s.OnCell = func(cs CellStatus) { mu.Lock(); legacy = append(legacy, cs); mu.Unlock() }
	cancelA := s.SubscribeCells(func(cs CellStatus) { mu.Lock(); subA = append(subA, cs); mu.Unlock() })
	cancelB := s.SubscribeCells(func(cs CellStatus) { mu.Lock(); subB = append(subB, cs); mu.Unlock() })
	defer cancelB()
	cancelRes := s.SubscribeResults(func(cs CellStatus, r *Result) {
		mu.Lock()
		results = append(results, r.N)
		mu.Unlock()
	})
	defer cancelRes()

	ev := testConfig(3, 4)
	cfg := SweepConfig{Sizes: []int{100, 200}, TopologySeed: 3, Event: ev}
	if _, err := s.RunSweep(context.Background(), scenario.Baseline, cfg); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(legacy) != 4 || len(subA) != 4 || len(subB) != 4 {
		t.Fatalf("event counts legacy=%d subA=%d subB=%d, want 4 each (2 cells x start+done)",
			len(legacy), len(subA), len(subB))
	}
	for _, cs := range subA {
		want := KeyFor(cs.Scenario, cs.N, 3, ev)
		if cs.Key != want {
			t.Fatalf("event %+v carries key %+v, want %+v", cs.State, cs.Key, want)
		}
	}
	if len(results) != 2 {
		t.Fatalf("result subscriber saw %d results, want 2", len(results))
	}

	// After cancelling A, only B (and the field) keep receiving. The repeat
	// request hits the cache, so each remaining observer gains 2 events.
	cancelA()
	cancelA() // idempotent
	mu.Unlock()
	if _, err := s.RunSweep(context.Background(), scenario.Baseline, cfg); err != nil {
		mu.Lock()
		t.Fatal(err)
	}
	mu.Lock()
	if len(subA) != 4 {
		t.Fatalf("cancelled subscriber still receiving: %d events", len(subA))
	}
	if len(subB) != 6 || len(legacy) != 6 {
		t.Fatalf("surviving observers: subB=%d legacy=%d, want 6 each", len(subB), len(legacy))
	}
	if len(results) != 4 {
		t.Fatalf("result subscriber saw %d results, want 4 (2 computed + 2 cached)", len(results))
	}
}
