//go:build unix

package core

import (
	"errors"
	"os"
	"syscall"
)

// journalLocksSupported reports whether this platform enforces the
// exclusive journal writer lock (tests skip the contention cases where it
// cannot).
const journalLocksSupported = true

// lockJournalFile takes a non-blocking exclusive advisory lock (flock) on
// the journal's append fd. It returns (false, nil) when another open file
// description already holds the lock — flock locks belong to the open file
// description, so a second Journal in the same process conflicts exactly
// like one in another process — and the lock is released automatically when
// the fd is closed, including by process death, so a SIGKILLed daemon never
// leaves a stale lock behind.
func lockJournalFile(f *os.File) (held bool, err error) {
	for {
		err = syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		switch {
		case err == nil:
			return true, nil
		case errors.Is(err, syscall.EWOULDBLOCK):
			return false, nil
		case errors.Is(err, syscall.EINTR):
			continue
		default:
			return false, err
		}
	}
}
