package core

import (
	"testing"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/scenario"
)

func TestSessionResetProducesChurn(t *testing.T) {
	topo, err := scenario.Baseline.Generate(400, 41)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSessionResetConfig(41)
	cfg.Prefixes = 10
	cfg.Sessions = 5
	res, err := RunSessionResets(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefixes != 10 || res.Sessions != 5 {
		t.Fatalf("config echo wrong: %+v", res)
	}
	if res.MeanUpdates <= 0 || res.MeanSeconds <= 0 {
		t.Fatalf("no churn measured: %+v", res)
	}
	if res.MeanUpdatesPerPrefix <= 0 {
		t.Fatalf("per-prefix cost: %+v", res)
	}
}

func TestSessionResetChurnScalesWithPrefixes(t *testing.T) {
	topo, err := scenario.Baseline.Generate(400, 43)
	if err != nil {
		t.Fatal(err)
	}
	run := func(prefixes int) *SessionResetResult {
		cfg := DefaultSessionResetConfig(43)
		cfg.Prefixes = prefixes
		cfg.Sessions = 4
		res, err := RunSessionResets(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(2)
	large := run(20)
	// The motivation for the extension: reset churn grows with table size.
	if large.MeanUpdates < 3*small.MeanUpdates {
		t.Fatalf("10x prefixes raised reset churn only %vx (%v -> %v)",
			large.MeanUpdates/small.MeanUpdates, small.MeanUpdates, large.MeanUpdates)
	}
}

func TestSessionResetValidation(t *testing.T) {
	topo, err := scenario.Baseline.Generate(200, 47)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSessionResetConfig(47)
	cfg.Prefixes = 0
	if _, err := RunSessionResets(topo, cfg); err == nil {
		t.Fatal("zero prefixes accepted")
	}
	cfg = DefaultSessionResetConfig(47)
	cfg.Sessions = 0
	if _, err := RunSessionResets(topo, cfg); err == nil {
		t.Fatal("zero sessions accepted")
	}
	cfg = DefaultSessionResetConfig(47)
	cfg.BGP.MaxProcessingDelay = 0
	if _, err := RunSessionResets(topo, cfg); err == nil {
		t.Fatal("bad protocol config accepted")
	}
	// Session and prefix counts cap gracefully.
	cfg = DefaultSessionResetConfig(47)
	cfg.Prefixes = 1 << 20
	cfg.Sessions = 1 << 20
	res, err := RunSessionResets(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefixes > topo.CountByType()[3] {
		t.Fatalf("prefixes not capped: %d", res.Prefixes)
	}
}

func TestSessionResetDeterministic(t *testing.T) {
	topo, err := scenario.Baseline.Generate(300, 53)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SessionResetConfig{Prefixes: 5, Sessions: 3, BGP: bgp.DefaultConfig(53)}
	a, err := RunSessionResets(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSessionResets(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanUpdates != b.MeanUpdates || a.MeanSeconds != b.MeanSeconds {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
