package core

import (
	"math"
	"strings"
	"testing"

	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// TestWarmStartStatisticalEquivalence is the statistical tier of the
// warm-start soundness argument (the exact tier lives in
// bgp.TestWarmStartMatchesDES): the measured DOWN/UP phases start from the
// identical converged state either way, but run on per-node RNG streams the
// flood never advanced, so per-type churn means must agree within the
// combined confidence intervals.
func TestWarmStartStatisticalEquivalence(t *testing.T) {
	topo, err := scenario.Baseline.Generate(1000, 21)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(21, 30)
	cold, err := RunCEvents(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmStart = true
	warm, err := RunCEvents(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range topology.NodeTypes {
		c, w := cold.ByType[typ], warm.ByType[typ]
		if c.Nodes == 0 {
			continue
		}
		if diff, tol := math.Abs(c.U-w.U), c.CI95+w.CI95; diff > tol {
			t.Errorf("U(%v): cold %.3f±%.3f vs warm %.3f±%.3f (diff %.3f > %.3f)",
				typ, c.U, c.CI95, w.U, w.CI95, diff, tol)
		}
	}
	// The network-wide mean must also agree to a loose relative tolerance.
	if rel := math.Abs(cold.TotalUpdates-warm.TotalUpdates) / cold.TotalUpdates; rel > 0.10 {
		t.Errorf("TotalUpdates: cold %.1f vs warm %.1f (%.1f%% apart)",
			cold.TotalUpdates, warm.TotalUpdates, 100*rel)
	}
}

// TestWarmStartRejectsDampening pins the validation: pre-event flap
// penalties only accrue during a real flood, so the combination is refused
// rather than silently producing different suppression behavior.
func TestWarmStartRejectsDampening(t *testing.T) {
	topo, err := scenario.Baseline.Generate(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(5, 2)
	cfg.WarmStart = true
	cfg.BGP.Dampening.Enabled = true
	if _, err := RunCEvents(topo, cfg); err == nil || !strings.Contains(err.Error(), "dampening") {
		t.Fatalf("WarmStart+Dampening accepted (err=%v), want rejection", err)
	}
}

// handTopo builds a topology from explicit provider→customer transit edges,
// for origin-selection and error-path tests.
func handTopo(types []topology.NodeType, transit [][2]topology.NodeID) *topology.Topology {
	topo := &topology.Topology{NumRegions: 1, Nodes: make([]topology.Node, len(types))}
	for i, typ := range types {
		topo.Nodes[i] = topology.Node{ID: topology.NodeID(i), Type: typ, Regions: 1}
	}
	for _, e := range transit {
		p, c := e[0], e[1]
		topo.Nodes[p].Customers = append(topo.Nodes[p].Customers, c)
		topo.Nodes[c].Providers = append(topo.Nodes[c].Providers, p)
	}
	return topo
}

// TestChooseOriginsMultihomedFallback exercises both branches of the
// link-event origin selection: with enough multihomed C nodes only those are
// sampled; with too few, selection falls back to the plain C-node sample.
func TestChooseOriginsMultihomedFallback(t *testing.T) {
	// T0 with M1, M2 below it; C3..C8 each multihomed to both Ms.
	types := []topology.NodeType{topology.T, topology.M, topology.M,
		topology.C, topology.C, topology.C, topology.C, topology.C, topology.C}
	var transit [][2]topology.NodeID
	for _, m := range []topology.NodeID{1, 2} {
		transit = append(transit, [2]topology.NodeID{0, m})
		for c := topology.NodeID(3); c <= 8; c++ {
			transit = append(transit, [2]topology.NodeID{m, c})
		}
	}
	multiTopo := handTopo(types, transit)
	cfg := testConfig(7, 3)
	cfg.Kind = LinkEvent
	origins, err := chooseOrigins(multiTopo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(origins) != 3 {
		t.Fatalf("got %d origins, want 3", len(origins))
	}
	for _, id := range origins {
		if got := len(multiTopo.Nodes[id].Providers); got < 2 {
			t.Errorf("link-event origin %d has %d providers, want multihomed", id, got)
		}
	}

	// Same shape but only C3 is multihomed: 1 < Origins, so the fallback
	// must keep the plain sample, which the deterministic shuffle makes
	// include single-homed nodes.
	transit = transit[:0]
	transit = append(transit, [2]topology.NodeID{0, 1}, [2]topology.NodeID{0, 2},
		[2]topology.NodeID{1, 3}, [2]topology.NodeID{2, 3})
	for c := topology.NodeID(4); c <= 8; c++ {
		transit = append(transit, [2]topology.NodeID{1, c})
	}
	singleTopo := handTopo(types, transit)
	origins, err = chooseOrigins(singleTopo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := chooseOrigins(singleTopo, Config{Origins: cfg.Origins, BGP: cfg.BGP})
	if err != nil {
		t.Fatal(err)
	}
	if len(origins) != len(want) {
		t.Fatalf("fallback sample has %d origins, plain sample %d", len(origins), len(want))
	}
	for i := range origins {
		if origins[i] != want[i] {
			t.Fatalf("fallback origins %v differ from the plain C sample %v", origins, want)
		}
	}
}

// TestLinkEventOriginWithoutProviderErrors pins the error path that used to
// panic inside a worker goroutine: a link-event origin with no provider link
// to fail now surfaces as an error from RunCEvents.
func TestLinkEventOriginWithoutProviderErrors(t *testing.T) {
	// A lone T and an orphan C node with no transit link at all.
	topo := handTopo([]topology.NodeType{topology.T, topology.C}, nil)
	cfg := testConfig(3, 1)
	cfg.Kind = LinkEvent
	_, err := RunCEvents(topo, cfg)
	if err == nil || !strings.Contains(err.Error(), "no provider link") {
		t.Fatalf("RunCEvents = %v, want a no-provider-link error", err)
	}
}
