package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalTestKey(n int) CellKey {
	return CellKey{Scenario: "BASELINE", N: n, TopologySeed: 1, Origins: 4}
}

func journalTestResult(n int) *Result {
	return &Result{N: n, Origins: 4, TotalUpdates: float64(n) * 1.5}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{100, 200, 300} {
		if err := j.Append(journalTestKey(n), journalTestResult(n)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Appended() != 3 {
		t.Fatalf("Appended = %d, want 3", j.Appended())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalTestKey(400), journalTestResult(400)); err == nil {
		t.Fatal("append after Close succeeded")
	}

	recs, truncated, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("clean journal reported truncated")
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d records, want 3", len(recs))
	}
	for i, n := range []int{100, 200, 300} {
		if recs[i].Key != journalTestKey(n) {
			t.Fatalf("record %d key = %+v", i, recs[i].Key)
		}
		if recs[i].Result.TotalUpdates != float64(n)*1.5 {
			t.Fatalf("record %d result = %+v", i, recs[i].Result)
		}
	}
}

func TestJournalReopenAppends(t *testing.T) {
	// A resumed run reopens the same journal and keeps appending; earlier
	// records survive, and a rewritten key wins last (first-appearance
	// order preserved).
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalTestKey(100), journalTestResult(100)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	updated := journalTestResult(100)
	updated.TotalUpdates = 999
	if err := j2.Append(journalTestKey(100), updated); err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(journalTestKey(200), journalTestResult(200)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	recs, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2 after dedup", len(recs))
	}
	if recs[0].Key.N != 100 || recs[0].Result.TotalUpdates != 999 {
		t.Fatalf("dedup kept the stale record: %+v", recs[0])
	}
	if recs[1].Key.N != 200 {
		t.Fatalf("record order changed: %+v", recs[1])
	}
}

func TestJournalTornFinalLineTolerated(t *testing.T) {
	// A crash mid-append leaves a torn last line; load must drop exactly
	// that line and report truncated=true.
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalTestKey(100), journalTestResult(100))
	j.Append(journalTestKey(200), journalTestResult(200))
	j.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: drop its trailing bytes (newline included).
	if err := os.WriteFile(path, b[:len(b)-15], 0o644); err != nil {
		t.Fatal(err)
	}

	recs, truncated, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if !truncated {
		t.Fatal("truncated not reported")
	}
	if len(recs) != 1 || recs[0].Key.N != 100 {
		t.Fatalf("recs = %+v, want only the intact first record", recs)
	}
}

func TestJournalReopenRepairsTornTail(t *testing.T) {
	// The repeated-crash scenario: a crash mid-append leaves a torn final
	// line, the next run reopens the journal and keeps appending. Reopen
	// must truncate the torn tail first — otherwise the first new record
	// concatenates onto it and the merged garbage ends up mid-file, where
	// LoadJournal rightly refuses to repair and resume is wedged for good.
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalTestKey(100), journalTestResult(100))
	j.Append(journalTestKey(200), journalTestResult(200))
	j.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-15], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen of torn journal failed: %v", err)
	}
	if err := j2.Append(journalTestKey(300), journalTestResult(300)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(journalTestKey(400), journalTestResult(400)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	recs, truncated, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("journal unloadable after torn-tail reopen: %v", err)
	}
	if truncated {
		t.Fatal("repaired journal still reports truncated")
	}
	want := []int{100, 300, 400}
	if len(recs) != len(want) {
		t.Fatalf("loaded %d records, want %d", len(recs), len(want))
	}
	for i, n := range want {
		if recs[i].Key.N != n {
			t.Fatalf("record %d = %+v, want N=%d", i, recs[i].Key, n)
		}
	}
}

func TestJournalReopenRejectsMidFileCorruption(t *testing.T) {
	// Repair only drops a torn *tail*; a bad line with records after it is
	// corruption that reopen, like LoadJournal, must refuse to paper over.
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalTestKey(100), journalTestResult(100))
	j.Append(journalTestKey(200), journalTestResult(200))
	j.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	tampered := strings.Replace(lines[1], `"N":100`, `"N":101`, 1)
	if tampered == lines[1] {
		t.Fatalf("tamper target not found in record: %s", lines[1])
	}
	lines[1] = tampered
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenJournal(path); err == nil {
		t.Fatal("reopen accepted mid-file corruption")
	}

	// Same for a non-journal file: reopen must not append to it.
	bogus := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(bogus, []byte("plain text\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(bogus); err == nil {
		t.Fatal("reopen accepted a non-journal file")
	}
}

func TestJournalMidFileCorruptionFails(t *testing.T) {
	// Corruption before the final line means the file was edited or the
	// filesystem lied: load must fail rather than silently drop records.
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(journalTestKey(100), journalTestResult(100))
	j.Append(journalTestKey(200), journalTestResult(200))
	j.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want header + 2 records", len(lines))
	}
	// Flip a payload byte inside the FIRST record so its hash mismatches.
	tampered := strings.Replace(lines[1], `"N":100`, `"N":101`, 1)
	if tampered == lines[1] {
		t.Fatalf("tamper target not found in record: %s", lines[1])
	}
	lines[1] = tampered
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := LoadJournal(path); err == nil {
		t.Fatal("mid-file corruption loaded without error")
	} else if !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("error does not name the hash mismatch: %v", err)
	}
}

func TestJournalHeaderValidation(t *testing.T) {
	dir := t.TempDir()

	empty := filepath.Join(dir, "empty.journal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadJournal(empty); err == nil {
		t.Fatal("empty file loaded without error")
	}

	wrongMagic := filepath.Join(dir, "magic.journal")
	if err := os.WriteFile(wrongMagic, []byte(`{"journal":"other","version":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadJournal(wrongMagic); err == nil {
		t.Fatal("wrong magic loaded without error")
	}

	wrongVersion := filepath.Join(dir, "version.journal")
	hdr, _ := json.Marshal(journalHeader{Journal: journalMagic, Version: JournalVersion + 1})
	if err := os.WriteFile(wrongVersion, append(hdr, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadJournal(wrongVersion); err == nil {
		t.Fatal("future version loaded without error")
	}

	// A valid header with zero records is a fresh journal: fine.
	j, err := OpenJournal(filepath.Join(dir, "fresh.journal"))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs, truncated, err := LoadJournal(j.Path())
	if err != nil || truncated || len(recs) != 0 {
		t.Fatalf("fresh journal: recs=%v truncated=%v err=%v", recs, truncated, err)
	}
}

func TestJournalResultFidelity(t *testing.T) {
	// The byte-identical resume property rests on JSON round-tripping
	// floats exactly (encoding/json emits the shortest representation that
	// parses back to the same float64). Pin that for a Result with
	// non-trivial fractions.
	res := journalTestResult(100)
	res.TotalUpdates = 1.0 / 3.0
	res.DownSeconds = 0.1 + 0.2 // famously not 0.3
	res.ByType[0].U = 2.0 / 7.0

	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalTestKey(100), res); err != nil {
		t.Fatal(err)
	}
	j.Close()

	recs, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("loaded %d records", len(recs))
	}
	if *recs[0].Result != *res {
		t.Fatalf("result drifted through the journal:\nstored %+v\nloaded %+v", res, recs[0].Result)
	}
}

func TestJournalSecondWriterRefused(t *testing.T) {
	// Two appenders on one journal would interleave records and tear each
	// other's tail repair; the second opener must be refused with a typed
	// error while the first holds the file. flock locks belong to the open
	// file description, so a second open in this process contends exactly
	// like a second process would.
	if !journalLocksSupported {
		t.Skip("advisory journal locks unsupported on this platform")
	}
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(journalTestKey(100), journalTestResult(100)); err != nil {
		t.Fatal(err)
	}

	_, err = OpenJournal(path)
	var locked *JournalLockedError
	if !errors.As(err, &locked) {
		t.Fatalf("second open: got %v, want *JournalLockedError", err)
	}
	if locked.Path != path {
		t.Fatalf("locked.Path = %q, want %q", locked.Path, path)
	}
	if !strings.Contains(locked.Error(), path) {
		t.Fatalf("error message %q does not name the journal", locked.Error())
	}

	// The lock is advisory and writer-only: readers load the journal while
	// the writer holds it (a live daemon must not block status tooling).
	if recs, _, err := LoadJournal(path); err != nil || len(recs) != 1 {
		t.Fatalf("LoadJournal under writer lock: recs=%d err=%v", len(recs), err)
	}

	// Closing the first writer releases the lock; a clean handoff succeeds.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	j2.Close()
}
