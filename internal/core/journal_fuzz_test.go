package core

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzJournalBytes builds a well-formed two-record journal and returns its
// raw bytes, the substrate the seed corpus mutates.
func fuzzJournalBytes(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.journal")
	j, err := OpenJournal(path)
	if err != nil {
		f.Fatal(err)
	}
	if err := j.Append(journalTestKey(1), journalTestResult(1)); err != nil {
		f.Fatal(err)
	}
	if err := j.Append(journalTestKey(2), journalTestResult(2)); err != nil {
		f.Fatal(err)
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzOpenJournal feeds arbitrary bytes to the journal reopen path and
// asserts the crash-safety contract: LoadJournal and OpenJournal never
// panic; whenever reopen succeeds, the repaired file reloads cleanly (no
// error, no torn tail — resume never starts from garbage) and a subsequent
// append lands intact; and a file LoadJournal rejects as corrupt is also
// rejected by OpenJournal (repair never papers over mid-file damage).
func FuzzOpenJournal(f *testing.F) {
	full := fuzzJournalBytes(f)
	f.Add(full)
	for _, cut := range []int{0, 1, len(full) / 3, len(full) / 2, len(full) - 1} {
		f.Add(append([]byte(nil), full[:cut]...))
	}
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	noNewline := append([]byte(nil), full...)
	f.Add(noNewline[:len(noNewline)-1]) // valid final record, torn terminator
	f.Add([]byte(`{"journal":"bgpchurn-cells","version":1}` + "\n"))
	f.Add([]byte(`{"journal":"bgpchurn-cells","version":2}` + "\n"))
	f.Add([]byte(`{"journal":"something-else","version":1}` + "\n"))
	f.Add([]byte(`{"journal":"bgpchurn-cells","version":1}` + "\n\n\n"))
	f.Add([]byte("not a journal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "cells.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		_, _, loadErr := LoadJournal(path) // must not panic on any input
		j, openErr := OpenJournal(path)    // must not panic; may repair the tail
		if openErr != nil {
			return
		}
		defer j.Close()

		// Repair ran: the file must now be a clean journal — a resumed
		// scheduler must never see an error or a torn tail here.
		before, truncated, err := LoadJournal(path)
		if err != nil {
			t.Fatalf("journal unreadable after successful reopen: %v", err)
		}
		if truncated {
			t.Fatal("torn tail survived repairJournalTail")
		}
		if loadErr != nil {
			// LoadJournal refuses mid-file corruption; repair validates the
			// same way, so reopen succeeding here means the two disagree on
			// what corruption is — a mis-resume waiting to happen.
			t.Fatalf("OpenJournal repaired a journal LoadJournal rejects: %v", loadErr)
		}

		// Appends after repair must land on a record boundary and survive a
		// reload, regardless of what the tail looked like before.
		key, res := journalTestKey(999), journalTestResult(999)
		if err := j.Append(key, res); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		after, truncated, err := LoadJournal(path)
		if err != nil {
			t.Fatalf("journal unreadable after append: %v", err)
		}
		if truncated {
			t.Fatal("clean append produced a torn tail")
		}
		want := len(before) + 1
		for _, r := range before {
			if r.Key == key {
				want = len(before) // last-wins dedup collapses the duplicate
				break
			}
		}
		if len(after) != want {
			t.Fatalf("reload has %d records, want %d", len(after), want)
		}
		found := false
		for _, r := range after {
			if r.Key == key {
				found = true
				if r.Result.TotalUpdates != res.TotalUpdates {
					t.Fatalf("appended record corrupted on reload: %+v", r.Result)
				}
			}
		}
		if !found {
			t.Fatal("appended record missing after reload")
		}
		// Pre-existing records survive the repair and the append.
		for i, r := range before {
			if r.Key == key {
				continue
			}
			if i >= len(after) || after[i].Key != r.Key {
				t.Fatalf("record %d (%+v) lost or reordered by append", i, r.Key)
			}
		}
	})
}
