package core

// Science guards: small-scale versions of the paper's headline comparative
// results, run as ordinary tests so a regression in the *findings* (not
// just the code) fails CI. Bench-scale and paper-scale versions live in
// bench_test.go and cmd/experiments.

import (
	"testing"

	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

func measureUT(t *testing.T, sc scenario.Scenario, n int, seed uint64) float64 {
	t.Helper()
	topo, err := sc.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEvents(topo, testConfig(seed, 12))
	if err != nil {
		t.Fatal(err)
	}
	return res.U(topology.T)
}

func TestScienceTier1ChurnGrowsStubsStayFlat(t *testing.T) {
	// Fig. 4's shape: U(T) grows clearly with n while U(C) barely moves.
	run := func(n int) (float64, float64) {
		topo, err := scenario.Baseline.Generate(n, uint64(n))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCEvents(topo, testConfig(uint64(n), 15))
		if err != nil {
			t.Fatal(err)
		}
		return res.U(topology.T), res.U(topology.C)
	}
	uT1, uC1 := run(400)
	uT2, uC2 := run(1600)
	if uT2 <= uT1 {
		t.Fatalf("U(T) did not grow: %v -> %v", uT1, uT2)
	}
	growthT := uT2 / uT1
	growthC := uC2 / uC1
	if growthT <= growthC {
		t.Fatalf("tier-1 churn growth (%vx) not above stub growth (%vx)", growthT, growthC)
	}
	if growthC > 1.6 {
		t.Fatalf("stub churn grew %vx; expected near-flat", growthC)
	}
}

func TestScienceDenseCoreBeatsDenseEdge(t *testing.T) {
	// §5.2's sharpest comparison at fixed size.
	core := measureUT(t, scenario.DenseCore, 800, 5)
	edge := measureUT(t, scenario.DenseEdge, 800, 5)
	base := measureUT(t, scenario.Baseline, 800, 5)
	if core <= edge {
		t.Fatalf("DENSE-CORE %v <= DENSE-EDGE %v", core, edge)
	}
	if edge <= base {
		t.Fatalf("DENSE-EDGE %v <= BASELINE %v", edge, base)
	}
}

func TestScienceNoMiddleChurnIndependentOfSize(t *testing.T) {
	// §5.1: without mid-level providers, U(T) does not grow with n — it
	// depends only on the origin's multihoming degree.
	small := measureUT(t, scenario.NoMiddle, 400, 9)
	large := measureUT(t, scenario.NoMiddle, 1600, 9)
	if large > 1.7*small || small > 1.7*large {
		t.Fatalf("NO-MIDDLE U(T) varies with size: %v vs %v", small, large)
	}
}

func TestSciencePeeringDensityIrrelevant(t *testing.T) {
	// §5.3 at fixed size: removing or doubling peering moves U(M) little.
	measure := func(sc scenario.Scenario) float64 {
		topo, err := sc.Generate(800, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCEvents(topo, testConfig(11, 12))
		if err != nil {
			t.Fatal(err)
		}
		return res.U(topology.M)
	}
	base := measure(scenario.Baseline)
	noPeer := measure(scenario.NoPeering)
	strong := measure(scenario.StrongCorePeering)
	for name, v := range map[string]float64{"NO-PEERING": noPeer, "STRONG-CORE-PEERING": strong} {
		if v < 0.6*base || v > 1.6*base {
			t.Fatalf("%s moved U(M) from %v to %v; paper says peering barely matters", name, base, v)
		}
	}
}

func TestSciencePreferTopReducesChurn(t *testing.T) {
	// §5.4: flat hierarchies (PREFER-TOP) churn less at the top than deep
	// ones (PREFER-MIDDLE), because the far larger customer count mc,T is
	// more than offset by a collapse of qc,T. The U gap is modest at small
	// n, so average over seeds; the mc/qc mechanism is checked exactly.
	measure := func(sc scenario.Scenario, seed uint64) *Result {
		topo, err := sc.Generate(1500, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCEvents(topo, testConfig(seed, 15))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var uTop, uMid, mcTop, mcMid, qcTop, qcMid float64
	for _, seed := range []uint64{13, 29, 47} {
		top := measure(scenario.PreferTop, seed)
		mid := measure(scenario.PreferMiddle, seed)
		uTop += top.U(topology.T)
		uMid += mid.U(topology.T)
		mcTop += top.ByType[topology.T].ByRel[topology.Customer].M
		mcMid += mid.ByType[topology.T].ByRel[topology.Customer].M
		qcTop += top.ByType[topology.T].ByRel[topology.Customer].Q
		qcMid += mid.ByType[topology.T].ByRel[topology.Customer].Q
	}
	// Mechanism (Fig. 11 middle/bottom): far more direct customers under
	// PREFER-TOP, far lower per-customer activity probability.
	if mcTop <= 2*mcMid {
		t.Fatalf("mc,T: PREFER-TOP %v not ≫ PREFER-MIDDLE %v", mcTop/3, mcMid/3)
	}
	if qcTop >= qcMid {
		t.Fatalf("qc,T: PREFER-TOP %v not < PREFER-MIDDLE %v", qcTop/3, qcMid/3)
	}
	// Net effect (Fig. 11 top): averaged over seeds, the flat hierarchy
	// loads tier-1s less.
	if uTop >= uMid {
		t.Fatalf("mean U(T): PREFER-TOP %v >= PREFER-MIDDLE %v", uTop/3, uMid/3)
	}
}
