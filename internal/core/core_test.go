package core

import (
	"math"
	"testing"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

func testConfig(seed uint64, origins int) Config {
	return Config{Origins: origins, BGP: bgp.DefaultConfig(seed)}
}

func TestTreeScenarioTwoUpdatesAtT(t *testing.T) {
	// Paper §5.2: in the TREE model churn at T nodes is exactly two updates
	// per C-event (one withdraw, one announce), independent of size.
	topo, err := scenario.Tree.Generate(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEvents(topo, testConfig(3, 15))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.U(topology.T); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("U(T) in TREE = %v, want exactly 2", got)
	}
	if res.ByType[topology.T].CI95 > 1e-9 {
		t.Fatalf("TREE U(T) should have zero variance, CI=%v", res.ByType[topology.T].CI95)
	}
}

func TestURelPartitionsU(t *testing.T) {
	topo, err := scenario.Baseline.Generate(400, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEvents(topo, testConfig(5, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range topology.NodeTypes {
		tr := res.ByType[typ]
		sum := tr.ByRel[topology.Customer].U + tr.ByRel[topology.Peer].U + tr.ByRel[topology.Provider].U
		if math.Abs(sum-tr.U) > 1e-9*(1+tr.U) {
			t.Errorf("type %v: sum of relation U %v != U %v", typ, sum, tr.U)
		}
	}
}

func TestMFactorsMatchTopology(t *testing.T) {
	topo, err := scenario.Baseline.Generate(400, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEvents(topo, testConfig(7, 5))
	if err != nil {
		t.Fatal(err)
	}
	st := topology.ComputeStats(topo, 50)
	for _, typ := range topology.NodeTypes {
		gotMHD := res.ByType[typ].ByRel[topology.Provider].M
		if math.Abs(gotMHD-st.MeanMHD[typ]) > 1e-9 {
			t.Errorf("type %v: provider m-factor %v != topology MHD %v", typ, gotMHD, st.MeanMHD[typ])
		}
		gotPeer := res.ByType[typ].ByRel[topology.Peer].M
		if math.Abs(gotPeer-st.MeanPeerDeg[typ]) > 1e-9 {
			t.Errorf("type %v: peer m-factor %v != topology peer degree %v", typ, gotPeer, st.MeanPeerDeg[typ])
		}
	}
	// T nodes have no providers; stubs have no customers.
	if res.ByType[topology.T].ByRel[topology.Provider].M != 0 {
		t.Error("T nodes report providers")
	}
	if res.ByType[topology.C].ByRel[topology.Customer].M != 0 {
		t.Error("C nodes report customers")
	}
}

func TestProviderAlwaysAnnouncesToM(t *testing.T) {
	// Paper §4.2: q_d(M) is almost constant and always larger than 0.99 —
	// a provider always notifies its customer unless its path runs through
	// that customer.
	topo, err := scenario.Baseline.Generate(800, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEvents(topo, testConfig(11, 20))
	if err != nil {
		t.Fatal(err)
	}
	if q := res.ByType[topology.M].ByRel[topology.Provider].Q; q < 0.95 {
		t.Fatalf("q_d(M) = %v, expected near 1", q)
	}
	// And e factors under NO-WRATE stay close to the minimum of 2.
	if e := res.ByType[topology.M].ByRel[topology.Provider].E; e < 2 || e > 3.5 {
		t.Fatalf("e_d(M) = %v, expected close to 2 under NO-WRATE", e)
	}
}

func TestChurnOrderingByType(t *testing.T) {
	// Fig. 4: transit providers see more churn than stubs.
	topo, err := scenario.Baseline.Generate(1000, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEvents(topo, testConfig(13, 25))
	if err != nil {
		t.Fatal(err)
	}
	if res.U(topology.T) <= res.U(topology.C) {
		t.Fatalf("U(T)=%v <= U(C)=%v", res.U(topology.T), res.U(topology.C))
	}
	if res.U(topology.M) <= res.U(topology.C) {
		t.Fatalf("U(M)=%v <= U(C)=%v", res.U(topology.M), res.U(topology.C))
	}
	if res.TotalUpdates <= 0 || res.DownSeconds <= 0 || res.UpSeconds <= 0 {
		t.Fatalf("implausible aggregates: %+v", res)
	}
}

func TestDeterminismAcrossParallelism(t *testing.T) {
	topo, err := scenario.Baseline.Generate(400, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := testConfig(17, 8)
	cfg1.Parallelism = 1
	cfg8 := testConfig(17, 8)
	cfg8.Parallelism = 8
	r1, err := RunCEvents(topo, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunCEvents(topo, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalUpdates != r8.TotalUpdates {
		t.Fatalf("parallelism changed results: %v vs %v", r1.TotalUpdates, r8.TotalUpdates)
	}
	for _, typ := range topology.NodeTypes {
		if r1.ByType[typ].U != r8.ByType[typ].U {
			t.Fatalf("type %v: %v vs %v", typ, r1.ByType[typ].U, r8.ByType[typ].U)
		}
	}
}

func TestOriginsCappedAtCNodeCount(t *testing.T) {
	topo, err := scenario.Baseline.Generate(200, 19)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(19, 100000)
	res, err := RunCEvents(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Origins != topo.CountByType()[topology.C] {
		t.Fatalf("origins = %d, want capped at C count %d", res.Origins, topo.CountByType()[topology.C])
	}
}

func TestPickOriginsDistinctAndDeterministic(t *testing.T) {
	pool := make([]topology.NodeID, 50)
	for i := range pool {
		pool[i] = topology.NodeID(i)
	}
	a := pickOrigins(pool, 20, 42)
	b := pickOrigins(pool, 20, 42)
	if len(a) != 20 {
		t.Fatalf("len = %d", len(a))
	}
	seen := map[topology.NodeID]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pickOrigins not deterministic")
		}
		if seen[a[i]] {
			t.Fatal("duplicate origin")
		}
		seen[a[i]] = true
	}
	c := pickOrigins(pool, 20, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds picked identical origins")
	}
}

func TestRunCEventsErrors(t *testing.T) {
	topo, err := scenario.Baseline.Generate(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1, 0)
	if _, err := RunCEvents(topo, cfg); err == nil {
		t.Fatal("zero origins accepted")
	}
	cfg = testConfig(1, 5)
	cfg.BGP.MaxProcessingDelay = 0
	if _, err := RunCEvents(topo, cfg); err == nil {
		t.Fatal("invalid BGP config accepted")
	}
	// A topology without C nodes cannot host C-events.
	noC := &topology.Topology{NumRegions: 1, Nodes: []topology.Node{
		{ID: 0, Type: topology.T, Regions: 1},
	}}
	if _, err := RunCEvents(noC, testConfig(1, 5)); err == nil {
		t.Fatal("C-less topology accepted")
	}
}

func TestSweepSeries(t *testing.T) {
	sw, err := Sweep(scenario.Baseline, SweepConfig{
		Sizes:        []int{200, 400},
		TopologySeed: 7,
		Event:        testConfig(7, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Scenario != "BASELINE" || len(sw.Points) != 2 {
		t.Fatalf("sweep shape wrong: %+v", sw)
	}
	if xs := sw.Sizes(); xs[0] != 200 || xs[1] != 400 {
		t.Fatalf("sizes = %v", xs)
	}
	for _, series := range [][]float64{
		sw.SeriesU(topology.T),
		sw.SeriesURel(topology.T, topology.Customer),
		sw.SeriesM(topology.M, topology.Provider),
		sw.SeriesQ(topology.M, topology.Provider),
		sw.SeriesE(topology.M, topology.Provider),
	} {
		if len(series) != 2 {
			t.Fatalf("series length %d", len(series))
		}
	}
	rel := sw.RelativeU(topology.T)
	if math.Abs(rel[0]-1) > 1e-12 {
		t.Fatalf("relative series starts at %v", rel[0])
	}
	if _, err := Sweep(scenario.Baseline, SweepConfig{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestSweepProgressCallback(t *testing.T) {
	var calls []int
	_, err := Sweep(scenario.Tree, SweepConfig{
		Sizes:        []int{150, 250},
		TopologySeed: 3,
		Event:        testConfig(3, 3),
		Progress:     func(name string, n int) { calls = append(calls, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != 150 || calls[1] != 250 {
		t.Fatalf("progress calls = %v", calls)
	}
}

func TestLinkEventExperiment(t *testing.T) {
	topo, err := scenario.Baseline.Generate(500, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(29, 10)
	cfg.Kind = LinkEvent
	res, err := RunCEvents(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalUpdates <= 0 {
		t.Fatal("link events generated no churn")
	}
	// A link event at a (partially) multihomed edge disturbs less of the
	// network than a full C-event, which reaches every node twice.
	cEvent := testConfig(29, 10)
	cRes, err := RunCEvents(topo, cEvent)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalUpdates > 3*cRes.TotalUpdates {
		t.Fatalf("L-event churn %v wildly exceeds C-event churn %v", res.TotalUpdates, cRes.TotalUpdates)
	}
	if CEvent.String() != "C-event" || LinkEvent.String() != "L-event" {
		t.Fatal("event kind names")
	}
}

func TestPathExplorationAndPeakMetrics(t *testing.T) {
	topo, err := scenario.Baseline.Generate(600, 31)
	if err != nil {
		t.Fatal(err)
	}
	noW, err := RunCEvents(topo, Config{Origins: 8, BGP: bgp.DefaultConfig(31)})
	if err != nil {
		t.Fatal(err)
	}
	w, err := RunCEvents(topo, Config{Origins: 8, BGP: bgp.WRATEConfig(31)})
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range topology.NodeTypes {
		// Every node changes its best route at least twice per C-event
		// (loss + recovery).
		if noW.PathExploration[typ] < 1.9 {
			t.Errorf("type %v: exploration %v below the loss+recovery minimum", typ, noW.PathExploration[typ])
		}
	}
	// WRATE prolongs withdrawal propagation, so exploration cannot shrink.
	if w.PathExploration[topology.C] < noW.PathExploration[topology.C] {
		t.Errorf("WRATE reduced exploration at stubs: %v < %v",
			w.PathExploration[topology.C], noW.PathExploration[topology.C])
	}
	if noW.PeakRate <= 0 {
		t.Fatal("peak update rate not measured")
	}
	// The peak second concentrates a large share of the event's updates:
	// burstiness, the paper's §1 motivation.
	if noW.PeakRate < noW.TotalUpdates/100 {
		t.Errorf("peak rate %v implausibly low vs total %v", noW.PeakRate, noW.TotalUpdates)
	}
}

func TestSpreadSummaries(t *testing.T) {
	topo, err := scenario.Baseline.Generate(500, 37)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEvents(topo, testConfig(37, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range topology.NodeTypes {
		s := res.Spread[typ]
		if s.Max < s.P90 || s.P90 < s.Median {
			t.Errorf("type %v: disordered spread %+v", typ, s)
		}
		// The spread's mean must equal the headline U (same data).
		if diff := s.Mean - res.U(typ); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("type %v: spread mean %v != U %v", typ, s.Mean, res.U(typ))
		}
	}
	// Heavy-tailed degrees => the busiest T node sees far more than the
	// median T node... at least some variation must exist among stubs too.
	if res.Spread[topology.C].Max <= res.Spread[topology.C].Median {
		t.Error("no variation across C nodes, implausible")
	}
}

func TestWrateIncreasesChurn(t *testing.T) {
	// §6 in miniature at fixed size: WRATE must produce at least as many
	// updates as NO-WRATE, usually strictly more.
	topo, err := scenario.Baseline.Generate(600, 23)
	if err != nil {
		t.Fatal(err)
	}
	noW, err := RunCEvents(topo, Config{Origins: 10, BGP: bgp.DefaultConfig(23)})
	if err != nil {
		t.Fatal(err)
	}
	w, err := RunCEvents(topo, Config{Origins: 10, BGP: bgp.WRATEConfig(23)})
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalUpdates < noW.TotalUpdates {
		t.Fatalf("WRATE total %v < NO-WRATE total %v", w.TotalUpdates, noW.TotalUpdates)
	}
}
