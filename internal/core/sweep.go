package core

import (
	"fmt"

	"bgpchurn/internal/scenario"
	"bgpchurn/internal/stats"
	"bgpchurn/internal/topology"
)

// SweepConfig describes a churn-vs-size sweep for one growth scenario.
type SweepConfig struct {
	// Sizes are the network sizes to measure (the paper uses
	// 1000..10000 step 1000).
	Sizes []int
	// TopologySeed seeds topology generation; each size uses
	// TopologySeed+size so instances differ but reruns reproduce.
	TopologySeed uint64
	// Event is the per-topology C-event experiment configuration.
	Event Config
	// Progress, when non-nil, is called before each size is run.
	Progress func(scenarioName string, n int)
}

// PaperSizes returns the paper's x-axis: 1000..10000 step 1000.
func PaperSizes() []int {
	sizes := make([]int, 0, 10)
	for n := 1000; n <= 10000; n += 1000 {
		sizes = append(sizes, n)
	}
	return sizes
}

// Point is one sweep measurement.
type Point struct {
	N int
	R *Result
}

// SweepResult is the outcome of a scenario sweep: one Result per size.
type SweepResult struct {
	Scenario string
	Points   []Point
}

// Sweep generates a topology per size under the scenario and runs the
// C-event experiment on each, sequentially. On failure it returns the
// points completed so far alongside an error naming the failing
// (scenario, n) cell. See Scheduler.RunSweep for the parallel, cached
// equivalent (byte-identical output).
func Sweep(sc scenario.Scenario, cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("core: empty size list")
	}
	out := &SweepResult{Scenario: sc.Name}
	for _, n := range cfg.Sizes {
		if cfg.Progress != nil {
			cfg.Progress(sc.Name, n)
		}
		topo, err := sc.Generate(n, cfg.TopologySeed+uint64(n))
		if err != nil {
			return out, fmt.Errorf("core: %s at n=%d: %w", sc.Name, n, err)
		}
		res, err := RunCEvents(topo, cfg.Event)
		if err != nil {
			return out, fmt.Errorf("core: %s at n=%d: %w", sc.Name, n, err)
		}
		out.Points = append(out.Points, Point{N: n, R: res})
	}
	return out, nil
}

// Sizes returns the sweep's x-axis.
func (sr *SweepResult) Sizes() []float64 {
	xs := make([]float64, len(sr.Points))
	for i, p := range sr.Points {
		xs[i] = float64(p.N)
	}
	return xs
}

// SeriesU returns U(X) across sizes for one node type (Fig. 4).
func (sr *SweepResult) SeriesU(t topology.NodeType) []float64 {
	ys := make([]float64, len(sr.Points))
	for i, p := range sr.Points {
		ys[i] = p.R.ByType[t].U
	}
	return ys
}

// SeriesURel returns U_y(X) across sizes: updates received at type t nodes
// from neighbors of relation rel (Fig. 5).
func (sr *SweepResult) SeriesURel(t topology.NodeType, rel topology.Relation) []float64 {
	ys := make([]float64, len(sr.Points))
	for i, p := range sr.Points {
		ys[i] = p.R.ByType[t].ByRel[rel].U
	}
	return ys
}

// SeriesM returns the m_y(X) factor across sizes (Fig. 7 top).
func (sr *SweepResult) SeriesM(t topology.NodeType, rel topology.Relation) []float64 {
	ys := make([]float64, len(sr.Points))
	for i, p := range sr.Points {
		ys[i] = p.R.ByType[t].ByRel[rel].M
	}
	return ys
}

// SeriesQ returns the q_y(X) factor across sizes (Fig. 7 bottom).
func (sr *SweepResult) SeriesQ(t topology.NodeType, rel topology.Relation) []float64 {
	ys := make([]float64, len(sr.Points))
	for i, p := range sr.Points {
		ys[i] = p.R.ByType[t].ByRel[rel].Q
	}
	return ys
}

// SeriesE returns the e_y(X) factor across sizes (Fig. 7 middle, Fig. 12
// bottom).
func (sr *SweepResult) SeriesE(t topology.NodeType, rel topology.Relation) []float64 {
	ys := make([]float64, len(sr.Points))
	for i, p := range sr.Points {
		ys[i] = p.R.ByType[t].ByRel[rel].E
	}
	return ys
}

// RelativeU returns SeriesU normalized to its first point, the paper's
// "relative increase" form (Figs. 6, 8, 9, 11).
func (sr *SweepResult) RelativeU(t topology.NodeType) []float64 {
	return stats.RelativeSeries(sr.SeriesU(t))
}
