package core

// The determinism/race test tier. These tests are deliberately small and
// run in -short mode: they exist so `go test -race ./...` (the race tier of
// the verify pipeline, see Makefile and README) exercises every concurrent
// code path — the grid scheduler's worker pool and singleflight cache, and
// RunCEvents' origin-level parallelism — under the race detector.

import (
	"context"
	"io"
	"sync"
	"testing"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// TestRaceConcurrentSweepsShareOneCache hammers a single scheduler from
// several goroutines requesting overlapping grids: the cache must stay
// race-free, compute each unique cell once, and hand every caller
// byte-identical results.
func TestRaceConcurrentSweepsShareOneCache(t *testing.T) {
	s := NewScheduler(4)
	s.OnCell = func(CellStatus) {} // exercise the emit path too
	cfg := SweepConfig{Sizes: []int{150, 250}, TopologySeed: 13, Event: testConfig(13, 3)}

	const callers = 4
	results := make([]*SweepResult, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.RunSweep(context.Background(), scenario.Baseline, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got, want := fingerprintSweep(results[i]), fingerprintSweep(results[0]); got != want {
			t.Fatalf("caller %d saw different results", i)
		}
	}
	st := s.CacheStats()
	if st.Misses != len(cfg.Sizes) {
		t.Fatalf("computed %d cells, want %d (rest must coalesce)", st.Misses, len(cfg.Sizes))
	}
	if st.Hits != (callers-1)*len(cfg.Sizes) {
		t.Fatalf("cache hits = %d, want %d", st.Hits, (callers-1)*len(cfg.Sizes))
	}
}

// TestRaceGridAcrossScenarios runs a multi-scenario grid on a wide pool so
// distinct cells race against each other in the pool and the cache map.
func TestRaceGridAcrossScenarios(t *testing.T) {
	s := NewScheduler(8)
	ev := testConfig(17, 3)
	wrate := ev
	wrate.BGP = bgp.WRATEConfig(17)
	reqs := []GridRequest{
		{Scenario: scenario.Baseline, Sizes: []int{150, 250}, TopologySeed: 17, Event: ev},
		{Scenario: scenario.Tree, Sizes: []int{150, 250}, TopologySeed: 17, Event: ev},
		{Scenario: scenario.Baseline, Sizes: []int{150, 250}, TopologySeed: 17, Event: wrate},
	}
	out, err := s.RunGrid(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range out {
		if len(sr.Points) != 2 {
			t.Fatalf("request %d: %d points", i, len(sr.Points))
		}
	}
}

// TestRaceOnCellSerialized documents and enforces the OnCell contract: the
// scheduler serializes all OnCell invocations, so a callback may mutate
// plain (unsynchronized) state. The callback below deliberately uses a bare
// int and slice append — if two workers ever invoked OnCell concurrently,
// the race detector would flag it and the count would drift.
func TestRaceOnCellSerialized(t *testing.T) {
	s := NewScheduler(8)
	var calls int          // intentionally unsynchronized
	var states []CellState // ditto
	s.OnCell = func(cs CellStatus) {
		calls++
		states = append(states, cs.State)
	}
	ev := testConfig(23, 3)
	reqs := []GridRequest{
		{Scenario: scenario.Baseline, Sizes: []int{150, 250}, TopologySeed: 23, Event: ev},
		{Scenario: scenario.Tree, Sizes: []int{150, 250}, TopologySeed: 23, Event: ev},
	}
	if _, err := s.RunGrid(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	// 4 unique cells, each emitting a start and a done event.
	if calls != 8 || len(states) != 8 {
		t.Fatalf("OnCell fired %d times with %d recorded states, want 8/8", calls, len(states))
	}
}

// TestRaceObsScrapeDuringGrid runs a grid with instrumentation attached
// while a goroutine continuously scrapes the Prometheus exposition and
// snapshot — the reader/writer paths of the sharded counters, histograms
// and the trace ring must be race-free.
func TestRaceObsScrapeDuringGrid(t *testing.T) {
	m := obs.New()
	tr := obs.NewUpdateTrace(256)
	s := NewScheduler(4)
	s.SetObs(m)
	ev := testConfig(29, 3)
	ev.Obs = m
	ev.Trace = tr

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.WritePrometheus(io.Discard)
				m.Snapshot()
				tr.Snapshot()
			}
		}
	}()

	cfg := SweepConfig{Sizes: []int{150, 250}, TopologySeed: 29, Event: ev}
	_, err := s.RunSweep(context.Background(), scenario.Baseline, cfg)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap["bgpchurn_core_cells_computed_total"] != 2 {
		t.Fatalf("cells_computed = %v, want 2", snap["bgpchurn_core_cells_computed_total"])
	}
	if snap["bgpchurn_bgp_updates_processed_total"] <= 0 {
		t.Fatal("no BGP updates counted while instrumented")
	}
}

// TestRaceCancellationMidGrid cancels a wide grid while many workers are
// in flight: the drain path, the cancelled-cell cache removal, and the
// cancellation-latency watcher must all be race-free, and a subsequent run
// on the same scheduler must complete every cell.
func TestRaceCancellationMidGrid(t *testing.T) {
	m := obs.New()
	s := NewScheduler(8)
	s.SetObs(m)
	s.OnCell = func(CellStatus) {}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var once sync.Once
	prev := s.run
	s.run = func(ctx context.Context, topo *topology.Topology, cfg Config) (*Result, error) {
		once.Do(func() { cancel(); close(done) }) // cancel as the first cell computes
		return prev(ctx, topo, cfg)
	}
	sizes := []int{150, 170, 190, 210, 230, 250}
	_, err := s.RunGrid(ctx, []GridRequest{
		{Scenario: scenario.Baseline, Sizes: sizes, TopologySeed: 31, Event: testConfig(31, 2)},
		{Scenario: scenario.Tree, Sizes: sizes, TopologySeed: 31, Event: testConfig(31, 2)},
	})
	<-done
	if err == nil {
		t.Fatal("cancelled grid returned no error")
	}
	// The same scheduler finishes the grid under a live context; cells the
	// first pass completed are hits, cancelled ones recompute.
	out, err := s.RunGrid(context.Background(), []GridRequest{
		{Scenario: scenario.Baseline, Sizes: sizes, TopologySeed: 31, Event: testConfig(31, 2)},
		{Scenario: scenario.Tree, Sizes: sizes, TopologySeed: 31, Event: testConfig(31, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range out {
		if len(sr.Points) != len(sizes) {
			t.Fatalf("request %d incomplete after resume: %d points", i, len(sr.Points))
		}
	}
}

// TestRaceOriginParallelism drives RunCEvents' per-origin worker pool —
// the accumulator array and the per-worker Network reuse — under the race
// detector, at a worker count exceeding the origin count.
func TestRaceOriginParallelism(t *testing.T) {
	topo, err := scenario.Baseline.Generate(200, 19)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(19, 6)
	cfg.Parallelism = 8
	res, err := RunCEvents(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalUpdates <= 0 {
		t.Fatal("no updates measured")
	}
}
