package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/des"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// fingerprintSweep renders a sweep's full numeric content (Result is a
// pure value type once dereferenced), so equal fingerprints mean
// byte-identical results.
func fingerprintSweep(sw *SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", sw.Scenario)
	for _, p := range sw.Points {
		fmt.Fprintf(&b, "%d %+v\n", p.N, *p.R)
	}
	return b.String()
}

// countCalls wraps the scheduler's generate/run seams with atomic counters.
func countCalls(s *Scheduler) (gens, runs *int64) {
	gens, runs = new(int64), new(int64)
	gen, run := s.generate, s.run
	s.generate = func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error) {
		atomic.AddInt64(gens, 1)
		return gen(sc, n, seed)
	}
	s.run = func(ctx context.Context, t *topology.Topology, cfg Config) (*Result, error) {
		atomic.AddInt64(runs, 1)
		return run(ctx, t, cfg)
	}
	return gens, runs
}

func TestGridSharedSweepComputedOnce(t *testing.T) {
	// Two figures requesting the identical Baseline sweep plus one WRATE
	// request: the shared cells must be generated and simulated exactly
	// once each, and cache hits must return results equal to the misses.
	s := NewScheduler(4)
	gens, runs := countCalls(s)

	ev := testConfig(3, 4)
	wrateEv := ev
	wrateEv.BGP = bgp.WRATEConfig(3)
	sizes := []int{150, 250}
	reqs := []GridRequest{
		{Scenario: scenario.Baseline, Sizes: sizes, TopologySeed: 3, Event: ev},      // "fig 4"
		{Scenario: scenario.Baseline, Sizes: sizes, TopologySeed: 3, Event: ev},      // "fig 6", same sweep
		{Scenario: scenario.Baseline, Sizes: sizes, TopologySeed: 3, Event: wrateEv}, // "fig 12", distinct cells
	}
	out, err := s.RunGrid(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d sweep results", len(out))
	}
	const unique = 4 // 2 sizes x {NO-WRATE, WRATE}
	if got := atomic.LoadInt64(gens); got != unique {
		t.Fatalf("topology generated %d times, want %d (one per unique cell)", got, unique)
	}
	if got := atomic.LoadInt64(runs); got != unique {
		t.Fatalf("C-event experiment ran %d times, want %d (one per unique cell)", got, unique)
	}
	st := s.CacheStats()
	if st.Misses != unique || st.Hits != 2 {
		t.Fatalf("cache stats = %+v, want 4 misses / 2 hits", st)
	}
	// The shared sweep's points must be the very same results.
	for i := range out[0].Points {
		if out[0].Points[i].R != out[1].Points[i].R {
			t.Fatalf("shared cell n=%d not served from cache", out[0].Points[i].N)
		}
	}
	// WRATE cells must NOT collide with NO-WRATE cells.
	for i := range out[0].Points {
		if out[0].Points[i].R == out[2].Points[i].R {
			t.Fatalf("WRATE cell n=%d wrongly shared with NO-WRATE", out[0].Points[i].N)
		}
	}

	// A cache hit must equal a fresh miss: rerun the first request on a
	// cold scheduler and compare deeply.
	cold, err := NewScheduler(1).RunSweep(context.Background(), scenario.Baseline, SweepConfig{Sizes: sizes, TopologySeed: 3, Event: ev})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.RunSweep(context.Background(), scenario.Baseline, SweepConfig{Sizes: sizes, TopologySeed: 3, Event: ev})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(runs); got != unique {
		t.Fatalf("warm RunSweep recomputed: %d runs, want still %d", got, unique)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cache hit differs from cache miss for identical config")
	}
}

func TestShardCountExcludedFromCacheKey(t *testing.T) {
	// Results are shard-count invariant, so cells differing only in
	// BGP.Shards must dedupe to one cache entry — while LinkDelay, a model
	// parameter, must keep distinct cells distinct.
	ev := testConfig(5, 3)
	ev.BGP.LinkDelay = 10 * des.Millisecond
	sharded := ev
	sharded.BGP.Shards = 4
	classic := testConfig(5, 3) // LinkDelay 0
	if cellKey("BASELINE", 200, 5, ev) != cellKey("BASELINE", 200, 5, sharded) {
		t.Fatal("cell keys differ across shard counts")
	}
	if cellKey("BASELINE", 200, 5, ev) == cellKey("BASELINE", 200, 5, classic) {
		t.Fatal("cell keys collide across link delays")
	}

	s := NewScheduler(2)
	_, runs := countCalls(s)
	sizes := []int{150}
	out, err := s.RunGrid(context.Background(), []GridRequest{
		{Scenario: scenario.Baseline, Sizes: sizes, TopologySeed: 5, Event: ev},
		{Scenario: scenario.Baseline, Sizes: sizes, TopologySeed: 5, Event: sharded},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(runs); got != 1 {
		t.Fatalf("grid ran %d cells, want 1 (shards=1 and shards=4 share a key)", got)
	}
	if out[0].Points[0].R != out[1].Points[0].R {
		t.Fatal("sharded cell not served from the unsharded cell's cache entry")
	}
}

func TestScheduledSweepMatchesSequential(t *testing.T) {
	cfg := SweepConfig{Sizes: []int{150, 250}, TopologySeed: 11, Event: testConfig(11, 4)}
	seq, err := Sweep(scenario.Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		sched, err := NewScheduler(par).RunSweep(context.Background(), scenario.Baseline, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Byte-identical: the rendered forms must match exactly.
		want, got := fingerprintSweep(seq), fingerprintSweep(sched)
		if want != got {
			t.Fatalf("parallelism %d: scheduled sweep differs from sequential:\nseq:   %s\nsched: %s", par, want, got)
		}
	}
}

func TestSweepPartialResultsOnError(t *testing.T) {
	// Baseline at n=2 cannot host 4-6 tier-1 nodes, so that size always
	// fails; the sweep must keep the completed points and name the cell.
	sw, err := Sweep(scenario.Baseline, SweepConfig{
		Sizes: []int{150, 2}, TopologySeed: 5, Event: testConfig(5, 3),
	})
	if err == nil {
		t.Fatal("failing size not reported")
	}
	if !strings.Contains(err.Error(), "BASELINE at n=2") {
		t.Fatalf("error does not name the failing cell: %v", err)
	}
	if sw == nil || len(sw.Points) != 1 || sw.Points[0].N != 150 {
		t.Fatalf("partial results lost: %+v", sw)
	}
}

func TestGridReportsFailingCell(t *testing.T) {
	s := NewScheduler(2)
	var failed []CellStatus
	s.OnCell = func(cs CellStatus) {
		if cs.State == CellFailed {
			failed = append(failed, cs)
		}
	}
	out, err := s.RunGrid(context.Background(), []GridRequest{{
		Scenario: scenario.Baseline, Sizes: []int{150, 2, 250}, TopologySeed: 5, Event: testConfig(5, 3),
	}})
	if err == nil {
		t.Fatal("failing cell not reported")
	}
	if !strings.Contains(err.Error(), "BASELINE at n=2") {
		t.Fatalf("error does not name the failing cell: %v", err)
	}
	// The healthy cells must survive, in size order.
	if len(out) != 1 || len(out[0].Points) != 2 || out[0].Points[0].N != 150 || out[0].Points[1].N != 250 {
		t.Fatalf("partial grid results wrong: %+v", out[0])
	}
	if len(failed) != 1 || failed[0].Scenario != "BASELINE" || failed[0].N != 2 || failed[0].Err == nil {
		t.Fatalf("failure events = %+v", failed)
	}
}

func TestSchedulerProgressEvents(t *testing.T) {
	s := NewScheduler(2)
	type ev struct {
		state CellState
		n     int
	}
	var events []ev
	s.OnCell = func(cs CellStatus) { events = append(events, ev{cs.State, cs.N}) }
	var progress []int
	cfg := SweepConfig{
		Sizes: []int{150, 250}, TopologySeed: 7, Event: testConfig(7, 3),
		Progress: func(name string, n int) {
			if name != "TREE" {
				t.Errorf("progress scenario = %q", name)
			}
			progress = append(progress, n)
		},
	}
	if _, err := s.RunSweep(context.Background(), scenario.Tree, cfg); err != nil {
		t.Fatal(err)
	}
	counts := map[CellState]int{}
	for _, e := range events {
		counts[e.state]++
	}
	if counts[CellStart] != 2 || counts[CellDone] != 2 || counts[CellFailed] != 0 {
		t.Fatalf("event counts = %v", counts)
	}
	if len(progress) != 2 {
		t.Fatalf("progress calls = %v", progress)
	}
	// A second identical sweep must be all cache hits.
	events = nil
	if _, err := s.RunSweep(context.Background(), scenario.Tree, cfg); err != nil {
		t.Fatal(err)
	}
	counts = map[CellState]int{}
	for _, e := range events {
		counts[e.state]++
	}
	if counts[CellCached] != 2 || counts[CellStart] != 0 {
		t.Fatalf("warm event counts = %v", counts)
	}
}

func TestSchedulerErrorPaths(t *testing.T) {
	s := NewScheduler(1)
	if _, err := s.RunSweep(context.Background(), scenario.Baseline, SweepConfig{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := s.RunGrid(context.Background(), []GridRequest{{Scenario: scenario.Baseline}}); err == nil {
		t.Fatal("empty grid request accepted")
	}
	// Failed cells are cached too: the second request must not recompute
	// but must still return the error.
	gens, _ := countCalls(s)
	req := GridRequest{Scenario: scenario.Baseline, Sizes: []int{2}, TopologySeed: 1, Event: testConfig(1, 3)}
	_, err1 := s.RunGrid(context.Background(), []GridRequest{req})
	_, err2 := s.RunGrid(context.Background(), []GridRequest{req})
	if err1 == nil || err2 == nil {
		t.Fatal("failing cell not reported")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("cached error differs: %v vs %v", err1, err2)
	}
	if got := atomic.LoadInt64(gens); got != 1 {
		t.Fatalf("failed cell recomputed %d times", got)
	}
}

func TestCellStateStrings(t *testing.T) {
	for want, st := range map[string]CellState{
		"start": CellStart, "done": CellDone, "cached": CellCached, "failed": CellFailed,
	} {
		if st.String() != want {
			t.Errorf("%v.String() = %q", uint8(st), st.String())
		}
	}
	if CellState(99).String() == "" {
		t.Error("unknown state renders empty")
	}
}

func TestRunGridInjectedRunError(t *testing.T) {
	// Fault injection through the run seam: an error from the experiment
	// layer (not topology generation) must carry the cell name too.
	s := NewScheduler(2)
	boom := errors.New("boom")
	s.run = func(_ context.Context, topo *topology.Topology, cfg Config) (*Result, error) {
		if topo.N() >= 250 {
			return nil, boom
		}
		return RunCEvents(topo, cfg)
	}
	out, err := s.RunGrid(context.Background(), []GridRequest{{
		Scenario: scenario.Tree, Sizes: []int{150, 250}, TopologySeed: 9, Event: testConfig(9, 3),
	}})
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "TREE at n=250") {
		t.Fatalf("err = %v", err)
	}
	if len(out[0].Points) != 1 || out[0].Points[0].N != 150 {
		t.Fatalf("partial points = %+v", out[0].Points)
	}
}

// fakeCells stubs the scheduler's generate/run seams with trivial results so
// cache-mechanics tests run without simulations. Returns a per-size run
// counter.
func fakeCells(s *Scheduler) map[int]*int64 {
	runsByN := map[int]*int64{}
	s.generate = func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error) {
		return &topology.Topology{Nodes: make([]topology.Node, 1)}, nil
	}
	s.run = func(_ context.Context, topo *topology.Topology, cfg Config) (*Result, error) {
		return &Result{N: topo.N()}, nil
	}
	gen := s.generate
	s.generate = func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error) {
		if runsByN[n] == nil {
			runsByN[n] = new(int64)
		}
		atomic.AddInt64(runsByN[n], 1)
		return gen(sc, n, seed)
	}
	return runsByN
}

func TestSchedulerCacheEviction(t *testing.T) {
	s := NewScheduler(1)
	s.SetCacheLimit(2)
	runs := fakeCells(s)
	ev := testConfig(1, 1)
	sweep := func(n int) {
		t.Helper()
		if _, err := s.RunSweep(context.Background(), scenario.Baseline, SweepConfig{Sizes: []int{n}, TopologySeed: 1, Event: ev}); err != nil {
			t.Fatal(err)
		}
	}
	// Three distinct cells through a two-entry cache: the oldest is evicted.
	sweep(100)
	sweep(150)
	sweep(200)
	if st := s.CacheStats(); st.Evictions != 1 || st.Misses != 3 {
		t.Fatalf("stats after fill = %+v, want 3 misses / 1 eviction", st)
	}
	// The surviving cells are served from cache; the evicted one recomputes.
	sweep(150)
	sweep(200)
	sweep(100)
	st := s.CacheStats()
	if st.Hits != 2 {
		t.Fatalf("stats = %+v, want 2 hits for the retained cells", st)
	}
	if got := atomic.LoadInt64(runs[100]); got != 2 {
		t.Fatalf("evicted cell computed %d times, want 2", got)
	}
	// Inserting 100 above evicted the LRU victim 150, leaving {100, 200}.
	// Recency, not insertion order, decides the next victim: touch 200, then
	// insert a new cell — the older-but-untouched 100 goes, 200 survives.
	sweep(200)
	sweep(250)
	sweep(200)
	if got := atomic.LoadInt64(runs[200]); got != 1 {
		t.Fatalf("recently-used cell recomputed (%d runs), LRU order broken", got)
	}
	sweep(100)
	if got := atomic.LoadInt64(runs[100]); got != 3 {
		t.Fatalf("cell 100 computed %d times, want 3 (evicted twice)", got)
	}
}

func TestSchedulerCacheUnbounded(t *testing.T) {
	s := NewScheduler(1)
	s.SetCacheLimit(0)
	fakeCells(s)
	ev := testConfig(1, 1)
	for n := 100; n < 100+2*DefaultCacheCap; n += 1 {
		if _, err := s.RunSweep(context.Background(), scenario.Baseline, SweepConfig{Sizes: []int{n}, TopologySeed: 1, Event: ev}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.CacheStats(); st.Evictions != 0 {
		t.Fatalf("unbounded cache evicted %d entries", st.Evictions)
	}
	// Re-imposing a limit trims immediately.
	s.SetCacheLimit(10)
	st := s.CacheStats()
	if st.Evictions != 2*DefaultCacheCap-10 {
		t.Fatalf("SetCacheLimit trimmed %d entries, want %d", st.Evictions, 2*DefaultCacheCap-10)
	}
}

func TestSchedulerNeverEvictsInFlight(t *testing.T) {
	s := NewScheduler(2)
	s.SetCacheLimit(1)
	started := make(chan struct{})
	block := make(chan struct{})
	s.generate = func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error) {
		if n == 100 {
			close(started)
			<-block
		}
		return &topology.Topology{Nodes: make([]topology.Node, 1)}, nil
	}
	var runs int64
	s.run = func(_ context.Context, topo *topology.Topology, cfg Config) (*Result, error) {
		atomic.AddInt64(&runs, 1)
		return &Result{}, nil
	}
	ev := testConfig(1, 1)
	done := make(chan error, 1)
	go func() {
		_, err := s.RunSweep(context.Background(), scenario.Baseline, SweepConfig{Sizes: []int{100}, TopologySeed: 1, Event: ev})
		done <- err
	}()
	<-started
	// A second cell completes while the first is still computing. The cap is
	// 1, but the in-flight entry must survive the eviction pass.
	if _, err := s.RunSweep(context.Background(), scenario.Baseline, SweepConfig{Sizes: []int{150}, TopologySeed: 1, Event: ev}); err != nil {
		t.Fatal(err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The slow cell must still be cached: requesting it again may not rerun.
	if _, err := s.RunSweep(context.Background(), scenario.Baseline, SweepConfig{Sizes: []int{100}, TopologySeed: 1, Event: ev}); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&runs); got != 2 {
		t.Fatalf("in-flight cell was evicted and recomputed: %d runs, want 2", got)
	}
	if st := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 hit on the surviving in-flight cell", st)
	}
}
