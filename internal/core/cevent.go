// Package core implements the paper's churn experiment framework (§4): the
// C-event procedure (withdraw a prefix at a stub origin, let the network
// converge, re-announce, converge again), update counting at every node,
// and the Eq.-1 factor decomposition U(X) = Σ_y m_y·q_y·e_y over neighbor
// business relations, together with sweep machinery over network sizes and
// growth scenarios.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/des"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/rng"
	"bgpchurn/internal/stats"
	"bgpchurn/internal/topology"
)

// thePrefix is the single destination prefix used by C-events.
const thePrefix bgp.Prefix = 1

// EventKind selects the routing event an experiment measures.
type EventKind uint8

const (
	// CEvent is the paper's event: the owner withdraws the prefix, the
	// network converges, and the owner re-announces it.
	CEvent EventKind = iota
	// LinkEvent is the future-work extension: the link between the origin
	// and its first provider fails and is later restored, while the prefix
	// stays announced. Multihomed origins keep partial reachability, so
	// the churn pattern differs from a C-event.
	LinkEvent
)

// String names the event kind.
func (k EventKind) String() string {
	if k == LinkEvent {
		return "L-event"
	}
	return "C-event"
}

// Config parameterizes a C-event experiment on one topology.
type Config struct {
	// Origins is the number of distinct C-node event originators (the
	// paper uses 100; it reports that more does not change the results).
	// Capped at the number of C nodes in the topology.
	Origins int
	// BGP is the protocol configuration (MRAI variant etc.). Its Seed is
	// combined with per-origin indices so every origin's run is
	// deterministic in isolation.
	BGP bgp.Config
	// Settle is the idle time inserted after initial propagation and
	// between the DOWN and UP phases so MRAI timers expire and each phase
	// starts from a quiet network. Defaults to 2×MRAI.
	Settle des.Time
	// Parallelism bounds the number of concurrent simulations
	// (0 = GOMAXPROCS). Results are independent of this value.
	Parallelism int
	// Kind selects the routing event (default: CEvent).
	Kind EventKind
	// WarmStart skips the DES initial-propagation flood and installs the
	// converged pre-event routing state directly (bgp.Network.WarmStart).
	// The measured DOWN/UP phases then run on per-node RNG streams that the
	// flood never advanced, so results are statistically equivalent to the
	// cold path but not byte-identical; the default (false) preserves exact
	// reproducibility of existing figures. Incompatible with flap dampening,
	// whose pre-event penalties only a real flood can accrue.
	WarmStart bool
	// Obs, when non-nil, attaches instrumentation to every worker network
	// (see internal/obs). Metrics never affect results, and are excluded
	// from the scheduler's cache key for the same reason Parallelism is.
	Obs *obs.Metrics
	// Trace, when non-nil, records every processed update into the bounded
	// ring (time, from, to, prefix, kind, cause, interned path identity).
	// Meant for debugging sessions, not steady-state runs: appending takes a
	// mutex, though it never allocates. Excluded from the cache key like Obs.
	Trace *obs.UpdateTrace
	// Spans, when non-nil, enables causal tracing: every worker network is
	// run with a causal tracer attached (bgp.EnableCausalTrace), each
	// origin's DOWN and UP phases become root causes, and per-origin and
	// per-event spans — with live Eq.-1 m·q·e attribution in their Stats —
	// are appended to the recorder. Tracing never changes results (the
	// determinism tier proves byte-identical output at every shard count),
	// so Spans is excluded from the cache key like Obs and Trace.
	Spans *obs.SpanRecorder
	// CellTimeout, when positive, bounds the wall-clock time of each grid
	// cell run through the scheduler. A cell exceeding it fails with a
	// CellTimeoutError — a transient fault that is retried, then
	// quarantined. Like Parallelism it cannot change what a result is, only
	// whether it arrives, so it is excluded from the scheduler's cache key.
	// Ignored by direct RunCEvents calls (no deadline).
	CellTimeout time.Duration
}

// DefaultConfig returns the paper's experiment setup (100 origins,
// NO-WRATE) for the given seed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Origins: 100,
		BGP:     bgp.DefaultConfig(seed),
	}
}

// RelationFactors is the Eq.-1 decomposition of the updates a node type
// receives from one class of neighbors (customers, peers or providers):
// U_y(X) = m_y(X) · q_y(X) · e_y(X).
type RelationFactors struct {
	// U is the mean number of updates received from neighbors of this
	// relation per C-event.
	U float64
	// M is the mean number of neighbors of this relation (a topology
	// property; independent of the event).
	M float64
	// Q is the mean fraction of those neighbors that sent at least one
	// update during convergence.
	Q float64
	// E is the mean number of updates per active neighbor of this
	// relation.
	E float64
}

// TypeResult aggregates a C-event experiment over all nodes of one type.
type TypeResult struct {
	// Nodes is the number of nodes of this type in the topology.
	Nodes int
	// U is the mean number of updates received per node per C-event
	// (averaged over origins and nodes, as in the paper).
	U float64
	// CI95 is the 95% confidence half-width of U over origins.
	CI95 float64
	// ByRel indexes RelationFactors by topology.Relation (Customer, Peer,
	// Provider).
	ByRel [3]RelationFactors
}

// Result is the outcome of a C-event experiment on one topology.
type Result struct {
	// N is the topology size.
	N int
	// Origins is the number of C-events actually run.
	Origins int
	// ByType indexes TypeResult by topology.NodeType.
	ByType [4]TypeResult
	// TotalUpdates is the mean network-wide number of updates per C-event.
	TotalUpdates float64
	// DownSeconds and UpSeconds are the mean convergence times of the two
	// phases in virtual seconds.
	DownSeconds, UpSeconds float64
	// PathExploration[t] is the mean number of best-route changes per node
	// of type t per event — the path-exploration depth. The related work
	// the paper cites (Oliveira et al.) found exploration is less severe
	// in the core; this metric lets the claim be checked here.
	PathExploration [4]float64
	// PeakRate is the mean (over origins) of the busiest virtual second:
	// network-wide updates processed per second, a burstiness measure.
	PeakRate float64
	// Spread[t] summarizes the distribution of per-node update counts
	// within type t (each node's count first averaged over origins). The
	// paper points out the heavy-tailed degree distribution makes this
	// variation significant even when confidence intervals over origins
	// are tight.
	Spread [4]stats.Summary
}

// U returns the mean updates per C-event for a node type, the paper's main
// metric.
func (r *Result) U(t topology.NodeType) float64 { return r.ByType[t].U }

// originAccum collects one origin's contribution to the aggregate.
type originAccum struct {
	// perTypeU[t] is this origin's mean updates over nodes of type t.
	perTypeU [4]float64
	// relU/relQ/relE aggregate the factor samples: sums and sample counts.
	relUSum, relQSum, relESum [4][3]float64
	relUCnt, relQCnt, relECnt [4][3]float64
	total                     float64
	downSec, upSec            float64
	exploration               [4]float64
	peak                      float64
	// perNodeU[id] is the update count at node id for this origin.
	perNodeU []float64
}

// RunCEvents measures churn per C-event on one topology. Each of cfg.Origins
// C nodes in turn withdraws and re-announces the prefix on a fresh network
// state; update counts are collected at every node and averaged per type.
// With cfg.Kind == LinkEvent the same procedure fails and restores the
// origin's primary transit link instead.
func RunCEvents(topo *topology.Topology, cfg Config) (*Result, error) {
	return RunCEventsContext(context.Background(), topo, cfg)
}

// RunCEventsContext is RunCEvents under a context: cancellation (or a
// deadline) stops the experiment at the next origin boundary — origins
// already simulated finish normally, no new ones start — and returns
// ctx.Err(). A cancelled experiment never returns a partial Result.
func RunCEventsContext(ctx context.Context, topo *topology.Topology, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.BGP.Validate(); err != nil {
		return nil, err
	}
	if cfg.Origins <= 0 {
		return nil, fmt.Errorf("core: Origins must be positive")
	}
	if cfg.WarmStart && cfg.BGP.Dampening.Enabled {
		return nil, fmt.Errorf("core: WarmStart is incompatible with flap dampening (pre-event flap penalties require the real propagation flood)")
	}
	origins, err := chooseOrigins(topo, cfg)
	if err != nil {
		return nil, err
	}
	settle := cfg.Settle
	if settle == 0 {
		settle = 2 * cfg.BGP.MRAI
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(origins) {
		workers = len(origins)
	}

	// Streaming aggregation: per-origin accumulators are folded into the
	// reducer's running sums as origins complete, in origin-index order, so
	// peak memory is O(workers · N) scratch instead of O(origins · N) — the
	// difference between 100k-node sweeps fitting in RAM or not. Each worker
	// owns ONE accumulator, reused across its origins; the reducer's in-order
	// fold keeps every floating-point addition in the exact sequence the
	// batch reduction used, so results are byte-identical.
	red := newStreamReducer(topo, len(origins))
	errs := make([]error, len(origins))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			net := bgp.MustNew(topo, cfg.BGP)
			if cfg.Obs != nil {
				net.SetObs(cfg.Obs)
			}
			if cfg.Spans != nil {
				net.EnableCausalTrace()
			}
			if tr := cfg.Trace; tr != nil {
				net.SetUpdateHook(func(u bgp.UpdateRecord) {
					// Only fixed-size fields cross into the ring: the
					// engine-owned u.Path slice is reduced to its interned
					// identity + length, so no record can retain arena
					// storage across the per-origin Resets.
					tr.Append(obs.TraceRecord{
						T:       int64(u.Time),
						From:    int32(u.From),
						To:      int32(u.To),
						Prefix:  int32(u.Prefix),
						Kind:    uint8(u.Kind),
						PathLen: uint16(len(u.Path)),
						Cause:   uint32(u.Cause),
						PathID:  uint32(u.PathID),
					})
				})
			}
			var acc originAccum
			for idx := range next {
				if err := ctx.Err(); err != nil {
					errs[idx] = err
					red.skip(idx)
					continue
				}
				acc = originAccum{perNodeU: acc.perNodeU} // keep the buffer
				errs[idx] = runOneOrigin(net, topo, origins[idx], cfg.BGP.Seed+uint64(idx)*0x9e3779b97f4a7c15, settle, cfg, &acc)
				if errs[idx] != nil {
					red.skip(idx)
					continue
				}
				red.fold(idx, &acc)
			}
		}()
	}
	delivered := 0
feed:
	for i := range origins {
		select {
		case next <- i:
			delivered++
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if delivered < len(origins) {
		return nil, ctx.Err()
	}
	// Report the first failure by origin index, so the error is independent
	// of worker scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	return red.result(origins), nil
}

// chooseOrigins selects the event originators for one experiment: a
// deterministic sample of C nodes, preferring multihomed ones for link
// events.
func chooseOrigins(topo *topology.Topology, cfg Config) ([]topology.NodeID, error) {
	cNodes := topo.NodesOfType(topology.C)
	if len(cNodes) == 0 {
		return nil, fmt.Errorf("core: topology has no C nodes to originate C-events")
	}
	origins := pickOrigins(cNodes, cfg.Origins, cfg.BGP.Seed)
	if cfg.Kind == LinkEvent {
		// A link failure at a single-homed stub is indistinguishable from a
		// C-event; prefer multihomed origins so the event exercises partial
		// reachability, falling back to the plain sample if there are too
		// few of them.
		multi := make([]topology.NodeID, 0, len(cNodes))
		for _, id := range cNodes {
			if len(topo.Nodes[id].Providers) >= 2 {
				multi = append(multi, id)
			}
		}
		if len(multi) >= cfg.Origins || len(multi) >= len(origins) {
			origins = pickOrigins(multi, cfg.Origins, cfg.BGP.Seed)
		}
	}
	return origins, nil
}

// pickOrigins deterministically samples k distinct C nodes.
func pickOrigins(cNodes []topology.NodeID, k int, seed uint64) []topology.NodeID {
	if k > len(cNodes) {
		k = len(cNodes)
	}
	ids := append([]topology.NodeID(nil), cNodes...)
	r := rng.New(seed ^ 0xc5f1e7a3b2d4968f)
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids[:k]
}

// runOneOrigin performs the full event procedure for one originator and
// fills acc with its per-node-type statistics.
func runOneOrigin(net *bgp.Network, topo *topology.Topology, origin topology.NodeID, seed uint64, settle des.Time, cfg Config, acc *originAccum) error {
	spans := cfg.Spans
	var originWall float64
	if spans != nil {
		originWall = spans.Now()
	}
	net.Reset(seed)

	// Initial propagation: the prefix exists and the network is converged
	// and quiet before the event, as in the paper's setup. The warm path
	// installs that state directly; the cold path floods it through the DES
	// and discards the flood's churn (ResetCounters). Either way counters
	// are zero and MRAI timers idle when the event fires.
	if cfg.WarmStart {
		net.WarmStart(origin, thePrefix)
	} else {
		net.Originate(origin, thePrefix)
		net.Run()
		net.Settle(settle)
		net.ResetCounters()
	}

	down := func() error { net.WithdrawPrefix(origin, thePrefix); return nil }
	up := func() error { net.Originate(origin, thePrefix); return nil }
	downCause, upCause := bgp.CauseWithdraw, bgp.CauseAnnounce
	if cfg.Kind == LinkEvent {
		if len(topo.Nodes[origin].Providers) == 0 {
			return fmt.Errorf("core: link-event origin %d has no provider link to fail", origin)
		}
		provider := topo.Nodes[origin].Providers[0]
		down = func() error { return net.FailLink(origin, provider) }
		up = func() error { return net.RestoreLink(origin, provider) }
		downCause, upCause = bgp.CauseLinkFail, bgp.CauseLinkRestore
	}

	// DOWN: the owner withdraws the prefix (or its primary link fails).
	var eventWall float64
	if spans != nil {
		eventWall = spans.Now()
		net.BeginCause(downCause, origin)
	}
	start := net.Now()
	if err := down(); err != nil {
		return err
	}
	net.Run()
	acc.downSec = (net.Now() - start).Seconds()
	if spans != nil {
		emitEventSpan(spans, net.EndCause(), eventWall, topo.N())
	}

	net.Settle(settle)

	// UP: the owner re-announces (or the link is restored).
	if spans != nil {
		eventWall = spans.Now()
		net.BeginCause(upCause, origin)
	}
	start = net.Now()
	if err := up(); err != nil {
		return err
	}
	net.Run()
	acc.upSec = (net.Now() - start).Seconds()
	if spans != nil {
		emitEventSpan(spans, net.EndCause(), eventWall, topo.N())
	}

	acc.total = float64(net.TotalUpdates())
	acc.peak = float64(net.PeakUpdateRate())
	collect(net, topo, acc)
	if spans != nil {
		spans.Append(obs.SpanRecord{
			Level:    obs.SpanOrigin,
			Name:     fmt.Sprintf("origin %d", origin),
			StartUS:  originWall,
			DurUS:    spans.Now() - originWall,
			VStartUS: 0,
			VEndUS:   net.Now().Microseconds(),
			N:        topo.N(),
			Origin:   int64(origin),
			Stats: map[string]float64{
				"total_updates": acc.total,
				"peak_rate":     acc.peak,
				"down_s":        acc.downSec,
				"up_s":          acc.upSec,
			},
		})
	}
	return nil
}

// emitEventSpan converts one closed root cause into an event span carrying
// the live Eq.-1 attribution in its Stats.
func emitEventSpan(spans *obs.SpanRecorder, attr bgp.EventAttribution, wallStart float64, n int) {
	spans.Append(obs.SpanRecord{
		Level:    obs.SpanEvent,
		Name:     attr.Kind.String(),
		StartUS:  wallStart,
		DurUS:    spans.Now() - wallStart,
		VStartUS: attr.Start.Microseconds(),
		VEndUS:   attr.End.Microseconds(),
		N:        n,
		Origin:   int64(attr.Origin),
		Cause:    uint64(attr.Cause),
		Stats:    attr.Stats(),
	})
}

// collect reduces per-node per-neighbor counters into per-type factor
// samples for one origin.
func collect(net *bgp.Network, topo *topology.Topology, acc *originAccum) {
	var uSum, expSum [4]float64
	var nCount [4]float64
	// The buffer is worker-owned and reused across origins; every entry is
	// assigned below, so resizing without clearing is safe.
	if cap(acc.perNodeU) < topo.N() {
		acc.perNodeU = make([]float64, topo.N())
	}
	acc.perNodeU = acc.perNodeU[:topo.N()]
	for id := 0; id < topo.N(); id++ {
		nid := topology.NodeID(id)
		typ := topo.Nodes[id].Type
		expSum[typ] += float64(net.RouteChanges(nid))
		counts := net.PerNeighborCounts(nid)
		rels := net.NeighborRelations(nid)

		var relTotal, relActive, relNb [3]float64
		total := 0.0
		for j, rel := range rels {
			c := float64(counts[j])
			relNb[rel]++
			relTotal[rel] += c
			if counts[j] > 0 {
				relActive[rel]++
			}
			total += c
		}
		uSum[typ] += total
		nCount[typ]++
		acc.perNodeU[id] = total

		for rel := 0; rel < 3; rel++ {
			acc.relUSum[typ][rel] += relTotal[rel]
			acc.relUCnt[typ][rel]++
			if relNb[rel] > 0 {
				acc.relQSum[typ][rel] += relActive[rel] / relNb[rel]
				acc.relQCnt[typ][rel]++
			}
			if relActive[rel] > 0 {
				acc.relESum[typ][rel] += relTotal[rel] / relActive[rel]
				acc.relECnt[typ][rel]++
			}
		}
	}
	for t := 0; t < 4; t++ {
		if nCount[t] > 0 {
			acc.perTypeU[t] = uSum[t] / nCount[t]
			acc.exploration[t] = expSum[t] / nCount[t]
		}
	}
}

// streamReducer merges per-origin accumulators into running aggregates
// strictly in origin-index order, as origins complete. It is the streaming
// replacement for the old batch reduce: instead of holding every origin's
// accumulator (O(origins · N) floats — 80 MB at n=100k with 100 origins,
// before any simulation state), only the running sums and one per-node vector
// live at once, and per-origin state is worker-owned scratch.
//
// Determinism. Floating-point addition is not associative, so the fold
// happens in ascending origin index — exactly the iteration order the batch
// reduce used — regardless of worker completion order. Out-of-order workers
// block in fold until every earlier origin has been folded or skipped; the
// feed hands out indices in ascending order, so the worker holding index
// `next` is never itself waiting on a later one and the fold always makes
// progress. Per-origin results that feed non-accumulated outputs (the
// MeanCI input vector) are written by index, which is order-independent.
type streamReducer struct {
	mu   sync.Mutex
	cond sync.Cond
	next int // lowest origin index not yet folded or skipped

	topo *topology.Topology
	// perOriginU[t][idx] feeds stats.MeanCI; written by index, O(origins).
	perOriginU [4][]float64
	// Running sums, folded in origin-index order.
	relUSum, relQSum, relESum [4][3]float64
	relUCnt, relQCnt, relECnt [4][3]float64
	total, down, up, peak     float64
	expl                      [4]float64
	perNode                   []float64
}

func newStreamReducer(topo *topology.Topology, origins int) *streamReducer {
	r := &streamReducer{topo: topo, perNode: make([]float64, topo.N())}
	r.cond.L = &r.mu
	for t := 0; t < 4; t++ {
		r.perOriginU[t] = make([]float64, origins)
	}
	return r
}

// await blocks until every origin index below idx has been folded or
// skipped. Callers must hold r.mu.
func (r *streamReducer) await(idx int) {
	for idx != r.next {
		r.cond.Wait()
	}
}

// skip marks idx as producing no contribution (error or cancellation), so
// later folds do not wait for it. The experiment discards the Result in that
// case; skip only keeps the pipeline draining.
func (r *streamReducer) skip(idx int) {
	r.mu.Lock()
	r.await(idx)
	r.next++
	r.cond.Broadcast()
	r.mu.Unlock()
}

// fold merges one origin's accumulator into the running aggregates, in
// origin-index order.
func (r *streamReducer) fold(idx int, acc *originAccum) {
	r.mu.Lock()
	r.await(idx)
	for t := 0; t < 4; t++ {
		r.perOriginU[t][idx] = acc.perTypeU[t]
		r.expl[t] += acc.exploration[t]
		for rel := 0; rel < 3; rel++ {
			r.relUSum[t][rel] += acc.relUSum[t][rel]
			r.relUCnt[t][rel] += acc.relUCnt[t][rel]
			r.relQSum[t][rel] += acc.relQSum[t][rel]
			r.relQCnt[t][rel] += acc.relQCnt[t][rel]
			r.relESum[t][rel] += acc.relESum[t][rel]
			r.relECnt[t][rel] += acc.relECnt[t][rel]
		}
	}
	r.total += acc.total
	r.down += acc.downSec
	r.up += acc.upSec
	r.peak += acc.peak
	for id, v := range acc.perNodeU {
		r.perNode[id] += v
	}
	r.next++
	r.cond.Broadcast()
	r.mu.Unlock()
}

// result finalizes the aggregates into a Result. Call only after every
// origin folded successfully.
func (r *streamReducer) result(origins []topology.NodeID) *Result {
	topo := r.topo
	res := &Result{N: topo.N(), Origins: len(origins)}
	counts := topo.CountByType()

	// The m factors are topology properties, computed exactly.
	var mSum [4][3]float64
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		mSum[n.Type][topology.Customer] += float64(len(n.Customers))
		mSum[n.Type][topology.Peer] += float64(len(n.Peers))
		mSum[n.Type][topology.Provider] += float64(len(n.Providers))
	}

	for t := 0; t < 4; t++ {
		tr := &res.ByType[t]
		tr.Nodes = counts[t]
		tr.U, tr.CI95 = stats.MeanCI(r.perOriginU[t], 0.95)
		for rel := 0; rel < 3; rel++ {
			rf := &tr.ByRel[rel]
			if counts[t] > 0 {
				rf.M = mSum[t][rel] / float64(counts[t])
			}
			if r.relUCnt[t][rel] > 0 {
				rf.U = r.relUSum[t][rel] / r.relUCnt[t][rel]
			}
			if r.relQCnt[t][rel] > 0 {
				rf.Q = r.relQSum[t][rel] / r.relQCnt[t][rel]
			}
			if r.relECnt[t][rel] > 0 {
				rf.E = r.relESum[t][rel] / r.relECnt[t][rel]
			}
		}
	}
	k := float64(len(origins))
	res.TotalUpdates = r.total / k
	res.DownSeconds = r.down / k
	res.UpSeconds = r.up / k
	res.PeakRate = r.peak / k
	for t := 0; t < 4; t++ {
		res.PathExploration[t] = r.expl[t] / k
	}

	// Per-node means over origins, then the within-type distribution.
	var byType [4][]float64
	for id := range r.perNode {
		r.perNode[id] /= k
		typ := topo.Nodes[id].Type
		byType[typ] = append(byType[typ], r.perNode[id])
	}
	for t := 0; t < 4; t++ {
		res.Spread[t] = stats.Summarize(byType[t])
	}
	return res
}
