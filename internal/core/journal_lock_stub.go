//go:build !unix

package core

import "os"

// journalLocksSupported reports whether this platform enforces the
// exclusive journal writer lock.
const journalLocksSupported = false

// lockJournalFile is a no-op on platforms without flock: the journal opens
// normally, but concurrent writers are not excluded.
func lockJournalFile(*os.File) (held bool, err error) {
	return true, nil
}
