package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Fault taxonomy of the experiment scheduler. A cell computation can end
// three ways short of success:
//
//   - a *transient* fault (CellPanicError, CellTimeoutError): the worker
//     survived it and the scheduler may retry the cell, up to its retry
//     budget, after which the cell is quarantined (CellQuarantinedError);
//   - a *permanent* error (anything else: invalid configuration, a topology
//     that cannot host the scenario): retrying a deterministic simulation
//     with identical inputs cannot change the outcome, so the error is
//     reported immediately;
//   - a *cancellation* (the grid context was cancelled or timed out as a
//     whole): the cell is abandoned without being cached, so a resumed run
//     recomputes it.

// CellPanicError reports a panic recovered inside one cell worker: the
// panicking cell is isolated (other cells keep running) and the panic value
// and stack are preserved for the summary and manifest.
type CellPanicError struct {
	// Key names the cell whose computation panicked.
	Key CellKey
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the panic without the stack (which can be multiple KB);
// callers that want the stack read the field.
func (e *CellPanicError) Error() string {
	return fmt.Sprintf("cell %s n=%d panicked: %v", e.Key.Scenario, e.Key.N, e.Value)
}

// CellTimeoutError reports a cell that exceeded Config.CellTimeout. The
// grid keeps running; the cell counts as a transient fault (a loaded
// machine can starve one worker) and is retried, then quarantined.
type CellTimeoutError struct {
	// Key names the timed-out cell.
	Key CellKey
	// Timeout is the configured per-cell deadline.
	Timeout time.Duration
}

func (e *CellTimeoutError) Error() string {
	return fmt.Sprintf("cell %s n=%d exceeded its %v deadline", e.Key.Scenario, e.Key.N, e.Timeout)
}

// Is lets errors.Is(err, context.DeadlineExceeded) keep working on wrapped
// cell timeouts.
func (e *CellTimeoutError) Is(target error) bool { return target == context.DeadlineExceeded }

// CellQuarantinedError reports a cell whose transient faults exhausted the
// scheduler's retry budget. The cell is excluded from the sweep's points;
// every other cell of the grid still completes, and the quarantined cell is
// surfaced in the run summary and manifest instead of failing the process.
type CellQuarantinedError struct {
	// Key names the quarantined cell.
	Key CellKey
	// Attempts is the total number of computations tried (1 + retries).
	Attempts int
	// Last is the fault of the final attempt.
	Last error
}

func (e *CellQuarantinedError) Error() string {
	return fmt.Sprintf("cell %s n=%d quarantined after %d attempts: %v", e.Key.Scenario, e.Key.N, e.Attempts, e.Last)
}

// Unwrap exposes the final fault, so errors.As reaches the underlying
// CellPanicError or CellTimeoutError through the quarantine wrapper.
func (e *CellQuarantinedError) Unwrap() error { return e.Last }

// IsTransient reports whether err is a fault the scheduler may retry: a
// recovered panic or a per-cell timeout (possibly wrapped). Permanent
// errors — invalid configurations, impossible topologies — are not, and
// neither is grid-level cancellation.
func IsTransient(err error) bool {
	var pe *CellPanicError
	var te *CellTimeoutError
	return errors.As(err, &pe) || errors.As(err, &te)
}

// IsQuarantined reports whether err carries a CellQuarantinedError, i.e.
// the run completed but left one or more cells quarantined.
func IsQuarantined(err error) bool {
	var qe *CellQuarantinedError
	return errors.As(err, &qe)
}

// keyHash returns a stable 64-bit digest of a cell key (FNV-1a over its
// canonical JSON). It seeds the cell's deterministic retry-backoff RNG and
// validates journal records, so it must depend only on the key's value.
func keyHash(key CellKey) uint64 {
	b, err := json.Marshal(key)
	if err != nil {
		// CellKey is a plain value struct; Marshal cannot fail on it. Keep a
		// stable fallback anyway rather than panicking inside error handling.
		return 0
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
