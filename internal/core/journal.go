package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The cell journal is the scheduler's crash-safe checkpoint: one JSONL file
// under the run's results directory recording every successfully computed
// (CellKey, Result) pair. A restarted run replays the journal into the
// scheduler's singleflight cache (Scheduler.Resume), so only cells absent
// from the journal — never-computed, quarantined, or in flight when the
// process died — are recomputed.
//
// Crash-safety model (documented in DESIGN.md, "Failure model"):
//
//   - the file is created atomically: the header line is written to a temp
//     file in the same directory and renamed into place, so a journal path
//     either does not exist or starts with a valid header;
//   - each record is appended with a single write and fsynced, and embeds a
//     content hash (FNV-1a over the record's canonical JSON) — a torn or
//     half-flushed final line fails validation and is tolerated on load;
//   - reopening an existing journal truncates a torn final line before the
//     first append, so a crash can never leave garbage that a later append
//     would bury mid-file;
//   - corruption anywhere before the final line means the file was edited
//     or the filesystem lied, which resume must not paper over: Load
//     returns an error instead of silently dropping interior records.
//
// Checkpointing happens once per computed cell — never inside the DES event
// loop — so the kernel's zero-allocation steady state is untouched (see
// `make resume-smoke` and the journal benchguard assertion).

// journalMagic identifies the file type in the header line.
const journalMagic = "bgpchurn-cells"

// JournalVersion is the current journal layout; bump on breaking changes.
const JournalVersion = 1

// journalHeader is the first line of every journal file.
type journalHeader struct {
	Journal string `json:"journal"`
	Version int    `json:"version"`
}

// journalCell is the hashed payload of one record line.
type journalCell struct {
	Key    CellKey `json:"key"`
	Result *Result `json:"result"`
}

// journalLine is one record as stored: the payload plus its content hash.
// Cell stays a RawMessage on load so the hash is verified over the exact
// stored bytes, not a re-marshalled approximation.
type journalLine struct {
	Sum  string          `json:"sum"`
	Cell json.RawMessage `json:"cell"`
}

// JournalRecord is one replayable checkpoint: a cell key and its result.
type JournalRecord struct {
	Key    CellKey
	Result *Result
}

// cellSum hashes a record payload (FNV-1a, hex).
func cellSum(payload []byte) string {
	h := fnv.New64a()
	h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Journal is an append-only cell checkpoint writer. Safe for concurrent
// use; the scheduler appends from its worker goroutines.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	appended int
	err      error // first append failure, sticky
}

// JournalLockedError reports that a journal is already open for appending in
// another process (or another Journal in this one). Two concurrent appenders
// would interleave records and tear each other's tail repair, so the second
// opener is refused outright rather than queued.
type JournalLockedError struct {
	// Path is the contested journal file.
	Path string
}

func (e *JournalLockedError) Error() string {
	return fmt.Sprintf("core: journal %s: already locked by another writer (point each process at its own -journal path)", e.Path)
}

// JournalLocksSupported reports whether this platform enforces the
// exclusive-writer journal lock (advisory flock). Where it returns false,
// OpenJournal never fails with JournalLockedError and concurrent writers
// are not detected.
func JournalLocksSupported() bool { return journalLocksSupported }

// OpenJournal opens the journal at path for appending, creating it (and
// parent directories) with a header line if it does not exist. Creation is
// atomic: a partially created journal is never visible at path. The opener
// takes an exclusive advisory lock (flock) on the file for the life of the
// Journal; a second concurrent opener — say, a stray cmd/experiments run
// pointed at a churnd daemon's journal — fails fast with a
// *JournalLockedError instead of interleaving appends. Readers
// (LoadJournal) are unaffected: the lock is advisory and only writers take
// it. An existing journal is repaired after the lock is held: a torn final
// line left by a crash mid-append is truncated away (see
// repairJournalTail), so appends always start on a record boundary.
func OpenJournal(path string) (*Journal, error) {
	if path == "" {
		return nil, fmt.Errorf("core: empty journal path")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("core: journal: %w", err)
	}
	existed := true
	if _, err := os.Stat(path); os.IsNotExist(err) {
		existed = false
		hdr, err := json.Marshal(journalHeader{Journal: journalMagic, Version: JournalVersion})
		if err != nil {
			return nil, fmt.Errorf("core: journal: %w", err)
		}
		tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
		if err != nil {
			return nil, fmt.Errorf("core: journal: %w", err)
		}
		if _, err := tmp.Write(append(hdr, '\n')); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, fmt.Errorf("core: journal: %w", err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return nil, fmt.Errorf("core: journal: %w", err)
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return nil, fmt.Errorf("core: journal: %w", err)
		}
	} else if err != nil {
		return nil, fmt.Errorf("core: journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: journal: %w", err)
	}
	held, err := lockJournalFile(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("core: journal %s: %w", path, err)
	}
	if !held {
		f.Close()
		return nil, &JournalLockedError{Path: path}
	}
	// Repair only under the lock: a concurrent writer truncating the tail
	// while this process appends is exactly the interleaving the lock rules
	// out. The append fd is O_APPEND, so writes land at the repaired EOF.
	if existed {
		if err := repairJournalTail(path); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Journal{path: path, f: f}, nil
}

// repairJournalTail prepares an existing journal for appending: it scans to
// the last valid newline-terminated record and truncates anything after it.
// A torn final line is the expected residue of a crash mid-append; left in
// place, the next Append would concatenate onto it, burying the garbage
// mid-file where LoadJournal rightly refuses to repair — the journal would
// become permanently unloadable. Validation mirrors LoadJournal: a bad
// header or a bad line with more data after it is corruption, an error.
func repairJournalTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("core: journal: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 64<<10)
	var validEnd int64 // byte offset after the last valid terminated line
	lineNo := 0
	torn := false
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) == 0 && rerr == io.EOF {
			break
		}
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("core: journal %s: %w", path, rerr)
		}
		lineNo++
		if torn {
			// Data after a bad line: mid-file corruption, not a torn tail.
			return fmt.Errorf("core: journal %s: line %d: corrupt record before end of file", path, lineNo-1)
		}
		terminated := rerr == nil
		content := line
		if terminated {
			content = line[:len(line)-1]
		}
		if lineNo == 1 {
			// The header is created via temp+rename, so a journal either has a
			// complete valid header or is not a journal at all.
			var hdr journalHeader
			if !terminated || json.Unmarshal(content, &hdr) != nil || hdr.Journal != journalMagic {
				return fmt.Errorf("core: journal %s: invalid header", path)
			}
			if hdr.Version != JournalVersion {
				return fmt.Errorf("core: journal %s: version %d, want %d", path, hdr.Version, JournalVersion)
			}
			validEnd += int64(len(line))
			continue
		}
		ok := len(content) == 0 // blank lines are skipped by LoadJournal
		if !ok {
			_, perr := parseJournalLine(content)
			ok = perr == nil
		}
		if ok && terminated {
			validEnd += int64(len(line))
		} else {
			torn = true
		}
	}
	if lineNo == 0 {
		return fmt.Errorf("core: journal %s: empty file (missing header)", path)
	}
	if torn {
		if err := f.Truncate(validEnd); err != nil {
			return fmt.Errorf("core: journal %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("core: journal %s: %w", path, err)
		}
	}
	return nil
}

// Append checkpoints one computed cell: a single hashed JSONL line, written
// in one call and fsynced so a completed cell survives a crash immediately
// after. Append failures are sticky (see Err) and returned, but the
// scheduler treats them as non-fatal: losing a checkpoint must not fail the
// computation it checkpoints.
func (j *Journal) Append(key CellKey, res *Result) error {
	payload, err := json.Marshal(journalCell{Key: key, Result: res})
	if err != nil {
		return j.fail(fmt.Errorf("core: journal: %w", err))
	}
	line, err := json.Marshal(journalLine{Sum: cellSum(payload), Cell: payload})
	if err != nil {
		return j.fail(fmt.Errorf("core: journal: %w", err))
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.err = fmt.Errorf("core: journal: append after Close")
		return j.err
	}
	if _, err := j.f.Write(line); err != nil {
		j.err = fmt.Errorf("core: journal: %w", err)
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("core: journal: %w", err)
		return j.err
	}
	j.appended++
	return nil
}

func (j *Journal) fail(err error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = err
	}
	return err
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Appended returns the number of records written by this writer.
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Err returns the first append failure, if any. A run should surface it as
// a warning: the results are fine, but the checkpoint is incomplete.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close syncs and closes the underlying file. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil && j.err == nil {
		j.err = err
	}
	return err
}

// LoadJournal reads a journal written by Journal.Append. It returns the
// replayable records (last record wins on duplicate keys, preserving first
// appearance order) and whether a torn final line was dropped.
//
// Tolerance is deliberately asymmetric: a truncated or hash-invalid final
// line is the expected signature of a crash mid-append and is skipped,
// while a bad header or corruption before the final line means the file is
// not trustworthy and loading fails.
func LoadJournal(path string) (records []JournalRecord, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, false, fmt.Errorf("core: journal %s: %w", path, err)
		}
		return nil, false, fmt.Errorf("core: journal %s: empty file (missing header)", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Journal != journalMagic {
		return nil, false, fmt.Errorf("core: journal %s: invalid header", path)
	}
	if hdr.Version != JournalVersion {
		return nil, false, fmt.Errorf("core: journal %s: version %d, want %d", path, hdr.Version, JournalVersion)
	}

	byKey := map[CellKey]int{} // key -> index in records, for last-wins dedup
	lineNo := 1
	var pendingErr error // a bad line is only an error if another line follows
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			return nil, false, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := parseJournalLine(line)
		if err != nil {
			pendingErr = fmt.Errorf("core: journal %s: line %d: %w", path, lineNo, err)
			continue
		}
		if i, ok := byKey[rec.Key]; ok {
			records[i] = rec
			continue
		}
		byKey[rec.Key] = len(records)
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("core: journal %s: %w", path, err)
	}
	if pendingErr != nil {
		// The bad line was the last one: a torn append, tolerated.
		return records, true, nil
	}
	return records, false, nil
}

// parseJournalLine validates and decodes one record line.
func parseJournalLine(line []byte) (JournalRecord, error) {
	var jl journalLine
	if err := json.Unmarshal(line, &jl); err != nil {
		return JournalRecord{}, fmt.Errorf("unparseable record: %w", err)
	}
	if len(jl.Cell) == 0 {
		return JournalRecord{}, fmt.Errorf("record without cell payload")
	}
	if got := cellSum(jl.Cell); got != jl.Sum {
		return JournalRecord{}, fmt.Errorf("content hash mismatch (stored %s, computed %s)", jl.Sum, got)
	}
	var cell journalCell
	if err := json.Unmarshal(jl.Cell, &cell); err != nil {
		return JournalRecord{}, fmt.Errorf("unparseable cell payload: %w", err)
	}
	if cell.Result == nil {
		return JournalRecord{}, fmt.Errorf("record without result")
	}
	return JournalRecord{Key: cell.Key, Result: cell.Result}, nil
}
