package core

import (
	"fmt"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/des"
	"bgpchurn/internal/rng"
	"bgpchurn/internal/topology"
)

// Session-reset experiments (R-events). The paper's introduction lists
// session resets among the events that generate routing updates; unlike a
// C-event, a reset's churn scales with the number of prefixes carried over
// the session, because the whole table is withdrawn and re-exchanged. This
// extension quantifies that scaling.

// SessionResetConfig parameterizes an R-event experiment.
type SessionResetConfig struct {
	// Prefixes is the number of prefixes announced (each from a distinct C
	// node) before any session is reset. Capped at the C population.
	Prefixes int
	// Sessions is the number of core transit sessions (a T node and one of
	// its M customers) to reset, each on a restored network.
	Sessions int
	// BGP is the protocol configuration.
	BGP bgp.Config
	// Settle is the quiet time before each reset (default 2×MRAI).
	Settle des.Time
}

// DefaultSessionResetConfig returns a 20-prefix, 10-session experiment.
func DefaultSessionResetConfig(seed uint64) SessionResetConfig {
	return SessionResetConfig{
		Prefixes: 20,
		Sessions: 10,
		BGP:      bgp.DefaultConfig(seed),
	}
}

// SessionResetResult aggregates an R-event experiment.
type SessionResetResult struct {
	// Prefixes and Sessions echo the configuration (after capping).
	Prefixes, Sessions int
	// MeanUpdates is the mean network-wide updates per session reset
	// (teardown + re-establishment until quiescence).
	MeanUpdates float64
	// MeanUpdatesPerPrefix is MeanUpdates / Prefixes, the per-prefix reset
	// cost; roughly flat in Prefixes when churn scales linearly.
	MeanUpdatesPerPrefix float64
	// MeanSeconds is the mean virtual time to full recovery.
	MeanSeconds float64
}

// RunSessionResets announces cfg.Prefixes prefixes, lets the network
// converge, then fails and immediately restores sampled T-M core sessions,
// measuring the churn of each full table re-exchange.
func RunSessionResets(topo *topology.Topology, cfg SessionResetConfig) (*SessionResetResult, error) {
	if err := cfg.BGP.Validate(); err != nil {
		return nil, err
	}
	if cfg.Prefixes < 1 {
		return nil, fmt.Errorf("core: Prefixes must be positive")
	}
	if cfg.Sessions < 1 {
		return nil, fmt.Errorf("core: Sessions must be positive")
	}
	cNodes := topo.NodesOfType(topology.C)
	if len(cNodes) == 0 {
		return nil, fmt.Errorf("core: topology has no C nodes")
	}
	sessions := coreSessions(topo)
	if len(sessions) == 0 {
		return nil, fmt.Errorf("core: topology has no T-M transit sessions")
	}
	settle := cfg.Settle
	if settle == 0 {
		settle = 2 * cfg.BGP.MRAI
	}

	r := rng.New(cfg.BGP.Seed ^ 0x7be4d19f2ca8530b)
	nPrefixes := cfg.Prefixes
	if nPrefixes > len(cNodes) {
		nPrefixes = len(cNodes)
	}
	origins := pickOrigins(cNodes, nPrefixes, cfg.BGP.Seed)
	r.Shuffle(len(sessions), func(i, j int) { sessions[i], sessions[j] = sessions[j], sessions[i] })
	nSessions := cfg.Sessions
	if nSessions > len(sessions) {
		nSessions = len(sessions)
	}

	net := bgp.MustNew(topo, cfg.BGP)
	for i, origin := range origins {
		net.Originate(origin, bgp.Prefix(i+1))
	}
	net.Run()
	net.Settle(settle)

	var totalUpdates, totalSeconds float64
	for s := 0; s < nSessions; s++ {
		link := sessions[s]
		net.ResetCounters()
		start := net.Now()
		if err := net.FailLink(link[0], link[1]); err != nil {
			return nil, err
		}
		// Immediate re-establishment: the reset, not a sustained outage.
		if err := net.RestoreLink(link[0], link[1]); err != nil {
			return nil, err
		}
		net.Run()
		totalUpdates += float64(net.TotalUpdates())
		totalSeconds += (net.Now() - start).Seconds()
		net.Settle(settle)
	}

	res := &SessionResetResult{
		Prefixes:    nPrefixes,
		Sessions:    nSessions,
		MeanUpdates: totalUpdates / float64(nSessions),
		MeanSeconds: totalSeconds / float64(nSessions),
	}
	res.MeanUpdatesPerPrefix = res.MeanUpdates / float64(nPrefixes)
	return res, nil
}

// coreSessions lists every transit link whose provider end is a T node and
// whose customer end is an M node — the sessions whose resets hurt most.
func coreSessions(topo *topology.Topology) [][2]topology.NodeID {
	var out [][2]topology.NodeID
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if n.Type != topology.T {
			continue
		}
		for _, c := range n.Customers {
			if topo.Nodes[c].Type == topology.M {
				out = append(out, [2]topology.NodeID{n.ID, c})
			}
		}
	}
	return out
}
