package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bgpchurn/internal/rng"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// fakeGrid installs trivial generate/run seams (no real simulation) where
// run delegates to fn per cell size.
func fakeGrid(s *Scheduler, fn func(ctx context.Context, n int) (*Result, error)) {
	s.generate = func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error) {
		return &topology.Topology{Nodes: make([]topology.Node, n)}, nil
	}
	s.run = func(ctx context.Context, topo *topology.Topology, cfg Config) (*Result, error) {
		return fn(ctx, topo.N())
	}
}

func gridReq(sizes ...int) []GridRequest {
	return []GridRequest{{
		Scenario: scenario.Baseline, Sizes: sizes, TopologySeed: 1, Event: testConfig(1, 2),
	}}
}

func TestPanicIsolatedAndTyped(t *testing.T) {
	// A panic in one concurrent cell worker must not take the grid down:
	// it surfaces as a CellQuarantinedError wrapping a CellPanicError with
	// the cell key and a captured stack, and every other cell completes.
	s := NewScheduler(4)
	fakeGrid(s, func(_ context.Context, n int) (*Result, error) {
		if n == 2 {
			panic("injected fault")
		}
		return &Result{N: n}, nil
	})
	out, err := s.RunGrid(context.Background(), gridReq(1, 2, 3, 4))
	if err == nil {
		t.Fatal("panicking cell reported no error")
	}
	var qe *CellQuarantinedError
	if !errors.As(err, &qe) {
		t.Fatalf("error is not a quarantine: %T %v", err, err)
	}
	var pe *CellPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("quarantine does not wrap the panic: %v", err)
	}
	if pe.Key.N != 2 || pe.Value != "injected fault" {
		t.Fatalf("panic error = %+v", pe)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatal("panic stack not captured")
	}
	if !IsQuarantined(err) || IsTransient(pe) != true {
		t.Fatal("fault classification helpers disagree")
	}
	// The three healthy cells all completed.
	if len(out) != 1 || len(out[0].Points) != 3 {
		t.Fatalf("healthy cells lost: %+v", out[0])
	}
	for i, n := range []int{1, 3, 4} {
		if out[0].Points[i].N != n {
			t.Fatalf("points = %+v", out[0].Points)
		}
	}
}

func TestRetryThenSucceedDeterministicSchedule(t *testing.T) {
	// A transiently failing cell is recomputed on the retry budget and the
	// eventual success is reported with its attempt count; the backoff
	// schedule is a pure function of the cell key.
	s := NewScheduler(2)
	s.SetRetryPolicy(3, time.Microsecond)
	var attempts atomic.Int64
	fakeGrid(s, func(_ context.Context, n int) (*Result, error) {
		if n == 2 && attempts.Add(1) <= 2 {
			panic(fmt.Sprintf("flaky attempt %d", attempts.Load()))
		}
		return &Result{N: n}, nil
	})
	var events []CellStatus
	s.OnCell = func(cs CellStatus) {
		if cs.N == 2 {
			events = append(events, cs)
		}
	}
	out, err := s.RunGrid(context.Background(), gridReq(1, 2, 3))
	if err != nil {
		t.Fatalf("retry did not recover the cell: %v", err)
	}
	if len(out[0].Points) != 3 {
		t.Fatalf("points = %+v", out[0].Points)
	}
	var retried, done int
	for _, e := range events {
		switch e.State {
		case CellRetried:
			retried++
			if e.Attempt != retried {
				t.Fatalf("retry event attempt = %d, want %d", e.Attempt, retried)
			}
			if !IsTransient(e.Err) {
				t.Fatalf("retry event err = %v", e.Err)
			}
		case CellDone:
			done++
			if e.Attempt != 3 {
				t.Fatalf("done event attempt = %d, want 3", e.Attempt)
			}
		}
	}
	if retried != 2 || done != 1 {
		t.Fatalf("events: retried=%d done=%d, want 2 and 1", retried, done)
	}
	st := s.CacheStats()
	if st.Retries != 2 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// The jittered backoff schedule derives from the cell key alone.
	key := cellKey("BASELINE", 2, 1, testConfig(1, 2))
	sched := func() []time.Duration {
		r := rng.New(keyHash(key) ^ retrySeedSalt)
		var out []time.Duration
		for a := 1; a <= 3; a++ {
			out = append(out, retryDelay(r, DefaultRetryBackoff, a))
		}
		return out
	}
	a, b := sched(), sched()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry schedule not deterministic: %v vs %v", a, b)
		}
		lo := DefaultRetryBackoff << uint(i) / 2
		hi := DefaultRetryBackoff << uint(i)
		if a[i] < lo || a[i] > hi {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, a[i], lo, hi)
		}
	}
}

func TestQuarantineAfterBudgetAndCached(t *testing.T) {
	s := NewScheduler(2)
	s.SetRetryPolicy(1, time.Microsecond)
	var runs atomic.Int64
	fakeGrid(s, func(_ context.Context, n int) (*Result, error) {
		if n == 2 {
			runs.Add(1)
			panic("always broken")
		}
		return &Result{N: n}, nil
	})
	var quarEvents []CellStatus
	s.OnCell = func(cs CellStatus) {
		if cs.State == CellQuarantined {
			quarEvents = append(quarEvents, cs)
		}
	}
	_, err := s.RunGrid(context.Background(), gridReq(1, 2, 3))
	if !IsQuarantined(err) {
		t.Fatalf("want quarantine, got %v", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("cell computed %d times, want 1 + 1 retry", got)
	}
	if len(quarEvents) != 1 || quarEvents[0].Attempt != 2 {
		t.Fatalf("quarantine events = %+v", quarEvents)
	}
	q := s.Quarantined()
	if len(q) != 1 || q[0].Key.N != 2 || q[0].Attempts != 2 {
		t.Fatalf("Quarantined() = %+v", q)
	}
	st := s.CacheStats()
	if st.Quarantined != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// The quarantine is cached: re-requesting the cell must not recompute.
	_, err2 := s.RunGrid(context.Background(), gridReq(2))
	if !IsQuarantined(err2) {
		t.Fatalf("second request: %v", err2)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("quarantined cell recomputed (runs=%d)", got)
	}
}

func TestCellTimeoutIsTransient(t *testing.T) {
	s := NewScheduler(1)
	ev := testConfig(1, 2)
	ev.CellTimeout = 5 * time.Millisecond
	fakeGrid(s, func(ctx context.Context, n int) (*Result, error) {
		if n == 2 {
			<-ctx.Done() // simulate a stuck cell honoring the deadline
			return nil, ctx.Err()
		}
		return &Result{N: n}, nil
	})
	out, err := s.RunGrid(context.Background(), []GridRequest{{
		Scenario: scenario.Baseline, Sizes: []int{1, 2, 3}, TopologySeed: 1, Event: ev,
	}})
	if !IsQuarantined(err) {
		t.Fatalf("want quarantined timeout, got %v", err)
	}
	var te *CellTimeoutError
	if !errors.As(err, &te) || te.Timeout != ev.CellTimeout {
		t.Fatalf("want CellTimeoutError with the configured deadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("timeout does not satisfy errors.Is(context.DeadlineExceeded)")
	}
	if len(out[0].Points) != 2 {
		t.Fatalf("other cells lost: %+v", out[0].Points)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	s := NewScheduler(1)
	s.SetRetryPolicy(5, time.Microsecond)
	var runs atomic.Int64
	fakeGrid(s, func(_ context.Context, n int) (*Result, error) {
		runs.Add(1)
		return nil, errors.New("bad configuration")
	})
	_, err := s.RunGrid(context.Background(), gridReq(7))
	if err == nil || !strings.Contains(err.Error(), "BASELINE at n=7") {
		t.Fatalf("err = %v", err)
	}
	if IsTransient(err) || IsQuarantined(err) {
		t.Fatal("permanent error misclassified")
	}
	if runs.Load() != 1 {
		t.Fatalf("permanent error retried %d times", runs.Load()-1)
	}
}

func TestCancellationMidGrid(t *testing.T) {
	// Cancel after the first computed cell: the grid drains without
	// computing everything, the error is the context's, and cancelled
	// cells are NOT cached — a rerun with a live context completes them.
	s := NewScheduler(1)
	ctx, cancel := context.WithCancel(context.Background())
	var runs atomic.Int64
	fakeGrid(s, func(_ context.Context, n int) (*Result, error) {
		if runs.Add(1) == 1 {
			cancel()
		}
		return &Result{N: n}, nil
	})
	out, err := s.RunGrid(ctx, gridReq(1, 2, 3, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	computed := runs.Load()
	if computed >= 4 {
		t.Fatalf("cancellation did not stop scheduling (computed %d)", computed)
	}
	if len(out) != 1 {
		t.Fatalf("out = %+v", out)
	}
	st := s.CacheStats()
	if st.Cancelled == 0 {
		t.Fatalf("no cancelled cells recorded: %+v", st)
	}

	// Fresh context: the missing cells compute, completed ones are hits.
	out2, err := s.RunGrid(context.Background(), gridReq(1, 2, 3, 4))
	if err != nil {
		t.Fatalf("rerun failed: %v", err)
	}
	if len(out2[0].Points) != 4 {
		t.Fatalf("rerun points = %+v", out2[0].Points)
	}
	if runs.Load() != 4 {
		t.Fatalf("rerun computed %d total, want exactly 4 (no recomputation of done cells)", runs.Load())
	}
}

func TestResumeGrowsCacheCapToFitJournal(t *testing.T) {
	// A journal larger than the cache cap must not evict the cells it just
	// seeded — that would silently recompute the head of the grid and defeat
	// the resume.
	s := NewScheduler(2)
	s.SetCacheLimit(2)
	var runs atomic.Int64
	fakeGrid(s, func(_ context.Context, n int) (*Result, error) {
		runs.Add(1)
		return &Result{N: n}, nil
	})
	var recs []JournalRecord
	sizes := make([]int, 6)
	for i := range sizes {
		n := i + 1
		sizes[i] = n
		recs = append(recs, JournalRecord{
			Key:    cellKey("BASELINE", n, 1, testConfig(1, 2)),
			Result: &Result{N: n},
		})
	}
	if got := s.Resume(recs); got != 6 {
		t.Fatalf("Resume seeded %d, want 6", got)
	}
	out, err := s.RunGrid(context.Background(), gridReq(sizes...))
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 0 {
		t.Fatalf("resume over the cache cap recomputed %d cells", runs.Load())
	}
	if len(out[0].Points) != 6 {
		t.Fatalf("points = %+v", out[0].Points)
	}
	st := s.CacheStats()
	if st.Resumed != 6 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryDelayLargeAttemptDoesNotOverflow(t *testing.T) {
	// base << (attempt-1) overflows int64 around attempt 34 at the default
	// base; the delay must saturate at maxRetryBackoff, never collapse to a
	// near-zero hot-loop value.
	r := rng.New(1)
	for _, attempt := range []int{33, 34, 64, 1000} {
		d := retryDelay(r, DefaultRetryBackoff, attempt)
		if d < maxRetryBackoff/2 || d > maxRetryBackoff {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, maxRetryBackoff/2, maxRetryBackoff)
		}
	}
	// A base above the cap is respected rather than clamped below itself.
	if d := retryDelay(rng.New(1), 2*maxRetryBackoff, 5); d < maxRetryBackoff {
		t.Fatalf("large-base delay %v fell below its own base", d)
	}
}

func TestCoalescedWaiterSurvivesForeignCancellation(t *testing.T) {
	// Two grids share a scheduler and request the same cell. Grid A starts
	// computing it and is cancelled mid-flight; grid B, which coalesced onto
	// A's in-flight entry, must not inherit A's cancellation error as a
	// cache hit — it recomputes under its own live context and succeeds.
	s := NewScheduler(2)
	var calls atomic.Int64
	started := make(chan struct{})
	fakeGrid(s, func(ctx context.Context, n int) (*Result, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return &Result{N: n}, nil
	})

	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := s.RunGrid(ctxA, gridReq(7))
		aDone <- err
	}()
	<-started

	type bOut struct {
		res []*SweepResult
		err error
	}
	bDone := make(chan bOut, 1)
	go func() {
		res, err := s.RunGrid(context.Background(), gridReq(7))
		bDone <- bOut{res, err}
	}()
	// Wait until B has coalesced onto A's in-flight entry (the hit is
	// counted before B blocks on the entry), then cancel A.
	deadline := time.Now().Add(5 * time.Second)
	for s.CacheStats().Hits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("grid B never coalesced onto the in-flight cell")
		}
		time.Sleep(time.Millisecond)
	}
	cancelA()

	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("grid A: want context.Canceled, got %v", err)
	}
	b := <-bDone
	if b.err != nil {
		t.Fatalf("grid B inherited the foreign cancellation: %v", b.err)
	}
	if len(b.res[0].Points) != 1 || b.res[0].Points[0].R.N != 7 {
		t.Fatalf("grid B points = %+v", b.res[0].Points)
	}
	if calls.Load() != 2 {
		t.Fatalf("cell computed %d times, want 2 (A's abandoned + B's recompute)", calls.Load())
	}
	st := s.CacheStats()
	if st.Hits != 0 {
		t.Fatalf("aborted coalesce still counted as a hit: %+v", st)
	}
	if st.Misses != 2 || st.Cancelled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResumeServesCellsWithoutRecompute(t *testing.T) {
	// First run journals every computed cell; a fresh scheduler resumes
	// from the journal and must serve the whole grid as CellResumed hits
	// with identical results and zero computations.
	dir := t.TempDir()
	path := filepath.Join(dir, "cells.journal")

	mkResult := func(n int) *Result {
		return &Result{N: n, TotalUpdates: float64(n) / 3.0}
	}
	s1 := NewScheduler(2)
	fakeGrid(s1, func(_ context.Context, n int) (*Result, error) { return mkResult(n), nil })
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	s1.SetJournal(j)
	first, err := s1.RunGrid(context.Background(), gridReq(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if j.Appended() != 3 {
		t.Fatalf("journal has %d cells, want 3", j.Appended())
	}
	j.Close()

	s2 := NewScheduler(2)
	var runs atomic.Int64
	fakeGrid(s2, func(_ context.Context, n int) (*Result, error) {
		runs.Add(1)
		return mkResult(n), nil
	})
	recs, truncated, err := LoadJournal(path)
	if err != nil || truncated {
		t.Fatalf("load: truncated=%v err=%v", truncated, err)
	}
	if got := s2.Resume(recs); got != 3 {
		t.Fatalf("Resume seeded %d, want 3", got)
	}
	var resumed int
	s2.OnCell = func(cs CellStatus) {
		if cs.State == CellResumed {
			resumed++
		}
	}
	second, err := s2.RunGrid(context.Background(), gridReq(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 0 {
		t.Fatalf("resumed run recomputed %d cells", runs.Load())
	}
	if resumed != 3 {
		t.Fatalf("resumed events = %d, want 3", resumed)
	}
	st := s2.CacheStats()
	if st.Hits != 3 || st.Resumed != 3 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i := range first[0].Points {
		if *first[0].Points[i].R != *second[0].Points[i].R {
			t.Fatalf("resumed result differs at n=%d", first[0].Points[i].N)
		}
	}

	// Resume must not clobber keys already in the cache.
	if got := s2.Resume(recs); got != 0 {
		t.Fatalf("second Resume seeded %d, want 0", got)
	}
}
