// Package graph provides the graph algorithms used to build and validate
// AS-level topologies: breadth-first search, connected components, local
// clustering, average path length, degree statistics, cycle detection on the
// provider hierarchy, and customer-cone computation.
//
// Nodes are dense integer indexes 0..n-1. Undirected graphs are adjacency
// lists; directed graphs (the provider→customer hierarchy) use out-edge
// lists. The package has no dependency on the topology representation so it
// can be tested in isolation.
package graph

import "math"

// Undirected is an undirected graph in adjacency-list form. Adj[u] lists the
// neighbors of u; every edge {u,v} must appear in both Adj[u] and Adj[v].
type Undirected struct {
	Adj [][]int32
}

// NewUndirected returns an empty undirected graph with n nodes.
func NewUndirected(n int) *Undirected {
	return &Undirected{Adj: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Undirected) N() int { return len(g.Adj) }

// AddEdge inserts the undirected edge {u, v}. It does not check for
// duplicates; callers that need simple graphs deduplicate themselves.
func (g *Undirected) AddEdge(u, v int32) {
	g.Adj[u] = append(g.Adj[u], v)
	g.Adj[v] = append(g.Adj[v], u)
}

// Edges returns the number of undirected edges.
func (g *Undirected) Edges() int {
	total := 0
	for _, nb := range g.Adj {
		total += len(nb)
	}
	return total / 2
}

// Degree returns the degree of node u.
func (g *Undirected) Degree(u int32) int { return len(g.Adj[u]) }

// BFSDistances returns the hop distance from src to every node, with -1 for
// unreachable nodes. The scratch queue is reallocated per call; use
// BFSDistancesInto on hot paths.
func (g *Undirected) BFSDistances(src int32) []int32 {
	dist := make([]int32, g.N())
	queue := make([]int32, 0, g.N())
	g.BFSDistancesInto(src, dist, queue)
	return dist
}

// BFSDistancesInto is BFSDistances writing into caller-provided storage.
// dist must have length N; queue is scratch with any length (capacity is
// grown as needed).
func (g *Undirected) BFSDistancesInto(src int32, dist []int32, queue []int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
}

// ConnectedComponents labels every node with a component id (0-based, in
// discovery order) and returns the labels and the component count.
func (g *Undirected) ConnectedComponents() (labels []int32, count int) {
	labels = make([]int32, g.N())
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := int32(0); int(s) < g.N(); s++ {
		if labels[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Adj[u] {
				if labels[v] < 0 {
					labels[v] = id
					queue = append(queue, v)
				}
			}
		}
	}
	return labels, count
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph is considered connected).
func (g *Undirected) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// LocalClustering returns the clustering coefficient of node u: the fraction
// of pairs of u's neighbors that are themselves adjacent. Nodes with degree
// < 2 have coefficient 0. neighborSet is scratch of length N (reset cheaply
// between calls using the epoch trick by the caller via ClusteringCoefficient).
func (g *Undirected) LocalClustering(u int32) float64 {
	nb := g.Adj[u]
	k := len(nb)
	if k < 2 {
		return 0
	}
	inNb := make(map[int32]struct{}, k)
	for _, v := range nb {
		inNb[v] = struct{}{}
	}
	links := 0
	for _, v := range nb {
		for _, w := range g.Adj[v] {
			if w == u || w == v {
				continue
			}
			if _, ok := inNb[w]; ok {
				links++
			}
		}
	}
	// Each neighbor-neighbor edge was counted twice (once from each side).
	return float64(links) / float64(k*(k-1))
}

// ClusteringCoefficient returns the graph's average local clustering
// coefficient over nodes of degree >= 2 (the convention of the Internet
// topology literature, matching the paper's "about 0.15" measurement:
// degree-0/1 nodes have no neighbor pairs, so including them as zeros would
// only dilute the measure with the stub population).
func (g *Undirected) ClusteringCoefficient() float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	eligible := 0
	// Epoch-marked membership array: mark[v] == u+1 means v is a neighbor
	// of the node currently being processed.
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	sum := 0.0
	for u := int32(0); int(u) < n; u++ {
		nb := g.Adj[u]
		k := len(nb)
		if k < 2 {
			continue
		}
		eligible++
		for _, v := range nb {
			mark[v] = u
		}
		links := 0
		for _, v := range nb {
			for _, w := range g.Adj[v] {
				if w != u && mark[w] == u {
					links++
				}
			}
		}
		sum += float64(links) / float64(k*(k-1))
	}
	if eligible == 0 {
		return 0
	}
	return sum / float64(eligible)
}

// AveragePathLength returns the mean hop distance over all reachable ordered
// node pairs, computed by BFS from every node. Unreachable pairs are
// excluded. For large graphs prefer SampledAveragePathLength.
func (g *Undirected) AveragePathLength() float64 {
	return g.averagePathLength(allSources(g.N()))
}

// SampledAveragePathLength estimates the average path length using BFS from
// the given source nodes only. It is exact when sources covers all nodes.
func (g *Undirected) SampledAveragePathLength(sources []int32) float64 {
	return g.averagePathLength(sources)
}

func allSources(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

func (g *Undirected) averagePathLength(sources []int32) float64 {
	n := g.N()
	if n < 2 || len(sources) == 0 {
		return 0
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	var total, pairs int64
	for _, src := range sources {
		g.BFSDistancesInto(src, dist, queue)
		for v, d := range dist {
			if d > 0 && int32(v) != src {
				total += int64(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}

// Assortativity returns the Pearson correlation of degrees across edges
// (Newman's r). The AS-level Internet is strongly disassortative (r < 0):
// high-degree providers connect predominantly to low-degree stubs. Returns
// 0 for graphs with no edges or no degree variance.
func (g *Undirected) Assortativity() float64 {
	var m float64
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for u := range g.Adj {
		du := float64(len(g.Adj[u]))
		for _, v := range g.Adj[u] {
			// Each undirected edge contributes both (du,dv) and (dv,du),
			// which symmetrizes the correlation as Newman prescribes.
			dv := float64(len(g.Adj[v]))
			sumXY += du * dv
			sumX += du
			sumY += dv
			sumX2 += du * du
			sumY2 += dv * dv
			m++
		}
	}
	if m == 0 {
		return 0
	}
	num := sumXY/m - (sumX/m)*(sumY/m)
	den := math.Sqrt((sumX2/m - (sumX/m)*(sumX/m)) * (sumY2/m - (sumY/m)*(sumY/m)))
	if den == 0 {
		return 0
	}
	return num / den
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Undirected) DegreeHistogram() []int {
	maxDeg := 0
	for _, nb := range g.Adj {
		if len(nb) > maxDeg {
			maxDeg = len(nb)
		}
	}
	counts := make([]int, maxDeg+1)
	for _, nb := range g.Adj {
		counts[len(nb)]++
	}
	return counts
}

// DegreeCCDF returns, for each degree d present, P(Degree >= d) as parallel
// slices (degrees ascending). Used to eyeball the power-law property.
func (g *Undirected) DegreeCCDF() (degrees []int, ccdf []float64) {
	hist := g.DegreeHistogram()
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	remaining := n
	for d, c := range hist {
		if c == 0 {
			continue
		}
		degrees = append(degrees, d)
		ccdf = append(ccdf, float64(remaining)/float64(n))
		remaining -= c
	}
	return degrees, ccdf
}

// Directed is a directed graph in out-edge adjacency form, used for the
// provider→customer hierarchy.
type Directed struct {
	Out [][]int32
}

// NewDirected returns an empty directed graph with n nodes.
func NewDirected(n int) *Directed {
	return &Directed{Out: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Directed) N() int { return len(g.Out) }

// AddEdge inserts the directed edge u→v.
func (g *Directed) AddEdge(u, v int32) {
	g.Out[u] = append(g.Out[u], v)
}

// HasCycle reports whether the directed graph contains a cycle, using
// iterative three-color DFS. The paper's hierarchy property requires the
// provider→customer relation to be acyclic ("no provider loops").
func (g *Directed) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, g.N())
	type frame struct {
		node int32
		next int
	}
	var stack []frame
	for s := int32(0); int(s) < g.N(); s++ {
		if color[s] != white {
			continue
		}
		color[s] = gray
		stack = append(stack[:0], frame{node: s})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.next < len(g.Out[top.node]) {
				v := g.Out[top.node][top.next]
				top.next++
				switch color[v] {
				case gray:
					return true
				case white:
					color[v] = gray
					stack = append(stack, frame{node: v})
				}
			} else {
				color[top.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false
}

// Reachable returns the set of nodes reachable from src (excluding src
// itself unless it lies on a cycle through src) as a boolean mask of length
// N. For the provider→customer graph this is the customer cone of src.
func (g *Directed) Reachable(src int32) []bool {
	seen := make([]bool, g.N())
	g.ReachableInto(src, seen, nil)
	return seen
}

// ReachableInto computes Reachable into caller-provided storage. seen must
// have length N and be all-false (or the caller clears it); queue is
// scratch. src itself is not marked unless reachable via a cycle.
func (g *Directed) ReachableInto(src int32, seen []bool, queue []int32) {
	queue = append(queue[:0], src)
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range g.Out[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
}

// ConeSizes returns, for every node, the size of its reachable set
// (customer-cone size, excluding the node itself). Runs one DFS per node;
// acceptable for the ≤10⁴-node graphs used here.
func (g *Directed) ConeSizes() []int {
	n := g.N()
	sizes := make([]int, n)
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	for u := 0; u < n; u++ {
		for i := range seen {
			seen[i] = false
		}
		g.ReachableInto(int32(u), seen, queue)
		c := 0
		for _, s := range seen {
			if s {
				c++
			}
		}
		if seen[u] {
			c-- // do not count the node itself even on a cycle
		}
		sizes[u] = c
	}
	return sizes
}
