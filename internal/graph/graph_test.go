package graph

import (
	"math"
	"testing"
	"testing/quick"

	"bgpchurn/internal/rng"
)

// path builds the path graph 0-1-2-...-(n-1).
func path(n int) *Undirected {
	g := NewUndirected(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(int32(i), int32(i+1))
	}
	return g
}

// complete builds K_n.
func complete(n int) *Undirected {
	g := NewUndirected(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(int32(i), int32(j))
		}
	}
	return g
}

func TestBFSDistancesPath(t *testing.T) {
	g := path(5)
	d := g.BFSDistances(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	// 2 and 3 isolated from 0.
	g.AddEdge(2, 3)
	d := g.BFSDistances(0)
	if d[2] != -1 || d[3] != -1 {
		t.Fatalf("unreachable nodes got distances %d, %d", d[2], d[3])
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewUndirected(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("nodes 0,1,2 not in one component")
	}
	if labels[3] != labels[4] {
		t.Fatal("nodes 3,4 not in one component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("isolated node 5 shares a component")
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !complete(4).IsConnected() {
		t.Fatal("K4 reported disconnected")
	}
}

func TestClusteringComplete(t *testing.T) {
	if c := complete(5).ClusteringCoefficient(); math.Abs(c-1) > 1e-12 {
		t.Fatalf("K5 clustering = %v, want 1", c)
	}
}

func TestClusteringPath(t *testing.T) {
	if c := path(10).ClusteringCoefficient(); c != 0 {
		t.Fatalf("path clustering = %v, want 0", c)
	}
}

func TestClusteringTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus tail 2-3.
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	// Local: c(0)=c(1)=1, c(2)=1/3 (one of three neighbor pairs linked);
	// node 3 has degree 1 and is excluded. Average = (1+1+1/3)/3 = 7/9.
	want := 7.0 / 9.0
	if c := g.ClusteringCoefficient(); math.Abs(c-want) > 1e-12 {
		t.Fatalf("clustering = %v, want %v", c, want)
	}
	if c := g.LocalClustering(2); math.Abs(c-1.0/3.0) > 1e-12 {
		t.Fatalf("local clustering(2) = %v, want 1/3", c)
	}
}

func TestAveragePathLengthK3(t *testing.T) {
	if l := complete(3).AveragePathLength(); math.Abs(l-1) > 1e-12 {
		t.Fatalf("K3 APL = %v, want 1", l)
	}
}

func TestAveragePathLengthPath3(t *testing.T) {
	// Path 0-1-2: distances 1,2,1,1,2,1 over ordered pairs → mean 4/3.
	if l := path(3).AveragePathLength(); math.Abs(l-4.0/3.0) > 1e-12 {
		t.Fatalf("P3 APL = %v, want 4/3", l)
	}
}

func TestSampledAveragePathLength(t *testing.T) {
	g := path(4)
	// BFS from node 0 only: distances 1+2+3 over 3 pairs = 2.
	if l := g.SampledAveragePathLength([]int32{0}); math.Abs(l-2) > 1e-12 {
		t.Fatalf("sampled APL = %v, want 2", l)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Fatalf("star histogram = %v", h)
	}
	if g.Edges() != 3 {
		t.Fatalf("Edges() = %d, want 3", g.Edges())
	}
}

func TestDegreeCCDF(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	degs, ccdf := g.DegreeCCDF()
	if len(degs) != 2 || degs[0] != 1 || degs[1] != 3 {
		t.Fatalf("ccdf degrees = %v", degs)
	}
	if ccdf[0] != 1.0 {
		t.Fatalf("P(D>=1) = %v, want 1", ccdf[0])
	}
	if math.Abs(ccdf[1]-0.25) > 1e-12 {
		t.Fatalf("P(D>=3) = %v, want 0.25", ccdf[1])
	}
}

func TestAssortativity(t *testing.T) {
	// A star is maximally disassortative: hubs connect only to leaves.
	star := NewUndirected(5)
	for i := int32(1); i < 5; i++ {
		star.AddEdge(0, i)
	}
	if r := star.Assortativity(); r != -1 {
		t.Fatalf("star assortativity = %v, want -1", r)
	}
	// A regular graph (cycle) has no degree variance: defined as 0.
	cyc := NewUndirected(4)
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 2)
	cyc.AddEdge(2, 3)
	cyc.AddEdge(3, 0)
	if r := cyc.Assortativity(); r != 0 {
		t.Fatalf("cycle assortativity = %v, want 0", r)
	}
	// Two disjoint cliques of different sizes: every edge joins equal
	// degrees, perfectly assortative.
	g := NewUndirected(7)
	for i := int32(0); i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			g.AddEdge(i, j)
		}
	}
	for i := int32(3); i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			g.AddEdge(i, j)
		}
	}
	if r := g.Assortativity(); math.Abs(r-1) > 1e-12 {
		t.Fatalf("clique-pair assortativity = %v, want 1", r)
	}
	if NewUndirected(3).Assortativity() != 0 {
		t.Fatal("empty graph assortativity")
	}
}

func TestHasCycle(t *testing.T) {
	dag := NewDirected(4)
	dag.AddEdge(0, 1)
	dag.AddEdge(0, 2)
	dag.AddEdge(1, 3)
	dag.AddEdge(2, 3)
	if dag.HasCycle() {
		t.Fatal("DAG reported cyclic")
	}
	cyc := NewDirected(3)
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 2)
	cyc.AddEdge(2, 0)
	if !cyc.HasCycle() {
		t.Fatal("3-cycle not detected")
	}
	self := NewDirected(1)
	self.AddEdge(0, 0)
	if !self.HasCycle() {
		t.Fatal("self-loop not detected")
	}
}

func TestReachableCone(t *testing.T) {
	// 0→1→2, 0→3. Cone(0) = {1,2,3}, Cone(1) = {2}.
	g := NewDirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	r := g.Reachable(0)
	for i, want := range []bool{false, true, true, true} {
		if r[i] != want {
			t.Fatalf("Reachable(0)[%d] = %v, want %v", i, r[i], want)
		}
	}
	sizes := g.ConeSizes()
	for i, want := range []int{3, 1, 0, 0} {
		if sizes[i] != want {
			t.Fatalf("ConeSizes[%d] = %d, want %d", i, sizes[i], want)
		}
	}
}

func TestConeSizeOnCycleExcludesSelf(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	sizes := g.ConeSizes()
	if sizes[0] != 1 || sizes[1] != 1 {
		t.Fatalf("cycle cone sizes = %v, want [1 1]", sizes)
	}
}

// Property: on random DAGs built by only adding edges old→new, HasCycle is
// always false; adding any back edge new→old that closes a path makes it true.
func TestPropertyDAGAcyclic(t *testing.T) {
	r := rng.New(7)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(30)
		g := NewDirected(n)
		for v := 1; v < n; v++ {
			k := 1 + src.Intn(3)
			for i := 0; i < k; i++ {
				g.AddEdge(int32(src.Intn(v)), int32(v))
			}
		}
		if g.HasCycle() {
			return false
		}
		// Close a cycle: pick an existing edge u→v and add v→u.
		for u := 0; u < n; u++ {
			if len(g.Out[u]) > 0 {
				v := g.Out[u][0]
				g.AddEdge(v, int32(u))
				return g.HasCycle()
			}
		}
		return true
	}
	if err := quick.Check(func(s uint64) bool { return f(s ^ r.Uint64()) }, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle property along edges:
// |d(u) - d(v)| <= 1 for every edge {u,v} in the same component.
func TestPropertyBFSEdgeConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(50)
		g := NewUndirected(n)
		edges := n + src.Intn(2*n)
		for i := 0; i < edges; i++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				g.AddEdge(int32(u), int32(v))
			}
		}
		d := g.BFSDistances(0)
		for u := 0; u < n; u++ {
			for _, v := range g.Adj[u] {
				du, dv := d[u], d[v]
				if (du < 0) != (dv < 0) {
					return false // edge across reachability boundary
				}
				if du >= 0 && dv >= 0 && du-dv > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClustering(b *testing.B) {
	src := rng.New(1)
	n := 2000
	g := NewUndirected(n)
	for i := 0; i < 4*n; i++ {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			g.AddEdge(int32(u), int32(v))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ClusteringCoefficient()
	}
}

func BenchmarkBFS(b *testing.B) {
	src := rng.New(2)
	n := 5000
	g := NewUndirected(n)
	for i := 1; i < n; i++ {
		g.AddEdge(int32(src.Intn(i)), int32(i))
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSDistancesInto(0, dist, queue)
	}
}
