// Package trace synthesizes BGP monitor update-count time series of the
// kind shown in the paper's Fig. 1 (daily updates received from a RIPE RIS
// monitor in France Telecom's backbone, 2005–2007).
//
// The real feed is proprietary measurement data; the generator substitutes
// a controlled series with the same qualitative features the paper relies
// on: a long-term growth trend (~200% over three years) buried under weekly
// seasonality, heavy-tailed burst days (session resets, leaks,
// misconfigurations), and multiplicative noise — exactly the regime where
// the paper reaches for the Mann-Kendall estimator instead of a naive fit.
package trace

import (
	"fmt"
	"math"

	"bgpchurn/internal/rng"
)

// Params controls the synthetic monitor series.
type Params struct {
	// Days is the series length (paper: 2005–2007, ~1096 days).
	Days int
	// BaseDaily is the mean daily update count at day 0.
	BaseDaily float64
	// TotalGrowth is the multiplicative growth of the underlying trend
	// over the whole series (paper: ~3.0, i.e. +200%).
	TotalGrowth float64
	// WeeklyAmplitude is the relative amplitude of the weekday/weekend
	// cycle (0.1 = ±10%).
	WeeklyAmplitude float64
	// BurstProb is the per-day probability of an instability burst.
	BurstProb float64
	// BurstMu and BurstSigma parameterize the lognormal burst multiplier
	// (applied on top of the trend on burst days).
	BurstMu, BurstSigma float64
	// NoiseSigma is the sigma of the day-to-day multiplicative lognormal
	// noise.
	NoiseSigma float64
	// Seed drives all randomness.
	Seed uint64
}

// Default returns parameters calibrated to the paper's Fig. 1: ~300k daily
// updates growing by 200% over three years, with rare bursts reaching
// several times the trend line.
func Default(seed uint64) Params {
	return Params{
		Days:            1096,
		BaseDaily:       250_000,
		TotalGrowth:     3.0,
		WeeklyAmplitude: 0.12,
		BurstProb:       0.02,
		BurstMu:         1.0,
		BurstSigma:      0.5,
		NoiseSigma:      0.18,
		Seed:            seed,
	}
}

// Validate reports whether the parameters are usable.
func (p *Params) Validate() error {
	switch {
	case p.Days < 1:
		return fmt.Errorf("trace: Days must be positive")
	case p.BaseDaily <= 0:
		return fmt.Errorf("trace: BaseDaily must be positive")
	case p.TotalGrowth <= 0:
		return fmt.Errorf("trace: TotalGrowth must be positive")
	case p.WeeklyAmplitude < 0 || p.WeeklyAmplitude >= 1:
		return fmt.Errorf("trace: WeeklyAmplitude must be in [0,1)")
	case p.BurstProb < 0 || p.BurstProb > 1:
		return fmt.Errorf("trace: BurstProb must be in [0,1]")
	case p.BurstSigma < 0 || p.NoiseSigma < 0:
		return fmt.Errorf("trace: sigmas must be non-negative")
	}
	return nil
}

// Generate produces the daily update counts.
func Generate(p Params) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(p.Seed)
	out := make([]float64, p.Days)
	// Linear trend from BaseDaily to BaseDaily*TotalGrowth.
	slopePerDay := p.BaseDaily * (p.TotalGrowth - 1) / math.Max(1, float64(p.Days-1))
	for d := 0; d < p.Days; d++ {
		trend := p.BaseDaily + slopePerDay*float64(d)
		// Weekly cycle: quieter weekends (operators change less config).
		week := 1 + p.WeeklyAmplitude*math.Sin(2*math.Pi*float64(d)/7)
		v := trend * week
		if p.NoiseSigma > 0 {
			v *= r.LogNormal(-p.NoiseSigma*p.NoiseSigma/2, p.NoiseSigma)
		}
		if r.Bernoulli(p.BurstProb) {
			v *= 1 + r.LogNormal(p.BurstMu, p.BurstSigma)
		}
		out[d] = math.Round(v)
	}
	return out, nil
}

// TrendSlope returns the embedded per-day slope of the underlying trend,
// for validating estimators against ground truth.
func (p Params) TrendSlope() float64 {
	return p.BaseDaily * (p.TotalGrowth - 1) / math.Max(1, float64(p.Days-1))
}
