package trace

import (
	"math"
	"testing"

	"bgpchurn/internal/stats"
)

func TestGenerateLengthAndPositivity(t *testing.T) {
	series, err := Generate(Default(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1096 {
		t.Fatalf("length = %d", len(series))
	}
	for d, v := range series {
		if v <= 0 {
			t.Fatalf("day %d: non-positive count %v", d, v)
		}
		if v != math.Round(v) {
			t.Fatalf("day %d: non-integral count %v", d, v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Default(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different series")
		}
	}
	c, _ := Generate(Default(8))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produced %d/%d identical days", same, len(a))
	}
}

func TestMannKendallRecoversEmbeddedTrend(t *testing.T) {
	// The whole point of the substitution: the estimator the paper uses
	// must detect the trend we embedded, at roughly the right slope.
	p := Default(3)
	series, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stats.MannKendall(series)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Increasing {
		t.Fatalf("embedded growth not detected: %+v", res)
	}
	want := p.TrendSlope()
	if res.Slope < 0.5*want || res.Slope > 1.8*want {
		t.Fatalf("Sen slope %v vs embedded slope %v", res.Slope, want)
	}
}

func TestTotalGrowthRealized(t *testing.T) {
	p := Default(5)
	series, _ := Generate(p)
	// Compare first and last 90-day means; expect close to TotalGrowth
	// (within the noise the generator adds).
	first := stats.Mean(series[:90])
	last := stats.Mean(series[len(series)-90:])
	growth := last / first
	if growth < 2.0 || growth > 4.5 {
		t.Fatalf("realized growth %v, embedded %v", growth, p.TotalGrowth)
	}
}

func TestBurstsAreHeavyTailed(t *testing.T) {
	p := Default(9)
	p.BurstProb = 0.05
	series, _ := Generate(p)
	mean := stats.Mean(series)
	peak := 0.0
	for _, v := range series {
		if v > peak {
			peak = v
		}
	}
	if peak < 2.5*mean {
		t.Fatalf("peak %v not bursty vs mean %v", peak, mean)
	}
}

func TestNoTrendWhenGrowthOne(t *testing.T) {
	p := Default(11)
	p.TotalGrowth = 1.0
	p.BurstProb = 0
	p.WeeklyAmplitude = 0
	series, _ := Generate(p)
	res, err := stats.MannKendall(series)
	if err != nil {
		t.Fatal(err)
	}
	// Pure multiplicative noise: slope should be tiny relative to level.
	if math.Abs(res.Slope) > 0.001*p.BaseDaily {
		t.Fatalf("flat series got slope %v", res.Slope)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Days = 0 },
		func(p *Params) { p.BaseDaily = 0 },
		func(p *Params) { p.TotalGrowth = 0 },
		func(p *Params) { p.WeeklyAmplitude = 1 },
		func(p *Params) { p.BurstProb = 1.5 },
		func(p *Params) { p.NoiseSigma = -1 },
	}
	for i, mutate := range bad {
		p := Default(1)
		mutate(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
