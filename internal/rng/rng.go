// Package rng provides a small, fully deterministic pseudo-random number
// generator and the distributions used by the simulator.
//
// The simulator must produce bit-identical runs for a given seed regardless
// of the Go release it is compiled with, so it does not use math/rand (whose
// default sources and shuffling algorithms have changed across releases).
// Instead it implements xoshiro256** seeded through splitmix64, the
// combination recommended by Blackman & Vigna. The generator is not safe for
// concurrent use; simulations that run in parallel each own a Source derived
// with Split.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, which guarantees the
// internal state is well mixed even for small or similar seeds.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the generator state as if it had been created by New(seed).
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro256** requires a non-zero state; splitmix64 of any seed cannot
	// produce four zero outputs, but guard anyway for robustness.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// splitmix64 advances the splitmix64 state and returns (new state, output).
func splitmix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's. It consumes one value from the receiver, so sibling splits
// receive distinct states. Split is how per-goroutine sources are derived
// from a master simulation seed.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	// Use the top 53 bits for a uniformly spaced mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// nearly-divisionless rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// IntRange returns a uniformly distributed int in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// UniformFloat returns a uniformly distributed float64 in [lo, hi).
func (r *Source) UniformFloat(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// UniformDuration returns a uniformly distributed duration (in integer
// nanoseconds) in (0, max]. The open lower bound avoids zero-length
// processing times which would let an update be processed instantaneously.
func (r *Source) UniformDuration(max int64) int64 {
	if max <= 0 {
		panic("rng: UniformDuration with non-positive max")
	}
	return 1 + int64(r.Uint64n(uint64(max)))
}

// CountAroundMean draws an integer "degree" whose expectation is mean,
// uniformly distributed between minimum and (2*mean - minimum), matching the
// paper's "uniformly distributed between one and twice the specified
// average" construction for provider counts (minimum 1) and peering counts
// (minimum 0). Fractional means are honoured in expectation by drawing a
// continuous uniform and rounding stochastically.
func (r *Source) CountAroundMean(mean float64, minimum int) int {
	lo := float64(minimum)
	if mean <= lo {
		// Degenerate spread: interpret mean directly with stochastic rounding
		// so e.g. mean 0.2 still yields a link 20% of the time.
		return r.stochasticRound(mean, minimum)
	}
	hi := 2*mean - lo
	return r.stochasticRound(r.UniformFloat(lo, hi), minimum)
}

// stochasticRound rounds x to an adjacent integer with probability equal to
// the fractional part, clamping at minimum, so expectations are preserved.
func (r *Source) stochasticRound(x float64, minimum int) int {
	if x < float64(minimum) {
		x = float64(minimum)
	}
	floor := math.Floor(x)
	n := int(floor)
	if r.Float64() < x-floor {
		n++
	}
	if n < minimum {
		n = minimum
	}
	return n
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Jitter returns d scaled by a uniform factor in [lo, hi], used for the
// BGP-4 MRAI jitter (lo=0.75, hi=1.0 per RFC 4271 section 9.2.2.3).
func (r *Source) Jitter(d int64, lo, hi float64) int64 {
	f := r.UniformFloat(lo, hi)
	j := int64(float64(d) * f)
	if j < 1 {
		j = 1
	}
	return j
}

// NormFloat64 returns a standard normally distributed float64 using the
// Marsaglia polar method. Used by the synthetic trace generator.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a lognormally distributed float64 with the given
// parameters of the underlying normal (mu, sigma).
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of the first n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
