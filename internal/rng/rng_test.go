package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(99)
	b := New(99)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Reseed did not reproduce New state")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Split()
	c2 := parent.Split()
	equal := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("sibling splits produced %d identical draws", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v by more than 5 sigma", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nBounds(t *testing.T) {
	r := New(17)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	// Single-point range must always return that point.
	for i := 0; i < 10; i++ {
		if v := r.IntRange(5, 5); v != 5 {
			t.Fatalf("IntRange(5,5) = %d", v)
		}
	}
}

func TestUniformDuration(t *testing.T) {
	r := New(23)
	const max = 100_000_000
	for i := 0; i < 10000; i++ {
		d := r.UniformDuration(max)
		if d <= 0 || d > max {
			t.Fatalf("UniformDuration out of (0,max]: %d", d)
		}
	}
}

func TestCountAroundMeanExpectation(t *testing.T) {
	cases := []struct {
		mean    float64
		minimum int
	}{
		{2.0, 1}, {2.25, 1}, {1.0, 1}, {3.5, 1},
		{1.2, 0}, {0.2, 0}, {0.05, 0}, {2.0, 0},
	}
	r := New(29)
	for _, c := range cases {
		const draws = 200000
		sum := 0
		for i := 0; i < draws; i++ {
			v := r.CountAroundMean(c.mean, c.minimum)
			if v < c.minimum {
				t.Fatalf("CountAroundMean(%v,%d) returned %d below minimum", c.mean, c.minimum, v)
			}
			sum += v
		}
		got := float64(sum) / draws
		want := c.mean
		if want < float64(c.minimum) {
			want = float64(c.minimum)
		}
		if math.Abs(got-want) > 0.03*math.Max(1, want) {
			t.Errorf("CountAroundMean(%v,%d): empirical mean %v, want ~%v", c.mean, c.minimum, got, want)
		}
	}
}

func TestCountAroundMeanSpread(t *testing.T) {
	// For mean 2 with minimum 1, values must lie in {1,2,3} (uniform on
	// [1, 3] then stochastic rounding can reach 4 only from x>3, impossible).
	r := New(31)
	for i := 0; i < 50000; i++ {
		v := r.CountAroundMean(2.0, 1)
		if v < 1 || v > 3 {
			t.Fatalf("CountAroundMean(2,1) out of [1,3]: %d", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(37)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", p)
	}
}

func TestJitterBounds(t *testing.T) {
	r := New(41)
	const d = int64(30_000_000_000)
	for i := 0; i < 10000; i++ {
		j := r.Jitter(d, 0.75, 1.0)
		if j < int64(0.75*float64(d)) || j > d {
			t.Fatalf("Jitter out of [0.75d, d]: %d", j)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(43)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(47)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(53)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(59)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements, sum=%d", sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
