package obs

import "time"

// Probe blocks are the hot-path handles into a Metrics hub: small structs
// of pre-resolved shard cells that a consumer stores in one pointer field,
// nil when observability is disabled. The indirection is resolved once at
// setup (New*Probes picks a shard and looks up every cell), so an enabled
// probe site is "load field, atomic add" and a disabled one is a single
// nil check — no map lookups, no name hashing, no allocation.

// DESProbes instruments one des.Scheduler instance.
type DESProbes struct {
	Scheduled  *Cell // events inserted into the pending queue
	Fired      *Cell // events executed
	RingPushes *Cell // near-band insertions
	FarPushes  *Cell // far-heap insertions
	RingOcc    *GaugeCell
	FarOcc     *GaugeCell
}

// NewDESProbes resolves a kernel probe block on a fresh shard.
func (m *Metrics) NewDESProbes() *DESProbes {
	s := m.Shard()
	return &DESProbes{
		Scheduled:  m.DES.EventsScheduled.Cell(s),
		Fired:      m.DES.EventsFired.Cell(s),
		RingPushes: m.DES.RingPushes.Cell(s),
		FarPushes:  m.DES.FarPushes.Cell(s),
		RingOcc:    m.DES.RingOccupancy.Cell(s),
		FarOcc:     m.DES.FarOccupancy.Cell(s),
	}
}

// BGPProbes instruments one bgp.Network instance.
type BGPProbes struct {
	AnnouncementsSent *Cell
	WithdrawalsSent   *Cell
	UpdatesProcessed  *Cell
	MRAIFlushes       *Cell
	PrefixMRAIFlushes *Cell
	PoolHits          *Cell
	PoolMisses        *Cell
	ArenaBytes        *Cell
	InboxDeferrals    *Cell
	InternedPaths     *Cell
	InternBytes       *Cell
	InternHits        *Cell
}

// NewBGPProbes resolves a protocol probe block on a fresh shard.
func (m *Metrics) NewBGPProbes() *BGPProbes {
	s := m.Shard()
	return &BGPProbes{
		AnnouncementsSent: m.BGP.AnnouncementsSent.Cell(s),
		WithdrawalsSent:   m.BGP.WithdrawalsSent.Cell(s),
		UpdatesProcessed:  m.BGP.UpdatesProcessed.Cell(s),
		MRAIFlushes:       m.BGP.MRAIFlushes.Cell(s),
		PrefixMRAIFlushes: m.BGP.PrefixMRAIFlushes.Cell(s),
		PoolHits:          m.BGP.EventPoolHits.Cell(s),
		PoolMisses:        m.BGP.EventPoolMisses.Cell(s),
		ArenaBytes:        m.BGP.PathArenaBytes.Cell(s),
		InboxDeferrals:    m.BGP.InboxDeferrals.Cell(s),
		InternedPaths:     m.BGP.InternedPaths.Cell(s),
		InternBytes:       m.BGP.InternBytes.Cell(s),
		InternHits:        m.BGP.InternHits.Cell(s),
	}
}

// ShardProbes instruments one sharded network's barrier coordinator.
// Incremented only by the coordinator goroutine (between windows), never by
// shard goroutines.
type ShardProbes struct {
	Barriers     *Cell // synchronization windows executed
	CrossUpdates *Cell // updates exchanged across shard boundaries
	windowSkew   *Histogram
	shard        ShardID
}

// NewShardProbes resolves a barrier-coordinator probe block on a fresh
// shard.
func (m *Metrics) NewShardProbes() *ShardProbes {
	s := m.Shard()
	return &ShardProbes{
		Barriers:     m.Shards.Barriers.Cell(s),
		CrossUpdates: m.Shards.CrossUpdates.Cell(s),
		windowSkew:   m.Shards.WindowSkew,
		shard:        s,
	}
}

// ObserveSkew records one window's shard skew: the max-min spread of the
// shards' wall-clock run times, i.e. how long the fastest shard stalled at
// the barrier.
func (p *ShardProbes) ObserveSkew(d time.Duration) {
	p.windowSkew.Observe(p.shard, d.Seconds())
}

// CoreProbes instruments one core.Scheduler instance.
type CoreProbes struct {
	CellsComputed    *Cell
	CellsCached      *Cell
	CellsFailed      *Cell
	CacheEvictions   *Cell
	CellRetries      *Cell
	PanicsRecovered  *Cell
	CellsQuarantined *Cell
	CellsCancelled   *Cell
	CellsResumed     *Cell
	JournalWrites    *Cell
	JournalLoads     *Cell
	cellSeconds      *Histogram
	cancelSeconds    *Histogram
	shard            ShardID
}

// NewCoreProbes resolves an experiment-scheduler probe block on a fresh
// shard.
func (m *Metrics) NewCoreProbes() *CoreProbes {
	s := m.Shard()
	return &CoreProbes{
		CellsComputed:    m.Core.CellsComputed.Cell(s),
		CellsCached:      m.Core.CellsCached.Cell(s),
		CellsFailed:      m.Core.CellsFailed.Cell(s),
		CacheEvictions:   m.Core.CacheEvictions.Cell(s),
		CellRetries:      m.Core.CellRetries.Cell(s),
		PanicsRecovered:  m.Core.PanicsRecovered.Cell(s),
		CellsQuarantined: m.Core.CellsQuarantined.Cell(s),
		CellsCancelled:   m.Core.CellsCancelled.Cell(s),
		CellsResumed:     m.Core.CellsResumed.Cell(s),
		JournalWrites:    m.Core.JournalWrites.Cell(s),
		JournalLoads:     m.Core.JournalLoads.Cell(s),
		cellSeconds:      m.Core.CellSeconds,
		cancelSeconds:    m.Core.CancelSeconds,
		shard:            s,
	}
}

// ObserveCell records one computed cell's wall time.
func (p *CoreProbes) ObserveCell(d time.Duration) {
	p.cellSeconds.Observe(p.shard, d.Seconds())
}

// ObserveCancel records one grid's cancellation latency: the wall time from
// the context being cancelled to the worker pool fully draining.
func (p *CoreProbes) ObserveCancel(d time.Duration) {
	p.cancelSeconds.Observe(p.shard, d.Seconds())
}

// ServeProbes instruments one serving-layer instance (a churnd daemon's
// internal/serve.Server).
type ServeProbes struct {
	JobsAdmitted    *Cell
	JobsShed        *Cell
	JobsRejected    *Cell
	JobsCompleted   *Cell
	JobsFailed      *Cell
	JobsCancelled   *Cell
	CellsDispatched *Cell
	CellsRecovered  *Cell
	QueueDepth      *GaugeCell
	drainSec        *Histogram
	shard           ShardID
}

// NewServeProbes resolves a serving-layer probe block on a fresh shard.
func (m *Metrics) NewServeProbes() *ServeProbes {
	s := m.Shard()
	return &ServeProbes{
		JobsAdmitted:    m.Serve.JobsAdmitted.Cell(s),
		JobsShed:        m.Serve.JobsShed.Cell(s),
		JobsRejected:    m.Serve.JobsRejected.Cell(s),
		JobsCompleted:   m.Serve.JobsCompleted.Cell(s),
		JobsFailed:      m.Serve.JobsFailed.Cell(s),
		JobsCancelled:   m.Serve.JobsCancelled.Cell(s),
		CellsDispatched: m.Serve.CellsDispatched.Cell(s),
		CellsRecovered:  m.Serve.CellsRecovered.Cell(s),
		QueueDepth:      m.Serve.QueueDepth.Cell(s),
		drainSec:        m.Serve.DrainSeconds,
		shard:           s,
	}
}

// ObserveDrain records one graceful drain's duration.
func (p *ServeProbes) ObserveDrain(d time.Duration) {
	p.drainSec.Observe(p.shard, d.Seconds())
}

// GenPhase identifies one phase of topology generation, in execution
// order. The Grow path skips PhaseClique (the clique is inherited).
type GenPhase int

const (
	PhaseClique GenPhase = iota
	PhaseMNodes
	PhaseStubs
	PhaseCones
	PhaseMPeering
	PhaseCPPeering
	GenPhaseCount
)

var genPhaseNames = [GenPhaseCount]string{
	"clique", "mnodes", "stubs", "cones", "mpeering", "cppeering",
}

func (p GenPhase) String() string { return genPhaseNames[p] }

// TopoProbes instruments topology generation.
type TopoProbes struct {
	Generated *Cell
	Nodes     *Cell
	Edges     *Cell
	genSec    *Histogram
	phaseSec  [GenPhaseCount]*Histogram
	shard     ShardID
}

// NewTopoProbes resolves a topology-generation probe block on a fresh
// shard.
func (m *Metrics) NewTopoProbes() *TopoProbes {
	s := m.Shard()
	p := &TopoProbes{
		Generated: m.Topo.Generated.Cell(s),
		Nodes:     m.Topo.Nodes.Cell(s),
		Edges:     m.Topo.Edges.Cell(s),
		genSec:    m.Topo.GenSeconds,
		shard:     s,
	}
	for ph := GenPhase(0); ph < GenPhaseCount; ph++ {
		p.phaseSec[ph] = m.Topo.PhaseSeconds[ph]
	}
	return p
}

// ObserveGen records one generation's wall time.
func (p *TopoProbes) ObserveGen(d time.Duration) {
	p.genSec.Observe(p.shard, d.Seconds())
}

// ObservePhase records the wall time one generation spent in phase ph.
func (p *TopoProbes) ObservePhase(ph GenPhase, d time.Duration) {
	p.phaseSec[ph].Observe(p.shard, d.Seconds())
}
