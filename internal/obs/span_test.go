package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanRecorderAssignsSeqInCompletionOrder(t *testing.T) {
	r := NewSpanRecorder()
	for i := 0; i < 5; i++ {
		r.Append(SpanRecord{Level: SpanEvent, Name: "e"})
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	for i, s := range r.Snapshot() {
		if s.Seq != int64(i) {
			t.Fatalf("span %d has Seq %d", i, s.Seq)
		}
	}
}

func TestSpanRecorderConcurrentAppendsKeepUniqueSeq(t *testing.T) {
	r := NewSpanRecorder()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Append(SpanRecord{Level: SpanOrigin, Name: "o"})
			}
		}()
	}
	wg.Wait()
	seen := map[int64]bool{}
	for _, s := range r.Snapshot() {
		if seen[s.Seq] {
			t.Fatalf("duplicate Seq %d", s.Seq)
		}
		seen[s.Seq] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("recorded %d spans, want %d", len(seen), workers*per)
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	r := NewSpanRecorder()
	r.Append(SpanRecord{
		Level: SpanEvent, Name: "withdraw",
		StartUS: 10, DurUS: 5, VStartUS: 100, VEndUS: 200,
		Scenario: "BASELINE", N: 1000, Origin: 42, Cause: 7,
		Stats: map[string]float64{"updates": 12, "dup": 3},
	})
	r.Append(SpanRecord{Level: SpanCell, Name: "cell", StartUS: 0, DurUS: 20, Scenario: "BASELINE", N: 1000})
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpanJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip returned %d spans, want 2", len(back))
	}
	ev := back[0]
	if ev.Level != SpanEvent || ev.Name != "withdraw" || ev.Cause != 7 || ev.Origin != 42 {
		t.Fatalf("event span mangled: %+v", ev)
	}
	if ev.Stats["updates"] != 12 || ev.Stats["dup"] != 3 {
		t.Fatalf("event stats mangled: %v", ev.Stats)
	}
	if ev.VStartUS != 100 || ev.VEndUS != 200 {
		t.Fatalf("virtual extent mangled: %+v", ev)
	}
}

func TestReadSpanJSONLReportsBadLine(t *testing.T) {
	_, err := ReadSpanJSONL(strings.NewReader("{\"level\":\"cell\"}\n\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line-3 parse error", err)
	}
}

func TestSpanChromeTraceWellFormed(t *testing.T) {
	r := NewSpanRecorder()
	// One wall-only span and one with a virtual extent (duplicated on pid 2).
	r.Append(SpanRecord{Level: SpanSweep, Name: "grid", StartUS: 0, DurUS: 100})
	r.Append(SpanRecord{Level: SpanEvent, Name: "announce", StartUS: 5, DurUS: 10,
		VStartUS: 1000, VEndUS: 3000, Scenario: "BASELINE", N: 400,
		Stats: map[string]float64{"updates": 4}})
	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string             `json:"name"`
			Cat  string             `json:"cat"`
			Ph   string             `json:"ph"`
			TS   float64            `json:"ts"`
			Dur  float64            `json:"dur"`
			PID  int                `json:"pid"`
			TID  int                `json:"tid"`
			Args map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	// grid (wall only) + announce (wall + virtual) = 3 events.
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	var wall, virt int
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("phase %q, want X", e.Ph)
		}
		switch e.PID {
		case 1:
			wall++
		case 2:
			virt++
			if e.TS != 1000 || e.Dur != 2000 {
				t.Fatalf("virtual event extent ts=%v dur=%v, want 1000/2000", e.TS, e.Dur)
			}
		default:
			t.Fatalf("unexpected pid %d", e.PID)
		}
	}
	if wall != 2 || virt != 1 {
		t.Fatalf("wall=%d virt=%d, want 2/1", wall, virt)
	}
	if !strings.Contains(sb.String(), "announce BASELINE/n=400") {
		t.Fatalf("cell identity missing from event name:\n%s", sb.String())
	}
}

func TestSpanChromeTraceEmptyRecorder(t *testing.T) {
	var sb strings.Builder
	if err := NewSpanRecorder().WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("empty chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if string(doc["traceEvents"]) == "null" {
		t.Fatal("traceEvents must be an empty array, not null")
	}
}

func TestSpanOnSpanPublishes(t *testing.T) {
	r := NewSpanRecorder()
	var got []SpanRecord
	var mu sync.Mutex
	r.OnSpan(func(s SpanRecord) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	r.Append(SpanRecord{Level: SpanCell, Name: "a"})
	r.OnSpan(nil)
	r.Append(SpanRecord{Level: SpanCell, Name: "b"})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("publish hook got %v, want exactly the span appended while installed", got)
	}
}
