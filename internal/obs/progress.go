package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// ProgressBroker fans run-progress events out to any number of SSE
// subscribers (the /progress endpoint). Publishers never block: each
// subscriber has a bounded buffer, and a subscriber that cannot keep up
// loses events (Dropped counts them) rather than stalling the sweep.
// The broker is the serving primitive a long-lived sweep daemon reuses:
// publish per-cell status and rolling attribution summaries as they land,
// and every connected client sees the grid advance mid-run.
type ProgressBroker struct {
	mu      sync.Mutex
	subs    map[chan progressMsg]struct{}
	latest  map[string]progressMsg // last message per event type, replayed to new subscribers
	order   []string               // event types in first-seen order, for deterministic replay
	seq     uint64
	dropped atomic.Uint64
	closed  bool
}

type progressMsg struct {
	event string
	id    uint64
	data  []byte
}

// subBuffer is each subscriber's channel capacity. A slow client sampling
// a fast grid drops intermediate events and still sees the latest state.
const subBuffer = 64

// NewProgressBroker creates a broker with no subscribers.
func NewProgressBroker() *ProgressBroker {
	return &ProgressBroker{
		subs:   make(map[chan progressMsg]struct{}),
		latest: make(map[string]progressMsg),
	}
}

// Publish marshals payload as JSON and sends it to every subscriber as an
// SSE event of the given type (e.g. "cell", "attribution", "summary").
// Non-blocking: a full subscriber buffer drops the event for that
// subscriber. The last message of each type is retained and replayed to
// new subscribers so a client connecting mid-grid starts with state.
func (b *ProgressBroker) Publish(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	msg := progressMsg{event: event, id: b.seq, data: data}
	if _, seen := b.latest[event]; !seen {
		b.order = append(b.order, event)
	}
	b.latest[event] = msg
	for ch := range b.subs {
		select {
		case ch <- msg:
		default:
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Dropped returns how many events were lost to slow subscribers.
func (b *ProgressBroker) Dropped() uint64 { return b.dropped.Load() }

// Subscribers returns the number of currently connected subscribers.
func (b *ProgressBroker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close disconnects every subscriber and rejects future ones; Publish
// becomes a no-op. Safe to call more than once.
func (b *ProgressBroker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
	b.mu.Unlock()
}

// subscribe registers a new subscriber and returns its channel plus the
// replay of the latest message per event type. Returns nil if closed.
func (b *ProgressBroker) subscribe() (chan progressMsg, []progressMsg) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, nil
	}
	ch := make(chan progressMsg, subBuffer)
	b.subs[ch] = struct{}{}
	replay := make([]progressMsg, 0, len(b.order))
	for _, ev := range b.order {
		replay = append(replay, b.latest[ev])
	}
	return ch, replay
}

func (b *ProgressBroker) unsubscribe(ch chan progressMsg) {
	b.mu.Lock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
		close(ch)
	}
	b.mu.Unlock()
}

// ServeHTTP implements the SSE endpoint: text/event-stream framing with
// per-event `event:`, `id:` and `data:` fields. The stream runs until the
// client disconnects or the broker closes.
func (b *ProgressBroker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, replay := b.subscribe()
	if ch == nil {
		http.Error(w, "progress stream closed", http.StatusServiceUnavailable)
		return
	}
	defer b.unsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An immediate comment line gets headers and an initial byte to the
	// client before the first event, so curl-style readers unblock.
	fmt.Fprintf(w, ": bgpchurn progress stream\n\n")
	writeMsg := func(m progressMsg) bool {
		if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", m.event, m.id, m.data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	fl.Flush()
	for _, m := range replay {
		if !writeMsg(m) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-ch:
			if !ok {
				return
			}
			if !writeMsg(m) {
				return
			}
		}
	}
}
