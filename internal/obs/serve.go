package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// Server exposes a Metrics hub over HTTP for live inspection of long
// sweeps:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar JSON (runtime memstats + the "bgpchurn" snapshot)
//	/debug/pprof/  net/http/pprof profiles
//	/progress      SSE stream of per-cell status + attribution summaries
//
// Close shuts the listener down; in-flight scrapes are aborted and
// connected /progress subscribers are disconnected.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	progress *ProgressBroker
}

// expvarMetrics is the hub the process-global expvar "bgpchurn" variable
// reads. expvar registration is global and permanent, so the variable is
// published once and always reflects the most recently served hub (tests
// start many servers in one process).
var (
	expvarMetrics atomic.Pointer[Metrics]
	expvarOnce    sync.Once
)

func publishExpvar(m *Metrics) {
	expvarMetrics.Store(m)
	expvarOnce.Do(func() {
		expvar.Publish("bgpchurn", expvar.Func(func() any {
			if mm := expvarMetrics.Load(); mm != nil {
				return mm.Snapshot()
			}
			return nil
		}))
	})
}

// RegisterDebug installs the exposition endpoints on mux — /metrics
// (Prometheus text), /debug/vars (expvar), /debug/pprof/* — and publishes
// the process-global expvar snapshot for m. It is the shared plumbing
// behind the standalone obs server and churnd's folded-in API mux.
func RegisterDebug(mux *http.ServeMux, m *Metrics) {
	publishExpvar(m)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts the exposition server on addr (":0" picks a free port) and
// returns immediately; the server runs until Close.
func Serve(addr string, m *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	RegisterDebug(mux, m)
	broker := NewProgressBroker()
	mux.Handle("/progress", broker)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, progress: broker}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Progress returns the server's progress broker; publish run events to it
// and every /progress subscriber receives them as SSE.
func (s *Server) Progress() *ProgressBroker { return s.progress }

// Addr returns the bound address (host:port), useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port. Open SSE streams end.
func (s *Server) Close() error {
	s.progress.Close()
	return s.srv.Close()
}
