package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket sharded histogram. Bucket semantics follow
// Prometheus: an observation v lands in the first bucket whose upper bound
// is >= v (bounds are inclusive), and observations above the last bound
// land in the implicit +Inf overflow bucket. Buckets are fixed at
// construction — no resizing, no allocation on Observe.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; +Inf is implicit
	shards     []histShard
	mask       uint32
}

// histShard is one shard's bucket counts plus the shard's running sum.
// counts has len(bounds)+1 entries; the last is the +Inf overflow bucket.
// The sum is stored as float64 bits updated by CAS — observations are per
// cell/generation (not per simulated event), so the CAS loop is cold.
type histShard struct {
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	_       [cacheLineSize - 8]byte
}

func newHistogram(name, help string, bounds []float64, shards int) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		shards: make([]histShard, shards),
		mask:   uint32(shards - 1),
	}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// Name returns the exposition name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value on the given shard.
func (h *Histogram) Observe(s ShardID, v float64) {
	sh := &h.shards[uint32(s)&h.mask]
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (bounds inclusive)
	sh.counts[i].Add(1)
	for {
		old := sh.sumBits.Load()
		if sh.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistSnapshot is a merged point-in-time view of a histogram.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the number of
	// observations in bucket i (NOT cumulative). Counts has one more entry
	// than Bounds: the +Inf overflow bucket.
	Bounds []float64
	Counts []uint64
	// Count and Sum are the total observation count and value sum.
	Count uint64
	Sum   float64
}

// Snapshot merges all shards.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Sum += math.Float64frombits(sh.sumBits.Load())
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}
