// Package obs is the instrumentation substrate the whole simulator reports
// into: sharded cache-line-padded atomic counters and gauges, fixed-bucket
// histograms, an optional bounded update-trace ring, per-run manifests, and
// live exposition over HTTP (Prometheus text format, expvar, pprof).
//
// The package is designed so the kernel's zero-allocation steady state
// survives instrumentation. Probe call sites in hot paths hold a pointer to
// a pre-resolved probe block (see probes.go) that is nil when observability
// is off, so a disabled probe compiles down to one nil check. An enabled
// probe performs plain atomic adds on memory that no other goroutine
// increments: every consumer (a Network, a Scheduler) gets its own shard of
// each metric, and shards are padded to the cache line so two consumers
// never contend on one line. Nothing on the probe path allocates, takes a
// lock, consumes randomness, or reads the virtual clock — instrumentation
// cannot perturb simulation order or RNG draws, which keeps the determinism
// tier byte-identical with obs enabled. The memory model is documented in
// DESIGN.md ("Observability: probe memory model").
//
// obs deliberately imports only the standard library and none of the
// simulator's packages, so every layer (des, bgp, core, topology) can
// depend on it without cycles.
package obs

import (
	"runtime"
	"sync/atomic"
)

// cacheLineSize is the assumed cache-line granularity for shard padding.
// 64 bytes covers x86-64 and current arm64 server cores; on CPUs with
// larger lines the only cost is some residual false sharing.
const cacheLineSize = 64

// ShardID selects one shard of every sharded metric. IDs are handed out
// round-robin by Metrics.Shard; values beyond the shard count wrap (the
// cell lookup masks them), so any uint32 is safe.
type ShardID uint32

// Cell is one counter shard: an atomic uint64 padded to a full cache line
// so adjacent cells (other shards, other metrics) never share a line with
// it. Hot paths pre-resolve the cells they increment (see probes.go) and
// call Inc/Add directly — one atomic add on exclusive memory, no alloc.
type Cell struct {
	n atomic.Uint64
	_ [cacheLineSize - 8]byte
}

// Inc adds 1.
func (c *Cell) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Cell) Add(d uint64) { c.n.Add(d) }

// Load returns the shard's current value.
func (c *Cell) Load() uint64 { return c.n.Load() }

// GaugeCell is one gauge shard. Deltas may be negative; the gauge's value
// is the sum over shards, so a consumer that increments on one shard and
// decrements on the same shard keeps the global sum exact.
type GaugeCell struct {
	n atomic.Int64
	_ [cacheLineSize - 8]byte
}

// Add applies a (possibly negative) delta.
func (g *GaugeCell) Add(d int64) { g.n.Add(d) }

// Load returns the shard's current value.
func (g *GaugeCell) Load() int64 { return g.n.Load() }

// Counter is a monotonically increasing sharded metric.
type Counter struct {
	name, help string
	cells      []Cell
	mask       uint32
	// scale divides the raw value at exposition time (e.g. nanoseconds
	// stored, seconds exposed); 0 means 1.
	scale float64
}

// Name returns the exposition name.
func (c *Counter) Name() string { return c.name }

// Cell returns the shard's cell for direct (pre-resolved) incrementing.
func (c *Counter) Cell(s ShardID) *Cell { return &c.cells[uint32(s)&c.mask] }

// Add adds d on the given shard.
func (c *Counter) Add(s ShardID, d uint64) { c.Cell(s).Add(d) }

// Value returns the sum over all shards.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// scaled returns the exposition value (raw sum divided by the scale).
func (c *Counter) scaled() float64 {
	v := float64(c.Value())
	if c.scale != 0 {
		v /= c.scale
	}
	return v
}

// Gauge is a sharded metric that can go up and down (queue occupancy).
type Gauge struct {
	name, help string
	cells      []GaugeCell
	mask       uint32
}

// Name returns the exposition name.
func (g *Gauge) Name() string { return g.name }

// Cell returns the shard's cell for direct incrementing.
func (g *Gauge) Cell(s ShardID) *GaugeCell { return &g.cells[uint32(s)&g.mask] }

// Add applies a delta on the given shard.
func (g *Gauge) Add(s ShardID, d int64) { g.Cell(s).Add(d) }

// Value returns the sum over all shards.
func (g *Gauge) Value() int64 {
	var sum int64
	for i := range g.cells {
		sum += g.cells[i].n.Load()
	}
	return sum
}

// Metrics is the hub: every metric the simulator exports, pre-registered
// with stable names so exposition order is deterministic. Create one per
// run with New, hand it to the layers (core.Config.Obs, Scheduler.SetObs,
// bgp.Network.SetObs, topology.SetObsProbes) and serve or snapshot it.
// All methods are safe for concurrent use; increments may race with
// scrapes, which read each shard atomically (per-metric totals are exact
// for quiescent metrics and at worst one event stale for live ones).
type Metrics struct {
	shards    uint32 // power of two
	nextShard atomic.Uint32

	// DES instruments the discrete-event kernel (internal/des).
	DES struct {
		EventsScheduled *Counter // queue insertions (ring + far heap)
		EventsFired     *Counter // events executed
		RingPushes      *Counter // near-band (timeRing) insertions
		FarPushes       *Counter // far-heap insertions
		RingOccupancy   *Gauge   // events currently in the time ring
		FarOccupancy    *Gauge   // events currently in the far heap
	}

	// BGP instruments the protocol engine (internal/bgp).
	BGP struct {
		AnnouncementsSent *Counter // updates transmitted, kind Announce
		WithdrawalsSent   *Counter // updates transmitted, kind Withdraw
		UpdatesProcessed  *Counter // procEvent completions
		MRAIFlushes       *Counter // per-interface flush events fired
		PrefixMRAIFlushes *Counter // per-prefix flush events fired
		EventPoolHits     *Counter // pooled events reused
		EventPoolMisses   *Counter // pooled events freshly allocated
		PathArenaBytes    *Counter // bytes bump-allocated for AS paths
		InboxDeferrals    *Counter // deliveries parked behind a busy receiver
		InternedPaths     *Counter // distinct AS paths interned (compact engine)
		InternBytes       *Counter // slab bytes storing interned path content
		InternHits        *Counter // intern lookups served by an existing entry
	}

	// Shards instruments the sharded windowed executor's barrier
	// coordinator (internal/bgp with Config.LinkDelay > 0).
	Shards struct {
		Barriers     *Counter   // synchronization windows executed
		CrossUpdates *Counter   // updates exchanged across shard boundaries
		WindowSkew   *Histogram // per-window max-min shard wall time (stall)
	}

	// Core instruments the experiment scheduler (internal/core).
	Core struct {
		CellsComputed    *Counter   // grid cells actually computed
		CellsCached      *Counter   // grid cells served from the result cache
		CellsFailed      *Counter   // grid cells that ended in an error
		CacheEvictions   *Counter   // results dropped by the LRU cap
		CellRetries      *Counter   // retry attempts after transient faults
		PanicsRecovered  *Counter   // panics recovered inside cell workers
		CellsQuarantined *Counter   // cells quarantined after retry exhaustion
		CellsCancelled   *Counter   // cells abandoned by grid cancellation
		CellsResumed     *Counter   // cells served from a replayed journal
		JournalWrites    *Counter   // checkpoint records appended
		JournalLoads     *Counter   // checkpoint records replayed into the cache
		CellSeconds      *Histogram // wall time per computed cell
		CancelSeconds    *Histogram // cancellation latency: cancel to grid drain
	}

	// Serve instruments the churnd serving layer (internal/serve): job
	// admission, load shedding, journal recovery and drain.
	Serve struct {
		JobsAdmitted    *Counter   // jobs accepted into the admission queue
		JobsShed        *Counter   // jobs refused with 429 (queue full)
		JobsRejected    *Counter   // jobs refused with 400 (invalid submission)
		JobsCompleted   *Counter   // jobs that finished with every cell done
		JobsFailed      *Counter   // jobs that finished with a failed cell
		JobsCancelled   *Counter   // jobs cancelled by clients or drain
		CellsDispatched *Counter   // cells handed to the shared scheduler
		CellsRecovered  *Counter   // journal records replayed at daemon startup
		QueueDepth      *Gauge     // jobs admitted and not yet finished
		DrainSeconds    *Histogram // graceful-drain duration per shutdown
	}

	// Topo instruments topology generation (internal/topology).
	Topo struct {
		Generated    *Counter                  // topologies generated
		Nodes        *Counter                  // nodes created across all generations
		Edges        *Counter                  // links created across all generations
		GenSeconds   *Histogram                // wall time per generation
		PhaseSeconds [GenPhaseCount]*Histogram // wall time per generation phase
	}

	// registration order, for deterministic exposition.
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

// New builds a metrics hub with every simulator metric registered. The
// shard count is the smallest power of two covering GOMAXPROCS, capped at
// 64 (beyond that the padding cost outweighs contention savings).
func New() *Metrics {
	shards := uint32(1)
	for int(shards) < runtime.GOMAXPROCS(0) && shards < 64 {
		shards <<= 1
	}
	m := &Metrics{shards: shards}

	m.DES.EventsScheduled = m.counter("bgpchurn_des_events_scheduled_total", "Events inserted into the pending queue (time ring + far heap).")
	m.DES.EventsFired = m.counter("bgpchurn_des_events_fired_total", "Events executed by the schedulers.")
	m.DES.RingPushes = m.counter("bgpchurn_des_ring_pushes_total", "Insertions into the near-band time ring.")
	m.DES.FarPushes = m.counter("bgpchurn_des_far_pushes_total", "Insertions into the far 4-ary heap.")
	m.DES.RingOccupancy = m.gauge("bgpchurn_des_ring_occupancy", "Events currently pending in the time ring.")
	m.DES.FarOccupancy = m.gauge("bgpchurn_des_far_occupancy", "Events currently pending in the far heap.")

	m.BGP.AnnouncementsSent = m.counter("bgpchurn_bgp_announcements_sent_total", "Announce updates transmitted.")
	m.BGP.WithdrawalsSent = m.counter("bgpchurn_bgp_withdrawals_sent_total", "Withdraw updates transmitted.")
	m.BGP.UpdatesProcessed = m.counter("bgpchurn_bgp_updates_processed_total", "Updates fully processed by receivers.")
	m.BGP.MRAIFlushes = m.counter("bgpchurn_bgp_mrai_flushes_total", "Per-interface MRAI flush events fired.")
	m.BGP.PrefixMRAIFlushes = m.counter("bgpchurn_bgp_prefix_mrai_flushes_total", "Per-prefix MRAI flush events fired.")
	m.BGP.EventPoolHits = m.counter("bgpchurn_bgp_event_pool_hits_total", "Pooled simulation events reused from a free list.")
	m.BGP.EventPoolMisses = m.counter("bgpchurn_bgp_event_pool_misses_total", "Pooled simulation events freshly allocated.")
	m.BGP.PathArenaBytes = m.counter("bgpchurn_bgp_path_arena_bytes_total", "Bytes bump-allocated for AS paths in the path arenas.")
	m.BGP.InboxDeferrals = m.counter("bgpchurn_bgp_inbox_deferrals_total", "Deliveries parked in a receiver inbox behind an in-flight event.")
	m.BGP.InternedPaths = m.counter("bgpchurn_bgp_interned_paths_total", "Distinct AS paths interned by compact-RIB engines.")
	m.BGP.InternBytes = m.counter("bgpchurn_bgp_intern_bytes_total", "Slab bytes storing interned AS path content.")
	m.BGP.InternHits = m.counter("bgpchurn_bgp_intern_hits_total", "Path intern lookups served by an existing entry.")

	m.Shards.Barriers = m.counter("bgpchurn_shard_barriers_total", "Synchronization windows executed by the sharded DES coordinator.")
	m.Shards.CrossUpdates = m.counter("bgpchurn_shard_cross_updates_total", "Updates exchanged across shard boundaries at barriers.")
	m.Shards.WindowSkew = m.histogram("bgpchurn_shard_window_skew_seconds", "Per-window shard skew: max minus min shard wall time (stall waiting at the barrier).",
		[]float64{0.000001, 0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1})

	m.Core.CellsComputed = m.counter("bgpchurn_core_cells_computed_total", "Experiment grid cells computed.")
	m.Core.CellsCached = m.counter("bgpchurn_core_cells_cached_total", "Experiment grid cells served from the result cache.")
	m.Core.CellsFailed = m.counter("bgpchurn_core_cells_failed_total", "Experiment grid cells that failed.")
	m.Core.CacheEvictions = m.counter("bgpchurn_core_cache_evictions_total", "Cached results evicted by the LRU cap.")
	m.Core.CellRetries = m.counter("bgpchurn_core_cell_retries_total", "Cell retry attempts after transient faults (panics, timeouts).")
	m.Core.PanicsRecovered = m.counter("bgpchurn_core_panics_recovered_total", "Panics recovered inside cell workers.")
	m.Core.CellsQuarantined = m.counter("bgpchurn_core_cells_quarantined_total", "Cells quarantined after exhausting the retry budget.")
	m.Core.CellsCancelled = m.counter("bgpchurn_core_cells_cancelled_total", "Cells abandoned because the grid context was cancelled.")
	m.Core.CellsResumed = m.counter("bgpchurn_core_cells_resumed_total", "Cells served from a checkpoint journal replayed at startup.")
	m.Core.JournalWrites = m.counter("bgpchurn_core_journal_writes_total", "Checkpoint records appended to the cell journal.")
	m.Core.JournalLoads = m.counter("bgpchurn_core_journal_loads_total", "Checkpoint records replayed into the scheduler cache.")
	m.Core.CellSeconds = m.histogram("bgpchurn_core_cell_seconds", "Wall-clock seconds per computed grid cell.",
		[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300})
	m.Core.CancelSeconds = m.histogram("bgpchurn_core_cancel_seconds", "Seconds from grid-context cancellation to worker-pool drain.",
		[]float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})

	m.Serve.JobsAdmitted = m.counter("bgpchurn_serve_jobs_admitted_total", "Jobs accepted into the serving admission queue.")
	m.Serve.JobsShed = m.counter("bgpchurn_serve_jobs_shed_total", "Jobs shed with 429 because the admission queue was full.")
	m.Serve.JobsRejected = m.counter("bgpchurn_serve_jobs_rejected_total", "Jobs rejected with 400 for invalid submissions.")
	m.Serve.JobsCompleted = m.counter("bgpchurn_serve_jobs_completed_total", "Jobs that finished with every cell done.")
	m.Serve.JobsFailed = m.counter("bgpchurn_serve_jobs_failed_total", "Jobs that finished with at least one failed cell.")
	m.Serve.JobsCancelled = m.counter("bgpchurn_serve_jobs_cancelled_total", "Jobs cancelled by clients or by server drain.")
	m.Serve.CellsDispatched = m.counter("bgpchurn_serve_cells_dispatched_total", "Cells dispatched from jobs to the shared scheduler.")
	m.Serve.CellsRecovered = m.counter("bgpchurn_serve_cells_recovered_total", "Journal checkpoint records recovered into the cache at daemon startup.")
	m.Serve.QueueDepth = m.gauge("bgpchurn_serve_queue_depth", "Jobs admitted and not yet finished.")
	m.Serve.DrainSeconds = m.histogram("bgpchurn_serve_drain_seconds", "Graceful-drain duration per shutdown.",
		[]float64{0.001, 0.01, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120})

	m.Topo.Generated = m.counter("bgpchurn_topo_generated_total", "Topologies generated.")
	m.Topo.Nodes = m.counter("bgpchurn_topo_nodes_total", "Nodes created by topology generation.")
	m.Topo.Edges = m.counter("bgpchurn_topo_edges_total", "Links created by topology generation.")
	m.Topo.GenSeconds = m.histogram("bgpchurn_topo_gen_seconds", "Wall-clock seconds per topology generation.",
		[]float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 10})
	for ph := GenPhase(0); ph < GenPhaseCount; ph++ {
		m.Topo.PhaseSeconds[ph] = m.histogram(
			"bgpchurn_topo_phase_"+ph.String()+"_seconds",
			"Wall-clock seconds in the "+ph.String()+" topology-generation phase.",
			[]float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 10})
	}

	return m
}

// Shard hands out the next shard ID, round-robin. Each consumer (one
// Network, one Scheduler) takes one ID at setup time and uses it for all
// its metrics, giving it private cache lines up to the shard count.
func (m *Metrics) Shard() ShardID {
	return ShardID((m.nextShard.Add(1) - 1) & (m.shards - 1))
}

func (m *Metrics) counter(name, help string) *Counter {
	c := &Counter{name: name, help: help, cells: make([]Cell, m.shards), mask: m.shards - 1}
	m.counters = append(m.counters, c)
	return c
}

func (m *Metrics) gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help, cells: make([]GaugeCell, m.shards), mask: m.shards - 1}
	m.gauges = append(m.gauges, g)
	return g
}

func (m *Metrics) histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, bounds, int(m.shards))
	m.hists = append(m.hists, h)
	return h
}
