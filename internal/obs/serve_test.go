package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func TestServeEndpoints(t *testing.T) {
	m := New()
	m.DES.EventsFired.Add(0, 11)
	srv, err := Serve(":0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want prometheus 0.0.4", ct)
	}
	if !strings.Contains(body, "bgpchurn_des_events_fired_total 11") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body, _ = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["bgpchurn"]; !ok {
		t.Errorf("/debug/vars missing bgpchurn var; keys: %d", len(vars))
	}
	var snap map[string]float64
	if err := json.Unmarshal(vars["bgpchurn"], &snap); err != nil {
		t.Fatalf("bgpchurn var is not a snapshot map: %v", err)
	}
	if snap["bgpchurn_des_events_fired_total"] != 11 {
		t.Errorf("expvar snapshot counter = %v, want 11", snap["bgpchurn_des_events_fired_total"])
	}

	code, body, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles listing")
	}
}

func TestServeSecondHubReplacesExpvar(t *testing.T) {
	// expvar registration is process-global; a second server must not panic
	// and /debug/vars must reflect the newest hub.
	m1 := New()
	s1, err := Serve(":0", m1)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	m2 := New()
	m2.BGP.WithdrawalsSent.Add(0, 3)
	s2, err := Serve(":0", m2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	_, body, _ := get(t, "http://"+s2.Addr()+"/debug/vars")
	if !strings.Contains(body, `"bgpchurn_bgp_withdrawals_sent_total":3`) &&
		!strings.Contains(body, `"bgpchurn_bgp_withdrawals_sent_total": 3`) {
		t.Errorf("/debug/vars does not reflect newest hub:\n%s", body)
	}
}
