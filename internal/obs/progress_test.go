package obs

import (
	"bufio"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProgressBrokerReplaysLatestPerType(t *testing.T) {
	b := NewProgressBroker()
	defer b.Close()
	b.Publish("cell", map[string]int{"n": 1})
	b.Publish("cell", map[string]int{"n": 2})
	b.Publish("attribution", map[string]int{"cells": 1})

	ch, replay := b.subscribe()
	if ch == nil {
		t.Fatal("subscribe on open broker returned nil")
	}
	defer b.unsubscribe(ch)
	if len(replay) != 2 {
		t.Fatalf("replay has %d messages, want 2 (latest per type)", len(replay))
	}
	// First-seen order: cell (latest one), then attribution.
	if replay[0].event != "cell" || !strings.Contains(string(replay[0].data), `"n":2`) {
		t.Fatalf("replay[0] = %s %s, want latest cell", replay[0].event, replay[0].data)
	}
	if replay[1].event != "attribution" {
		t.Fatalf("replay[1] = %s, want attribution", replay[1].event)
	}
}

func TestProgressBrokerNonBlockingPublishDrops(t *testing.T) {
	b := NewProgressBroker()
	defer b.Close()
	ch, _ := b.subscribe()
	defer b.unsubscribe(ch)
	// Fill the buffer and overflow it; the publisher must never block.
	for i := 0; i < subBuffer+10; i++ {
		b.Publish("cell", i)
	}
	if b.Dropped() != 10 {
		t.Fatalf("Dropped = %d, want 10", b.Dropped())
	}
	// The subscriber still drains the buffered prefix.
	m := <-ch
	if m.event != "cell" || m.id != 1 {
		t.Fatalf("first buffered message = %+v", m)
	}
}

func TestProgressBrokerCloseDisconnects(t *testing.T) {
	b := NewProgressBroker()
	ch, _ := b.subscribe()
	b.Close()
	if _, ok := <-ch; ok {
		t.Fatal("subscriber channel still open after Close")
	}
	if got, _ := b.subscribe(); got != nil {
		t.Fatal("subscribe after Close must return nil")
	}
	b.Publish("cell", 1) // must be a no-op, not a panic
	b.Close()            // idempotent
	if b.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d after Close", b.Subscribers())
	}
}

// sseClient connects to url and returns raw lines until the stream ends or
// limit lines arrive.
func sseClient(t *testing.T, url string, limit int) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for len(lines) < limit && sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}

func TestServeProgressEndpointStreams(t *testing.T) {
	m := New()
	srv, err := Serve(":0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	broker := srv.Progress()
	broker.Publish("cell", map[string]any{"scenario": "BASELINE", "n": 1000, "state": "done"})

	// Keep publishing until the client has connected and read its lines, so
	// the test never depends on subscribe/publish interleaving.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				broker.Publish("attribution", map[string]any{"cells": i})
			}
		}
	}()
	lines := sseClient(t, "http://"+srv.Addr()+"/progress", 12)
	close(stop)
	wg.Wait()

	joined := strings.Join(lines, "\n")
	if !strings.HasPrefix(lines[0], ":") {
		t.Fatalf("stream must start with a comment line, got %q", lines[0])
	}
	if !strings.Contains(joined, "event: cell") {
		t.Fatalf("no cell event in stream:\n%s", joined)
	}
	if !strings.Contains(joined, `"scenario":"BASELINE"`) {
		t.Fatalf("cell payload missing:\n%s", joined)
	}
	if !strings.Contains(joined, "event: attribution") {
		t.Fatalf("no attribution event in stream:\n%s", joined)
	}
	// Every data line must directly follow an event/id pair (SSE framing).
	for i, l := range lines {
		if strings.HasPrefix(l, "data: ") {
			if i < 2 || !strings.HasPrefix(lines[i-2], "event: ") || !strings.HasPrefix(lines[i-1], "id: ") {
				t.Fatalf("malformed framing around line %d:\n%s", i, joined)
			}
		}
	}
}

func TestServeAddrInUse(t *testing.T) {
	m := New()
	srv, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := Serve(srv.Addr(), New()); err == nil {
		t.Fatal("second Serve on a bound address must fail")
	}
}

func TestServeCloseWhileStreaming(t *testing.T) {
	m := New()
	srv, err := Serve(":0", m)
	if err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 256)
	go func() {
		defer close(lines)
		resp, err := http.Get("http://" + srv.Addr() + "/progress")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	// Publish until the client has observed a cell event, so shutdown below
	// happens mid-stream, with a live subscriber.
	sawEvent := false
	deadline := time.After(10 * time.Second)
	for !sawEvent {
		srv.Progress().Publish("cell", map[string]int{"n": 1})
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatal("stream ended before delivering any event")
			}
			if strings.HasPrefix(l, "event: cell") {
				sawEvent = true
			}
		case <-time.After(time.Millisecond):
		case <-deadline:
			t.Fatal("client never observed a cell event")
		}
	}
	// Tear the server down under the open stream: it must end, not hang.
	srv.Close()
	for {
		select {
		case _, ok := <-lines:
			if !ok {
				return // stream terminated cleanly
			}
		case <-time.After(10 * time.Second):
			t.Fatal("SSE stream did not terminate after server Close")
		}
	}
}

func TestServeCloseWhileScraping(t *testing.T) {
	// A metrics scrape racing server shutdown must not deadlock or panic;
	// each request either completes or fails with a connection error.
	m := New()
	srv, err := Serve(":0", m)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					return // server gone: expected after Close
				}
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	srv.Close()
	wg.Wait()
}
