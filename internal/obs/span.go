package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span levels, outermost to innermost. A sweep holds cells, a cell holds
// origins (one per simulated C-event source), and an origin holds events
// (the DOWN withdrawal phase and the UP re-announcement phase of one
// C-event, or one link failure/restore). The levels are plain strings so
// the recorder stays neutral: it knows nothing about BGP or the scheduler.
const (
	SpanSweep  = "sweep"
	SpanCell   = "cell"
	SpanOrigin = "origin"
	SpanEvent  = "event"
)

// SpanRecord is one completed span. Wall-clock fields are microseconds
// since the recorder's epoch; virtual-time fields are microseconds of
// simulation time (zero when the span has no virtual extent, e.g. a sweep).
// Stats carries the span's attribution numbers — for event spans the live
// Eq.-1 decomposition (updates, duplicate/implicit-withdrawal counts,
// per-type×relation U/q/e terms) keyed by short stable names.
type SpanRecord struct {
	Level string `json:"level"`
	Name  string `json:"name"`
	// Seq orders spans by completion within one recorder.
	Seq int64 `json:"seq"`
	// StartUS/DurUS are wall-clock microseconds relative to the recorder
	// epoch.
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	// VStartUS/VEndUS are virtual-time microseconds (simulation clock).
	VStartUS float64 `json:"vstart_us,omitempty"`
	VEndUS   float64 `json:"vend_us,omitempty"`
	// Scenario and N identify the grid cell the span belongs to.
	Scenario string `json:"scenario,omitempty"`
	N        int    `json:"n,omitempty"`
	// Origin is the event-originating node for origin/event spans.
	Origin int64 `json:"origin,omitempty"`
	// Cause is the root-cause ID carried by every update of the event.
	Cause uint64 `json:"cause,omitempty"`
	// Stats holds attribution numbers (see package bgp's EventAttribution).
	Stats map[string]float64 `json:"stats,omitempty"`
}

// SpanRecorder collects completed spans from concurrent workers. It is an
// opt-in tracing aid: appends take a mutex and may allocate, but they
// happen at phase boundaries (per event, per origin, per cell) — never on
// the per-update hot path, which only carries a cause ID.
type SpanRecorder struct {
	mu    sync.Mutex
	epoch time.Time
	seq   int64
	spans []SpanRecord
	// publish, when set via OnSpan, receives every span as it completes
	// (outside the recorder lock), feeding live progress streams.
	publish func(SpanRecord)
}

// NewSpanRecorder creates an empty recorder whose wall-clock epoch is now.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{epoch: time.Now()}
}

// Now returns the wall-clock microseconds since the recorder's epoch, for
// stamping SpanRecord.StartUS before the work being spanned begins.
func (r *SpanRecorder) Now() float64 {
	return float64(time.Since(r.epoch)) / float64(time.Microsecond)
}

// OnSpan installs fn to be called for every span appended from now on
// (nil uninstalls). fn runs on the appending goroutine, outside the
// recorder lock; it must be safe for concurrent calls.
func (r *SpanRecorder) OnSpan(fn func(SpanRecord)) {
	r.mu.Lock()
	r.publish = fn
	r.mu.Unlock()
}

// Append records a completed span, assigning its Seq.
func (r *SpanRecorder) Append(s SpanRecord) {
	r.mu.Lock()
	s.Seq = r.seq
	r.seq++
	r.spans = append(r.spans, s)
	fn := r.publish
	r.mu.Unlock()
	if fn != nil {
		fn(s)
	}
}

// Len returns the number of spans recorded so far.
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Snapshot returns the recorded spans in Seq order, as a fresh slice.
// Concurrent workers append in completion order, which is already Seq
// order, but the sort makes the contract explicit.
func (r *SpanRecorder) Snapshot() []SpanRecord {
	r.mu.Lock()
	out := append([]SpanRecord(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSONL writes the recorded spans in Seq order, one JSON object per
// line — the `-spans FILE` format.
func (r *SpanRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range r.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpanJSONL parses a stream produced by WriteJSONL. Blank lines are
// skipped; a malformed line is an error naming its line number.
func ReadSpanJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for line := 1; sc.Scan(); line++ {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("obs: span line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteChromeTrace writes the recorded spans as Chrome trace_event JSON
// (load via chrome://tracing or https://ui.perfetto.dev). Wall-clock spans
// land on pid 1 with one tid per level, so the sweep→cell→origin→event
// nesting reads as a flame graph; spans with a virtual-time extent are
// duplicated on pid 2 against the simulation clock, which lines events up
// by when they happened in the model rather than when a worker ran them.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	type chromeEvent struct {
		Name string             `json:"name"`
		Cat  string             `json:"cat"`
		Ph   string             `json:"ph"`
		TS   float64            `json:"ts"`
		Dur  float64            `json:"dur"`
		PID  int                `json:"pid"`
		TID  int                `json:"tid"`
		Args map[string]float64 `json:"args,omitempty"`
	}
	tid := func(level string) int {
		switch level {
		case SpanSweep:
			return 1
		case SpanCell:
			return 2
		case SpanOrigin:
			return 3
		default:
			return 4
		}
	}
	var evs []chromeEvent
	for _, s := range r.Snapshot() {
		name := s.Name
		if s.Scenario != "" {
			name = fmt.Sprintf("%s %s/n=%d", s.Name, s.Scenario, s.N)
		}
		evs = append(evs, chromeEvent{
			Name: name, Cat: s.Level, Ph: "X",
			TS: s.StartUS, Dur: s.DurUS,
			PID: 1, TID: tid(s.Level), Args: s.Stats,
		})
		if s.VEndUS > s.VStartUS {
			evs = append(evs, chromeEvent{
				Name: name, Cat: s.Level + "-virtual", Ph: "X",
				TS: s.VStartUS, Dur: s.VEndUS - s.VStartUS,
				PID: 2, TID: tid(s.Level), Args: s.Stats,
			})
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if _, err := bw.WriteString(`{"traceEvents":`); err != nil {
		return err
	}
	if evs == nil {
		evs = []chromeEvent{}
	}
	if err := enc.Encode(evs); err != nil {
		return err
	}
	// json.Encoder terminates with \n; the closing brace follows it.
	if _, err := bw.WriteString("}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
