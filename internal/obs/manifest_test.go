package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenManifest holds only the deterministic manifest fields — no
// timestamps, toolchain versions, revisions, or wall times — so its
// serialized form is stable across hosts and runs.
func goldenManifest() *Manifest {
	return &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Command:       []string{"experiments", "-fast", "-figs", "4"},
		Config: map[string]string{
			"fast":  "true",
			"figs":  "4",
			"seed":  "42",
			"procs": "4",
		},
		Seed:    42,
		Figures: []string{"4"},
		Cells: []CellTiming{
			{Scenario: "baseline", N: 500, Seed: 542, State: "done", ElapsedMS: 0},
			{Scenario: "baseline", N: 1000, Seed: 1042, State: "cached", ElapsedMS: 0},
			{Scenario: "mrai", N: 500, Seed: 542, State: "failed", ElapsedMS: 0, Err: "boom"},
		},
		Cache: CacheCounts{Hits: 1, Misses: 2, Evictions: 0},
		Counters: map[string]float64{
			"bgpchurn_core_cells_computed_total": 2,
			"bgpchurn_core_cells_cached_total":   1,
		},
	}
}

func TestManifestGolden(t *testing.T) {
	got, err := goldenManifest().MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "manifest.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("manifest drifted from golden (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestManifestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results", "manifest.json") // parent must be created
	mf := goldenManifest()
	mf.CreatedAt = "2026-01-02T03:04:05Z"
	mf.GoVersion = "go1.22.0"
	mf.GitRevision = "abc123"
	mf.WallSeconds = 1.5
	if err := mf.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != mf.Seed || got.Cache != mf.Cache || len(got.Cells) != len(mf.Cells) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Cells[2].Err != "boom" {
		t.Fatalf("Cells[2].Err = %q, want boom", got.Cells[2].Err)
	}
	// No temp files left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("expected only manifest.json in dir, found %d entries", len(ents))
	}
}

func TestGitRevisionNeverEmpty(t *testing.T) {
	if GitRevision() == "" {
		t.Fatal("GitRevision returned empty string; want revision or \"unknown\"")
	}
}
