package obs

import (
	"math"
	"testing"
)

func newTestHist(bounds []float64) *Histogram {
	return newHistogram("test_seconds", "test", bounds, 4)
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Prometheus semantics: upper bounds are inclusive — an observation
	// exactly equal to a bound lands in that bound's bucket, not the next.
	h := newTestHist([]float64{1, 2.5, 5})
	cases := []struct {
		v      float64
		bucket int // index into Counts; 3 is +Inf
	}{
		{0, 0},
		{0.999, 0},
		{1, 0}, // exactly on the first bound
		{1.0000001, 1},
		{2.5, 1}, // exactly on the second bound
		{4.9, 2},
		{5, 2}, // exactly on the last bound
		{5.0001, 3},
		{1e9, 3},
	}
	for _, c := range cases {
		h2 := newTestHist([]float64{1, 2.5, 5})
		h2.Observe(0, c.v)
		s := h2.Snapshot()
		for i, n := range s.Counts {
			want := uint64(0)
			if i == c.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%v): Counts[%d] = %d, want %d", c.v, i, n, want)
			}
		}
	}
	_ = h
}

func TestHistogramSumAndCount(t *testing.T) {
	h := newTestHist([]float64{1, 10})
	vals := []float64{0.5, 1, 7, 100}
	for i, v := range vals {
		h.Observe(ShardID(i), v) // spread over shards; snapshot must merge
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(vals))
	}
	if math.Abs(s.Sum-108.5) > 1e-9 {
		t.Fatalf("Sum = %v, want 108.5", s.Sum)
	}
	wantCounts := []uint64{2, 1, 1} // {0.5,1}, {7}, {100}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("Counts[%d] = %d, want %d", i, s.Counts[i], w)
		}
	}
}

func TestHistogramShardWraps(t *testing.T) {
	h := newTestHist([]float64{1})
	h.Observe(ShardID(1000), 0.5) // way past shard count; must mask, not panic
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted bounds")
		}
	}()
	newTestHist([]float64{5, 1})
}

func TestHistogramObserveAllocFree(t *testing.T) {
	h := newTestHist([]float64{0.001, 0.01, 0.1, 1, 10})
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0, 0.05)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f per run, want 0", allocs)
	}
}
