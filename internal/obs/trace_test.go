package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTraceAppendAndSnapshotOrder(t *testing.T) {
	tr := NewUpdateTrace(4)
	for i := 0; i < 3; i++ {
		tr.Append(TraceRecord{T: int64(i), From: int32(i), To: int32(i + 1), Prefix: 0, Kind: 0})
	}
	if tr.Len() != 3 || tr.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 3/0", tr.Len(), tr.Dropped())
	}
	s := tr.Snapshot()
	for i, r := range s {
		if r.T != int64(i) {
			t.Fatalf("Snapshot[%d].T = %d, want %d (oldest first)", i, r.T, i)
		}
	}
}

func TestTraceWrapOverwritesOldest(t *testing.T) {
	tr := NewUpdateTrace(4)
	for i := 0; i < 10; i++ {
		tr.Append(TraceRecord{T: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	s := tr.Snapshot()
	for i, want := range []int64{6, 7, 8, 9} {
		if s[i].T != want {
			t.Fatalf("Snapshot[%d].T = %d, want %d", i, s[i].T, want)
		}
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := NewUpdateTrace(8)
	want := []TraceRecord{
		{T: 100, From: 1, To: 2, Prefix: 0, Kind: 0},
		{T: 250, From: 2, To: 3, Prefix: 0, Kind: 1},
		{T: 300, From: 3, To: 1, Prefix: 1, Kind: 0},
	}
	for _, r := range want {
		tr.Append(r)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(want) {
		t.Fatalf("wrote %d lines, want %d", got, len(want))
	}
	got, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTraceJSONLSkipsBlankReportsBadLine(t *testing.T) {
	in := "{\"t\":1,\"from\":0,\"to\":1,\"prefix\":0,\"kind\":0}\n\n{\"t\":2,\"from\":1,\"to\":0,\"prefix\":0,\"kind\":1}\n"
	recs, err := ReadTraceJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	_, err = ReadTraceJSONL(strings.NewReader("{\"t\":1}\nnot-json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want error naming line 2, got %v", err)
	}
}

func TestTraceAppendAllocFree(t *testing.T) {
	tr := NewUpdateTrace(16)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Append(TraceRecord{T: 1, From: 2, To: 3})
	})
	if allocs != 0 {
		t.Fatalf("Append allocated %.1f per run, want 0", allocs)
	}
}

func TestKindString(t *testing.T) {
	if got := (TraceRecord{Kind: 0}).KindString(); got != "announce" {
		t.Fatalf("Kind 0 = %q", got)
	}
	if got := (TraceRecord{Kind: 1}).KindString(); got != "withdraw" {
		t.Fatalf("Kind 1 = %q", got)
	}
}

// TestTraceRecordFixedSize is the shared-slice-footgun regression guard: a
// ring-buffered record outlives Network.Reset, so it must never contain a
// reference-typed field (slice, pointer, string, map) that could pin
// engine-owned path storage. The AS path crosses into the ring only as its
// interned identity (PathID) plus a length.
func TestTraceRecordFixedSize(t *testing.T) {
	typ := reflect.TypeOf(TraceRecord{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		switch f.Type.Kind() {
		case reflect.Slice, reflect.Ptr, reflect.String, reflect.Map,
			reflect.Interface, reflect.Chan, reflect.Func, reflect.UnsafePointer:
			t.Fatalf("TraceRecord.%s has reference kind %s: records would retain engine-owned storage across Reset", f.Name, f.Type.Kind())
		}
	}
}
