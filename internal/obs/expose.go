package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), in registration order: counters, then gauges,
// then histograms. Scraping is lock-free — each shard is read atomically,
// so totals of quiescent metrics are exact and live ones at worst a few
// events stale.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	for _, c := range m.counters {
		if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", c.name, formatFloat(c.scaled())); err != nil {
			return err
		}
	}
	for _, g := range m.gauges {
		if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", g.name, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range m.hists {
		if err := writeHeader(w, h.name, h.help, "histogram"); err != nil {
			return err
		}
		s := h.Snapshot()
		var cum uint64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.name, formatFloat(s.Sum), h.name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns a flat name → value view of every metric: counters and
// gauges by name, histograms as <name>_count and <name>_sum. This is the
// "final counter snapshot" recorded in run manifests and published over
// expvar.
func (m *Metrics) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(m.counters)+len(m.gauges)+2*len(m.hists))
	for _, c := range m.counters {
		out[c.name] = c.scaled()
	}
	for _, g := range m.gauges {
		out[g.name] = float64(g.Value())
	}
	for _, h := range m.hists {
		s := h.Snapshot()
		out[h.name+"_count"] = float64(s.Count)
		out[h.name+"_sum"] = s.Sum
	}
	return out
}
