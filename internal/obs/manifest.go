package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime/debug"
)

// Manifest is the per-run provenance record cmd/experiments writes next to
// its CSVs (results/manifest.json): everything needed to reproduce or
// audit a run — configuration, seeds, toolchain and VCS revision, per-cell
// timings, cache traffic, and the final metric snapshot. Fields that are
// inherently non-deterministic (timestamps, wall times, host toolchain)
// are separated from the deterministic ones so golden tests can pin the
// latter.
type Manifest struct {
	// SchemaVersion identifies the manifest layout; bump on breaking
	// changes.
	SchemaVersion int `json:"schema_version"`
	// CreatedAt is the RFC 3339 wall-clock time the run finished.
	// Non-deterministic.
	CreatedAt string `json:"created_at,omitempty"`
	// GoVersion is runtime.Version(). Non-deterministic across hosts.
	GoVersion string `json:"go_version,omitempty"`
	// GitRevision is the VCS revision baked into the binary ("unknown"
	// outside a stamped build). Non-deterministic across commits.
	GitRevision string `json:"git_revision,omitempty"`
	// Command is the invocation (os.Args). Deterministic for a fixed
	// command line.
	Command []string `json:"command,omitempty"`
	// Config maps effective settings (flag name → value) for the run.
	Config map[string]string `json:"config,omitempty"`
	// Seed is the master seed.
	Seed uint64 `json:"seed"`
	// Figures lists the figure IDs rendered, sorted.
	Figures []string `json:"figures,omitempty"`
	// Cells holds one entry per grid-cell progress event in emission
	// order. Scenario/N/Seed/State are deterministic; ElapsedMS is not.
	Cells []CellTiming `json:"cells"`
	// Cache is the scheduler's cache traffic, matching the printed
	// summary.
	Cache CacheCounts `json:"cache"`
	// Outcomes counts cells per final outcome ("ok", "cached", "resumed",
	// "retried", "quarantined", "cancelled", "failed"). A cell that
	// succeeded after retries counts as "retried", not "ok".
	Outcomes map[string]int `json:"outcomes,omitempty"`
	// Interrupted is true when the run was cancelled (SIGINT/SIGTERM)
	// before completing; the manifest then describes a partial run that a
	// -resume invocation can finish.
	Interrupted bool `json:"interrupted,omitempty"`
	// Journal is the path of the cell checkpoint journal, when one was
	// written; JournalCells is how many checkpoints this run appended.
	Journal      string `json:"journal,omitempty"`
	JournalCells int    `json:"journal_cells,omitempty"`
	// Counters is the final metric snapshot (Metrics.Snapshot).
	Counters map[string]float64 `json:"counters,omitempty"`
	// WallSeconds is the total run wall time. Non-deterministic.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// CellTiming records one grid-cell progress event.
type CellTiming struct {
	Scenario string `json:"scenario"`
	N        int    `json:"n"`
	// Seed is the cell's effective topology seed.
	Seed uint64 `json:"seed"`
	// State is "done", "cached", "failed", "resumed", "retried",
	// "quarantined" or "cancelled".
	State string `json:"state"`
	// Attempts is the number of computation attempts, when more than the
	// event implies (a "done" cell that needed retries, a "quarantined"
	// cell's exhausted budget).
	Attempts int `json:"attempts,omitempty"`
	// ElapsedMS is the computation (or cache-wait) wall time.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Err carries the failure message for failed cells.
	Err string `json:"err,omitempty"`
}

// CacheCounts mirrors the experiment scheduler's cache statistics.
type CacheCounts struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Evictions int `json:"evictions"`
	// Fault-tolerance traffic; zero on a clean uncancelled run.
	Resumed     int `json:"resumed,omitempty"`
	Retries     int `json:"retries,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	Cancelled   int `json:"cancelled,omitempty"`
}

// ManifestSchemaVersion is the current Manifest layout version.
const ManifestSchemaVersion = 1

// MarshalIndented renders the manifest as stable, indented JSON (map keys
// sorted by encoding/json), the exact bytes WriteFile stores.
func (mf *Manifest) MarshalIndented() ([]byte, error) {
	b, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest to path, creating parent directories. The
// write goes through a temp file + rename so a crashed run never leaves a
// truncated manifest behind.
func (mf *Manifest) WriteFile(path string) error {
	b, err := mf.MarshalIndented()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mf Manifest
	if err := json.Unmarshal(b, &mf); err != nil {
		return nil, err
	}
	return &mf, nil
}

// GitRevision returns the VCS revision embedded by the Go toolchain
// ("unknown" when the build was not stamped, e.g. `go test` or a build
// outside a repository). A "+dirty" suffix marks uncommitted changes.
func GitRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}
