package obs

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// PeakRSSBytes returns the process's peak resident set size (the VmHWM
// high-water mark from /proc/self/status), or 0 where the proc filesystem
// is unavailable. It is the number the scale tier records next to ns/op in
// BENCH_scale.json: a monotone per-process maximum, so in a run measuring
// ascending topology sizes each reading is dominated by the largest cell
// completed so far.
func PeakRSSBytes() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
