package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceRecord is one processed update in the bounded trace ring: the
// virtual completion time, the sending and receiving ASes, the prefix and
// the update kind. Records are fixed-size on purpose — the AS path is
// carried as an intern identity (PathID) and a length, never as a slice —
// so appending never allocates, the ring's memory is bounded by its
// capacity alone, and a record can never retain engine-owned path storage
// across a Network Reset (TestTraceRecordFixedSize guards this).
type TraceRecord struct {
	// T is the virtual time in nanoseconds since simulation start.
	T int64 `json:"t"`
	// From and To are the sending and receiving AS node IDs.
	From int32 `json:"from"`
	To   int32 `json:"to"`
	// Prefix is the affected destination.
	Prefix int32 `json:"prefix"`
	// Kind is 0 for announce, 1 for withdraw.
	Kind uint8 `json:"kind"`
	// PathLen is the AS-path length (0 for withdrawals).
	PathLen uint16 `json:"path_len,omitempty"`
	// Cause is the root-cause ID of the routing event (C-event phase or
	// link event) whose propagation produced this update; 0 when causal
	// tracing is off.
	Cause uint32 `json:"cause,omitempty"`
	// PathID is the hash-consed path identity under the compact RIB
	// engine (0 when the classic engine is running or on withdrawals).
	PathID uint32 `json:"path_id,omitempty"`
}

// KindString names the record's update kind.
func (r TraceRecord) KindString() string {
	if r.Kind == 1 {
		return "withdraw"
	}
	return "announce"
}

// DefaultTraceCap is the ring capacity used when NewUpdateTrace is given a
// non-positive one: 65536 records ≈ 1.25 MB, several C-events' worth of
// updates at paper scale.
const DefaultTraceCap = 1 << 16

// UpdateTrace is a bounded ring buffer of update records, shared by every
// worker of an experiment. When full, the oldest records are overwritten
// (Dropped counts them), so the ring always holds the most recent window —
// the part that matters when debugging a cold/warm divergence after the
// fact. Append takes a mutex: the trace is an opt-in debugging aid on the
// update path, not a steady-state probe, and a mutex keeps concurrently
// appended records intact (no torn reads at snapshot time). It never
// allocates after construction.
type UpdateTrace struct {
	mu      sync.Mutex
	buf     []TraceRecord
	next    int  // index the next record is written to
	full    bool // the ring has wrapped at least once
	dropped uint64
}

// NewUpdateTrace creates a ring holding up to capacity records
// (DefaultTraceCap if capacity <= 0).
func NewUpdateTrace(capacity int) *UpdateTrace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &UpdateTrace{buf: make([]TraceRecord, capacity)}
}

// Append records one update, overwriting the oldest record when full.
func (t *UpdateTrace) Append(r TraceRecord) {
	t.mu.Lock()
	if t.full {
		t.dropped++
	}
	t.buf[t.next] = r
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Len returns the number of records currently held.
func (t *UpdateTrace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Dropped returns how many records were overwritten by the ring wrapping.
func (t *UpdateTrace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the held records oldest-first, as a fresh slice.
func (t *UpdateTrace) Snapshot() []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]TraceRecord(nil), t.buf[:t.next]...)
	}
	out := make([]TraceRecord, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// WriteJSONL writes the held records oldest-first, one JSON object per
// line.
func (t *UpdateTrace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.Snapshot() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceJSONL parses a stream produced by WriteJSONL. Blank lines are
// skipped; a malformed line is an error naming its line number.
func ReadTraceJSONL(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	for line := 1; sc.Scan(); line++ {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
