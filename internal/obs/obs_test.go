package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterShardingSumsAcrossShards(t *testing.T) {
	m := New()
	c := m.DES.EventsScheduled
	// Hit every shard explicitly; Value must be the sum.
	var want uint64
	for s := uint32(0); s < m.shards; s++ {
		c.Add(ShardID(s), uint64(s+1))
		want += uint64(s + 1)
	}
	if got := c.Value(); got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
}

func TestShardIDWrapsSafely(t *testing.T) {
	m := New()
	c := m.DES.EventsFired
	// A shard ID far beyond the shard count must mask down, not panic.
	c.Add(ShardID(m.shards*7+3), 5)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestShardRoundRobin(t *testing.T) {
	m := New()
	seen := make(map[ShardID]int)
	for i := uint32(0); i < 2*m.shards; i++ {
		seen[m.Shard()]++
	}
	if len(seen) != int(m.shards) {
		t.Fatalf("round-robin covered %d shards, want %d", len(seen), m.shards)
	}
	for s, n := range seen {
		if n != 2 {
			t.Fatalf("shard %d allocated %d times, want 2", s, n)
		}
	}
}

func TestGaugeNegativeDeltas(t *testing.T) {
	m := New()
	g := m.DES.RingOccupancy
	s := m.Shard()
	g.Add(s, 10)
	g.Add(s, -4)
	g.Cell(s).Add(-1)
	if got := g.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestProbeIncrementsAreAllocFree(t *testing.T) {
	m := New()
	des := m.NewDESProbes()
	bgp := m.NewBGPProbes()
	allocs := testing.AllocsPerRun(1000, func() {
		des.Scheduled.Inc()
		des.RingOcc.Add(1)
		des.RingOcc.Add(-1)
		bgp.AnnouncementsSent.Inc()
		bgp.ArenaBytes.Add(48)
	})
	if allocs != 0 {
		t.Fatalf("probe increments allocated %.1f per run, want 0", allocs)
	}
}

func TestConcurrentIncrementsExact(t *testing.T) {
	m := New()
	c := m.BGP.UpdatesProcessed
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cell := c.Cell(m.Shard())
			for j := 0; j < per; j++ {
				cell.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Value() = %d, want %d", got, goroutines*per)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	m := New()
	m.DES.EventsScheduled.Add(m.Shard(), 7)
	m.DES.RingOccupancy.Add(m.Shard(), 3)
	m.Core.CellSeconds.Observe(0, 0.5)

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP bgpchurn_des_events_scheduled_total ",
		"# TYPE bgpchurn_des_events_scheduled_total counter",
		"bgpchurn_des_events_scheduled_total 7\n",
		"# TYPE bgpchurn_des_ring_occupancy gauge",
		"bgpchurn_des_ring_occupancy 3\n",
		"# TYPE bgpchurn_core_cell_seconds histogram",
		`bgpchurn_core_cell_seconds_bucket{le="0.5"} 1`,
		`bgpchurn_core_cell_seconds_bucket{le="+Inf"} 1`,
		"bgpchurn_core_cell_seconds_sum 0.5\n",
		"bgpchurn_core_cell_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- output ---\n%s", want, out)
		}
	}
	// Buckets below the observed value must be cumulative zero.
	if !strings.Contains(out, `bgpchurn_core_cell_seconds_bucket{le="0.1"} 0`) {
		t.Errorf("expected empty le=0.1 bucket\n%s", out)
	}
}

func TestSnapshotCoversEveryMetric(t *testing.T) {
	m := New()
	snap := m.Snapshot()
	want := len(m.counters) + len(m.gauges) + 2*len(m.hists)
	if len(snap) != want {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), want)
	}
	m.BGP.MRAIFlushes.Add(0, 4)
	if got := m.Snapshot()["bgpchurn_bgp_mrai_flushes_total"]; got != 4 {
		t.Fatalf("snapshot counter = %v, want 4", got)
	}
}

func TestMetricNamesUniqueAndPrefixed(t *testing.T) {
	m := New()
	seen := map[string]bool{}
	check := func(name string) {
		t.Helper()
		if seen[name] {
			t.Errorf("duplicate metric name %q", name)
		}
		seen[name] = true
		if !strings.HasPrefix(name, "bgpchurn_") {
			t.Errorf("metric %q missing bgpchurn_ prefix", name)
		}
	}
	for _, c := range m.counters {
		check(c.Name())
	}
	for _, g := range m.gauges {
		check(g.Name())
	}
	for _, h := range m.hists {
		check(h.Name())
	}
}
