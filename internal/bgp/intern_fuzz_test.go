package bgp

import (
	"testing"

	"bgpchurn/internal/topology"
)

// FuzzInternTable drives the path intern table with an arbitrary op stream
// decoded from the fuzz input, shadowed by a reference map in both
// directions. The table must never alias distinct contents to one PathID,
// never mint two IDs for equal content, and never leak slab bytes —
// regardless of insertion order, duplication, or table growth.
//
// Op encoding, one byte plus operands:
//
//	bits 0-3: path length L-1 (L in 1..16)
//	bit 4:    if set and a previous canonical path exists, run a prepend op
//	          instead: one operand byte is the new first hop, the previous
//	          canonical path is the tail (exercising the hot-path
//	          constructor against plain intern).
//
// An intern op consumes 2L operand bytes as little-endian uint16 node IDs.
// Truncated operands end the stream.
func FuzzInternTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x07, 0x00})                                     // single [7]
	f.Add([]byte{0x02, 1, 0, 2, 0, 3, 0, 0x02, 1, 0, 2, 0, 3, 0})       // duplicate [1 2 3]
	f.Add([]byte{0x01, 0xff, 0xff, 0x00, 0x00, 0x10, 0x09, 0x10, 0x09}) // chain of prepends
	f.Fuzz(func(t *testing.T, data []byte) {
		it := newInternTable()
		ref := make(map[string]PathID)
		inv := make(map[PathID]string)
		var refBytes uint64
		var last Path

		record := func(p Path, canon Path, id PathID) {
			if id == NoPath {
				t.Fatalf("non-empty path %v interned as NoPath", p)
			}
			if !canon.Equal(p) {
				t.Fatalf("canonical %v differs from interned content %v", canon, p)
			}
			key := pathKey(p)
			if prev, ok := ref[key]; ok {
				if id != prev {
					t.Fatalf("content %v interned twice with IDs %d and %d", p, prev, id)
				}
			} else {
				if other, clash := inv[id]; clash {
					t.Fatalf("contents %x and %x collided on ID %d", other, key, id)
				}
				ref[key], inv[id] = id, key
				refBytes += uint64(4 * len(p))
			}
			if got := it.path(id); !got.Equal(p) || &got[0] != &canon[0] {
				t.Fatalf("path(%d) does not round-trip to canonical %v", id, p)
			}
		}

		i := 0
		for i < len(data) {
			op := data[i]
			i++
			if op&0x10 != 0 && last != nil {
				if i >= len(data) {
					break
				}
				first := topology.NodeID(data[i])
				i++
				full := append(Path{first}, last...)
				canon, id := it.prepend(first, last)
				record(full, canon, id)
				if len(canon) <= 64 { // bound chained growth
					last = canon
				}
				continue
			}
			n := int(op&0x0f) + 1
			if i+2*n > len(data) {
				break
			}
			p := make(Path, n)
			for k := 0; k < n; k++ {
				p[k] = topology.NodeID(uint16(data[i]) | uint16(data[i+1])<<8)
				i += 2
			}
			canon, id := it.intern(p)
			record(p, canon, id)
			last = canon
		}

		if it.len() != len(ref) {
			t.Fatalf("table holds %d entries, reference %d", it.len(), len(ref))
		}
		if got := it.bytesStored(); got != refBytes {
			t.Fatalf("bytesStored = %d, want %d: slab bytes leaked or deduplicated wrongly", got, refBytes)
		}
	})
}
