package bgp

import (
	"testing"
	"testing/quick"

	"bgpchurn/internal/rng"
	"bgpchurn/internal/topology"
)

func mustConsistent(t *testing.T, net *Network, stage string) {
	t.Helper()
	if err := net.CheckConsistency(); err != nil {
		t.Fatalf("%s: %v", stage, err)
	}
}

func TestConsistencyAfterConvergence(t *testing.T) {
	topo := topology.MustGenerate(genParams(400, 41))
	for _, cfg := range []Config{fastConfig(41), DefaultConfig(41), WRATEConfig(41)} {
		net := MustNew(topo, cfg)
		origin := topo.NodesOfType(topology.C)[1]
		net.Originate(origin, 1)
		net.Run()
		mustConsistent(t, net, "after announce")
		net.WithdrawPrefix(origin, 1)
		net.Run()
		mustConsistent(t, net, "after withdraw")
		net.Originate(origin, 1)
		net.Run()
		mustConsistent(t, net, "after re-announce")
	}
}

func TestConsistencyMultiPrefix(t *testing.T) {
	topo := topology.MustGenerate(genParams(300, 43))
	cfg := WRATEConfig(43)
	net := MustNew(topo, cfg)
	cNodes := topo.NodesOfType(topology.C)
	// Five prefixes at five different origins, announced back to back so
	// the per-interface MRAI timers couple them.
	for i := 0; i < 5; i++ {
		net.Originate(cNodes[i*3], Prefix(i+1))
	}
	net.Run()
	mustConsistent(t, net, "after batch announce")
	// Interleaved withdrawals and re-announcements.
	for i := 0; i < 5; i += 2 {
		net.WithdrawPrefix(cNodes[i*3], Prefix(i+1))
	}
	net.Run()
	mustConsistent(t, net, "after partial withdraw")
	for i := 0; i < 5; i += 2 {
		net.Originate(cNodes[i*3], Prefix(i+1))
	}
	net.Run()
	mustConsistent(t, net, "after restore")
	for i := 0; i < 5; i++ {
		if !net.HasRoute(0, Prefix(i+1)) {
			t.Fatalf("prefix %d missing at tier-1", i+1)
		}
	}
}

func TestConsistencyPerPrefixScopeMultiPrefix(t *testing.T) {
	topo := topology.MustGenerate(genParams(250, 47))
	cfg := WRATEConfig(47)
	cfg.Scope = PerPrefix
	net := MustNew(topo, cfg)
	cNodes := topo.NodesOfType(topology.C)
	for i := 0; i < 4; i++ {
		net.Originate(cNodes[i], Prefix(i+1))
	}
	net.Run()
	mustConsistent(t, net, "per-prefix announce")
	net.WithdrawPrefix(cNodes[0], 1)
	net.WithdrawPrefix(cNodes[1], 2)
	net.Run()
	mustConsistent(t, net, "per-prefix withdraw")
}

func TestConsistencyAfterLinkEvents(t *testing.T) {
	topo := topology.MustGenerate(genParams(300, 53))
	net := MustNew(topo, DefaultConfig(53))
	origin := topo.NodesOfType(topology.C)[2]
	net.Originate(origin, 1)
	net.Run()

	// Fail a batch of transit links near the core, converge, check, then
	// restore and check again.
	var failed [][2]topology.NodeID
	for _, m := range topo.NodesOfType(topology.M)[:5] {
		prov := topo.Nodes[m].Providers[0]
		if err := net.FailLink(m, prov); err != nil {
			t.Fatal(err)
		}
		failed = append(failed, [2]topology.NodeID{m, prov})
	}
	net.Run()
	mustConsistent(t, net, "after link failures")
	for _, l := range failed {
		if err := net.RestoreLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	mustConsistent(t, net, "after link restores")
	if !net.HasRoute(0, 1) {
		t.Fatal("route lost after restoring all links")
	}
}

func TestConsistencyRejectsNonQuiescent(t *testing.T) {
	topo := topology.MustGenerate(genParams(200, 59))
	net := MustNew(topo, DefaultConfig(59))
	net.Originate(topo.NodesOfType(topology.C)[0], 1)
	// No Run(): events pending.
	if err := net.CheckConsistency(); err == nil {
		t.Fatal("consistency check accepted a non-quiescent network")
	}
}

// Property: random small topologies with random event sequences always end
// in a consistent state with no valley paths.
func TestPropertyRandomEventSequences(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 80 + src.Intn(120)
		topo, err := topology.Generate(genParams(n, seed))
		if err != nil {
			return false
		}
		cfg := DefaultConfig(seed)
		if src.Bernoulli(0.5) {
			cfg.RateLimitWithdrawals = true
		}
		net := MustNew(topo, cfg)
		cNodes := topo.NodesOfType(topology.C)
		active := map[Prefix]topology.NodeID{}
		// Random interleaving of originations and withdrawals of up to 3
		// prefixes, running to quiescence after each step.
		for step := 0; step < 8; step++ {
			p := Prefix(1 + src.Intn(3))
			if origin, ok := active[p]; ok && src.Bernoulli(0.5) {
				net.WithdrawPrefix(origin, p)
				delete(active, p)
			} else if !ok {
				origin := cNodes[src.Intn(len(cNodes))]
				net.Originate(origin, p)
				active[p] = origin
			}
			net.Run()
		}
		return net.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPeakUpdateRate(t *testing.T) {
	topo := topology.MustGenerate(genParams(300, 61))
	net := MustNew(topo, DefaultConfig(61))
	if net.PeakUpdateRate() != 0 {
		t.Fatal("peak nonzero before any event")
	}
	net.Originate(topo.NodesOfType(topology.C)[0], 1)
	net.Run()
	peak := net.PeakUpdateRate()
	if peak == 0 {
		t.Fatal("peak not measured")
	}
	if peak > net.TotalUpdates() {
		t.Fatalf("peak %d exceeds total %d", peak, net.TotalUpdates())
	}
	net.ResetCounters()
	if net.PeakUpdateRate() != 0 {
		t.Fatal("peak survived ResetCounters")
	}
}
