//go:build race

package bgp

// raceEnabled is true in race-instrumented builds: the windowed executor
// always fans out to per-shard goroutines so the race tier exercises the
// concurrent paths regardless of GOMAXPROCS (see fanoutOK).
const raceEnabled = true
