package bgp

import "bgpchurn/internal/topology"

// This file implements warm-start convergence: computing the stable routing
// state for a single originated prefix directly from the topology, without
// running the discrete-event initial-propagation flood.
//
// Soundness. Under the engine's policy model — valley-free export, strict
// prefer-customer local preference, shortest AS path, deterministic tieHash
// tie-break — and the topology invariants (acyclic provider hierarchy, no
// peering inside the own customer tree), the converged state is the unique
// fixpoint of the per-node decision process and is independent of message
// timing, processing delays and MRAI jitter (Gao–Rexford safety). It can
// therefore be computed statically in three stages that mirror how routes
// are allowed to flow:
//
//	A. customer routes climb the provider DAG from the origin, breadth-first
//	   by advertisement path length (a node's best customer route is its
//	   shortest one, so BFS level order finalizes each node exactly once);
//	B. peer routes make a single hop: a node with no customer route takes
//	   the best route among peers that are customer- or self-routed (peer
//	   and provider routes are never exported to peers, so peer routes do
//	   not cascade);
//	C. provider routes cascade down the hierarchy in provider-DAG
//	   topological order: a node with neither customer nor peer route takes
//	   the best among its providers' advertisements, each already final.
//
// Every stage applies the engine's exact export predicate (including
// sender-side loop suppression, node.exportable) and the exact decision
// comparison (node.decide restricted to one preference class). The computed
// advertisements are then installed into Adj-RIB-Out/Adj-RIB-In pairs edge
// by edge, and each Loc-RIB is finalized by running node.decide itself, so
// the installed state is field-for-field the state the DES flood converges
// to. TestWarmStartMatchesDES asserts this equality against a real flood.

// Route-source classes used during the staged computation.
const (
	wsNone uint8 = iota
	wsSelf
	wsCustomer
	wsPeer
	wsProvider
)

// warmScratch is WarmStart's reusable working memory, cached on the Network
// so that the per-origin warm starts of an experiment sweep allocate it once.
type warmScratch struct {
	adv      []Path            // adv[v]: v's full advertisement path, nil = no route
	advID    []PathID          // advID[v]: interned ID of adv[v] (compact mode)
	class    []uint8           // class[v]: preference class of v's best route
	pending  []bool            // stage A: already queued for the next BFS level
	indeg    []int32           // stage C: unprocessed-provider counts
	order    []topology.NodeID // stage C: Kahn processing order
	frontier []topology.NodeID // stage A: current BFS level
	next     []topology.NodeID // stage A: next BFS level
}

// reset sizes the scratch for n nodes and clears every array.
func (w *warmScratch) reset(n int) {
	if cap(w.adv) < n {
		w.adv = make([]Path, n)
		w.advID = make([]PathID, n)
		w.class = make([]uint8, n)
		w.pending = make([]bool, n)
		w.indeg = make([]int32, n)
		w.order = make([]topology.NodeID, 0, n)
		w.frontier = make([]topology.NodeID, 0, n)
		w.next = make([]topology.NodeID, 0, n)
	}
	w.adv = w.adv[:n]
	w.advID = w.advID[:n]
	w.class = w.class[:n]
	w.pending = w.pending[:n]
	w.indeg = w.indeg[:n]
	clear(w.adv)
	clear(w.advID)
	clear(w.class)
	clear(w.pending)
	w.order = w.order[:0]
	w.frontier = w.frontier[:0]
	w.next = w.next[:0]
}

// WarmStart installs the converged routing state for prefix f originated at
// origin, as if the prefix had been announced and the network had fully
// converged and gone quiet — but without simulating the flood. It must be
// called on a freshly Reset network; it schedules no events, draws no
// randomness and touches no counters, so the subsequent DOWN/UP event phases
// start from virtual time zero with idle MRAI timers and zeroed counters
// (the same observable baseline the cold path reaches via Run + Settle +
// ResetCounters).
//
// Warm start is incompatible with flap dampening: the cold flood accrues
// per-session flap penalties that a static computation cannot reproduce.
// Callers gate on Config.Dampening.Enabled (see core.RunCEvents).
func (net *Network) WarmStart(origin topology.NodeID, f Prefix) {
	n := len(net.nodes)
	// adv[v] is v's full advertisement path ([v ... origin], nil = no
	// route); class[v] is the preference class of v's best route.
	net.ws.reset(n)
	adv, advID, class := net.ws.adv, net.ws.advID, net.ws.class
	class[origin] = wsSelf
	adv[origin], advID[origin] = net.warmPrepend(origin, nil)

	// Stage A: customer routes, breadth-first up the provider DAG. A node
	// enters the frontier the first level one of its customers exports to
	// it; at that moment its shortest customer routes are exactly the ones
	// already final, so a single decide over them is its final best.
	// (Customers finalized in the same or a later level advertise strictly
	// longer paths and can never win; they are still installed in the
	// Adj-RIB-In below.)
	frontier := append(net.ws.frontier, origin)
	next := net.ws.next
	pending := net.ws.pending
	for len(frontier) > 0 {
		next = next[:0]
		for _, u := range frontier {
			nd := &net.nodes[u]
			for j, rel := range nd.nbrRels {
				if rel != topology.Provider {
					continue
				}
				p := nd.nbrIDs[j]
				if class[p] != wsNone || pending[p] || adv[u].Contains(p) {
					continue
				}
				pending[p] = true
				next = append(next, p)
			}
		}
		for _, pid := range next {
			pending[pid] = false
			nd := &net.nodes[pid]
			if slot, _ := net.warmBest(nd, adv, class, topology.Customer); slot >= 0 {
				class[pid] = wsCustomer
				adv[pid], advID[pid] = net.warmPrepend(pid, adv[nd.nbrIDs[slot]])
			}
		}
		frontier, next = next, frontier
	}
	net.ws.frontier, net.ws.next = frontier, next // retain grown capacity

	// Stage B: one peer hop. Only customer- or self-routed peers export
	// across peering links, so these routes never propagate further and the
	// stage is a single order-independent pass.
	for i := range net.nodes {
		if class[i] != wsNone {
			continue
		}
		nd := &net.nodes[i]
		if slot, _ := net.warmBest(nd, adv, class, topology.Peer); slot >= 0 {
			class[i] = wsPeer
			adv[i], advID[i] = net.warmPrepend(nd.id, adv[nd.nbrIDs[slot]])
		}
	}

	// Stage C: provider routes, in provider-DAG topological order (Kahn):
	// when a node is processed all of its providers' advertisements are
	// final, whichever class they ended up in.
	indeg, order := net.ws.indeg, net.ws.order
	for i := range net.nodes {
		indeg[i] = int32(len(net.topo.Nodes[i].Providers))
		if indeg[i] == 0 {
			order = append(order, topology.NodeID(i))
		}
	}
	for k := 0; k < len(order); k++ {
		v := order[k]
		nd := &net.nodes[v]
		if class[v] == wsNone {
			if slot, _ := net.warmBest(nd, adv, class, topology.Provider); slot >= 0 {
				class[v] = wsProvider
				adv[v], advID[v] = net.warmPrepend(v, adv[nd.nbrIDs[slot]])
			}
		}
		for j, rel := range nd.nbrRels {
			if rel != topology.Customer {
				continue
			}
			c := nd.nbrIDs[j]
			if indeg[c]--; indeg[c] == 0 {
				order = append(order, c)
			}
		}
	}
	net.ws.order = order // retain grown capacity

	// Install phase: put each advertisement on the wire of every session its
	// export predicate allows, exactly as reconcile would — the same shared
	// Path slice lands in the sender's Adj-RIB-Out and the receiver's
	// Adj-RIB-In.
	for i := range net.nodes {
		nd := &net.nodes[i]
		full := adv[i]
		if full == nil {
			continue
		}
		fromCustomerOrSelf := class[i] == wsSelf || class[i] == wsCustomer
		for j := range nd.nbrIDs {
			if !nd.exportable(j, full, fromCustomerOrSelf) {
				continue
			}
			nd.out[j].lastSent.Set(f, full)
			to := &net.nodes[nd.nbrIDs[j]]
			if net.intern != nil {
				to.state(f).ribID[nd.reverse[j]] = advID[i]
			} else {
				to.state(f).ribIn[nd.reverse[j]] = full
			}
		}
	}

	// Finalize every Loc-RIB with the engine's own decision process over the
	// installed Adj-RIB-In, and pre-validate the cached advertisement body
	// (adv[i] is bestPath prepended with the own ID by construction, which is
	// what a converged network holds after its last reconcile).
	//
	// Every full path ends at the origin, so sender-side loop suppression
	// blocks every advertisement toward it: the origin's state must be
	// created explicitly.
	ops := net.nodes[origin].state(f)
	ops.selfOrigin = true
	for i := range net.nodes {
		nd := &net.nodes[i]
		ps, ok := nd.prefixes.Get(f)
		if !ok {
			continue
		}
		if net.intern != nil {
			ps.bestSlot, ps.bestID = nd.decideCompact(ps)
			ps.bestPath = net.intern.path(ps.bestID)
			ps.fullID = advID[i]
		} else {
			ps.bestSlot, ps.bestPath = nd.decide(ps)
		}
		ps.full, ps.fullValid = adv[i], true
	}
}

// warmPrepend builds the advertisement [id, tail...] in the engine's path
// storage: interned (deduplicated, with a stable PathID) in compact mode,
// allocated in the advertising node's shard arena otherwise. WarmStart is
// single-threaded, so the cross-shard arena writes are unsynchronized by
// design.
func (net *Network) warmPrepend(id topology.NodeID, tail Path) (Path, PathID) {
	if net.intern != nil {
		return net.intern.prepend(id, tail)
	}
	return net.nodes[id].arena.prepend(id, tail), NoPath
}

// warmBest runs the decision process over the subset of nd's neighbors with
// relation rel whose advertisement is exportable toward nd: for Customer and
// Peer sessions the engine's export predicate admits only customer- or
// self-routed senders, for Provider sessions any routed sender; in every
// case the path must not contain the recipient (sender-side loop
// suppression). Local preference is constant across one relation class, so
// the comparison reduces to node.decide's remaining tie-break chain:
// shortest path, then lowest tieHash, then (via strict improvement) the
// lowest slot.
func (net *Network) warmBest(nd *node, adv []Path, class []uint8, rel topology.Relation) (slot int, path Path) {
	best := noneSlot
	var bestPath Path
	bestLen := 0
	var bestHash uint64
	for j, r := range nd.nbrRels {
		if r != rel {
			continue
		}
		u := nd.nbrIDs[j]
		p := adv[u]
		if p == nil || p.Contains(nd.id) {
			continue
		}
		if rel != topology.Provider && class[u] != wsSelf && class[u] != wsCustomer {
			continue
		}
		plen, h := len(p), nd.tieHash[j]
		if best == noneSlot || plen < bestLen || (plen == bestLen && h < bestHash) {
			best, bestPath, bestLen, bestHash = j, p, plen, h
		}
	}
	if best == noneSlot {
		return -1, nil
	}
	return best, bestPath
}
