package bgp

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"bgpchurn/internal/obs"
	"bgpchurn/internal/topology"
)

// Path interning (the compact-RIB engine's storage layer). Every distinct
// AS path is stored exactly once in slab-backed storage and identified by a
// dense 32-bit PathID, so routing tables hold 4-byte IDs instead of 24-byte
// slice headers and path equality is an integer compare. See DESIGN.md
// (intern-table memory model) for ownership and lifetime rules.
//
// Concurrency: one table is shared by every shard of a sharded network.
// Writers (prepend misses) serialize on a mutex; readers (path, lenOf, len
// — the decision-process hot path) are lock-free. The published entries
// live in fixed-size chunks that never move, reached through a
// copy-on-grow directory behind an atomic pointer, and the entry count is
// stored (release) only after the entry itself is written, so a reader
// that learned an ID either through the count or through a barrier-
// synchronized message always observes the fully written span.

// PathID identifies an interned AS path in a Network's intern table. The
// zero value (NoPath) means "no path". IDs are dense, minted in first-intern
// order, and stable for the lifetime of the Network: Network.Reset rewinds
// routing state but deliberately keeps the intern table, so a PathID minted
// before a Reset still denotes the same path content afterwards (the paths
// of one topology recur event after event, and re-interning them would cost
// a hash probe per route change for no memory win).
//
// In a multi-shard run the VALUE of a PathID depends on the real-time
// interleaving of shard goroutines (first-intern order), so IDs are not
// reproducible run to run — but they are semantically inert: the engine
// uses IDs only for equality (same content ⟺ same ID within one run) and
// as handles to content, never for ordering or arithmetic, so simulation
// results remain byte-identical (the determinism tier enforces this).
type PathID uint32

// NoPath is the PathID of "no route".
const NoPath PathID = 0

// pathSpan is one published intern entry: the canonical capacity-clamped
// Path view of the slab storage that path() hands out.
type pathSpan struct {
	p Path
}

// internChunkShift sizes the published-entry chunks (1024 spans each).
// Chunks never move once allocated; the directory grows by copy.
const internChunkShift = 10
const internChunkSize = 1 << internChunkShift

type internChunk [internChunkSize]pathSpan

// internSlabElems is the slab size in NodeIDs (64 KiB). Slabs are never
// reallocated or moved once created — canonical Path slices handed out by
// the table stay valid forever — and a path never spans two slabs
// (oversized paths get a dedicated slab).
const internSlabElems = 1 << 14

// internTable hash-conses AS paths: intern maps path content to a PathID,
// path maps the ID back to a canonical Path sub-slice of the slab storage.
// Identical content always yields the identical PathID and the identical
// backing memory, so Path.Equal's identity fast-path makes canonical-path
// comparison O(1). Each Network owns one; in a sharded network all shards
// share it (mutex writers, lock-free readers — see the package comment
// above).
type internTable struct {
	// count is the number of published entries including the NoPath
	// sentinel (== the next PathID to mint). Stored by writers after the
	// span write, so count.Load is an acquire barrier for readers that
	// bound IDs by it.
	count atomic.Uint32
	// dir is the chunk directory: dir.Load()[id>>shift][id&mask] is the
	// published span for id. Grown by copy under mu; old directories stay
	// valid for the IDs they cover.
	dir atomic.Pointer[[]*internChunk]

	// Everything below is guarded by mu (writers only).
	mu     sync.Mutex
	slabs  [][]topology.NodeID
	hashes []uint64 // content hash per PathID, for cheap table growth
	// tab is the open-addressing (linear probe) hash table over PathIDs;
	// 0 marks an empty bucket. Always a power of two, grown at 3/4 load.
	tab  []PathID
	mask uint64

	// probes, when non-nil, feed the obs hub: distinct paths interned,
	// bytes of slab storage handed out, and lookup hits (paths already
	// present).
	entriesProbe *obs.Cell
	bytesProbe   *obs.Cell
	hitsProbe    *obs.Cell
}

// newInternTable returns an empty table with the NoPath sentinel reserved.
func newInternTable() *internTable {
	const initialBuckets = 1 << 10
	it := &internTable{
		hashes: make([]uint64, 1, 1024),
		tab:    make([]PathID, initialBuckets),
		mask:   initialBuckets - 1,
	}
	dir := []*internChunk{new(internChunk)}
	it.dir.Store(&dir)
	it.count.Store(1) // the NoPath sentinel (chunk zero value: nil Path)
	return it
}

// setProbes attaches (or, with nils, detaches) observability cells. Called
// only at attach time (quiescent), never concurrently with prepend.
func (it *internTable) setProbes(entries, bytes, hits *obs.Cell) {
	it.entriesProbe, it.bytesProbe, it.hitsProbe = entries, bytes, hits
}

// len returns the number of distinct paths interned.
func (it *internTable) len() int { return int(it.count.Load()) - 1 }

// span returns the published span for id (lock-free).
func (it *internTable) span(id PathID) pathSpan {
	d := *it.dir.Load()
	return d[id>>internChunkShift][id&(internChunkSize-1)]
}

// path returns the canonical Path for id (nil for NoPath). The result is a
// capacity-clamped view of slab storage: immutable by contract, identical
// backing memory for every call with the same id.
func (it *internTable) path(id PathID) Path {
	if id == NoPath {
		return nil
	}
	return it.span(id).p
}

// lenOf returns the length of the interned path (0 for NoPath).
func (it *internTable) lenOf(id PathID) int {
	return len(it.span(id).p)
}

// mixID folds one path element into a running content hash
// (Murmur3-finalizer-style multiply-rotate, collisions resolved by compare).
func mixID(h uint64, v topology.NodeID) uint64 {
	h ^= uint64(uint32(v)) * 0xff51afd7ed558ccd
	h = bits.RotateLeft64(h, 31)
	return h * 0xc4ceb9fe1a85ec53
}

// hashSeq hashes the virtual sequence [first, tail...] without
// materializing it (prepend interns straight off the parent path).
func hashSeq(first topology.NodeID, tail Path) uint64 {
	h := uint64(0x9e3779b97f4a7c15) ^ uint64(len(tail)+1)
	h = mixID(h, first)
	for _, v := range tail {
		h = mixID(h, v)
	}
	return h
}

// spanEqualSeq reports whether the stored span equals [first, tail...].
func (it *internTable) spanEqualSeq(id PathID, first topology.NodeID, tail Path) bool {
	b := it.span(id).p
	if len(b) != len(tail)+1 || b[0] != first {
		return false
	}
	for i, v := range tail {
		if b[i+1] != v {
			return false
		}
	}
	return true
}

// prepend interns the path [first, tail...] and returns its canonical Path
// and PathID. tail may be nil (a one-element origin path). This is the
// engine's only path constructor in compact mode: advertisement bodies and
// warm-start routes all funnel through it, so every Path in a compact
// network is canonical. Safe for concurrent use by shard goroutines.
func (it *internTable) prepend(first topology.NodeID, tail Path) (Path, PathID) {
	h := hashSeq(first, tail)
	it.mu.Lock()
	i := h & it.mask
	for {
		id := it.tab[i]
		if id == NoPath {
			break
		}
		if it.hashes[id] == h && it.spanEqualSeq(id, first, tail) {
			p := it.span(id).p
			it.mu.Unlock()
			if it.hitsProbe != nil {
				it.hitsProbe.Inc()
			}
			return p, id
		}
		i = (i + 1) & it.mask
	}
	// Miss: copy the content into slab storage and publish the new ID.
	n := len(tail) + 1
	dst := it.alloc(n)
	dst[0] = first
	copy(dst[1:], tail)
	id := PathID(it.count.Load())
	canon := Path(dst[:n:n])
	it.publish(id, canon)
	it.hashes = append(it.hashes, h)
	it.tab[i] = id
	if int(id)*4 >= len(it.tab)*3 {
		it.grow()
	}
	it.mu.Unlock()
	if it.entriesProbe != nil {
		it.entriesProbe.Inc()
	}
	if it.bytesProbe != nil {
		it.bytesProbe.Add(uint64(n) * nodeIDBytes)
	}
	return canon, id
}

// publish makes id -> p visible to lock-free readers: ensure the chunk
// exists (directory copy-on-grow behind the atomic pointer), write the
// span, then store the raised entry count last so the count is a release
// of the span write. Callers hold mu.
func (it *internTable) publish(id PathID, p Path) {
	d := *it.dir.Load()
	ci := int(id >> internChunkShift)
	if ci == len(d) {
		nd := make([]*internChunk, len(d)+1)
		copy(nd, d)
		nd[ci] = new(internChunk)
		it.dir.Store(&nd)
		d = nd
	}
	d[ci][id&(internChunkSize-1)] = pathSpan{p: p}
	it.count.Store(uint32(id) + 1)
}

// intern interns an existing path (nil maps to NoPath). Equivalent to
// prepend(p[0], p[1:]); used by tests and cold paths.
func (it *internTable) intern(p Path) (Path, PathID) {
	if len(p) == 0 {
		return nil, NoPath
	}
	return it.prepend(p[0], p[1:])
}

// alloc carves n elements out of the current slab, starting a new slab when
// it does not fit. Existing slabs are never moved, so previously returned
// canonical paths stay valid. Callers hold mu.
func (it *internTable) alloc(n int) []topology.NodeID {
	if k := len(it.slabs); k > 0 {
		b := it.slabs[k-1]
		if len(b)+n <= cap(b) {
			off := len(b)
			b = b[: len(b)+n : cap(b)]
			it.slabs[k-1] = b
			return b[off:]
		}
	}
	sz := internSlabElems
	if n > sz {
		sz = n // oversized path: dedicated slab
	}
	b := make([]topology.NodeID, n, sz)
	it.slabs = append(it.slabs, b)
	return b
}

// grow doubles the hash table and re-inserts every ID by its stored hash.
// Callers hold mu.
func (it *internTable) grow() {
	nt := make([]PathID, len(it.tab)*2)
	mask := uint64(len(nt) - 1)
	for id := PathID(1); int(id) < len(it.hashes); id++ {
		i := it.hashes[id] & mask
		for nt[i] != NoPath {
			i = (i + 1) & mask
		}
		nt[i] = id
	}
	it.tab, it.mask = nt, mask
}

// bytesStored returns the slab bytes holding interned path content.
func (it *internTable) bytesStored() uint64 {
	it.mu.Lock()
	defer it.mu.Unlock()
	var n uint64
	for _, b := range it.slabs {
		n += uint64(len(b)) * nodeIDBytes
	}
	return n
}

// InternStats reports the compact engine's intern-table occupancy: distinct
// paths stored and the bytes of path content backing them. Zero when the
// network runs the classic slice-path engine.
func (net *Network) InternStats() (paths int, bytes uint64) {
	if net.intern == nil {
		return 0, 0
	}
	return net.intern.len(), net.intern.bytesStored()
}
