package bgp

import (
	"testing"

	"bgpchurn/internal/des"
	"bgpchurn/internal/topology"
)

func TestMRAIBatchFlushSendsAllPendingPrefixes(t *testing.T) {
	// O(2) originates prefix 1, then two more prefixes while A(1)'s timer
	// toward B(0) is running: both must be delivered in the SAME flush (one
	// timer expiry), not serialized one-per-MRAI.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, DefaultConfig(3))
	net.Originate(2, 1)
	net.Run() // prefix 1 delivered immediately; A's timer to B now runs
	first := net.Now()
	net.Originate(2, 2)
	net.Originate(2, 3)
	net.Run()
	elapsed := net.Now() - first
	// One MRAI wait (jittered 22.5–30 s) plus processing, not two.
	if elapsed > 35*des.Second {
		t.Fatalf("batched prefixes took %v, expected a single MRAI round", elapsed)
	}
	for f := Prefix(1); f <= 3; f++ {
		if !net.HasRoute(0, f) {
			t.Fatalf("prefix %d missing at B", f)
		}
	}
}

func TestRIBSizes(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, nil)
	net := MustNew(topo, fastConfig(1))
	if net.RIBSize(0) != 0 || net.AdjRIBInSize(0) != 0 {
		t.Fatal("non-empty RIB before any announcement")
	}
	net.Originate(3, 1)
	net.Originate(3, 2)
	net.Run()
	// T0 selects both prefixes and hears each from both M customers.
	if got := net.RIBSize(0); got != 2 {
		t.Fatalf("RIBSize(T0) = %d, want 2", got)
	}
	if got := net.AdjRIBInSize(0); got != 4 {
		t.Fatalf("AdjRIBInSize(T0) = %d, want 4 (2 prefixes x 2 customers)", got)
	}
	net.WithdrawPrefix(3, 1)
	net.Run()
	if got := net.RIBSize(0); got != 1 {
		t.Fatalf("RIBSize(T0) after withdraw = %d, want 1", got)
	}
}

func TestDampeningComposesWithWRATE(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	cfg := WRATEConfig(9)
	cfg.Dampening = DefaultDampening()
	net := MustNew(topo, cfg)
	net.Originate(2, 1)
	net.Run()
	net.Settle(60 * des.Second)
	// Flap hard; under WRATE each flap is also rate-limited, but the
	// penalties still accumulate at M1.
	for i := 0; i < 6; i++ {
		net.WithdrawPrefix(2, 1)
		net.RunUntil(net.Now() + 40*des.Second)
		net.Originate(2, 1)
		net.RunUntil(net.Now() + 40*des.Second)
	}
	if net.Suppressions(1) == 0 {
		t.Fatal("no suppression under WRATE+dampening")
	}
	if net.HasRoute(0, 1) {
		t.Fatal("flapping route not suppressed upstream")
	}
}

func TestDampeningComposesWithPerPrefixScope(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	cfg := fastConfig(11)
	cfg.Scope = PerPrefix
	cfg.Dampening = DefaultDampening()
	net := MustNew(topo, cfg)
	net.Originate(2, 1)
	net.Originate(2, 2)
	net.Run()
	// Flap prefix 1 only; prefix 2 must stay routable throughout.
	for i := 0; i < 4; i++ {
		net.WithdrawPrefix(2, 1)
		net.RunUntil(net.Now() + 10*des.Second)
		net.Originate(2, 1)
		net.RunUntil(net.Now() + 10*des.Second)
	}
	if net.HasRoute(0, 1) {
		t.Fatal("flapped prefix not suppressed")
	}
	if !net.HasRoute(0, 2) {
		t.Fatal("dampening leaked across prefixes")
	}
}

func TestLinkEventsDuringMRAIConvergence(t *testing.T) {
	// Fail a link while announcements are still rate-limit-queued; the
	// network must converge to a consistent state regardless.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, nil)
	net := MustNew(topo, WRATEConfig(13))
	net.Originate(3, 1)
	net.RunUntil(net.Now() + des.Second) // mid-convergence
	if err := net.FailLink(1, 3); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if err := net.CheckConsistency(); err != nil {
		t.Fatalf("inconsistent after mid-convergence failure: %v", err)
	}
	if !net.HasRoute(0, 1) {
		t.Fatal("alternate path not used")
	}
	if got := net.NextHop(0, 1); got != 2 {
		t.Fatalf("T0 routes via %d, want surviving branch 2", got)
	}
	if err := net.RestoreLink(1, 3); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if err := net.CheckConsistency(); err != nil {
		t.Fatalf("inconsistent after restore: %v", err)
	}
}

func TestPeerRoutePreferredOverProvider(t *testing.T) {
	// X(1, M) can reach origin via peer Z(2, M) or provider T(0); both
	// paths exist. Peer must win.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {0, 2}, {2, 3}},
		[][2]topology.NodeID{{1, 2}})
	net := MustNew(topo, fastConfig(17))
	net.Originate(3, 1)
	net.Run()
	// X learns [2,3] from peer Z (customer route of Z, exported to peers)
	// and [0,2,3] from provider T.
	if got := net.NextHop(1, 1); got != 2 {
		t.Fatalf("X routes via %d, want peer 2 (path %v)", got, net.BestPath(1, 1))
	}
}

func TestWithdrawOnlyToNeighborsThatHeardRoute(t *testing.T) {
	// M1 learns a provider route; it exports to customer C3 but not to
	// peer M2. On withdrawal, M2 must receive nothing.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 3}},
		[][2]topology.NodeID{{1, 2}})
	net := MustNew(topo, fastConfig(19))
	net.Originate(0, 1)
	net.Run()
	net.ResetCounters()
	net.WithdrawPrefix(0, 1)
	net.Run()
	if got := net.Counters(2).Received; got != 0 {
		t.Fatalf("peer M2 received %d updates for a route it never had", got)
	}
	if got := net.Counters(3).Received; got != 1 {
		t.Fatalf("customer C3 received %d updates, want 1 withdrawal", got)
	}
}
