package bgp

// Sharded deterministic execution (the windowed engine). With a positive
// Config.LinkDelay the network runs in barrier-synchronized windows of
// width W = LinkDelay: transmit appends wire messages to per-shard
// outboxes instead of admitting them inline, and every barrier admits the
// accumulated messages in the canonical (arrival, sender, senderSeq) order
// before the shards run — in parallel when Config.Shards > 1 — to the next
// window end. Because every message takes exactly LinkDelay to propagate
// and windows never span more than W of fired events (NextWindow rounds
// the earliest pending event up to a multiple of W), nothing fired inside
// a window can affect another shard before the following barrier, and the
// canonical admission order makes the merged per-node event order — hence
// RNG draws, tie-breaks, MRAI flush timing and all results — independent
// of the shard count. The full correctness argument is in DESIGN.md,
// "Sharded DES".

import (
	"runtime"
	"slices"
	"sync"
	"time"

	"bgpchurn/internal/des"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/topology"
)

// wireMsg is one update in flight between windows: the full delivery
// payload plus the canonical merge key (arrival, sender, seq). seq is the
// sender's per-node message counter, so the key is a total order (same
// sender ⇒ distinct seq; different senders ⇒ distinct sender) that depends
// only on simulation state, never on the partition.
type wireMsg struct {
	arrival  des.Time
	sender   topology.NodeID
	seq      uint64
	to       topology.NodeID
	fromSlot int32
	kind     UpdateKind
	prefix   Prefix
	path     Path
	pathID   PathID
	// cause is the update's root cause (0 when tracing is off); it rides
	// the barrier merge untouched — admission order never looks at it.
	cause CauseID
}

// rateSec is one second of a shard's update-rate log (see tickRate).
type rateSec struct {
	sec   des.Time
	count uint64
}

// netShard is one barrier-synchronized partition of the network: a
// contiguous node range with a private event queue, path arena, counters
// and event pools. The classic engine runs exactly one; the windowed
// engine runs Config.Shards of them. During a window only the owning
// goroutine touches a shard's state (and the state of the nodes it owns);
// between windows the barrier's WaitGroup edges order all cross-shard
// reads after the writes they observe.
type netShard struct {
	net *Network
	idx int
	// lo/hi is the owned node range [lo, hi) in CSR index order.
	lo, hi int32

	sched des.Scheduler

	// activeCause is the root cause of whatever this shard is currently
	// firing: procEvent.Fire sets it from the event, the flush events set
	// it per drained pendingUpdate, and BeginCause stamps it at event
	// start so API-triggered sends inherit the root. Only the owning
	// goroutine touches it during a window.
	activeCause CauseID

	// paths bump-allocates every path the shard's nodes create
	// (advertisement bodies, warm-start routes); Reset drops its slab, see
	// pathArena.
	paths pathArena

	// totalUpdates counts updates processed by this shard's nodes since the
	// last ResetCounters.
	totalUpdates uint64
	// rateBucket/rateCount/ratePeak track the busiest virtual second inline
	// — constant space — on single-shard networks, where the shard's peak
	// is the network's peak.
	rateBucket des.Time
	rateCount  uint64
	ratePeak   uint64
	// rateLog records (second, count) pairs, nondecreasing in time, on
	// multi-shard networks; PeakUpdateRate merges the shard logs and takes
	// the max of the per-second sums, which no running per-shard max could
	// reconstruct. Capacity is retained across ResetCounters.
	rateLog []rateSec

	// probes is this shard's protocol probe block; nil when obs is
	// detached.
	probes *obs.BGPProbes

	// outbox[d] accumulates the window's wire messages addressed to shard
	// d (including d == idx: in windowed mode every update crosses a
	// barrier, so single- and multi-shard runs admit in identical order).
	outbox [][]wireMsg
	// inbox is admitDest's merge scratch; cross is its cross-shard message
	// count for the exchange probe.
	inbox []wireMsg
	cross uint64

	// procFree, flushFree and prefixFlushFree recycle the dominant event
	// kinds: an event returns its receiver to the free list at the end of
	// Fire (the scheduler holds no reference by then), and deliver or
	// ensureFlush reuse it for the next send. Steady-state simulation
	// therefore allocates no event objects at all. Ownership rules are in
	// DESIGN.md (kernel memory model).
	procFree        []*procEvent
	flushFree       []*flushEvent
	prefixFlushFree []*prefixFlushEvent
}

// runWindowed is the barrier-synchronized executor: admit pending wire
// messages, find the earliest pending event across shards, run every shard
// to the next window boundary, repeat. A negative deadline means run to
// quiescence. Returns the number of events fired.
func (net *Network) runWindowed(deadline des.Time) uint64 {
	var fired uint64
	w := net.cfg.LinkDelay
	// The updateHook is not required to be thread-safe; with one attached
	// the windows execute their shards sequentially (the admission order —
	// and therefore every result — is unchanged; only wall-clock and the
	// interleaving of trace records across shards differ).
	parallel := net.multi && net.updateHook == nil && fanoutOK()
	for {
		net.exchange()
		tmin, ok := des.GroupPeek(net.scheds)
		if !ok {
			break
		}
		if deadline >= 0 && tmin > deadline {
			break
		}
		e := des.NextWindow(tmin, w)
		if deadline >= 0 && e > deadline {
			e = deadline
		}
		if p := net.shardProbes; p != nil {
			p.Barriers.Inc()
			fired += des.RunGroupUntil(net.scheds, e, parallel, net.firedScratch, net.elapsedScratch)
			p.ObserveSkew(skew(net.elapsedScratch))
		} else {
			fired += des.RunGroupUntil(net.scheds, e, parallel, net.firedScratch, nil)
		}
	}
	if deadline >= 0 {
		// Advance every shard clock to the deadline. No shard has an event
		// at or before it (GroupPeek said so), so this fires nothing.
		for _, s := range net.scheds {
			if s.Now() < deadline {
				s.RunUntil(deadline)
			}
		}
	}
	return fired
}

// skew is the max-min spread of the window's per-shard wall times.
func skew(elapsed []time.Duration) time.Duration {
	lo, hi := elapsed[0], elapsed[0]
	for _, d := range elapsed[1:] {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return hi - lo
}

// exchange drains every shard's outboxes and admits the messages on their
// destination shards in canonical (arrival, sender, seq) order —
// per-destination, in parallel, since admissions touch only receiver-shard
// state. Admission draws the receiver's processing delay and reserves its
// completion ticket exactly like the classic inline path (see deliver), so
// the per-node event sequence is the same one a single shard would
// produce.
func (net *Network) exchange() {
	pending := false
	for _, sh := range net.shards {
		for _, ob := range sh.outbox {
			if len(ob) > 0 {
				pending = true
				break
			}
		}
		if pending {
			break
		}
	}
	if !pending {
		return
	}
	if net.multi && fanoutOK() {
		var wg sync.WaitGroup
		wg.Add(len(net.shards) - 1)
		for _, dst := range net.shards[1:] {
			go func(dst *netShard) {
				defer wg.Done()
				net.admitDest(dst)
			}(dst)
		}
		net.admitDest(net.shards[0])
		wg.Wait()
	} else {
		for _, dst := range net.shards {
			net.admitDest(dst)
		}
	}
	if p := net.shardProbes; p != nil {
		var cross uint64
		for _, sh := range net.shards {
			cross += sh.cross
		}
		p.CrossUpdates.Add(cross)
	}
}

// fanoutOK reports whether spawning per-shard goroutines can pay off: with
// a single schedulable CPU the fan-out is pure scheduling overhead, so the
// windows run their shards on the caller instead (admission order, and
// therefore every result, is identical either way — only wall-clock
// differs). Race-instrumented builds always fan out so the race tier
// exercises the concurrent paths even on one core.
func fanoutOK() bool { return raceEnabled || runtime.GOMAXPROCS(0) > 1 }

// admitDest gathers the messages addressed to dst from every source
// outbox, sorts them by the canonical key and admits them in that order.
// Source outbox slots for dst are disjoint across concurrent admitDest
// calls, so truncating them here is race-free.
func (net *Network) admitDest(dst *netShard) {
	buf := dst.inbox[:0]
	var cross uint64
	for _, src := range net.shards {
		msgs := src.outbox[dst.idx]
		if len(msgs) == 0 {
			continue
		}
		if src != dst {
			cross += uint64(len(msgs))
		}
		buf = append(buf, msgs...)
		clear(msgs) // release path references held by the outbox
		src.outbox[dst.idx] = msgs[:0]
	}
	dst.cross = cross
	slices.SortFunc(buf, func(a, b wireMsg) int {
		switch {
		case a.arrival != b.arrival:
			if a.arrival < b.arrival {
				return -1
			}
			return 1
		case a.sender != b.sender:
			if a.sender < b.sender {
				return -1
			}
			return 1
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		default:
			return 0 // unreachable: (sender, seq) is unique
		}
	})
	for i := range buf {
		m := &buf[i]
		net.deliver(&net.nodes[m.to], m.arrival, m.fromSlot, m.prefix, m.kind, m.path, m.pathID, m.cause)
		buf[i] = wireMsg{} // release the path
	}
	dst.inbox = buf[:0]
}

// tickRate advances the shard's updates-per-second accounting by one
// processed update (see the field comments on netShard for the two
// representations).
func (sh *netShard) tickRate() {
	bucket := sh.sched.Now() / des.Second
	if !sh.net.multi {
		if bucket != sh.rateBucket {
			sh.rateBucket, sh.rateCount = bucket, 0
		}
		sh.rateCount++
		if sh.rateCount > sh.ratePeak {
			sh.ratePeak = sh.rateCount
		}
		return
	}
	if n := len(sh.rateLog); n > 0 && sh.rateLog[n-1].sec == bucket {
		sh.rateLog[n-1].count++
		return
	}
	sh.rateLog = append(sh.rateLog, rateSec{sec: bucket, count: 1})
}
