package bgp

// Causal churn tracing. Every in-flight update carries a compact root-cause
// ID — the routing event (C-event phase or link event) whose propagation
// produced it — threaded through processing events, MRAI output queues and
// shard merges. With a tracer attached the network additionally accumulates
// a per-event provenance summary: updates received per node type × neighbor
// relation (the live Eq.-1 m·q·e decomposition), path-exploration depth,
// and duplicate/implicit-withdrawal classification.
//
// Propagation rules (see DESIGN.md, "Causal tracing"):
//
//   - BeginCause stamps a fresh CauseID as every shard's active cause; API
//     entry points (Originate, WithdrawPrefix, FailLink, RestoreLink) run
//     under it, so the first wave of transmissions inherits the root.
//   - procEvent.Fire sets the firing shard's active cause to the event's
//     cause before anything else, so every update transmitted while
//     processing it — and the updateHook record — inherits the cause of
//     the update that triggered it.
//   - An update queued behind an MRAI timer carries its cause in the
//     pendingUpdate; a newer update for the same prefix replaces the queued
//     one together with its cause (coalescing attributes the eventual send
//     to the newest invalidating cause, matching the paper's "queued update
//     invalidated by a new update is removed"). The flush events restore
//     each drained update's cause before transmitting it.
//   - Cross-shard wire messages carry the cause through the barrier merge;
//     canonical (arrival, sender, seq) admission order is untouched.
//
// The tracer is inert by construction: it never mutates engine state,
// consumes randomness or reads anything that feeds a decision, so traced
// runs are byte-identical to bare ones at every shard count (the
// determinism tier proves it). Cause IDs ride existing event structs — no
// per-event allocation — and with no tracer attached every accounting site
// is a single nil-check.

import (
	"fmt"

	"bgpchurn/internal/des"
	"bgpchurn/internal/topology"
)

// CauseID identifies one root cause: a phase of a C-event (withdraw or
// re-announce) or a link event. IDs are assigned by BeginCause, start at 1
// and stay unique for the lifetime of the Network (Reset does not rewind
// them). 0 means "no cause" (tracing off, or activity outside any event).
type CauseID uint32

// CauseKind classifies a root cause.
type CauseKind uint8

const (
	// CauseNone is the zero kind.
	CauseNone CauseKind = iota
	// CauseWithdraw is the DOWN half of a C-event: the origin withdraws.
	CauseWithdraw
	// CauseAnnounce is the UP half of a C-event: the origin re-announces.
	CauseAnnounce
	// CauseLinkFail is a link failure event.
	CauseLinkFail
	// CauseLinkRestore is a link restoration event.
	CauseLinkRestore
)

// String returns a short stable name for the cause kind.
func (k CauseKind) String() string {
	switch k {
	case CauseNone:
		return "none"
	case CauseWithdraw:
		return "withdraw"
	case CauseAnnounce:
		return "announce"
	case CauseLinkFail:
		return "link-fail"
	case CauseLinkRestore:
		return "link-restore"
	}
	return fmt.Sprintf("CauseKind(%d)", uint8(k))
}

// RelAttribution is one (node type, relation) cell of an event's Eq.-1
// decomposition: how many updates nodes of the type received over sessions
// of the relation, how many of those sessions were active (received at
// least one update), and how many such sessions exist at all — the raw
// ingredients of U = m·q·e.
type RelAttribution struct {
	// Updates is the number of updates received over sessions of this
	// relation at nodes of this type during the event.
	Updates uint64
	// Active is the number of those sessions that received >= 1 update.
	Active uint64
	// Sessions is the total number of such sessions in the topology
	// (static: nodes of the type × their neighbors of the relation).
	Sessions uint64
}

// TypeAttribution is one node type's slice of an event's provenance: the
// per-relation Eq.-1 cells plus the type's path-exploration depth.
type TypeAttribution struct {
	// ByRel indexes RelAttribution by topology.Relation (Customer, Peer,
	// Provider).
	ByRel [3]RelAttribution
	// Exploration is the number of Loc-RIB best-route changes at nodes of
	// this type during the event (path-exploration depth).
	Exploration uint64
	// Nodes is the number of nodes of this type (static).
	Nodes uint64
}

// EventAttribution is the provenance summary of one routing event: who
// caused it, its virtual-time extent, the update total and its
// classification, and the per-type × per-relation Eq.-1 cells. Produced by
// EndCause; per-event sums reconcile exactly with the aggregate per-node
// counters over the same measurement window.
type EventAttribution struct {
	Cause  CauseID
	Kind   CauseKind
	Origin topology.NodeID
	// Start and End bound the event in virtual time (End is the quiescent
	// instant EndCause was called at).
	Start, End des.Time
	// Updates is the total number of updates processed during the event.
	Updates uint64
	// Duplicates counts updates that left the receiver's Adj-RIB-In entry
	// unchanged (a re-announcement of the held path, or a withdrawal of a
	// route not held).
	Duplicates uint64
	// ImplicitWithdrawals counts announcements that replaced a different
	// held path (RFC 4271 implicit withdrawal).
	ImplicitWithdrawals uint64
	// ExplicitWithdrawals counts withdrawals of a held route.
	ExplicitWithdrawals uint64
	// NewAnnouncements counts announcements installing a route where none
	// was held.
	NewAnnouncements uint64
	// ByType indexes TypeAttribution by topology.NodeType (T, M, CP, C).
	ByType [4]TypeAttribution
}

// MQE returns the live Eq.-1 factors for node type t and relation rel:
// m — mean sessions of the relation per node of the type,
// q — fraction of those sessions active during the event,
// e — mean updates per active session.
// Their product m·q·e is the type's per-node update count over the
// relation, and Σ_rel m·q·e = U(t) for this single event.
func (a *EventAttribution) MQE(t topology.NodeType, rel topology.Relation) (m, q, e float64) {
	ta := &a.ByType[t]
	ra := &ta.ByRel[rel]
	if ta.Nodes > 0 {
		m = float64(ra.Sessions) / float64(ta.Nodes)
	}
	if ra.Sessions > 0 {
		q = float64(ra.Active) / float64(ra.Sessions)
	}
	if ra.Active > 0 {
		e = float64(ra.Updates) / float64(ra.Active)
	}
	return m, q, e
}

// U returns the mean number of updates received per node of type t during
// this event — the paper's U(X) for a single routing event.
func (a *EventAttribution) U(t topology.NodeType) float64 {
	ta := &a.ByType[t]
	if ta.Nodes == 0 {
		return 0
	}
	var sum uint64
	for r := range ta.ByRel {
		sum += ta.ByRel[r].Updates
	}
	return float64(sum) / float64(ta.Nodes)
}

// Stats flattens the attribution into short stable keys, the form span
// records and progress streams carry. Classification and exploration
// totals, plus U/m/q/e per node type × relation.
func (a *EventAttribution) Stats() map[string]float64 {
	s := map[string]float64{
		"updates":   float64(a.Updates),
		"dup":       float64(a.Duplicates),
		"implicit":  float64(a.ImplicitWithdrawals),
		"explicit":  float64(a.ExplicitWithdrawals),
		"new":       float64(a.NewAnnouncements),
		"virtual_s": (a.End - a.Start).Seconds(),
	}
	rels := [...]topology.Relation{topology.Customer, topology.Peer, topology.Provider}
	for _, t := range topology.NodeTypes {
		ta := &a.ByType[t]
		s["explore_"+t.String()] = float64(ta.Exploration)
		s["U_"+t.String()] = a.U(t)
		for _, rel := range rels {
			m, q, e := a.MQE(t, rel)
			key := t.String() + "_" + rel.String()
			s["m_"+key] = m
			s["q_"+key] = q
			s["e_"+key] = e
			s["u_"+key] = float64(ta.ByRel[rel].Updates)
		}
	}
	return s
}

// eventTally is one shard's share of the running event accounting. Shards
// write only their own tally during parallel windows; the barrier
// WaitGroup orders EndCause's reads after every write.
type eventTally struct {
	updates   uint64
	dup       uint64
	implicit  uint64
	explicitW uint64
	newAnn    uint64
	// exploration counts best-route changes at the shard's nodes, by type.
	exploration [4]uint64
}

// causalTrace is the per-network tracer state (nil when tracing is off).
type causalTrace struct {
	// rowOff[i] is node i's base offset into slotCount — its CSR row start.
	// slotCount[rowOff[i]+j] counts updates node i received from neighbor
	// slot j during the current event. Writes are shard-disjoint: a node's
	// row is written only by the shard owning the node.
	rowOff    []int32
	slotCount []uint32
	// tallies is indexed by shard index.
	tallies []eventTally
	// nextID hands out cause IDs; monotone for the Network's lifetime.
	nextID CauseID
	// Current event, set by BeginCause.
	root   CauseID
	kind   CauseKind
	origin topology.NodeID
	start  des.Time
	// Static topology attribution denominators.
	typeNodes    [4]uint64
	typeSessions [4][3]uint64
}

// EnableCausalTrace attaches the causal tracer: from the next BeginCause
// on, updates carry root-cause IDs and the network accumulates per-event
// attribution. Idempotent; survives Reset and Grow (build re-sizes it).
// Tracing changes no results — only what is observed.
func (net *Network) EnableCausalTrace() {
	if net.causal == nil {
		net.causal = &causalTrace{}
	}
	net.attachCausal()
}

// CausalTraceEnabled reports whether the causal tracer is attached.
func (net *Network) CausalTraceEnabled() bool { return net.causal != nil }

// attachCausal (re)sizes the tracer for the current topology and shard
// array; called by EnableCausalTrace and by build (so Grow keeps tracing
// attached across the rebuild). No-op when no tracer is attached.
func (net *Network) attachCausal() {
	tr := net.causal
	if tr == nil {
		return
	}
	sessions := len(net.adj.IDs)
	if cap(tr.slotCount) < sessions {
		tr.slotCount = make([]uint32, sessions)
	} else {
		tr.slotCount = tr.slotCount[:sessions]
	}
	if cap(tr.rowOff) < len(net.nodes) {
		tr.rowOff = make([]int32, len(net.nodes))
	} else {
		tr.rowOff = tr.rowOff[:len(net.nodes)]
	}
	tr.tallies = make([]eventTally, len(net.shards))
	tr.typeNodes = [4]uint64{}
	tr.typeSessions = [4][3]uint64{}
	for i := range net.nodes {
		nd := &net.nodes[i]
		lo, _ := net.adj.Row(nd.id)
		tr.rowOff[i] = lo
		tr.typeNodes[nd.typ]++
		for _, rel := range nd.nbrRels {
			tr.typeSessions[nd.typ][rel]++
		}
	}
}

// BeginCause opens a new root cause of the given kind originating at
// origin (topology.None for network-wide events): the per-event
// accumulators are cleared and every shard's active cause is set, so API
// calls and the propagation they trigger are attributed to the new cause.
// Returns 0 (and does nothing) when tracing is off.
func (net *Network) BeginCause(kind CauseKind, origin topology.NodeID) CauseID {
	tr := net.causal
	if tr == nil {
		return 0
	}
	tr.nextID++
	tr.root, tr.kind, tr.origin, tr.start = tr.nextID, kind, origin, net.Now()
	clear(tr.slotCount)
	clear(tr.tallies)
	for _, sh := range net.shards {
		sh.activeCause = tr.root
	}
	return tr.root
}

// EndCause closes the current root cause and returns its attribution: one
// O(sessions) scan groups the per-slot receive counts by node type ×
// relation, and the shard tallies are summed. Call it at quiescence (after
// Run); the zero value is returned when tracing is off or no cause is
// open.
func (net *Network) EndCause() EventAttribution {
	tr := net.causal
	if tr == nil || tr.root == 0 {
		return EventAttribution{}
	}
	a := EventAttribution{
		Cause:  tr.root,
		Kind:   tr.kind,
		Origin: tr.origin,
		Start:  tr.start,
		End:    net.Now(),
	}
	for i := range net.nodes {
		nd := &net.nodes[i]
		ta := &a.ByType[nd.typ]
		base := tr.rowOff[i]
		for j, rel := range nd.nbrRels {
			c := tr.slotCount[base+int32(j)]
			if c == 0 {
				continue
			}
			ta.ByRel[rel].Updates += uint64(c)
			ta.ByRel[rel].Active++
		}
	}
	for k := range tr.tallies {
		t := &tr.tallies[k]
		a.Updates += t.updates
		a.Duplicates += t.dup
		a.ImplicitWithdrawals += t.implicit
		a.ExplicitWithdrawals += t.explicitW
		a.NewAnnouncements += t.newAnn
		for typ := range t.exploration {
			a.ByType[typ].Exploration += t.exploration[typ]
		}
	}
	for typ := range a.ByType {
		a.ByType[typ].Nodes = tr.typeNodes[typ]
		for r := range a.ByType[typ].ByRel {
			a.ByType[typ].ByRel[r].Sessions = tr.typeSessions[typ][r]
		}
	}
	tr.root = 0
	return a
}

// record accounts one processed update for the current event: the
// receiver's (node, slot) cell plus the classification tally. same reports
// whether the update left the receiver's Adj-RIB-In entry unchanged;
// hadNone whether no route was held from the sender before it. Runs on the
// receiver's shard.
func (tr *causalTrace) record(sh *netShard, to topology.NodeID, fromSlot int32, kind UpdateKind, same, hadNone bool) {
	tr.slotCount[tr.rowOff[to]+fromSlot]++
	t := &tr.tallies[sh.idx]
	t.updates++
	if kind == Withdraw {
		if hadNone {
			t.dup++
		} else {
			t.explicitW++
		}
		return
	}
	switch {
	case hadNone:
		t.newAnn++
	case same:
		t.dup++
	default:
		t.implicit++
	}
}
