package bgp

import (
	"testing"

	"bgpchurn/internal/des"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/topology"
)

// Kernel micro-benchmarks for the simulation inner loop: decide, reconcile,
// the transmit → procEvent → Fire cycle, and the MRAI flush machinery.
// These pin the zero-allocation property of the steady-state path (see
// DESIGN.md, kernel memory model); `make bench-kernel` records them in
// BENCH_kernel.json.

// benchTopo assembles the same hand-made topologies as build() in
// bgp_test.go without needing a *testing.T.
func benchTopo(types []topology.NodeType, transit, peers [][2]topology.NodeID) *topology.Topology {
	topo := &topology.Topology{NumRegions: 1, Nodes: make([]topology.Node, len(types))}
	for i, typ := range types {
		topo.Nodes[i] = topology.Node{ID: topology.NodeID(i), Type: typ, Regions: 1}
	}
	for _, e := range transit {
		p, c := e[0], e[1]
		topo.Nodes[p].Customers = append(topo.Nodes[p].Customers, c)
		topo.Nodes[c].Providers = append(topo.Nodes[c].Providers, p)
	}
	for _, e := range peers {
		a, b := e[0], e[1]
		topo.Nodes[a].Peers = append(topo.Nodes[a].Peers, b)
		topo.Nodes[b].Peers = append(topo.Nodes[b].Peers, a)
	}
	return topo
}

// fanTopo is a T core with m M-nodes multihomed to it and one C origin
// multihomed to every M node: every M node offers the origin's prefix to
// the core, exercising multi-candidate decisions.
func fanTopo(m int) *topology.Topology {
	types := []topology.NodeType{topology.T}
	var transit [][2]topology.NodeID
	for i := 1; i <= m; i++ {
		types = append(types, topology.M)
		transit = append(transit, [2]topology.NodeID{0, topology.NodeID(i)})
	}
	origin := topology.NodeID(m + 1)
	types = append(types, topology.C)
	for i := 1; i <= m; i++ {
		transit = append(transit, [2]topology.NodeID{topology.NodeID(i), origin})
	}
	return benchTopo(types, transit, nil)
}

const benchPrefix Prefix = 1

// steadyNet returns a converged MRAI-0 network on fanTopo(8) with the
// origin's prefix propagated everywhere.
func steadyNet() (*Network, topology.NodeID) {
	topo := fanTopo(8)
	cfg := DefaultConfig(1)
	cfg.MRAI = 0
	net := MustNew(topo, cfg)
	origin := topology.NodeID(topo.N() - 1)
	net.Originate(origin, benchPrefix)
	net.Run()
	return net, origin
}

// coreLink returns the slot of node 1 (an M node) toward the T core and the
// path it currently advertises there, for re-announcement benchmarks.
func coreLink(net *Network) (m *node, slot int, path Path) {
	m = &net.nodes[1]
	for j, id := range m.nbrIDs {
		if id == 0 {
			path, ok := m.out[j].lastSent.Get(benchPrefix)
			if !ok {
				panic("bench setup: M node does not advertise the prefix to the core")
			}
			return m, j, path
		}
	}
	panic("bench setup: M node is not connected to the core")
}

// BenchmarkKernelDecide measures the bare decision process over a RIB with
// 8 candidate routes. Expected allocs/op: 0.
func BenchmarkKernelDecide(b *testing.B) {
	net, _ := steadyNet()
	core := &net.nodes[0] // the T node hears the prefix from every M node
	ps, ok := core.prefixes.Get(benchPrefix)
	if !ok {
		b.Fatal("core has no state for the bench prefix")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot, _ := core.decide(ps)
		if slot == noneSlot {
			b.Fatal("no route decided")
		}
	}
}

// BenchmarkKernelReconcileUnchanged measures applyDecision when the best
// route does not change — the dominant reconcile outcome during
// convergence. Expected allocs/op: 0.
func BenchmarkKernelReconcileUnchanged(b *testing.B) {
	net, _ := steadyNet()
	core := &net.nodes[0]
	ps, _ := core.prefixes.Get(benchPrefix)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.applyDecision(core, benchPrefix, ps)
	}
}

// BenchmarkKernelTransmitFire measures one full steady-state hop: transmit
// schedules a pooled procEvent, the scheduler pops it off the typed heap,
// and Fire re-runs the decision process to an unchanged best path.
// Expected allocs/op: 0.
func BenchmarkKernelTransmitFire(b *testing.B) {
	net, _ := steadyNet()
	m, slot, path := coreLink(net) // an M node re-announcing its path to the core
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.transmit(m, slot, benchPrefix, Announce, path, NoPath)
		net.shards[0].sched.Run()
	}
}

// BenchmarkKernelFlushLoop measures a C-event on a rate-limited network
// (30 s MRAI): queueing into pending, pooled flush events draining via the
// scratch buffer, and timer restarts.
func BenchmarkKernelFlushLoop(b *testing.B) {
	topo := fanTopo(8)
	net := MustNew(topo, DefaultConfig(1)) // default 30 s MRAI
	origin := topology.NodeID(topo.N() - 1)
	net.Originate(origin, benchPrefix)
	net.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.WithdrawPrefix(origin, benchPrefix)
		net.Run()
		net.Originate(origin, benchPrefix)
		net.Run()
		net.Settle(60 * des.Second)
	}
}

// BenchmarkKernelCEventReset measures the whole per-origin experiment cycle
// core.RunCEvents performs on a reused Network: Reset (recycling prefix
// state, queues and pools), initial propagation, DOWN and UP phases.
func BenchmarkKernelCEventReset(b *testing.B) {
	topo := fanTopo(8)
	net := MustNew(topo, DefaultConfig(1))
	origin := topology.NodeID(topo.N() - 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Reset(uint64(i) + 1)
		net.Originate(origin, benchPrefix)
		net.Run()
		net.ResetCounters()
		net.WithdrawPrefix(origin, benchPrefix)
		net.Run()
		net.Originate(origin, benchPrefix)
		net.Run()
	}
}

// TestSteadyStateZeroAlloc enforces the zero-allocation contract of the
// steady-state kernel path (transmit → procEvent → Fire → reconcile with an
// unchanged best path) so a regression fails `go test`, not just a
// benchmark reading.
func TestSteadyStateZeroAlloc(t *testing.T) {
	net, _ := steadyNet()
	m, slot, path := coreLink(net)
	// Warm the event pool and heap storage.
	for i := 0; i < 16; i++ {
		net.transmit(m, slot, benchPrefix, Announce, path, NoPath)
		net.shards[0].sched.Run()
	}
	allocs := testing.AllocsPerRun(200, func() {
		net.transmit(m, slot, benchPrefix, Announce, path, NoPath)
		net.shards[0].sched.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state transmit/fire allocates %.1f objects per update, want 0", allocs)
	}

	ps, _ := net.nodes[0].prefixes.Get(benchPrefix)
	allocs = testing.AllocsPerRun(200, func() {
		net.applyDecision(&net.nodes[0], benchPrefix, ps)
	})
	if allocs != 0 {
		t.Fatalf("unchanged-best applyDecision allocates %.1f objects, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocObs is TestSteadyStateZeroAlloc with
// instrumentation attached: enabled probes must preserve the kernel's
// zero-allocation steady state, not just disabled ones.
func TestSteadyStateZeroAllocObs(t *testing.T) {
	net, _ := steadyNet()
	net.SetObs(obs.New())
	m, slot, path := coreLink(net)
	for i := 0; i < 16; i++ {
		net.transmit(m, slot, benchPrefix, Announce, path, NoPath)
		net.shards[0].sched.Run()
	}
	before := net.shards[0].probes.AnnouncementsSent.Load()
	allocs := testing.AllocsPerRun(200, func() {
		net.transmit(m, slot, benchPrefix, Announce, path, NoPath)
		net.shards[0].sched.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state transmit/fire with obs enabled allocates %.1f objects per update, want 0", allocs)
	}
	if net.shards[0].probes.AnnouncementsSent.Load() <= before {
		t.Fatal("probes attached but announcement counter did not advance")
	}
}
