package bgp

import (
	"fmt"

	"bgpchurn/internal/topology"
)

// Link failure/recovery events. The paper's evaluation uses C-events
// (prefix withdraw + re-announce at the origin); link events are the "more
// complex events" its future-work section names, provided as an extension.

// FailLink tears down the session between a and b: in-flight state toward
// each other is flushed, Adj-RIB-In entries learned over the link are
// removed, and both ends re-run their decision process. Call Run afterwards
// to propagate the resulting updates.
func (net *Network) FailLink(a, b topology.NodeID) error {
	ja, jb, err := net.slots(a, b)
	if err != nil {
		return err
	}
	na, nb := &net.nodes[a], &net.nodes[b]
	if na.out[ja].down {
		return fmt.Errorf("bgp: link %d-%d already down", a, b)
	}
	net.sessionDown(na, ja)
	net.sessionDown(nb, jb)
	return nil
}

// RestoreLink re-establishes the session between a and b: both ends
// re-advertise their current best routes to each other per export policy,
// as in a BGP session establishment's initial table exchange. Call Run
// afterwards to propagate.
func (net *Network) RestoreLink(a, b topology.NodeID) error {
	ja, jb, err := net.slots(a, b)
	if err != nil {
		return err
	}
	na, nb := &net.nodes[a], &net.nodes[b]
	if !na.out[ja].down {
		return fmt.Errorf("bgp: link %d-%d is not down", a, b)
	}
	na.out[ja].down = false
	nb.out[jb].down = false
	net.resyncSlot(na, ja)
	net.resyncSlot(nb, jb)
	return nil
}

// LinkDown reports whether the a→b session is currently failed.
func (net *Network) LinkDown(a, b topology.NodeID) bool {
	ja, _, err := net.slots(a, b)
	if err != nil {
		return false
	}
	return net.nodes[a].out[ja].down
}

// slots resolves the slot of b in a's neighbor list and vice versa.
func (net *Network) slots(a, b topology.NodeID) (ja, jb int, err error) {
	ja, jb = -1, -1
	for j, id := range net.nodes[a].nbrIDs {
		if id == b {
			ja = j
			break
		}
	}
	for j, id := range net.nodes[b].nbrIDs {
		if id == a {
			jb = j
			break
		}
	}
	if ja < 0 || jb < 0 {
		return 0, 0, fmt.Errorf("bgp: %d and %d are not adjacent", a, b)
	}
	return ja, jb, nil
}

// sessionDown clears all state of nd's session at slot j and re-runs the
// decision process for every prefix that was learned over it.
func (net *Network) sessionDown(nd *node, j int) {
	q := &nd.out[j]
	q.down = true
	q.scheduled = false // a queued flush event will find down=true and bail
	q.pending.Clear()
	q.lastSent.Clear()
	q.expiry = 0
	q.prefixExpiry.Clear()
	q.prefixScheduled.Clear()
	for _, f := range nd.sortedPrefixes() {
		ps, _ := nd.prefixes.Get(f)
		if !nd.ribHas(ps, j) {
			continue
		}
		if nd.it != nil {
			ps.ribID[j] = NoPath
		} else {
			ps.ribIn[j] = nil
		}
		net.applyDecision(nd, f, ps)
	}
}

// resyncSlot advertises nd's current best routes to the neighbor at slot j,
// as on session (re-)establishment.
func (net *Network) resyncSlot(nd *node, j int) {
	for _, f := range nd.sortedPrefixes() {
		ps, _ := nd.prefixes.Get(f)
		if ps.bestSlot == noneSlot {
			continue
		}
		full, fromCustomerOrSelf := nd.advertisement(ps)
		if nd.exportable(j, full, fromCustomerOrSelf) {
			net.setDesired(nd, j, f, full, ps.fullID)
		}
	}
}
