package bgp

import (
	"bgpchurn/internal/des"
	"bgpchurn/internal/topology"
)

// NodeCounters is the per-node measurement snapshot for one window.
type NodeCounters struct {
	// Received is the total number of updates processed.
	Received uint64
	// Announcements and Withdrawals partition Received by kind.
	Announcements uint64
	Withdrawals   uint64
	// Sent is the number of updates this node transmitted.
	Sent uint64
	// RouteChanges is the number of Loc-RIB best-route changes (the
	// node's path-exploration depth over the window).
	RouteChanges uint64
	// Suppressions is the number of dampening suppression episodes.
	Suppressions uint64
	// PerNeighbor is the number of updates received from each neighbor
	// slot, parallel to NeighborRelations.
	PerNeighbor []uint32
}

// Counters returns a snapshot of node id's counters for the current
// measurement window.
func (net *Network) Counters(id topology.NodeID) NodeCounters {
	nd := &net.nodes[id]
	per := make([]uint32, len(nd.recvBySlot))
	copy(per, nd.recvBySlot)
	return NodeCounters{
		Received:      nd.recvAnnounce + nd.recvWithdraw,
		Announcements: nd.recvAnnounce,
		Withdrawals:   nd.recvWithdraw,
		Sent:          nd.sentUpdates,
		RouteChanges:  nd.bestChanges,
		Suppressions:  nd.suppressions,
		PerNeighbor:   per,
	}
}

// PerNeighborCounts returns node id's per-slot receive counts without
// copying; the slice is owned by the engine and must not be modified. Use
// together with NeighborRelations for the Eq.-1 factor decomposition.
func (net *Network) PerNeighborCounts(id topology.NodeID) []uint32 {
	return net.nodes[id].recvBySlot
}

// NeighborRelations returns node id's per-slot neighbor relations in slot
// order, as a view of the topology's shared CSR adjacency: zero-alloc, owned
// by the topology, must not be modified.
func (net *Network) NeighborRelations(id topology.NodeID) []topology.Relation {
	return net.nodes[id].nbrRels
}

// RIBSize returns the number of prefixes node id currently has a selected
// route for (the Loc-RIB size, the paper's other scalability axis).
func (net *Network) RIBSize(id topology.NodeID) int {
	n := 0
	net.nodes[id].prefixes.ForEach(func(_ Prefix, ps *prefixState) {
		if ps.bestSlot != noneSlot {
			n++
		}
	})
	return n
}

// AdjRIBInSize returns the total number of routes node id holds across all
// neighbors' Adj-RIB-Ins — the memory-relevant table size.
func (net *Network) AdjRIBInSize(id topology.NodeID) int {
	n := 0
	nd := &net.nodes[id]
	nd.prefixes.ForEach(func(_ Prefix, ps *prefixState) {
		if nd.it != nil {
			for _, pid := range ps.ribID {
				if pid != NoPath {
					n++
				}
			}
			return
		}
		for _, p := range ps.ribIn {
			if p != nil {
				n++
			}
		}
	})
	return n
}

// RouteChanges returns node id's Loc-RIB best-route change count for the
// current window without allocating (see NodeCounters.RouteChanges).
func (net *Network) RouteChanges(id topology.NodeID) uint64 {
	return net.nodes[id].bestChanges
}

// TotalUpdates returns the number of updates processed network-wide during
// the current measurement window.
func (net *Network) TotalUpdates() uint64 {
	var n uint64
	for _, sh := range net.shards {
		n += sh.totalUpdates
	}
	return n
}

// PeakUpdateRate returns the largest number of updates processed
// network-wide within any single virtual second of the current window —
// the burstiness measure motivating the paper's concern that routers must
// absorb peaks far above daily means. A single shard tracks its running
// peak inline; a multi-shard network merges the shards' per-second rate
// logs (each nondecreasing in time), summing counts for each second and
// maximizing over the sums — the same value the single-shard counter would
// have produced for the merged event stream.
func (net *Network) PeakUpdateRate() uint64 {
	if !net.multi {
		return net.shards[0].ratePeak
	}
	idx := make([]int, len(net.shards))
	var peak uint64
	for {
		// Earliest unconsumed second across the shard logs.
		var sec des.Time
		found := false
		for k, sh := range net.shards {
			if idx[k] < len(sh.rateLog) {
				if s := sh.rateLog[idx[k]].sec; !found || s < sec {
					sec, found = s, true
				}
			}
		}
		if !found {
			return peak
		}
		var sum uint64
		for k, sh := range net.shards {
			if idx[k] < len(sh.rateLog) && sh.rateLog[idx[k]].sec == sec {
				sum += sh.rateLog[idx[k]].count
				idx[k]++
			}
		}
		if sum > peak {
			peak = sum
		}
	}
}

// ResetCounters zeroes every measurement counter, starting a new window.
// Routing state and timers are untouched: the paper resets counting after
// the initial prefix propagation, then measures the C-event.
func (net *Network) ResetCounters() {
	for _, sh := range net.shards {
		sh.totalUpdates = 0
		sh.rateBucket, sh.rateCount, sh.ratePeak = 0, 0, 0
		sh.rateLog = sh.rateLog[:0]
	}
	for i := range net.nodes {
		nd := &net.nodes[i]
		nd.recvAnnounce, nd.recvWithdraw, nd.sentUpdates = 0, 0, 0
		nd.bestChanges, nd.suppressions = 0, 0
		for j := range nd.recvBySlot {
			nd.recvBySlot[j] = 0
		}
	}
}
