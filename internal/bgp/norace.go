//go:build !race

package bgp

// raceEnabled is false in regular builds; see race.go.
const raceEnabled = false
