package bgp

import (
	"fmt"

	"bgpchurn/internal/des"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/rng"
	"bgpchurn/internal/topology"
)

// Network is a running BGP simulation over a fixed topology. Construct with
// New, originate or withdraw prefixes, then Run to quiescence. A Network is
// not safe for concurrent use; run one per goroutine.
type Network struct {
	topo *topology.Topology
	// adj is the topology's shared CSR adjacency; every node's
	// nbrIDs/nbrRels/reverse are rows of it. Immutable, shared across
	// Networks over the same topology.
	adj   *topology.Adjacency
	cfg   Config
	sched des.Scheduler
	nodes []node

	// tieFlat, recvFlat and outFlat are this network's per-session state in
	// one contiguous block each, parallel to adj.IDs; node j's rows are
	// sub-slices. Flat layout keeps the hot loop cache-friendly and lets
	// Reset clear whole arrays in single passes.
	tieFlat  []uint64
	recvFlat []uint32
	outFlat  []outQueue

	// ws holds WarmStart's scratch arrays, lazily sized to N() on first use
	// and reused across calls so repeated warm starts on the same network
	// (one per origin in an experiment) do not reallocate.
	ws warmScratch

	// paths bump-allocates every path the engine creates (advertisement
	// bodies, warm-start routes); Reset drops its slab, see pathArena.
	paths pathArena

	// totalUpdates counts every update processed since the last
	// ResetCounters, across all nodes.
	totalUpdates uint64
	// rateBucket/rateCount/ratePeak track the busiest virtual second of the
	// window (network-wide updates processed per second), quantifying the
	// burstiness the paper's introduction highlights.
	rateBucket des.Time
	rateCount  uint64
	ratePeak   uint64
	// updateHook, when set, observes every processed update (see
	// SetUpdateHook).
	updateHook func(UpdateRecord)
	// probes is the protocol engine's observability block; nil when
	// disabled (see SetObs). Probe sites are single nil checks then.
	probes *obs.BGPProbes

	// procFree, flushFree and prefixFlushFree recycle the dominant event
	// kinds: an event returns its receiver to the free list at the end of
	// Fire (the scheduler holds no reference by then), and transmit or
	// ensureFlush reuse it for the next send. Steady-state simulation
	// therefore allocates no event objects at all. Ownership rules are in
	// DESIGN.md (kernel memory model).
	procFree        []*procEvent
	flushFree       []*flushEvent
	prefixFlushFree []*prefixFlushEvent
}

// New builds the per-node protocol state for the topology. The topology
// must be valid (see topology.Validate); New does not re-validate it.
func New(topo *topology.Topology, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	adj := topo.CSR()
	if !adj.Symmetric() {
		return nil, fmt.Errorf("bgp: topology has an asymmetric adjacency")
	}
	sessions := len(adj.IDs)
	net := &Network{
		topo:     topo,
		adj:      adj,
		cfg:      cfg,
		nodes:    make([]node, topo.N()),
		tieFlat:  make([]uint64, sessions),
		recvFlat: make([]uint32, sessions),
		outFlat:  make([]outQueue, sessions),
	}
	master := rng.New(cfg.Seed)
	salt := master.Uint64()
	for k, id := range adj.IDs {
		net.tieFlat[k] = hashID(salt, id)
	}
	for i := range net.nodes {
		nd := &net.nodes[i]
		lo, hi := adj.Row(topology.NodeID(i))
		nd.id = topology.NodeID(i)
		nd.typ = topo.Nodes[i].Type
		nd.nbrIDs = adj.IDs[lo:hi:hi]
		nd.nbrRels = adj.Rels[lo:hi:hi]
		nd.reverse = adj.Reverse[lo:hi:hi]
		nd.tieHash = net.tieFlat[lo:hi:hi]
		nd.recvBySlot = net.recvFlat[lo:hi:hi]
		nd.out = net.outFlat[lo:hi:hi]
		nd.src = master.Split()
		nd.arena = &net.paths
	}
	return net, nil
}

// MustNew is New for known-valid inputs; it panics on error.
func MustNew(topo *topology.Topology, cfg Config) *Network {
	net, err := New(topo, cfg)
	if err != nil {
		panic(err)
	}
	return net
}

// SetObs attaches the metrics hub to this network: the protocol engine,
// its embedded event scheduler and the path arena all get probe blocks on
// fresh shards. Pass nil to detach. Call before the first event is
// scheduled — the kernel's occupancy gauges assume an empty queue at
// attach time. Probes never read the virtual clock, consume randomness or
// change event order, so instrumented runs are byte-identical to bare
// ones.
func (net *Network) SetObs(m *obs.Metrics) {
	if m == nil {
		net.probes = nil
		net.sched.SetProbes(nil)
		net.paths.probe = nil
		return
	}
	net.probes = m.NewBGPProbes()
	net.sched.SetProbes(m.NewDESProbes())
	net.paths.probe = net.probes.ArenaBytes
}

// Topology returns the underlying topology.
func (net *Network) Topology() *topology.Topology { return net.topo }

// Config returns the protocol configuration.
func (net *Network) Config() Config { return net.cfg }

// Now returns the current virtual time.
func (net *Network) Now() des.Time { return net.sched.Now() }

// Pending returns the number of queued simulation events; zero means the
// network is quiescent (converged).
func (net *Network) Pending() int { return net.sched.Len() }

// Run advances the simulation until quiescence and returns the number of
// events fired.
func (net *Network) Run() uint64 { return net.sched.Run() }

// RunUntil advances the simulation up to the given deadline.
func (net *Network) RunUntil(deadline des.Time) uint64 { return net.sched.RunUntil(deadline) }

// Settle advances virtual time by d, firing any events that fall inside the
// window. Experiments use it to let MRAI timers go idle between phases, so
// a C-event starts from a quiet network as it would in practice.
func (net *Network) Settle(d des.Time) uint64 {
	return net.sched.RunUntil(net.sched.Now() + d)
}

// Reset rewinds the network to a pristine state (no prefixes, idle timers,
// clock at zero, counters cleared) and reseeds every node's randomness
// stream from seed, exactly as if the network had been rebuilt with New
// using that seed — but reusing all allocated structures. Experiment sweeps
// use it to run many C-events on one Network with per-event determinism
// that is independent of scheduling order.
func (net *Network) Reset(seed uint64) {
	net.sched.Reset(true)
	net.totalUpdates = 0
	net.rateBucket, net.rateCount, net.ratePeak = 0, 0, 0
	// Drop (never rewind) the path slab, keeping the probe: see pathArena.
	net.paths = pathArena{probe: net.paths.probe}
	master := rng.New(seed)
	salt := master.Uint64() // same draw order as New
	for i := range net.nodes {
		nd := &net.nodes[i]
		nd.busyUntil = 0
		clear(nd.inbox) // release parked paths
		nd.inbox, nd.inboxHead, nd.delivering = nd.inbox[:0], 0, false
		nd.recvAnnounce, nd.recvWithdraw, nd.sentUpdates = 0, 0, 0
		nd.bestChanges, nd.suppressions = 0, 0
		for j := range nd.recvBySlot {
			nd.recvBySlot[j] = 0
		}
		// Recycle every prefixState (ribIn and damp storage included) into
		// the free list; the next event's state() calls pop them back.
		nd.prefixes.ForEach(func(_ Prefix, ps *prefixState) {
			ps.reset()
			nd.psFree = append(nd.psFree, ps)
		})
		nd.prefixes.Clear()
		nd.src.Reseed(master.Uint64())
		for j, id := range nd.nbrIDs {
			nd.tieHash[j] = hashID(salt, id)
		}
		for j := range nd.out {
			q := &nd.out[j]
			q.expiry, q.scheduled, q.down = 0, false, false
			q.pending.Clear()
			q.lastSent.Clear()
			// Clear, not drop: repeated C-events on one Network reuse the
			// per-prefix timer storage instead of re-allocating it.
			q.prefixExpiry.Clear()
			q.prefixScheduled.Clear()
		}
	}
}

// Originate makes origin announce prefix f from the current virtual time.
// Call Run afterwards to propagate.
func (net *Network) Originate(origin topology.NodeID, f Prefix) {
	nd := &net.nodes[origin]
	ps := nd.state(f)
	if ps.selfOrigin {
		return
	}
	ps.selfOrigin = true
	net.applyDecision(nd, f, ps)
}

// WithdrawPrefix makes origin stop announcing prefix f ("DOWN" half of a
// C-event). Call Run afterwards to propagate.
func (net *Network) WithdrawPrefix(origin topology.NodeID, f Prefix) {
	nd := &net.nodes[origin]
	ps := nd.state(f)
	if !ps.selfOrigin {
		return
	}
	ps.selfOrigin = false
	net.applyDecision(nd, f, ps)
}

// HasRoute reports whether node id currently has a route to prefix f
// (including originating it).
func (net *Network) HasRoute(id topology.NodeID, f Prefix) bool {
	ps, ok := net.nodes[id].prefixes.Get(f)
	return ok && ps.bestSlot != noneSlot
}

// BestPath returns the full AS path node id would use toward prefix f:
// [id, ..., origin], or nil if it has no route. The returned slice is fresh.
func (net *Network) BestPath(id topology.NodeID, f Prefix) Path {
	ps, ok := net.nodes[id].prefixes.Get(f)
	if !ok || ps.bestSlot == noneSlot {
		return nil
	}
	if ps.bestSlot == selfSlot {
		return Path{id}
	}
	return ps.bestPath.Prepend(id)
}

// NextHop returns the neighbor node id routes through for prefix f, the
// node itself if it originates f, or topology.None if it has no route.
func (net *Network) NextHop(id topology.NodeID, f Prefix) topology.NodeID {
	ps, ok := net.nodes[id].prefixes.Get(f)
	if !ok || ps.bestSlot == noneSlot {
		return topology.None
	}
	if ps.bestSlot == selfSlot {
		return id
	}
	return net.nodes[id].nbrIDs[ps.bestSlot]
}

// --- event types ---------------------------------------------------------

// inMsg is a message parked in a receiver's inbox: the full delivery
// payload plus the scheduler ticket reserved for it at transmit time.
type inMsg struct {
	tk       des.Ticket
	fromSlot int32
	kind     UpdateKind
	prefix   Prefix
	path     Path
}

// procEvent is the completion of processing one received update at a node.
// procEvents are pooled: transmit takes one from Network.procFree and Fire
// returns its receiver there once it is done reading the fields, so the
// steady-state update flow allocates no events.
type procEvent struct {
	net      *Network
	to       topology.NodeID
	fromSlot int32
	kind     UpdateKind
	prefix   Prefix
	path     Path
}

// newProcEvent takes a recycled procEvent or allocates a fresh one.
func (net *Network) newProcEvent() *procEvent {
	if n := len(net.procFree); n > 0 {
		e := net.procFree[n-1]
		net.procFree[n-1] = nil
		net.procFree = net.procFree[:n-1]
		if p := net.probes; p != nil {
			p.PoolHits.Inc()
		}
		return e
	}
	if p := net.probes; p != nil {
		p.PoolMisses.Inc()
	}
	return &procEvent{net: net}
}

// Fire consumes the update: counters, Adj-RIB-In, decision, exports.
func (e *procEvent) Fire(*des.Scheduler) {
	net := e.net
	nd := &net.nodes[e.to]
	nd.recvBySlot[e.fromSlot]++
	net.totalUpdates++
	net.tickRate()
	if p := net.probes; p != nil {
		p.UpdatesProcessed.Inc()
	}
	if net.updateHook != nil {
		net.updateHook(UpdateRecord{
			Time:   net.sched.Now(),
			From:   nd.nbrIDs[e.fromSlot],
			To:     nd.id,
			Kind:   e.kind,
			Prefix: e.prefix,
			Path:   e.path,
		})
	}
	ps := nd.state(e.prefix)
	had := ps.ribIn[e.fromSlot]
	if e.kind == Withdraw {
		nd.recvWithdraw++
		ps.ribIn[e.fromSlot] = nil
	} else {
		nd.recvAnnounce++
		if e.path.Contains(nd.id) {
			// Receiver-side loop detection; unreachable given sender-side
			// suppression, kept as defense in depth.
			ps.ribIn[e.fromSlot] = nil
		} else {
			ps.ribIn[e.fromSlot] = e.path
		}
	}
	if d := &net.cfg.Dampening; d.Enabled && had != nil {
		// RFC 2439 flap accounting: a withdrawal of a reachable route, or
		// an announcement replacing it with a different path.
		switch {
		case e.kind == Withdraw:
			net.recordFlap(nd, e.fromSlot, e.prefix, d.WithdrawPenalty)
		case !had.Equal(ps.ribIn[e.fromSlot]):
			net.recordFlap(nd, e.fromSlot, e.prefix, d.UpdatePenalty)
		}
	}
	prefix := e.prefix
	// All fields are consumed; recycle before the decision process so the
	// event is available for the sends applyDecision may trigger. The Path
	// is NOT pooled — it lives on in the Adj-RIB-In.
	e.path = nil
	net.procFree = append(net.procFree, e)
	// Chain the next parked delivery, if any, under its reserved ticket
	// (see transmit). Completion times are monotone per receiver, so the
	// ticket can never be in the past.
	if nd.inboxHead < len(nd.inbox) {
		m := nd.inbox[nd.inboxHead]
		nd.inbox[nd.inboxHead] = inMsg{} // release the path
		nd.inboxHead++
		if nd.inboxHead == len(nd.inbox) {
			nd.inbox, nd.inboxHead = nd.inbox[:0], 0
		}
		next := net.newProcEvent()
		next.to, next.fromSlot, next.kind, next.prefix, next.path = nd.id, m.fromSlot, m.kind, m.prefix, m.path
		net.sched.AtTicket(m.tk, next)
	} else {
		nd.delivering = false
	}
	net.applyDecision(nd, prefix, ps)
}

// flushEvent fires when a per-interface MRAI timer expires with queued
// updates. Pooled like procEvent.
type flushEvent struct {
	net  *Network
	node topology.NodeID
	slot int32
}

// newFlushEvent takes a recycled flushEvent or allocates a fresh one.
func (net *Network) newFlushEvent() *flushEvent {
	if n := len(net.flushFree); n > 0 {
		e := net.flushFree[n-1]
		net.flushFree[n-1] = nil
		net.flushFree = net.flushFree[:n-1]
		if p := net.probes; p != nil {
			p.PoolHits.Inc()
		}
		return e
	}
	if p := net.probes; p != nil {
		p.PoolMisses.Inc()
	}
	return &flushEvent{net: net}
}

// Fire sends every queued update on the interface and restarts the timer if
// anything was sent.
func (e *flushEvent) Fire(*des.Scheduler) {
	net := e.net
	nd := &net.nodes[e.node]
	q := &nd.out[e.slot]
	slot := int(e.slot)
	net.flushFree = append(net.flushFree, e)
	q.scheduled = false
	if p := net.probes; p != nil {
		p.MRAIFlushes.Inc()
	}
	if q.down || q.pending.Len() == 0 {
		return
	}
	sent := false
	nd.scratch = q.pending.SortedKeysInto(nd.scratch)
	for _, f := range nd.scratch {
		pu, _ := q.pending.Get(f)
		q.pending.Delete(f)
		net.transmit(nd, slot, f, pu.kind, pu.path)
		if pu.kind == Withdraw {
			q.lastSent.Delete(f)
		} else {
			q.lastSent.Set(f, pu.path)
		}
		sent = true
	}
	if sent {
		q.expiry = net.sched.Now() + des.Time(nd.src.Jitter(int64(net.cfg.MRAI), net.cfg.JitterLo, net.cfg.JitterHi))
	}
}

// prefixFlushEvent is flushEvent for PerPrefix MRAI scope. Pooled like
// procEvent.
type prefixFlushEvent struct {
	net    *Network
	node   topology.NodeID
	slot   int32
	prefix Prefix
}

// newPrefixFlushEvent takes a recycled event or allocates a fresh one.
func (net *Network) newPrefixFlushEvent() *prefixFlushEvent {
	if n := len(net.prefixFlushFree); n > 0 {
		e := net.prefixFlushFree[n-1]
		net.prefixFlushFree[n-1] = nil
		net.prefixFlushFree = net.prefixFlushFree[:n-1]
		if p := net.probes; p != nil {
			p.PoolHits.Inc()
		}
		return e
	}
	if p := net.probes; p != nil {
		p.PoolMisses.Inc()
	}
	return &prefixFlushEvent{net: net}
}

// Fire sends the queued update for one (interface, prefix) pair.
func (e *prefixFlushEvent) Fire(*des.Scheduler) {
	net := e.net
	nd := &net.nodes[e.node]
	q := &nd.out[e.slot]
	slot, f := int(e.slot), e.prefix
	net.prefixFlushFree = append(net.prefixFlushFree, e)
	q.prefixScheduled.Delete(f)
	if p := net.probes; p != nil {
		p.PrefixMRAIFlushes.Inc()
	}
	if q.down {
		return
	}
	pu, ok := q.pending.Get(f)
	if !ok {
		return
	}
	q.pending.Delete(f)
	net.transmit(nd, slot, f, pu.kind, pu.path)
	if pu.kind == Withdraw {
		q.lastSent.Delete(f)
	} else {
		q.lastSent.Set(f, pu.path)
	}
	q.prefixExpiry.Set(f, net.sched.Now()+des.Time(nd.src.Jitter(int64(net.cfg.MRAI), net.cfg.JitterLo, net.cfg.JitterHi)))
}

// --- core protocol flow --------------------------------------------------

// applyDecision re-runs the decision process for (nd, f); if the selected
// route changed it updates the Loc-RIB and reconciles every neighbor's
// output state.
func (net *Network) applyDecision(nd *node, f Prefix, ps *prefixState) {
	slot, path := nd.decide(ps)
	if slot == ps.bestSlot && path.Equal(ps.bestPath) {
		return
	}
	ps.bestSlot, ps.bestPath = slot, path
	ps.fullValid = false // the cached advertisement body is stale
	nd.bestChanges++
	net.reconcile(nd, f, ps)
}

// reconcile recomputes the desired advertisement toward every neighbor and
// feeds differences into the rate-limited output queues.
func (net *Network) reconcile(nd *node, f Prefix, ps *prefixState) {
	full, fromCustomerOrSelf := nd.advertisement(ps)
	for j := range nd.nbrIDs {
		if nd.out[j].down {
			continue
		}
		var want Path
		if nd.exportable(j, full, fromCustomerOrSelf) {
			want = full
		}
		net.setDesired(nd, j, f, want)
	}
}

// timerIdle reports whether an update for (q, f) may be sent immediately.
func (net *Network) timerIdle(q *outQueue, f Prefix) bool {
	if net.cfg.MRAI == 0 {
		return true
	}
	if net.cfg.Scope == PerPrefix {
		exp, _ := q.prefixExpiry.Get(f)
		return exp <= net.sched.Now()
	}
	return q.expiry <= net.sched.Now()
}

// restartTimer starts the MRAI timer for (nd, j[, f]) after a send.
func (net *Network) restartTimer(nd *node, j int, f Prefix) {
	if net.cfg.MRAI == 0 {
		return
	}
	expiry := net.sched.Now() + des.Time(nd.src.Jitter(int64(net.cfg.MRAI), net.cfg.JitterLo, net.cfg.JitterHi))
	q := &nd.out[j]
	if net.cfg.Scope == PerPrefix {
		q.prefixExpiry.Set(f, expiry)
	} else {
		q.expiry = expiry
	}
}

// ensureFlush schedules the flush event that will drain (nd, j[, f]) when
// its MRAI timer expires.
func (net *Network) ensureFlush(nd *node, j int, f Prefix) {
	q := &nd.out[j]
	if net.cfg.Scope == PerPrefix {
		if armed, _ := q.prefixScheduled.Get(f); armed {
			return
		}
		q.prefixScheduled.Set(f, true)
		e := net.newPrefixFlushEvent()
		e.node, e.slot, e.prefix = nd.id, int32(j), f
		exp, _ := q.prefixExpiry.Get(f)
		net.sched.At(exp, e)
		return
	}
	if q.scheduled {
		return
	}
	q.scheduled = true
	e := net.newFlushEvent()
	e.node, e.slot = nd.id, int32(j)
	net.sched.At(q.expiry, e)
}

// setDesired reconciles the wire state toward neighbor j for prefix f with
// the desired advertisement want (nil = withdrawn/none). It sends
// immediately when rate limiting allows, otherwise replaces the queued
// update.
func (net *Network) setDesired(nd *node, j int, f Prefix, want Path) {
	q := &nd.out[j]
	last, onWire := q.lastSent.Get(f)
	if want == nil {
		// Any queued announcement is now invalid.
		q.pending.Delete(f)
		if !onWire {
			return
		}
		if !net.cfg.RateLimitWithdrawals {
			// NO-WRATE: explicit withdrawals bypass the MRAI timer entirely
			// and do not restart it.
			net.transmit(nd, j, f, Withdraw, nil)
			q.lastSent.Delete(f)
			return
		}
		if net.timerIdle(q, f) {
			net.transmit(nd, j, f, Withdraw, nil)
			q.lastSent.Delete(f)
			net.restartTimer(nd, j, f)
			return
		}
		q.pending.Set(f, pendingUpdate{kind: Withdraw})
		net.ensureFlush(nd, j, f)
		return
	}
	if onWire && last.Equal(want) {
		// Wire state already matches; drop any queued update (it has been
		// invalidated by this newer state).
		q.pending.Delete(f)
		return
	}
	if net.timerIdle(q, f) {
		net.transmit(nd, j, f, Announce, want)
		q.lastSent.Set(f, want)
		net.restartTimer(nd, j, f)
		return
	}
	q.pending.Set(f, pendingUpdate{kind: Announce, path: want})
	net.ensureFlush(nd, j, f)
}

// transmit delivers one update to the neighbor at slot j, modeling the
// receiver's FIFO queue + single processor: processing completes a uniform
// (0, MaxProcessingDelay] after the receiver becomes free.
//
// Only the receiver's next completion lives in the scheduler queue; while
// it is pending, further messages park in the receiver's inbox with their
// tickets reserved here, in arrival order. procEvent.Fire re-schedules the
// front of the inbox, so deliveries chain one at a time — same fire times,
// same fire order, a fraction of the queued events.
func (net *Network) transmit(nd *node, j int, f Prefix, kind UpdateKind, path Path) {
	nd.sentUpdates++
	if p := net.probes; p != nil {
		if kind == Withdraw {
			p.WithdrawalsSent.Inc()
		} else {
			p.AnnouncementsSent.Inc()
		}
	}
	to := &net.nodes[nd.nbrIDs[j]]
	start := to.busyUntil
	if now := net.sched.Now(); start < now {
		start = now
	}
	done := start + des.Time(to.src.UniformDuration(int64(net.cfg.MaxProcessingDelay)))
	to.busyUntil = done
	tk := net.sched.Reserve(done)
	if to.delivering {
		to.inbox = append(to.inbox, inMsg{tk: tk, fromSlot: nd.reverse[j], kind: kind, prefix: f, path: path})
		if p := net.probes; p != nil {
			p.InboxDeferrals.Inc()
		}
		return
	}
	to.delivering = true
	e := net.newProcEvent()
	e.to, e.fromSlot, e.kind, e.prefix, e.path = to.id, nd.reverse[j], kind, f, path
	net.sched.AtTicket(tk, e)
}
