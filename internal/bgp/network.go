package bgp

import (
	"fmt"

	"bgpchurn/internal/des"
	"bgpchurn/internal/rng"
	"bgpchurn/internal/topology"
)

// Network is a running BGP simulation over a fixed topology. Construct with
// New, originate or withdraw prefixes, then Run to quiescence. A Network is
// not safe for concurrent use; run one per goroutine.
type Network struct {
	topo  *topology.Topology
	cfg   Config
	sched des.Scheduler
	nodes []node

	// totalUpdates counts every update processed since the last
	// ResetCounters, across all nodes.
	totalUpdates uint64
	// rateBucket/rateCount/ratePeak track the busiest virtual second of the
	// window (network-wide updates processed per second), quantifying the
	// burstiness the paper's introduction highlights.
	rateBucket des.Time
	rateCount  uint64
	ratePeak   uint64
	// updateHook, when set, observes every processed update (see
	// SetUpdateHook).
	updateHook func(UpdateRecord)

	// procFree, flushFree and prefixFlushFree recycle the dominant event
	// kinds: an event returns its receiver to the free list at the end of
	// Fire (the scheduler holds no reference by then), and transmit or
	// ensureFlush reuse it for the next send. Steady-state simulation
	// therefore allocates no event objects at all. Ownership rules are in
	// DESIGN.md (kernel memory model).
	procFree        []*procEvent
	flushFree       []*flushEvent
	prefixFlushFree []*prefixFlushEvent
}

// New builds the per-node protocol state for the topology. The topology
// must be valid (see topology.Validate); New does not re-validate it.
func New(topo *topology.Topology, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net := &Network{topo: topo, cfg: cfg, nodes: make([]node, topo.N())}
	master := rng.New(cfg.Seed)
	salt := master.Uint64()
	for i := range net.nodes {
		nd := &net.nodes[i]
		nd.id = topology.NodeID(i)
		nd.typ = topo.Nodes[i].Type
		nd.neighbors = topo.Neighbors(nd.id, nil)
		nd.src = master.Split()
		nd.out = make([]outQueue, len(nd.neighbors))
		nd.tieHash = make([]uint64, len(nd.neighbors))
		for j, nb := range nd.neighbors {
			nd.tieHash[j] = hashID(salt, nb.ID)
		}
		nd.recvBySlot = make([]uint32, len(nd.neighbors))
		nd.reverse = make([]int32, len(nd.neighbors))
	}
	// Wire reverse slots in a second pass, now that all neighbor lists
	// exist: reverse[j] is this node's slot in neighbor j's list.
	slotMaps := make([]map[topology.NodeID]int32, len(net.nodes))
	for i := range net.nodes {
		m := make(map[topology.NodeID]int32, len(net.nodes[i].neighbors))
		for k, nb := range net.nodes[i].neighbors {
			m[nb.ID] = int32(k)
		}
		slotMaps[i] = m
	}
	for i := range net.nodes {
		nd := &net.nodes[i]
		for j, nb := range nd.neighbors {
			s, ok := slotMaps[nb.ID][nd.id]
			if !ok {
				return nil, fmt.Errorf("bgp: asymmetric adjacency %d-%d", nd.id, nb.ID)
			}
			nd.reverse[j] = s
		}
	}
	return net, nil
}

// MustNew is New for known-valid inputs; it panics on error.
func MustNew(topo *topology.Topology, cfg Config) *Network {
	net, err := New(topo, cfg)
	if err != nil {
		panic(err)
	}
	return net
}

// Topology returns the underlying topology.
func (net *Network) Topology() *topology.Topology { return net.topo }

// Config returns the protocol configuration.
func (net *Network) Config() Config { return net.cfg }

// Now returns the current virtual time.
func (net *Network) Now() des.Time { return net.sched.Now() }

// Pending returns the number of queued simulation events; zero means the
// network is quiescent (converged).
func (net *Network) Pending() int { return net.sched.Len() }

// Run advances the simulation until quiescence and returns the number of
// events fired.
func (net *Network) Run() uint64 { return net.sched.Run() }

// RunUntil advances the simulation up to the given deadline.
func (net *Network) RunUntil(deadline des.Time) uint64 { return net.sched.RunUntil(deadline) }

// Settle advances virtual time by d, firing any events that fall inside the
// window. Experiments use it to let MRAI timers go idle between phases, so
// a C-event starts from a quiet network as it would in practice.
func (net *Network) Settle(d des.Time) uint64 {
	return net.sched.RunUntil(net.sched.Now() + d)
}

// Reset rewinds the network to a pristine state (no prefixes, idle timers,
// clock at zero, counters cleared) and reseeds every node's randomness
// stream from seed, exactly as if the network had been rebuilt with New
// using that seed — but reusing all allocated structures. Experiment sweeps
// use it to run many C-events on one Network with per-event determinism
// that is independent of scheduling order.
func (net *Network) Reset(seed uint64) {
	net.sched.Reset(true)
	net.totalUpdates = 0
	net.rateBucket, net.rateCount, net.ratePeak = 0, 0, 0
	master := rng.New(seed)
	salt := master.Uint64() // same draw order as New
	for i := range net.nodes {
		nd := &net.nodes[i]
		nd.busyUntil = 0
		nd.recvAnnounce, nd.recvWithdraw, nd.sentUpdates = 0, 0, 0
		nd.bestChanges, nd.suppressions = 0, 0
		for j := range nd.recvBySlot {
			nd.recvBySlot[j] = 0
		}
		// Recycle every prefixState (ribIn and damp storage included) into
		// the free list; the next event's state() calls pop them back.
		nd.prefixes.ForEach(func(_ Prefix, ps *prefixState) {
			ps.reset()
			nd.psFree = append(nd.psFree, ps)
		})
		nd.prefixes.Clear()
		nd.src.Reseed(master.Uint64())
		for j, nb := range nd.neighbors {
			nd.tieHash[j] = hashID(salt, nb.ID)
		}
		for j := range nd.out {
			q := &nd.out[j]
			q.expiry, q.scheduled, q.down = 0, false, false
			q.pending.Clear()
			q.lastSent.Clear()
			// Clear, not drop: repeated C-events on one Network reuse the
			// per-prefix timer storage instead of re-allocating it.
			q.prefixExpiry.Clear()
			q.prefixScheduled.Clear()
		}
	}
}

// Originate makes origin announce prefix f from the current virtual time.
// Call Run afterwards to propagate.
func (net *Network) Originate(origin topology.NodeID, f Prefix) {
	nd := &net.nodes[origin]
	ps := nd.state(f)
	if ps.selfOrigin {
		return
	}
	ps.selfOrigin = true
	net.applyDecision(nd, f, ps)
}

// WithdrawPrefix makes origin stop announcing prefix f ("DOWN" half of a
// C-event). Call Run afterwards to propagate.
func (net *Network) WithdrawPrefix(origin topology.NodeID, f Prefix) {
	nd := &net.nodes[origin]
	ps := nd.state(f)
	if !ps.selfOrigin {
		return
	}
	ps.selfOrigin = false
	net.applyDecision(nd, f, ps)
}

// HasRoute reports whether node id currently has a route to prefix f
// (including originating it).
func (net *Network) HasRoute(id topology.NodeID, f Prefix) bool {
	ps, ok := net.nodes[id].prefixes.Get(f)
	return ok && ps.bestSlot != noneSlot
}

// BestPath returns the full AS path node id would use toward prefix f:
// [id, ..., origin], or nil if it has no route. The returned slice is fresh.
func (net *Network) BestPath(id topology.NodeID, f Prefix) Path {
	ps, ok := net.nodes[id].prefixes.Get(f)
	if !ok || ps.bestSlot == noneSlot {
		return nil
	}
	if ps.bestSlot == selfSlot {
		return Path{id}
	}
	return ps.bestPath.Prepend(id)
}

// NextHop returns the neighbor node id routes through for prefix f, the
// node itself if it originates f, or topology.None if it has no route.
func (net *Network) NextHop(id topology.NodeID, f Prefix) topology.NodeID {
	ps, ok := net.nodes[id].prefixes.Get(f)
	if !ok || ps.bestSlot == noneSlot {
		return topology.None
	}
	if ps.bestSlot == selfSlot {
		return id
	}
	return net.nodes[id].neighbors[ps.bestSlot].ID
}

// --- event types ---------------------------------------------------------

// procEvent is the completion of processing one received update at a node.
// procEvents are pooled: transmit takes one from Network.procFree and Fire
// returns its receiver there once it is done reading the fields, so the
// steady-state update flow allocates no events.
type procEvent struct {
	net      *Network
	to       topology.NodeID
	fromSlot int32
	kind     UpdateKind
	prefix   Prefix
	path     Path
}

// newProcEvent takes a recycled procEvent or allocates a fresh one.
func (net *Network) newProcEvent() *procEvent {
	if n := len(net.procFree); n > 0 {
		e := net.procFree[n-1]
		net.procFree[n-1] = nil
		net.procFree = net.procFree[:n-1]
		return e
	}
	return &procEvent{net: net}
}

// Fire consumes the update: counters, Adj-RIB-In, decision, exports.
func (e *procEvent) Fire(*des.Scheduler) {
	net := e.net
	nd := &net.nodes[e.to]
	nd.recvBySlot[e.fromSlot]++
	net.totalUpdates++
	net.tickRate()
	if net.updateHook != nil {
		net.updateHook(UpdateRecord{
			Time:   net.sched.Now(),
			From:   nd.neighbors[e.fromSlot].ID,
			To:     nd.id,
			Kind:   e.kind,
			Prefix: e.prefix,
			Path:   e.path,
		})
	}
	ps := nd.state(e.prefix)
	had := ps.ribIn[e.fromSlot]
	if e.kind == Withdraw {
		nd.recvWithdraw++
		ps.ribIn[e.fromSlot] = nil
	} else {
		nd.recvAnnounce++
		if e.path.Contains(nd.id) {
			// Receiver-side loop detection; unreachable given sender-side
			// suppression, kept as defense in depth.
			ps.ribIn[e.fromSlot] = nil
		} else {
			ps.ribIn[e.fromSlot] = e.path
		}
	}
	if d := &net.cfg.Dampening; d.Enabled && had != nil {
		// RFC 2439 flap accounting: a withdrawal of a reachable route, or
		// an announcement replacing it with a different path.
		switch {
		case e.kind == Withdraw:
			net.recordFlap(nd, e.fromSlot, e.prefix, d.WithdrawPenalty)
		case !had.Equal(ps.ribIn[e.fromSlot]):
			net.recordFlap(nd, e.fromSlot, e.prefix, d.UpdatePenalty)
		}
	}
	prefix := e.prefix
	// All fields are consumed; recycle before the decision process so the
	// event is available for the sends applyDecision may trigger. The Path
	// is NOT pooled — it lives on in the Adj-RIB-In.
	e.path = nil
	net.procFree = append(net.procFree, e)
	net.applyDecision(nd, prefix, ps)
}

// flushEvent fires when a per-interface MRAI timer expires with queued
// updates. Pooled like procEvent.
type flushEvent struct {
	net  *Network
	node topology.NodeID
	slot int32
}

// newFlushEvent takes a recycled flushEvent or allocates a fresh one.
func (net *Network) newFlushEvent() *flushEvent {
	if n := len(net.flushFree); n > 0 {
		e := net.flushFree[n-1]
		net.flushFree[n-1] = nil
		net.flushFree = net.flushFree[:n-1]
		return e
	}
	return &flushEvent{net: net}
}

// Fire sends every queued update on the interface and restarts the timer if
// anything was sent.
func (e *flushEvent) Fire(*des.Scheduler) {
	net := e.net
	nd := &net.nodes[e.node]
	q := &nd.out[e.slot]
	slot := int(e.slot)
	net.flushFree = append(net.flushFree, e)
	q.scheduled = false
	if q.down || q.pending.Len() == 0 {
		return
	}
	sent := false
	nd.scratch = q.pending.SortedKeysInto(nd.scratch)
	for _, f := range nd.scratch {
		pu, _ := q.pending.Get(f)
		q.pending.Delete(f)
		net.transmit(nd, slot, f, pu.kind, pu.path)
		if pu.kind == Withdraw {
			q.lastSent.Delete(f)
		} else {
			q.lastSent.Set(f, pu.path)
		}
		sent = true
	}
	if sent {
		q.expiry = net.sched.Now() + des.Time(nd.src.Jitter(int64(net.cfg.MRAI), net.cfg.JitterLo, net.cfg.JitterHi))
	}
}

// prefixFlushEvent is flushEvent for PerPrefix MRAI scope. Pooled like
// procEvent.
type prefixFlushEvent struct {
	net    *Network
	node   topology.NodeID
	slot   int32
	prefix Prefix
}

// newPrefixFlushEvent takes a recycled event or allocates a fresh one.
func (net *Network) newPrefixFlushEvent() *prefixFlushEvent {
	if n := len(net.prefixFlushFree); n > 0 {
		e := net.prefixFlushFree[n-1]
		net.prefixFlushFree[n-1] = nil
		net.prefixFlushFree = net.prefixFlushFree[:n-1]
		return e
	}
	return &prefixFlushEvent{net: net}
}

// Fire sends the queued update for one (interface, prefix) pair.
func (e *prefixFlushEvent) Fire(*des.Scheduler) {
	net := e.net
	nd := &net.nodes[e.node]
	q := &nd.out[e.slot]
	slot, f := int(e.slot), e.prefix
	net.prefixFlushFree = append(net.prefixFlushFree, e)
	q.prefixScheduled.Delete(f)
	if q.down {
		return
	}
	pu, ok := q.pending.Get(f)
	if !ok {
		return
	}
	q.pending.Delete(f)
	net.transmit(nd, slot, f, pu.kind, pu.path)
	if pu.kind == Withdraw {
		q.lastSent.Delete(f)
	} else {
		q.lastSent.Set(f, pu.path)
	}
	q.prefixExpiry.Set(f, net.sched.Now()+des.Time(nd.src.Jitter(int64(net.cfg.MRAI), net.cfg.JitterLo, net.cfg.JitterHi)))
}

// --- core protocol flow --------------------------------------------------

// applyDecision re-runs the decision process for (nd, f); if the selected
// route changed it updates the Loc-RIB and reconciles every neighbor's
// output state.
func (net *Network) applyDecision(nd *node, f Prefix, ps *prefixState) {
	slot, path := nd.decide(ps)
	if slot == ps.bestSlot && path.Equal(ps.bestPath) {
		return
	}
	ps.bestSlot, ps.bestPath = slot, path
	ps.fullValid = false // the cached advertisement body is stale
	nd.bestChanges++
	net.reconcile(nd, f, ps)
}

// reconcile recomputes the desired advertisement toward every neighbor and
// feeds differences into the rate-limited output queues.
func (net *Network) reconcile(nd *node, f Prefix, ps *prefixState) {
	full, fromCustomerOrSelf := nd.advertisement(ps)
	for j := range nd.neighbors {
		if nd.out[j].down {
			continue
		}
		var want Path
		if nd.exportable(j, full, fromCustomerOrSelf) {
			want = full
		}
		net.setDesired(nd, j, f, want)
	}
}

// timerIdle reports whether an update for (q, f) may be sent immediately.
func (net *Network) timerIdle(q *outQueue, f Prefix) bool {
	if net.cfg.MRAI == 0 {
		return true
	}
	if net.cfg.Scope == PerPrefix {
		exp, _ := q.prefixExpiry.Get(f)
		return exp <= net.sched.Now()
	}
	return q.expiry <= net.sched.Now()
}

// restartTimer starts the MRAI timer for (nd, j[, f]) after a send.
func (net *Network) restartTimer(nd *node, j int, f Prefix) {
	if net.cfg.MRAI == 0 {
		return
	}
	expiry := net.sched.Now() + des.Time(nd.src.Jitter(int64(net.cfg.MRAI), net.cfg.JitterLo, net.cfg.JitterHi))
	q := &nd.out[j]
	if net.cfg.Scope == PerPrefix {
		q.prefixExpiry.Set(f, expiry)
	} else {
		q.expiry = expiry
	}
}

// ensureFlush schedules the flush event that will drain (nd, j[, f]) when
// its MRAI timer expires.
func (net *Network) ensureFlush(nd *node, j int, f Prefix) {
	q := &nd.out[j]
	if net.cfg.Scope == PerPrefix {
		if armed, _ := q.prefixScheduled.Get(f); armed {
			return
		}
		q.prefixScheduled.Set(f, true)
		e := net.newPrefixFlushEvent()
		e.node, e.slot, e.prefix = nd.id, int32(j), f
		exp, _ := q.prefixExpiry.Get(f)
		net.sched.At(exp, e)
		return
	}
	if q.scheduled {
		return
	}
	q.scheduled = true
	e := net.newFlushEvent()
	e.node, e.slot = nd.id, int32(j)
	net.sched.At(q.expiry, e)
}

// setDesired reconciles the wire state toward neighbor j for prefix f with
// the desired advertisement want (nil = withdrawn/none). It sends
// immediately when rate limiting allows, otherwise replaces the queued
// update.
func (net *Network) setDesired(nd *node, j int, f Prefix, want Path) {
	q := &nd.out[j]
	last, onWire := q.lastSent.Get(f)
	if want == nil {
		// Any queued announcement is now invalid.
		q.pending.Delete(f)
		if !onWire {
			return
		}
		if !net.cfg.RateLimitWithdrawals {
			// NO-WRATE: explicit withdrawals bypass the MRAI timer entirely
			// and do not restart it.
			net.transmit(nd, j, f, Withdraw, nil)
			q.lastSent.Delete(f)
			return
		}
		if net.timerIdle(q, f) {
			net.transmit(nd, j, f, Withdraw, nil)
			q.lastSent.Delete(f)
			net.restartTimer(nd, j, f)
			return
		}
		q.pending.Set(f, pendingUpdate{kind: Withdraw})
		net.ensureFlush(nd, j, f)
		return
	}
	if onWire && last.Equal(want) {
		// Wire state already matches; drop any queued update (it has been
		// invalidated by this newer state).
		q.pending.Delete(f)
		return
	}
	if net.timerIdle(q, f) {
		net.transmit(nd, j, f, Announce, want)
		q.lastSent.Set(f, want)
		net.restartTimer(nd, j, f)
		return
	}
	q.pending.Set(f, pendingUpdate{kind: Announce, path: want})
	net.ensureFlush(nd, j, f)
}

// transmit delivers one update to the neighbor at slot j, modeling the
// receiver's FIFO queue + single processor: processing completes a uniform
// (0, MaxProcessingDelay] after the receiver becomes free.
func (net *Network) transmit(nd *node, j int, f Prefix, kind UpdateKind, path Path) {
	nd.sentUpdates++
	to := &net.nodes[nd.neighbors[j].ID]
	start := to.busyUntil
	if now := net.sched.Now(); start < now {
		start = now
	}
	done := start + des.Time(to.src.UniformDuration(int64(net.cfg.MaxProcessingDelay)))
	to.busyUntil = done
	e := net.newProcEvent()
	e.to, e.fromSlot, e.kind, e.prefix, e.path = to.id, nd.reverse[j], kind, f, path
	net.sched.At(done, e)
}
