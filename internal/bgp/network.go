package bgp

import (
	"fmt"
	"time"

	"bgpchurn/internal/des"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/rng"
	"bgpchurn/internal/topology"
)

// Network is a running BGP simulation over a fixed topology. Construct with
// New, originate or withdraw prefixes, then Run to quiescence. A Network is
// not safe for concurrent use; run one per goroutine. (A Network with
// Config.Shards > 1 uses multiple goroutines internally during Run, but its
// public API remains single-caller.)
type Network struct {
	topo *topology.Topology
	// adj is the topology's shared CSR adjacency; every node's
	// nbrIDs/nbrRels/reverse are rows of it. Immutable, shared across
	// Networks over the same topology.
	adj   *topology.Adjacency
	cfg   Config
	nodes []node

	// shards partitions the node array into contiguous ranges, each with a
	// private event queue and runtime counters (see netShard). The classic
	// zero-LinkDelay engine always runs one shard; the windowed engine runs
	// Config.Shards of them in barrier-synchronized lockstep.
	shards []*netShard
	// scheds caches &shards[i].sched for des.RunGroupUntil.
	scheds []*des.Scheduler
	// firedScratch/elapsedScratch are RunGroupUntil scratch (see there).
	firedScratch   []uint64
	elapsedScratch []time.Duration
	// windowed selects the barrier-synchronized executor (LinkDelay > 0);
	// multi is len(shards) > 1 (implies windowed).
	windowed bool
	multi    bool
	// crossSessions counts the sessions whose endpoints live in different
	// shards (see ShardInfo).
	crossSessions int

	// tieFlat, recvFlat and outFlat are this network's per-session state in
	// one contiguous block each, parallel to adj.IDs; node j's rows are
	// sub-slices. Flat layout keeps the hot loop cache-friendly and lets
	// Reset clear whole arrays in single passes.
	tieFlat  []uint64
	recvFlat []uint32
	outFlat  []outQueue

	// intern is the compact engine's path intern table (nil in classic
	// mode). It survives Reset: the distinct paths of one topology recur
	// across events, and PathIDs handed out earlier stay valid (see PathID).
	// All shards share it (mutex writers, lock-free readers; see intern.go).
	intern *internTable
	// ribInFlat is the compact engine's network-wide Adj-RIB-In: one PathID
	// per CSR session slot. Each node's row backs its first prefixState, so
	// the single-prefix workload of a C-event keeps the whole Adj-RIB-In in
	// one contiguous 4-byte-per-route array with zero allocation.
	ribInFlat []PathID

	// ws holds WarmStart's scratch arrays, lazily sized to N() on first use
	// and reused across calls so repeated warm starts on the same network
	// (one per origin in an experiment) do not reallocate.
	ws warmScratch

	// updateHook, when set, observes every processed update (see
	// SetUpdateHook). The hook is not required to be thread-safe, so the
	// windowed executor runs shards sequentially while it is attached.
	updateHook func(UpdateRecord)

	// causal is the attached causal tracer (nil when tracing is off; see
	// causal.go). Unlike updateHook it is shard-safe by construction —
	// every write it takes during a window is shard-disjoint — so it never
	// forces sequential execution.
	causal *causalTrace

	// obs is the attached metrics hub (nil when detached); build re-attaches
	// probe blocks from it after Grow recreates the shards.
	obs *obs.Metrics
	// shardProbes instruments the barrier coordinator (windowed mode only):
	// barriers executed, cross-shard updates exchanged, per-window skew.
	shardProbes *obs.ShardProbes
}

// New builds the per-node protocol state for the topology. The topology
// must be valid (see topology.Validate); New does not re-validate it.
func New(topo *topology.Topology, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net := &Network{cfg: cfg}
	if err := net.build(topo); err != nil {
		return nil, err
	}
	net.reinit(cfg.Seed)
	return net, nil
}

// build (re)creates the structural wiring for topo: the shard array, the
// node array and the flat per-session state blocks, with every per-node
// slice a row of a shared flat array (the topology's CSR block or this
// network's own session arrays). It is the structural half of construction,
// shared by New and Grow; runtime state is initialized separately by reinit.
// The intern table, when already present, is kept — interned paths are
// content-addressed and node IDs survive growth, so existing PathIDs stay
// valid (see PathID).
func (net *Network) build(topo *topology.Topology) error {
	adj := topo.CSR()
	if !adj.Symmetric() {
		return fmt.Errorf("bgp: topology has an asymmetric adjacency")
	}
	sessions := len(adj.IDs)
	net.topo = topo
	net.adj = adj
	net.nodes = make([]node, topo.N())
	net.tieFlat = make([]uint64, sessions)
	net.recvFlat = make([]uint32, sessions)
	net.outFlat = make([]outQueue, sessions)
	if net.cfg.CompactRIB {
		if net.intern == nil {
			net.intern = newInternTable()
		}
		net.ribInFlat = make([]PathID, sessions)
	}

	// Shard partition: contiguous node ranges balanced by session count.
	// The classic zero-LinkDelay engine has no lookahead to parallelize
	// under, so it always runs the single-shard inline path.
	net.windowed = net.cfg.LinkDelay > 0
	s := net.cfg.Shards
	if s < 1 || !net.windowed {
		s = 1
	}
	bounds := adj.ShardRanges(s)
	net.multi = s > 1
	if net.multi {
		net.crossSessions = adj.CrossShardSessions(bounds)
	} else {
		net.crossSessions = 0
	}
	net.shards = make([]*netShard, s)
	net.scheds = make([]*des.Scheduler, s)
	net.firedScratch = make([]uint64, s)
	for k := range net.shards {
		sh := &netShard{net: net, idx: k, lo: bounds[k], hi: bounds[k+1]}
		sh.outbox = make([][]wireMsg, s)
		net.shards[k] = sh
		net.scheds[k] = &sh.sched
	}

	shard := 0
	for i := range net.nodes {
		nd := &net.nodes[i]
		for int32(i) >= bounds[shard+1] {
			shard++
		}
		sh := net.shards[shard]
		lo, hi := adj.Row(topology.NodeID(i))
		nd.id = topology.NodeID(i)
		nd.typ = topo.Nodes[i].Type
		nd.sh = sh
		nd.nbrIDs = adj.IDs[lo:hi:hi]
		nd.nbrRels = adj.Rels[lo:hi:hi]
		nd.reverse = adj.Reverse[lo:hi:hi]
		nd.tieHash = net.tieFlat[lo:hi:hi]
		nd.recvBySlot = net.recvFlat[lo:hi:hi]
		nd.out = net.outFlat[lo:hi:hi]
		nd.arena = &sh.paths
		nd.it = net.intern
		if net.intern != nil {
			nd.ribRow = net.ribInFlat[lo:hi:hi]
		}
	}
	// Re-attach probe blocks after Grow recreated the shards (no-op when no
	// hub is attached), and re-size the causal tracer if one is attached.
	net.attachObs()
	net.attachCausal()
	return nil
}

// Grow rewires the network onto a grown topology (see topology.Grow) and
// reinitializes it from seed, preserving the Config, the attached probes and
// — in compact mode — the path intern table, whose entries remain valid
// because growth preserves node IDs. Grow and Reset share the same
// reinitialization path (reinit), so a grown network is observably identical
// to one freshly built with New(topo, cfg-with-seed): the grow-then-reset
// regression test pins that equivalence. The topology must contain at least
// as many nodes as the current one, with the existing prefix unchanged.
func (net *Network) Grow(topo *topology.Topology, seed uint64) error {
	old := net.topo
	if topo.N() < old.N() {
		return fmt.Errorf("bgp: Grow to %d nodes from %d — topologies only grow", topo.N(), old.N())
	}
	for i := range old.Nodes {
		if topo.Nodes[i].Type != old.Nodes[i].Type {
			return fmt.Errorf("bgp: Grow topology changes node %d's type (%v -> %v); not a grown version of the current one",
				i, old.Nodes[i].Type, topo.Nodes[i].Type)
		}
	}
	if err := net.build(topo); err != nil {
		return err
	}
	net.reinit(seed)
	return nil
}

// MustNew is New for known-valid inputs; it panics on error.
func MustNew(topo *topology.Topology, cfg Config) *Network {
	net, err := New(topo, cfg)
	if err != nil {
		panic(err)
	}
	return net
}

// SetObs attaches the metrics hub to this network: every shard's protocol
// engine, event scheduler and path arena gets its own probe block on a
// fresh metrics shard, and — in windowed mode — the barrier coordinator
// gets a ShardProbes block. Pass nil to detach. Call before the first event
// is scheduled — the kernel's occupancy gauges assume an empty queue at
// attach time. Probes never read the virtual clock, consume randomness or
// change event order, so instrumented runs are byte-identical to bare ones.
func (net *Network) SetObs(m *obs.Metrics) {
	net.obs = m
	net.attachObs()
}

// attachObs (re)resolves probe blocks from the stored hub for the current
// shard array; with no hub it detaches everything. Called by SetObs and by
// build (so Grow keeps instrumentation attached across the rebuild).
func (net *Network) attachObs() {
	m := net.obs
	if m == nil {
		for _, sh := range net.shards {
			sh.probes = nil
			sh.sched.SetProbes(nil)
			sh.paths.probe = nil
		}
		net.shardProbes = nil
		net.elapsedScratch = nil
		if net.intern != nil {
			net.intern.setProbes(nil, nil, nil)
		}
		return
	}
	for _, sh := range net.shards {
		sh.probes = m.NewBGPProbes()
		sh.sched.SetProbes(m.NewDESProbes())
		sh.paths.probe = sh.probes.ArenaBytes
	}
	if net.windowed {
		net.shardProbes = m.NewShardProbes()
		net.elapsedScratch = make([]time.Duration, len(net.shards))
	}
	if net.intern != nil {
		// The intern table is shared by all shards; its cells live on shard
		// 0's probe block (atomic cells tolerate the shared writers, which
		// already serialize on the table mutex).
		p := net.shards[0].probes
		net.intern.setProbes(p.InternedPaths, p.InternBytes, p.InternHits)
	}
}

// Topology returns the underlying topology.
func (net *Network) Topology() *topology.Topology { return net.topo }

// Config returns the protocol configuration.
func (net *Network) Config() Config { return net.cfg }

// ShardInfo reports the effective shard count and the number of sessions
// crossing shard boundaries under the current partition (0 for a
// single-shard network). The partition affects wall-clock only, never
// results.
func (net *Network) ShardInfo() (shards, crossSessions int) {
	return len(net.shards), net.crossSessions
}

// Now returns the current virtual time. In windowed mode all shard clocks
// agree whenever the network is quiescent (between Run/Settle calls).
func (net *Network) Now() des.Time { return net.shards[0].sched.Now() }

// Pending returns the number of queued simulation events (including
// messages awaiting a barrier exchange); zero means the network is
// quiescent (converged).
func (net *Network) Pending() int {
	n := 0
	for _, sh := range net.shards {
		n += sh.sched.Len()
		for _, ob := range sh.outbox {
			n += len(ob)
		}
	}
	return n
}

// Run advances the simulation until quiescence and returns the number of
// events fired.
func (net *Network) Run() uint64 {
	if net.windowed {
		return net.runWindowed(-1)
	}
	return net.shards[0].sched.Run()
}

// RunUntil advances the simulation up to the given deadline.
func (net *Network) RunUntil(deadline des.Time) uint64 {
	if net.windowed {
		return net.runWindowed(deadline)
	}
	return net.shards[0].sched.RunUntil(deadline)
}

// Settle advances virtual time by d, firing any events that fall inside the
// window. Experiments use it to let MRAI timers go idle between phases, so
// a C-event starts from a quiet network as it would in practice.
func (net *Network) Settle(d des.Time) uint64 {
	return net.RunUntil(net.Now() + d)
}

// Reset rewinds the network to a pristine state (no prefixes, idle timers,
// clock at zero, counters cleared) and reseeds every node's randomness
// stream from seed, exactly as if the network had been rebuilt with New
// using that seed — but reusing all allocated structures. Experiment sweeps
// use it to run many C-events on one Network with per-event determinism
// that is independent of scheduling order. Reset and New share one
// reinitialization path (reinit); only the structural wiring differs.
func (net *Network) Reset(seed uint64) { net.reinit(seed) }

// reinit is the single reinitialization path shared by New and Reset: it
// (re)seeds all randomness and rewinds every piece of runtime state —
// schedulers, counters, arenas, outboxes, per-node timers, queues and
// prefix tables — to the pristine post-New condition. New calls it on
// freshly zeroed structures, Reset on used ones; both end in the identical
// observable state for a given seed, which is what lets experiment sweeps
// (and the grow-then-reset regression test) treat "Reset(s)" and "rebuilt
// with New(s)" as interchangeable. The intern table is intentionally NOT
// cleared (see PathID); each shard's path arena's current slab is dropped,
// never rewound (see pathArena).
func (net *Network) reinit(seed uint64) {
	for _, sh := range net.shards {
		sh.sched.Reset(true)
		sh.activeCause = 0
		sh.totalUpdates = 0
		sh.rateBucket, sh.rateCount, sh.ratePeak = 0, 0, 0
		sh.rateLog = sh.rateLog[:0]
		// Drop (never rewind) the path slab, keeping the probe: see pathArena.
		sh.paths = pathArena{probe: sh.paths.probe}
		for d := range sh.outbox {
			clear(sh.outbox[d]) // release in-flight paths
			sh.outbox[d] = sh.outbox[d][:0]
		}
	}
	master := rng.New(seed)
	salt := master.Uint64() // first draw: the tie-break salt
	for i := range net.nodes {
		nd := &net.nodes[i]
		nd.busyUntil = 0
		nd.msgSeq = 0
		clear(nd.inbox) // release parked paths
		nd.inbox, nd.inboxHead, nd.delivering = nd.inbox[:0], 0, false
		nd.recvAnnounce, nd.recvWithdraw, nd.sentUpdates = 0, 0, 0
		nd.bestChanges, nd.suppressions = 0, 0
		for j := range nd.recvBySlot {
			nd.recvBySlot[j] = 0
		}
		// Recycle every prefixState (ribIn/ribID and damp storage included)
		// into the free list; the next event's state() calls pop them back.
		// A prefixState that claimed the node's flat ribRow keeps it across
		// the recycle, so the row can never back two live prefixes.
		nd.prefixes.ForEach(func(_ Prefix, ps *prefixState) {
			ps.reset()
			nd.psFree = append(nd.psFree, ps)
		})
		nd.prefixes.Clear()
		// One draw per node, in node order (New's Split consumes the same).
		if nd.src == nil {
			nd.src = rng.New(master.Uint64())
		} else {
			nd.src.Reseed(master.Uint64())
		}
		for j, id := range nd.nbrIDs {
			nd.tieHash[j] = hashID(salt, id)
		}
		for j := range nd.out {
			q := &nd.out[j]
			q.expiry, q.scheduled, q.down = 0, false, false
			q.pending.Clear()
			q.lastSent.Clear()
			// Clear, not drop: repeated C-events on one Network reuse the
			// per-prefix timer storage instead of re-allocating it.
			q.prefixExpiry.Clear()
			q.prefixScheduled.Clear()
		}
	}
}

// Originate makes origin announce prefix f from the current virtual time.
// Call Run afterwards to propagate.
func (net *Network) Originate(origin topology.NodeID, f Prefix) {
	nd := &net.nodes[origin]
	ps := nd.state(f)
	if ps.selfOrigin {
		return
	}
	ps.selfOrigin = true
	net.applyDecision(nd, f, ps)
}

// WithdrawPrefix makes origin stop announcing prefix f ("DOWN" half of a
// C-event). Call Run afterwards to propagate.
func (net *Network) WithdrawPrefix(origin topology.NodeID, f Prefix) {
	nd := &net.nodes[origin]
	ps := nd.state(f)
	if !ps.selfOrigin {
		return
	}
	ps.selfOrigin = false
	net.applyDecision(nd, f, ps)
}

// HasRoute reports whether node id currently has a route to prefix f
// (including originating it).
func (net *Network) HasRoute(id topology.NodeID, f Prefix) bool {
	ps, ok := net.nodes[id].prefixes.Get(f)
	return ok && ps.bestSlot != noneSlot
}

// BestPath returns the full AS path node id would use toward prefix f:
// [id, ..., origin], or nil if it has no route. The returned slice is fresh.
func (net *Network) BestPath(id topology.NodeID, f Prefix) Path {
	ps, ok := net.nodes[id].prefixes.Get(f)
	if !ok || ps.bestSlot == noneSlot {
		return nil
	}
	if ps.bestSlot == selfSlot {
		return Path{id}
	}
	return ps.bestPath.Prepend(id)
}

// NextHop returns the neighbor node id routes through for prefix f, the
// node itself if it originates f, or topology.None if it has no route.
func (net *Network) NextHop(id topology.NodeID, f Prefix) topology.NodeID {
	ps, ok := net.nodes[id].prefixes.Get(f)
	if !ok || ps.bestSlot == noneSlot {
		return topology.None
	}
	if ps.bestSlot == selfSlot {
		return id
	}
	return net.nodes[id].nbrIDs[ps.bestSlot]
}

// --- event types ---------------------------------------------------------

// inMsg is a message parked in a receiver's inbox: the full delivery
// payload plus the scheduler ticket reserved for it at admission time.
type inMsg struct {
	tk       des.Ticket
	fromSlot int32
	kind     UpdateKind
	prefix   Prefix
	path     Path
	pathID   PathID  // interned ID of path (compact mode)
	cause    CauseID // root cause of the update (0 when tracing is off)
}

// procEvent is the completion of processing one received update at a node.
// procEvents are pooled per shard: deliver takes one from the shard's
// procFree and Fire returns its receiver there once it is done reading the
// fields, so the steady-state update flow allocates no events.
type procEvent struct {
	sh       *netShard
	to       topology.NodeID
	fromSlot int32
	kind     UpdateKind
	prefix   Prefix
	path     Path
	pathID   PathID  // interned ID of path (compact mode)
	cause    CauseID // root cause of the update (0 when tracing is off)
}

// newProcEvent takes a recycled procEvent or allocates a fresh one.
func (sh *netShard) newProcEvent() *procEvent {
	if n := len(sh.procFree); n > 0 {
		e := sh.procFree[n-1]
		sh.procFree[n-1] = nil
		sh.procFree = sh.procFree[:n-1]
		if p := sh.probes; p != nil {
			p.PoolHits.Inc()
		}
		return e
	}
	if p := sh.probes; p != nil {
		p.PoolMisses.Inc()
	}
	return &procEvent{sh: sh}
}

// Fire consumes the update: counters, Adj-RIB-In, decision, exports.
func (e *procEvent) Fire(*des.Scheduler) {
	sh := e.sh
	net := sh.net
	nd := &net.nodes[e.to]
	// The event's root cause becomes the shard's active cause: every update
	// this processing step transmits (or queues behind an MRAI timer)
	// inherits it.
	sh.activeCause = e.cause
	nd.recvBySlot[e.fromSlot]++
	sh.totalUpdates++
	sh.tickRate()
	if p := sh.probes; p != nil {
		p.UpdatesProcessed.Inc()
	}
	if net.updateHook != nil {
		net.updateHook(UpdateRecord{
			Time:   sh.sched.Now(),
			From:   nd.nbrIDs[e.fromSlot],
			To:     nd.id,
			Kind:   e.kind,
			Prefix: e.prefix,
			Path:   e.path,
			PathID: e.pathID,
			Cause:  e.cause,
		})
	}
	ps := nd.state(e.prefix)
	if nd.it != nil {
		// Compact engine: the Adj-RIB-In write is a 4-byte store and the
		// dampening "did the path change" test an ID compare.
		had := ps.ribID[e.fromSlot]
		now := NoPath
		if e.kind == Withdraw {
			nd.recvWithdraw++
		} else {
			nd.recvAnnounce++
			if !e.path.Contains(nd.id) {
				now = e.pathID
			}
			// else: receiver-side loop detection; unreachable given
			// sender-side suppression, kept as defense in depth.
		}
		ps.ribID[e.fromSlot] = now
		if tr := net.causal; tr != nil {
			tr.record(sh, e.to, e.fromSlot, e.kind, had == now, had == NoPath)
		}
		if d := &net.cfg.Dampening; d.Enabled && had != NoPath {
			switch {
			case e.kind == Withdraw:
				net.recordFlap(nd, e.fromSlot, e.prefix, d.WithdrawPenalty)
			case had != now:
				net.recordFlap(nd, e.fromSlot, e.prefix, d.UpdatePenalty)
			}
		}
	} else {
		had := ps.ribIn[e.fromSlot]
		if e.kind == Withdraw {
			nd.recvWithdraw++
			ps.ribIn[e.fromSlot] = nil
		} else {
			nd.recvAnnounce++
			if e.path.Contains(nd.id) {
				// Receiver-side loop detection; unreachable given
				// sender-side suppression, kept as defense in depth.
				ps.ribIn[e.fromSlot] = nil
			} else {
				ps.ribIn[e.fromSlot] = e.path
			}
		}
		if tr := net.causal; tr != nil {
			tr.record(sh, e.to, e.fromSlot, e.kind, had.Equal(ps.ribIn[e.fromSlot]), had == nil)
		}
		if d := &net.cfg.Dampening; d.Enabled && had != nil {
			// RFC 2439 flap accounting: a withdrawal of a reachable route,
			// or an announcement replacing it with a different path.
			switch {
			case e.kind == Withdraw:
				net.recordFlap(nd, e.fromSlot, e.prefix, d.WithdrawPenalty)
			case !had.Equal(ps.ribIn[e.fromSlot]):
				net.recordFlap(nd, e.fromSlot, e.prefix, d.UpdatePenalty)
			}
		}
	}
	prefix := e.prefix
	// All fields are consumed; recycle before the decision process so the
	// event is available for the sends applyDecision may trigger. The Path
	// is NOT pooled — it lives on in the Adj-RIB-In.
	e.path, e.pathID = nil, NoPath
	sh.procFree = append(sh.procFree, e)
	// Chain the next parked delivery, if any, under its reserved ticket
	// (see deliver). Completion times are monotone per receiver, so the
	// ticket can never be in the past.
	if nd.inboxHead < len(nd.inbox) {
		m := nd.inbox[nd.inboxHead]
		nd.inbox[nd.inboxHead] = inMsg{} // release the path
		nd.inboxHead++
		if nd.inboxHead == len(nd.inbox) {
			nd.inbox, nd.inboxHead = nd.inbox[:0], 0
		}
		next := sh.newProcEvent()
		next.to, next.fromSlot, next.kind, next.prefix, next.path, next.pathID, next.cause = nd.id, m.fromSlot, m.kind, m.prefix, m.path, m.pathID, m.cause
		sh.sched.AtTicket(m.tk, next)
	} else {
		nd.delivering = false
	}
	net.applyDecision(nd, prefix, ps)
}

// flushEvent fires when a per-interface MRAI timer expires with queued
// updates. Pooled like procEvent.
type flushEvent struct {
	sh   *netShard
	node topology.NodeID
	slot int32
}

// newFlushEvent takes a recycled flushEvent or allocates a fresh one.
func (sh *netShard) newFlushEvent() *flushEvent {
	if n := len(sh.flushFree); n > 0 {
		e := sh.flushFree[n-1]
		sh.flushFree[n-1] = nil
		sh.flushFree = sh.flushFree[:n-1]
		if p := sh.probes; p != nil {
			p.PoolHits.Inc()
		}
		return e
	}
	if p := sh.probes; p != nil {
		p.PoolMisses.Inc()
	}
	return &flushEvent{sh: sh}
}

// Fire sends every queued update on the interface and restarts the timer if
// anything was sent.
func (e *flushEvent) Fire(*des.Scheduler) {
	sh := e.sh
	net := sh.net
	nd := &net.nodes[e.node]
	q := &nd.out[e.slot]
	slot := int(e.slot)
	sh.flushFree = append(sh.flushFree, e)
	q.scheduled = false
	if p := sh.probes; p != nil {
		p.MRAIFlushes.Inc()
	}
	if q.down || q.pending.Len() == 0 {
		return
	}
	sent := false
	nd.scratch = q.pending.SortedKeysInto(nd.scratch)
	for _, f := range nd.scratch {
		pu, _ := q.pending.Get(f)
		q.pending.Delete(f)
		// Each drained update is attributed to the cause that queued (or
		// last replaced) it, not to whatever fired most recently.
		sh.activeCause = pu.cause
		net.transmit(nd, slot, f, pu.kind, pu.path, pu.id)
		if pu.kind == Withdraw {
			q.lastSent.Delete(f)
		} else {
			q.lastSent.Set(f, pu.path)
		}
		sent = true
	}
	if sent {
		q.expiry = sh.sched.Now() + des.Time(nd.src.Jitter(int64(net.cfg.MRAI), net.cfg.JitterLo, net.cfg.JitterHi))
	}
}

// prefixFlushEvent is flushEvent for PerPrefix MRAI scope. Pooled like
// procEvent.
type prefixFlushEvent struct {
	sh     *netShard
	node   topology.NodeID
	slot   int32
	prefix Prefix
}

// newPrefixFlushEvent takes a recycled event or allocates a fresh one.
func (sh *netShard) newPrefixFlushEvent() *prefixFlushEvent {
	if n := len(sh.prefixFlushFree); n > 0 {
		e := sh.prefixFlushFree[n-1]
		sh.prefixFlushFree[n-1] = nil
		sh.prefixFlushFree = sh.prefixFlushFree[:n-1]
		if p := sh.probes; p != nil {
			p.PoolHits.Inc()
		}
		return e
	}
	if p := sh.probes; p != nil {
		p.PoolMisses.Inc()
	}
	return &prefixFlushEvent{sh: sh}
}

// Fire sends the queued update for one (interface, prefix) pair.
func (e *prefixFlushEvent) Fire(*des.Scheduler) {
	sh := e.sh
	net := sh.net
	nd := &net.nodes[e.node]
	q := &nd.out[e.slot]
	slot, f := int(e.slot), e.prefix
	sh.prefixFlushFree = append(sh.prefixFlushFree, e)
	q.prefixScheduled.Delete(f)
	if p := sh.probes; p != nil {
		p.PrefixMRAIFlushes.Inc()
	}
	if q.down {
		return
	}
	pu, ok := q.pending.Get(f)
	if !ok {
		return
	}
	q.pending.Delete(f)
	sh.activeCause = pu.cause
	net.transmit(nd, slot, f, pu.kind, pu.path, pu.id)
	if pu.kind == Withdraw {
		q.lastSent.Delete(f)
	} else {
		q.lastSent.Set(f, pu.path)
	}
	q.prefixExpiry.Set(f, sh.sched.Now()+des.Time(nd.src.Jitter(int64(net.cfg.MRAI), net.cfg.JitterLo, net.cfg.JitterHi)))
}

// --- core protocol flow --------------------------------------------------

// applyDecision re-runs the decision process for (nd, f); if the selected
// route changed it updates the Loc-RIB and reconciles every neighbor's
// output state. In compact mode the "did the route change" test is a PathID
// compare — the hash-consing invariant (equal IDs ⟺ equal content) makes it
// exactly equivalent to the classic Path.Equal.
func (net *Network) applyDecision(nd *node, f Prefix, ps *prefixState) {
	if nd.it != nil {
		slot, id := nd.decideCompact(ps)
		if slot == ps.bestSlot && id == ps.bestID {
			return
		}
		ps.bestSlot, ps.bestID = slot, id
		ps.bestPath = nd.it.path(id)
	} else {
		slot, path := nd.decide(ps)
		if slot == ps.bestSlot && path.Equal(ps.bestPath) {
			return
		}
		ps.bestSlot, ps.bestPath = slot, path
	}
	ps.fullValid = false // the cached advertisement body is stale
	nd.bestChanges++
	if tr := net.causal; tr != nil {
		tr.tallies[nd.sh.idx].exploration[nd.typ]++
	}
	net.reconcile(nd, f, ps)
	if net.cfg.Check {
		net.checkReconciled(nd, f, ps)
	}
}

// reconcile recomputes the desired advertisement toward every neighbor and
// feeds differences into the rate-limited output queues.
func (net *Network) reconcile(nd *node, f Prefix, ps *prefixState) {
	full, fromCustomerOrSelf := nd.advertisement(ps)
	for j := range nd.nbrIDs {
		if nd.out[j].down {
			continue
		}
		var want Path
		wantID := NoPath
		if nd.exportable(j, full, fromCustomerOrSelf) {
			want, wantID = full, ps.fullID
		}
		net.setDesired(nd, j, f, want, wantID)
	}
}

// timerIdle reports whether an update for (q, f) may be sent immediately.
func (net *Network) timerIdle(nd *node, q *outQueue, f Prefix) bool {
	if net.cfg.MRAI == 0 {
		return true
	}
	if net.cfg.Scope == PerPrefix {
		exp, _ := q.prefixExpiry.Get(f)
		return exp <= nd.sh.sched.Now()
	}
	return q.expiry <= nd.sh.sched.Now()
}

// restartTimer starts the MRAI timer for (nd, j[, f]) after a send.
func (net *Network) restartTimer(nd *node, j int, f Prefix) {
	if net.cfg.MRAI == 0 {
		return
	}
	expiry := nd.sh.sched.Now() + des.Time(nd.src.Jitter(int64(net.cfg.MRAI), net.cfg.JitterLo, net.cfg.JitterHi))
	q := &nd.out[j]
	if net.cfg.Scope == PerPrefix {
		q.prefixExpiry.Set(f, expiry)
	} else {
		q.expiry = expiry
	}
}

// ensureFlush schedules the flush event that will drain (nd, j[, f]) when
// its MRAI timer expires.
func (net *Network) ensureFlush(nd *node, j int, f Prefix) {
	q := &nd.out[j]
	sh := nd.sh
	if net.cfg.Scope == PerPrefix {
		if armed, _ := q.prefixScheduled.Get(f); armed {
			return
		}
		q.prefixScheduled.Set(f, true)
		e := sh.newPrefixFlushEvent()
		e.node, e.slot, e.prefix = nd.id, int32(j), f
		exp, _ := q.prefixExpiry.Get(f)
		sh.sched.At(exp, e)
		return
	}
	if q.scheduled {
		return
	}
	q.scheduled = true
	e := sh.newFlushEvent()
	e.node, e.slot = nd.id, int32(j)
	sh.sched.At(q.expiry, e)
}

// setDesired reconciles the wire state toward neighbor j for prefix f with
// the desired advertisement want (nil = withdrawn/none; wantID is its
// interned ID in compact mode, NoPath otherwise). It sends immediately when
// rate limiting allows, otherwise replaces the queued update.
func (net *Network) setDesired(nd *node, j int, f Prefix, want Path, wantID PathID) {
	q := &nd.out[j]
	last, onWire := q.lastSent.Get(f)
	if want == nil {
		// Any queued announcement is now invalid.
		q.pending.Delete(f)
		if !onWire {
			return
		}
		if !net.cfg.RateLimitWithdrawals {
			// NO-WRATE: explicit withdrawals bypass the MRAI timer entirely
			// and do not restart it.
			net.transmit(nd, j, f, Withdraw, nil, NoPath)
			q.lastSent.Delete(f)
			return
		}
		if net.timerIdle(nd, q, f) {
			net.transmit(nd, j, f, Withdraw, nil, NoPath)
			q.lastSent.Delete(f)
			net.restartTimer(nd, j, f)
			return
		}
		q.pending.Set(f, pendingUpdate{kind: Withdraw, cause: nd.sh.activeCause})
		net.ensureFlush(nd, j, f)
		return
	}
	if onWire && last.Equal(want) {
		// Wire state already matches; drop any queued update (it has been
		// invalidated by this newer state). In compact mode both paths are
		// canonical, so Equal's identity fast-path resolves this compare.
		q.pending.Delete(f)
		return
	}
	if net.timerIdle(nd, q, f) {
		net.transmit(nd, j, f, Announce, want, wantID)
		q.lastSent.Set(f, want)
		net.restartTimer(nd, j, f)
		return
	}
	q.pending.Set(f, pendingUpdate{kind: Announce, path: want, id: wantID, cause: nd.sh.activeCause})
	net.ensureFlush(nd, j, f)
}

// transmit sends one update to the neighbor at slot j. With zero LinkDelay
// (the classic engine) the update is admitted to the receiver's processor
// inline — identical op order, RNG draws and ticket reservations to the
// historical single-threaded engine. In windowed mode the update is
// appended to the sender shard's outbox, stamped with its arrival time
// (now + LinkDelay) and the sender's per-node sequence number; the next
// barrier admits it on the receiver's shard in canonical
// (arrival, sender, seq) order (see exchange).
func (net *Network) transmit(nd *node, j int, f Prefix, kind UpdateKind, path Path, pathID PathID) {
	nd.sentUpdates++
	if p := nd.sh.probes; p != nil {
		if kind == Withdraw {
			p.WithdrawalsSent.Inc()
		} else {
			p.AnnouncementsSent.Inc()
		}
	}
	if net.windowed {
		sh := nd.sh
		nd.msgSeq++
		to := nd.nbrIDs[j]
		d := net.nodes[to].sh.idx
		sh.outbox[d] = append(sh.outbox[d], wireMsg{
			arrival:  sh.sched.Now() + net.cfg.LinkDelay,
			sender:   nd.id,
			seq:      nd.msgSeq,
			to:       to,
			fromSlot: nd.reverse[j],
			kind:     kind,
			prefix:   f,
			path:     path,
			pathID:   pathID,
			cause:    nd.sh.activeCause,
		})
		return
	}
	net.deliver(&net.nodes[nd.nbrIDs[j]], nd.sh.sched.Now(), nd.reverse[j], f, kind, path, pathID, nd.sh.activeCause)
}

// deliver admits one arriving update to the receiver's FIFO queue + single
// processor: processing completes a uniform (0, MaxProcessingDelay] after
// the receiver becomes free (and never before the message arrives). Shared
// by the classic inline path (arrival = send time) and barrier admission
// (arrival = send time + LinkDelay).
//
// Only the receiver's next completion lives in the scheduler queue; while
// it is pending, further messages park in the receiver's inbox with their
// tickets reserved here, in admission order. procEvent.Fire re-schedules
// the front of the inbox, so deliveries chain one at a time — same fire
// times, same fire order, a fraction of the queued events.
func (net *Network) deliver(to *node, arrival des.Time, fromSlot int32, f Prefix, kind UpdateKind, path Path, pathID PathID, cause CauseID) {
	sh := to.sh
	start := to.busyUntil
	if start < arrival {
		start = arrival
	}
	done := start + des.Time(to.src.UniformDuration(int64(net.cfg.MaxProcessingDelay)))
	to.busyUntil = done
	tk := sh.sched.Reserve(done)
	if to.delivering {
		to.inbox = append(to.inbox, inMsg{tk: tk, fromSlot: fromSlot, kind: kind, prefix: f, path: path, pathID: pathID, cause: cause})
		if p := sh.probes; p != nil {
			p.InboxDeferrals.Inc()
		}
		return
	}
	to.delivering = true
	e := sh.newProcEvent()
	e.to, e.fromSlot, e.kind, e.prefix, e.path, e.pathID, e.cause = to.id, fromSlot, kind, f, path, pathID, cause
	sh.sched.AtTicket(tk, e)
}
