package bgp

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"bgpchurn/internal/topology"
)

func TestUpdateHookObservesEveryUpdate(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, fastConfig(1))
	var records []UpdateRecord
	net.SetUpdateHook(func(r UpdateRecord) { records = append(records, r) })
	net.Originate(2, 1)
	net.Run()
	if uint64(len(records)) != net.TotalUpdates() {
		t.Fatalf("hook saw %d updates, network counted %d", len(records), net.TotalUpdates())
	}
	// First delivery: C2's announcement to M1.
	first := records[0]
	if first.From != 2 || first.To != 1 || first.Kind != Announce || !first.Path.Equal(Path{2}) {
		t.Fatalf("first record = %+v", first)
	}
	net.WithdrawPrefix(2, 1)
	net.Run()
	last := records[len(records)-1]
	if last.Kind != Withdraw || last.Path != nil {
		t.Fatalf("last record not a withdrawal: %+v", last)
	}
	// Uninstall: no further records.
	n := len(records)
	net.SetUpdateHook(nil)
	net.Originate(2, 1)
	net.Run()
	if len(records) != n {
		t.Fatal("hook fired after uninstall")
	}
}

func TestTraceWriterRoundTrip(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, fastConfig(1))
	var buf bytes.Buffer
	hook, flush := TraceWriter(&buf)
	net.SetUpdateHook(hook)
	net.Originate(2, 1)
	net.Run()
	net.WithdrawPrefix(2, 1)
	net.Run()
	if err := flush(); err != nil {
		t.Fatal(err)
	}

	var announces, withdraws int
	sc := bufio.NewScanner(&buf)
	var prev UpdateRecord
	firstLine := true
	for sc.Scan() {
		rec, err := ParseTraceLine(sc.Text())
		if err != nil {
			t.Fatalf("%q: %v", sc.Text(), err)
		}
		if rec.Kind == Announce {
			announces++
			if len(rec.Path) == 0 {
				t.Fatalf("announce without path: %q", sc.Text())
			}
			if rec.Path[0] != rec.From {
				t.Fatalf("path head %d != sender %d", rec.Path[0], rec.From)
			}
		} else {
			withdraws++
		}
		if !firstLine && rec.Time < prev.Time {
			t.Fatal("trace not time-ordered")
		}
		prev, firstLine = rec, false
	}
	if announces != 2 || withdraws != 2 {
		t.Fatalf("announces=%d withdraws=%d, want 2 and 2", announces, withdraws)
	}
}

func TestParseTraceLineErrors(t *testing.T) {
	bad := []string{
		"",
		"1.0 2 3",
		"x 2 3 announce 1 2",
		"1.0 x 3 announce 1 2",
		"1.0 2 x announce 1 2",
		"1.0 2 3 frobnicate 1",
		"1.0 2 3 announce x",
		"1.0 2 3 announce 1 x",
	}
	for _, line := range bad {
		if _, err := ParseTraceLine(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	rec, err := ParseTraceLine("2.5 7 9 announce 3 7 4 1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.From != 7 || rec.To != 9 || rec.Prefix != 3 || !rec.Path.Equal(Path{7, 4, 1}) {
		t.Fatalf("parsed %+v", rec)
	}
	if rec.Time.Seconds() != 2.5 {
		t.Fatalf("time = %v", rec.Time.Seconds())
	}
	wd, err := ParseTraceLine(strings.TrimSpace("  10.0 1 2 withdraw 5  "))
	if err != nil || wd.Kind != Withdraw || wd.Path != nil {
		t.Fatalf("withdraw parse: %+v %v", wd, err)
	}
}
