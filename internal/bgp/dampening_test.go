package bgp

import (
	"testing"

	"bgpchurn/internal/des"
	"bgpchurn/internal/topology"
)

// dampChain builds T0 <- M1 <- C2 with dampening enabled and MRAI disabled
// so flap timing is driven purely by the dampening machinery.
func dampChain(t *testing.T, damp Dampening) (*Network, topology.NodeID) {
	t.Helper()
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	cfg := fastConfig(5)
	cfg.Dampening = damp
	return MustNew(topo, cfg), 2
}

// flap cycles the origin down and up. It advances time in bounded 10s
// windows rather than running to full quiescence: a suppressed route arms a
// reuse timer minutes in the future, and Run() would fast-forward straight
// through it (unsuppressing the route and letting penalties decay), which
// is exactly what a back-to-back flap burst does not do.
func flap(net *Network, origin topology.NodeID, times int) {
	for i := 0; i < times; i++ {
		net.WithdrawPrefix(origin, 1)
		net.RunUntil(net.Now() + 10*des.Second)
		net.Originate(origin, 1)
		net.RunUntil(net.Now() + 10*des.Second)
	}
}

func TestDampeningSuppressesFlappingRoute(t *testing.T) {
	net, origin := dampChain(t, DefaultDampening())
	net.Originate(origin, 1)
	net.Run()
	if !net.HasRoute(0, 1) {
		t.Fatal("initial propagation failed")
	}
	// Each withdraw+reannounce cycle adds 1000 (withdraw) at M1's session
	// to C2; two cycles cross the 2000 suppress threshold.
	flap(net, origin, 3)
	if net.HasRoute(1, 1) {
		t.Fatalf("M1 still uses the flapping route: %v", net.BestPath(1, 1))
	}
	if net.HasRoute(0, 1) {
		t.Fatal("suppression did not propagate upstream")
	}
	if net.Suppressions(1) == 0 {
		t.Fatal("no suppression recorded at M1")
	}
}

func TestDampenedRouteReusedAfterDecay(t *testing.T) {
	d := DefaultDampening()
	// Short half-life so the test's virtual time stays small.
	d.HalfLife = 60 * des.Second
	d.MaxSuppress = 240 * des.Second
	net, origin := dampChain(t, d)
	net.Originate(origin, 1)
	net.Run()
	flap(net, origin, 3)
	if net.HasRoute(1, 1) {
		t.Fatal("route not suppressed")
	}
	// Let the penalty decay: the reuse event fires during this window and
	// must restore the route (origin still announces it).
	net.Settle(20 * 60 * des.Second)
	if !net.HasRoute(1, 1) {
		t.Fatal("suppressed route never reused after decay")
	}
	if !net.HasRoute(0, 1) {
		t.Fatal("reuse did not propagate upstream")
	}
	if got := net.BestPath(0, 1); !got.Equal(Path{0, 1, 2}) {
		t.Fatalf("path after reuse = %v", got)
	}
}

func TestDampeningReducesUpstreamChurnUnderFlapping(t *testing.T) {
	run := func(damp Dampening) uint64 {
		net, origin := dampChain(t, damp)
		net.Originate(origin, 1)
		net.Run()
		net.ResetCounters()
		flap(net, origin, 10)
		return net.Counters(0).Received // churn at the tier-1
	}
	withOut := run(Dampening{})
	with := run(DefaultDampening())
	if with >= withOut {
		t.Fatalf("dampening did not reduce upstream churn: %d vs %d", with, withOut)
	}
}

func TestDampeningStableRouteUnaffected(t *testing.T) {
	net, origin := dampChain(t, DefaultDampening())
	net.Originate(origin, 1)
	net.Run()
	// One clean withdrawal+announce is below every threshold.
	flap(net, origin, 1)
	if !net.HasRoute(0, 1) {
		t.Fatal("single event triggered suppression")
	}
	if net.Suppressions(1) != 0 {
		t.Fatal("suppression recorded for a single flap")
	}
}

func TestDampeningPenaltyCeiling(t *testing.T) {
	d := DefaultDampening()
	// With the RFC parameters the ceiling is reuse * 2^(60/15) = 12000.
	if got, want := d.ceiling(), 750*16.0; got != want {
		t.Fatalf("ceiling = %v, want %v", got, want)
	}
}

func TestDampeningValidation(t *testing.T) {
	bad := []func(*Dampening){
		func(d *Dampening) { d.WithdrawPenalty, d.UpdatePenalty = 0, 0 },
		func(d *Dampening) { d.WithdrawPenalty = -1 },
		func(d *Dampening) { d.SuppressThreshold = 0 },
		func(d *Dampening) { d.ReuseThreshold = 0 },
		func(d *Dampening) { d.ReuseThreshold = d.SuppressThreshold },
		func(d *Dampening) { d.HalfLife = 0 },
		func(d *Dampening) { d.MaxSuppress = d.HalfLife - 1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(1)
		cfg.Dampening = DefaultDampening()
		mutate(&cfg.Dampening)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid dampening accepted", i)
		}
	}
	// Disabled dampening skips validation entirely.
	cfg := DefaultConfig(1)
	cfg.Dampening = Dampening{Enabled: false, HalfLife: -5}
	if err := cfg.Validate(); err != nil {
		t.Errorf("disabled dampening validated: %v", err)
	}
}

func TestResetClearsDampeningState(t *testing.T) {
	net, origin := dampChain(t, DefaultDampening())
	net.Originate(origin, 1)
	net.Run()
	flap(net, origin, 3)
	if net.HasRoute(0, 1) {
		t.Fatal("setup: route should be suppressed")
	}
	net.Reset(5)
	net.Originate(origin, 1)
	net.Run()
	if !net.HasRoute(0, 1) {
		t.Fatal("dampening state survived Reset")
	}
	if net.Suppressions(1) != 0 {
		t.Fatal("suppression counter survived Reset")
	}
}

func TestRouteChangesCounterTracksExploration(t *testing.T) {
	// Multihomed diamond: T0 over M1/M2 to origin C3. Under WRATE the
	// withdrawal is delayed, so T0 explores the alternate before giving up.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, nil)
	net := MustNew(topo, WRATEConfig(3))
	net.Originate(3, 1)
	net.Run()
	net.ResetCounters()
	net.WithdrawPrefix(3, 1)
	net.Run()
	c := net.Counters(0)
	if c.RouteChanges < 2 {
		t.Fatalf("T0 route changes = %d, expected exploration (switch + loss)", c.RouteChanges)
	}
	if net.HasRoute(0, 1) {
		t.Fatal("route not gone after withdrawal")
	}
}
