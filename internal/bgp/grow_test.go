package bgp

import (
	"fmt"
	"testing"

	"bgpchurn/internal/topology"
)

// growTestParams returns a baseline-shaped parameter set at size n with a
// fixed tier-1 clique, so sizes are growth-compatible.
func growTestParams(n int, seed uint64) topology.Params {
	fn := float64(n)
	nT, nM, nCP := 5, int(0.15*fn), int(0.05*fn)
	return topology.Params{
		N: n, Regions: 5, Seed: seed,
		NT: nT, NM: nM, NCP: nCP, NC: n - nT - nM - nCP,
		DM: 2.5, DCP: 2, DC: 1.2, PM: 1, PCPM: 0.3, PCPCP: 0.1,
		TM: 0.375, TCP: 0.375, TC: 0.125,
		MaxTProvidersPerM: topology.Unlimited, MaxMProviders: topology.Unlimited,
		MSpread: 0.20, CPSpread: 0.05,
	}
}

// cEventFingerprint runs one full C-event cycle (initial propagation, DOWN,
// UP) for a prefix originated at the highest-ID stub and returns a string
// capturing every node's counters plus the network-wide aggregates.
func cEventFingerprint(net *Network) string {
	origin := topology.NodeID(net.Topology().N() - 1)
	net.Originate(origin, 1)
	net.Run()
	net.ResetCounters()
	net.WithdrawPrefix(origin, 1)
	net.Run()
	net.Originate(origin, 1)
	net.Run()
	s := fmt.Sprintf("total=%d peak=%d\n", net.TotalUpdates(), net.PeakUpdateRate())
	for i := 0; i < net.Topology().N(); i++ {
		id := topology.NodeID(i)
		s += fmt.Sprintf("%d: %v best=%v\n", i, net.Counters(id), net.BestPath(id, 1))
	}
	return s
}

// TestGrowThenResetEqualsFreshBuild pins the satellite contract that Grow
// and Reset share one reinitialization path: a network that has run a
// workload, grown to a larger topology and run again, then Reset, is
// observably identical to a network freshly built on the grown topology with
// the same seed — in both the classic and the compact engine (whose intern
// table deliberately survives growth).
func TestGrowThenResetEqualsFreshBuild(t *testing.T) {
	small := topology.MustGenerate(growTestParams(300, 51))
	big := topology.MustGrow(small, growTestParams(700, 52))

	for _, compact := range []bool{false, true} {
		t.Run(fmt.Sprintf("compact=%v", compact), func(t *testing.T) {
			cfg := DefaultConfig(1)
			cfg.CompactRIB = compact
			cfg.Check = compact

			grown := MustNew(small, cfg)
			cEventFingerprint(grown) // dirty the pre-growth state
			if err := grown.Grow(big, 42); err != nil {
				t.Fatal(err)
			}

			cfgFresh := cfg
			cfgFresh.Seed = 42
			fresh := MustNew(big, cfgFresh)

			if got, want := cEventFingerprint(grown), cEventFingerprint(fresh); got != want {
				t.Fatal("grown network diverges from fresh build on the same topology and seed")
			}

			// Reset after growth must land on the same state as a fresh
			// build with the reset seed.
			grown.Reset(7)
			cfgFresh.Seed = 7
			fresh2 := MustNew(big, cfgFresh)
			if got, want := cEventFingerprint(grown), cEventFingerprint(fresh2); got != want {
				t.Fatal("grow-then-reset diverges from fresh build")
			}
		})
	}
}

// TestGrowRejectsForeignTopology verifies Grow refuses topologies that are
// not grown versions of the current one.
func TestGrowRejectsForeignTopology(t *testing.T) {
	a := topology.MustGenerate(growTestParams(300, 61))
	b := topology.MustGenerate(growTestParams(200, 62))
	net := MustNew(a, DefaultConfig(1))
	if err := net.Grow(b, 1); err == nil {
		t.Fatal("Grow accepted a smaller topology")
	}
	c := topology.MustGenerate(growTestParams(400, 63))
	// c is larger but independently generated: its type layout differs from
	// a's at some pre-existing index with overwhelming probability.
	if err := net.Grow(c, 1); err == nil {
		t.Skip("independently generated topology happened to be type-compatible")
	}
}
