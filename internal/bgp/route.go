package bgp

import (
	"fmt"
	"strings"
	"unsafe"

	"bgpchurn/internal/obs"
	"bgpchurn/internal/topology"
)

// Prefix identifies one routable destination. The experiments of the paper
// use a single prefix per C-event; the engine supports any number.
type Prefix int32

// Path is an AS path: Path[0] is the AS that sent the announcement and
// Path[len-1] is the origin AS. A node's own originated prefix has the
// empty path in its Loc-RIB and is exported as [self].
type Path []topology.NodeID

// Contains reports whether the path includes id (loop detection).
func (p Path) Contains(id topology.NodeID) bool {
	for _, v := range p {
		if v == id {
			return true
		}
	}
	return false
}

// Equal reports element-wise equality. Paths are immutable and widely
// shared (the engine advertises the same cached slice to every neighbor),
// so two slices with the same backing array are equal by construction; the
// identity check makes the common "compare a path against itself" case O(1)
// without changing the result.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	if len(p) > 0 && &p[0] == &q[0] {
		return true
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (p Path) Clone() Path {
	if p == nil {
		return nil
	}
	c := make(Path, len(p))
	copy(c, p)
	return c
}

// pathArena bump-allocates the backing arrays of engine-created paths. The
// decision churn of a C-event creates tens of thousands of short paths that
// all share one lifetime — live until the next Network.Reset — so carving
// them out of large slabs replaces one garbage-collected allocation per
// best-route change with one per slab. Reset drops the current slab rather
// than rewinding it, so a path handed out before a Reset is never
// overwritten: anything still referencing it (an update hook, a test) sees
// the same immutable content it always did, at the cost of letting the GC
// reclaim the old slabs.
type pathArena struct {
	buf []topology.NodeID
	off int
	// probe, when non-nil, accumulates bytes handed out (not slab bytes
	// reserved) into bgpchurn_bgp_path_arena_bytes_total.
	probe *obs.Cell
}

// nodeIDBytes is the arena's allocation unit for byte accounting.
const nodeIDBytes = uint64(unsafe.Sizeof(topology.NodeID(0)))

// pathArenaSlab is the slab size in NodeIDs (32 KiB): large enough that a
// full C-event at paper scale stays within a handful of slabs, small enough
// that the tail wasted by Reset is irrelevant.
const pathArenaSlab = 8192

// prepend builds [id, p...] in the arena. The result has clamped capacity,
// so appending to it can never bleed into a neighboring path.
func (a *pathArena) prepend(id topology.NodeID, p Path) Path {
	n := len(p) + 1
	if a.off+n > len(a.buf) {
		sz := pathArenaSlab
		if n > sz {
			sz = n
		}
		a.buf, a.off = make([]topology.NodeID, sz), 0
	}
	c := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	c[0] = id
	copy(c[1:], p)
	if a.probe != nil {
		a.probe.Add(uint64(n) * nodeIDBytes)
	}
	return Path(c)
}

// Prepend returns a new path with id in front.
func (p Path) Prepend(id topology.NodeID) Path {
	c := make(Path, 0, len(p)+1)
	c = append(c, id)
	return append(c, p...)
}

// String renders the path as "3 7 42".
func (p Path) String() string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// localPref maps a neighbor relation to the paper's preference order:
// customer routes over peer routes over provider routes.
func localPref(rel topology.Relation) int {
	switch rel {
	case topology.Customer:
		return 2
	case topology.Peer:
		return 1
	default:
		return 0
	}
}

// UpdateKind distinguishes announcements from explicit withdrawals.
type UpdateKind uint8

const (
	// Announce advertises a (new) path for a prefix.
	Announce UpdateKind = iota
	// Withdraw removes a previously announced prefix.
	Withdraw
)

// String names the update kind.
func (k UpdateKind) String() string {
	if k == Withdraw {
		return "withdraw"
	}
	return "announce"
}
