package bgp

import (
	"fmt"

	"bgpchurn/internal/topology"
)

// CheckConsistency verifies the engine's cross-node invariants on a
// quiescent network (Pending() == 0). It is meant for tests and debugging;
// it is not called on hot paths.
//
// Checked invariants, for every session u→v and prefix f:
//
//  1. wire agreement: what u last sent (Adj-RIB-Out) is exactly what v
//     holds from u (Adj-RIB-In), unless the link is down;
//  2. no queued updates remain (quiescence implies empty output queues);
//  3. u's Loc-RIB equals a fresh run of its decision process;
//  4. every advertised path is u's current best prepended with u, is
//     loop-free, and does not contain the recipient;
//  5. export policy: a path learned from a peer or provider is never on
//     the wire toward another peer or provider.
func (net *Network) CheckConsistency() error {
	if net.Pending() != 0 {
		return fmt.Errorf("bgp: network not quiescent (%d events pending)", net.Pending())
	}
	for i := range net.nodes {
		nd := &net.nodes[i]
		// (3) Loc-RIB is a fixed point of the decision process.
		for _, f := range nd.sortedPrefixes() {
			ps, _ := nd.prefixes.Get(f)
			slot, path := nd.decide(ps)
			if slot != ps.bestSlot || !path.Equal(ps.bestPath) {
				return fmt.Errorf("bgp: node %d prefix %d: stale Loc-RIB (have slot %d, decide says %d)",
					nd.id, f, ps.bestSlot, slot)
			}
		}
		for j := range nd.nbrIDs {
			q := &nd.out[j]
			// (2) no residual queued updates.
			if n := q.pending.Len(); n != 0 {
				return fmt.Errorf("bgp: node %d slot %d: %d updates still queued on a quiescent network",
					nd.id, j, n)
			}
			if q.down {
				if q.lastSent.Len() != 0 {
					return fmt.Errorf("bgp: node %d slot %d: adj-rib-out persists on a down link", nd.id, j)
				}
				continue
			}
			peer := &net.nodes[nd.nbrIDs[j]]
			rev := nd.reverse[j]
			for _, f := range q.lastSent.SortedKeysInto(nil) {
				sent, _ := q.lastSent.Get(f)
				// (1) wire agreement.
				pps, ok := peer.prefixes.Get(f)
				if !ok || !sent.Equal(pps.ribIn[rev]) {
					return fmt.Errorf("bgp: session %d->%d prefix %d: adj-rib-out and adj-rib-in disagree",
						nd.id, peer.id, f)
				}
				if err := net.checkAdvertisement(nd, j, f, sent); err != nil {
					return err
				}
			}
			// (1) converse direction: nothing in v's RIB that u did not send.
			for _, f := range peer.sortedPrefixes() {
				pps, _ := peer.prefixes.Get(f)
				if pps.ribIn[rev] != nil {
					if _, ok := q.lastSent.Get(f); !ok {
						return fmt.Errorf("bgp: session %d->%d prefix %d: receiver holds a route the sender never advertised",
							nd.id, peer.id, f)
					}
				}
			}
		}
	}
	return nil
}

// checkAdvertisement verifies invariants (4) and (5) for one wire entry.
func (net *Network) checkAdvertisement(nd *node, j int, f Prefix, sent Path) error {
	ps, ok := nd.prefixes.Get(f)
	if !ok || ps.bestSlot == noneSlot {
		return fmt.Errorf("bgp: node %d advertises prefix %d to %d without a best route",
			nd.id, f, nd.nbrIDs[j])
	}
	var want Path
	fromCustomerOrSelf := false
	if ps.bestSlot == selfSlot {
		want = Path{nd.id}
		fromCustomerOrSelf = true
	} else {
		want = ps.bestPath.Prepend(nd.id)
		fromCustomerOrSelf = nd.nbrRels[ps.bestSlot] == topology.Customer
	}
	if !sent.Equal(want) {
		return fmt.Errorf("bgp: node %d prefix %d: wire path %v is not the current best %v",
			nd.id, f, sent, want)
	}
	seen := make(map[topology.NodeID]struct{}, len(sent))
	for _, v := range sent {
		if _, dup := seen[v]; dup {
			return fmt.Errorf("bgp: node %d prefix %d: looped path %v on the wire", nd.id, f, sent)
		}
		seen[v] = struct{}{}
	}
	if sent.Contains(nd.nbrIDs[j]) {
		return fmt.Errorf("bgp: node %d prefix %d: path through recipient %d on the wire",
			nd.id, f, nd.nbrIDs[j])
	}
	if !fromCustomerOrSelf && nd.nbrRels[j] != topology.Customer {
		return fmt.Errorf("bgp: node %d prefix %d: valley export to %v neighbor %d",
			nd.id, f, nd.nbrRels[j], nd.nbrIDs[j])
	}
	return nil
}
