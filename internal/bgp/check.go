package bgp

import (
	"fmt"

	"bgpchurn/internal/topology"
)

// CheckConsistency verifies the engine's cross-node invariants on a
// quiescent network (Pending() == 0). It is meant for tests and debugging;
// it is not called on hot paths.
//
// Checked invariants, for every session u→v and prefix f:
//
//  1. wire agreement: what u last sent (Adj-RIB-Out) is exactly what v
//     holds from u (Adj-RIB-In), unless the link is down;
//  2. no queued updates remain (quiescence implies empty output queues);
//  3. u's Loc-RIB equals a fresh run of its decision process;
//  4. every advertised path is u's current best prepended with u, is
//     loop-free, and does not contain the recipient;
//  5. export policy: a path learned from a peer or provider is never on
//     the wire toward another peer or provider.
func (net *Network) CheckConsistency() error {
	if net.Pending() != 0 {
		return fmt.Errorf("bgp: network not quiescent (%d events pending)", net.Pending())
	}
	for i := range net.nodes {
		nd := &net.nodes[i]
		// (3) Loc-RIB is a fixed point of the decision process.
		for _, f := range nd.sortedPrefixes() {
			ps, _ := nd.prefixes.Get(f)
			slot, path := nd.freshDecide(ps)
			if slot != ps.bestSlot || !path.Equal(ps.bestPath) {
				return fmt.Errorf("bgp: node %d prefix %d: stale Loc-RIB (have slot %d, decide says %d)",
					nd.id, f, ps.bestSlot, slot)
			}
		}
		for j := range nd.nbrIDs {
			q := &nd.out[j]
			// (2) no residual queued updates.
			if n := q.pending.Len(); n != 0 {
				return fmt.Errorf("bgp: node %d slot %d: %d updates still queued on a quiescent network",
					nd.id, j, n)
			}
			if q.down {
				if q.lastSent.Len() != 0 {
					return fmt.Errorf("bgp: node %d slot %d: adj-rib-out persists on a down link", nd.id, j)
				}
				continue
			}
			peer := &net.nodes[nd.nbrIDs[j]]
			rev := nd.reverse[j]
			for _, f := range q.lastSent.SortedKeysInto(nil) {
				sent, _ := q.lastSent.Get(f)
				// (1) wire agreement.
				pps, ok := peer.prefixes.Get(f)
				if !ok || !sent.Equal(peer.ribPath(pps, int(rev))) {
					return fmt.Errorf("bgp: session %d->%d prefix %d: adj-rib-out and adj-rib-in disagree",
						nd.id, peer.id, f)
				}
				if err := net.checkAdvertisement(nd, j, f, sent); err != nil {
					return err
				}
			}
			// (1) converse direction: nothing in v's RIB that u did not send.
			for _, f := range peer.sortedPrefixes() {
				pps, _ := peer.prefixes.Get(f)
				if peer.ribHas(pps, int(rev)) {
					if _, ok := q.lastSent.Get(f); !ok {
						return fmt.Errorf("bgp: session %d->%d prefix %d: receiver holds a route the sender never advertised",
							nd.id, peer.id, f)
					}
				}
			}
		}
	}
	return nil
}

// checkAdvertisement verifies invariants (4) and (5) for one wire entry.
func (net *Network) checkAdvertisement(nd *node, j int, f Prefix, sent Path) error {
	ps, ok := nd.prefixes.Get(f)
	if !ok || ps.bestSlot == noneSlot {
		return fmt.Errorf("bgp: node %d advertises prefix %d to %d without a best route",
			nd.id, f, nd.nbrIDs[j])
	}
	var want Path
	fromCustomerOrSelf := false
	if ps.bestSlot == selfSlot {
		want = Path{nd.id}
		fromCustomerOrSelf = true
	} else {
		want = ps.bestPath.Prepend(nd.id)
		fromCustomerOrSelf = nd.nbrRels[ps.bestSlot] == topology.Customer
	}
	if !sent.Equal(want) {
		return fmt.Errorf("bgp: node %d prefix %d: wire path %v is not the current best %v",
			nd.id, f, sent, want)
	}
	seen := make(map[topology.NodeID]struct{}, len(sent))
	for _, v := range sent {
		if _, dup := seen[v]; dup {
			return fmt.Errorf("bgp: node %d prefix %d: looped path %v on the wire", nd.id, f, sent)
		}
		seen[v] = struct{}{}
	}
	if sent.Contains(nd.nbrIDs[j]) {
		return fmt.Errorf("bgp: node %d prefix %d: path through recipient %d on the wire",
			nd.id, f, nd.nbrIDs[j])
	}
	if !fromCustomerOrSelf && nd.nbrRels[j] != topology.Customer {
		return fmt.Errorf("bgp: node %d prefix %d: valley export to %v neighbor %d",
			nd.id, f, nd.nbrRels[j], nd.nbrIDs[j])
	}
	return nil
}

// freshDecide re-runs the decision process in the node's engine
// representation and returns the winning slot and path content.
func (nd *node) freshDecide(ps *prefixState) (slot int, path Path) {
	if nd.it != nil {
		slot, id := nd.decideCompact(ps)
		return slot, nd.it.path(id)
	}
	return nd.decide(ps)
}

// checkReconciled is the debug-only (Config.Check) RIB invariant checker,
// run after every reconcile on the node that just changed its best route.
// Unlike CheckConsistency it must hold mid-convergence, so it checks only
// node-local invariants:
//
//  1. best-route consistency: the Loc-RIB is a fixpoint of the decision
//     process, and the cached advertisement body matches it;
//  2. no dangling PathID: every Adj-RIB-In entry, the best-route ID and the
//     advertisement ID resolve inside the intern table, and resolve to
//     content consistent with the cached slices (compact mode);
//  3. Adj-RIB-Out ⊆ export-policy closure: for every live neighbor, the
//     wire-or-queued state setDesired just reconciled is exactly the
//     export-policy image of the best route — an exportable route is on the
//     wire or queued as an announcement, a non-exportable one is off the
//     wire or queued as a withdrawal.
//
// Violations panic: the checker runs in test tiers where an invariant break
// is a bug in the engine, never a recoverable condition.
func (net *Network) checkReconciled(nd *node, f Prefix, ps *prefixState) {
	// (1) decision fixpoint.
	slot, path := nd.freshDecide(ps)
	if slot != ps.bestSlot || !path.Equal(ps.bestPath) {
		panic(fmt.Sprintf("bgp: check: node %d prefix %d: Loc-RIB not a decision fixpoint (have slot %d, decide says %d)",
			nd.id, f, ps.bestSlot, slot))
	}
	// (2) intern-table ID validity and cache consistency (compact mode).
	if it := nd.it; it != nil {
		limit := PathID(it.len())
		for j, pid := range ps.ribID {
			if pid > limit {
				panic(fmt.Sprintf("bgp: check: node %d prefix %d slot %d: dangling PathID %d (table holds %d)",
					nd.id, f, j, pid, limit))
			}
		}
		if ps.bestID > limit || !it.path(ps.bestID).Equal(ps.bestPath) {
			panic(fmt.Sprintf("bgp: check: node %d prefix %d: bestID %d inconsistent with bestPath %v",
				nd.id, f, ps.bestID, ps.bestPath))
		}
		if ps.fullValid && (ps.fullID > limit || !it.path(ps.fullID).Equal(ps.full)) {
			panic(fmt.Sprintf("bgp: check: node %d prefix %d: fullID %d inconsistent with advertisement %v",
				nd.id, f, ps.fullID, ps.full))
		}
	}
	// (1b) the cached advertisement body is the best route prepended.
	if ps.fullValid && ps.bestSlot != noneSlot {
		want := ps.bestPath.Prepend(nd.id)
		if !ps.full.Equal(want) {
			panic(fmt.Sprintf("bgp: check: node %d prefix %d: cached advertisement %v is not best+self %v",
				nd.id, f, ps.full, want))
		}
	}
	// (3) per-neighbor reconciliation postcondition.
	full, fromCustomerOrSelf := nd.advertisement(ps)
	for j := range nd.nbrIDs {
		q := &nd.out[j]
		if q.down {
			continue
		}
		last, onWire := q.lastSent.Get(f)
		pu, queued := q.pending.Get(f)
		if nd.exportable(j, full, fromCustomerOrSelf) {
			wireOK := onWire && last.Equal(full)
			queueOK := queued && pu.kind == Announce && pu.path.Equal(full)
			if !wireOK && !queueOK {
				panic(fmt.Sprintf("bgp: check: node %d prefix %d slot %d: exportable best neither on wire nor queued",
					nd.id, f, j))
			}
		} else {
			if queued && pu.kind == Announce {
				panic(fmt.Sprintf("bgp: check: node %d prefix %d slot %d: queued announcement outside export closure",
					nd.id, f, j))
			}
			if onWire && !(queued && pu.kind == Withdraw) {
				panic(fmt.Sprintf("bgp: check: node %d prefix %d slot %d: stale wire route with no queued withdrawal",
					nd.id, f, j))
			}
		}
	}
}
