package bgp

import (
	"testing"

	"bgpchurn/internal/des"
	"bgpchurn/internal/topology"
)

// build assembles a hand-made topology from transit (provider, customer)
// and peer pairs. All nodes share one region; types are given per node.
func build(t *testing.T, types []topology.NodeType, transit, peers [][2]topology.NodeID) *topology.Topology {
	t.Helper()
	topo := &topology.Topology{NumRegions: 1, Nodes: make([]topology.Node, len(types))}
	for i, typ := range types {
		topo.Nodes[i] = topology.Node{ID: topology.NodeID(i), Type: typ, Regions: 1}
	}
	for _, e := range transit {
		p, c := e[0], e[1]
		topo.Nodes[p].Customers = append(topo.Nodes[p].Customers, c)
		topo.Nodes[c].Providers = append(topo.Nodes[c].Providers, p)
	}
	for _, e := range peers {
		a, b := e[0], e[1]
		topo.Nodes[a].Peers = append(topo.Nodes[a].Peers, b)
		topo.Nodes[b].Peers = append(topo.Nodes[b].Peers, a)
	}
	return topo
}

// fastConfig is DefaultConfig with rate limiting disabled, for tests that
// only care about routing logic.
func fastConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.MRAI = 0
	return c
}

func TestChainPropagation(t *testing.T) {
	// T0 <- M1 <- C2 (arrows point provider <- customer). C2 originates.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, fastConfig(1))
	net.Originate(2, 1)
	net.Run()
	for id := topology.NodeID(0); id < 3; id++ {
		if !net.HasRoute(id, 1) {
			t.Fatalf("node %d has no route", id)
		}
	}
	if got := net.BestPath(0, 1); !got.Equal(Path{0, 1, 2}) {
		t.Fatalf("BestPath(0) = %v", got)
	}
	if got := net.BestPath(1, 1); !got.Equal(Path{1, 2}) {
		t.Fatalf("BestPath(1) = %v", got)
	}
	if got := net.BestPath(2, 1); !got.Equal(Path{2}) {
		t.Fatalf("BestPath(2) = %v", got)
	}
	if net.NextHop(0, 1) != 1 || net.NextHop(1, 1) != 2 || net.NextHop(2, 1) != 2 {
		t.Fatal("next hops wrong")
	}
}

func TestWithdrawPropagation(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, fastConfig(1))
	net.Originate(2, 1)
	net.Run()
	net.ResetCounters()
	net.WithdrawPrefix(2, 1)
	net.Run()
	for id := topology.NodeID(0); id < 3; id++ {
		if net.HasRoute(id, 1) {
			t.Fatalf("node %d still has a route after withdrawal", id)
		}
	}
	// Exactly one withdrawal received at M1 and one at T0.
	for _, id := range []topology.NodeID{0, 1} {
		c := net.Counters(id)
		if c.Received != 1 || c.Withdrawals != 1 {
			t.Fatalf("node %d counters = %+v, want exactly one withdrawal", id, c)
		}
	}
}

func TestStarCEventCounts(t *testing.T) {
	// T0 with customers C1, C2, C3; C-event at C1.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.C, topology.C, topology.C},
		[][2]topology.NodeID{{0, 1}, {0, 2}, {0, 3}}, nil)
	net := MustNew(topo, fastConfig(1))
	net.Originate(1, 7)
	net.Run()
	net.ResetCounters()

	net.WithdrawPrefix(1, 7)
	net.Run()
	net.Originate(1, 7)
	net.Run()

	// The provider hears exactly one withdraw and one announce; so does
	// every other stub (via the provider). The origin hears nothing (its
	// own path never comes back thanks to loop suppression).
	for id, want := range map[topology.NodeID]uint64{0: 2, 1: 0, 2: 2, 3: 2} {
		if got := net.Counters(id).Received; got != want {
			t.Errorf("node %d received %d updates, want %d", id, got, want)
		}
	}
}

func TestNoValleyExport(t *testing.T) {
	// M0 -peer- M1 -peer- M2; C3 is customer of M0 and originates.
	// M1 learns the route from its peer M0 and must NOT export it to its
	// peer M2.
	topo := build(t,
		[]topology.NodeType{topology.M, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 3}},
		[][2]topology.NodeID{{0, 1}, {1, 2}})
	net := MustNew(topo, fastConfig(1))
	net.Originate(3, 1)
	net.Run()
	if !net.HasRoute(1, 1) {
		t.Fatal("M1 should learn the customer route of its peer")
	}
	if net.HasRoute(2, 1) {
		t.Fatalf("valley: M2 learned a peer route through M1: %v", net.BestPath(2, 1))
	}
}

func TestProviderRouteOnlyToCustomers(t *testing.T) {
	// T0 provider of M1; M1 peer of M2; M1 provider of C3. Origin at T0.
	// M1 learns from its provider T0: exports to customer C3, not to peer M2.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 3}},
		[][2]topology.NodeID{{1, 2}})
	net := MustNew(topo, fastConfig(1))
	net.Originate(0, 1)
	net.Run()
	if !net.HasRoute(3, 1) {
		t.Fatal("customer C3 should receive the provider route")
	}
	if net.HasRoute(2, 1) {
		t.Fatal("peer M2 must not receive a provider-learned route")
	}
}

func TestPreferCustomerOverShorterPeer(t *testing.T) {
	// X(0, type M) has customer Y(1, M) and peer Z(2, M).
	// Origin O(4, C) reaches X via Y in 3 hops and via Z in 2 hops:
	//   Y <- W(3, M) <- O  and  Z <- O.
	topo := build(t,
		[]topology.NodeType{topology.M, topology.M, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 3}, {3, 4}, {2, 4}},
		[][2]topology.NodeID{{0, 2}})
	net := MustNew(topo, fastConfig(1))
	net.Originate(4, 1)
	net.Run()
	if got := net.NextHop(0, 1); got != 1 {
		t.Fatalf("X chose %d, want customer route via 1 despite longer path (got path %v)", got, net.BestPath(0, 1))
	}
	if got := net.BestPath(0, 1); !got.Equal(Path{0, 1, 3, 4}) {
		t.Fatalf("X path = %v", got)
	}
}

func TestPreferShorterAmongSamePref(t *testing.T) {
	// X(0) has two customers offering the origin: direct (1 hop) and via a
	// middleman (2 hops).
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {0, 2}, {1, 2}}, nil)
	net := MustNew(topo, fastConfig(1))
	net.Originate(2, 1)
	net.Run()
	if got := net.BestPath(0, 1); !got.Equal(Path{0, 2}) {
		t.Fatalf("T0 path = %v, want direct customer route", got)
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	// X(0) has two equal-length customer routes via 1 and 2 to origin 3.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, nil)
	first := topology.None
	for trial := 0; trial < 5; trial++ {
		net := MustNew(topo, fastConfig(99))
		net.Originate(3, 1)
		net.Run()
		hop := net.NextHop(0, 1)
		if hop != 1 && hop != 2 {
			t.Fatalf("unexpected next hop %d", hop)
		}
		if trial == 0 {
			first = hop
		} else if hop != first {
			t.Fatalf("tie-break not deterministic: %d then %d", first, hop)
		}
	}
}

func TestMultihomedFailover(t *testing.T) {
	// Origin C3 multihomed to M1 and M2, both customers of T0.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, nil)
	net := MustNew(topo, fastConfig(5))
	net.Originate(3, 1)
	net.Run()
	hop := net.NextHop(0, 1)
	var failed topology.NodeID = 1
	if hop == 2 {
		failed = 2
	}
	if err := net.FailLink(failed, 3); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if !net.HasRoute(0, 1) {
		t.Fatal("T0 lost the route despite an alternate path")
	}
	other := topology.NodeID(3) - failed // 1<->2
	_ = other
	if got := net.NextHop(0, 1); got == failed {
		t.Fatalf("T0 still routes via failed branch %d", got)
	}
	if net.HasRoute(failed, 1) {
		// The failed M still reaches the origin via T0 (provider route).
		if got := net.NextHop(failed, 1); got != 0 {
			t.Fatalf("M%d should reroute via its provider, got %d", failed, got)
		}
	}
	if err := net.RestoreLink(failed, 3); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if got := net.NextHop(failed, 1); got != 3 {
		t.Fatalf("after restore, M%d should use its direct customer link, got %d", failed, got)
	}
}

func TestLinkFailureNoAlternate(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, fastConfig(1))
	net.Originate(2, 1)
	net.Run()
	if err := net.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if net.HasRoute(0, 1) || net.HasRoute(1, 1) {
		t.Fatal("route survived a partitioning link failure")
	}
	if !net.LinkDown(1, 2) {
		t.Fatal("LinkDown not reported")
	}
	if err := net.RestoreLink(1, 2); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if !net.HasRoute(0, 1) || !net.HasRoute(1, 1) {
		t.Fatal("route did not come back after restore")
	}
	// Error paths.
	if err := net.FailLink(0, 2); err == nil {
		t.Fatal("failing a non-existent link succeeded")
	}
	if err := net.RestoreLink(1, 2); err == nil {
		t.Fatal("restoring an up link succeeded")
	}
}

func TestMRAIRateLimitsSecondAnnouncement(t *testing.T) {
	// O(2) originates two prefixes back to back; A(1) must delay the second
	// announcement to B(0) by the (jittered) MRAI.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, DefaultConfig(3))
	net.Originate(2, 1)
	net.Originate(2, 2)
	net.Run()
	// Prefix 2's announcement from A to B waited for A's per-interface
	// timer: total convergence beyond 0.75*30s.
	if got := net.Now(); got < 22*des.Second {
		t.Fatalf("converged at %v, expected MRAI delay >= 22.5s", got.Seconds())
	}
	if !net.HasRoute(0, 2) {
		t.Fatal("prefix 2 never arrived")
	}

	// Control: without MRAI the same sequence converges in well under a
	// second of virtual time.
	net2 := MustNew(topo, fastConfig(3))
	net2.Originate(2, 1)
	net2.Originate(2, 2)
	net2.Run()
	if got := net2.Now(); got > des.Second {
		t.Fatalf("MRAI=0 converged at %v, expected sub-second", got.Seconds())
	}
}

func TestPerPrefixMRAIDoesNotCoupleprefixes(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	cfg := DefaultConfig(3)
	cfg.Scope = PerPrefix
	net := MustNew(topo, cfg)
	net.Originate(2, 1)
	net.Originate(2, 2)
	net.Run()
	// Independent timers: both prefixes flow immediately.
	if got := net.Now(); got > des.Second {
		t.Fatalf("per-prefix MRAI delayed an independent prefix: %v", got.Seconds())
	}
}

func TestWithdrawBypassesMRAIUnderNoWrate(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)

	run := func(cfg Config) des.Time {
		net := MustNew(topo, cfg)
		net.Originate(2, 1)
		net.Run()
		// Note: timers are still running right after convergence; the
		// withdrawal follows immediately, which is exactly the regime where
		// WRATE and NO-WRATE differ.
		start := net.Now()
		net.WithdrawPrefix(2, 1)
		net.Run()
		return net.Now() - start
	}

	noWrate := run(DefaultConfig(7))
	wrate := run(WRATEConfig(7))
	if noWrate > des.Second {
		t.Fatalf("NO-WRATE withdrawal took %vs, expected immediate", noWrate.Seconds())
	}
	if wrate < 5*des.Second {
		t.Fatalf("WRATE withdrawal took %vs, expected MRAI-delayed", wrate.Seconds())
	}
}

func TestSettleLetsTimersExpire(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, WRATEConfig(7))
	net.Originate(2, 1)
	net.Run()
	net.Settle(60 * des.Second)
	start := net.Now()
	net.WithdrawPrefix(2, 1)
	net.Run()
	// With all timers idle, even WRATE sends the first withdrawal
	// immediately at every hop.
	if d := net.Now() - start; d > des.Second {
		t.Fatalf("withdrawal after settle took %vs", d.Seconds())
	}
}

func TestFlapCollapsesInQueue(t *testing.T) {
	// Rapid withdraw/announce at the origin while the first announcement's
	// timers still run: queued updates must be replaced, and the final
	// state must be consistent.
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, WRATEConfig(11))
	net.Originate(2, 1)
	net.Run()
	for i := 0; i < 3; i++ {
		net.WithdrawPrefix(2, 1)
		net.Originate(2, 1)
	}
	net.Run()
	if !net.HasRoute(0, 1) || !net.BestPath(0, 1).Equal(Path{0, 1, 2}) {
		t.Fatalf("inconsistent state after flapping: %v", net.BestPath(0, 1))
	}
	// The flaps collapsed in the queues: T0 must have seen at most a few
	// updates, not 2 per flap.
	if got := net.Counters(0).Received; got > 4 {
		t.Fatalf("T0 received %d updates; queue replacement not working", got)
	}
}

func TestCountersAndReset(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.M, topology.C},
		[][2]topology.NodeID{{0, 1}, {1, 2}}, nil)
	net := MustNew(topo, fastConfig(1))
	net.Originate(2, 1)
	net.Run()
	c := net.Counters(1)
	if c.Received != 1 || c.Announcements != 1 || c.Withdrawals != 0 {
		t.Fatalf("M1 counters after announce: %+v", c)
	}
	if c.Sent != 1 {
		t.Fatalf("M1 sent %d, want 1 (to T0 only; origin suppressed)", c.Sent)
	}
	if len(c.PerNeighbor) != 2 {
		t.Fatalf("M1 has %d neighbor slots", len(c.PerNeighbor))
	}
	if net.TotalUpdates() != 2 {
		t.Fatalf("network total = %d, want 2", net.TotalUpdates())
	}
	net.ResetCounters()
	if net.TotalUpdates() != 0 || net.Counters(1).Received != 0 {
		t.Fatal("ResetCounters left residue")
	}
	rels := net.NeighborRelations(1)
	if len(rels) != 2 {
		t.Fatalf("M1 relations = %v", rels)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MRAI = -1 },
		func(c *Config) { c.MaxProcessingDelay = 0 },
		func(c *Config) { c.JitterLo = 0 },
		func(c *Config) { c.JitterHi = 0.5 },
		func(c *Config) { c.JitterHi = 1.5 },
		func(c *Config) { c.Scope = 7 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if !WRATEConfig(1).RateLimitWithdrawals {
		t.Error("WRATEConfig does not rate-limit withdrawals")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{3, 2, 1}
	if !p.Contains(2) || p.Contains(9) {
		t.Fatal("Contains broken")
	}
	q := p.Clone()
	q[0] = 9
	if p[0] != 3 {
		t.Fatal("Clone aliases")
	}
	if p.Equal(q) || !p.Equal(Path{3, 2, 1}) {
		t.Fatal("Equal broken")
	}
	if got := p.Prepend(4); !got.Equal(Path{4, 3, 2, 1}) {
		t.Fatal("Prepend broken")
	}
	if p.String() != "3 2 1" {
		t.Fatalf("String = %q", p.String())
	}
	if Path(nil).Clone() != nil {
		t.Fatal("nil Clone not nil")
	}
	if Announce.String() != "announce" || Withdraw.String() != "withdraw" {
		t.Fatal("UpdateKind strings")
	}
	if PerInterface.String() != "per-interface" || PerPrefix.String() != "per-prefix" {
		t.Fatal("scope strings")
	}
}

func TestOriginateIdempotent(t *testing.T) {
	topo := build(t,
		[]topology.NodeType{topology.T, topology.C},
		[][2]topology.NodeID{{0, 1}}, nil)
	net := MustNew(topo, fastConfig(1))
	net.Originate(1, 1)
	net.Originate(1, 1)
	net.Run()
	if got := net.Counters(0).Received; got != 1 {
		t.Fatalf("double Originate produced %d updates at T0", got)
	}
	net.WithdrawPrefix(1, 1)
	net.WithdrawPrefix(1, 1)
	net.Run()
	if got := net.Counters(0).Received; got != 2 {
		t.Fatalf("double Withdraw produced %d total updates at T0", got)
	}
	// Withdrawing a prefix that was never originated is a no-op.
	net.WithdrawPrefix(1, 99)
	net.Run()
}
