package bgp

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"bgpchurn/internal/des"
	"bgpchurn/internal/topology"
)

// Update tracing: an optional hook that observes every update the moment a
// node finishes processing it, in the spirit of an MRT update dump. Used by
// analyses that need the full update stream rather than counters (e.g.
// inter-arrival statistics, per-prefix timelines).

// UpdateRecord describes one processed update.
type UpdateRecord struct {
	// Time is the virtual instant processing completed.
	Time des.Time
	// From and To are the sending and receiving ASes.
	From, To topology.NodeID
	// Kind is Announce or Withdraw.
	Kind UpdateKind
	// Prefix is the affected destination.
	Prefix Prefix
	// Path is the announced AS path (nil for withdrawals). The slice is
	// shared with the engine and must not be modified. It must also not be
	// retained past the hook call: Network.Reset drops the arena slabs
	// backing it. A hook that buffers records must either copy the slice
	// or keep only the fixed-size identity below (PathID + len) — the
	// bounded -trace ring does the latter (see obs.TraceRecord).
	Path Path
	// PathID is the hash-consed identity of Path under the compact engine
	// (NoPath otherwise, and on withdrawals). Unlike Path it stays valid
	// across Reset — the intern table is never cleared — so it is the safe
	// form to retain.
	PathID PathID
	// Cause is the root-cause ID of the routing event whose propagation
	// produced this update (0 when causal tracing is off; see CauseID).
	Cause CauseID
}

// SetUpdateHook installs fn to be called for every update processed from
// now on (nil uninstalls). The hook runs synchronously inside the event
// loop: keep it cheap, and do not call back into the Network from it.
func (net *Network) SetUpdateHook(fn func(UpdateRecord)) {
	net.updateHook = fn
}

// TraceWriter returns an update hook that writes one line per update to w
// in a stable text format:
//
//	<seconds> <from> <to> announce|withdraw <prefix> [path...]
//
// Call Flush on the returned writer (or the convenience closure) when done.
func TraceWriter(w io.Writer) (hook func(UpdateRecord), flush func() error) {
	bw := bufio.NewWriter(w)
	hook = func(r UpdateRecord) {
		if r.Kind == Withdraw {
			fmt.Fprintf(bw, "%.6f %d %d withdraw %d\n", r.Time.Seconds(), r.From, r.To, r.Prefix)
			return
		}
		fmt.Fprintf(bw, "%.6f %d %d announce %d %s\n", r.Time.Seconds(), r.From, r.To, r.Prefix, r.Path)
	}
	return hook, bw.Flush
}

// ParseTraceLine parses one line produced by TraceWriter.
func ParseTraceLine(line string) (UpdateRecord, error) {
	fields := strings.Fields(line)
	if len(fields) < 5 {
		return UpdateRecord{}, fmt.Errorf("bgp: short trace line %q", line)
	}
	var rec UpdateRecord
	var sec float64
	if _, err := fmt.Sscanf(fields[0], "%f", &sec); err != nil {
		return UpdateRecord{}, fmt.Errorf("bgp: bad timestamp %q: %v", fields[0], err)
	}
	rec.Time = des.Time(sec * float64(des.Second))
	var from, to, prefix int64
	if _, err := fmt.Sscanf(fields[1], "%d", &from); err != nil {
		return UpdateRecord{}, fmt.Errorf("bgp: bad from %q", fields[1])
	}
	if _, err := fmt.Sscanf(fields[2], "%d", &to); err != nil {
		return UpdateRecord{}, fmt.Errorf("bgp: bad to %q", fields[2])
	}
	switch fields[3] {
	case "announce":
		rec.Kind = Announce
	case "withdraw":
		rec.Kind = Withdraw
	default:
		return UpdateRecord{}, fmt.Errorf("bgp: bad kind %q", fields[3])
	}
	if _, err := fmt.Sscanf(fields[4], "%d", &prefix); err != nil {
		return UpdateRecord{}, fmt.Errorf("bgp: bad prefix %q", fields[4])
	}
	rec.From, rec.To, rec.Prefix = topology.NodeID(from), topology.NodeID(to), Prefix(prefix)
	if rec.Kind == Announce {
		for _, f := range fields[5:] {
			var id int64
			if _, err := fmt.Sscanf(f, "%d", &id); err != nil {
				return UpdateRecord{}, fmt.Errorf("bgp: bad path element %q", f)
			}
			rec.Path = append(rec.Path, topology.NodeID(id))
		}
	}
	return rec, nil
}
