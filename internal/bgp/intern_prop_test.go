package bgp

import (
	"fmt"
	"testing"

	"bgpchurn/internal/rng"
	"bgpchurn/internal/topology"
)

// Property tier for the compact-RIB engine: the hash-consing bijection
// (intern(p) == intern(q) ⟺ p.Equal(q)), canonical-storage identity, and
// the engine-level invariance that relabeling nodes (a graph isomorphism)
// leaves churn counts unchanged.

// pathKey renders path content as a map key.
func pathKey(p Path) string {
	b := make([]byte, 0, 4*len(p))
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// TestInternHashConsingProperty drives the intern table with a randomized
// path workload against a reference map, asserting the hash-consing
// bijection both ways: equal content ⟺ equal PathID, with exact storage
// accounting (no duplicate slab copies) and pointer-identical canonical
// paths.
func TestInternHashConsingProperty(t *testing.T) {
	it := newInternTable()
	r := rng.New(0xfeedface)
	byContent := make(map[string]PathID)
	byID := make(map[PathID]string)
	var wantBytes uint64

	// A small ID pool and short lengths force frequent duplicates, and
	// 40k iterations force several hash-table growths (3/4 load of 1<<10
	// initial buckets is passed early).
	for i := 0; i < 40000; i++ {
		n := 1 + r.Intn(12)
		p := make(Path, n)
		for k := range p {
			p[k] = topology.NodeID(r.Intn(300))
		}
		canon, id := it.intern(p)
		if id == NoPath {
			t.Fatalf("intern of non-empty path returned NoPath")
		}
		if !canon.Equal(p) {
			t.Fatalf("canonical path %v differs from interned content %v", canon, p)
		}
		key := pathKey(p)
		if prev, ok := byContent[key]; ok {
			if id != prev {
				t.Fatalf("equal content interned twice with different IDs %d and %d", prev, id)
			}
		} else {
			if other, clash := byID[id]; clash {
				t.Fatalf("distinct contents %x and %x collided on ID %d", other, key, id)
			}
			byContent[key], byID[id] = id, key
			wantBytes += uint64(4 * n)
		}
		// Round-trip and canonical identity: every lookup of the same ID
		// returns the identical backing memory, making Equal O(1).
		got := it.path(id)
		if !got.Equal(p) || &got[0] != &canon[0] {
			t.Fatalf("path(%d) is not the canonical storage of %v", id, p)
		}
		if it.lenOf(id) != n {
			t.Fatalf("lenOf(%d) = %d, want %d", id, it.lenOf(id), n)
		}
	}
	if it.len() != len(byContent) {
		t.Fatalf("table holds %d entries, reference has %d distinct paths", it.len(), len(byContent))
	}
	if got := it.bytesStored(); got != wantBytes {
		t.Fatalf("bytesStored = %d, want %d (duplicate content leaked into slabs)", got, wantBytes)
	}
	// The nil path maps to NoPath on both sides.
	if p, id := it.intern(nil); p != nil || id != NoPath {
		t.Fatalf("intern(nil) = (%v, %d), want (nil, NoPath)", p, id)
	}
	if it.path(NoPath) != nil {
		t.Fatal("path(NoPath) is not nil")
	}
}

// TestInternPrependEquivalence checks that prepend — the engine's hot-path
// constructor hashing the virtual sequence [first, tail...] without
// materializing it — agrees exactly with interning the materialized slice,
// including when the tail is itself canonical slab storage.
func TestInternPrependEquivalence(t *testing.T) {
	it := newInternTable()
	r := rng.New(0xabcdef)
	tail := Path(nil)
	for i := 0; i < 5000; i++ {
		first := topology.NodeID(r.Intn(200))
		c1, id1 := it.prepend(first, tail)
		full := append(Path{first}, tail...)
		c2, id2 := it.intern(full)
		if id1 != id2 {
			t.Fatalf("prepend(%d, %v) minted ID %d but intern(%v) minted %d", first, tail, id1, full, id2)
		}
		if &c1[0] != &c2[0] {
			t.Fatalf("prepend and intern returned different canonical storage for %v", full)
		}
		// Grow a random chain: sometimes extend the canonical result,
		// sometimes restart from scratch.
		if len(c1) < 30 && r.Intn(4) != 0 {
			tail = c1
		} else {
			tail = nil
		}
	}
}

// TestInternOversizedPath exercises the dedicated-slab branch: a path longer
// than one slab must still intern, round-trip, and leave previously handed
// out canonical paths untouched.
func TestInternOversizedPath(t *testing.T) {
	it := newInternTable()
	small, smallID := it.intern(Path{1, 2, 3})
	big := make(Path, internSlabElems+17)
	for i := range big {
		big[i] = topology.NodeID(i)
	}
	canon, id := it.intern(big)
	if !canon.Equal(big) || !it.path(id).Equal(big) {
		t.Fatal("oversized path does not round-trip")
	}
	if got := it.path(smallID); !got.Equal(small) || &got[0] != &small[0] {
		t.Fatal("interning an oversized path moved existing canonical storage")
	}
	if _, id2 := it.intern(big); id2 != id {
		t.Fatal("oversized path re-interned under a new ID")
	}
}

// permuteTopology relabels every node through perm, preserving neighbor
// list order (so CSR slot j of node i maps to slot j of node perm[i]).
func permuteTopology(t *topology.Topology, perm []topology.NodeID) *topology.Topology {
	nt := &topology.Topology{
		Nodes:      make([]topology.Node, len(t.Nodes)),
		NumRegions: t.NumRegions,
		Seed:       t.Seed,
	}
	mapIDs := func(ids []topology.NodeID) []topology.NodeID {
		out := make([]topology.NodeID, len(ids))
		for i, v := range ids {
			out[i] = perm[v]
		}
		return out
	}
	for i := range t.Nodes {
		src := &t.Nodes[i]
		nt.Nodes[perm[i]] = topology.Node{
			ID:        perm[i],
			Type:      src.Type,
			Regions:   src.Regions,
			Providers: mapIDs(src.Providers),
			Customers: mapIDs(src.Customers),
			Peers:     mapIDs(src.Peers),
		}
	}
	return nt
}

// TestRelabelingIsomorphismInvariance verifies that churn is a property of
// the topology's shape, not its labeling: running the same C-event on a
// node-relabeled copy yields identical counters under the relabeling, in
// both engines.
//
// Two pieces of engine state are label-dependent by design and must be
// transported under the permutation for the comparison to be exact: the
// deterministic tie-break hashes (hashID mixes the raw neighbor ID) and the
// per-node RNG streams (seeded in node-index order). The test overwrites
// both with shared values so the two runs differ only in labels.
func TestRelabelingIsomorphismInvariance(t *testing.T) {
	base := topology.MustGenerate(growTestParams(400, 71))
	n := base.N()
	perm := make([]topology.NodeID, n)
	for i := range perm {
		perm[i] = topology.NodeID(i)
	}
	rng.New(99).Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	relabeled := permuteTopology(base, perm)
	if err := relabeled.Validate(); err != nil {
		t.Fatalf("relabeled topology invalid: %v", err)
	}

	origin := base.NodesOfType(topology.C)[3]
	for _, compact := range []bool{false, true} {
		t.Run(fmt.Sprintf("compact=%v", compact), func(t *testing.T) {
			cfg := DefaultConfig(5)
			cfg.CompactRIB = compact
			cfg.Check = compact
			a := MustNew(base, cfg)
			b := MustNew(relabeled, cfg)

			// Transport the label-dependent state: slot j of node i in the
			// base network corresponds to slot j of node perm[i] in the
			// relabeled one (permuteTopology preserves list order).
			master := rng.New(0x5eed)
			for i := range a.nodes {
				na, nb := &a.nodes[i], &b.nodes[perm[i]]
				copy(nb.tieHash, na.tieHash)
				s := master.Uint64()
				na.src.Reseed(s)
				nb.src.Reseed(s)
			}

			runCEvent := func(net *Network, o topology.NodeID) {
				net.Originate(o, 1)
				net.Run()
				net.ResetCounters()
				net.WithdrawPrefix(o, 1)
				net.Run()
				net.Originate(o, 1)
				net.Run()
			}
			runCEvent(a, origin)
			runCEvent(b, perm[origin])

			if a.TotalUpdates() != b.TotalUpdates() || a.PeakUpdateRate() != b.PeakUpdateRate() {
				t.Fatalf("network-wide churn differs: %d/%d vs %d/%d",
					a.TotalUpdates(), a.PeakUpdateRate(), b.TotalUpdates(), b.PeakUpdateRate())
			}
			if a.Now() != b.Now() {
				t.Fatalf("convergence times differ: %d vs %d", a.Now(), b.Now())
			}
			for i := 0; i < n; i++ {
				ca := a.Counters(topology.NodeID(i))
				cb := b.Counters(perm[i])
				if fmt.Sprint(ca) != fmt.Sprint(cb) {
					t.Fatalf("node %d (relabeled %d): counters differ:\n%v\n%v", i, perm[i], ca, cb)
				}
			}
		})
	}
}
