package bgp

import (
	"bgpchurn/internal/des"
	"bgpchurn/internal/rng"
	"bgpchurn/internal/topology"
)

// Sentinel values for prefixState.bestSlot.
const (
	selfSlot = -1 // the node originates the prefix itself
	noneSlot = -2 // no route
)

// prefixState is a node's routing state for one prefix: the Adj-RIB-In
// (best route learned per neighbor) and the selected best route.
type prefixState struct {
	// ribIn[j] is the path most recently announced by neighbor j, or nil.
	// Paths are immutable once created and may be shared between nodes.
	// Used by the classic engine only; nil in compact mode.
	ribIn []Path
	// ribID[j] is the compact engine's Adj-RIB-In: the interned ID of the
	// path most recently announced by neighbor j (NoPath = none). The
	// node's first prefixState borrows the node's row of the network-wide
	// flat PathID array (see node.ribRow); further prefixes allocate their
	// own rows. Nil in classic mode.
	ribID []PathID
	// bestSlot is the neighbor slot of the selected route, selfSlot or
	// noneSlot.
	bestSlot int
	// bestPath is ribIn[bestSlot] (nil when bestSlot is selfSlot/noneSlot).
	// Maintained by both engines; in compact mode it is the canonical
	// interned slice for bestID.
	bestPath Path
	// bestID is the interned ID of bestPath (compact mode only; NoPath for
	// selfSlot/noneSlot). The decision-change test in applyDecision is an
	// ID compare.
	bestID PathID
	// full caches the advertisement body for the current best route:
	// bestPath prepended with the node's own ID ([self] for a
	// self-originated prefix, nil without a route). It is rebuilt lazily by
	// advertisement and invalidated whenever the best route changes, so a
	// decision change pays for exactly one Prepend no matter how many
	// neighbors, resyncs or consistency checks read it. Like every Path it
	// is immutable and freely shared (see DESIGN.md, kernel memory model).
	full      Path
	fullValid bool
	// fullID is the interned ID of full (compact mode only), threaded into
	// output queues and update events so receivers install routes without
	// re-hashing.
	fullID PathID
	// selfOrigin marks the node as the owner currently announcing the
	// prefix.
	selfOrigin bool
	// damp is the per-neighbor flap-dampening state, allocated on the
	// first flap (nil while the prefix never flapped or dampening is off).
	damp []dampState
}

// reset rewinds ps to the no-route state while keeping its allocations
// (ribIn and damp storage), so Network.Reset can recycle it.
func (ps *prefixState) reset() {
	for j := range ps.ribIn {
		ps.ribIn[j] = nil
	}
	for j := range ps.ribID {
		ps.ribID[j] = NoPath
	}
	ps.bestSlot = noneSlot
	ps.bestPath = nil
	ps.bestID = NoPath
	ps.full = nil
	ps.fullValid = false
	ps.fullID = NoPath
	ps.selfOrigin = false
	for j := range ps.damp {
		ps.damp[j] = dampState{}
	}
}

// advertisement returns the full AS path nd advertises for ps (nil when it
// has no route) and whether the best route came from a customer or is
// self-originated (the no-valley export predicate). The path is served from
// ps.full, computed at most once per best-route change.
func (nd *node) advertisement(ps *prefixState) (full Path, fromCustomerOrSelf bool) {
	if !ps.fullValid {
		switch {
		case ps.bestSlot == noneSlot:
			ps.full, ps.fullID = nil, NoPath
		case nd.it != nil:
			// Compact engine: the advertisement body is interned, so the
			// same [self, best...] content network-wide shares one slab
			// entry and one PathID.
			ps.full, ps.fullID = nd.it.prepend(nd.id, ps.bestPath)
		case ps.bestSlot == selfSlot:
			ps.full = nd.arena.prepend(nd.id, nil)
		default:
			ps.full = nd.arena.prepend(nd.id, ps.bestPath)
		}
		ps.fullValid = true
	}
	switch ps.bestSlot {
	case noneSlot:
		return nil, false
	case selfSlot:
		return ps.full, true
	default:
		return ps.full, nd.nbrRels[ps.bestSlot] == topology.Customer
	}
}

// pendingUpdate is an update waiting in an output queue for its MRAI timer.
type pendingUpdate struct {
	kind UpdateKind
	path Path
	// id is the interned ID of path (compact mode only; NoPath otherwise).
	id PathID
	// cause is the root cause of the queued update. A newer update for the
	// same prefix replaces the whole pendingUpdate — cause included — so
	// MRAI coalescing attributes the eventual send to the newest
	// invalidating cause.
	cause CauseID
}

// outQueue is the per-neighbor output state: the MRAI timer, the queue of
// rate-limited updates, and the Adj-RIB-Out (what is currently on the wire).
// All per-prefix tables are prefixMaps: the paper's workload is one prefix
// per C-event, so the dominant case is a single inline entry with no map
// allocation at all.
type outQueue struct {
	// expiry is when the per-interface MRAI timer expires; a value <= now
	// means the timer is idle. Used only with PerInterface scope.
	expiry des.Time
	// scheduled marks a pending flush event for this queue (PerInterface).
	scheduled bool
	// pending holds the latest not-yet-sent update per prefix. A newer
	// update for the same prefix replaces the queued one (the paper's
	// "queued update invalidated by a new update is removed").
	pending prefixMap[pendingUpdate]
	// lastSent is the Adj-RIB-Out: the path currently advertised to this
	// neighbor per prefix. Absence means not advertised (never, or
	// withdrawn).
	lastSent prefixMap[Path]
	// prefixExpiry and prefixScheduled are the PerPrefix-scope analogues of
	// expiry/scheduled.
	prefixExpiry    prefixMap[des.Time]
	prefixScheduled prefixMap[bool]
	// down marks a failed link; no updates flow and state is cleared.
	down bool
}

// node is one AS in the simulation. All per-neighbor state is laid out as
// rows of shared flat arrays (struct-of-arrays): nbrIDs/nbrRels/reverse are
// sub-slices of the topology's CSR adjacency (immutable, shared by every
// Network over the topology), and tieHash/recvBySlot/out are sub-slices of
// the Network's own flat per-session arrays. The hot transmit→reconcile
// loop therefore walks contiguous memory instead of chasing per-node
// allocations.
type node struct {
	id  topology.NodeID
	typ topology.NodeType
	// sh is the shard owning this node: its event queue, path arena,
	// counters and event pools (the classic engine has exactly one shard).
	sh *netShard
	// msgSeq numbers this node's transmitted updates in windowed mode; the
	// (arrival, sender, msgSeq) triple is the canonical barrier-admission
	// order that makes results independent of the shard count.
	msgSeq uint64
	// nbrIDs[j] and nbrRels[j] are the neighbor's ID and relation at slot
	// j, in the canonical CSR order (customers, peers, providers).
	nbrIDs  []topology.NodeID
	nbrRels []topology.Relation
	// reverse[j] is this node's slot index in neighbor j's neighbor list,
	// so messages can be delivered without per-message lookups.
	reverse []int32
	// tieHash[j] is the deterministic per-neighbor hash used as the final
	// decision tie-break ("hashed value of the node IDs").
	tieHash []uint64
	// busyUntil models the single update processor with its FIFO queue: a
	// message arriving at t completes processing at max(t, busyUntil) + d.
	busyUntil des.Time
	// inbox holds messages waiting behind the one delivery event this node
	// keeps in the scheduler queue (inboxHead indexes the front; delivering
	// is true while that event is pending). Each message carries the
	// scheduler ticket reserved at transmit time, so deferred insertion
	// cannot change the global fire order — it only keeps the hot event
	// queue at one entry per busy receiver instead of one per in-flight
	// message.
	inbox      []inMsg
	inboxHead  int
	delivering bool
	// src is the node's private randomness stream (processing delays,
	// MRAI jitter).
	src *rng.Source
	// arena is the owning Network's path arena (advertisement bodies are
	// built in it; see pathArena). Classic engine only.
	arena *pathArena
	// it is the owning Network's path intern table; non-nil selects the
	// compact engine on every per-node code path (Config.CompactRIB).
	it *internTable
	// ribRow is this node's row of the network-wide flat Adj-RIB-In PathID
	// array (compact mode), claimed by the node's first prefixState and
	// owned by it from then on — across reset/recycle cycles — so the flat
	// row can never alias two live prefixes. ribRowTaken marks the claim.
	ribRow      []PathID
	ribRowTaken bool
	// out is the per-neighbor output state, parallel to nbrIDs.
	out []outQueue
	// prefixes holds per-prefix routing state, allocated on first contact.
	prefixes prefixMap[*prefixState]
	// psFree recycles prefixStates released by Network.Reset, so repeated
	// C-events on one Network reuse the ribIn/damp storage instead of
	// re-allocating it per event.
	psFree []*prefixState
	// scratch is a reused buffer for sorted per-prefix iteration on hot
	// paths (flush drains). Valid only within one event's Fire; never
	// retained.
	scratch []Prefix

	// Measurement-window counters (reset by Network.ResetCounters).
	recvBySlot   []uint32
	recvAnnounce uint64
	recvWithdraw uint64
	sentUpdates  uint64
	// bestChanges counts Loc-RIB best-route changes (path exploration
	// depth); suppressions counts dampening suppression episodes.
	bestChanges  uint64
	suppressions uint64
}

// state returns the node's prefixState for f, taking it from the free list
// or allocating it on first use.
func (nd *node) state(f Prefix) *prefixState {
	if ps, ok := nd.prefixes.Get(f); ok {
		return ps
	}
	var ps *prefixState
	if n := len(nd.psFree); n > 0 {
		ps = nd.psFree[n-1]
		nd.psFree[n-1] = nil
		nd.psFree = nd.psFree[:n-1]
	} else if nd.it != nil {
		ps = &prefixState{bestSlot: noneSlot}
		if !nd.ribRowTaken {
			// First prefix: zero-allocation Adj-RIB-In over the CSR row.
			nd.ribRowTaken = true
			ps.ribID = nd.ribRow
		} else {
			ps.ribID = make([]PathID, len(nd.nbrIDs))
		}
	} else {
		ps = &prefixState{
			ribIn:    make([]Path, len(nd.nbrIDs)),
			bestSlot: noneSlot,
		}
	}
	nd.prefixes.Set(f, ps)
	return ps
}

// decide runs the BGP decision process over the Adj-RIB-In: highest local
// preference (customer > peer > provider), then shortest AS path, then the
// ID hash, then (vanishingly unlikely) the lower slot. A self-originated
// prefix always wins.
func (nd *node) decide(ps *prefixState) (slot int, path Path) {
	if ps.selfOrigin {
		return selfSlot, nil
	}
	best := noneSlot
	var bestPath Path
	bestPref, bestLen := -1, 0
	var bestHash uint64
	for j, p := range ps.ribIn {
		if p == nil || ps.suppressedAt(j) {
			continue
		}
		pref := localPref(nd.nbrRels[j])
		plen := len(p)
		h := nd.tieHash[j]
		better := best == noneSlot ||
			pref > bestPref ||
			(pref == bestPref && plen < bestLen) ||
			(pref == bestPref && plen == bestLen && h < bestHash)
		if better {
			best, bestPath, bestPref, bestLen, bestHash = j, p, pref, plen, h
		}
	}
	return best, bestPath
}

// decideCompact is decide over the interned Adj-RIB-In: the same comparison
// chain, but walking 4-byte PathIDs and reading path lengths out of the
// intern table, so the scan never touches path content. Returns the ID of
// the winning path (NoPath for selfSlot/noneSlot).
func (nd *node) decideCompact(ps *prefixState) (slot int, id PathID) {
	if ps.selfOrigin {
		return selfSlot, NoPath
	}
	best := noneSlot
	bestID := NoPath
	bestPref, bestLen := -1, 0
	var bestHash uint64
	for j, pid := range ps.ribID {
		if pid == NoPath || ps.suppressedAt(j) {
			continue
		}
		pref := localPref(nd.nbrRels[j])
		plen := nd.it.lenOf(pid)
		h := nd.tieHash[j]
		better := best == noneSlot ||
			pref > bestPref ||
			(pref == bestPref && plen < bestLen) ||
			(pref == bestPref && plen == bestLen && h < bestHash)
		if better {
			best, bestID, bestPref, bestLen, bestHash = j, pid, pref, plen, h
		}
	}
	return best, bestID
}

// ribHas reports whether ps holds a route from neighbor slot j, in either
// engine representation.
func (nd *node) ribHas(ps *prefixState, j int) bool {
	if nd.it != nil {
		return ps.ribID[j] != NoPath
	}
	return ps.ribIn[j] != nil
}

// ribPath returns the route ps holds from neighbor slot j (nil if none),
// resolving interned IDs to their canonical paths in compact mode. Cold
// paths (consistency checks, link events) use it so they read one code path
// regardless of engine.
func (nd *node) ribPath(ps *prefixState, j int) Path {
	if nd.it != nil {
		return nd.it.path(ps.ribID[j])
	}
	return ps.ribIn[j]
}

// exportable reports whether the node's current best route for ps may be
// advertised to neighbor slot j under the no-valley policy, and returns the
// full AS path to advertise. full must be the best path prepended with the
// node's own ID (computed once by the caller); fromCustomerOrSelf says the
// best route was learned from a customer or originated locally.
func (nd *node) exportable(j int, full Path, fromCustomerOrSelf bool) bool {
	if full == nil {
		return false
	}
	// No-valley: routes from peers/providers go only to customers; routes
	// from customers (or our own prefixes) go to everyone.
	if !fromCustomerOrSelf && nd.nbrRels[j] != topology.Customer {
		return false
	}
	// Sender-side loop detection: never advertise a path through the
	// recipient (this also suppresses the advertisement to the next hop,
	// the paper's "unless its preferred path goes through the customer
	// itself").
	return !full.Contains(nd.nbrIDs[j])
}

// sortedPrefixes returns the node's known prefixes in ascending order, for
// deterministic iteration. Cold path (link events, consistency checks); the
// hot flush path uses prefixMap.SortedKeysInto with the node's scratch
// buffer instead.
func (nd *node) sortedPrefixes() []Prefix {
	return nd.prefixes.SortedKeysInto(make([]Prefix, 0, nd.prefixes.Len()))
}

// hashID mixes a node ID with the simulation salt for decision tie-breaks.
func hashID(salt uint64, id topology.NodeID) uint64 {
	z := salt ^ (uint64(uint32(id))+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
