// Package bgp implements the paper's AS-level BGP simulation model (§2,
// Fig. 2): one node per AS, one logical link per AS pair, policy-based
// routing with no-valley export and prefer-customer selection, a FIFO
// single-processor message model with uniform processing delay, and
// per-interface MRAI rate limiting in both the WRATE (RFC 4271) and
// NO-WRATE (RFC 1771/Quagga) variants.
//
// The engine is fully deterministic for a given seed. With LinkDelay zero
// (the historical model: updates are admitted to the receiver's processor at
// send time) a Network is single-threaded and parallel experiments run one
// Network per goroutine. With a positive LinkDelay the engine runs a
// barrier-synchronized windowed executor that can additionally partition the
// node array into Config.Shards shards and run the windows on multiple cores
// — with byte-identical results at every shard count (see DESIGN.md,
// "Sharded DES").
package bgp

import (
	"fmt"

	"bgpchurn/internal/des"
)

// MRAIScope selects how rate-limiting timers are keyed.
type MRAIScope uint8

const (
	// PerInterface keeps one MRAI timer per neighbor session, the vendor
	// implementation the paper adopts.
	PerInterface MRAIScope = iota
	// PerPrefix keeps one timer per (neighbor, prefix), the letter of the
	// BGP-4 standard. Provided as an ablation.
	PerPrefix
)

// String names the scope.
func (s MRAIScope) String() string {
	if s == PerPrefix {
		return "per-prefix"
	}
	return "per-interface"
}

// Config carries the protocol parameters of the simulation model.
type Config struct {
	// MRAI is the Minimum Route Advertisement Interval. Zero disables rate
	// limiting entirely (every update is sent immediately).
	MRAI des.Time
	// JitterLo and JitterHi bound the uniform factor applied to MRAI each
	// time a timer is started (RFC 4271: 0.75–1.0).
	JitterLo, JitterHi float64
	// RateLimitWithdrawals selects WRATE (true, RFC 4271: explicit
	// withdrawals wait for the MRAI timer like any update) or NO-WRATE
	// (false, RFC 1771: withdrawals are sent immediately).
	RateLimitWithdrawals bool
	// Scope selects per-interface (default) or per-prefix MRAI timers.
	Scope MRAIScope
	// MaxProcessingDelay is the upper bound of the uniform per-update
	// processing time (paper: 100 ms).
	MaxProcessingDelay des.Time
	// LinkDelay is the fixed propagation latency of every session: an
	// update transmitted at time t reaches the neighbor's processor queue
	// at t+LinkDelay. Zero (the default, and the paper's model) admits
	// updates at send time, preserving the historical single-threaded
	// event order bit for bit. A positive LinkDelay switches the engine to
	// the windowed executor whose results are invariant under Shards: the
	// delay is the conservative lookahead that spaces the time barriers.
	LinkDelay des.Time
	// Shards is the number of barrier-synchronized node shards a single
	// run executes on (0 or 1 = one shard). Values above 1 require a
	// positive LinkDelay — the lookahead that makes parallel windows
	// causally safe. Shards never affects results, only wall-clock, and is
	// therefore excluded from the experiment cell cache key.
	Shards int
	// Seed drives all protocol randomness (jitter, processing delays,
	// tie-break hashing).
	Seed uint64
	// Dampening configures RFC 2439 route flap dampening (disabled by
	// default; the paper's model has no dampening, listed as future work).
	Dampening Dampening
	// CompactRIB selects the interned-path RIB engine: every distinct AS
	// path is hash-consed once into a per-network intern table, routes hold
	// 32-bit PathIDs, and the Adj-RIB-In is a flat PathID array laid out
	// over the CSR neighbor slots. Results are byte-identical to the
	// default slice-path engine (the scale-equivalence test tier enforces
	// this); what changes is memory — the representation that makes n≥100k
	// cells fit on one machine. Default false preserves the historical
	// representation exactly, pointer identities included.
	CompactRIB bool
	// Check enables the debug-only RIB invariant checker: after every
	// reconcile the engine verifies the node's decision fixpoint, the
	// advertisement cache, intern-table ID validity and the per-neighbor
	// reconciliation postcondition, panicking on any violation. Orders of
	// magnitude slower; meant for tests (the race tier runs it at small n).
	Check bool
}

// DefaultConfig returns the paper's parameters with the NO-WRATE variant
// used throughout §4 and §5.
func DefaultConfig(seed uint64) Config {
	return Config{
		MRAI:                 30 * des.Second,
		JitterLo:             0.75,
		JitterHi:             1.0,
		RateLimitWithdrawals: false,
		Scope:                PerInterface,
		MaxProcessingDelay:   100 * des.Millisecond,
		Seed:                 seed,
	}
}

// WRATEConfig returns DefaultConfig with rate-limited withdrawals (§6).
func WRATEConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.RateLimitWithdrawals = true
	return c
}

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	switch {
	case c.MRAI < 0:
		return fmt.Errorf("bgp: negative MRAI")
	case c.MaxProcessingDelay <= 0:
		return fmt.Errorf("bgp: MaxProcessingDelay must be positive")
	case c.JitterLo <= 0 || c.JitterHi < c.JitterLo || c.JitterHi > 1:
		return fmt.Errorf("bgp: jitter bounds must satisfy 0 < lo <= hi <= 1")
	case c.Scope != PerInterface && c.Scope != PerPrefix:
		return fmt.Errorf("bgp: unknown MRAI scope %d", c.Scope)
	case c.LinkDelay < 0:
		return fmt.Errorf("bgp: negative LinkDelay")
	case c.Shards < 0:
		return fmt.Errorf("bgp: negative Shards")
	case c.Shards > 1 && c.LinkDelay == 0:
		return fmt.Errorf("bgp: Shards > 1 requires a positive LinkDelay (the conservative lookahead)")
	}
	return c.Dampening.validate()
}
