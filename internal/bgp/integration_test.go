package bgp

import (
	"testing"

	"bgpchurn/internal/topology"
)

// genParams mirrors the Baseline Table 1 values for integration tests.
func genParams(n int, seed uint64) topology.Params {
	fn := float64(n)
	nT := 5
	nM := int(0.15 * fn)
	nCP := int(0.05 * fn)
	return topology.Params{
		N: n, Regions: 5, Seed: seed,
		NT: nT, NM: nM, NCP: nCP, NC: n - nT - nM - nCP,
		DM: 2 + 2.5*fn/10000, DCP: 2 + 1.5*fn/10000, DC: 1 + 5*fn/100000,
		PM: 1 + 2*fn/10000, PCPM: 0.2 + 2*fn/10000, PCPCP: 0.05 + 5*fn/100000,
		TM: 0.375, TCP: 0.375, TC: 0.125,
		MaxTProvidersPerM: topology.Unlimited, MaxMProviders: topology.Unlimited,
		MSpread: 0.2, CPSpread: 0.05,
	}
}

// checkValleyFree verifies that path (from the route holder to the origin)
// is policy-compliant: in propagation direction (origin → holder) the link
// sequence must be up* peer? down* where up = customer→provider.
func checkValleyFree(t *testing.T, topo *topology.Topology, path Path) {
	t.Helper()
	// Propagation steps: path[i+1] sent to path[i].
	const (
		climbing = iota
		peered
		descending
	)
	phase := climbing
	for i := len(path) - 1; i > 0; i-- {
		from, to := path[i], path[i-1]
		rel := topo.Relation(from, to) // how `from` sees `to`
		var step int
		switch rel {
		case topology.Provider:
			step = climbing // from exports to its provider
		case topology.Peer:
			step = peered
		case topology.Customer:
			step = descending
		default:
			t.Fatalf("path %v uses non-adjacent pair %d-%d", path, from, to)
		}
		switch {
		case step == climbing && phase != climbing:
			t.Fatalf("valley in path %v: climb after %d", path, phase)
		case step == peered && phase != climbing:
			t.Fatalf("valley in path %v: second peak", path)
		}
		phase = step
	}
}

func TestGeneratedTopologyFullPropagation(t *testing.T) {
	topo := topology.MustGenerate(genParams(400, 3))
	net := MustNew(topo, fastConfig(3))
	origin := topo.NodesOfType(topology.C)[7]
	net.Originate(origin, 1)
	net.Run()
	for id := 0; id < topo.N(); id++ {
		if !net.HasRoute(topology.NodeID(id), 1) {
			t.Fatalf("node %d never learned the prefix", id)
		}
		p := net.BestPath(topology.NodeID(id), 1)
		if p[0] != topology.NodeID(id) || p[len(p)-1] != origin {
			t.Fatalf("malformed path at %d: %v", id, p)
		}
		seen := map[topology.NodeID]bool{}
		for _, v := range p {
			if seen[v] {
				t.Fatalf("loop in path %v", p)
			}
			seen[v] = true
		}
		checkValleyFree(t, topo, p)
	}
}

func TestValleyFreeUnderMRAIAndWrate(t *testing.T) {
	topo := topology.MustGenerate(genParams(300, 9))
	for _, cfg := range []Config{DefaultConfig(9), WRATEConfig(9)} {
		net := MustNew(topo, cfg)
		origins := topo.NodesOfType(topology.C)
		net.Originate(origins[0], 1)
		net.Run()
		net.WithdrawPrefix(origins[0], 1)
		net.Run()
		net.Originate(origins[0], 1)
		net.Run()
		for id := 0; id < topo.N(); id++ {
			if !net.HasRoute(topology.NodeID(id), 1) {
				t.Fatalf("node %d routeless after flap (wrate=%v)", id, cfg.RateLimitWithdrawals)
			}
			checkValleyFree(t, topo, net.BestPath(topology.NodeID(id), 1))
		}
	}
}

func TestSimulationDeterminism(t *testing.T) {
	topo := topology.MustGenerate(genParams(300, 5))
	run := func() (uint64, int64) {
		net := MustNew(topo, WRATEConfig(17))
		origin := topo.NodesOfType(topology.C)[3]
		net.Originate(origin, 1)
		net.Run()
		net.ResetCounters()
		net.WithdrawPrefix(origin, 1)
		net.Run()
		net.Originate(origin, 1)
		net.Run()
		return net.TotalUpdates(), int64(net.Now())
	}
	u1, t1 := run()
	u2, t2 := run()
	if u1 != u2 || t1 != t2 {
		t.Fatalf("runs diverged: (%d,%d) vs (%d,%d)", u1, t1, u2, t2)
	}
	if u1 == 0 {
		t.Fatal("C-event produced no updates")
	}
}

func TestWithdrawalReachesEveryoneCEvent(t *testing.T) {
	topo := topology.MustGenerate(genParams(300, 21))
	net := MustNew(topo, DefaultConfig(21))
	origin := topo.NodesOfType(topology.C)[0]
	net.Originate(origin, 1)
	net.Run()
	net.WithdrawPrefix(origin, 1)
	net.Run()
	for id := 0; id < topo.N(); id++ {
		if topology.NodeID(id) == origin {
			continue
		}
		if net.HasRoute(topology.NodeID(id), 1) {
			t.Fatalf("node %d kept a route to a withdrawn prefix: %v", id, net.BestPath(topology.NodeID(id), 1))
		}
	}
}

func TestWratePathExplorationIncreasesChurn(t *testing.T) {
	// §6's headline effect in miniature: rate-limited withdrawals cause
	// path exploration, so a C-event generates at least as many updates.
	topo := topology.MustGenerate(genParams(500, 31))
	origin := topo.NodesOfType(topology.C)[11]

	measure := func(cfg Config) uint64 {
		net := MustNew(topo, cfg)
		net.Originate(origin, 1)
		net.Run()
		net.Settle(60 * 1000 * 1000 * 1000)
		net.ResetCounters()
		net.WithdrawPrefix(origin, 1)
		net.Run()
		net.Originate(origin, 1)
		net.Run()
		return net.TotalUpdates()
	}

	noWrate := measure(DefaultConfig(31))
	wrate := measure(WRATEConfig(31))
	if wrate < noWrate {
		t.Fatalf("WRATE churn %d < NO-WRATE churn %d", wrate, noWrate)
	}
}

func TestResetReproducesFreshNetwork(t *testing.T) {
	topo := topology.MustGenerate(genParams(300, 5))
	origin := topo.NodesOfType(topology.C)[5]

	cEvent := func(net *Network) (uint64, int64) {
		net.Originate(origin, 1)
		net.Run()
		net.ResetCounters()
		net.WithdrawPrefix(origin, 1)
		net.Run()
		net.Originate(origin, 1)
		net.Run()
		return net.TotalUpdates(), int64(net.Now())
	}

	fresh := MustNew(topo, WRATEConfig(23))
	u1, t1 := cEvent(fresh)

	reused := MustNew(topo, WRATEConfig(77)) // different seed on purpose
	cEvent(reused)                           // dirty it
	reused.Reset(23)                         // rewind to seed 23
	u2, t2 := cEvent(reused)
	if u1 != u2 || t1 != t2 {
		t.Fatalf("Reset(23) run (%d,%d) differs from fresh seed-23 run (%d,%d)", u2, t2, u1, t1)
	}
	// State is truly clean: no routes, no pending events.
	reused.Reset(23)
	if reused.Pending() != 0 || reused.Now() != 0 || reused.TotalUpdates() != 0 {
		t.Fatal("Reset left residue")
	}
	for id := 0; id < topo.N(); id++ {
		if reused.HasRoute(topology.NodeID(id), 1) {
			t.Fatalf("node %d kept a route across Reset", id)
		}
	}
}

func BenchmarkCEventBaseline1000(b *testing.B) {
	topo := topology.MustGenerate(genParams(1000, 1))
	origin := topo.NodesOfType(topology.C)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := MustNew(topo, DefaultConfig(uint64(i)))
		net.Originate(origin, 1)
		net.Run()
		net.WithdrawPrefix(origin, 1)
		net.Run()
		net.Originate(origin, 1)
		net.Run()
	}
}
