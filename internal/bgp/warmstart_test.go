package bgp

import (
	"testing"

	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

const wsPrefix Prefix = 1

// TestWarmStartMatchesDES is the warm-start soundness proof by exhaustive
// comparison: for several scenarios, sizes, seeds and origins, the state
// WarmStart installs must equal — field by field, at every node and on every
// session — the state a real DES initial-propagation flood converges to.
func TestWarmStartMatchesDES(t *testing.T) {
	scenarios := []scenario.Scenario{
		scenario.Baseline,      // full node mix, moderate peering
		scenario.DenseEdge,     // heavy edge peering: exercises stage B widely
		scenario.NoPeering,     // pure hierarchy: stages A and C only
		scenario.TransitClique, // dense transit multihoming
	}
	sizes := []int{1000, 3000}
	seeds := []uint64{1, 42}
	for _, sc := range scenarios {
		for _, n := range sizes {
			for _, seed := range seeds {
				topo, err := sc.Generate(n, seed)
				if err != nil {
					t.Fatalf("%s n=%d seed=%d: %v", sc.Name, n, seed, err)
				}
				cNodes := topo.NodesOfType(topology.C)
				cold := MustNew(topo, DefaultConfig(seed))
				warm := MustNew(topo, DefaultConfig(seed))
				for k := 0; k < 3; k++ {
					origin := cNodes[k*len(cNodes)/3]
					label := sc.Name
					cold.Reset(seed)
					cold.Originate(origin, wsPrefix)
					cold.Run()
					warm.Reset(seed)
					warm.WarmStart(origin, wsPrefix)
					if err := warm.CheckConsistency(); err != nil {
						t.Fatalf("%s n=%d seed=%d origin=%d: warm state inconsistent: %v",
							label, n, seed, origin, err)
					}
					compareConverged(t, cold, warm, label, n, seed, origin)
					if t.Failed() {
						t.Fatalf("%s n=%d seed=%d origin=%d: warm state diverges from DES", label, n, seed, origin)
					}
				}
			}
		}
	}
}

// compareConverged asserts the warm network holds exactly the routing state
// the cold (DES-flooded) network converged to. A node the flood never
// touched, or touched only transiently, may hold an empty prefixState in the
// cold network where the warm one holds none: absent and empty are the same
// state.
func compareConverged(t *testing.T, cold, warm *Network, label string, n int, seed uint64, origin topology.NodeID) {
	t.Helper()
	if p := warm.Pending(); p != 0 {
		t.Errorf("warm network has %d pending events", p)
	}
	for i := range cold.nodes {
		cn, wn := &cold.nodes[i], &warm.nodes[i]
		cps := psOrEmpty(cn, wsPrefix)
		wps := psOrEmpty(wn, wsPrefix)
		if cps.selfOrigin != wps.selfOrigin {
			t.Errorf("node %d: selfOrigin cold=%v warm=%v", i, cps.selfOrigin, wps.selfOrigin)
		}
		if cps.bestSlot != wps.bestSlot {
			t.Errorf("node %d: bestSlot cold=%d warm=%d", i, cps.bestSlot, wps.bestSlot)
		}
		if !cps.bestPath.Equal(wps.bestPath) {
			t.Errorf("node %d: bestPath cold=%v warm=%v", i, cps.bestPath, wps.bestPath)
		}
		for j := range cn.nbrIDs {
			var cRib, wRib Path
			if cps.ribIn != nil {
				cRib = cps.ribIn[j]
			}
			if wps.ribIn != nil {
				wRib = wps.ribIn[j]
			}
			if !cRib.Equal(wRib) {
				t.Errorf("node %d slot %d (from %d): ribIn cold=%v warm=%v",
					i, j, cn.nbrIDs[j], cRib, wRib)
			}
			cq, wq := &cn.out[j], &wn.out[j]
			if cq.pending.Len() != 0 || wq.pending.Len() != 0 {
				t.Errorf("node %d slot %d: queued updates on a converged network (cold=%d warm=%d)",
					i, j, cq.pending.Len(), wq.pending.Len())
			}
			cSent, cOn := cq.lastSent.Get(wsPrefix)
			wSent, wOn := wq.lastSent.Get(wsPrefix)
			if cOn != wOn || !cSent.Equal(wSent) {
				t.Errorf("node %d slot %d (to %d): adj-rib-out cold=(%v,%v) warm=(%v,%v)",
					i, j, cn.nbrIDs[j], cSent, cOn, wSent, wOn)
			}
		}
		// The cached advertisement body must agree whenever there is a route;
		// without one, a lazily-invalidated cache and an absent state are the
		// same observable state.
		if cps.bestSlot != noneSlot {
			if !cps.fullValid || !wps.fullValid {
				t.Errorf("node %d: fullValid cold=%v warm=%v with a selected route",
					i, cps.fullValid, wps.fullValid)
			}
			if !cps.full.Equal(wps.full) {
				t.Errorf("node %d: full cold=%v warm=%v", i, cps.full, wps.full)
			}
		}
	}
}

// emptyPS is the canonical no-route state compared against absent entries.
var emptyPS = prefixState{bestSlot: noneSlot}

// psOrEmpty returns nd's state for f, or the empty state if absent.
func psOrEmpty(nd *node, f Prefix) *prefixState {
	if ps, ok := nd.prefixes.Get(f); ok {
		return ps
	}
	return &emptyPS
}

// TestWarmStartOriginState pins the origin's own state: self-originated,
// empty Adj-RIB-In (every path to the prefix ends at the origin, so
// sender-side loop suppression blocks all advertisements toward it), and the
// cached [origin] advertisement.
func TestWarmStartOriginState(t *testing.T) {
	topo, err := scenario.Baseline.Generate(1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	origin := topo.NodesOfType(topology.C)[0]
	net := MustNew(topo, DefaultConfig(9))
	net.WarmStart(origin, wsPrefix)
	nd := &net.nodes[origin]
	ps, ok := nd.prefixes.Get(wsPrefix)
	if !ok || !ps.selfOrigin || ps.bestSlot != selfSlot {
		t.Fatalf("origin state = %+v, ok=%v; want self-originated", ps, ok)
	}
	for j, p := range ps.ribIn {
		if p != nil {
			t.Errorf("origin ribIn[%d] = %v; want nil", j, p)
		}
	}
	if !ps.fullValid || !ps.full.Equal(Path{origin}) {
		t.Errorf("origin full = %v (valid=%v); want [%d]", ps.full, ps.fullValid, origin)
	}
	if !net.HasRoute(origin, wsPrefix) {
		t.Error("origin has no route to its own prefix")
	}
}
