package bgp

import (
	"fmt"
	"math"

	"bgpchurn/internal/des"
	"bgpchurn/internal/topology"
)

// Route Flap Dampening (RFC 2439), the churn-suppression mechanism the
// paper's future-work section names. Each (node, neighbor, prefix) keeps a
// penalty that grows on every flap and decays exponentially; routes whose
// penalty crosses the suppress threshold are withheld from the decision
// process until it decays below the reuse threshold.

// Dampening configures RFC 2439 route flap dampening. The zero value
// disables it.
type Dampening struct {
	// Enabled turns dampening on.
	Enabled bool
	// WithdrawPenalty is added when a reachable route is withdrawn
	// (RFC 2439 suggests 1000).
	WithdrawPenalty float64
	// UpdatePenalty is added when an announced route is replaced by a
	// different path (attribute change; commonly 500).
	UpdatePenalty float64
	// SuppressThreshold is the penalty above which the route is suppressed
	// (commonly 2000).
	SuppressThreshold float64
	// ReuseThreshold is the penalty below which a suppressed route is
	// reused (commonly 750).
	ReuseThreshold float64
	// HalfLife is the exponential decay half-life (commonly 15 min).
	HalfLife des.Time
	// MaxSuppress caps the suppression duration; the penalty is clamped to
	// the ceiling ReuseThreshold * 2^(MaxSuppress/HalfLife) (commonly 60
	// min).
	MaxSuppress des.Time
}

// DefaultDampening returns the RFC 2439 example parameters.
func DefaultDampening() Dampening {
	return Dampening{
		Enabled:           true,
		WithdrawPenalty:   1000,
		UpdatePenalty:     500,
		SuppressThreshold: 2000,
		ReuseThreshold:    750,
		HalfLife:          15 * 60 * des.Second,
		MaxSuppress:       60 * 60 * des.Second,
	}
}

// validate checks the dampening parameters (only when enabled).
func (d *Dampening) validate() error {
	if !d.Enabled {
		return nil
	}
	switch {
	case d.WithdrawPenalty <= 0 && d.UpdatePenalty <= 0:
		return fmt.Errorf("bgp: dampening enabled with no penalties")
	case d.WithdrawPenalty < 0 || d.UpdatePenalty < 0:
		return fmt.Errorf("bgp: negative dampening penalty")
	case d.SuppressThreshold <= 0:
		return fmt.Errorf("bgp: non-positive suppress threshold")
	case d.ReuseThreshold <= 0 || d.ReuseThreshold >= d.SuppressThreshold:
		return fmt.Errorf("bgp: reuse threshold must be in (0, suppress)")
	case d.HalfLife <= 0:
		return fmt.Errorf("bgp: non-positive dampening half-life")
	case d.MaxSuppress < d.HalfLife:
		return fmt.Errorf("bgp: MaxSuppress below HalfLife")
	}
	return nil
}

// ceiling returns the maximum penalty value implied by MaxSuppress: a
// penalty at the ceiling decays to ReuseThreshold in exactly MaxSuppress.
func (d *Dampening) ceiling() float64 {
	return d.ReuseThreshold * math.Exp2(float64(d.MaxSuppress)/float64(d.HalfLife))
}

// dampState tracks the flap history of one (neighbor slot, prefix) pair.
type dampState struct {
	penalty    float64
	lastDecay  des.Time
	suppressed bool
	// reuseScheduled guards against duplicate reuse-evaluation events.
	reuseScheduled bool
}

// decayedPenalty returns the penalty decayed to now and stores it.
func (s *dampState) decayedPenalty(now des.Time, halfLife des.Time) float64 {
	if s.penalty > 0 && now > s.lastDecay {
		s.penalty *= math.Exp2(-float64(now-s.lastDecay) / float64(halfLife))
	}
	s.lastDecay = now
	return s.penalty
}

// recordFlap applies a flap penalty at nd's slot for prefix f and returns
// whether the suppression state changed. Caller re-runs the decision
// process if it did.
func (net *Network) recordFlap(nd *node, slot int32, f Prefix, add float64) (changed bool) {
	d := &net.cfg.Dampening
	ps := nd.state(f)
	if ps.damp == nil {
		ps.damp = make([]dampState, len(nd.nbrIDs))
	}
	s := &ps.damp[slot]
	now := nd.sh.sched.Now()
	p := s.decayedPenalty(now, d.HalfLife) + add
	if ceil := d.ceiling(); p > ceil {
		p = ceil
	}
	s.penalty = p
	if !s.suppressed && p >= d.SuppressThreshold {
		s.suppressed = true
		nd.suppressions++
		net.scheduleReuse(nd, slot, f, s)
		return true
	}
	return false
}

// scheduleReuse arms the event that re-evaluates a suppressed route when
// its penalty should have decayed to the reuse threshold.
func (net *Network) scheduleReuse(nd *node, slot int32, f Prefix, s *dampState) {
	if s.reuseScheduled {
		return
	}
	d := &net.cfg.Dampening
	// Solve penalty * 2^(-t/halfLife) = reuse for t.
	ratio := s.penalty / d.ReuseThreshold
	if ratio <= 1 {
		ratio = 1.0001
	}
	wait := des.Time(float64(d.HalfLife) * math.Log2(ratio))
	if wait < des.Second {
		wait = des.Second
	}
	s.reuseScheduled = true
	nd.sh.sched.After(wait, &reuseEvent{sh: nd.sh, node: nd.id, slot: slot, prefix: f})
}

// reuseEvent re-evaluates one suppressed (neighbor, prefix) route.
type reuseEvent struct {
	sh     *netShard
	node   topology.NodeID
	slot   int32
	prefix Prefix
}

// Fire unsuppresses the route if its penalty has decayed below the reuse
// threshold, otherwise reschedules.
func (e *reuseEvent) Fire(*des.Scheduler) {
	net := e.sh.net
	nd := &net.nodes[e.node]
	ps, ok := nd.prefixes.Get(e.prefix)
	if !ok || ps.damp == nil {
		return
	}
	s := &ps.damp[e.slot]
	s.reuseScheduled = false
	if !s.suppressed {
		return
	}
	d := &net.cfg.Dampening
	if s.decayedPenalty(e.sh.sched.Now(), d.HalfLife) < d.ReuseThreshold {
		s.suppressed = false
		net.applyDecision(nd, e.prefix, ps)
		return
	}
	net.scheduleReuse(nd, e.slot, e.prefix, s)
}

// suppressedAt reports whether the route from slot is currently dampened.
func (ps *prefixState) suppressedAt(slot int) bool {
	return ps.damp != nil && ps.damp[slot].suppressed
}

// Suppressions returns how many times node id suppressed a route since the
// last ResetCounters (0 unless dampening is enabled).
func (net *Network) Suppressions(id topology.NodeID) uint64 {
	return net.nodes[id].suppressions
}
