package bgp

import "sort"

// prefixMap is a Prefix-keyed map with an inline fast path for the dominant
// workload of the paper's experiments: exactly one prefix per C-event. The
// first entry lives in an inline slot — no map allocation, no hashing. The
// moment a second distinct key appears, entries spill into a real map,
// which then stays authoritative for the rest of the container's life
// (Clear empties it but keeps it allocated so Network.Reset reuses the
// storage).
//
// The zero value is an empty, ready-to-use map.
type prefixMap[V any] struct {
	key Prefix
	val V
	has bool
	m   map[Prefix]V
}

// Len returns the number of entries.
func (pm *prefixMap[V]) Len() int {
	if pm.m != nil {
		return len(pm.m)
	}
	if pm.has {
		return 1
	}
	return 0
}

// Get returns the value for f and whether it is present.
func (pm *prefixMap[V]) Get(f Prefix) (V, bool) {
	if pm.m != nil {
		v, ok := pm.m[f]
		return v, ok
	}
	if pm.has && pm.key == f {
		return pm.val, true
	}
	var zero V
	return zero, false
}

// Set inserts or replaces the value for f.
func (pm *prefixMap[V]) Set(f Prefix, v V) {
	if pm.m != nil {
		pm.m[f] = v
		return
	}
	if !pm.has || pm.key == f {
		pm.key, pm.val, pm.has = f, v, true
		return
	}
	// Second distinct key: spill to a real map.
	pm.m = make(map[Prefix]V, 2)
	pm.m[pm.key] = pm.val
	pm.m[f] = v
	var zero V
	pm.val, pm.has = zero, false
}

// Delete removes the entry for f, if present.
func (pm *prefixMap[V]) Delete(f Prefix) {
	if pm.m != nil {
		delete(pm.m, f)
		return
	}
	if pm.has && pm.key == f {
		var zero V
		pm.val, pm.has = zero, false
	}
}

// Clear removes every entry. A spilled map is kept allocated for reuse.
func (pm *prefixMap[V]) Clear() {
	if pm.m != nil {
		clear(pm.m)
	}
	var zero V
	pm.val, pm.has = zero, false
}

// SortedKeysInto appends the keys in ascending order to buf[:0] and returns
// it, growing buf only when it is too small. The single-entry fast path
// performs no sorting.
func (pm *prefixMap[V]) SortedKeysInto(buf []Prefix) []Prefix {
	buf = buf[:0]
	if pm.m != nil {
		for f := range pm.m {
			buf = append(buf, f)
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		return buf
	}
	if pm.has {
		buf = append(buf, pm.key)
	}
	return buf
}

// ForEach calls fn for every entry in unspecified order. Callers that need
// determinism must use SortedKeysInto instead. fn must not mutate the map.
func (pm *prefixMap[V]) ForEach(fn func(Prefix, V)) {
	if pm.m != nil {
		for f, v := range pm.m {
			fn(f, v)
		}
		return
	}
	if pm.has {
		fn(pm.key, pm.val)
	}
}
