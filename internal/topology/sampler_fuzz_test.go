package topology

import (
	"testing"

	"bgpchurn/internal/rng"
)

// FuzzWeightedSampler differential-tests the Fenwick sampler against the
// linear-scan model (samplerModel, the weightedPick semantics) under an
// arbitrary op stream: inserts with fuzzer-chosen region sets and weights
// — including weight zero — weight growth, redundant exclusions, and draws
// under fuzzer-chosen region queries. Before every draw the eligible
// totals must agree (so both sides consume one Intn of the same bound from
// lockstep RNG streams), and the picks must be identical; a draw ends the
// exclusion round on both sides.
//
// Op encoding, one byte plus operands (truncated operands end the stream):
//
//	op%4 == 0: insert   — operands regionByte (low 4 bits, 0 -> region 0
//	                      only) and weightByte (weight = byte%4)
//	op%4 == 1: addWeight — operands nodeByte (mod inserted count) and
//	                      deltaByte (delta = 1 + byte%3)
//	op%4 == 2: exclude  — operand nodeByte (mod inserted count)
//	op%4 == 3: draw     — operand regionByte; compares totals and picks,
//	                      then restores both sides
func FuzzWeightedSampler(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 3, 3, 1})                       // one node, one draw
	f.Add([]byte{0, 1, 0, 0, 3, 2, 3, 1, 3, 3})        // zero-weight member
	f.Add([]byte{0, 1, 2, 0, 2, 3, 2, 0, 2, 0, 3, 3})  // redundant exclusion
	f.Add([]byte{0, 15, 3, 0, 1, 3, 1, 0, 2, 3, 2, 3}) // mixed region sets
	f.Fuzz(func(t *testing.T, data []byte) {
		const cap = 48
		s := newPASampler(cap, cap)
		m := newSamplerModel()
		seed := uint64(len(data)) + 1
		rS, rM := rng.New(seed), rng.New(seed)
		regionSet := func(b byte) RegionSet {
			rs := RegionSet(b & 0x0f)
			if rs == 0 {
				rs = RegionSet(0).Add(0)
			}
			return rs
		}
		n := 0
		i := 0
		for i < len(data) {
			op := data[i]
			i++
			switch op % 4 {
			case 0: // insert
				if i+1 >= len(data) || n >= cap {
					i += 2
					continue
				}
				rs := regionSet(data[i])
				w := int64(data[i+1] % 4)
				i += 2
				s.insert(NodeID(n), rs, w)
				m.insert(NodeID(n), rs, w)
				n++
			case 1: // addWeight
				if i+1 >= len(data) || n == 0 {
					i += 2
					continue
				}
				id := NodeID(int(data[i]) % n)
				d := int64(1 + data[i+1]%3)
				i += 2
				s.addWeight(id, d)
				m.addWeight(id, d)
			case 2: // exclude
				if i >= len(data) || n == 0 {
					i++
					continue
				}
				id := NodeID(int(data[i]) % n)
				i++
				s.exclude(id)
				m.excluded[id] = true
			case 3: // draw, then end the exclusion round
				if i >= len(data) {
					continue
				}
				q := regionSet(data[i])
				i++
				if st, mt := samplerTotal(s, q), m.total(q); st != mt {
					t.Fatalf("eligible total diverges for query %v: sampler %d, model %d", q, st, mt)
				}
				if got, want := s.draw(rS, q), m.draw(rM, q); got != want {
					t.Fatalf("draw diverges for query %v: sampler %v, model %v", q, got, want)
				}
				s.restoreAll()
				for id := range m.excluded {
					delete(m.excluded, id)
				}
			}
		}
		// The streams must have consumed the same number of draws.
		if a, b := rS.Intn(1<<30), rM.Intn(1<<30); a != b {
			t.Fatalf("RNG streams desynchronized: %d vs %d", a, b)
		}
	})
}
