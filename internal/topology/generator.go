package topology

import (
	"fmt"
	"time"

	"bgpchurn/internal/rng"

	"bgpchurn/internal/obs"
)

// Generate builds a topology per the paper's two-phase procedure: first the
// T clique and the transit hierarchy top-down (T, then M one at a time,
// then the stubs), then the peering links. All provider and M-M peer
// selections use preferential attachment; CP peering is uniform. The
// invariants enforced are: no provider loops (guaranteed by construction:
// providers are always chosen among earlier nodes), region-constrained
// connectivity, simple graph (no parallel links), and no peering between a
// node and a member of its customer tree.
//
// Selection runs on the Fenwick-indexed samplers (sampler.go): every pick
// consumes exactly one Intn with the same total as the retained linear
// scan, so the output is byte-identical to GenerateLinear — the gen_equiv
// differential tier proves it per scenario.
func Generate(p Params) (*Topology, error) { return generate(p, false) }

// GenerateLinear is the retained O(n²) linear-scan generator, kept as the
// draw-sequence oracle for the differential and fuzz tiers (and for
// before/after benchmarking). Same inputs, byte-identical output.
func GenerateLinear(p Params) (*Topology, error) { return generate(p, true) }

func generate(p Params, linear bool) (*Topology, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Probes are resolved up front so the uninstrumented path pays one
	// atomic load per call and never touches the wall clock.
	var start time.Time
	var pt phaseTimer
	probes := genProbes.Load()
	if probes != nil {
		start = time.Now()
		pt.enabled, pt.last = true, start
	}
	g := &builder{
		p:      p,
		r:      rng.New(p.Seed),
		topo:   &Topology{NumRegions: p.Regions, Seed: p.Seed},
		edges:  make(map[uint64]struct{}, p.N*4),
		linear: linear,
	}
	g.addTClique()
	if !linear {
		g.initSamplers()
	}
	pt.lap(obs.PhaseClique)
	g.addMNodes(p.NM)
	pt.lap(obs.PhaseMNodes)
	g.addStubs(CP, p.NCP, p.DCP, p.TCP, p.CPSpread)
	g.addStubs(C, p.NC, p.DC, p.TC, 0)
	pt.lap(obs.PhaseStubs)
	g.prepareCones()
	pt.lap(obs.PhaseCones)
	g.addMPeering()
	pt.lap(obs.PhaseMPeering)
	g.addCPPeering()
	pt.lap(obs.PhaseCPPeering)
	if probes != nil {
		instrumentGen(probes, start, g.topo.N(), len(g.edges), &pt)
	}
	return g.topo, nil
}

// MustGenerate is Generate for known-valid parameters; it panics on error.
// Intended for tests and benchmarks.
func MustGenerate(p Params) *Topology {
	t, err := Generate(p)
	if err != nil {
		panic(fmt.Sprintf("topology: %v", err))
	}
	return t
}

// samplers bundles the accelerated selection structures. Nil on the linear
// path; built by initSamplers once the tier-1 clique (Generate) or the
// cloned prefix (Grow) is in place.
type samplers struct {
	// transitT/transitM index the provider classes by transitDegree+1 for
	// the preferential-attachment picks of connectProviders.
	transitT *paSampler
	transitM *paSampler
	// peerM indexes M nodes by peerDegree+1; built at the start of the M-M
	// peering phase (both phases' degree bases are frozen until then).
	peerM *paSampler
	// mBuckets/cpBuckets are the region-bucketed uniform candidate pools
	// for CP peering; built at the start of that phase.
	mBuckets  *regionBuckets
	cpBuckets *regionBuckets
}

type builder struct {
	p    Params
	r    *rng.Source
	topo *Topology
	// edges holds every existing link (transit or peer) keyed by the
	// canonical pair encoding, to keep the graph simple.
	edges map[uint64]struct{}
	// transitDegree is the preferential-attachment weight basis for
	// provider selection (providers + customers, peers excluded).
	transitDegree []int
	// peerDegree is the PA weight basis for M-M peer selection.
	peerDegree []int
	// mIDs caches the IDs of M nodes in creation order.
	mIDs []NodeID
	// cpIDs caches the IDs of CP nodes in creation order.
	cpIDs []NodeID
	// linear selects the retained linear-scan oracle path: dense cone
	// bitsets and two-pass weightedPick scans instead of samp/coneSets.
	linear bool
	// samp holds the Fenwick samplers and region buckets (nil when linear).
	samp *samplers
	// cones[v] is the customer cone of v as a dense bitset over node IDs
	// (linear path only), computed once after the transit phase and only
	// for nodes that participate in peering (M and CP).
	cones [][]uint64
	// coneSets are the shared size-adaptive cones (accelerated path only).
	coneSets []coneSet
	// ancMark/ancEpoch/ancStack are the scratch state of the transitive-
	// provider walk in excludeConeRelated; mMaskR, qMask and mProv are the
	// phase scratch built by prepareMPeeringScratch (per-region M-membership
	// bitmasks, the per-round OR of them, and M-only provider lists).
	ancMark  []uint32
	ancEpoch uint32
	ancStack []NodeID
	mMaskR   [][]uint64
	qMask    []uint64
	mProv    [][]NodeID
	// candScratch/eligScratch are reused across addUniformPeers calls.
	candScratch []NodeID
	eligScratch []NodeID
	// peerFromM/peerFromCP are the first indices of mIDs/cpIDs that the
	// peering phase draws links *for*. Generate leaves them at zero (every
	// node peers); Grow sets them past the pre-existing nodes, whose peering
	// is already in place — existing nodes still serve as candidates.
	peerFromM  int
	peerFromCP int
}

// initSamplers builds the provider-class samplers over the nodes that exist
// so far: the full T clique, and (on the Grow path) the pre-existing M
// nodes with their reconstructed degrees. Later M nodes are inserted by
// addMNodes as they finish their own provider round.
func (g *builder) initSamplers() {
	s := &samplers{
		transitT: newPASampler(g.p.N, g.p.NT),
		transitM: newPASampler(g.p.N, g.p.NM),
	}
	for t := NodeID(0); int(t) < g.p.NT; t++ {
		s.transitT.insert(t, g.topo.Nodes[t].Regions, int64(g.transitDegree[t]+1))
	}
	for _, m := range g.mIDs {
		s.transitM.insert(m, g.topo.Nodes[m].Regions, int64(g.transitDegree[m]+1))
	}
	g.samp = s
}

// prepareCones materializes the customer cones needed by the peering
// phase's tree-membership tests.
func (g *builder) prepareCones() {
	if g.linear {
		g.prepareConesDense()
		return
	}
	g.prepareConesShared()
}

// prepareConesDense is the oracle-path cone builder: a per-node DFS into a
// dense n-bit set for all M and CP nodes. O(n²) time and O(n²/64) bytes —
// the costs prepareConesShared removes.
func (g *builder) prepareConesDense() {
	n := len(g.topo.Nodes)
	words := (n + 63) / 64
	g.cones = make([][]uint64, n)
	var stack []NodeID
	for i := range g.topo.Nodes {
		nd := &g.topo.Nodes[i]
		if nd.Type != M && nd.Type != CP {
			continue
		}
		bits := make([]uint64, words)
		stack = append(stack[:0], nd.Customers...)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if bits[u/64]&(1<<(uint(u)%64)) != 0 {
				continue
			}
			bits[u/64] |= 1 << (uint(u) % 64)
			stack = append(stack, g.topo.Nodes[u].Customers...)
		}
		g.cones[i] = bits
	}
}

// inTree reports whether d is in a's precomputed customer cone.
func (g *builder) inTree(a, d NodeID) bool {
	if g.linear {
		bits := g.cones[a]
		return bits != nil && bits[d/64]&(1<<(uint(d)%64)) != 0
	}
	return g.coneSets[a].contains(d)
}

func edgeKey(a, b NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func (g *builder) adjacent(a, b NodeID) bool {
	_, ok := g.edges[edgeKey(a, b)]
	return ok
}

func (g *builder) newNode(typ NodeType, regions RegionSet) NodeID {
	id := NodeID(len(g.topo.Nodes))
	g.topo.Nodes = append(g.topo.Nodes, Node{ID: id, Type: typ, Regions: regions})
	g.transitDegree = append(g.transitDegree, 0)
	g.peerDegree = append(g.peerDegree, 0)
	return id
}

func (g *builder) allRegions() RegionSet {
	var s RegionSet
	for i := 0; i < g.p.Regions; i++ {
		s = s.Add(i)
	}
	return s
}

// pickRegions draws the region set for a new node: one uniform region, plus
// a second distinct one with probability spread.
func (g *builder) pickRegions(spread float64) RegionSet {
	first := g.r.Intn(g.p.Regions)
	s := RegionSet(0).Add(first)
	if g.p.Regions > 1 && g.r.Bernoulli(spread) {
		second := g.r.Intn(g.p.Regions - 1)
		if second >= first {
			second++
		}
		s = s.Add(second)
	}
	return s
}

func (g *builder) addTransitLink(provider, customer NodeID) {
	g.topo.Nodes[provider].Customers = append(g.topo.Nodes[provider].Customers, customer)
	g.topo.Nodes[customer].Providers = append(g.topo.Nodes[customer].Providers, provider)
	g.edges[edgeKey(provider, customer)] = struct{}{}
	g.transitDegree[provider]++
	g.transitDegree[customer]++
	if g.samp != nil {
		// Each endpoint lives in at most one of the two provider samplers;
		// addWeight ignores non-members, so both are told unconditionally.
		g.samp.transitT.addWeight(provider, 1)
		g.samp.transitM.addWeight(provider, 1)
		g.samp.transitT.addWeight(customer, 1)
		g.samp.transitM.addWeight(customer, 1)
	}
}

func (g *builder) addPeerLink(a, b NodeID) {
	g.topo.Nodes[a].Peers = append(g.topo.Nodes[a].Peers, b)
	g.topo.Nodes[b].Peers = append(g.topo.Nodes[b].Peers, a)
	g.edges[edgeKey(a, b)] = struct{}{}
	g.peerDegree[a]++
	g.peerDegree[b]++
	if g.samp != nil && g.samp.peerM != nil {
		g.samp.peerM.addWeight(a, 1)
		g.samp.peerM.addWeight(b, 1)
	}
}

// addTClique creates the tier-1 nodes, present in all regions and fully
// meshed with peering links.
func (g *builder) addTClique() {
	all := g.allRegions()
	for i := 0; i < g.p.NT; i++ {
		g.newNode(T, all)
	}
	for a := NodeID(0); int(a) < g.p.NT; a++ {
		for b := a + 1; int(b) < g.p.NT; b++ {
			g.addPeerLink(a, b)
		}
	}
}

// addMNodes adds count mid-level providers one at a time. Each picks an
// average of DM providers among T nodes (probability TM per slot) and
// already-present M nodes, by preferential attachment on transit degree.
func (g *builder) addMNodes(count int) {
	for i := 0; i < count; i++ {
		id := g.newNode(M, g.pickRegions(g.p.MSpread))
		g.mIDs = append(g.mIDs, id)
		g.connectProviders(id, g.p.DM, g.p.TM, g.p.MaxTProvidersPerM, g.p.MaxMProviders)
		if g.samp != nil {
			// Insert after the node's own provider round: the linear scan
			// excludes the node from its own candidate set (m == id), and a
			// node absent from the sampler is excluded for free.
			g.samp.transitM.insert(id, g.topo.Nodes[id].Regions, int64(g.transitDegree[id]+1))
		}
	}
}

// addStubs adds NCP or NC stub nodes with the given multihoming degree and
// T-provider probability.
func (g *builder) addStubs(typ NodeType, count int, mhd, probT, spread float64) {
	for i := 0; i < count; i++ {
		id := g.newNode(typ, g.pickRegions(spread))
		if typ == CP {
			g.cpIDs = append(g.cpIDs, id)
		}
		g.connectProviders(id, mhd, probT, Unlimited, g.p.MaxMProviders)
	}
}

// connectProviders attaches the new node to ~mhd providers. Each slot is a
// T node with probability probT and an M node otherwise, subject to the
// per-type caps; an empty or exhausted M candidate set falls back to T
// (tier-1 nodes are present in every region, so the graph stays connected).
//
// On the accelerated path, neighbor exclusion is incremental: id is brand
// new, so its only neighbors are the providers accepted earlier in this
// same round — each accepted provider is excluded from its sampler, and
// restoreAll reinstates everything when the round ends.
func (g *builder) connectProviders(id NodeID, mhd, probT float64, maxT, maxM int) {
	want := g.r.CountAroundMean(mhd, 1)
	nT, nM := 0, 0
	for s := 0; s < want; s++ {
		pickT := g.r.Bernoulli(probT)
		if maxT != Unlimited && nT >= maxT {
			pickT = false
		}
		if maxM != Unlimited && nM >= maxM {
			if maxT != Unlimited && nT >= maxT {
				break // both classes capped: no further providers possible
			}
			pickT = true
		}
		var prov NodeID
		if pickT {
			prov = g.pickTProvider(id)
		} else {
			prov = g.pickMProvider(id)
			if prov == None {
				if maxT != Unlimited && nT >= maxT {
					continue
				}
				prov = g.pickTProvider(id) // fall back to tier-1
			}
		}
		if prov == None {
			continue
		}
		if g.topo.Nodes[prov].Type == T {
			nT++
		} else {
			nM++
		}
		g.addTransitLink(prov, id)
		if g.samp != nil {
			g.samp.transitT.exclude(prov)
			g.samp.transitM.exclude(prov)
		}
	}
	if g.samp != nil {
		g.samp.transitT.restoreAll()
		g.samp.transitM.restoreAll()
	}
}

// pickTProvider selects a tier-1 provider by preferential attachment on
// transit degree, excluding existing neighbors of id.
func (g *builder) pickTProvider(id NodeID) NodeID {
	if g.samp != nil {
		return g.samp.transitT.draw(g.r, g.topo.Nodes[id].Regions)
	}
	return g.weightedPick(func(yield func(NodeID, int)) {
		for t := NodeID(0); int(t) < g.p.NT; t++ {
			if !g.adjacent(t, id) {
				yield(t, g.transitDegree[t]+1)
			}
		}
	})
}

// pickMProvider selects an existing M provider sharing a region with id, by
// preferential attachment on transit degree.
func (g *builder) pickMProvider(id NodeID) NodeID {
	regions := g.topo.Nodes[id].Regions
	if g.samp != nil {
		return g.samp.transitM.draw(g.r, regions)
	}
	return g.weightedPick(func(yield func(NodeID, int)) {
		for _, m := range g.mIDs {
			if m == id || !g.topo.Nodes[m].Regions.Overlaps(regions) || g.adjacent(m, id) {
				continue
			}
			yield(m, g.transitDegree[m]+1)
		}
	})
}

// weightedPick draws one candidate with probability proportional to its
// weight, in two passes over the candidate enumeration (total weight, then
// selection), so no candidate slice is materialized. Returns None if the
// candidate set is empty. This is the linear-scan oracle the Fenwick
// samplers are differential-tested against.
func (g *builder) weightedPick(enumerate func(yield func(NodeID, int))) NodeID {
	total := 0
	enumerate(func(_ NodeID, w int) { total += w })
	if total == 0 {
		return None
	}
	target := g.r.Intn(total)
	chosen := None
	acc := 0
	enumerate(func(id NodeID, w int) {
		if chosen != None {
			return
		}
		acc += w
		if target < acc {
			chosen = id
		}
	})
	return chosen
}

// peeringAllowed checks the peering invariants for a candidate pair:
// distinct, region-overlapping, not already linked, and neither node in the
// other's customer tree (a node never peers into its own revenue tree).
func (g *builder) peeringAllowed(a, b NodeID) bool {
	if a == b || g.adjacent(a, b) {
		return false
	}
	if !g.topo.Nodes[a].Regions.Overlaps(g.topo.Nodes[b].Regions) {
		return false
	}
	if g.inTree(a, b) || g.inTree(b, a) {
		return false
	}
	return true
}

// addMPeering gives each M node from index peerFromM on ~PM peering links
// to other M nodes chosen by preferential attachment on peering degree.
func (g *builder) addMPeering() {
	if !g.linear {
		g.addMPeeringFast()
		return
	}
	for _, a := range g.mIDs[g.peerFromM:] {
		want := g.r.CountAroundMean(g.p.PM, 0)
		for s := 0; s < want; s++ {
			b := g.weightedPick(func(yield func(NodeID, int)) {
				for _, m := range g.mIDs {
					if g.peeringAllowed(a, m) {
						yield(m, g.peerDegree[m]+1)
					}
				}
			})
			if b == None {
				break // no eligible peer remains for a
			}
			g.addPeerLink(a, b)
		}
	}
}

// addMPeeringFast is addMPeering on a peerDegree+1 Fenwick sampler. Per M
// node a, the peeringAllowed rejections are pre-excluded once — a itself,
// its neighbors, its cone, its transitive providers — then each accepted
// link only excludes the new peer; one round of exclusions serves all ~PM
// slots, whose draws differ only by the nodes linked in between.
func (g *builder) addMPeeringFast() {
	s := newPASampler(g.p.N, len(g.mIDs))
	for _, m := range g.mIDs {
		s.insert(m, g.topo.Nodes[m].Regions, int64(g.peerDegree[m]+1))
	}
	g.samp.peerM = s
	g.prepareMPeeringScratch()
	for _, a := range g.mIDs[g.peerFromM:] {
		want := g.r.CountAroundMean(g.p.PM, 0)
		if want == 0 {
			continue
		}
		nd := &g.topo.Nodes[a]
		q := nd.Regions
		qMask := g.buildQMask(q)
		s.exclude(a)
		for _, x := range nd.Providers {
			if g.topo.Nodes[x].Regions.Overlaps(q) {
				s.exclude(x)
			}
		}
		for _, x := range nd.Customers {
			if g.topo.Nodes[x].Regions.Overlaps(q) {
				s.exclude(x)
			}
		}
		for _, x := range nd.Peers {
			if g.topo.Nodes[x].Regions.Overlaps(q) {
				s.exclude(x)
			}
		}
		g.excludeConeRelated(a, q, qMask, s)
		for k := 0; k < want; k++ {
			b := s.draw(g.r, nd.Regions)
			if b == None {
				break // no eligible peer remains for a
			}
			g.addPeerLink(a, b)
			s.exclude(b)
		}
		s.restoreAll()
	}
}

// addCPPeering gives each CP node from index peerFromCP on ~PCPM peering
// links to M nodes and ~PCPCP links to other CP nodes, selected uniformly
// within its regions.
func (g *builder) addCPPeering() {
	var mb, cpb *regionBuckets
	if !g.linear {
		mb = newRegionBuckets(g.p.Regions, g.mIDs, g.topo.Nodes)
		cpb = newRegionBuckets(g.p.Regions, g.cpIDs, g.topo.Nodes)
		g.samp.mBuckets, g.samp.cpBuckets = mb, cpb
	}
	for _, a := range g.cpIDs[g.peerFromCP:] {
		g.addUniformPeers(a, g.mIDs, mb, g.p.PCPM)
		g.addUniformPeers(a, g.cpIDs, cpb, g.p.PCPCP)
	}
}

// addUniformPeers links a to ~mean uniformly chosen eligible candidates.
// With buckets, only region-overlapping pool members are enumerated; the
// bucket merge yields them in pool order, so the eligible slice — and
// every Intn index into it — matches the full-pool scan exactly.
func (g *builder) addUniformPeers(a NodeID, pool []NodeID, buckets *regionBuckets, mean float64) {
	want := g.r.CountAroundMean(mean, 0)
	if want == 0 {
		return
	}
	// Collect the eligible candidates once; uniform selection without
	// replacement by partial shuffle.
	var eligible []NodeID
	if buckets != nil {
		// Bucket members already overlap a's regions; adjacency is tested
		// via epoch marks on a's neighbor lists instead of a hash lookup
		// per candidate (the lists and the edge map are kept in sync, so
		// the answers are identical).
		nd := &g.topo.Nodes[a]
		g.ancEpoch++
		if g.ancEpoch == 0 {
			for i := range g.ancMark {
				g.ancMark[i] = 0
			}
			g.ancEpoch = 1
		}
		for _, x := range nd.Providers {
			g.ancMark[x] = g.ancEpoch
		}
		for _, x := range nd.Customers {
			g.ancMark[x] = g.ancEpoch
		}
		for _, x := range nd.Peers {
			g.ancMark[x] = g.ancEpoch
		}
		g.candScratch = buckets.candidates(nd.Regions, g.candScratch[:0])
		eligible = g.eligScratch[:0]
		for _, c := range g.candScratch {
			if c == a || g.ancMark[c] == g.ancEpoch {
				continue
			}
			if g.inTree(a, c) || g.inTree(c, a) {
				continue
			}
			eligible = append(eligible, c)
		}
		g.eligScratch = eligible
	} else {
		eligible = make([]NodeID, 0, 16)
		for _, c := range pool {
			if g.peeringAllowed(a, c) {
				eligible = append(eligible, c)
			}
		}
	}
	for s := 0; s < want && len(eligible) > 0; s++ {
		i := g.r.Intn(len(eligible))
		b := eligible[i]
		eligible[i] = eligible[len(eligible)-1]
		eligible = eligible[:len(eligible)-1]
		// Re-check: an earlier link this round may have made b adjacent.
		if g.peeringAllowed(a, b) {
			g.addPeerLink(a, b)
		}
	}
}
