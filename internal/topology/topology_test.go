package topology

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// baselineParams mirrors the paper's Table 1 for tests. The scenario
// package owns the canonical version; duplicating it here keeps this
// package's tests self-contained.
func baselineParams(n int, seed uint64) Params {
	fn := float64(n)
	nT := 5
	nM := int(0.15 * fn)
	nCP := int(0.05 * fn)
	return Params{
		N: n, Regions: 5, Seed: seed,
		NT: nT, NM: nM, NCP: nCP, NC: n - nT - nM - nCP,
		DM: 2 + 2.5*fn/10000, DCP: 2 + 1.5*fn/10000, DC: 1 + 5*fn/100000,
		PM: 1 + 2*fn/10000, PCPM: 0.2 + 2*fn/10000, PCPCP: 0.05 + 5*fn/100000,
		TM: 0.375, TCP: 0.375, TC: 0.125,
		MaxTProvidersPerM: Unlimited, MaxMProviders: Unlimited,
		MSpread: 0.2, CPSpread: 0.05,
	}
}

func TestGenerateBaselineValid(t *testing.T) {
	topo := MustGenerate(baselineParams(1000, 1))
	if err := topo.Validate(); err != nil {
		t.Fatalf("baseline topology invalid: %v", err)
	}
	counts := topo.CountByType()
	if counts[T] != 5 || counts[M] != 150 || counts[CP] != 50 || counts[C] != 795 {
		t.Fatalf("node mix = %v", counts)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := baselineParams(500, 42)
	a := MustGenerate(p)
	b := MustGenerate(p)
	var bufA, bufB bytes.Buffer
	if _, err := a.WriteTo(&bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same seed produced different topologies")
	}
	p.Seed = 43
	c := MustGenerate(p)
	var bufC bytes.Buffer
	if _, err := c.WriteTo(&bufC); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA.Bytes(), bufC.Bytes()) {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestGenerateMHDNearTarget(t *testing.T) {
	p := baselineParams(2000, 7)
	topo := MustGenerate(p)
	s := ComputeStats(topo, 0)
	// Per-type mean MHD should be close to the configured averages. The
	// provider-slot loop can drop slots only when candidates run out, which
	// is rare at this density, so a 10% tolerance is generous.
	if math.Abs(s.MeanMHD[M]-p.DM) > 0.1*p.DM {
		t.Errorf("mean M MHD %v, want ~%v", s.MeanMHD[M], p.DM)
	}
	if math.Abs(s.MeanMHD[CP]-p.DCP) > 0.1*p.DCP {
		t.Errorf("mean CP MHD %v, want ~%v", s.MeanMHD[CP], p.DCP)
	}
	if math.Abs(s.MeanMHD[C]-p.DC) > 0.1*p.DC {
		t.Errorf("mean C MHD %v, want ~%v", s.MeanMHD[C], p.DC)
	}
	if s.MeanMHD[T] != 0 {
		t.Errorf("T nodes have providers: %v", s.MeanMHD[T])
	}
}

func TestGenerateStructuralProperties(t *testing.T) {
	topo := MustGenerate(baselineParams(2000, 11))
	s := ComputeStats(topo, 200)
	// Paper §3: clustering ~0.15, far above a random graph's; path length
	// stays around 4. Use loose bands — these are qualitative properties.
	if s.Clustering < 0.05 {
		t.Errorf("clustering = %v, expected strong clustering (>0.05)", s.Clustering)
	}
	if s.AvgPathLength < 2.5 || s.AvgPathLength > 5.5 {
		t.Errorf("average path length = %v, expected ~4", s.AvgPathLength)
	}
	// Heavy-tailed degrees: the maximum degree should vastly exceed the mean.
	mean := 2 * float64(s.Transit+s.Peering) / float64(s.N)
	if float64(s.MaxDegree) < 5*mean {
		t.Errorf("max degree %d not heavy-tailed vs mean %v", s.MaxDegree, mean)
	}
	// The AS graph is disassortative: hubs attach to stubs.
	if s.Assortativity >= 0 {
		t.Errorf("assortativity = %v, expected negative (disassortative)", s.Assortativity)
	}
}

func TestGenerateTreeScenario(t *testing.T) {
	p := baselineParams(800, 3)
	p.DM, p.DCP, p.DC = 1, 1, 1
	topo := MustGenerate(p)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if n.Type != T && len(n.Providers) != 1 {
			t.Fatalf("TREE: node %d (%v) has %d providers", n.ID, n.Type, len(n.Providers))
		}
	}
}

func TestGenerateNoPeering(t *testing.T) {
	p := baselineParams(600, 5)
	p.PM, p.PCPM, p.PCPCP = 0, 0, 0
	topo := MustGenerate(p)
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if n.Type != T && len(n.Peers) != 0 {
			t.Fatalf("NO-PEERING: node %d (%v) has peers", n.ID, n.Type)
		}
	}
}

func TestGenerateProviderCaps(t *testing.T) {
	// PREFER-TOP style: at most one M provider anywhere.
	p := baselineParams(800, 9)
	p.MaxMProviders = 1
	topo := MustGenerate(p)
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		mProv := 0
		for _, pr := range n.Providers {
			if topo.Nodes[pr].Type == M {
				mProv++
			}
		}
		if mProv > 1 {
			t.Fatalf("node %d has %d M providers, cap is 1", n.ID, mProv)
		}
	}

	// PREFER-MIDDLE style: stubs never use T, M nodes at most one T provider.
	p = baselineParams(800, 13)
	p.TCP, p.TC = 0, 0
	p.MaxTProvidersPerM = 1
	topo = MustGenerate(p)
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		tProv := 0
		for _, pr := range n.Providers {
			if topo.Nodes[pr].Type == T {
				tProv++
			}
		}
		if n.Type == M && tProv > 1 {
			t.Fatalf("M node %d has %d T providers, cap is 1", n.ID, tProv)
		}
	}
}

func TestGenerateNoMiddle(t *testing.T) {
	// NO-MIDDLE: nM = 0; stubs must attach to T regardless of probT.
	p := baselineParams(400, 17)
	extra := p.NM
	p.NM = 0
	p.NC += extra
	topo := MustGenerate(p)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		for _, pr := range n.Providers {
			if topo.Nodes[pr].Type != T {
				t.Fatalf("NO-MIDDLE: node %d has non-T provider %d", n.ID, pr)
			}
		}
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.NT = 0 },
		func(p *Params) { p.NC = -1 },
		func(p *Params) { p.NC++ },
		func(p *Params) { p.Regions = 0 },
		func(p *Params) { p.Regions = 33 },
		func(p *Params) { p.DM = -1 },
		func(p *Params) { p.PM = -0.5 },
		func(p *Params) { p.TM = 1.5 },
		func(p *Params) { p.MSpread = 2 },
		func(p *Params) { p.MaxMProviders = -2 },
	}
	for i, mutate := range bad {
		p := baselineParams(100, 1)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	p := baselineParams(100, 1)
	if err := p.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	topo := MustGenerate(baselineParams(300, 21))
	var buf bytes.Buffer
	if _, err := topo.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != topo.N() || got.NumRegions != topo.NumRegions || got.Seed != topo.Seed {
		t.Fatal("metadata mismatch after round trip")
	}
	var buf2 bytes.Buffer
	if _, err := got.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	// Note: neighbor-list order inside a node may differ after Read, so
	// compare via Validate + relation spot checks rather than bytes.
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped topology invalid: %v", err)
	}
	for i := 0; i < topo.N(); i += 17 {
		for j := 1; j < topo.N(); j += 37 {
			a, b := NodeID(i), NodeID(j)
			if topo.Relation(a, b) != got.Relation(a, b) {
				t.Fatalf("relation %d-%d changed after round trip", a, b)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-a-topology\n",
		formatHeader + "\n",
		formatHeader + "\nmeta n=x regions=5 seed=0\n",
		formatHeader + "\nmeta n=2 regions=1 seed=0\nnode 5 T 1\n",
		formatHeader + "\nmeta n=2 regions=1 seed=0\nnode 0 X 1\n",
		formatHeader + "\nmeta n=2 regions=1 seed=0\ntransit 0 9\n",
		formatHeader + "\nmeta n=2 regions=1 seed=0\npeer 0 9\n",
		formatHeader + "\nmeta n=2 regions=1 seed=0\nfrobnicate 0 1\n",
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestInCustomerTree(t *testing.T) {
	// Hand-built: 0(T) -> 1(M) -> 2(C); 0 -> 3(C).
	topo := &Topology{NumRegions: 1, Nodes: []Node{
		{ID: 0, Type: T, Regions: 1, Customers: []NodeID{1, 3}},
		{ID: 1, Type: M, Regions: 1, Providers: []NodeID{0}, Customers: []NodeID{2}},
		{ID: 2, Type: C, Regions: 1, Providers: []NodeID{1}},
		{ID: 3, Type: C, Regions: 1, Providers: []NodeID{0}},
	}}
	if !topo.InCustomerTree(0, 2) {
		t.Fatal("2 should be in 0's customer tree")
	}
	if !topo.InCustomerTree(1, 2) {
		t.Fatal("2 should be in 1's customer tree")
	}
	if topo.InCustomerTree(1, 3) {
		t.Fatal("3 is not in 1's customer tree")
	}
	if topo.InCustomerTree(2, 0) {
		t.Fatal("customer tree is downward only")
	}
	if topo.InCustomerTree(0, 0) {
		t.Fatal("a node is not in its own customer tree")
	}
	if got := topo.CustomerConeSize(0); got != 3 {
		t.Fatalf("cone(0) = %d, want 3", got)
	}
	if got := topo.CustomerConeSize(2); got != 0 {
		t.Fatalf("cone(2) = %d, want 0", got)
	}
}

func TestRelationAndNeighbors(t *testing.T) {
	topo := MustGenerate(baselineParams(200, 31))
	var nb []Neighbor
	for i := range topo.Nodes {
		nb = topo.Neighbors(NodeID(i), nb[:0])
		n := &topo.Nodes[i]
		if len(nb) != n.Degree() {
			t.Fatalf("node %d: %d neighbors vs degree %d", i, len(nb), n.Degree())
		}
		for _, x := range nb {
			if topo.Relation(NodeID(i), x.ID) != x.Rel {
				t.Fatalf("node %d: relation mismatch for neighbor %d", i, x.ID)
			}
		}
	}
	if topo.Relation(0, 0) != NotConnected {
		t.Fatal("self relation should be NotConnected")
	}
}

func TestRelationInvert(t *testing.T) {
	if Customer.Invert() != Provider || Provider.Invert() != Customer {
		t.Fatal("customer/provider inversion broken")
	}
	if Peer.Invert() != Peer {
		t.Fatal("peer inversion broken")
	}
	if NotConnected.Invert() != NotConnected {
		t.Fatal("NotConnected inversion broken")
	}
}

func TestRegionSet(t *testing.T) {
	var s RegionSet
	s = s.Add(0).Add(3)
	if !s.HasRegion(0) || !s.HasRegion(3) || s.HasRegion(1) {
		t.Fatal("RegionSet membership broken")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if !s.Overlaps(RegionSet(0).Add(3)) {
		t.Fatal("overlap missed")
	}
	if s.Overlaps(RegionSet(0).Add(2)) {
		t.Fatal("false overlap")
	}
}

func TestNodeTypeStrings(t *testing.T) {
	for _, typ := range NodeTypes {
		if typ.String() == "" {
			t.Fatal("empty type string")
		}
	}
	if !T.IsTransit() || !M.IsTransit() || T.IsStub() {
		t.Fatal("transit classification broken")
	}
	if !CP.IsStub() || !C.IsStub() || C.IsTransit() {
		t.Fatal("stub classification broken")
	}
}

// Property: random parameter draws always yield a topology that passes the
// full invariant check.
func TestPropertyGeneratedTopologiesValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := 100 + int(seed%400)
		p := baselineParams(n, seed)
		// Vary knobs with the seed to cover corners.
		switch seed % 5 {
		case 1:
			p.DM, p.DCP, p.DC = 1, 1, 1
		case 2:
			p.PM *= 3
		case 3:
			p.MaxMProviders = 1
		case 4:
			p.Regions = 1
		}
		topo, err := Generate(p)
		if err != nil {
			return false
		}
		return topo.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounts(t *testing.T) {
	topo := MustGenerate(baselineParams(500, 2))
	s := ComputeStats(topo, 100)
	if s.N != 500 {
		t.Fatalf("N = %d", s.N)
	}
	transit, peering := topo.Edges()
	if s.Transit != transit || s.Peering != peering {
		t.Fatal("edge counts disagree with Edges()")
	}
	// The T clique alone contributes NT*(NT-1)/2 peering links.
	if s.Peering < 5*4/2 {
		t.Fatalf("peering count %d below T clique size", s.Peering)
	}
}

func BenchmarkGenerate1000(b *testing.B) {
	p := baselineParams(1000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)
		_ = MustGenerate(p)
	}
}

func BenchmarkGenerate5000(b *testing.B) {
	p := baselineParams(5000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)
		_ = MustGenerate(p)
	}
}
