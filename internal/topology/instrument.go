package topology

import (
	"sync/atomic"
	"time"

	"bgpchurn/internal/obs"
)

// genProbes is the package-wide probe block for Generate. Topology
// generation has no long-lived per-consumer object to hang probes on (it
// is a free function called from many goroutines), so the block lives in
// an atomic pointer: nil — the default — costs one atomic load per
// Generate call, nothing per node or edge.
var genProbes atomic.Pointer[obs.TopoProbes]

// SetObsProbes attaches (or, with nil, detaches) generation metrics.
// Typically called once per process by the binary that owns the metrics
// hub: SetObsProbes(m.NewTopoProbes()).
func SetObsProbes(p *obs.TopoProbes) { genProbes.Store(p) }

// phaseTimer splits one generation's wall time across the generator
// phases. Disabled (the zero value) every lap is a single branch; enabled,
// each lap reads the clock once and charges the elapsed interval to the
// finished phase.
type phaseTimer struct {
	enabled bool
	last    time.Time
	laps    [obs.GenPhaseCount]time.Duration
}

func (t *phaseTimer) lap(p obs.GenPhase) {
	if !t.enabled {
		return
	}
	now := time.Now()
	t.laps[p] = now.Sub(t.last)
	t.last = now
}

// instrumentGen records one successful generation (or growth step, with
// nodes/edges holding the delta). Phases with a zero lap — not executed,
// e.g. the clique phase on the Grow path — are not observed.
func instrumentGen(p *obs.TopoProbes, start time.Time, nodes, edges int, pt *phaseTimer) {
	p.Generated.Inc()
	p.Nodes.Add(uint64(nodes))
	p.Edges.Add(uint64(edges))
	p.ObserveGen(time.Since(start))
	for ph, d := range pt.laps {
		if d > 0 {
			p.ObservePhase(obs.GenPhase(ph), d)
		}
	}
}
