package topology

import (
	"sync/atomic"
	"time"

	"bgpchurn/internal/obs"
)

// genProbes is the package-wide probe block for Generate. Topology
// generation has no long-lived per-consumer object to hang probes on (it
// is a free function called from many goroutines), so the block lives in
// an atomic pointer: nil — the default — costs one atomic load per
// Generate call, nothing per node or edge.
var genProbes atomic.Pointer[obs.TopoProbes]

// SetObsProbes attaches (or, with nil, detaches) generation metrics.
// Typically called once per process by the binary that owns the metrics
// hub: SetObsProbes(m.NewTopoProbes()).
func SetObsProbes(p *obs.TopoProbes) { genProbes.Store(p) }

// instrumentGen records one successful generation.
func instrumentGen(p *obs.TopoProbes, start time.Time, nodes, edges int) {
	p.Generated.Inc()
	p.Nodes.Add(uint64(nodes))
	p.Edges.Add(uint64(edges))
	p.ObserveGen(time.Since(start))
}
