package topology

import (
	"fmt"
	"time"

	"bgpchurn/internal/obs"
	"bgpchurn/internal/rng"
)

// Grow extends an existing topology to the larger node mix of p without
// regenerating it: every node and link of t is preserved (same IDs, same
// relations), and only the delta nodes are attached, through the exact
// generation phases Generate runs — delta M nodes one at a time with
// preferential attachment, then delta CP and C stubs, then peering links for
// the new M and CP nodes. Existing nodes keep their peering (they still
// attract new links as candidates, so preferential attachment keeps acting
// on the grown part).
//
// Grow is the size-sweep primitive of the scalability experiments: a single
// structure grown n → n′ → n″ lets per-size measurements share their common
// core, and at the 100k scale it avoids regenerating (and revalidating) the
// expensive prefix repeatedly. Provider acyclicity is preserved by the same
// argument as in Generate: a new node's providers are always chosen among
// nodes that already exist, so every provider edge points from an
// earlier-created node to a later one.
//
// Requirements, beyond p.Validate(): the region count and tier-1 clique are
// frozen (p.Regions and p.NT must match t), and the per-type counts must be
// non-decreasing. The returned topology is fresh — t is never mutated, so
// engines holding it (and its cached CSR) stay valid.
func Grow(t *Topology, p Params) (*Topology, error) { return grow(t, p, false) }

// GrowLinear is Grow on the retained linear-scan oracle path; see
// GenerateLinear. Byte-identical output to Grow, proved by the gen_equiv
// and grow parity tiers.
func GrowLinear(t *Topology, p Params) (*Topology, error) { return grow(t, p, true) }

func grow(t *Topology, p Params, linear bool) (*Topology, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := t.CountByType()
	switch {
	case p.Regions != t.NumRegions:
		return nil, fmt.Errorf("topology: grow cannot change regions (%d -> %d)", t.NumRegions, p.Regions)
	case p.NT != c[T]:
		return nil, fmt.Errorf("topology: grow cannot change the tier-1 clique (NT %d -> %d)", c[T], p.NT)
	case p.NM < c[M] || p.NCP < c[CP] || p.NC < c[C]:
		return nil, fmt.Errorf("topology: grow requires non-decreasing node counts (M %d->%d, CP %d->%d, C %d->%d)",
			c[M], p.NM, c[CP], p.NCP, c[C], p.NC)
	}
	var start time.Time
	var pt phaseTimer
	probes := genProbes.Load()
	if probes != nil {
		start = time.Now()
		pt.enabled, pt.last = true, start
	}
	g := &builder{
		p:      p,
		r:      rng.New(p.Seed),
		topo:   cloneTopology(t),
		edges:  make(map[uint64]struct{}, p.N*4),
		linear: linear,
	}
	g.topo.Seed = p.Seed // provenance: the seed of the latest growth step
	// Reconstruct the builder's incremental state from the existing graph:
	// link set, preferential-attachment degree bases, and the per-type ID
	// lists in creation order (node IDs are assigned in creation order, so
	// an ID-order scan recovers it — also after a previous Grow).
	for i := range g.topo.Nodes {
		nd := &g.topo.Nodes[i]
		g.transitDegree = append(g.transitDegree, len(nd.Providers)+len(nd.Customers))
		g.peerDegree = append(g.peerDegree, len(nd.Peers))
		switch nd.Type {
		case M:
			g.mIDs = append(g.mIDs, nd.ID)
		case CP:
			g.cpIDs = append(g.cpIDs, nd.ID)
		}
		for _, cust := range nd.Customers {
			g.edges[edgeKey(nd.ID, cust)] = struct{}{}
		}
		for _, peer := range nd.Peers {
			g.edges[edgeKey(nd.ID, peer)] = struct{}{}
		}
	}
	g.peerFromM, g.peerFromCP = len(g.mIDs), len(g.cpIDs)
	preNodes, preEdges := len(g.topo.Nodes), len(g.edges)
	if !linear {
		g.initSamplers()
	}
	g.addMNodes(p.NM - c[M])
	pt.lap(obs.PhaseMNodes)
	g.addStubs(CP, p.NCP-c[CP], p.DCP, p.TCP, p.CPSpread)
	g.addStubs(C, p.NC-c[C], p.DC, p.TC, 0)
	pt.lap(obs.PhaseStubs)
	g.prepareCones()
	pt.lap(obs.PhaseCones)
	g.addMPeering()
	pt.lap(obs.PhaseMPeering)
	g.addCPPeering()
	pt.lap(obs.PhaseCPPeering)
	if probes != nil {
		// Counters record the delta this growth step created, not the
		// inherited prefix.
		instrumentGen(probes, start, g.topo.N()-preNodes, len(g.edges)-preEdges, &pt)
	}
	return g.topo, nil
}

// MustGrow is Grow for known-valid inputs; it panics on error. Intended for
// tests and benchmarks.
func MustGrow(t *Topology, p Params) *Topology {
	nt, err := Grow(t, p)
	if err != nil {
		panic(fmt.Sprintf("topology: %v", err))
	}
	return nt
}

// cloneTopology deep-copies t's graph into a fresh Topology (fresh neighbor
// slices, cold CSR cache). A Topology embeds a sync.Once and is shared by
// pointer, so growth must build a new value rather than copy or mutate.
func cloneTopology(t *Topology) *Topology {
	nt := &Topology{
		Nodes:      make([]Node, len(t.Nodes)),
		NumRegions: t.NumRegions,
		Seed:       t.Seed,
	}
	for i := range t.Nodes {
		src := &t.Nodes[i]
		nt.Nodes[i] = Node{
			ID:        src.ID,
			Type:      src.Type,
			Regions:   src.Regions,
			Providers: append([]NodeID(nil), src.Providers...),
			Customers: append([]NodeID(nil), src.Customers...),
			Peers:     append([]NodeID(nil), src.Peers...),
		}
	}
	return nt
}
