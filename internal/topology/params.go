package topology

import "fmt"

// Unlimited disables a provider-count cap in Params.
const Unlimited = -1

// Params are the generator inputs of Table 1, fully resolved for one
// network size n. The scenario package constructs Params for each growth
// model; tests may construct them directly.
type Params struct {
	// N is the total node count; NT+NM+NCP+NC must equal N.
	N int
	// Regions is the number of geographic regions (Baseline: 5).
	Regions int
	// Seed drives all generator randomness.
	Seed uint64

	// Node mix.
	NT  int // tier-1 nodes (Baseline: drawn 4–6 by the scenario layer)
	NM  int // mid-level transit providers
	NCP int // content-provider stubs
	NC  int // customer stubs

	// Average multihoming degree (number of providers) per type.
	DM  float64
	DCP float64
	DC  float64

	// Average peering degrees: M-M, CP-M and CP-CP.
	PM    float64
	PCPM  float64
	PCPCP float64

	// Probability that a provider slot is filled by a T node (vs an M node).
	TM  float64
	TCP float64
	TC  float64

	// MaxTProvidersPerM caps how many T providers an M node may have
	// (PREFER-MIDDLE sets 1). Unlimited disables the cap.
	MaxTProvidersPerM int
	// MaxMProviders caps how many M providers any node may have
	// (PREFER-TOP sets 1). Unlimited disables the cap.
	MaxMProviders int

	// MSpread and CPSpread are the fractions of M and CP nodes present in
	// two regions (Baseline: 0.20 and 0.05). T nodes are in all regions,
	// C nodes in exactly one.
	MSpread  float64
	CPSpread float64
}

// Validate reports whether the parameters are internally consistent.
func (p *Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("topology: N = %d, must be positive", p.N)
	case p.NT < 1:
		return fmt.Errorf("topology: NT = %d, need at least one tier-1 node", p.NT)
	case p.NM < 0 || p.NCP < 0 || p.NC < 0:
		return fmt.Errorf("topology: negative node counts (NM=%d NCP=%d NC=%d)", p.NM, p.NCP, p.NC)
	case p.NT+p.NM+p.NCP+p.NC != p.N:
		return fmt.Errorf("topology: node mix %d+%d+%d+%d != N=%d", p.NT, p.NM, p.NCP, p.NC, p.N)
	case p.Regions < 1 || p.Regions > 32:
		return fmt.Errorf("topology: Regions = %d, must be in [1,32]", p.Regions)
	case p.DM < 0 || p.DCP < 0 || p.DC < 0:
		return fmt.Errorf("topology: negative multihoming degree")
	case p.PM < 0 || p.PCPM < 0 || p.PCPCP < 0:
		return fmt.Errorf("topology: negative peering degree")
	case p.TM < 0 || p.TM > 1 || p.TCP < 0 || p.TCP > 1 || p.TC < 0 || p.TC > 1:
		return fmt.Errorf("topology: T-provider probabilities must be in [0,1]")
	case p.MSpread < 0 || p.MSpread > 1 || p.CPSpread < 0 || p.CPSpread > 1:
		return fmt.Errorf("topology: region spread fractions must be in [0,1]")
	case p.MaxTProvidersPerM < Unlimited || p.MaxMProviders < Unlimited:
		return fmt.Errorf("topology: provider caps must be Unlimited or >= 0")
	}
	return nil
}
