package topology

import "bgpchurn/internal/rng"

// paSampler is the accelerated preferential-attachment sampler: it draws
// one node from a candidate class (the tier-1 clique, or the M nodes) with
// probability proportional to a maintained per-node weight (degree+1),
// restricted to nodes whose region set overlaps a query set, with an
// explicit exclusion set (self, existing neighbors, customer-cone members)
// subtracted exactly.
//
// Draw-sequence equivalence with the linear scan it replaces
// (weightedPick) is the load-bearing property: a draw consumes exactly one
// rng.Intn(total) with the identical total (eligible weights minus excluded
// weights), and the selected node is the one where the cumulative weight —
// accumulated in class creation order over the same eligible set — first
// exceeds the drawn target. Both are achieved structurally:
//
//   - Candidates occupy dense positions in insertion (= creation) order.
//     One Fenwick tree exists per distinct RegionSet realized in the class;
//     every tree spans the full position space (positions belonging to
//     other sets hold weight zero), so a position-wise sum over the trees
//     whose set overlaps the query is exactly the prefix weight of the
//     region-eligible candidates in creation order.
//   - Exclusions are applied by temporarily zeroing the excluded node's
//     weight in its tree (exclude), drawing, then restoring (restoreAll).
//     Totals and prefix sums then match the linear scan's
//     skip-the-excluded enumeration term for term.
//
// The per-draw cost is O(sets·log cap) for the descent plus O(log cap) per
// excluded node, against the linear scan's O(class size) — the O(n²) term
// this file removes from generation.
type paSampler struct {
	cap  int // class capacity (positions), fixed at construction
	high int // highBit(cap), the descent's starting stride
	n    int // members inserted so far
	ids  []NodeID
	// posOf maps a NodeID to its class position, or -1. Indexed by node ID
	// over the full topology budget so membership tests are one load.
	posOf  []int32
	weight []int64 // authoritative per-position weight (tracked while excluded)
	treeOf []int32 // per-position index into sets/trees/totals
	sets   []RegionSet
	trees  []fenwick
	totals []int64
	// Exclusion state for the current draw round: positions zeroed in their
	// tree, deduplicated by an epoch mark so a node excluded for two
	// reasons (e.g. adjacent and in-cone) is subtracted once.
	excluded []int32
	mark     []uint32
	epoch    uint32
	elig     []int // scratch: indices of trees overlapping the query
}

// newPASampler returns an empty sampler for a class of at most cap nodes
// drawn from a topology of at most nodeBudget nodes.
func newPASampler(nodeBudget, cap int) *paSampler {
	s := &paSampler{
		cap:    cap,
		high:   highBit(cap),
		ids:    make([]NodeID, cap),
		posOf:  make([]int32, nodeBudget),
		weight: make([]int64, cap),
		treeOf: make([]int32, cap),
		mark:   make([]uint32, cap),
		epoch:  1,
	}
	for i := range s.posOf {
		s.posOf[i] = -1
	}
	return s
}

// insert appends a node to the class with the given region set and weight.
// Positions are assigned in call order, which must be creation order — the
// enumeration order of the linear scan.
func (s *paSampler) insert(id NodeID, regions RegionSet, w int64) {
	pos := int32(s.n)
	s.n++
	s.ids[pos] = id
	s.posOf[id] = pos
	s.weight[pos] = w
	ti := -1
	for i, rs := range s.sets {
		if rs == regions {
			ti = i
			break
		}
	}
	if ti < 0 {
		ti = len(s.sets)
		s.sets = append(s.sets, regions)
		s.trees = append(s.trees, newFenwick(s.cap))
		s.totals = append(s.totals, 0)
	}
	s.treeOf[pos] = int32(ti)
	if w != 0 {
		s.trees[ti].add(int(pos), w)
		s.totals[ti] += w
	}
}

// addWeight applies delta to id's weight. Nodes outside the class are
// ignored, so link hooks can call it unconditionally for both endpoints.
// While id is excluded the authoritative weight updates but the tree does
// not; restoreAll re-adds the then-current weight.
func (s *paSampler) addWeight(id NodeID, delta int64) {
	p := s.posOf[id]
	if p < 0 {
		return
	}
	s.weight[p] += delta
	if s.mark[p] == s.epoch {
		return // excluded: tree holds zero until restoreAll
	}
	ti := s.treeOf[p]
	s.trees[ti].add(int(p), delta)
	s.totals[ti] += delta
}

// exclude zeroes id's weight in its tree until restoreAll. Nodes outside
// the class and already-excluded nodes are ignored.
func (s *paSampler) exclude(id NodeID) {
	p := s.posOf[id]
	if p < 0 || s.mark[p] == s.epoch {
		return
	}
	s.mark[p] = s.epoch
	s.excluded = append(s.excluded, p)
	if w := s.weight[p]; w != 0 {
		ti := s.treeOf[p]
		s.trees[ti].add(int(p), -w)
		s.totals[ti] -= w
	}
}

// restoreAll re-adds every excluded node's current weight and ends the
// exclusion round.
func (s *paSampler) restoreAll() {
	for _, p := range s.excluded {
		if w := s.weight[p]; w != 0 {
			ti := s.treeOf[p]
			s.trees[ti].add(int(p), w)
			s.totals[ti] += w
		}
	}
	s.excluded = s.excluded[:0]
	s.epoch++
	if s.epoch == 0 { // epoch wrapped: every mark is stale, clear them
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
}

// draw selects one node among the non-excluded members whose region set
// overlaps q, with probability proportional to weight. It consumes exactly
// one Intn(total) when the eligible weight is positive — the same single
// RNG draw as the linear scan — and returns None without touching the RNG
// when it is zero.
func (s *paSampler) draw(r *rng.Source, q RegionSet) NodeID {
	s.elig = s.elig[:0]
	var total int64
	for i, rs := range s.sets {
		if rs.Overlaps(q) {
			s.elig = append(s.elig, i)
			total += s.totals[i]
		}
	}
	if total <= 0 {
		return None
	}
	target := int64(r.Intn(int(total)))
	// Descend over the eligible trees only; the rest contribute nothing.
	idx := 0
	var acc int64
	for bit := s.high; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= s.cap {
			var sum int64
			for _, ti := range s.elig {
				sum += s.trees[ti][next]
			}
			if acc+sum <= target {
				acc += sum
				idx = next
			}
		}
	}
	return s.ids[idx]
}

// regionBuckets indexes a candidate pool (mIDs or cpIDs) by region so the
// uniform CP-peering phase enumerates only region-overlapping candidates.
// Buckets preserve pool order (creation order); for a multi-region query
// the buckets are merged by node ID — node IDs are assigned in creation
// order, so the merged stream reproduces the pool-order enumeration of the
// linear scan exactly, including for nodes present in two queried regions
// (deduplicated on merge).
type regionBuckets struct {
	buckets [][]NodeID
}

func newRegionBuckets(regions int, pool []NodeID, nodes []Node) *regionBuckets {
	b := &regionBuckets{buckets: make([][]NodeID, regions)}
	for _, id := range pool {
		rs := nodes[id].Regions
		for r := 0; r < regions; r++ {
			if rs.HasRegion(r) {
				b.buckets[r] = append(b.buckets[r], id)
			}
		}
	}
	return b
}

// candidates appends the pool members overlapping q to dst, in pool order.
func (b *regionBuckets) candidates(q RegionSet, dst []NodeID) []NodeID {
	var lists [][]NodeID
	for r := range b.buckets {
		if q.HasRegion(r) && len(b.buckets[r]) > 0 {
			lists = append(lists, b.buckets[r])
		}
	}
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0]...)
	}
	// k-way merge ascending by ID with deduplication (a node in two queried
	// regions appears in both buckets).
	idx := make([]int, len(lists))
	for {
		best := -1
		var bestID NodeID
		for i, l := range lists {
			if idx[i] < len(l) {
				if best < 0 || l[idx[i]] < bestID {
					best, bestID = i, l[idx[i]]
				}
			}
		}
		if best < 0 {
			return dst
		}
		dst = append(dst, bestID)
		for i, l := range lists {
			for idx[i] < len(l) && l[idx[i]] == bestID {
				idx[i]++
			}
		}
	}
}
