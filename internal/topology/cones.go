package topology

import (
	"math/bits"
	"sort"
)

// coneSet is a size-adaptive customer-cone set: a sorted NodeID list while
// small, a dense bitset once the list would outgrow one. The threshold is
// the break-even point (a list entry costs 4 bytes, a bitset n/8 bytes
// total), so worst-case cone memory is bounded by min(Σ|cone|·4B, n²/32 b)
// instead of the old unconditional n bits per M/CP node — the O(n²/64)
// dense allocation that dominated 100k generation memory.
//
// The zero value is the empty set (stub nodes: no customers, no cone).
type coneSet struct {
	list []NodeID // sorted ascending; nil when empty or dense
	bits []uint64 // dense bitset over node IDs; nil unless dense
	size int
}

// contains reports whether d is in the set.
func (c *coneSet) contains(d NodeID) bool {
	if c.bits != nil {
		return c.bits[d>>6]&(1<<(uint(d)&63)) != 0
	}
	l := c.list
	i := sort.Search(len(l), func(i int) bool { return l[i] >= d })
	return i < len(l) && l[i] == d
}

// prepareConesShared materializes customer cones for every M node in one
// bottom-up pass, replacing the per-node DFS over dense n-bit sets. The
// provider relation is acyclic with edges pointing from earlier-created
// (lower-ID) providers to later customers, so scanning IDs in descending
// order visits every node after all of its customers: each cone is the
// union of the customers' already-built cones plus the customers
// themselves — child results are shared by every ancestor instead of being
// re-traversed per ancestor, which is what made the DFS quadratic.
//
// Only M nodes get cones: stubs (CP, C) have no customers (empty cone, the
// coneSet zero value), and T nodes never appear in a peeringAllowed test.
// inTree answers from these sets are identical to the oracle's dense
// bitsets — same membership, different representation.
func (g *builder) prepareConesShared() {
	n := len(g.topo.Nodes)
	g.coneSets = make([]coneSet, n)
	// Break-even size for switching to a bitset, with a small floor so tiny
	// topologies don't bounce representations.
	threshold := n/32 + 8
	words := (n + 63) / 64
	var scratch []NodeID
	for i := n - 1; i >= 0; i-- {
		nd := &g.topo.Nodes[i]
		if nd.Type != M || len(nd.Customers) == 0 {
			continue
		}
		// Upper-bound the union size to pick the representation: any dense
		// child forces dense (the parent cone is a superset).
		est := 0
		dense := false
		for _, c := range nd.Customers {
			cs := &g.coneSets[c]
			est += 1 + cs.size
			if cs.bits != nil {
				dense = true
			}
		}
		if dense || est > threshold {
			b := make([]uint64, words)
			for _, c := range nd.Customers {
				cs := &g.coneSets[c]
				if cs.bits != nil {
					for w, v := range cs.bits {
						b[w] |= v
					}
				} else {
					for _, m := range cs.list {
						b[m>>6] |= 1 << (uint(m) & 63)
					}
				}
				b[c>>6] |= 1 << (uint(c) & 63)
			}
			size := 0
			for _, v := range b {
				size += bits.OnesCount64(v)
			}
			g.coneSets[i] = coneSet{bits: b, size: size}
			continue
		}
		// Sorted-list union by iterative two-way merge. A customer's cone
		// members all have IDs greater than the customer (descendants are
		// created later), so {c} ∪ cone(c) is cone(c) with c prepended —
		// already sorted.
		out := make([]NodeID, 0, est)
		for _, c := range nd.Customers {
			cs := &g.coneSets[c]
			scratch = append(scratch[:0], out...)
			out = mergeWithCone(out[:0], scratch, c, cs.list)
		}
		g.coneSets[i] = coneSet{list: out, size: len(out)}
	}
}

// mergeWithCone merges sorted acc with the sorted sequence (c, cone...)
// into dst, dropping duplicates.
func mergeWithCone(dst, acc []NodeID, c NodeID, cone []NodeID) []NodeID {
	i := 0
	pending, hasPending := c, true
	next := func() (NodeID, bool) {
		if hasPending {
			hasPending = false
			return pending, true
		}
		if i < len(cone) {
			v := cone[i]
			i++
			return v, true
		}
		return 0, false
	}
	bv, bok := next()
	for _, a := range acc {
		for bok && bv < a {
			dst = append(dst, bv)
			bv, bok = next()
		}
		if bok && bv == a {
			bv, bok = next()
		}
		dst = append(dst, a)
	}
	for bok {
		dst = append(dst, bv)
		bv, bok = next()
	}
	return dst
}

// prepareMPeeringScratch builds the per-phase scratch the M-M exclusion
// rounds share: an M-membership bitmask (so dense cone scans intersect
// away the stub majority word-wise instead of type-checking every member)
// and per-M-node M-only provider lists (so the transitive-provider walk
// never touches T nodes or re-pushes marked ones — the walk is confined to
// the M-M transit edges, a small fraction of the provider edges).
func (g *builder) prepareMPeeringScratch() {
	n := len(g.topo.Nodes)
	words := (n + 63) / 64
	g.ancMark = make([]uint32, n)
	g.mMaskR = make([][]uint64, g.p.Regions)
	for r := range g.mMaskR {
		g.mMaskR[r] = make([]uint64, words)
	}
	g.qMask = make([]uint64, words)
	g.mProv = make([][]NodeID, n)
	for _, m := range g.mIDs {
		nd := &g.topo.Nodes[m]
		for r := 0; r < g.p.Regions; r++ {
			if nd.Regions.HasRegion(r) {
				g.mMaskR[r][m>>6] |= 1 << (uint(m) & 63)
			}
		}
		var ps []NodeID
		for _, u := range nd.Providers {
			if g.topo.Nodes[u].Type == M {
				ps = append(ps, u)
			}
		}
		g.mProv[m] = ps
	}
}

// buildQMask ORs the per-region M masks for every region in q into the
// shared scratch mask: bit m set iff node m is an M node whose regions
// overlap q — exactly the nodes whose sampler trees are eligible for a
// draw with query q.
func (g *builder) buildQMask(q RegionSet) []uint64 {
	dst := g.qMask
	first := true
	for r := 0; r < g.p.Regions; r++ {
		if !q.HasRegion(r) {
			continue
		}
		src := g.mMaskR[r]
		if first {
			copy(dst, src)
			first = false
			continue
		}
		for w, v := range src {
			dst[w] |= v
		}
	}
	if first {
		for w := range dst {
			dst[w] = 0
		}
	}
	return dst
}

// excludeConeRelated feeds the M-M peering exclusion set for node a into s:
// every M node that is in a's customer cone (inTree(a, m)) or that has a in
// its own cone (inTree(m, a) — equivalently, a transitive provider of a,
// found by walking provider edges upward). qMask (from buildQMask for a's
// regions) restricts the set to M nodes whose regions overlap a's: any
// other node sits in a sampler tree that is never summed for a's draws, so
// leaving it unexcluded cannot change a total or a pick. Deduplication
// against the adjacency exclusions happens inside exclude via the epoch
// mark.
func (g *builder) excludeConeRelated(a NodeID, q RegionSet, qMask []uint64, s *paSampler) {
	cs := &g.coneSets[a]
	if cs.bits != nil {
		for w, v := range cs.bits {
			v &= qMask[w]
			for v != 0 {
				b := bits.TrailingZeros64(v)
				v &= v - 1
				s.exclude(NodeID(w<<6 + b))
			}
		}
	} else {
		for _, d := range cs.list {
			nd := &g.topo.Nodes[d]
			if nd.Type == M && nd.Regions.Overlaps(q) {
				s.exclude(d)
			}
		}
	}
	// Transitive providers, via an epoch-marked upward walk over the
	// M-only provider lists (T nodes have no providers and are never
	// candidates, so the walk skips them entirely). Marking at push keeps
	// every closure node on the stack at most once.
	g.ancEpoch++
	if g.ancEpoch == 0 {
		for i := range g.ancMark {
			g.ancMark[i] = 0
		}
		g.ancEpoch = 1
	}
	g.ancStack = g.ancStack[:0]
	for _, u := range g.topo.Nodes[a].Providers {
		if g.topo.Nodes[u].Type == M && g.ancMark[u] != g.ancEpoch {
			g.ancMark[u] = g.ancEpoch
			g.ancStack = append(g.ancStack, u)
		}
	}
	for len(g.ancStack) > 0 {
		m := g.ancStack[len(g.ancStack)-1]
		g.ancStack = g.ancStack[:len(g.ancStack)-1]
		if qMask[m>>6]&(1<<(uint(m)&63)) != 0 {
			s.exclude(m)
		}
		for _, u := range g.mProv[m] {
			if g.ancMark[u] != g.ancEpoch {
				g.ancMark[u] = g.ancEpoch
				g.ancStack = append(g.ancStack, u)
			}
		}
	}
}
