package topology

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The serialization format is a line-oriented text format:
//
//	bgpchurn-topology v1
//	meta n=<N> regions=<R> seed=<seed>
//	node <id> <type> <region-bitmask>
//	transit <provider> <customer>
//	peer <a> <b>
//
// Node lines appear before link lines; each link appears exactly once.

const formatHeader = "bgpchurn-topology v1"

// WriteTo serializes t in the text format. It implements enough of
// io.WriterTo to be used with bufio and files.
func (t *Topology) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "%s\nmeta n=%d regions=%d seed=%d\n", formatHeader, t.N(), t.NumRegions, t.Seed)); err != nil {
		return n, err
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if err := count(fmt.Fprintf(bw, "node %d %s %d\n", nd.ID, nd.Type, uint32(nd.Regions))); err != nil {
			return n, err
		}
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		for _, c := range nd.Customers {
			if err := count(fmt.Fprintf(bw, "transit %d %d\n", nd.ID, c)); err != nil {
				return n, err
			}
		}
		for _, p := range nd.Peers {
			if p > nd.ID {
				if err := count(fmt.Fprintf(bw, "peer %d %d\n", nd.ID, p)); err != nil {
					return n, err
				}
			}
		}
	}
	return n, bw.Flush()
}

// Read parses a topology in the text format produced by WriteTo.
func Read(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("topology: empty input")
	}
	if strings.TrimSpace(sc.Text()) != formatHeader {
		return nil, fmt.Errorf("topology: bad header %q", sc.Text())
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("topology: missing meta line")
	}
	var n, regions int
	var seed uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "meta n=%d regions=%d seed=%d", &n, &regions, &seed); err != nil {
		return nil, fmt.Errorf("topology: bad meta line %q: %v", sc.Text(), err)
	}
	if n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("topology: implausible node count %d", n)
	}
	t := &Topology{Nodes: make([]Node, n), NumRegions: regions, Seed: seed}
	for i := range t.Nodes {
		t.Nodes[i] = Node{ID: NodeID(i)}
	}
	line := 2
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "node":
			var id int
			var typ string
			var mask uint32
			if _, err := fmt.Sscanf(text, "node %d %s %d", &id, &typ, &mask); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", line, err)
			}
			if id < 0 || id >= n {
				return nil, fmt.Errorf("topology: line %d: node id %d out of range", line, id)
			}
			nt, err := parseNodeType(typ)
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", line, err)
			}
			t.Nodes[id].Type = nt
			t.Nodes[id].Regions = RegionSet(mask)
		case "transit":
			var prov, cust int
			if _, err := fmt.Sscanf(text, "transit %d %d", &prov, &cust); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", line, err)
			}
			if err := checkID(prov, n); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", line, err)
			}
			if err := checkID(cust, n); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", line, err)
			}
			t.Nodes[prov].Customers = append(t.Nodes[prov].Customers, NodeID(cust))
			t.Nodes[cust].Providers = append(t.Nodes[cust].Providers, NodeID(prov))
		case "peer":
			var a, b int
			if _, err := fmt.Sscanf(text, "peer %d %d", &a, &b); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", line, err)
			}
			if err := checkID(a, n); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", line, err)
			}
			if err := checkID(b, n); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", line, err)
			}
			t.Nodes[a].Peers = append(t.Nodes[a].Peers, NodeID(b))
			t.Nodes[b].Peers = append(t.Nodes[b].Peers, NodeID(a))
		default:
			return nil, fmt.Errorf("topology: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func checkID(id, n int) error {
	if id < 0 || id >= n {
		return fmt.Errorf("node id %d out of range [0,%d)", id, n)
	}
	return nil
}

func parseNodeType(s string) (NodeType, error) {
	switch s {
	case "T":
		return T, nil
	case "M":
		return M, nil
	case "CP":
		return CP, nil
	case "C":
		return C, nil
	}
	return 0, fmt.Errorf("unknown node type %q", s)
}
