//go:build race

package topology

// raceEnabled reports a -race test binary; the at-scale parity test skips
// under it (generation is single-threaded, so the detector adds cost but
// no coverage there).
const raceEnabled = true
