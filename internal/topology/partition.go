package topology

import "sort"

// Shard partitioning over the CSR adjacency: contiguous node ranges with
// approximately equal session (slot) counts, for barrier-synchronized
// parallel simulation. Per-node simulation work is dominated by the number
// of sessions (updates received and sent scale with degree), so balancing
// the Offsets prefix sum balances shard load far better than balancing node
// counts — the tier-1 clique nodes carry thousands of sessions each.
//
// The partition affects performance only, never results: the simulation's
// windowed executor admits cross-shard messages in a canonical order that
// is independent of which shard a node lands in (see DESIGN.md,
// "Sharded DES").

// ShardRanges splits the node index space [0, N) into s contiguous ranges
// with approximately equal total degree, returning s+1 boundaries: shard k
// owns nodes [bounds[k], bounds[k+1]). Boundaries are nondecreasing; a
// range may be empty when s exceeds what the degree distribution can
// balance (e.g. one node holding most sessions).
func (a *Adjacency) ShardRanges(s int) []int32 {
	if s < 1 {
		s = 1
	}
	n := len(a.Offsets) - 1
	bounds := make([]int32, s+1)
	total := int64(a.Offsets[n])
	for k := 1; k < s; k++ {
		target := total * int64(k) / int64(s)
		// First node index whose prefix sum of slots reaches the target.
		bounds[k] = int32(sort.Search(n, func(i int) bool {
			return int64(a.Offsets[i+1]) > target
		}))
	}
	bounds[s] = int32(n)
	return bounds
}

// shardOf returns the shard owning node id under the given boundaries.
func shardOf(bounds []int32, id NodeID) int {
	return sort.Search(len(bounds)-1, func(k int) bool { return bounds[k+1] > int32(id) })
}

// CrossShardSessions counts the sessions whose endpoints fall in different
// ranges of the partition — the traffic that crosses a barrier per
// simulated exchange, reported by the sharded engine's census. Each
// undirected session is counted once.
func (a *Adjacency) CrossShardSessions(bounds []int32) int {
	cross := 0
	n := len(a.Offsets) - 1
	for i := 0; i < n; i++ {
		si := shardOf(bounds, NodeID(i))
		for k := a.Offsets[i]; k < a.Offsets[i+1]; k++ {
			j := a.IDs[k]
			if int32(j) > int32(i) && shardOf(bounds, j) != si {
				cross++
			}
		}
	}
	return cross
}
