package topology

import "fmt"

// Validate checks every structural invariant the generator promises:
//
//   - neighbor lists are symmetric and relation-consistent;
//   - the graph is simple (no self-loops or parallel links);
//   - the provider relation is acyclic (hierarchical structure);
//   - T nodes have no providers and form a full peering clique;
//   - stub nodes (CP, C) have no customers; C nodes have no peers;
//   - every non-T node has at least one provider;
//   - linked nodes share at least one region;
//   - no node peers with a member of its own customer tree;
//   - the graph is connected.
//
// It returns the first violation found, or nil.
func (t *Topology) Validate() error {
	if err := t.validateLists(); err != nil {
		return err
	}
	if err := t.validateTypes(); err != nil {
		return err
	}
	if t.ProviderDAG().HasCycle() {
		return fmt.Errorf("topology: provider loop detected")
	}
	if err := t.validatePeering(); err != nil {
		return err
	}
	if !t.Undirected().IsConnected() {
		return fmt.Errorf("topology: graph is not connected")
	}
	return nil
}

func (t *Topology) validateLists() error {
	seen := make(map[uint64]Relation)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("topology: node at index %d has ID %d", i, n.ID)
		}
		check := func(nb NodeID, rel Relation) error {
			if nb == n.ID {
				return fmt.Errorf("topology: node %d has a self-loop", n.ID)
			}
			if int(nb) < 0 || int(nb) >= len(t.Nodes) {
				return fmt.Errorf("topology: node %d references out-of-range neighbor %d", n.ID, nb)
			}
			if !n.Regions.Overlaps(t.Nodes[nb].Regions) {
				return fmt.Errorf("topology: link %d-%d crosses disjoint regions", n.ID, nb)
			}
			if back := t.Relation(nb, n.ID); back != rel.Invert() {
				return fmt.Errorf("topology: asymmetric link %d-%d: %v vs %v", n.ID, nb, rel, back)
			}
			key := edgeKey(n.ID, nb)
			if prev, ok := seen[key]; ok {
				canon := rel
				if n.ID > nb {
					canon = rel.Invert()
				}
				if prev != canon {
					return fmt.Errorf("topology: parallel links %d-%d with different relations", n.ID, nb)
				}
			} else {
				canon := rel
				if n.ID > nb {
					canon = rel.Invert()
				}
				seen[key] = canon
			}
			return nil
		}
		for _, c := range n.Customers {
			if err := check(c, Customer); err != nil {
				return err
			}
		}
		for _, p := range n.Peers {
			if err := check(p, Peer); err != nil {
				return err
			}
		}
		for _, p := range n.Providers {
			if err := check(p, Provider); err != nil {
				return err
			}
		}
		// Duplicate entries within a single list are parallel links too.
		dup := make(map[NodeID]struct{}, n.Degree())
		for _, lists := range [][]NodeID{n.Customers, n.Peers, n.Providers} {
			for _, v := range lists {
				if _, ok := dup[v]; ok {
					return fmt.Errorf("topology: node %d linked to %d more than once", n.ID, v)
				}
				dup[v] = struct{}{}
			}
		}
	}
	return nil
}

func (t *Topology) validateTypes() error {
	var tIDs []NodeID
	for i := range t.Nodes {
		n := &t.Nodes[i]
		switch n.Type {
		case T:
			if len(n.Providers) != 0 {
				return fmt.Errorf("topology: T node %d has providers", n.ID)
			}
			tIDs = append(tIDs, n.ID)
		case M:
			if len(n.Providers) == 0 {
				return fmt.Errorf("topology: M node %d has no provider", n.ID)
			}
		case CP:
			if len(n.Customers) != 0 {
				return fmt.Errorf("topology: CP node %d has customers", n.ID)
			}
			if len(n.Providers) == 0 {
				return fmt.Errorf("topology: CP node %d has no provider", n.ID)
			}
		case C:
			if len(n.Customers) != 0 {
				return fmt.Errorf("topology: C node %d has customers", n.ID)
			}
			if len(n.Peers) != 0 {
				return fmt.Errorf("topology: C node %d has peers", n.ID)
			}
			if len(n.Providers) == 0 {
				return fmt.Errorf("topology: C node %d has no provider", n.ID)
			}
		default:
			return fmt.Errorf("topology: node %d has invalid type %d", n.ID, n.Type)
		}
	}
	// T clique.
	for _, a := range tIDs {
		for _, b := range tIDs {
			if a != b && t.Relation(a, b) != Peer {
				return fmt.Errorf("topology: T nodes %d and %d are not peered", a, b)
			}
		}
	}
	return nil
}

func (t *Topology) validatePeering() error {
	for i := range t.Nodes {
		n := &t.Nodes[i]
		for _, p := range n.Peers {
			if t.InCustomerTree(n.ID, p) {
				return fmt.Errorf("topology: node %d peers with %d inside its customer tree", n.ID, p)
			}
		}
	}
	return nil
}
