package topology

// fenwick is a binary-indexed tree over int64 weights, 1-based internally
// (index 0 is unused), supporting point updates and the prefix-descent
// select used by the accelerated preferential-attachment sampler. The tree
// length is fixed at construction: generator samplers know their class
// capacity (NT, NM) up front, so no resizing path exists.
type fenwick []int64

// newFenwick returns a tree over cap zero-weight positions.
func newFenwick(cap int) fenwick { return make(fenwick, cap+1) }

// add applies delta to the weight at 0-based position pos.
func (f fenwick) add(pos int, delta int64) {
	for i := pos + 1; i < len(f); i += i & -i {
		f[i] += delta
	}
}

// highBit returns the largest power of two <= n, or 0 for n <= 0. It is the
// starting stride of the prefix descent.
func highBit(n int) int {
	b := 1
	for b<<1 <= n {
		b <<= 1
	}
	if n <= 0 {
		return 0
	}
	return b
}

// descend finds the 0-based position of the element holding cumulative
// weight target across the given trees summed position-wise: the smallest
// position p such that sum of prefix weights through p exceeds target. All
// trees must have the same capacity cap; high must be highBit(cap). The
// caller guarantees 0 <= target < total summed weight, which implies the
// returned position holds a strictly positive summed weight — exactly the
// element a linear scan accumulating weights in position order would stop
// at with the same target.
func descend(trees []fenwick, high, cap int, target int64) int {
	idx := 0
	var acc int64
	for bit := high; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= cap {
			var sum int64
			for _, t := range trees {
				sum += t[next]
			}
			if acc+sum <= target {
				acc += sum
				idx = next
			}
		}
	}
	return idx
}
