package topology

import (
	"testing"

	"bgpchurn/internal/rng"
)

// samplerModel is the linear-scan reference the Fenwick sampler is
// differential-tested against: the same membership, weights, exclusions and
// region filtering, drawn by the exact weightedPick procedure (one Intn of
// the eligible total, then a creation-order prefix scan).
type samplerModel struct {
	ids      []NodeID
	regions  []RegionSet
	weight   []int64
	excluded map[NodeID]bool
}

func newSamplerModel() *samplerModel {
	return &samplerModel{excluded: make(map[NodeID]bool)}
}

func (m *samplerModel) insert(id NodeID, rs RegionSet, w int64) {
	m.ids = append(m.ids, id)
	m.regions = append(m.regions, rs)
	m.weight = append(m.weight, w)
}

func (m *samplerModel) addWeight(id NodeID, delta int64) {
	for i, mid := range m.ids {
		if mid == id {
			m.weight[i] += delta
			return
		}
	}
}

func (m *samplerModel) total(q RegionSet) int64 {
	var total int64
	for i, mid := range m.ids {
		if !m.excluded[mid] && m.regions[i].Overlaps(q) {
			total += m.weight[i]
		}
	}
	return total
}

func (m *samplerModel) draw(r *rng.Source, q RegionSet) NodeID {
	total := m.total(q)
	if total <= 0 {
		return None
	}
	target := int64(r.Intn(int(total)))
	var acc int64
	for i, mid := range m.ids {
		if m.excluded[mid] || !m.regions[i].Overlaps(q) {
			continue
		}
		acc += m.weight[i]
		if target < acc {
			return mid
		}
	}
	panic("unreachable: target below total")
}

// samplerTotal sums the sampler's per-tree totals over the trees whose
// region set overlaps q — the total its next draw would pass to Intn.
func samplerTotal(s *paSampler, q RegionSet) int64 {
	var total int64
	for i, rs := range s.sets {
		if rs.Overlaps(q) {
			total += s.totals[i]
		}
	}
	return total
}

// TestSamplerMatchesLinearModel drives the Fenwick sampler and the linear
// model through a long random op schedule — inserts across several region
// sets, weight growth, overlapping exclusion rounds, draws under varying
// region queries — and demands identical totals and identical picks from
// identical RNG streams at every step.
func TestSamplerMatchesLinearModel(t *testing.T) {
	const cap = 600
	ctl := rng.New(99)               // op schedule
	rS, rM := rng.New(7), rng.New(7) // lockstep draw streams
	s := newPASampler(cap, cap)
	m := newSamplerModel()
	regionSets := []RegionSet{
		RegionSet(0).Add(0),
		RegionSet(0).Add(1),
		RegionSet(0).Add(0).Add(1),
		RegionSet(0).Add(2),
		RegionSet(0).Add(1).Add(2),
	}
	n, draws := 0, 0
	for step := 0; step < 20000; step++ {
		switch op := ctl.Intn(10); {
		case op < 3 && n < cap: // insert
			rs := regionSets[ctl.Intn(len(regionSets))]
			w := int64(ctl.Intn(4)) // weight 0 members must be unselectable
			s.insert(NodeID(n), rs, w)
			m.insert(NodeID(n), rs, w)
			n++
		case op < 5 && n > 0: // weight growth (degrees only increase)
			id := NodeID(ctl.Intn(n))
			d := int64(1 + ctl.Intn(3))
			s.addWeight(id, d)
			m.addWeight(id, d)
		case op < 7 && n > 0: // exclude, possibly redundantly
			id := NodeID(ctl.Intn(n))
			s.exclude(id)
			m.excluded[id] = true
		default: // draw + end the exclusion round
			q := regionSets[ctl.Intn(len(regionSets))]
			if st, mt := samplerTotal(s, q), m.total(q); st != mt {
				t.Fatalf("step %d: eligible total diverges: sampler %d, model %d", step, st, mt)
			}
			got, want := s.draw(rS, q), m.draw(rM, q)
			if got != want {
				t.Fatalf("step %d: draw diverges: sampler %v, model %v", step, got, want)
			}
			s.restoreAll()
			for id := range m.excluded {
				delete(m.excluded, id)
			}
			draws++
		}
	}
	if n == 0 || draws < 1000 {
		t.Fatalf("schedule degenerate: n=%d draws=%d", n, draws)
	}
	// The two RNG streams must have consumed identical draw counts: one more
	// draw from each proves they are still aligned.
	if a, b := rS.Intn(1<<30), rM.Intn(1<<30); a != b {
		t.Fatalf("RNG streams desynchronized: %d vs %d", a, b)
	}
}

// TestSamplerWeightUpdateWhileExcluded pins the addWeight/exclude contract:
// an excluded node's weight updates take effect in the authoritative array
// immediately but in the tree only at restoreAll.
func TestSamplerWeightUpdateWhileExcluded(t *testing.T) {
	q := RegionSet(0).Add(0)
	s := newPASampler(8, 8)
	s.insert(0, q, 5)
	s.insert(1, q, 3)
	s.exclude(0)
	if got := samplerTotal(s, q); got != 3 {
		t.Fatalf("total with node 0 excluded = %d, want 3", got)
	}
	s.addWeight(0, 4) // while excluded: authoritative only
	if got := samplerTotal(s, q); got != 3 {
		t.Fatalf("total after excluded-weight update = %d, want 3", got)
	}
	s.restoreAll()
	if got := samplerTotal(s, q); got != 12 {
		t.Fatalf("total after restore = %d, want 12 (5+4+3)", got)
	}
	// Double exclusion in one round must subtract once.
	s.exclude(1)
	s.exclude(1)
	if got := samplerTotal(s, q); got != 9 {
		t.Fatalf("total after double exclusion = %d, want 9", got)
	}
	s.restoreAll()
	if got := samplerTotal(s, q); got != 12 {
		t.Fatalf("total after second restore = %d, want 12", got)
	}
}

// TestSamplerEpochWrap forces the uint32 exclusion epoch to wrap and
// verifies stale marks do not leak into the next round as exclusions.
func TestSamplerEpochWrap(t *testing.T) {
	q := RegionSet(0).Add(0)
	s := newPASampler(4, 4)
	s.insert(0, q, 1)
	s.insert(1, q, 1)
	s.exclude(0)
	s.restoreAll()       // node 0's mark now holds the stale epoch 1
	s.epoch = ^uint32(0) // jump to the last epoch before the wrap
	s.exclude(1)
	if got := samplerTotal(s, q); got != 1 {
		t.Fatalf("total = %d, want 1 (only node 1 excluded this round)", got)
	}
	s.restoreAll() // wraps: marks cleared, epoch reset
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	if got := samplerTotal(s, q); got != 2 {
		t.Fatalf("total after wrap-restore = %d, want 2", got)
	}
	s.exclude(0)
	if got := samplerTotal(s, q); got != 1 {
		t.Fatalf("stale mark suppressed a fresh exclusion: total = %d, want 1", got)
	}
}

// TestDescendMatchesLinearScan checks the multi-tree Fenwick descent
// against a prefix scan for every target in range, across random weight
// layouts and non-power-of-two capacities.
func TestDescendMatchesLinearScan(t *testing.T) {
	ctl := rng.New(5)
	for _, cap := range []int{1, 2, 3, 7, 8, 13, 64, 100} {
		for trial := 0; trial < 20; trial++ {
			nTrees := 1 + ctl.Intn(3)
			trees := make([]fenwick, nTrees)
			weights := make([]int64, cap)
			for i := range trees {
				trees[i] = newFenwick(cap)
			}
			for pos := 0; pos < cap; pos++ {
				w := int64(ctl.Intn(5))
				trees[ctl.Intn(nTrees)].add(pos, w)
				weights[pos] = w
			}
			var total int64
			for _, w := range weights {
				total += w
			}
			high := highBit(cap)
			for target := int64(0); target < total; target++ {
				var acc int64
				want := -1
				for pos, w := range weights {
					acc += w
					if target < acc {
						want = pos
						break
					}
				}
				if got := descend(trees, high, cap, target); got != want {
					t.Fatalf("cap=%d trial=%d target=%d: descend=%d, scan=%d", cap, trial, target, got, want)
				}
			}
		}
	}
}

// TestRegionBucketsCandidates checks the bucket merge against the naive
// pool filter: same members, same (pool) order, duplicates collapsed.
func TestRegionBucketsCandidates(t *testing.T) {
	const regions = 4
	ctl := rng.New(23)
	nodes := make([]Node, 200)
	var pool []NodeID
	for i := range nodes {
		rs := RegionSet(0).Add(ctl.Intn(regions))
		if ctl.Intn(3) == 0 {
			rs = rs.Add(ctl.Intn(regions))
		}
		nodes[i] = Node{ID: NodeID(i), Regions: rs}
		if ctl.Intn(2) == 0 {
			pool = append(pool, NodeID(i))
		}
	}
	b := newRegionBuckets(regions, pool, nodes)
	queries := []RegionSet{
		RegionSet(0).Add(0),
		RegionSet(0).Add(1).Add(3),
		RegionSet(0).Add(0).Add(1).Add(2).Add(3),
		RegionSet(0).Add(2),
	}
	for _, q := range queries {
		var want []NodeID
		for _, id := range pool {
			if nodes[id].Regions.Overlaps(q) {
				want = append(want, id)
			}
		}
		got := b.candidates(q, nil)
		if len(got) != len(want) {
			t.Fatalf("query %v: %d candidates, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %v: candidates[%d] = %v, want %v", q, i, got[i], want[i])
			}
		}
	}
}
