package topology

import "bgpchurn/internal/graph"

// Stats summarizes the structural properties the paper reports for its
// Baseline topologies (§3): node mix, multihoming degrees, peering degrees,
// clustering and average path length.
type Stats struct {
	N           int
	Counts      [4]int // indexed by NodeType
	Transit     int    // number of customer-provider links
	Peering     int    // number of peering links
	MeanMHD     [4]float64
	MeanPeerDeg [4]float64
	Clustering  float64
	// Assortativity is Newman's degree correlation; the Internet (and our
	// instances) are disassortative (negative).
	Assortativity float64
	// AvgPathLength is the mean shortest-path hop count over the plain
	// undirected view (sampled when sampleSources > 0).
	AvgPathLength float64
	MaxDegree     int
}

// ComputeStats measures t. sampleSources bounds the number of BFS sources
// used for the average path length (0 = exact, all nodes). Sources are the
// first nodes of each type round-robin so every tier is represented.
func ComputeStats(t *Topology, sampleSources int) Stats {
	s := Stats{N: t.N(), Counts: t.CountByType()}
	s.Transit, s.Peering = t.Edges()

	var mhdSum, peerSum [4]int
	for i := range t.Nodes {
		n := &t.Nodes[i]
		mhdSum[n.Type] += n.MHD()
		peerSum[n.Type] += len(n.Peers)
		if d := n.Degree(); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	for _, typ := range NodeTypes {
		if c := s.Counts[typ]; c > 0 {
			s.MeanMHD[typ] = float64(mhdSum[typ]) / float64(c)
			s.MeanPeerDeg[typ] = float64(peerSum[typ]) / float64(c)
		}
	}

	g := t.Undirected()
	s.Clustering = g.ClusteringCoefficient()
	s.Assortativity = g.Assortativity()
	s.AvgPathLength = averagePath(g, t, sampleSources)
	return s
}

func averagePath(g *graph.Undirected, t *Topology, sampleSources int) float64 {
	if sampleSources <= 0 || sampleSources >= t.N() {
		return g.AveragePathLength()
	}
	// Deterministic stratified sample: take nodes spaced evenly through the
	// ID range, which interleaves the tiers (IDs are assigned T, M, CP, C).
	sources := make([]int32, 0, sampleSources)
	step := t.N() / sampleSources
	if step == 0 {
		step = 1
	}
	for i := 0; i < t.N() && len(sources) < sampleSources; i += step {
		sources = append(sources, int32(i))
	}
	return g.SampledAveragePathLength(sources)
}

// DegreeCCDF returns the complementary CDF of the total node degree, for
// checking the power-law property.
func DegreeCCDF(t *Topology) (degrees []int, ccdf []float64) {
	return t.Undirected().DegreeCCDF()
}
