package topology

import "testing"

// growParams returns a baseline-shaped parameter set at size n for growth
// tests, with a fixed tier-1 clique so sizes are growth-compatible.
func growParams(n int, seed uint64) Params {
	fn := float64(n)
	nT := 5
	nM := int(0.15 * fn)
	nCP := int(0.05 * fn)
	return Params{
		N: n, Regions: 5, Seed: seed,
		NT: nT, NM: nM, NCP: nCP, NC: n - nT - nM - nCP,
		DM: 2 + 2.5*fn/10000, DCP: 2 + 1.5*fn/10000, DC: 1 + 5*fn/100000,
		PM: 1 + 2*fn/10000, PCPM: 0.2 + 2*fn/10000, PCPCP: 0.05 + 5*fn/100000,
		TM: 0.375, TCP: 0.375, TC: 0.125,
		MaxTProvidersPerM: Unlimited, MaxMProviders: Unlimited,
		MSpread: 0.20, CPSpread: 0.05,
	}
}

// TestGrowPreservesPrefix verifies the growth contract: every pre-existing
// node keeps its ID, type, regions and all of its links; new links touching
// old nodes only ever lead to new nodes.
func TestGrowPreservesPrefix(t *testing.T) {
	small := MustGenerate(growParams(400, 11))
	big := MustGrow(small, growParams(1000, 12))

	if big.N() != 1000 {
		t.Fatalf("grown topology has %d nodes, want 1000", big.N())
	}
	if err := big.Validate(); err != nil {
		t.Fatalf("grown topology invalid: %v", err)
	}
	oldN := NodeID(small.N())
	for i := range small.Nodes {
		o, g := &small.Nodes[i], &big.Nodes[i]
		if o.Type != g.Type || o.Regions != g.Regions || o.ID != g.ID {
			t.Fatalf("node %d changed identity under growth", i)
		}
		// Old links are a prefix of the grown lists (growth only appends),
		// and appended links lead exclusively to new nodes.
		checkPrefix := func(name string, old, grown []NodeID) {
			if len(grown) < len(old) {
				t.Fatalf("node %d lost %s links under growth", i, name)
			}
			for k, v := range old {
				if grown[k] != v {
					t.Fatalf("node %d %s[%d] changed %d -> %d under growth", i, name, k, v, grown[k])
				}
			}
			for _, v := range grown[len(old):] {
				if v < oldN {
					t.Fatalf("node %d gained a %s link to pre-existing node %d", i, name, v)
				}
			}
		}
		checkPrefix("provider", o.Providers, g.Providers)
		checkPrefix("customer", o.Customers, g.Customers)
		checkPrefix("peer", o.Peers, g.Peers)
	}
	// Growth must not mutate the source.
	if err := small.Validate(); err != nil {
		t.Fatalf("source topology mutated by growth: %v", err)
	}
}

// TestGrowChain grows twice (n → n′ → n″), checking each step validates and
// type counts land exactly on the requested mix.
func TestGrowChain(t *testing.T) {
	topo := MustGenerate(growParams(300, 21))
	for _, n := range []int{700, 1500} {
		p := growParams(n, uint64(n))
		topo = MustGrow(topo, p)
		if err := topo.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		c := topo.CountByType()
		if c[T] != p.NT || c[M] != p.NM || c[CP] != p.NCP || c[C] != p.NC {
			t.Fatalf("n=%d: type mix %v, want T=%d M=%d CP=%d C=%d", n, c, p.NT, p.NM, p.NCP, p.NC)
		}
	}
}

// equalTopologies reports the first difference between two topologies, or
// "" when they are identical in every observable field including
// neighbor-list order.
func equalTopologies(a, b *Topology) string {
	if a.N() != b.N() || a.NumRegions != b.NumRegions || a.Seed != b.Seed {
		return "shape differs"
	}
	for i := range a.Nodes {
		x, y := &a.Nodes[i], &b.Nodes[i]
		if x.ID != y.ID || x.Type != y.Type || x.Regions != y.Regions {
			return "node identity differs"
		}
		for _, pair := range [][2][]NodeID{
			{x.Providers, y.Providers}, {x.Customers, y.Customers}, {x.Peers, y.Peers},
		} {
			if len(pair[0]) != len(pair[1]) {
				return "link count differs"
			}
			for k := range pair[0] {
				if pair[0][k] != pair[1][k] {
					return "link differs"
				}
			}
		}
	}
	return ""
}

// TestGrowDrawSequenceParityAtScale proves sampler parity beyond the small
// growth sizes: at n = 20k — where the Fenwick samplers take thousands of
// draws per phase and the shared cones switch to their dense representation
// — direct generation and a 10k → 20k growth step must each be
// byte-identical between the accelerated and the linear-scan paths.
func TestGrowDrawSequenceParityAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("linear-scan oracle at n=20k is quadratic; skipped in -short")
	}
	if raceEnabled {
		t.Skip("generation is single-threaded; -race only multiplies the oracle's quadratic cost")
	}
	direct := growParams(20000, 47)
	fastDirect := MustGenerate(direct)
	linDirect, err := GenerateLinear(direct)
	if err != nil {
		t.Fatal(err)
	}
	if diff := equalTopologies(fastDirect, linDirect); diff != "" {
		t.Fatalf("direct 20k generation diverges between samplers: %s", diff)
	}
	small := MustGenerate(growParams(10000, 47))
	grown := growParams(20000, 48)
	fastGrown := MustGrow(small, grown)
	linGrown, err := GrowLinear(small, grown)
	if err != nil {
		t.Fatal(err)
	}
	if diff := equalTopologies(fastGrown, linGrown); diff != "" {
		t.Fatalf("grow 10k->20k diverges between samplers: %s", diff)
	}
	if err := fastGrown.Validate(); err != nil {
		t.Fatalf("grown topology invalid: %v", err)
	}
}

// TestGrowRejectsIncompatible exercises the compatibility checks.
func TestGrowRejectsIncompatible(t *testing.T) {
	topo := MustGenerate(growParams(400, 31))
	shrink := growParams(400, 32)
	shrink.NM-- // fewer M nodes than present
	shrink.NC++
	if _, err := Grow(topo, shrink); err == nil {
		t.Fatal("Grow accepted a shrinking node mix")
	}
	clique := growParams(1000, 33)
	clique.NT++ // tier-1 clique is frozen
	clique.NC--
	if _, err := Grow(topo, clique); err == nil {
		t.Fatal("Grow accepted a changed tier-1 clique")
	}
	regions := growParams(1000, 34)
	regions.Regions = 6
	if _, err := Grow(topo, regions); err == nil {
		t.Fatal("Grow accepted a changed region count")
	}
}
