// Package topology implements the paper's controllable AS-level topology
// model (§3): four node types arranged in a customer–provider hierarchy with
// peering links, geographic regions, and preferential attachment, driven by
// the operational parameters of Table 1.
//
// A Topology is an annotated graph: every adjacency is either a transit
// (customer–provider) relationship or a settlement-free peering. The
// generator enforces the paper's structural invariants: the provider
// relation is acyclic (hierarchy), nodes only connect within shared regions,
// and no node peers with a member of its own customer tree.
package topology

import (
	"fmt"
	"math/bits"
	"sync"

	"bgpchurn/internal/graph"
)

// NodeID is a dense node index in [0, N).
type NodeID int32

// None is the invalid NodeID.
const None NodeID = -1

// NodeType classifies an AS per the paper's four-tier taxonomy.
type NodeType uint8

const (
	// T is a tier-1 transit provider: no providers, clique-peered with all
	// other T nodes, present in every region.
	T NodeType = iota
	// M is a mid-level transit provider with one or more providers and
	// optional M-M peering.
	M
	// CP is a stub content provider; it has providers and may peer with M
	// and CP nodes.
	CP
	// C is a stub customer network; it has providers and never peers.
	C
	numNodeTypes
)

// NodeTypes lists all types in hierarchy order, for iteration.
var NodeTypes = [...]NodeType{T, M, CP, C}

// String returns the paper's name for the node type.
func (t NodeType) String() string {
	switch t {
	case T:
		return "T"
	case M:
		return "M"
	case CP:
		return "CP"
	case C:
		return "C"
	}
	return fmt.Sprintf("NodeType(%d)", uint8(t))
}

// IsStub reports whether the type is a stub (no customers): CP or C.
func (t NodeType) IsStub() bool { return t == CP || t == C }

// IsTransit reports whether the type provides transit: T or M.
func (t NodeType) IsTransit() bool { return t == T || t == M }

// Relation is the business relationship of a neighbor, from the local
// node's point of view.
type Relation int8

const (
	// Customer: the neighbor buys transit from us.
	Customer Relation = iota
	// Peer: settlement-free peering.
	Peer
	// Provider: we buy transit from the neighbor.
	Provider
	// NotConnected is returned for non-adjacent node pairs.
	NotConnected Relation = -1
)

// String returns a short name for the relation.
func (r Relation) String() string {
	switch r {
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	case Provider:
		return "provider"
	case NotConnected:
		return "none"
	}
	return fmt.Sprintf("Relation(%d)", int8(r))
}

// Invert returns the relation as seen from the other end of the link.
func (r Relation) Invert() Relation {
	switch r {
	case Customer:
		return Provider
	case Provider:
		return Customer
	default:
		return r
	}
}

// RegionSet is a bitmask of the regions a node is present in. The model
// supports up to 32 regions; the Baseline uses 5.
type RegionSet uint32

// HasRegion reports whether region i is in the set.
func (s RegionSet) HasRegion(i int) bool { return s&(1<<uint(i)) != 0 }

// Add returns the set with region i added.
func (s RegionSet) Add(i int) RegionSet { return s | 1<<uint(i) }

// Overlaps reports whether the two sets share a region. Only nodes with
// overlapping region sets may connect.
func (s RegionSet) Overlaps(o RegionSet) bool { return s&o != 0 }

// Count returns the number of regions in the set.
func (s RegionSet) Count() int { return bits.OnesCount32(uint32(s)) }

// Node is one AS. Neighbor lists are segregated by relation; the same
// neighbor never appears in two lists.
type Node struct {
	ID        NodeID
	Type      NodeType
	Regions   RegionSet
	Providers []NodeID
	Customers []NodeID
	Peers     []NodeID
}

// Degree returns the node's total degree across all relations.
func (n *Node) Degree() int {
	return len(n.Providers) + len(n.Customers) + len(n.Peers)
}

// MHD returns the node's multihoming degree (its number of providers).
func (n *Node) MHD() int { return len(n.Providers) }

// Neighbor pairs a neighbor's ID with its relation as seen from the local
// node. Simulation engines consume flattened []Neighbor lists.
type Neighbor struct {
	ID  NodeID
	Rel Relation
}

// Topology is an immutable annotated AS graph produced by Generate.
type Topology struct {
	Nodes      []Node
	NumRegions int
	Seed       uint64 // generator seed, kept for provenance

	// csrOnce/csr lazily cache the flattened CSR adjacency (see CSR);
	// unexported so struct-literal construction and serialization are
	// unaffected. The sync.Once makes a Topology non-copyable, which it
	// already was by contract (immutable, shared by pointer).
	csrOnce sync.Once
	csr     *Adjacency
}

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.Nodes) }

// Node returns the node with the given id.
func (t *Topology) Node(id NodeID) *Node { return &t.Nodes[id] }

// Relation returns the relation of b as seen from a, or NotConnected.
func (t *Topology) Relation(a, b NodeID) Relation {
	n := &t.Nodes[a]
	for _, v := range n.Customers {
		if v == b {
			return Customer
		}
	}
	for _, v := range n.Peers {
		if v == b {
			return Peer
		}
	}
	for _, v := range n.Providers {
		if v == b {
			return Provider
		}
	}
	return NotConnected
}

// Neighbors returns a's neighbors with relations, appended to dst.
func (t *Topology) Neighbors(a NodeID, dst []Neighbor) []Neighbor {
	n := &t.Nodes[a]
	for _, v := range n.Customers {
		dst = append(dst, Neighbor{ID: v, Rel: Customer})
	}
	for _, v := range n.Peers {
		dst = append(dst, Neighbor{ID: v, Rel: Peer})
	}
	for _, v := range n.Providers {
		dst = append(dst, Neighbor{ID: v, Rel: Provider})
	}
	return dst
}

// NodesOfType returns the IDs of all nodes of the given type.
func (t *Topology) NodesOfType(typ NodeType) []NodeID {
	var ids []NodeID
	for i := range t.Nodes {
		if t.Nodes[i].Type == typ {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// CountByType returns the node count per type, indexed by NodeType.
func (t *Topology) CountByType() [4]int {
	var c [4]int
	for i := range t.Nodes {
		c[t.Nodes[i].Type]++
	}
	return c
}

// Edges returns the total number of links (transit + peering).
func (t *Topology) Edges() (transit, peering int) {
	for i := range t.Nodes {
		transit += len(t.Nodes[i].Customers)
		peering += len(t.Nodes[i].Peers)
	}
	return transit, peering / 2
}

// Undirected returns the plain undirected adjacency view (all link types).
func (t *Topology) Undirected() *graph.Undirected {
	g := graph.NewUndirected(t.N())
	for i := range t.Nodes {
		n := &t.Nodes[i]
		for _, c := range n.Customers {
			g.AddEdge(int32(n.ID), int32(c))
		}
		for _, p := range n.Peers {
			if p > n.ID { // add each peering once
				g.AddEdge(int32(n.ID), int32(p))
			}
		}
	}
	return g
}

// ProviderDAG returns the provider→customer directed view used for
// hierarchy (acyclicity) checks and customer cones.
func (t *Topology) ProviderDAG() *graph.Directed {
	g := graph.NewDirected(t.N())
	for i := range t.Nodes {
		for _, c := range t.Nodes[i].Customers {
			g.AddEdge(int32(t.Nodes[i].ID), int32(c))
		}
	}
	return g
}

// InCustomerTree reports whether descendant lies in ancestor's customer
// cone (reachable via customer edges). Runs a DFS with early exit.
func (t *Topology) InCustomerTree(ancestor, descendant NodeID) bool {
	if ancestor == descendant {
		return false
	}
	seen := make(map[NodeID]struct{})
	stack := append([]NodeID(nil), t.Nodes[ancestor].Customers...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == descendant {
			return true
		}
		if _, ok := seen[u]; ok {
			continue
		}
		seen[u] = struct{}{}
		stack = append(stack, t.Nodes[u].Customers...)
	}
	return false
}

// CustomerConeSize returns the number of nodes in a's customer cone.
func (t *Topology) CustomerConeSize(a NodeID) int {
	seen := make(map[NodeID]struct{})
	stack := append([]NodeID(nil), t.Nodes[a].Customers...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[u]; ok {
			continue
		}
		seen[u] = struct{}{}
		stack = append(stack, t.Nodes[u].Customers...)
	}
	return len(seen)
}
