package topology

// Adjacency is the flattened CSR (compressed sparse row) view of a
// topology's neighbor lists. Row i spans [Offsets[i], Offsets[i+1]) in the
// column arrays; within a row, slots follow the canonical Neighbors order
// (customers, then peers, then providers), so a CSR slot index is
// interchangeable with the slot index every simulation engine uses.
//
// The arrays are immutable once built and shared by every consumer of the
// topology: simulation engines lay their per-neighbor state out parallel to
// them and sub-slice rows instead of allocating per-node neighbor lists,
// which keeps the hot transmit→decide→reconcile loop walking contiguous
// memory.
type Adjacency struct {
	// Offsets has length N+1; node i's slots are Offsets[i]..Offsets[i+1].
	Offsets []int32
	// IDs[k] is the neighbor node ID at slot k.
	IDs []NodeID
	// Rels[k] is the relation of IDs[k] as seen from the row's node.
	Rels []Relation
	// Reverse[k] is the row node's slot index inside neighbor IDs[k]'s row,
	// so a message can be attributed to its sending session without a
	// lookup. -1 marks an asymmetric adjacency (invalid topology).
	Reverse []int32
}

// Degree returns node id's total neighbor count.
func (a *Adjacency) Degree(id NodeID) int {
	return int(a.Offsets[id+1] - a.Offsets[id])
}

// Row returns node id's slot range [lo, hi) in the column arrays.
func (a *Adjacency) Row(id NodeID) (lo, hi int32) {
	return a.Offsets[id], a.Offsets[id+1]
}

// Symmetric reports whether every slot found its reverse slot, i.e. the
// adjacency lists agree in both directions.
func (a *Adjacency) Symmetric() bool {
	for _, r := range a.Reverse {
		if r < 0 {
			return false
		}
	}
	return true
}

// CSR returns the topology's flattened adjacency, building it on first use
// and caching it; the result is shared and must not be mutated. Safe for
// concurrent use: parallel experiment workers running separate networks
// over one topology share a single copy.
func (t *Topology) CSR() *Adjacency {
	t.csrOnce.Do(func() { t.csr = buildCSR(t) })
	return t.csr
}

// buildCSR flattens the per-node neighbor lists into one CSR block.
func buildCSR(t *Topology) *Adjacency {
	n := t.N()
	a := &Adjacency{Offsets: make([]int32, n+1)}
	total := 0
	for i := range t.Nodes {
		total += t.Nodes[i].Degree()
		a.Offsets[i+1] = int32(total)
	}
	a.IDs = make([]NodeID, total)
	a.Rels = make([]Relation, total)
	a.Reverse = make([]int32, total)

	// slotOf maps a directed edge (from, to) to the slot of `to` in
	// `from`'s row, packed into one uint64 key.
	slotOf := make(map[uint64]int32, total)
	edge := func(from, to NodeID) uint64 {
		return uint64(uint32(from))<<32 | uint64(uint32(to))
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		k := a.Offsets[i]
		put := func(id NodeID, rel Relation) {
			a.IDs[k] = id
			a.Rels[k] = rel
			slotOf[edge(nd.ID, id)] = k - a.Offsets[i]
			k++
		}
		for _, v := range nd.Customers {
			put(v, Customer)
		}
		for _, v := range nd.Peers {
			put(v, Peer)
		}
		for _, v := range nd.Providers {
			put(v, Provider)
		}
	}
	for i := range t.Nodes {
		lo, hi := a.Offsets[i], a.Offsets[i+1]
		for k := lo; k < hi; k++ {
			if s, ok := slotOf[edge(a.IDs[k], NodeID(i))]; ok {
				a.Reverse[k] = s
			} else {
				a.Reverse[k] = -1
			}
		}
	}
	return a
}
