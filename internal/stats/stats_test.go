package stats

import (
	"math"
	"testing"
	"testing/quick"

	"bgpchurn/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !approx(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestMeanCI(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 10 + src.NormFloat64()
	}
	mean, hw := MeanCI(xs, 0.95)
	if !approx(mean, 10, 0.15) {
		t.Fatalf("mean = %v", mean)
	}
	// Expected half width: 1.96 * sigma/sqrt(n) ~ 1.96/31.6 ~ 0.062.
	if hw < 0.04 || hw > 0.09 {
		t.Fatalf("half width = %v", hw)
	}
	if _, hw := MeanCI([]float64{5}, 0.95); hw != 0 {
		t.Fatal("single sample should have zero CI")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.025, -1.959964}, {0.995, 2.575829},
		{0.84134, 0.99998}, // ~Phi(1)
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); !approx(got, c.want, 1e-3) {
			t.Errorf("quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Error("quantile at bounds should be NaN")
	}
}

func TestMannKendallIncreasing(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i) * 2
	}
	res, err := MannKendall(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Increasing || res.Decreasing {
		t.Fatalf("monotone series not detected: %+v", res)
	}
	if !approx(res.Slope, 2, 1e-9) {
		t.Fatalf("Sen slope = %v, want 2", res.Slope)
	}
	if res.PValue > 1e-6 {
		t.Fatalf("p-value = %v for a perfect trend", res.PValue)
	}
}

func TestMannKendallDecreasing(t *testing.T) {
	xs := []float64{10, 9, 8.5, 8, 7, 6.2, 5, 4, 3, 2, 1, 0.5}
	res, err := MannKendall(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decreasing {
		t.Fatalf("decreasing series not detected: %+v", res)
	}
	if res.Slope >= 0 {
		t.Fatalf("slope = %v, want negative", res.Slope)
	}
}

func TestMannKendallNoTrend(t *testing.T) {
	src := rng.New(42)
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 60)
		for i := range xs {
			xs[i] = src.NormFloat64()
		}
		res, err := MannKendall(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Increasing || res.Decreasing {
			rejections++
		}
	}
	// At the 5% level we expect ~2 false rejections in 40 trials; 8 would
	// be far outside that.
	if rejections > 8 {
		t.Fatalf("%d/%d false trend detections on white noise", rejections, trials)
	}
}

func TestMannKendallNoisyTrendDetected(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 0.05*float64(i) + 3*src.NormFloat64()
	}
	res, err := MannKendall(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Increasing {
		t.Fatalf("buried trend not detected: %+v", res)
	}
	if res.Slope < 0.02 || res.Slope > 0.08 {
		t.Fatalf("Sen slope = %v, want ~0.05", res.Slope)
	}
}

func TestMannKendallTies(t *testing.T) {
	xs := []float64{1, 1, 1, 2, 2, 3, 3, 3, 4}
	res, err := MannKendall(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Increasing {
		t.Fatalf("tied increasing series not detected: %+v", res)
	}
	// All-constant series: S = 0, no trend, no NaNs.
	res, err = MannKendall([]float64{5, 5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.S != 0 || res.Increasing || res.Decreasing {
		t.Fatalf("constant series misjudged: %+v", res)
	}
	if math.IsNaN(res.Z) || math.IsNaN(res.PValue) {
		t.Fatal("NaNs on constant series")
	}
}

func TestMannKendallTooShort(t *testing.T) {
	if _, err := MannKendall([]float64{1, 2}); err == nil {
		t.Fatal("accepted 2-point series")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 7, 9, 11, 13} // y = 3 + 2x
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Coeffs[0], 3, 1e-9) || !approx(fit.Coeffs[1], 2, 1e-9) {
		t.Fatalf("coeffs = %v", fit.Coeffs)
	}
	if !approx(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", fit.R2)
	}
	if !approx(fit.Eval(10), 23, 1e-9) {
		t.Fatalf("Eval(10) = %v", fit.Eval(10))
	}
}

func TestQuadraticFitExact(t *testing.T) {
	x := []float64{1000, 2000, 4000, 6000, 8000, 10000}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 1 + 0.002*v + 3e-7*v*v // paper-scale magnitudes
	}
	fit, err := QuadraticFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Coeffs[0], 1, 1e-6) || !approx(fit.Coeffs[1], 0.002, 1e-9) || !approx(fit.Coeffs[2], 3e-7, 1e-12) {
		t.Fatalf("coeffs = %v", fit.Coeffs)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestQuadraticBeatsLinearOnQuadraticData(t *testing.T) {
	src := rng.New(3)
	x := make([]float64, 10)
	y := make([]float64, 10)
	for i := range x {
		x[i] = float64((i + 1) * 1000)
		y[i] = 2e-7*x[i]*x[i] + 50*src.NormFloat64()
	}
	lin, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := QuadraticFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if quad.R2 <= lin.R2 {
		t.Fatalf("quadratic R2 %v <= linear R2 %v on quadratic data", quad.R2, lin.R2)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 1); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Fatal("negative degree accepted")
	}
	// Duplicate x values make degree-1 normal equations singular.
	if _, err := PolyFit([]float64{2, 2, 2}, []float64{1, 2, 3}, 2); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestPolyFitConstant(t *testing.T) {
	fit, err := PolyFit([]float64{1, 2, 3}, []float64{4, 4, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Coeffs[0], 4, 1e-12) || !approx(fit.R2, 1, 1e-12) {
		t.Fatalf("constant fit = %+v", fit)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single-element quantile = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if !approx(s.Mean, 22, 1e-12) || !approx(s.Median, 3, 1e-12) || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P90 < 4 || s.P90 > 100 {
		t.Fatalf("P90 = %v", s.P90)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty summary not zero")
	}
}

func TestRelativeSeries(t *testing.T) {
	rs := RelativeSeries([]float64{2, 4, 8})
	if rs[0] != 1 || rs[1] != 2 || rs[2] != 4 {
		t.Fatalf("relative = %v", rs)
	}
	if out := RelativeSeries([]float64{0, 5}); out[0] != 0 || out[1] != 0 {
		t.Fatal("zero-start series should yield zeros")
	}
	if len(RelativeSeries(nil)) != 0 {
		t.Fatal("nil series")
	}
}

func TestGrowthFactor(t *testing.T) {
	if g := GrowthFactor([]float64{2, 4, 37}); !approx(g, 18.5, 1e-12) {
		t.Fatalf("growth factor = %v", g)
	}
	if GrowthFactor(nil) != 0 || GrowthFactor([]float64{0, 1}) != 0 {
		t.Fatal("degenerate growth factors")
	}
}

// Property: Sen's slope of any strictly increasing series is positive, and
// a linear fit of noiseless linear data recovers it with R2 = 1.
func TestPropertyLinearRecovery(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		a := src.UniformFloat(-100, 100)
		b := src.UniformFloat(-5, 5)
		n := 5 + src.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) + src.Float64() // strictly increasing
			y[i] = a + b*x[i]
		}
		fit, err := LinearFit(x, y)
		if err != nil {
			return false
		}
		return approx(fit.Coeffs[0], a, 1e-6*(1+math.Abs(a))) &&
			approx(fit.Coeffs[1], b, 1e-6*(1+math.Abs(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
