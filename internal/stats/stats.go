// Package stats provides the statistical tools the paper relies on: the
// Mann-Kendall trend test with Sen's slope estimator (used on the noisy
// monitor churn series of Fig. 1), ordinary least squares linear and
// quadratic regression with coefficients of determination (used to classify
// the growth of the churn factors in §4–5), and basic summary statistics
// with normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanCI returns the sample mean with the half-width of its normal
// approximation confidence interval at the given confidence level (e.g.
// 0.95). The paper reports 95% intervals over 100 event originators, where
// the normal approximation is appropriate.
func MeanCI(xs []float64, level float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	z := normalQuantile(0.5 + level/2)
	return mean, z * StdDev(xs) / math.Sqrt(float64(n))
}

// normalQuantile computes the standard normal quantile via the
// Beasley-Springer-Moro rational approximation (|error| < 3e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// TrendResult is the outcome of the Mann-Kendall test.
type TrendResult struct {
	// S is the Mann-Kendall statistic: the number of concordant minus
	// discordant pairs.
	S int64
	// Z is the normal-approximation test statistic with tie correction and
	// continuity correction.
	Z float64
	// PValue is the two-sided p-value of the null "no monotone trend".
	PValue float64
	// Slope is Sen's slope: the median of all pairwise slopes, a robust
	// estimate of the per-step trend.
	Slope float64
	// Increasing / Decreasing summarize the direction at the 5% level.
	Increasing, Decreasing bool
}

// MannKendall runs the Mann-Kendall trend test on a regularly sampled
// series (the paper's estimator for the churn growth in Fig. 1). It needs
// at least 3 points.
func MannKendall(xs []float64) (TrendResult, error) {
	n := len(xs)
	if n < 3 {
		return TrendResult{}, fmt.Errorf("stats: Mann-Kendall needs >= 3 points, got %d", n)
	}
	var s int64
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case xs[j] > xs[i]:
				s++
			case xs[j] < xs[i]:
				s--
			}
		}
	}
	// Variance with tie correction: group identical values.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	fn := float64(n)
	variance := fn * (fn - 1) * (2*fn + 5) / 18
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		t := float64(j - i)
		if t > 1 {
			variance -= t * (t - 1) * (2*t + 5) / 18
		}
		i = j
	}
	var z float64
	if variance > 0 {
		switch {
		case s > 0:
			z = (float64(s) - 1) / math.Sqrt(variance)
		case s < 0:
			z = (float64(s) + 1) / math.Sqrt(variance)
		}
	}
	p := 2 * (1 - normalCDF(math.Abs(z)))
	res := TrendResult{
		S:      s,
		Z:      z,
		PValue: p,
		Slope:  senSlope(xs),
	}
	if p < 0.05 {
		res.Increasing = s > 0
		res.Decreasing = s < 0
	}
	return res, nil
}

// senSlope returns the median of all pairwise slopes (x[j]-x[i])/(j-i).
func senSlope(xs []float64) float64 {
	n := len(xs)
	slopes := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			slopes = append(slopes, (xs[j]-xs[i])/float64(j-i))
		}
	}
	if len(slopes) == 0 {
		return 0
	}
	sort.Float64s(slopes)
	m := len(slopes)
	if m%2 == 1 {
		return slopes[m/2]
	}
	return (slopes[m/2-1] + slopes[m/2]) / 2
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Fit is a least-squares polynomial fit with its quality measures.
type Fit struct {
	// Coeffs are the polynomial coefficients, constant term first.
	Coeffs []float64
	// R2 is the coefficient of determination.
	R2 float64
}

// Eval evaluates the fitted polynomial at x.
func (f Fit) Eval(x float64) float64 {
	y, pow := 0.0, 1.0
	for _, c := range f.Coeffs {
		y += c * pow
		pow *= x
	}
	return y
}

// LinearFit fits y = a + b·x by ordinary least squares.
func LinearFit(x, y []float64) (Fit, error) {
	return PolyFit(x, y, 1)
}

// QuadraticFit fits y = a + b·x + c·x² by ordinary least squares. The paper
// uses quadratic fits (R² ≈ 0.92) to characterize the superlinear growth of
// Uc(T).
func QuadraticFit(x, y []float64) (Fit, error) {
	return PolyFit(x, y, 2)
}

// PolyFit fits a degree-d polynomial by solving the normal equations with
// Gaussian elimination. Suitable for the small, well-conditioned fits used
// here (d <= 3, x scaled to ~10^4).
func PolyFit(x, y []float64, degree int) (Fit, error) {
	n := len(x)
	if n != len(y) {
		return Fit{}, fmt.Errorf("stats: x and y lengths differ (%d vs %d)", n, len(y))
	}
	if degree < 0 {
		return Fit{}, fmt.Errorf("stats: negative degree")
	}
	if n < degree+1 {
		return Fit{}, fmt.Errorf("stats: need >= %d points for degree %d, got %d", degree+1, degree, n)
	}
	// Scale x to improve conditioning of the normal equations.
	maxAbs := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	scale := 1.0
	if maxAbs > 0 {
		scale = 1 / maxAbs
	}
	k := degree + 1
	// Build the normal equations A·c = b over scaled x.
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
	}
	for t := 0; t < n; t++ {
		xs := x[t] * scale
		powers := make([]float64, 2*degree+1)
		powers[0] = 1
		for p := 1; p <= 2*degree; p++ {
			powers[p] = powers[p-1] * xs
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				a[i][j] += powers[i+j]
			}
			b[i] += y[t] * powers[i]
		}
	}
	coeffs, err := solve(a, b)
	if err != nil {
		return Fit{}, err
	}
	// Undo the x scaling: coefficient of x^i was fit against (x·scale)^i.
	pow := 1.0
	for i := range coeffs {
		coeffs[i] *= pow
		pow *= scale
	}
	fit := Fit{Coeffs: coeffs}
	// R².
	meanY := Mean(y)
	var ssTot, ssRes float64
	for t := 0; t < n; t++ {
		d := y[t] - meanY
		ssTot += d * d
		r := y[t] - fit.Eval(x[t])
		ssRes += r * r
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		fit.R2 = 1
	}
	return fit, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy-free
// basis (the inputs are consumed).
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular normal equations")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns 0 for an empty slice. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary holds the distribution summary the experiment framework reports
// per node type ("significant variation across nodes of the same type",
// §4.2 of the paper).
type Summary struct {
	Mean, Median, P90, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	maxV := xs[0]
	for _, v := range xs {
		if v > maxV {
			maxV = v
		}
	}
	return Summary{
		Mean:   Mean(xs),
		Median: Quantile(xs, 0.5),
		P90:    Quantile(xs, 0.9),
		Max:    maxV,
	}
}

// RelativeSeries normalizes a series to its first element, the form the
// paper uses for every "relative increase" figure (Figs. 6–9, 11). A zero
// first element yields zeros.
func RelativeSeries(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 || xs[0] == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / xs[0]
	}
	return out
}

// GrowthFactor returns last/first, the paper's "factor X over our range of
// topology sizes" summary. Returns 0 when the series is empty or starts at
// zero.
func GrowthFactor(xs []float64) float64 {
	if len(xs) == 0 || xs[0] == 0 {
		return 0
	}
	return xs[len(xs)-1] / xs[0]
}
