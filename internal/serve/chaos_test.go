// Chaos tier: crash/restart resume fidelity, overload shedding, graceful
// drain, and slow-subscriber isolation for the serving layer. Everything
// here runs against the synthetic compute stub, so the tier is fast enough
// for -race on every CI run.
package serve

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bgpchurn/internal/core"
)

const crashGrid = `{"scenarios":["BASELINE"],"sizes":[100,200,300],"tenant":"alice","origins":5}`

// TestKillAndRestartResumeFidelity kills the server mid-grid (Close is the
// in-process stand-in for SIGKILL: nothing is drained, only what the
// journal already holds survives) and restarts on the same journal: the
// finished cells must be recovered, only the missing ones recomputed, and
// the final CSV byte-identical to an uninterrupted run.
func TestKillAndRestartResumeFidelity(t *testing.T) {
	dir := t.TempDir()

	// Reference: an uninterrupted run on its own journal.
	refSrv, refHS := newTestServer(t, Config{Workers: 1, Journal: filepath.Join(dir, "ref.journal")})
	installStub(refSrv, false)
	_, ref, _ := submit(t, refHS.URL, crashGrid)
	if waitJob(t, refHS.URL, ref.ID).State != JobDone {
		t.Fatal("reference run failed")
	}
	refCSV := fetchCSV(t, refHS.URL, ref.ID)

	// Crash run: one worker serializes the cells; let exactly two finish,
	// then kill the server while the third is in flight.
	journal := filepath.Join(dir, "crash.journal")
	srv1, hs1 := newTestServer(t, Config{Workers: 1, Journal: journal})
	st1 := installStub(srv1, true)
	_, v1, _ := submit(t, hs1.URL, crashGrid)
	st1.release(2)
	deadline := time.Now().Add(5 * time.Second)
	for getJob(t, hs1.URL, v1.ID).Counts[cellDone] != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("first two cells never finished: %+v", getJob(t, hs1.URL, v1.ID))
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv1.Close() // crash: third cell dies in flight, never journaled

	recs, _, err := core.LoadJournal(journal)
	if err != nil {
		t.Fatalf("LoadJournal after crash: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("journal holds %d records after crash, want 2", len(recs))
	}

	// Restart on the same journal; resubmit the same grid.
	srv2, hs2 := newTestServer(t, Config{Workers: 1, Journal: journal})
	st2 := installStub(srv2, false)
	if srv2.Recovered() != 2 {
		t.Fatalf("Recovered() = %d, want 2", srv2.Recovered())
	}
	_, v2, _ := submit(t, hs2.URL, crashGrid)
	final := waitJob(t, hs2.URL, v2.ID)
	if final.State != JobDone {
		t.Fatalf("restarted run state = %s (err=%q)", final.State, final.Err)
	}

	// Only the missing cell was recomputed; the rest came from the journal.
	if st2.total() != 1 {
		t.Fatalf("restart recomputed %d cells, want 1", st2.total())
	}
	resumed := 0
	for _, c := range final.Cells {
		switch c.Detail {
		case "resumed":
			resumed++
		case "computed":
		default:
			t.Fatalf("cell %s/%d detail = %q, want resumed or computed", c.Scenario, c.N, c.Detail)
		}
	}
	if resumed != 2 {
		t.Fatalf("resumed cells = %d, want 2", resumed)
	}
	if stats := srv2.Scheduler().CacheStats(); stats.Resumed != 2 {
		t.Fatalf("CacheStats.Resumed = %d, want 2", stats.Resumed)
	}

	// The recovery guarantee: byte-identical output.
	if got := fetchCSV(t, hs2.URL, v2.ID); got != refCSV {
		t.Fatalf("post-crash CSV differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, refCSV)
	}
}

// TestJournalLockRefusesSecondServer: two daemons must not share one
// journal file — the second New fails fast with the typed lock error.
func TestJournalLockRefusesSecondServer(t *testing.T) {
	if !core.JournalLocksSupported() {
		t.Skip("no advisory file locks on this platform")
	}
	journal := filepath.Join(t.TempDir(), "cells.journal")
	srv1, err := New(Config{Workers: 1, Journal: journal})
	if err != nil {
		t.Fatalf("first New: %v", err)
	}
	defer srv1.Close()
	if _, err := New(Config{Workers: 1, Journal: journal}); err == nil {
		t.Fatal("second server on the same journal was allowed")
	} else if !strings.Contains(err.Error(), "already locked") {
		t.Fatalf("second New error = %v, want journal lock refusal", err)
	}
}

// TestOverloadShedding fills the admission queue and checks the overflow
// submission is shed with 429 + Retry-After (never queued), the shed
// counter moves, and admission recovers once the queue drains.
func TestOverloadShedding(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 1, QueueCap: 1, RetryAfter: 7 * time.Second})
	st := installStub(srv, true)

	status, v1, _ := submit(t, hs.URL, `{"scenarios":["BASELINE"],"sizes":[100]}`)
	if status != http.StatusAccepted {
		t.Fatalf("first submission status = %d, want 202", status)
	}

	resp, err := http.Post(hs.URL+"/jobs", "application/json",
		strings.NewReader(`{"scenarios":["BASELINE"],"sizes":[200]}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429 (%s)", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}

	metrics := fetchText(t, hs.URL+"/metrics")
	if !strings.Contains(metrics, "bgpchurn_serve_jobs_shed_total 1") {
		t.Fatalf("/metrics missing shed counter:\n%s", grepLines(metrics, "serve_jobs"))
	}

	// Queue drains -> admission recovers.
	st.releaseAll()
	if waitJob(t, hs.URL, v1.ID).State != JobDone {
		t.Fatal("first job failed")
	}
	status, _, _ = submit(t, hs.URL, `{"scenarios":["BASELINE"],"sizes":[200]}`)
	if status != http.StatusAccepted {
		t.Fatalf("post-drain submission status = %d, want 202", status)
	}
}

// TestDrainCheckpointsInflight drains a server with one cell in flight and
// two pending: the pending cells are shed, the in-flight cell runs to
// completion and lands in the journal, and a restarted server recovers it.
func TestDrainCheckpointsInflight(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "drain.journal")
	srv, hs := newTestServer(t, Config{Workers: 1, Journal: journal})
	st := installStub(srv, true)

	_, v, _ := submit(t, hs.URL, crashGrid)
	deadline := time.Now().Add(5 * time.Second)
	for getJob(t, hs.URL, v.ID).State != JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		_ = srv.Drain(nil)
	}()

	// While draining: not ready, and submissions bounce with 503.
	waitStatus(t, hs.URL+"/readyz", http.StatusServiceUnavailable)
	status, _, body := submit(t, hs.URL, `{"scenarios":["TREE"],"sizes":[100]}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: status = %d, want 503 (%s)", status, body)
	}
	select {
	case <-drainDone:
		t.Fatal("drain finished with a cell still in flight")
	default:
	}

	// Let the in-flight cell finish; the drain must now complete.
	st.release(1)
	select {
	case <-drainDone:
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed after the in-flight cell finished")
	}

	final := getJob(t, hs.URL, v.ID)
	if final.State != JobCancelled {
		t.Fatalf("drained job state = %s, want cancelled", final.State)
	}
	if final.Counts[cellDone] != 1 || final.Counts[cellCancelled] != 2 {
		t.Fatalf("drained job counts = %v, want 1 done + 2 cancelled", final.Counts)
	}

	// The finished cell survived; a restart recovers exactly it.
	srv2, err := New(Config{Workers: 1, Journal: journal})
	if err != nil {
		t.Fatalf("restart after drain: %v", err)
	}
	defer srv2.Close()
	if srv2.Recovered() != 1 {
		t.Fatalf("Recovered() after drain = %d, want 1", srv2.Recovered())
	}
}

// TestDrainDeadlineHardCancels: when the drain grace expires with a cell
// still wedged, the cell is hard-cancelled and never journaled.
func TestDrainDeadlineHardCancels(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "wedge.journal")
	srv, hs := newTestServer(t, Config{Workers: 1, Journal: journal})
	installStub(srv, true) // gate never released: the cell is wedged

	_, v, _ := submit(t, hs.URL, `{"scenarios":["BASELINE"],"sizes":[100]}`)
	deadline := time.Now().Add(5 * time.Second)
	for getJob(t, hs.URL, v.ID).State != JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Drain(dctx) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain wedged past its deadline")
	}

	final := getJob(t, hs.URL, v.ID)
	if final.State != JobCancelled {
		t.Fatalf("wedged job state = %s, want cancelled", final.State)
	}
	recs, _, err := core.LoadJournal(journal)
	if err != nil {
		t.Fatalf("LoadJournal: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("hard-cancelled cell was journaled: %d records", len(recs))
	}
}

// TestSlowSSESubscriberDoesNotBlock opens a stream and never reads it while
// a job runs: the broker drops events for the laggard instead of blocking,
// so the job still completes promptly.
func TestSlowSSESubscriberDoesNotBlock(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2})
	st := installStub(srv, true)

	_, v, _ := submit(t, hs.URL, `{"scenarios":["BASELINE"],"sizes":[100,200]}`)

	// A subscriber that connects and then never reads a byte.
	resp, err := http.Get(hs.URL + "/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("stream Content-Type = %q", ct)
	}

	st.releaseAll()
	if final := waitJob(t, hs.URL, v.ID); final.State != JobDone {
		t.Fatalf("job state = %s with a slow subscriber attached", final.State)
	}

	// A post-completion stream yields the one-shot terminal snapshot.
	resp2, err := http.Get(hs.URL + "/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	snap, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(snap), "event: job") || !strings.Contains(string(snap), `"state":"done"`) {
		t.Fatalf("terminal stream snapshot missing job event:\n%s", snap)
	}
}

// --- small helpers ---

func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(raw)
}

// grepLines filters text to the lines mentioning needle, for terse failures.
func grepLines(text, needle string) string {
	var b strings.Builder
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		if strings.Contains(sc.Text(), needle) {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// waitStatus polls url until it answers with want.
func waitStatus(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s never reached status %d", url, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
