package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"bgpchurn/internal/obs"
	"bgpchurn/internal/report"
)

// maxSubmitBytes bounds the POST /jobs body; a grid submission is a small
// JSON document, so anything larger is hostile or broken.
const maxSubmitBytes = 1 << 20

// buildMux wires the full API surface: the jobs API, health endpoints, the
// global progress stream, and the folded-in observability mux (/metrics,
// /debug/vars, /debug/pprof).
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/result.csv", s.handleResultCSV)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /progress", s.progress)
	obs.RegisterDebug(mux, s.metrics)
	s.mux = mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits one job: validate (400), check drain (503), check the
// admission bound (429 + Retry-After), then register the job with the
// fairness structures and wake the dispatcher.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.probes.JobsRejected.Inc()
		writeError(w, http.StatusBadRequest, "invalid submission: %v", err)
		return
	}
	j, err := s.buildJob(req)
	if err != nil {
		s.probes.JobsRejected.Inc()
		writeError(w, http.StatusBadRequest, "invalid submission: %v", err)
		return
	}

	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		j.cancel(errors.New("serve: draining"))
		writeError(w, http.StatusServiceUnavailable, "server is draining; resubmit after restart")
		return
	}
	if s.active >= s.cfg.QueueCap {
		s.mu.Unlock()
		j.cancel(errors.New("serve: shed"))
		s.probes.JobsShed.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests,
			"admission queue full (%d jobs); retry after %s", s.cfg.QueueCap, s.cfg.RetryAfter)
		return
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	s.jobs[j.id] = j
	t := s.tenants[j.tenant]
	if t == nil {
		t = &tenant{name: j.tenant, weight: j.weight, credit: j.weight}
		s.tenants[j.tenant] = t
		s.order = sortTenantsInto(s.order, j.tenant)
	} else if j.weight > t.weight {
		t.weight = j.weight
	}
	t.jobs = append(t.jobs, j)
	for _, c := range j.cells {
		s.watch[c.key] = append(s.watch[c.key], c)
	}
	s.active++
	s.probes.JobsAdmitted.Inc()
	s.probes.QueueDepth.Add(1)
	s.cond.Broadcast()
	view := j.viewLocked(false)
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, view)
}

// handleList summarizes every known job, newest first.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.viewLocked(false))
	}
	s.mu.Unlock()
	// Deterministic order: by id, which is admission order.
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && views[k].ID < views[k-1].ID; k-- {
			views[k], views[k-1] = views[k-1], views[k]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	view := j.viewLocked(true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// handleCancel cancels one job: pending cells are shed immediately,
// in-flight cells are aborted through the job's context. Cancellation is
// scoped to the job — overlapping cells another tenant is computing are
// protected by the scheduler's foreign-cancellation handling.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	if j.state != JobQueued && j.state != JobRunning {
		view := j.viewLocked(false)
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, view)
		return
	}
	j.cancel(errors.New("cancelled by client"))
	s.shedPendingLocked(j, "cancelled by client")
	finished := j.remaining == 0
	if finished {
		s.finishJobLocked(j)
	}
	s.cond.Broadcast()
	view := j.viewLocked(false)
	s.mu.Unlock()
	if finished {
		s.publishFinished(j)
	}
	writeJSON(w, http.StatusOK, view)
}

// handleStream is the per-job SSE feed: "cell" events as cells advance and
// one terminal "job" event. A finished job gets a one-shot snapshot (the
// broker is closed at finish). Slow subscribers lose intermediate events
// rather than blocking computation — the broker publish path never waits.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	terminal := j.state != JobQueued && j.state != JobRunning
	view := j.viewLocked(true)
	s.mu.Unlock()
	if terminal {
		data, _ := json.Marshal(view)
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, ": bgpchurn job stream (finished)\n\nevent: job\ndata: %s\n\n", data)
		return
	}
	j.broker.ServeHTTP(w, r)
}

// handleResultCSV renders a done job's results as CSV, rows in submission
// order, floats at full round-trip precision — byte-identical across
// restarts for the same submission.
func (s *Server) handleResultCSV(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	state := j.state
	var table *report.Table
	if state == JobDone {
		table = j.resultTableLocked()
	}
	s.mu.Unlock()
	if table == nil {
		writeError(w, http.StatusConflict, "job is %s; results require state %q", state, JobDone)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_ = table.WriteCSV(w)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ready := !s.draining && !s.closed
	s.mu.Unlock()
	if !ready {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// handleStats exposes the shared scheduler's cache traffic plus the serving
// queue state — the numbers the dedup and shedding tests assert on.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := s.sched.CacheStats()
	s.mu.Lock()
	view := map[string]any{
		"cache":     stats,
		"active":    s.active,
		"inflight":  s.inflight,
		"queue_cap": s.cfg.QueueCap,
		"workers":   s.cfg.Workers,
		"recovered": s.recovered,
		"draining":  s.draining,
		"tenants":   len(s.tenants),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}
