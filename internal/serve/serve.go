// Package serve is churnd's serving layer: a long-lived, multi-tenant sweep
// server wrapping one shared core.Scheduler behind an HTTP API.
//
// Robustness is the design center (DESIGN.md, "Serving layer"):
//
//   - Admission control: the queue of admitted-but-unfinished jobs is
//     bounded; a submission beyond the bound is shed immediately with
//     429 + Retry-After instead of queueing unboundedly. Malformed or
//     out-of-bounds submissions are rejected with 400 before they can
//     consume any compute.
//   - Fairness: cells are dispatched by weighted round-robin over tenants,
//     and each job's concurrency budget is carved from the global worker
//     pool, so one tenant's 10k-cell grid cannot starve another's
//     two-cell probe.
//   - Dedup: every job runs through the shared scheduler's singleflight
//     result cache and checkpoint journal, so overlapping grids from
//     concurrent clients compute each distinct cell exactly once.
//   - Drain: Drain stops admitting, lets every in-flight cell run to
//     completion (each is checkpointed to the journal as it lands), sheds
//     undispatched cells, then closes the journal — a SIGTERM never loses
//     finished work. A drain deadline hard-cancels stragglers.
//   - Recovery: New replays the journal via Scheduler.Resume, so a daemon
//     killed mid-grid (even SIGKILL) restarts with every checkpointed cell
//     served from cache and only missing cells recomputed, byte-identical.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"bgpchurn/internal/core"
	"bgpchurn/internal/obs"
)

// Defaults for Config's zero values.
const (
	DefaultQueueCap    = 64
	DefaultMaxJobCells = 64
	DefaultMaxN        = 100_000
	DefaultMaxWeight   = 16
	DefaultRetryAfter  = 5 * time.Second
	// DefaultMinN keeps submissions above the smallest size the topology
	// generator supports meaningfully (the clique plus a few of each tier).
	DefaultMinN = 50
	// finishedRetention bounds how many finished jobs stay queryable; the
	// oldest are forgotten first, so a long-lived daemon's job table cannot
	// grow without bound.
	finishedRetention = 1024
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds concurrently computing cells across all jobs
	// (0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds admitted-but-unfinished jobs (0 = DefaultQueueCap);
	// submissions beyond it are shed with 429.
	QueueCap int
	// MaxJobCells bounds scenarios x sizes per job (0 = DefaultMaxJobCells).
	MaxJobCells int
	// MinN/MaxN bound admissible network sizes (0 = DefaultMinN/DefaultMaxN).
	MinN, MaxN int
	// CellTimeout, when > 0, is the per-cell deadline applied to every job
	// (a job may only tighten it, never exceed it).
	CellTimeout time.Duration
	// Retries is the scheduler's transient-fault retry budget per cell.
	Retries int
	// Journal is the shared checkpoint journal path; "" disables
	// checkpointing and restart recovery.
	Journal string
	// RetryAfter is the hint sent with 429 responses (0 = DefaultRetryAfter).
	RetryAfter time.Duration
	// Metrics is the hub to instrument into; nil builds a private one.
	Metrics *obs.Metrics
}

// Server is the serving layer: one shared scheduler, a bounded fair
// admission queue, and the HTTP API. Create with New, expose Handler, stop
// with Drain (graceful) or Close (immediate).
type Server struct {
	cfg       Config
	sched     *core.Scheduler
	metrics   *obs.Metrics
	probes    *obs.ServeProbes
	journal   *core.Journal
	recovered int
	mux       *http.ServeMux
	progress  *obs.ProgressBroker // global /progress feed
	unsub     []func()

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*Job
	tenants   map[string]*tenant
	order     []string // tenant names in WRR order (sorted)
	cursor    int
	nextID    uint64
	active    int // admitted and not yet finished (the admission queue depth)
	free      int // free global worker slots
	inflight  int // cells currently computing
	draining  bool
	closed    bool
	drained   chan struct{} // closed once draining && inflight == 0
	drainOnce sync.Once
	finished  []string // finished job IDs, oldest first, for retention
	watch     map[core.CellKey][]*cellRun
}

// New builds the server: it opens (and flocks) the journal, replays it into
// the shared scheduler's cache, and starts the dispatcher. The returned
// server is ready to serve; stop it with Drain or Close.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers()
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxJobCells <= 0 {
		cfg.MaxJobCells = DefaultMaxJobCells
	}
	if cfg.MinN <= 0 {
		cfg.MinN = DefaultMinN
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = DefaultMaxN
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		sched:    core.NewScheduler(1),
		metrics:  m,
		probes:   m.NewServeProbes(),
		progress: obs.NewProgressBroker(),
		jobs:     map[string]*Job{},
		tenants:  map[string]*tenant{},
		free:     cfg.Workers,
		drained:  make(chan struct{}),
		watch:    map[core.CellKey][]*cellRun{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.sched.SetObs(m)
	s.sched.SetRetryPolicy(cfg.Retries, 0)

	if cfg.Journal != "" {
		j, err := core.OpenJournal(cfg.Journal)
		if err != nil {
			return nil, err
		}
		recs, _, err := core.LoadJournal(cfg.Journal)
		if err != nil {
			j.Close()
			return nil, err
		}
		s.journal = j
		s.recovered = s.sched.Resume(recs)
		if s.recovered > 0 {
			s.probes.CellsRecovered.Add(uint64(s.recovered))
		}
		s.sched.SetJournal(j)
	}

	// Scheduler fan-out: cell events route provenance to watching jobs and
	// feed the global /progress stream; results feed rolling summaries.
	s.unsub = append(s.unsub, s.sched.SubscribeCells(s.onSchedulerCell))
	s.unsub = append(s.unsub, s.sched.SubscribeResults(s.onSchedulerResult))

	s.buildMux()
	go s.dispatch()
	return s, nil
}

// Scheduler returns the shared scheduler, for tests that stub the compute
// seams or inspect cache stats directly.
func (s *Server) Scheduler() *core.Scheduler { return s.sched }

// Metrics returns the server's metrics hub.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Recovered returns how many journal records were replayed at startup.
func (s *Server) Recovered() int { return s.recovered }

// Handler returns the server's HTTP API (jobs, health, metrics, pprof,
// progress), ready to mount on any http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Progress returns the global progress broker feeding /progress.
func (s *Server) Progress() *obs.ProgressBroker { return s.progress }

// onSchedulerCell receives every scheduler cell event (all jobs, all
// tenants). It records compute provenance on the job cells watching the
// key and mirrors the event to the global /progress stream. Runs on the
// scheduler's emit mutex: it must stay non-blocking.
func (s *Server) onSchedulerCell(cs core.CellStatus) {
	detail := ""
	switch cs.State {
	case core.CellStart:
		detail = "computing"
	case core.CellRetried:
		detail = "retrying"
	case core.CellDone:
		detail = "computed"
	case core.CellCached:
		detail = "cached"
	case core.CellResumed:
		detail = "resumed"
	case core.CellQuarantined:
		detail = "quarantined"
	case core.CellFailed:
		detail = "failed"
	}
	if detail != "" {
		s.mu.Lock()
		for _, c := range s.watch[cs.Key] {
			// A later cache hit must not overwrite the terminal provenance
			// ("computed" stays "computed" when another job hits the cache).
			if !c.terminal() {
				c.detail = detail
			}
		}
		s.mu.Unlock()
	}
	payload := map[string]any{
		"scenario": cs.Scenario,
		"n":        cs.N,
		"state":    cs.State.String(),
	}
	if cs.Err != nil {
		payload["err"] = cs.Err.Error()
	}
	s.progress.Publish("cell", payload)
}

// onSchedulerResult mirrors per-cell results onto the global /progress
// stream as compact summaries.
func (s *Server) onSchedulerResult(cs core.CellStatus, res *core.Result) {
	s.progress.Publish("result", map[string]any{
		"scenario":      cs.Scenario,
		"n":             cs.N,
		"total_updates": res.TotalUpdates,
		"peak_rate":     res.PeakRate,
	})
}

// Drain performs a graceful shutdown: stop admitting (submissions get 503,
// /readyz flips), dispatch nothing new, shed every undispatched cell, and
// let in-flight cells run to completion — each is journaled as it lands, so
// nothing finished is lost. When ctx expires first, remaining in-flight
// cells are hard-cancelled (they were never journaled, so a restart simply
// recomputes them). The journal is closed once quiesced. Idempotent; safe
// to race with Close.
func (s *Server) Drain(ctx context.Context) error {
	start := time.Now()
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		<-s.drained
		return nil
	}
	s.draining = true
	var finished []*Job
	for _, j := range s.jobs {
		if j.state == JobQueued || j.state == JobRunning {
			s.shedPendingLocked(j, "shed by drain")
			if j.remaining == 0 {
				s.finishJobLocked(j)
				finished = append(finished, j)
			}
		}
	}
	if s.inflight == 0 {
		s.drainOnce.Do(func() { close(s.drained) })
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range finished {
		s.publishFinished(j)
	}

	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.drained:
	case <-ctx.Done():
		// Grace exceeded: abort the stragglers. Their singleflight entries
		// are dropped, never cached or journaled.
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == JobRunning {
				j.cancel(fmt.Errorf("serve: drain deadline exceeded"))
			}
		}
		s.mu.Unlock()
		<-s.drained
	}
	if s.journal != nil {
		s.journal.Close()
	}
	s.probes.ObserveDrain(time.Since(start))
	return nil
}

// Close stops the server immediately: every job is cancelled, nothing is
// waited for beyond in-flight cell goroutines noticing their contexts, and
// the journal is closed. Finished cells already journaled survive — Close
// is the in-process stand-in for a crash in tests, minus the torn tail.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, j := range s.jobs {
		if j.state == JobQueued || j.state == JobRunning {
			j.cancel(fmt.Errorf("serve: server closed"))
			s.shedPendingLocked(j, "server closed")
		}
	}
	s.drainOnce.Do(func() { close(s.drained) })
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, u := range s.unsub {
		u()
	}
	s.progress.Close()
	if s.journal != nil {
		s.journal.Close()
	}
	return nil
}
