package serve

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"

	"bgpchurn/internal/bgp"
	"bgpchurn/internal/core"
	"bgpchurn/internal/obs"
	"bgpchurn/internal/report"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// JobState is a job's lifecycle position. Terminal states are JobDone,
// JobFailed and JobCancelled.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// cell run states.
const (
	cellPending   = "pending"
	cellRunning   = "running"
	cellDone      = "done"
	cellFailed    = "failed"
	cellCancelled = "cancelled"
)

// Job is one admitted sweep: a tenant's scenario x size grid flowing
// through the shared scheduler. All fields are guarded by the server mutex
// except the immutable identity fields and ctx/cancel.
type Job struct {
	id      string
	tenant  string
	weight  int
	created time.Time

	seed  uint64
	event core.Config

	ctx    context.Context
	cancel context.CancelCauseFunc

	cells     []*cellRun
	next      int // index of the first undispatched cell
	inflight  int
	remaining int // cells not yet terminal
	budget    int // max concurrently computing cells for this job
	state     JobState
	errMsg    string
	finished  time.Time
	broker    *obs.ProgressBroker
}

// cellRun is one (scenario, n) cell of a job.
type cellRun struct {
	job      *Job
	scenario scenario.Scenario
	n        int
	key      core.CellKey
	state    string
	detail   string // compute provenance: computing/computed/cached/resumed/...
	res      *core.Result
	errMsg   string
	elapsed  time.Duration
}

// terminal reports whether the cell reached a final state.
func (c *cellRun) terminal() bool {
	return c.state == cellDone || c.state == cellFailed || c.state == cellCancelled
}

// tenant groups a client's active jobs for weighted round-robin dispatch.
type tenant struct {
	name   string
	weight int // current turn width: max weight of active jobs
	credit int // dispatches left in the current turn
	jobs   []*Job
}

// nextRunnable returns the tenant's next dispatchable cell: the first
// active job (FIFO) with undispatched cells and budget headroom.
func (t *tenant) nextRunnable() *cellRun {
	for _, j := range t.jobs {
		if (j.state == JobQueued || j.state == JobRunning) &&
			j.next < len(j.cells) && j.inflight < j.budget {
			return j.cells[j.next]
		}
	}
	return nil
}

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// Tenant names the client for fairness accounting ("default" if empty).
	Tenant string `json:"tenant,omitempty"`
	// Weight is the tenant's WRR share, 1..MaxWeight (default 1). The
	// largest weight among a tenant's active jobs is used.
	Weight int `json:"weight,omitempty"`
	// Scenarios are paper scenario names (see scenario.All), e.g.
	// "BASELINE"; duplicates are rejected.
	Scenarios []string `json:"scenarios"`
	// Sizes are the network sizes to sweep; duplicates are rejected.
	Sizes []int `json:"sizes"`
	// Seed is the sweep-level topology seed (each size uses Seed+size).
	Seed uint64 `json:"seed,omitempty"`
	// Origins overrides the C-events per cell (default core.DefaultConfig).
	Origins int `json:"origins,omitempty"`
	// WRATE enables the paper's rate-limited protocol variant.
	WRATE bool `json:"wrate,omitempty"`
	// WarmStart skips the convergence flood via policy-SPF warm RIBs.
	WarmStart bool `json:"warm_start,omitempty"`
	// MaxWorkers caps this job's concurrent cells (0 = server default:
	// the full pool, shared fairly).
	MaxWorkers int `json:"max_workers,omitempty"`
	// CellTimeoutMS is a per-cell deadline in milliseconds; it may only
	// tighten the server's configured deadline.
	CellTimeoutMS int64 `json:"cell_timeout_ms,omitempty"`
	// DeadlineMS is a whole-job deadline in milliseconds; past it the
	// job's remaining cells are cancelled.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// buildJob validates a submission against the server's bounds and compiles
// it into a Job. It performs no admission (that needs the server mutex);
// invalid submissions return an error describing every violation.
func (s *Server) buildJob(req SubmitRequest) (*Job, error) {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	ten := req.Tenant
	if ten == "" {
		ten = "default"
	}
	if !tenantNameRE.MatchString(ten) {
		bad("tenant %q: must match %s", ten, tenantNameRE)
	}
	weight := req.Weight
	if weight == 0 {
		weight = 1
	}
	if weight < 1 || weight > DefaultMaxWeight {
		bad("weight %d: must be in 1..%d", req.Weight, DefaultMaxWeight)
	}

	if len(req.Scenarios) == 0 {
		bad("scenarios: at least one required")
	}
	scs := make([]scenario.Scenario, 0, len(req.Scenarios))
	seenSc := map[string]bool{}
	for _, name := range req.Scenarios {
		if seenSc[name] {
			bad("scenarios: duplicate %q", name)
			continue
		}
		seenSc[name] = true
		sc, err := scenario.ByName(name)
		if err != nil {
			bad("%v", err)
			continue
		}
		scs = append(scs, sc)
	}

	if len(req.Sizes) == 0 {
		bad("sizes: at least one required")
	}
	seenN := map[int]bool{}
	for _, n := range req.Sizes {
		if seenN[n] {
			bad("sizes: duplicate %d", n)
			continue
		}
		seenN[n] = true
		if n < s.cfg.MinN || n > s.cfg.MaxN {
			bad("size %d: must be in %d..%d", n, s.cfg.MinN, s.cfg.MaxN)
		}
	}
	if cells := len(req.Scenarios) * len(req.Sizes); cells > s.cfg.MaxJobCells {
		bad("%d cells (%d scenarios x %d sizes): exceeds the per-job limit of %d",
			cells, len(req.Scenarios), len(req.Sizes), s.cfg.MaxJobCells)
	}
	if req.Origins < 0 || req.Origins > 1000 {
		bad("origins %d: must be in 1..1000", req.Origins)
	}
	if req.MaxWorkers < 0 {
		bad("max_workers %d: must be >= 0", req.MaxWorkers)
	}
	if req.CellTimeoutMS < 0 {
		bad("cell_timeout_ms %d: must be >= 0", req.CellTimeoutMS)
	}
	if req.DeadlineMS < 0 {
		bad("deadline_ms %d: must be >= 0", req.DeadlineMS)
	}
	if len(problems) > 0 {
		return nil, fmt.Errorf("%s", strings.Join(problems, "; "))
	}

	ev := core.DefaultConfig(req.Seed)
	if req.WRATE {
		ev.BGP = bgp.WRATEConfig(req.Seed)
	}
	if req.Origins > 0 {
		ev.Origins = req.Origins
	}
	ev.WarmStart = req.WarmStart
	ev.Obs = s.metrics
	ev.CellTimeout = s.cfg.CellTimeout
	if req.CellTimeoutMS > 0 {
		d := time.Duration(req.CellTimeoutMS) * time.Millisecond
		if ev.CellTimeout == 0 || d < ev.CellTimeout {
			ev.CellTimeout = d
		}
	}

	budget := s.cfg.Workers
	if req.MaxWorkers > 0 && req.MaxWorkers < budget {
		budget = req.MaxWorkers
	}

	base := context.Background()
	var cancelTimeout context.CancelFunc
	if req.DeadlineMS > 0 {
		base, cancelTimeout = context.WithTimeout(base, time.Duration(req.DeadlineMS)*time.Millisecond)
	}
	ctx, cancel := context.WithCancelCause(base)
	j := &Job{
		tenant:  ten,
		weight:  weight,
		created: time.Now(),
		seed:    req.Seed,
		event:   ev,
		ctx:     ctx,
		budget:  budget,
		state:   JobQueued,
		broker:  obs.NewProgressBroker(),
	}
	j.cancel = func(cause error) {
		cancel(cause)
		if cancelTimeout != nil {
			cancelTimeout()
		}
	}
	for _, sc := range scs {
		for _, n := range req.Sizes {
			j.cells = append(j.cells, &cellRun{
				job:      j,
				scenario: sc,
				n:        n,
				key:      core.KeyFor(sc.Name, n, req.Seed, ev),
				state:    cellPending,
			})
		}
	}
	j.remaining = len(j.cells)
	return j, nil
}

// CellView is one cell's position in a job status response.
type CellView struct {
	Scenario  string  `json:"scenario"`
	N         int     `json:"n"`
	State     string  `json:"state"`
	Detail    string  `json:"detail,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Err       string  `json:"err,omitempty"`
}

// JobView is the GET /jobs/{id} response body (also the SSE "job" payload).
type JobView struct {
	ID       string         `json:"id"`
	Tenant   string         `json:"tenant"`
	State    JobState       `json:"state"`
	Created  time.Time      `json:"created"`
	Finished *time.Time     `json:"finished,omitempty"`
	Counts   map[string]int `json:"counts"`
	Err      string         `json:"err,omitempty"`
	Cells    []CellView     `json:"cells,omitempty"`
}

// viewLocked snapshots the job for JSON rendering. Caller holds s.mu.
func (j *Job) viewLocked(withCells bool) JobView {
	v := JobView{
		ID:      j.id,
		Tenant:  j.tenant,
		State:   j.state,
		Created: j.created,
		Counts:  map[string]int{},
		Err:     j.errMsg,
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	for _, c := range j.cells {
		v.Counts[c.state]++
		if withCells {
			cv := CellView{
				Scenario: c.scenario.Name,
				N:        c.n,
				State:    c.state,
				Detail:   c.detail,
				Err:      c.errMsg,
			}
			if c.elapsed > 0 {
				cv.ElapsedMS = float64(c.elapsed) / float64(time.Millisecond)
			}
			v.Cells = append(v.Cells, cv)
		}
	}
	return v
}

// resultTable assembles the finished job's cells into the result CSV, rows
// in submission order (scenario major, size minor). Floats render at full
// precision (report.Float with 0 decimals round-trips float64 exactly), so
// the bytes are a deterministic function of the cell results — the
// byte-identical restart guarantee rides on this.
func (j *Job) resultTableLocked() *report.Table {
	t := report.NewTable("", "scenario", "n", "u_T", "u_M", "u_CP", "u_C", "total_updates", "peak_rate")
	for _, c := range j.cells {
		r := c.res
		if r == nil {
			continue
		}
		t.AddRow(
			c.scenario.Name,
			fmt.Sprint(c.n),
			report.Float(r.U(topology.T), 0),
			report.Float(r.U(topology.M), 0),
			report.Float(r.U(topology.CP), 0),
			report.Float(r.U(topology.C), 0),
			report.Float(r.TotalUpdates, 0),
			report.Float(r.PeakRate, 0),
		)
	}
	return t
}

// sortTenantsInto inserts name into the sorted WRR order if absent.
func sortTenantsInto(order []string, name string) []string {
	i := sort.SearchStrings(order, name)
	if i < len(order) && order[i] == name {
		return order
	}
	order = append(order, "")
	copy(order[i+1:], order[i:])
	order[i] = name
	return order
}
