package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bgpchurn/internal/core"
	"bgpchurn/internal/report"
	"bgpchurn/internal/scenario"
	"bgpchurn/internal/topology"
)

// computeStub replaces the scheduler's compute seams with a fast synthetic
// workload: generate counts compute attempts per cell, run blocks on an
// optional token gate (so tests can hold cells in flight) and returns a
// deterministic Result derived from n alone.
type computeStub struct {
	mu    sync.Mutex
	calls map[string]int // "SCENARIO/n" -> compute attempts
	gate  chan struct{}  // nil: never block; else run consumes one token
}

func (st *computeStub) count(sc string, n int) {
	st.mu.Lock()
	st.calls[fmt.Sprintf("%s/%d", sc, n)]++
	st.mu.Unlock()
}

func (st *computeStub) callsFor(sc string, n int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.calls[fmt.Sprintf("%s/%d", sc, n)]
}

func (st *computeStub) total() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	sum := 0
	for _, c := range st.calls {
		sum += c
	}
	return sum
}

// release lets k blocked (or future) run calls proceed.
func (st *computeStub) release(k int) {
	for i := 0; i < k; i++ {
		st.gate <- struct{}{}
	}
}

// releaseAll permanently opens the gate.
func (st *computeStub) releaseAll() { close(st.gate) }

// stubResult is the deterministic synthetic result for one cell; the
// byte-identity assertions compare CSVs built from it.
func stubResult(n, origins int) *core.Result {
	res := &core.Result{N: n, Origins: origins, TotalUpdates: float64(n) * 2.5, PeakRate: float64(n) / 3}
	for i := range res.ByType {
		res.ByType[i].U = float64(n) + float64(i)/7
	}
	return res
}

// installStub swaps the server's compute seams for the synthetic workload.
// gated controls whether run calls block awaiting st.release tokens.
func installStub(srv *Server, gated bool) *computeStub {
	st := &computeStub{calls: map[string]int{}}
	if gated {
		st.gate = make(chan struct{}, 1024)
	}
	srv.Scheduler().SetCompute(
		func(sc scenario.Scenario, n int, seed uint64) (*topology.Topology, error) {
			st.count(sc.Name, n)
			return &topology.Topology{Nodes: make([]topology.Node, n), Seed: seed}, nil
		},
		func(ctx context.Context, tp *topology.Topology, cfg core.Config) (*core.Result, error) {
			if st.gate != nil {
				select {
				case <-st.gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return stubResult(len(tp.Nodes), cfg.Origins), nil
		})
	return st
}

// newTestServer builds a Server (closed at cleanup) and an httptest front
// end for it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// submit POSTs a job body and decodes the response.
func submit(t *testing.T, base, body string) (int, JobView, string) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("decode job view: %v (%s)", err, raw)
		}
	}
	return resp.StatusCode, v, string(raw)
}

// getJob fetches one job's status view.
func getJob(t *testing.T, base, id string) JobView {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /jobs/%s: status %d: %s", id, resp.StatusCode, raw)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

// waitJob polls until the job reaches a terminal state, then returns it.
func waitJob(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v := getJob(t, base, id)
		switch v.State {
		case JobDone, JobFailed, JobCancelled:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s: %+v", id, v.State, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchCSV grabs a done job's result CSV.
func fetchCSV(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result.csv")
	if err != nil {
		t.Fatalf("GET result.csv: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result.csv: status %d: %s", resp.StatusCode, raw)
	}
	return string(raw)
}

// expectedCSV renders the CSV the stub workload must produce for the grid,
// rows in submission order.
func expectedCSV(t *testing.T, scenarios []string, sizes []int, origins int) string {
	t.Helper()
	tab := report.NewTable("", "scenario", "n", "u_T", "u_M", "u_CP", "u_C", "total_updates", "peak_rate")
	for _, sc := range scenarios {
		for _, n := range sizes {
			r := stubResult(n, origins)
			tab.AddRow(sc, fmt.Sprint(n),
				report.Float(r.U(topology.T), 0), report.Float(r.U(topology.M), 0),
				report.Float(r.U(topology.CP), 0), report.Float(r.U(topology.C), 0),
				report.Float(r.TotalUpdates, 0), report.Float(r.PeakRate, 0))
		}
	}
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return b.String()
}

func TestSubmitValidationErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, MaxJobCells: 4})
	cases := []struct {
		name, body, wantErr string
	}{
		{"truncated JSON", `{"scenarios":`, "invalid submission"},
		{"unknown field", `{"scenarios":["BASELINE"],"sizes":[100],"bogus":1}`, "bogus"},
		{"no scenarios", `{"scenarios":[],"sizes":[100]}`, "scenarios: at least one"},
		{"no sizes", `{"scenarios":["BASELINE"],"sizes":[]}`, "sizes: at least one"},
		{"unknown scenario", `{"scenarios":["NOPE"],"sizes":[100]}`, "unknown scenario"},
		{"duplicate scenario", `{"scenarios":["BASELINE","BASELINE"],"sizes":[100]}`, "duplicate"},
		{"duplicate size", `{"scenarios":["BASELINE"],"sizes":[100,100]}`, "duplicate"},
		{"size too small", `{"scenarios":["BASELINE"],"sizes":[10]}`, "size 10"},
		{"size too large", `{"scenarios":["BASELINE"],"sizes":[100000000]}`, "size 100000000"},
		{"grid too large", `{"scenarios":["BASELINE","TREE","NO-MIDDLE"],"sizes":[100,200]}`, "per-job limit"},
		{"bad weight", `{"scenarios":["BASELINE"],"sizes":[100],"weight":99}`, "weight"},
		{"bad tenant", `{"scenarios":["BASELINE"],"sizes":[100],"tenant":"no spaces!"}`, "tenant"},
		{"bad origins", `{"scenarios":["BASELINE"],"sizes":[100],"origins":5000}`, "origins"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := submit(t, hs.URL, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", status, body)
			}
			if !strings.Contains(body, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", body, tc.wantErr)
			}
		})
	}

	// Multiple violations are reported together.
	status, _, body := submit(t, hs.URL, `{"scenarios":[],"sizes":[10],"weight":99}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	for _, want := range []string{"scenarios", "size 10", "weight"} {
		if !strings.Contains(body, want) {
			t.Fatalf("combined error %q missing %q", body, want)
		}
	}

	// Unknown job IDs are 404 everywhere.
	for _, path := range []string{"/jobs/zzz", "/jobs/zzz/stream", "/jobs/zzz/result.csv"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestSubmitComputeAndResultCSV(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 2})
	st := installStub(srv, false)

	scenarios := []string{"BASELINE", "TREE"}
	sizes := []int{100, 200}
	status, v, body := submit(t, hs.URL,
		`{"scenarios":["BASELINE","TREE"],"sizes":[100,200],"origins":7,"tenant":"alice"}`)
	if status != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (%s)", status, body)
	}
	if v.ID == "" || v.Tenant != "alice" {
		t.Fatalf("bad admit view: %+v", v)
	}

	final := waitJob(t, hs.URL, v.ID)
	if final.State != JobDone {
		t.Fatalf("state = %s, want done (err=%q)", final.State, final.Err)
	}
	if final.Counts[cellDone] != 4 {
		t.Fatalf("done count = %d, want 4 (%v)", final.Counts[cellDone], final.Counts)
	}
	for _, c := range final.Cells {
		if c.State != cellDone || c.Detail != "computed" {
			t.Fatalf("cell %s/%d: state=%s detail=%s, want done/computed", c.Scenario, c.N, c.State, c.Detail)
		}
	}
	if st.total() != 4 {
		t.Fatalf("compute calls = %d, want 4", st.total())
	}

	got := fetchCSV(t, hs.URL, v.ID)
	want := expectedCSV(t, scenarios, sizes, 7)
	if got != want {
		t.Fatalf("result CSV mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// A second identical submission is served entirely from cache.
	_, v2, _ := submit(t, hs.URL,
		`{"scenarios":["BASELINE","TREE"],"sizes":[100,200],"origins":7,"tenant":"alice"}`)
	final2 := waitJob(t, hs.URL, v2.ID)
	if final2.State != JobDone {
		t.Fatalf("rerun state = %s, want done", final2.State)
	}
	if st.total() != 4 {
		t.Fatalf("rerun recomputed: %d calls, want still 4", st.total())
	}
	for _, c := range final2.Cells {
		if c.Detail != "cached" {
			t.Fatalf("rerun cell %s/%d detail = %q, want cached", c.Scenario, c.N, c.Detail)
		}
	}
	if got2 := fetchCSV(t, hs.URL, v2.ID); got2 != want {
		t.Fatalf("cached CSV differs from computed CSV")
	}
}

// TestCrossClientDedup holds every compute in flight while two tenants
// submit overlapping grids, then checks each shared cell was computed
// exactly once — concurrent duplicates coalesce on the scheduler's
// singleflight cache.
func TestCrossClientDedup(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 8})
	st := installStub(srv, true)

	_, alice, _ := submit(t, hs.URL, `{"scenarios":["BASELINE"],"sizes":[100,200],"tenant":"alice"}`)
	_, bob, _ := submit(t, hs.URL, `{"scenarios":["BASELINE"],"sizes":[100,200,300],"tenant":"bob"}`)
	if alice.ID == "" || bob.ID == "" {
		t.Fatal("admission failed")
	}
	st.releaseAll()

	va := waitJob(t, hs.URL, alice.ID)
	vb := waitJob(t, hs.URL, bob.ID)
	if va.State != JobDone || vb.State != JobDone {
		t.Fatalf("states = %s/%s, want done/done", va.State, vb.State)
	}
	for _, n := range []int{100, 200, 300} {
		if got := st.callsFor("BASELINE", n); got != 1 {
			t.Fatalf("cell BASELINE/%d computed %d times, want exactly 1", n, got)
		}
	}
	stats := srv.Scheduler().CacheStats()
	if stats.Hits < 2 {
		t.Fatalf("cache hits = %d, want >= 2 (the overlapping cells)", stats.Hits)
	}

	// The overlapping rows render byte-identically for both tenants: bob's
	// CSV is alice's (same header, same first two rows) plus the 300 row.
	csvA := fetchCSV(t, hs.URL, alice.ID)
	csvB := fetchCSV(t, hs.URL, bob.ID)
	if !strings.HasPrefix(csvB, csvA) {
		t.Fatalf("shared rows differ:\nalice:\n%s\nbob:\n%s", csvA, csvB)
	}
}

// TestTenantCancellationIsolation cancels one tenant's job while it shares
// an in-flight cell with another tenant: the survivor must still finish
// with correct results (the scheduler re-runs the dropped cell under the
// survivor's own context).
func TestTenantCancellationIsolation(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 8})
	st := installStub(srv, true)

	_, alice, _ := submit(t, hs.URL, `{"scenarios":["BASELINE"],"sizes":[100],"tenant":"alice"}`)
	_, bob, _ := submit(t, hs.URL, `{"scenarios":["BASELINE"],"sizes":[100,200],"tenant":"bob"}`)

	// Wait until alice's cell is actually in flight (blocked on the gate).
	deadline := time.Now().Add(5 * time.Second)
	for getJob(t, hs.URL, alice.ID).State != JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("alice's job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/jobs/"+alice.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d, want 200", resp.StatusCode)
	}

	st.releaseAll()
	va := waitJob(t, hs.URL, alice.ID)
	vb := waitJob(t, hs.URL, bob.ID)
	if va.State != JobCancelled {
		t.Fatalf("alice state = %s, want cancelled", va.State)
	}
	if vb.State != JobDone {
		t.Fatalf("bob state = %s, want done (err=%q)", vb.State, vb.Err)
	}
	want := expectedCSV(t, []string{"BASELINE"}, []int{100, 200}, core.DefaultConfig(0).Origins)
	if got := fetchCSV(t, hs.URL, bob.ID); got != want {
		t.Fatalf("bob's CSV corrupted by alice's cancellation:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// A cancelled job has no CSV.
	r2, err := http.Get(hs.URL + "/jobs/" + alice.ID + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusConflict {
		t.Fatalf("cancelled job result.csv status = %d, want 409", r2.StatusCode)
	}
}
