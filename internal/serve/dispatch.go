package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"bgpchurn/internal/core"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// dispatch is the server's scheduling loop: it repeatedly picks the next
// cell by weighted round-robin over tenants (respecting per-job budgets and
// the global worker pool) and hands it to a cell goroutine. It parks while
// nothing is runnable and exits when the server closes.
func (s *Server) dispatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var c *cellRun
		for {
			if s.closed {
				return
			}
			if !s.draining && s.free > 0 {
				if c = s.nextCellLocked(); c != nil {
					break
				}
			}
			s.cond.Wait()
		}
		j := c.job
		s.free--
		s.inflight++
		j.inflight++
		j.next++
		if j.state == JobQueued {
			j.state = JobRunning
		}
		c.state = cellRunning
		s.probes.CellsDispatched.Inc()
		go s.runCell(c)
	}
}

// nextCellLocked implements weighted round-robin at cell granularity: the
// tenant at the cursor dispatches up to `weight` consecutive cells (its
// turn), then the cursor advances to the next tenant with runnable work.
// A tenant with nothing runnable forfeits the rest of its turn. Caller
// holds s.mu.
func (s *Server) nextCellLocked() *cellRun {
	n := len(s.order)
	for i := 0; i < n; i++ {
		idx := (s.cursor + i) % n
		t := s.tenants[s.order[idx]]
		c := t.nextRunnable()
		if c == nil {
			if i == 0 {
				t.credit = t.weight // forfeited turn: reset for next visit
			}
			continue
		}
		if i > 0 {
			// The turn passed to a new tenant: start it fresh.
			s.cursor = idx
			t.credit = t.weight
		}
		t.credit--
		if t.credit <= 0 {
			t.credit = t.weight
			s.cursor = (idx + 1) % n
		}
		return c
	}
	return nil
}

// runCell computes one cell through the shared scheduler. Runs on its own
// goroutine holding one global worker slot; everything it touches on the
// job is mutated under the server mutex.
func (s *Server) runCell(c *cellRun) {
	j := c.job
	j.broker.Publish("cell", CellView{Scenario: c.scenario.Name, N: c.n, State: cellRunning})
	start := time.Now()
	sw, err := s.sched.RunSweep(j.ctx, c.scenario, core.SweepConfig{
		Sizes:        []int{c.n},
		TopologySeed: j.seed,
		Event:        j.event,
	})
	elapsed := time.Since(start)

	s.mu.Lock()
	c.elapsed = elapsed
	switch {
	case err == nil && sw != nil && len(sw.Points) == 1:
		c.state = cellDone
		c.res = sw.Points[0].R
	case j.ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		c.state = cellCancelled
		if cause := context.Cause(j.ctx); cause != nil && !errors.Is(cause, context.Canceled) {
			c.errMsg = cause.Error()
		} else if err != nil {
			c.errMsg = err.Error()
		}
	default:
		c.state = cellFailed
		if err == nil {
			err = fmt.Errorf("serve: cell %s/%d: no result", c.scenario.Name, c.n)
		}
		c.errMsg = err.Error()
	}
	j.inflight--
	j.remaining--
	s.inflight--
	s.free++
	finished := j.remaining == 0
	if finished {
		s.finishJobLocked(j)
	}
	if s.draining && s.inflight == 0 {
		s.drainOnce.Do(func() { close(s.drained) })
	}
	s.cond.Broadcast()
	view := CellView{
		Scenario:  c.scenario.Name,
		N:         c.n,
		State:     c.state,
		Detail:    c.detail,
		ElapsedMS: float64(c.elapsed) / float64(time.Millisecond),
		Err:       c.errMsg,
	}
	s.mu.Unlock()

	j.broker.Publish("cell", view)
	if finished {
		s.publishFinished(j)
	}
}

// shedPendingLocked cancels every undispatched cell of j (drain, client
// cancel, server close). In-flight cells are untouched. Caller holds s.mu.
func (s *Server) shedPendingLocked(j *Job, reason string) {
	for _, c := range j.cells[j.next:] {
		c.state = cellCancelled
		c.errMsg = reason
		j.remaining--
	}
	j.next = len(j.cells)
}

// finishJobLocked moves a job with no remaining cells into its terminal
// state and retires it from the admission queue and fairness structures.
// Caller holds s.mu; terminal-event publication happens outside the lock
// via publishFinished.
func (s *Server) finishJobLocked(j *Job) {
	var failed, cancelled int
	for _, c := range j.cells {
		switch c.state {
		case cellFailed:
			failed++
			if j.errMsg == "" {
				j.errMsg = c.errMsg
			}
		case cellCancelled:
			cancelled++
			if j.errMsg == "" {
				j.errMsg = c.errMsg
			}
		}
	}
	switch {
	case failed > 0:
		j.state = JobFailed
		s.probes.JobsFailed.Inc()
	case cancelled > 0:
		j.state = JobCancelled
		s.probes.JobsCancelled.Inc()
	default:
		j.state = JobDone
		s.probes.JobsCompleted.Inc()
	}
	j.finished = time.Now()
	j.cancel(nil) // release the deadline timer, if any

	s.active--
	s.probes.QueueDepth.Add(-1)

	// Retire from the tenant's FIFO; drop the tenant entirely when idle so
	// the WRR ring only visits tenants with work.
	if t := s.tenants[j.tenant]; t != nil {
		for i, tj := range t.jobs {
			if tj == j {
				t.jobs = append(t.jobs[:i:i], t.jobs[i+1:]...)
				break
			}
		}
		if len(t.jobs) == 0 {
			delete(s.tenants, j.tenant)
			for i, name := range s.order {
				if name == j.tenant {
					s.order = append(s.order[:i:i], s.order[i+1:]...)
					if s.cursor > i {
						s.cursor--
					}
					break
				}
			}
			if len(s.order) == 0 {
				s.cursor = 0
			} else {
				s.cursor %= len(s.order)
			}
		} else {
			t.weight = 1
			for _, tj := range t.jobs {
				if tj.weight > t.weight {
					t.weight = tj.weight
				}
			}
		}
	}

	// Stop watching the job's keys.
	for _, c := range j.cells {
		watchers := s.watch[c.key]
		for i, w := range watchers {
			if w == c {
				watchers = append(watchers[:i:i], watchers[i+1:]...)
				break
			}
		}
		if len(watchers) == 0 {
			delete(s.watch, c.key)
		} else {
			s.watch[c.key] = watchers
		}
	}

	// Bound the finished-job table: the oldest finished jobs are forgotten.
	s.finished = append(s.finished, j.id)
	for len(s.finished) > finishedRetention {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// publishFinished emits the terminal SSE event and closes the job's
// stream. Runs without the server mutex.
func (s *Server) publishFinished(j *Job) {
	s.mu.Lock()
	view := j.viewLocked(true)
	s.mu.Unlock()
	j.broker.Publish("job", view)
	j.broker.Close()
}
