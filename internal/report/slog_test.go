package report

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func sampleCellEvents() []CellEvent {
	return []CellEvent{
		{Scenario: "Baseline", N: 1000, Seed: 1001, State: "start"},
		{Scenario: "Baseline", N: 1000, Seed: 1001, State: "done", Elapsed: 1503 * time.Millisecond},
		{Scenario: "Baseline", N: 2000, Seed: 2001, State: "cached"},
		{Scenario: "Tree", N: 1000, Seed: 1001, State: "failed", Err: errors.New("boom")},
	}
}

func TestNewCellLoggerTextMatchesLegacy(t *testing.T) {
	var got, want strings.Builder
	logCell, err := NewCellLogger(&got, "text")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sampleCellEvents() {
		logCell(e)
		want.WriteString(FormatCellEvent(e) + "\n")
	}
	if got.String() != want.String() {
		t.Errorf("text format drifted from FormatCellEvent\n--- got ---\n%s--- want ---\n%s", got.String(), want.String())
	}
}

func TestCellLoggerDefaultIsText(t *testing.T) {
	var got strings.Builder
	CellLogger(&got)(sampleCellEvents()[1])
	want := FormatCellEvent(sampleCellEvents()[1]) + "\n"
	if got.String() != want {
		t.Errorf("CellLogger output = %q, want %q", got.String(), want)
	}
}

func TestNewCellLoggerJSON(t *testing.T) {
	var buf strings.Builder
	logCell, err := NewCellLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sampleCellEvents() {
		logCell(e)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sampleCellEvents()) {
		t.Fatalf("got %d JSON lines, want %d", len(lines), len(sampleCellEvents()))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if rec["scenario"] != "Baseline" || rec["n"] != float64(1000) || rec["seed"] != float64(1001) ||
		rec["state"] != "done" || rec["level"] != "INFO" {
		t.Errorf("unexpected JSON record: %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[3]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["level"] != "ERROR" || rec["err"] != "boom" {
		t.Errorf("failed cell should log at ERROR with err attr: %v", rec)
	}
}

func TestNewCellLoggerUnknownFormat(t *testing.T) {
	if _, err := NewCellLogger(&strings.Builder{}, "xml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}
