package report

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTableFprintAlignment(t *testing.T) {
	tb := NewTable("Demo", "n", "U(T)", "U(M)")
	tb.AddRow("1000", "4.5", "2.25")
	tb.AddRow("10000", "45.125", "8")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "n ") {
		t.Fatalf("header = %q", lines[1])
	}
	// Columns align: "U(T)" appears at the same offset in header and rows.
	off := strings.Index(lines[1], "U(T)")
	if off < 0 || strings.Index(lines[3], "4.5") != off {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("1", "2")
	tb.AddRow("3") // short row padded
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestSeriesTable(t *testing.T) {
	tb := SeriesTable("Fig", "n", []float64{1000, 2000},
		Series{Name: "T", Values: []float64{4.5, 9.25}},
		Series{Name: "M", Values: []float64{2}},
	)
	if len(tb.Rows) != 2 || len(tb.Columns) != 3 {
		t.Fatalf("shape = %dx%d", len(tb.Rows), len(tb.Columns))
	}
	if tb.Rows[0][1] != "4.5" {
		t.Fatalf("cell = %q", tb.Rows[0][1])
	}
	if tb.Rows[1][2] != "" {
		t.Fatalf("missing value rendered as %q", tb.Rows[1][2])
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		dec  int
		want string
	}{
		{4.5, 3, "4.5"},
		{4.0, 3, "4"},
		{4.123456, 3, "4.123"},
		{1000, 0, "1000"},
	}
	for _, c := range cases {
		if got := Float(c.v, c.dec); got != c.want {
			t.Errorf("Float(%v,%d) = %q, want %q", c.v, c.dec, got, c.want)
		}
	}
}

func TestAsciiPlot(t *testing.T) {
	var buf bytes.Buffer
	err := AsciiPlot(&buf, 5, []float64{1, 2, 3, 4},
		Series{Name: "up", Values: []float64{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "up") {
		t.Fatalf("plot missing content:\n%s", out)
	}
	if err := AsciiPlot(&buf, 5, nil); err == nil {
		t.Fatal("empty plot accepted")
	}
	// Constant series must not divide by zero.
	buf.Reset()
	if err := AsciiPlot(&buf, 4, []float64{1, 2}, Series{Name: "c", Values: []float64{5, 5}}); err != nil {
		t.Fatal(err)
	}
}

func TestAsciiPlotDownsamplesLongSeries(t *testing.T) {
	n := 1000
	xs := make([]float64, n)
	vals := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		vals[i] = float64(i % 7)
	}
	var buf bytes.Buffer
	if err := AsciiPlot(&buf, 5, xs, Series{Name: "s", Values: vals}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > plotMaxWidth+20 {
			t.Fatalf("plot line too wide (%d chars)", len(line))
		}
	}
}

func TestFormatCellEvent(t *testing.T) {
	cases := []struct {
		e    CellEvent
		want string
	}{
		{CellEvent{Scenario: "BASELINE", N: 1000, State: "start"}, "  run    BASELINE n=1000"},
		{CellEvent{Scenario: "BASELINE", N: 1000, State: "done", Elapsed: 1500 * time.Millisecond}, "  done   BASELINE n=1000  (1.5s)"},
		{CellEvent{Scenario: "TREE", N: 200, State: "cached"}, "  cached TREE n=200"},
	}
	for _, c := range cases {
		if got := FormatCellEvent(c.e); got != c.want {
			t.Errorf("FormatCellEvent(%+v) = %q, want %q", c.e, got, c.want)
		}
	}
	failed := FormatCellEvent(CellEvent{Scenario: "X", N: 5, State: "failed", Err: errors.New("boom")})
	if !strings.Contains(failed, "FAIL") || !strings.Contains(failed, "boom") {
		t.Errorf("failed event rendering: %q", failed)
	}
	odd := FormatCellEvent(CellEvent{Scenario: "X", N: 5, State: "odd"})
	if !strings.Contains(odd, "odd") {
		t.Errorf("unknown state dropped: %q", odd)
	}
}

func TestCellLogger(t *testing.T) {
	var buf bytes.Buffer
	log := CellLogger(&buf)
	log(CellEvent{Scenario: "BASELINE", N: 1000, State: "start"})
	log(CellEvent{Scenario: "BASELINE", N: 1000, State: "cached"})
	out := buf.String()
	if strings.Count(out, "\n") != 2 || !strings.Contains(out, "cached BASELINE n=1000") {
		t.Fatalf("logger output:\n%s", out)
	}
}
